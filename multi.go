package streamgraph

import (
	"streamgraph/internal/core"
	"streamgraph/internal/graph"
	"streamgraph/internal/iso"
	"streamgraph/internal/query"
)

// Monitor runs many registered continuous queries over one shared
// windowed data graph: the stream is ingested once and every registered
// pattern is matched incrementally against it.
type Monitor struct {
	inner   *core.MultiEngine
	queries map[string]*query.Graph
}

// MonitorOptions configures a Monitor.
type MonitorOptions struct {
	// Window is tW, shared by every registered query (0 = unbounded).
	Window int64
}

// NewMonitor returns an empty multi-query monitor.
func NewMonitor(opts MonitorOptions) *Monitor {
	return &Monitor{
		inner:   core.NewMulti(core.MultiConfig{Window: opts.Window}),
		queries: make(map[string]*query.Graph),
	}
}

// Register adds a continuous query under a unique name. The query is
// decomposed using the statistics the monitor has observed so far, with
// the given strategy (Auto picks by Relative Selectivity).
func (m *Monitor) Register(name string, q *Query, strategy Strategy) error {
	err := m.inner.Register(name, q, core.Config{Strategy: strategy})
	if err != nil {
		return err
	}
	m.queries[name] = q
	return nil
}

// RegisterWithBackfill registers a query and replays the live graph
// through it, returning matches already complete among existing edges.
func (m *Monitor) RegisterWithBackfill(name string, q *Query, strategy Strategy) ([]QueryMatch, error) {
	initial, err := m.inner.RegisterWithBackfill(name, q, core.Config{Strategy: strategy})
	if err != nil {
		return nil, err
	}
	m.queries[name] = q
	out := make([]QueryMatch, 0, len(initial))
	for _, mt := range initial {
		out = append(out, QueryMatch{Query: name, Match: m.resolve(name, mt)})
	}
	return out, nil
}

// Unregister removes a query and its partial-match state.
func (m *Monitor) Unregister(name string) {
	m.inner.Unregister(name)
	delete(m.queries, name)
}

// Registered returns the registered query names in registration order.
func (m *Monitor) Registered() []string { return m.inner.Registered() }

// QueryMatch pairs a complete match with the query that produced it.
type QueryMatch struct {
	Query string
	Match Match
}

// Process ingests one edge and returns the matches it completed across
// all registered queries.
func (m *Monitor) Process(se Edge) []QueryMatch {
	named := m.inner.ProcessEdge(se)
	if len(named) == 0 {
		return nil
	}
	out := make([]QueryMatch, 0, len(named))
	for _, nm := range named {
		out = append(out, QueryMatch{Query: nm.Query, Match: m.resolve(nm.Query, nm.Match)})
	}
	return out
}

// ProcessBatch ingests a whole batch of edges — one shared statistics
// pass and one amortized eviction — and returns the matches it
// completed across all registered queries, edge-major in registration
// order (the order a serial Process loop reports).
func (m *Monitor) ProcessBatch(edges []Edge) []QueryMatch {
	named := m.inner.ProcessBatch(edges)
	if len(named) == 0 {
		return nil
	}
	out := make([]QueryMatch, 0, len(named))
	for _, nm := range named {
		out = append(out, QueryMatch{Query: nm.Query, Match: m.resolve(nm.Query, nm.Match)})
	}
	return out
}

func (m *Monitor) resolve(name string, mt iso.Match) Match {
	g := m.inner.Graph()
	q := m.queries[name]
	var out Match
	for qv, dv := range mt.VertexOf {
		if dv == graph.NoVertex {
			continue
		}
		out.Bindings = append(out.Bindings, Binding{
			QueryVertex: q.Vertices[qv].Name,
			DataVertex:  g.VertexName(dv),
		})
	}
	for qe, eid := range mt.EdgeOf {
		de, ok := g.Edge(eid)
		if !ok {
			continue
		}
		out.Edges = append(out.Edges, MatchedEdge{
			QueryEdge: qe,
			Src:       g.VertexName(de.Src),
			Dst:       g.VertexName(de.Dst),
			Type:      g.Types().Name(uint32(de.Type)),
			TS:        de.TS,
		})
	}
	out.FirstTS, out.LastTS = mt.MinTS, mt.MaxTS
	return out
}
