// Package streamgraph is a continuous subgraph pattern detection engine
// for streaming graphs, reproducing "A Selectivity based approach to
// Continuous Pattern Detection in Streaming Graphs" (Choudhury, Holder,
// Chin, Agarwal, Feo — EDBT 2015).
//
// Register a small pattern graph (a path, tree, star or cyclic query
// with typed edges and optionally labeled vertices) and feed the engine
// a stream of timestamped edges; the engine reports every subgraph of
// the evolving data graph isomorphic to the pattern whose timespan fits
// inside the sliding window, incrementally, as the last edge of the
// match arrives.
//
// The engine decomposes the query into small primitives ordered by
// selectivity estimated from the stream itself (1-edge histograms and
// 2-edge path distributions), tracks partial matches in a Subgraph Join
// Tree, and — under the lazy strategies — searches for a primitive only
// around vertices where the more selective prefix of the query has
// already been observed.
//
// Quick start:
//
//	q, _ := streamgraph.ParseQuery(`
//	    e attacker victim RemoteDesktop
//	    e victim server FileTransfer
//	`)
//	stats := streamgraph.NewStatistics()
//	for _, e := range trainingEdges {
//	    stats.Observe(e)
//	}
//	eng, _ := streamgraph.NewEngine(q, streamgraph.Options{
//	    Strategy:   streamgraph.Auto,
//	    Window:     3600,
//	    Statistics: stats,
//	})
//	for _, e := range liveEdges {
//	    for _, m := range eng.Process(e) {
//	        fmt.Println("match:", m)
//	    }
//	}
package streamgraph

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"streamgraph/internal/core"
	"streamgraph/internal/decompose"
	"streamgraph/internal/graph"
	"streamgraph/internal/iso"
	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/stream"
)

// Edge is one element of the input stream: a directed, typed,
// timestamped edge between two named, labeled vertices.
type Edge = stream.Edge

// Query is a pattern graph. Build one with ParseQuery or PathQuery, or
// construct it directly.
type Query = query.Graph

// Wildcard is the vertex label that matches any data vertex.
const Wildcard = query.Wildcard

// ParseQuery parses the textual query format:
//
//	# comment
//	v <name> [label]
//	e <srcName> <dstName> <edgeType>
func ParseQuery(text string) (*Query, error) { return query.Parse(text) }

// PathQuery builds a directed path query with the given edge types and
// a uniform vertex label (use Wildcard for unlabeled queries).
func PathQuery(label string, types ...string) *Query { return query.NewPath(label, types...) }

// Strategy selects the query execution strategy.
type Strategy = core.Strategy

// The available strategies. Single and Path track every partial match
// under a 1-edge / 2-edge decomposition; the Lazy variants search a
// primitive only where the preceding primitive matched; VF2 is the
// non-incremental baseline; Auto picks between the lazy variants using
// the Relative Selectivity rule.
const (
	Single     = core.StrategySingle
	SingleLazy = core.StrategySingleLazy
	Path       = core.StrategyPath
	PathLazy   = core.StrategyPathLazy
	VF2        = core.StrategyVF2
	IncIso     = core.StrategyIncIso
	Auto       = core.StrategyAuto
)

// Statistics accumulates the subgraph distributional statistics (edge
// type histogram and 2-edge path distribution) that drive query
// decomposition. Feed it a sample of the stream before constructing
// the engine; it can keep observing afterwards for periodic
// re-decomposition.
type Statistics struct {
	c *selectivity.Collector
}

// NewStatistics returns an empty statistics collector.
func NewStatistics() *Statistics { return &Statistics{c: selectivity.NewCollector()} }

// Observe folds one edge into the statistics.
func (s *Statistics) Observe(e Edge) { s.c.Add(e) }

// ObserveAll folds a batch of edges into the statistics.
func (s *Statistics) ObserveAll(edges []Edge) { s.c.AddAll(edges) }

// EdgeSelectivity returns the observed selectivity of an edge type.
func (s *Statistics) EdgeSelectivity(edgeType string) float64 {
	return s.c.EdgeSelectivity(edgeType)
}

// Edges returns the number of observed edges.
func (s *Statistics) Edges() int64 { return s.c.EdgeTotal() }

// RelativeSelectivity computes ξ(T_path, T_single) for a query under
// these statistics; ok is false when it is undefined (an unseen
// primitive).
func (s *Statistics) RelativeSelectivity(q *Query) (xi float64, ok bool) {
	single, err := decompose.SingleDecompose(q, s.c)
	if err != nil {
		return 0, false
	}
	path, fellBack, err := decompose.PathDecompose(q, s.c)
	if err != nil || fellBack {
		return 0, false
	}
	xi, ok, err = s.c.RelativeSelectivity(q, path, single)
	return xi, ok && err == nil
}

// Options configures an Engine.
type Options struct {
	// Strategy to execute; Auto (the default zero value is Single —
	// prefer setting this explicitly) requires Statistics.
	Strategy Strategy
	// Window is tW in stream time units: a match is reported only when
	// the span between its earliest and latest edge is strictly less
	// than Window. Zero disables windowing (the graph grows without
	// bound).
	Window int64
	// Statistics drives the selectivity-ordered decomposition. Required
	// for every strategy except VF2 and IncIso (and for engines pinned
	// with Decomposition, which need no statistics at all).
	Statistics *Statistics
	// Decomposition, when non-nil, pins the SJ-Tree leaves instead of
	// computing them greedily — typically the Leaves of a PlanChoice
	// from Optimize. The Strategy still controls lazy vs
	// track-everything execution.
	Decomposition [][]int
	// MaxMatchesPerSearch caps the matches returned by a single
	// anchored search (safety valve; 0 = unlimited).
	MaxMatchesPerSearch int
	// BatchSize is the chunk size ProcessAll feeds to the batch
	// ingestion path (<= 1 processes edge-at-a-time). Batches amortize
	// window eviction and fan the candidate searches out over
	// BatchWorkers; results are identical to serial processing.
	BatchSize int
	// BatchWorkers sizes the worker pool ProcessBatch fans the
	// read-only candidate searches over (<= 0 selects GOMAXPROCS).
	BatchWorkers int
}

// Binding is one vertex of a reported match: the query vertex name and
// the data vertex it was bound to.
type Binding struct {
	QueryVertex string
	DataVertex  string
}

// MatchedEdge is one edge of a reported match.
type MatchedEdge struct {
	QueryEdge int // index into the query's edge list
	Src, Dst  string
	Type      string
	TS        int64
}

// Match is a complete, window-respecting embedding of the query in the
// data graph.
type Match struct {
	Bindings []Binding
	Edges    []MatchedEdge
	// FirstTS and LastTS delimit τ(g), the match's timespan.
	FirstTS int64
	LastTS  int64
}

// String renders the match compactly.
func (m Match) String() string {
	parts := make([]string, len(m.Bindings))
	for i, b := range m.Bindings {
		parts[i] = b.QueryVertex + "=" + b.DataVertex
	}
	return fmt.Sprintf("{%s @%d..%d}", strings.Join(parts, " "), m.FirstTS, m.LastTS)
}

// Engine runs one continuous query over one edge stream.
type Engine struct {
	inner     *core.Engine
	q         *Query
	batchSize int
}

// NewEngine builds an engine for the query.
func NewEngine(q *Query, opts Options) (*Engine, error) {
	cfg := core.Config{
		Strategy:            opts.Strategy,
		Window:              opts.Window,
		Leaves:              opts.Decomposition,
		MaxMatchesPerSearch: opts.MaxMatchesPerSearch,
		BatchWorkers:        opts.BatchWorkers,
	}
	if opts.Statistics != nil {
		cfg.Stats = opts.Statistics.c
	}
	inner, err := core.New(q, cfg)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner, q: q, batchSize: opts.BatchSize}, nil
}

// Process folds one edge into the data graph and returns the complete
// matches it produced.
func (e *Engine) Process(se Edge) []Match {
	raw := e.inner.ProcessEdge(se)
	if len(raw) == 0 {
		return nil
	}
	out := make([]Match, 0, len(raw))
	for _, m := range raw {
		out = append(out, e.resolve(m))
	}
	return out
}

// ProcessBatch folds a whole batch of edges into the data graph — one
// amortized eviction pass, candidate searches fanned out over the
// worker pool — and returns the complete matches in input order: the
// concatenation of what per-edge Process calls would have returned.
func (e *Engine) ProcessBatch(edges []Edge) []Match {
	var out []Match
	for _, ms := range e.inner.ProcessBatch(edges) {
		for _, m := range ms {
			out = append(out, e.resolve(m))
		}
	}
	return out
}

// ProcessAll streams a slice of edges through the engine in chunks of
// Options.BatchSize (edge-at-a-time when BatchSize <= 1), returning all
// completed matches in input order.
func (e *Engine) ProcessAll(edges []Edge) []Match {
	if e.batchSize <= 1 {
		var out []Match
		for _, se := range edges {
			out = append(out, e.Process(se)...)
		}
		return out
	}
	var out []Match
	for chunk := range slices.Chunk(edges, e.batchSize) {
		out = append(out, e.ProcessBatch(chunk)...)
	}
	return out
}

func (e *Engine) resolve(m iso.Match) Match {
	g := e.inner.Graph()
	var out Match
	for qv, dv := range m.VertexOf {
		if dv == graph.NoVertex {
			continue
		}
		out.Bindings = append(out.Bindings, Binding{
			QueryVertex: e.q.Vertices[qv].Name,
			DataVertex:  g.VertexName(dv),
		})
	}
	sort.Slice(out.Bindings, func(i, j int) bool {
		return out.Bindings[i].QueryVertex < out.Bindings[j].QueryVertex
	})
	for qe, eid := range m.EdgeOf {
		de, ok := g.Edge(eid)
		if !ok {
			continue
		}
		out.Edges = append(out.Edges, MatchedEdge{
			QueryEdge: qe,
			Src:       g.VertexName(de.Src),
			Dst:       g.VertexName(de.Dst),
			Type:      g.Types().Name(uint32(de.Type)),
			TS:        de.TS,
		})
	}
	out.FirstTS, out.LastTS = m.MinTS, m.MaxTS
	return out
}

// EngineStats is a snapshot of the engine's work counters.
type EngineStats struct {
	EdgesProcessed  int64
	CompleteMatches int64
	LeafSearches    int64
	PartialMatches  int64 // currently stored in the SJ-Tree
	PeakPartial     int64
	IsoSteps        int64
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() EngineStats {
	st := e.inner.Stats()
	return EngineStats{
		EdgesProcessed:  st.EdgesProcessed,
		CompleteMatches: st.CompleteMatches,
		LeafSearches:    st.LeafSearches,
		PartialMatches:  st.Tree.Stored,
		PeakPartial:     st.Tree.PeakStored,
		IsoSteps:        st.IsoSteps,
	}
}

// Decomposition describes the SJ-Tree leaf order in effect.
func (e *Engine) Decomposition() string {
	t := e.inner.Tree()
	if t == nil {
		return "(none: baseline strategy)"
	}
	var parts []string
	for i := 0; i < t.NumLeaves(); i++ {
		var es []string
		for _, qe := range t.LeafEdges(i) {
			es = append(es, e.q.Edges[qe].Type)
		}
		parts = append(parts, "{"+strings.Join(es, ",")+"}")
	}
	return strings.Join(parts, " ⋈ ")
}
