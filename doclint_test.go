package streamgraph

// The doc-comment lint: every exported identifier in the packages
// listed below must carry a godoc comment, and every package (library
// or command) a package doc comment. It runs as a plain test (and in
// CI's docs job) so the repo needs no external linter — the stdlib
// go/ast is the whole toolchain. Since the PR-5 documentation pass the
// scope is the entire repository: the root facade, every internal
// package, and every command main.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// doclintPackages returns the directories (relative to the repo root,
// where `go test` runs this package) whose exported surface must be
// fully documented: the facade, all of internal/, and all of cmd/.
func doclintPackages(t *testing.T) []string {
	t.Helper()
	dirs := []string{"."}
	for _, parent := range []string{"internal", "cmd"} {
		entries, err := os.ReadDir(parent)
		if err != nil {
			t.Fatalf("read %s: %v", parent, err)
		}
		for _, e := range entries {
			if e.IsDir() {
				dirs = append(dirs, filepath.Join(parent, e.Name()))
			}
		}
	}
	sort.Strings(dirs)
	return dirs
}

func TestExportedIdentifiersDocumented(t *testing.T) {
	var missing []string
	for _, dir := range doclintPackages(t) {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") {
				continue
			}
			sawPkgDoc := false
			for fname, f := range pkg.Files {
				if strings.HasSuffix(fname, "_test.go") {
					continue
				}
				if f.Doc != nil {
					sawPkgDoc = true
				}
				missing = append(missing, undocumentedIn(fset, f)...)
			}
			if !sawPkgDoc {
				missing = append(missing, fmt.Sprintf("%s: package %s has no package doc comment", dir, name))
			}
		}
	}
	if len(missing) > 0 {
		t.Errorf("%d exported identifiers lack doc comments:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}

// undocumentedIn returns a report line for every exported top-level
// declaration (type, func, method, var, const) in f without a doc
// comment. Grouped specs inherit the group's doc; a method counts as
// exported only if both it and its receiver's base type are exported.
func undocumentedIn(fset *token.FileSet, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s %s", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil {
				recv := receiverTypeName(d.Recv)
				if recv != "" && !ast.IsExported(recv) {
					continue
				}
				report(d.Pos(), "method", recv+"."+d.Name.Name)
				continue
			}
			report(d.Pos(), "func", d.Name.Name)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(s.Pos(), "value", n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
