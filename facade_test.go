package streamgraph

import (
	"bytes"
	"fmt"
	"testing"
)

func facadeTrainingEdges(n int) []Edge {
	var out []Edge
	for i := 0; i < n; i++ {
		// http everywhere, rdp rare, ftp in between.
		t := "http"
		switch {
		case i%17 == 0:
			t = "rdp"
		case i%5 == 0:
			t = "ftp"
		}
		out = append(out, Edge{
			Src: fmt.Sprintf("h%d", i%23), SrcLabel: "ip",
			Dst: fmt.Sprintf("h%d", (i*7+1)%23), DstLabel: "ip",
			Type: t, TS: int64(i + 1),
		})
	}
	return out
}

func facadeQuery(t *testing.T) *Query {
	t.Helper()
	q, err := ParseQuery("e a b rdp\ne b c ftp\ne c d http")
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestOptimizeAndPinDecomposition(t *testing.T) {
	edges := facadeTrainingEdges(2000)
	stats := NewStatistics()
	stats.ObserveAll(edges)
	q := facadeQuery(t)

	choice, err := Optimize(q, stats, Exact)
	if err != nil {
		t.Fatal(err)
	}
	if len(choice.Leaves) == 0 || choice.PredictedWork <= 0 {
		t.Fatalf("empty plan: %+v", choice)
	}

	pinned, err := NewEngine(q, Options{
		Strategy:      SingleLazy,
		Decomposition: choice.Leaves,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewEngine(q, Options{Strategy: Single, Statistics: stats})
	if err != nil {
		t.Fatal(err)
	}
	var nPinned, nRef int
	for _, e := range edges {
		nPinned += len(pinned.Process(e))
		nRef += len(ref.Process(e))
	}
	if nPinned != nRef {
		t.Fatalf("pinned plan found %d matches, reference %d", nPinned, nRef)
	}
	if nRef == 0 {
		t.Fatal("stream produced no matches; weak test")
	}

	if _, err := Optimize(q, stats, Genetic); err != nil {
		t.Fatalf("Genetic: %v", err)
	}
	if _, err := Optimize(q, nil, Exact); err == nil {
		t.Fatal("Optimize without statistics accepted")
	}
	if _, err := Optimize(q, stats, Greedy); err == nil {
		t.Fatal("Optimize(Greedy) should direct users to the engine default")
	}
}

func TestSnapshotRoundTripViaFacade(t *testing.T) {
	edges := facadeTrainingEdges(2000)
	stats := NewStatistics()
	stats.ObserveAll(edges)
	q := facadeQuery(t)

	ref, err := NewEngine(q, Options{Strategy: PathLazy, Statistics: stats})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := NewEngine(q, Options{Strategy: PathLazy, Statistics: stats})
	if err != nil {
		t.Fatal(err)
	}
	cut := 1200
	refSeen := map[string]bool{}
	for _, e := range edges[:cut] {
		ref.Process(e)
		snap.Process(e)
	}
	for _, e := range edges[cut:] {
		for _, m := range ref.Process(e) {
			refSeen[m.String()] = true
		}
	}

	var buf bytes.Buffer
	flushed, err := SaveSnapshot(&buf, snap)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, m := range flushed {
		got[m.String()] = true
	}
	for _, e := range edges[cut:] {
		for _, m := range restored.Process(e) {
			got[m.String()] = true
		}
	}
	for s := range refSeen {
		if !got[s] {
			t.Fatalf("restored engine lost match %s", s)
		}
	}
	if restored.Decomposition() != snap.Decomposition() {
		t.Fatalf("decomposition changed across snapshot: %q vs %q",
			restored.Decomposition(), snap.Decomposition())
	}
}

func TestLoadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := LoadSnapshot(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
