// Command sgbench reproduces the paper's evaluation: every table and
// figure of Section 6 plus the design-choice ablations, printed as
// plain-text tables.
//
// Usage:
//
//	sgbench -exp all  -scale small
//	sgbench -exp fig9a -scale medium -seed 7
//	sgbench -exp batch -cpuprofile cpu.out -memprofile mem.out
//
// Experiments: table1, fig6, fig7, fig9a, fig9b, fig9c, fig9d, fig10,
// rule, alg5, ablation, planner, sketch, batch, shard, dshard,
// persist, migrate, all.
//
// The batch, shard and dshard experiments go beyond the paper: batch
// compares edge-at-a-time ingestion with the batch pipeline (amortized
// eviction, parallel candidate search) at -batch as the largest batch
// size; shard compares the serial multi-query engine, the fork/join
// ParallelMulti and the sharded runtime (internal/shard) at several
// shard counts, reporting each mode's total replicated edge count —
// the storage the edge-type-partitioned replicas save versus full
// per-shard replication — alongside throughput; dshard compares the
// in-process shard runtime with all-remote and mixed local/remote
// topologies whose slots are loopback-TCP sgshard workers
// (internal/dshard), reporting wire traffic alongside throughput —
// match counts must be identical across every row of every mode;
// persist compares the volatile sharded runtime with the durable one
// (edge log + checkpoint rounds) and times a cold recovery of the
// resulting data directory, reporting the checkpoint overhead and the
// retained log footprint; migrate measures live query migration — the
// same workload with and without a steady churn rotating queries
// across slots (in-process and across a loopback-TCP worker),
// reporting the throughput cost, the per-handoff drain latency and the
// backfill volume, with match counts that must not diverge.
//
// With -json the throughput experiments (batch, shard, dshard,
// persist, migrate) emit one machine-readable JSON document on stdout
// instead of text tables — the format CI archives as BENCH_PR10.json
// to track the perf trajectory across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"

	"streamgraph/internal/experiments"
	"streamgraph/internal/prof"
	"streamgraph/internal/query"
)

// expReport is one experiment's structured rows in -json mode.
type expReport struct {
	ID      string `json:"id"`
	Dataset string `json:"dataset"`
	Rows    any    `json:"rows"`
}

// benchReport is the -json document.
type benchReport struct {
	Tool        string      `json:"tool"`
	Scale       string      `json:"scale"`
	Seed        int64       `json:"seed"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	Experiments []expReport `json:"experiments"`
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table1, fig6, fig7, fig9a-d, fig10, rule, alg5, ablation, planner, sketch, batch, shard, dshard, persist, migrate, all)")
		scale    = flag.String("scale", "small", "dataset scale: small | medium | large")
		seed     = flag.Int64("seed", 1, "generator seed")
		batch    = flag.Int("batch", 1024, "largest batch size for the batch ingestion experiment")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON instead of text tables (runs the throughput experiments: batch, shard, dshard, persist)")
		maxEdges = flag.Int("max-edges", 0, "bound the stream length for the batch/shard experiments (0 = whole dataset)")
	)
	profFlags := prof.RegisterFlags()
	flag.Parse()

	if *batch < 2 && (*exp == "batch" || *exp == "all") {
		log.Fatalf("-batch must be >= 2 (got %d): size 1 is the serial baseline, always included", *batch)
	}

	var sc experiments.Scale
	switch *scale {
	case "small":
		sc = experiments.ScaleSmall
	case "medium":
		sc = experiments.ScaleMedium
	case "large":
		sc = experiments.ScaleLarge
	default:
		log.Fatalf("unknown scale %q", *scale)
	}

	// Start profiling only once the flag validation cannot log.Fatal
	// anymore (os.Exit would skip the deferred flush and leave a
	// truncated profile).
	stopProf, err := profFlags.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	want := func(id string) bool { return *exp == "all" || *exp == id }
	out := os.Stdout

	var (
		netflow, lsbench, nyt   experiments.Dataset
		haveNF, haveLS, haveNYT bool
	)
	getNF := func() experiments.Dataset {
		if !haveNF {
			netflow, haveNF = experiments.NetflowDataset(sc, *seed), true
		}
		return netflow
	}
	getLS := func() experiments.Dataset {
		if !haveLS {
			lsbench, haveLS = experiments.LSBenchDataset(sc, *seed+1), true
		}
		return lsbench
	}
	getNYT := func() experiments.Dataset {
		if !haveNYT {
			nyt, haveNYT = experiments.NYTimesDataset(sc, *seed+2), true
		}
		return nyt
	}

	if *jsonOut {
		report := benchReport{Tool: "sgbench", Scale: *scale, Seed: *seed, GOMAXPROCS: runtime.GOMAXPROCS(0)}
		nf := getNF()
		if want("batch") {
			sizes := []int{1, 64, *batch}
			if *batch <= 64 {
				sizes = []int{1, *batch}
			}
			rows := experiments.BatchThroughput(experiments.BatchConfig{
				Dataset: nf, Sizes: sizes, MaxEdges: *maxEdges,
			})
			report.Experiments = append(report.Experiments, expReport{ID: "batch", Dataset: nf.Name, Rows: rows})
		}
		if want("shard") {
			rows := experiments.ShardThroughput(experiments.ShardConfig{Dataset: nf, MaxEdges: *maxEdges})
			report.Experiments = append(report.Experiments, expReport{ID: "shard", Dataset: nf.Name, Rows: rows})
		}
		if want("dshard") {
			rows, err := experiments.DshardThroughput(experiments.DshardConfig{Dataset: nf, MaxEdges: *maxEdges})
			if err != nil {
				log.Fatal(err)
			}
			report.Experiments = append(report.Experiments, expReport{ID: "dshard", Dataset: nf.Name, Rows: rows})
		}
		if want("persist") {
			rows, err := experiments.PersistThroughput(experiments.PersistConfig{Dataset: nf, MaxEdges: *maxEdges})
			if err != nil {
				log.Fatal(err)
			}
			report.Experiments = append(report.Experiments, expReport{ID: "persist", Dataset: nf.Name, Rows: rows})
		}
		if want("migrate") {
			rows, err := experiments.MigrateThroughput(experiments.MigrateConfig{Dataset: nf, MaxEdges: *maxEdges})
			if err != nil {
				log.Fatal(err)
			}
			report.Experiments = append(report.Experiments, expReport{ID: "migrate", Dataset: nf.Name, Rows: rows})
		}
		if len(report.Experiments) == 0 {
			log.Fatalf("-json supports the throughput experiments (batch, shard, dshard, persist, migrate); got -exp %s", *exp)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			log.Fatal(err)
		}
		return
	}

	if want("table1") {
		fmt.Fprintln(out, "== Table 1: dataset summary ==")
		experiments.PrintTable1(out, experiments.Table1([]experiments.Dataset{getNF(), getLS(), getNYT()}))
		fmt.Fprintln(out)
	}
	if want("fig6") {
		for _, ds := range []experiments.Dataset{getNYT(), getNF(), getLS()} {
			cells := experiments.Figure6(ds, 10)
			experiments.PrintFigure6(out, ds.Name, cells)
			stable, total := experiments.Figure6RankStability(cells, 25)
			fmt.Fprintf(out, "rank stability (noise floor 25): %d/%d interval transitions\n\n", stable, total)
		}
	}
	if want("fig7") {
		for _, ds := range []experiments.Dataset{getNYT(), getNF(), getLS()} {
			experiments.PrintFigure7(out, experiments.Figure7(ds), 15)
			fmt.Fprintln(out)
		}
	}
	if want("fig9a") {
		rows := experiments.RunSweep(experiments.SweepConfig{
			Dataset: getNF(), Class: experiments.ClassPath,
			Sizes: []int{3, 4, 5}, Seed: *seed + 10,
			MaxEdges: sc.NetflowEdges / 5, MaxEdgesVF2: sc.NetflowEdges / 15,
		})
		experiments.PrintSweep(out, "Figure 9a: path queries on Netflow", rows)
		printSpeedups(rows)
	}
	if want("fig9b") {
		rows := experiments.RunSweep(experiments.SweepConfig{
			Dataset: getNF(), Class: experiments.ClassBinaryTree,
			Sizes: []int{5, 7, 9, 11, 13, 15}, Seed: *seed + 11,
			MaxEdges: sc.NetflowEdges / 5, MaxEdgesVF2: sc.NetflowEdges / 15,
		})
		experiments.PrintSweep(out, "Figure 9b: binary tree queries on Netflow", rows)
		printSpeedups(rows)
	}
	if want("fig9c") {
		rows := experiments.RunSweep(experiments.SweepConfig{
			Dataset: getLS(), Class: experiments.ClassPath,
			Sizes: []int{3, 4, 5}, Seed: *seed + 12,
			MaxEdges: sc.LSBenchEdges / 5, MaxEdgesVF2: sc.LSBenchEdges / 15,
		})
		experiments.PrintSweep(out, "Figure 9c: path queries on LSBench", rows)
		printSpeedups(rows)
	}
	if want("fig9d") {
		rows := experiments.RunSweep(experiments.SweepConfig{
			Dataset: getLS(), Class: experiments.ClassSchemaTree,
			Sizes: []int{3, 4, 5, 6, 7, 8}, Seed: *seed + 13,
			MaxEdges: sc.LSBenchEdges / 5, MaxEdgesVF2: sc.LSBenchEdges / 15,
		})
		experiments.PrintSweep(out, "Figure 9d: tree queries on LSBench", rows)
		printSpeedups(rows)
	}
	if want("fig10") {
		samples := experiments.Figure10(
			[]experiments.Dataset{getNYT(), getNF(), getLS()}, 25, *seed+14)
		experiments.PrintFigure10(out, experiments.HistogramXi(samples))
		fmt.Fprintln(out)
	}
	if want("rule") {
		var rows []experiments.RuleResult
		rows = append(rows, experiments.RuleExperiment(getNF(), 4, 5, *seed+15)...)
		rows = append(rows, experiments.RuleExperiment(getLS(), 4, 5, *seed+16)...)
		experiments.PrintRule(out, rows)
		fmt.Fprintln(out)
	}
	if want("alg5") {
		r := experiments.TimeAlgorithm5(getNF())
		fmt.Fprintf(out, "== Section 5.1: Algorithm 5 timing ==\n%d edges, %d vertices: %v (%.0f edges/s), %d unique shapes\n\n",
			r.Edges, r.Vertices, r.Elapsed, r.EdgesPerSec, r.UniqueShapes)
	}
	if want("ablation") {
		q := query.NewPath(query.Wildcard, "GRE", "TCP", "TCP")
		rows, err := experiments.LeafOrderAblation(getNF(), q, *seed+17)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintAblation(out, rows)
		fmt.Fprintln(out)
	}
	if want("planner") {
		q := query.NewPath("ip", "TCP", "ESP", "UDP", "TCP", "ICMP")
		rows, err := experiments.PlannerAblation(getNF(), q, 0.4)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintPlannerAblation(out, q, rows)
		fmt.Fprintln(out)
	}
	if want("sketch") {
		for _, ds := range []experiments.Dataset{getNF(), getLS()} {
			experiments.PrintSketchReport(out, experiments.SketchAccuracy(ds, 1<<16, 4, 10))
			fmt.Fprintln(out)
		}
	}
	if want("batch") {
		sizes := []int{1, 64, *batch}
		if *batch <= 64 {
			sizes = []int{1, *batch}
		}
		nf := getNF()
		rows := experiments.BatchThroughput(experiments.BatchConfig{
			Dataset: nf, Sizes: sizes, MaxEdges: *maxEdges,
		})
		experiments.PrintBatch(out, nf.Name, rows)
		fmt.Fprintln(out)
	}
	if want("shard") {
		nf := getNF()
		rows := experiments.ShardThroughput(experiments.ShardConfig{Dataset: nf, MaxEdges: *maxEdges})
		experiments.PrintShard(out, nf.Name, rows)
		fmt.Fprintln(out)
	}
	if want("dshard") {
		nf := getNF()
		rows, err := experiments.DshardThroughput(experiments.DshardConfig{Dataset: nf, MaxEdges: *maxEdges})
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintDshard(out, nf.Name, rows)
		fmt.Fprintln(out)
	}
	if want("persist") {
		nf := getNF()
		rows, err := experiments.PersistThroughput(experiments.PersistConfig{Dataset: nf, MaxEdges: *maxEdges})
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintPersist(out, nf.Name, rows)
		fmt.Fprintln(out)
	}
	if want("migrate") {
		nf := getNF()
		rows, err := experiments.MigrateThroughput(experiments.MigrateConfig{Dataset: nf, MaxEdges: *maxEdges})
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintMigrate(out, nf.Name, rows)
		fmt.Fprintln(out)
	}
}

func printSpeedups(rows []experiments.RunResult) {
	sp := experiments.Speedups(rows)
	var sizes []int
	for s := range sp {
		sizes = append(sizes, s)
	}
	for i := 0; i < len(sizes); i++ {
		for j := i + 1; j < len(sizes); j++ {
			if sizes[j] < sizes[i] {
				sizes[i], sizes[j] = sizes[j], sizes[i]
			}
		}
	}
	var b strings.Builder
	for _, s := range sizes {
		fmt.Fprintf(&b, "  size %d:", s)
		if v, ok := sp[s]["VF2"]; ok {
			fmt.Fprintf(&b, " VF2/bestLazy=%.1fx", v)
		}
		if v, ok := sp[s]["Single"]; ok {
			fmt.Fprintf(&b, " Single/bestLazy=%.1fx", v)
		}
		if v, ok := sp[s]["Path"]; ok {
			fmt.Fprintf(&b, " Path/bestLazy=%.1fx", v)
		}
		b.WriteString("\n")
	}
	fmt.Printf("speedups:\n%s\n", b.String())
}
