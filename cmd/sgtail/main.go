// Command sgtail runs a continuous query over an edge stream read from
// stdin or a file and prints matches as they complete — the
// tail -f | grep of streaming graphs.
//
// Usage:
//
//	sgtail -query query.sg [-input stream.tsv] [-window N] [-strategy auto]
//	       [-train 0.1] [-batch N] [-snapshot state.snap] [-stats]
//
// The stream format is the engine's TSV:
//
//	src <TAB> srcLabel <TAB> dst <TAB> dstLabel <TAB> type <TAB> ts
//
// With -snapshot, sgtail loads engine state from the file if it exists
// and writes updated state back on EOF, so repeated invocations over
// successive chunks of a log behave like one uninterrupted run.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"streamgraph"
	"streamgraph/internal/prof"
	"streamgraph/internal/stream"
)

func main() {
	var (
		queryPath = flag.String("query", "", "query file (required unless -snapshot exists)")
		inputPath = flag.String("input", "-", "edge stream file, '-' for stdin")
		window    = flag.Int64("window", 0, "time window tW (0 = unwindowed)")
		strategy  = flag.String("strategy", "auto", "single|singlelazy|path|pathlazy|vf2|inciso|auto")
		trainFrac = flag.Float64("train", 0.1, "fraction of the stream buffered to train statistics (ignored with -snapshot restore)")
		batchSize = flag.Int("batch", 1, "edges ingested per batch (1 = edge-at-a-time; larger batches amortize eviction and parallelize the search)")
		snapPath  = flag.String("snapshot", "", "snapshot file to restore from / save to")
		showStats = flag.Bool("stats", false, "print engine counters on exit")
	)
	profFlags := prof.RegisterFlags()
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("sgtail: ")

	in := os.Stdin
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}

	var eng *streamgraph.Engine
	var pending []streamgraph.Edge
	var src *stream.Reader

	if *snapPath != "" {
		if f, err := os.Open(*snapPath); err == nil {
			restored, err := streamgraph.LoadSnapshot(f)
			f.Close()
			if err != nil {
				log.Fatalf("restoring %s: %v", *snapPath, err)
			}
			eng = restored
			fmt.Fprintf(os.Stderr, "sgtail: restored %d partial matches from %s\n",
				restored.Stats().PartialMatches, *snapPath)
		}
	}
	if eng == nil {
		if *queryPath == "" {
			log.Fatal("-query is required (no snapshot to restore)")
		}
		qText, err := os.ReadFile(*queryPath)
		if err != nil {
			log.Fatal(err)
		}
		q, err := streamgraph.ParseQuery(string(qText))
		if err != nil {
			log.Fatal(err)
		}
		strat, err := parseStrategy(*strategy)
		if err != nil {
			log.Fatal(err)
		}
		// Buffer a training prefix to estimate selectivities, unless the
		// strategy needs none.
		r := stream.NewReader(in)
		stats := streamgraph.NewStatistics()
		if needsStats(strat) {
			n := 0
			for {
				e, err := r.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					log.Fatal(err)
				}
				pending = append(pending, e)
				stats.Observe(e)
				n++
				if *trainFrac > 0 && n >= trainingTarget(*trainFrac) {
					break
				}
			}
			fmt.Fprintf(os.Stderr, "sgtail: trained on %d edges\n", n)
		}
		eng, err = streamgraph.NewEngine(q, streamgraph.Options{
			Strategy:   strat,
			Window:     *window,
			Statistics: stats,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sgtail: decomposition %s\n", eng.Decomposition())
		// Replay the buffered training prefix through the engine so no
		// matches are lost to training.
		for _, e := range pending {
			report(eng, e)
		}
		pending = nil
		// Continue with the rest of the stream below using the same
		// reader.
		src = r
	}
	if src == nil {
		src = stream.NewReader(in)
	}

	// Start profiling once setup can no longer log.Fatal (os.Exit would
	// skip the deferred flush and truncate the profile); the profile
	// covers the stream loop — the part worth measuring.
	stopProf, err := profFlags.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	drain(src, eng, *batchSize)
	finish(eng, *snapPath, *showStats)
}

func trainingTarget(frac float64) int {
	// stdin has no length; interpret -train as a prefix of
	// frac * 100_000 edges, a pragmatic default for log replays.
	n := int(frac * 100_000)
	if n < 1 {
		n = 1
	}
	return n
}

func drain(r *stream.Reader, eng *streamgraph.Engine, batch int) {
	if batch > 1 {
		if err := stream.EachBatch(r, batch, func(edges []streamgraph.Edge) bool {
			for _, m := range eng.ProcessBatch(edges) {
				fmt.Printf("MATCH %v\n", m)
			}
			return true
		}); err != nil {
			log.Fatal(err)
		}
		return
	}
	for {
		e, err := r.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			log.Fatal(err)
		}
		report(eng, e)
	}
}

func report(eng *streamgraph.Engine, e streamgraph.Edge) {
	for _, m := range eng.Process(e) {
		fmt.Printf("MATCH %v\n", m)
	}
}

func finish(eng *streamgraph.Engine, snapPath string, showStats bool) {
	if snapPath != "" {
		f, err := os.Create(snapPath)
		if err != nil {
			log.Fatal(err)
		}
		flushed, err := streamgraph.SaveSnapshot(f, eng)
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range flushed {
			fmt.Printf("MATCH %v\n", m)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sgtail: snapshot saved to %s\n", snapPath)
	}
	if showStats {
		st := eng.Stats()
		fmt.Fprintf(os.Stderr,
			"sgtail: edges=%d matches=%d searches=%d partial=%d peak=%d\n",
			st.EdgesProcessed, st.CompleteMatches, st.LeafSearches,
			st.PartialMatches, st.PeakPartial)
	}
}

func parseStrategy(s string) (streamgraph.Strategy, error) {
	switch s {
	case "single":
		return streamgraph.Single, nil
	case "singlelazy":
		return streamgraph.SingleLazy, nil
	case "path":
		return streamgraph.Path, nil
	case "pathlazy":
		return streamgraph.PathLazy, nil
	case "vf2":
		return streamgraph.VF2, nil
	case "inciso":
		return streamgraph.IncIso, nil
	case "auto":
		return streamgraph.Auto, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

func needsStats(s streamgraph.Strategy) bool {
	return s != streamgraph.VF2 && s != streamgraph.IncIso
}
