// Command sggen generates one of the three synthetic evaluation
// datasets as an edge-stream file (tab-separated; see internal/stream).
//
// Usage:
//
//	sggen -dataset netflow -edges 200000 -hosts 20000 -seed 1 -out netflow.tsv
//	sggen -dataset lsbench -edges 200000 -users 10000 > lsbench.tsv
//	sggen -dataset nytimes -articles 20000 > nyt.tsv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"streamgraph/internal/datagen"
	"streamgraph/internal/stream"
)

func main() {
	var (
		dataset  = flag.String("dataset", "netflow", "dataset to generate: netflow | lsbench | nytimes")
		edges    = flag.Int("edges", 100000, "number of edges (netflow, lsbench)")
		hosts    = flag.Int("hosts", 10000, "number of hosts (netflow)")
		users    = flag.Int("users", 10000, "number of users (lsbench)")
		articles = flag.Int("articles", 20000, "number of articles (nytimes)")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var es []stream.Edge
	switch *dataset {
	case "netflow":
		es = datagen.Netflow(datagen.NetflowConfig{Seed: *seed, Edges: *edges, Hosts: *hosts})
	case "lsbench":
		es = datagen.LSBench(datagen.LSBenchConfig{Seed: *seed, Edges: *edges, Users: *users})
	case "nytimes":
		es = datagen.NYTimes(datagen.NYTimesConfig{Seed: *seed, Articles: *articles})
	default:
		log.Fatalf("unknown dataset %q (want netflow, lsbench or nytimes)", *dataset)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := stream.Write(w, es); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d %s edges\n", len(es), *dataset)
}
