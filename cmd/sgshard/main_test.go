package main

import (
	"bufio"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestGracefulShutdownExitCode sends SIGTERM to a running shard worker
// and requires a zero exit code: the signal path closes the listener
// and router connections instead of dying on the default handler.
func TestGracefulShutdownExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a child process")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "sgshard")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatalf("stderr pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	listening := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "listening on") {
				close(listening)
				break
			}
		}
		for sc.Scan() {
		}
	}()
	select {
	case <-listening:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("worker never reported listening")
	}
	wait := make(chan error, 1)
	go func() { wait <- cmd.Wait() }()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	select {
	case err := <-wait:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v (want exit code 0)", err)
		}
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("worker did not exit after SIGTERM")
	}
}
