// Command sgshard runs a remote shard worker: one process-boundary
// slot of the sharded continuous-pattern-detection runtime. A router
// (sgserve -remote, or any program embedding internal/shard with
// Config.Remotes) connects over TCP, registers the queries it assigns
// to this slot, streams admitted edge batches, and receives every
// completed match back — the internal/dshard protocol.
//
// The worker is deliberately stateless across connections: if the
// connection (or this process) dies, the router reconnects and rebuilds
// the worker's engine by replaying its control events and the shared
// edge log. Running it is therefore as boring as it should be:
//
//	sgshard -addr :7700
//
// and on the serving side:
//
//	sgserve -shards 2 -remote shardhost:7700 -window 3600
//
// One sgshard process can host many slots (each connection gets its own
// engine), so a small deployment can point several routers — or several
// slots of one router — at a single worker process.
//
// SIGINT and SIGTERM close the listener and every router connection,
// then exit 0; routers treat it as an ordinary disconnect and rebuild
// the slot on reconnect.
//
// See docs/DISTRIBUTED.md for the protocol specification, deployment
// topologies and failure modes.
package main

import (
	"errors"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"streamgraph/internal/dshard"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:7700", "listen address for router connections")
		quiet = flag.Bool("quiet", false, "suppress per-connection log lines")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("sgshard: ")

	// SIGINT/SIGTERM sever the router connections and exit 0. The
	// worker holds no durable state — routers rebuild it on reconnect
	// from their checkpoint and edge log — so a clean close is all a
	// shutdown needs. Installed before the listener exists so a signal
	// arriving the instant the worker is observable takes this path.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	srv := dshard.NewServer()
	if !*quiet {
		srv.Logf = log.Printf
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe(*addr) }()
	select {
	case s := <-sig:
		log.Printf("received %s; shutting down", s)
		srv.Close()
	case err := <-serveErr:
		if err != nil && !errors.Is(err, net.ErrClosed) {
			log.Fatal(err)
		}
	}
	log.Printf("shutdown complete")
}
