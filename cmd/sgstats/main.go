// Command sgstats computes the subgraph distributional statistics of an
// edge-stream file: the edge-type histogram over time (Figure 6) and
// the 2-edge path distribution of Algorithm 5 (Figure 7).
//
// Usage:
//
//	sgstats -in netflow.tsv -intervals 10 -top 20
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"streamgraph/internal/selectivity"
	"streamgraph/internal/stream"
)

func main() {
	var (
		in        = flag.String("in", "", "input stream file (default stdin)")
		intervals = flag.Int("intervals", 10, "number of time intervals for the edge distribution")
		top       = flag.Int("top", 20, "2-edge path shapes to print")
	)
	flag.Parse()

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	edges, err := stream.ReadAll(stream.NewReader(r))
	if err != nil {
		log.Fatal(err)
	}
	if len(edges) == 0 {
		log.Fatal("empty stream")
	}

	// Figure 6: per-interval edge-type histogram.
	fmt.Printf("== edge type distribution over time (%d intervals) ==\n", *intervals)
	per := (len(edges) + *intervals - 1) / *intervals
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "interval\ttype\tcount")
	for i := 0; i < *intervals; i++ {
		lo, hi := i*per, (i+1)*per
		if lo >= len(edges) {
			break
		}
		if hi > len(edges) {
			hi = len(edges)
		}
		ic := selectivity.NewCollector()
		ic.AddAll(edges[lo:hi])
		for _, h := range ic.EdgeHistogram() {
			fmt.Fprintf(tw, "%d\t%s\t%d\n", i, h.Key, h.Count)
		}
	}
	tw.Flush()

	// Figure 7: 2-edge path distribution.
	c := selectivity.NewCollector()
	c.AddAll(edges)
	fmt.Printf("\n== 2-edge path distribution: %d unique shapes over %d paths ==\n",
		c.UniquePathShapes(), c.PathTotal())
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tshape\tcount")
	for i, h := range c.PathHistogram() {
		if i >= *top {
			fmt.Fprintf(tw, "...\t(%d more)\t\n", c.UniquePathShapes()-*top)
			break
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\n", i+1, h.Key, h.Count)
	}
	tw.Flush()
}
