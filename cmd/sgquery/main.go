// Command sgquery performs the paper's query-processing step: it loads
// either a precomputed SJ-Tree decomposition (from sgdecompose) or a
// raw query plus a statistics sample, initializes the continuous query
// engine, and streams an edge file through it, printing matches as they
// complete.
//
// Usage:
//
//	sgquery -tree q.sjtree -in netflow.tsv -strategy PathLazy
//	sgquery -query q.txt -stats sample.tsv -in netflow.tsv -strategy Auto -window 5000
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"streamgraph/internal/core"
	"streamgraph/internal/decompose"
	"streamgraph/internal/iso"
	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/stream"
)

var strategies = map[string]core.Strategy{
	"Single": core.StrategySingle, "SingleLazy": core.StrategySingleLazy,
	"Path": core.StrategyPath, "PathLazy": core.StrategyPathLazy,
	"VF2": core.StrategyVF2, "IncIso": core.StrategyIncIso, "Auto": core.StrategyAuto,
}

func main() {
	var (
		treeFile  = flag.String("tree", "", "SJ-Tree file from sgdecompose")
		queryFile = flag.String("query", "", "query graph file (alternative to -tree)")
		statsFile = flag.String("stats", "", "stream sample for decomposition (with -query)")
		in        = flag.String("in", "", "input stream file (default stdin)")
		strategy  = flag.String("strategy", "Auto", "Single | SingleLazy | Path | PathLazy | VF2 | IncIso | Auto")
		window    = flag.Int64("window", 0, "time window tW (overrides the tree file's)")
		maxPrint  = flag.Int("print", 20, "matches to print (all are counted)")
		cap       = flag.Int("cap", 100000, "max matches per anchored search (0 = unlimited)")
	)
	flag.Parse()

	strat, ok := strategies[*strategy]
	if !ok {
		log.Fatalf("unknown strategy %q", *strategy)
	}

	cfg := core.Config{Strategy: strat, Window: *window, MaxMatchesPerSearch: *cap}
	var q *query.Graph
	switch {
	case *treeFile != "":
		text, err := os.ReadFile(*treeFile)
		if err != nil {
			log.Fatal(err)
		}
		var leaves [][]int
		var w int64
		q, leaves, w, err = decompose.ParseFile(string(text))
		if err != nil {
			log.Fatal(err)
		}
		cfg.Leaves = leaves
		if *window == 0 {
			cfg.Window = w
		}
	case *queryFile != "":
		text, err := os.ReadFile(*queryFile)
		if err != nil {
			log.Fatal(err)
		}
		q, err = query.Parse(string(text))
		if err != nil {
			log.Fatal(err)
		}
		if *statsFile != "" {
			f, err := os.Open(*statsFile)
			if err != nil {
				log.Fatal(err)
			}
			edges, err := stream.ReadAll(stream.NewReader(f))
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
			c := selectivity.NewCollector()
			c.AddAll(edges)
			cfg.Stats = c
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	eng, err := core.New(q, cfg)
	if err != nil {
		log.Fatal(err)
	}

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}

	src := stream.NewReader(r)
	var total, printed int64
	start := time.Now()
	for {
		se, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range eng.ProcessEdge(se) {
			total++
			if printed < int64(*maxPrint) {
				printed++
				fmt.Printf("MATCH @%d: %s\n", se.TS, explain(eng, m))
			}
		}
	}
	elapsed := time.Since(start)
	st := eng.Stats()
	fmt.Printf("\n%d matches, %d edges in %.3fs (%.0f edges/s)\n",
		total, st.EdgesProcessed, elapsed.Seconds(), float64(st.EdgesProcessed)/elapsed.Seconds())
	fmt.Printf("leaf searches: %d, retro searches: %d, iso steps: %d, peak partial matches: %d\n",
		st.LeafSearches, st.RetroSearches, st.IsoSteps, st.Tree.PeakStored)
}

func explain(e *core.Engine, m iso.Match) string {
	s := e.Explain(m)
	g := e.Graph()
	for qe, eid := range m.EdgeOf {
		if de, ok := g.Edge(eid); ok {
			s += fmt.Sprintf(" [e%d %s->%s %s@%d]", qe,
				g.VertexName(de.Src), g.VertexName(de.Dst),
				g.Types().Name(uint32(de.Type)), de.TS)
		}
	}
	return s
}
