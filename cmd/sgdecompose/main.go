// Command sgdecompose performs the paper's query-decomposition step:
// it loads a query graph and a sample of the data stream, collects the
// 1-edge and 2-edge subgraph statistics, decomposes the query into an
// SJ-Tree leaf order by ascending selectivity (Algorithm 4), and writes
// the decomposition as an ASCII file for the query-processing step.
//
// Usage:
//
//	sgdecompose -query q.txt -stats netflow.tsv -kind auto -window 5000 -out q.sjtree
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"streamgraph/internal/decompose"
	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/stream"
)

func main() {
	var (
		queryFile = flag.String("query", "", "query graph file (required)")
		statsFile = flag.String("stats", "", "stream sample for selectivity estimation (required)")
		kind      = flag.String("kind", "auto", "decomposition: single | path | auto")
		window    = flag.Int64("window", 0, "time window tW recorded in the output")
		out       = flag.String("out", "", "output SJ-Tree file (default stdout)")
		sample    = flag.Int("sample", 0, "use only the first N stream edges (0 = all)")
	)
	flag.Parse()
	if *queryFile == "" || *statsFile == "" {
		flag.Usage()
		os.Exit(2)
	}

	qText, err := os.ReadFile(*queryFile)
	if err != nil {
		log.Fatal(err)
	}
	q, err := query.Parse(string(qText))
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Open(*statsFile)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	edges, err := stream.ReadAll(stream.NewReader(f))
	if err != nil {
		log.Fatal(err)
	}
	if *sample > 0 && *sample < len(edges) {
		edges = edges[:*sample]
	}
	c := selectivity.NewCollector()
	c.AddAll(edges)

	var leaves [][]int
	switch *kind {
	case "single":
		leaves, err = decompose.SingleDecompose(q, c)
	case "path":
		var fellBack bool
		leaves, fellBack, err = decompose.PathDecompose(q, c)
		if fellBack {
			fmt.Fprintln(os.Stderr, "note: query contains an unseen 2-edge path; fell back to single-edge decomposition")
		}
	case "auto":
		var chosen decompose.Kind
		var xi float64
		leaves, chosen, xi, err = decompose.Auto(q, c)
		if err == nil {
			fmt.Fprintf(os.Stderr, "relative selectivity ξ = %.3g → %s decomposition\n", xi, chosen)
		}
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
	if err != nil {
		log.Fatal(err)
	}

	text := decompose.Format(q, leaves, *window)
	if *out == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d leaves)\n", *out, len(leaves))
}
