package main

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildCmd compiles this command into dir and returns the binary path.
func buildCmd(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "sgserve")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startAndAwaitListen starts the binary and blocks until its log says
// it is accepting connections, returning the process and a channel
// that yields the exit error.
func startAndAwaitListen(t *testing.T, bin string, args ...string) (*exec.Cmd, <-chan error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatalf("stderr pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	listening := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "listening on") {
				close(listening)
				break
			}
		}
		for sc.Scan() { // keep draining so the child never blocks on stderr
		}
	}()
	select {
	case <-listening:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("server never reported listening")
	}
	wait := make(chan error, 1)
	go func() { wait <- cmd.Wait() }()
	return cmd, wait
}

// TestGracefulShutdownExitCode sends SIGTERM to a running durable
// server and requires a zero exit code plus a committed checkpoint in
// the data dir — the signal path must drain and checkpoint, not just
// die.
func TestGracefulShutdownExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a child process")
	}
	dir := t.TempDir()
	bin := buildCmd(t, dir)
	dataDir := filepath.Join(dir, "data")

	cmd, wait := startAndAwaitListen(t, bin,
		"-addr", "127.0.0.1:0", "-window", "100", "-data-dir", dataDir, "-checkpoint-every", "64")
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	select {
	case err := <-wait:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v (want exit code 0)", err)
		}
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("server did not exit after SIGTERM")
	}
	if _, err := os.Stat(filepath.Join(dataDir, "router.meta")); err != nil {
		t.Fatalf("no committed checkpoint after graceful shutdown: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dataDir, "slot-0.ckpt")); err != nil {
		t.Fatalf("no published slot checkpoint after graceful shutdown: %v", err)
	}
}

// TestInterruptExitCode covers the volatile path: SIGINT on a plain
// server still exits 0.
func TestInterruptExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a child process")
	}
	bin := buildCmd(t, t.TempDir())
	cmd, wait := startAndAwaitListen(t, bin, "-addr", "127.0.0.1:0", "-shards", "2")
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("signal: %v", err)
	}
	select {
	case err := <-wait:
		if err != nil {
			t.Fatalf("SIGINT exit: %v (want exit code 0)", err)
		}
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("server did not exit after SIGINT")
	}
}
