// Command sgserve hosts the continuous pattern detection engine as a
// TCP service: clients register pattern queries and stream edges over a
// plain-text protocol, and the server reports every complete match as
// it emerges (see streamgraph/internal/server for the protocol).
//
// Example session (with `nc localhost 7687`):
//
//	register lateral
//	e attacker hop rdp
//	e hop store ftp
//	end
//	edge evil ip srv1 ip rdp 10
//	edge srv1 ip nas ip ftp 11
//
// The second edge completes the pattern and the server replies with
// "match lateral a=evil b=srv1 c=nas".
//
// With -shards N the server runs on the sharded runtime: queries are
// partitioned across N shard workers, "edge" replies "ok queued <seq>"
// immediately, completed matches are drained with the "matches"
// command, and "stats" reports per-shard queue depth, edges routed and
// matches emitted.
//
// With -remote host:port,... some (or all) of those shard slots live
// in remote sgshard processes: the server routes each slot's slice of
// the stream over the internal/dshard protocol and transparently
// replays after a remote reconnect. See docs/DISTRIBUTED.md.
//
// With -data-dir the runtime is durable: every admitted edge is
// appended to a segment-backed log and the engines checkpoint every
// -checkpoint-every edges, so a crash or restart recovers the
// registered queries and in-window graph state from disk. SIGINT and
// SIGTERM shut down gracefully — drain the shards, commit a final
// checkpoint, exit 0. See docs/PERSISTENCE.md.
//
// With -http addr the server additionally serves its observability
// endpoints on that address: /metrics (Prometheus text format),
// /debug/pprof/ and /debug/vars. The richer wire command "stats full"
// dumps the same registry over the line protocol. See
// docs/OBSERVABILITY.md.
package main

import (
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"streamgraph/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7687", "listen address")
		window     = flag.Int64("window", 0, "time window tW shared by all queries (0 = unwindowed)")
		evictEvery = flag.Int("evict-every", 256, "eviction cadence in edges")
		shards     = flag.Int("shards", 0, "run on the sharded runtime with this many shard workers (0 = single engine); edge ingestion becomes asynchronous, matches are drained with the 'matches' command and 'stats' reports per-shard counters")
		shardQueue = flag.Int("shard-queue", 256, "per-shard ingest queue capacity (with -shards/-remote)")
		remote     = flag.String("remote", "", "comma-separated remote shard worker addresses (sgshard processes); each becomes one shard slot alongside the -shards local workers and selects the sharded runtime even with -shards 0")
		dataDir    = flag.String("data-dir", "", "durable data directory: append edges to a segment-backed log and checkpoint engines there, recovering queries and in-window state on restart (selects the sharded runtime; see docs/PERSISTENCE.md)")
		ckptEvery  = flag.Int("checkpoint-every", 0, "durable checkpoint cadence in edges (default 4096; requires -data-dir)")
		httpAddr   = flag.String("http", "", "serve the observability endpoints (/metrics, /debug/pprof/, /debug/vars) on this address (see docs/OBSERVABILITY.md)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("sgserve: ")

	// Installed before the listener (and its log line) exists, so a
	// signal arriving the instant the server is observable already
	// takes the graceful path.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	var remotes []string
	if *remote != "" {
		for _, a := range strings.Split(*remote, ",") {
			if a = strings.TrimSpace(a); a != "" {
				remotes = append(remotes, a)
			}
		}
	}

	cfg := server.Config{
		Window: *window, EvictEvery: *evictEvery,
		Shards: *shards, Remotes: remotes, ShardQueue: *shardQueue,
		DataDir: *dataDir, CheckpointEvery: *ckptEvery,
	}
	var srv *server.Server
	var err error
	if *dataDir != "" {
		if cfg.Shards <= 0 && len(remotes) == 0 {
			cfg.Shards = 1
		}
		srv, err = server.Open(cfg)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("durable data dir %s (checkpoint every %d edges)", *dataDir, *ckptEvery)
	} else {
		if *ckptEvery != 0 {
			log.Fatal("-checkpoint-every requires -data-dir")
		}
		srv = server.New(cfg)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	var httpLn net.Listener
	if *httpAddr != "" {
		httpLn, err = net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		go http.Serve(httpLn, srv.DebugHandler())
		log.Printf("observability endpoints on http://%s/metrics (and /debug/pprof/, /debug/vars)", httpLn.Addr())
	}
	switch {
	case len(remotes) > 0:
		log.Printf("listening on %s (window=%d, %d local + %d remote shards: %s)",
			ln.Addr(), *window, *shards, len(remotes), strings.Join(remotes, ","))
	case *shards > 0 || *dataDir != "":
		log.Printf("listening on %s (window=%d, %d shards)", ln.Addr(), *window, cfg.Shards)
	default:
		log.Printf("listening on %s (window=%d)", ln.Addr(), *window)
	}

	// SIGINT/SIGTERM drain the shards and, with -data-dir, commit a
	// final checkpoint before exiting 0 — a signal-stopped server
	// restarts from exactly where it left off.
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case s := <-sig:
		log.Printf("received %s; shutting down", s)
	case err := <-serveErr:
		if err != nil && !errors.Is(err, net.ErrClosed) {
			log.Fatal(err)
		}
	}
	if httpLn != nil {
		httpLn.Close()
	}
	srv.Close()
	if err := srv.PersistErr(); err != nil {
		log.Fatalf("persist: %v", err)
	}
	log.Printf("shutdown complete")
}
