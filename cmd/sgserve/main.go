// Command sgserve hosts the continuous pattern detection engine as a
// TCP service: clients register pattern queries and stream edges over a
// plain-text protocol, and the server reports every complete match as
// it emerges (see streamgraph/internal/server for the protocol).
//
// Example session (with `nc localhost 7687`):
//
//	register lateral
//	e attacker hop rdp
//	e hop store ftp
//	end
//	edge evil ip srv1 ip rdp 10
//	edge srv1 ip nas ip ftp 11
//
// The second edge completes the pattern and the server replies with
// "match lateral a=evil b=srv1 c=nas".
package main

import (
	"flag"
	"log"
	"net"

	"streamgraph/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7687", "listen address")
		window     = flag.Int64("window", 0, "time window tW shared by all queries (0 = unwindowed)")
		evictEvery = flag.Int("evict-every", 256, "eviction cadence in edges")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("sgserve: ")

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (window=%d)", ln.Addr(), *window)
	srv := server.New(server.Config{Window: *window, EvictEvery: *evictEvery})
	if err := srv.Serve(ln); err != nil {
		log.Fatal(err)
	}
}
