// Command checkpoint demonstrates surviving a process restart without
// losing in-window partial matches: a continuous query runs over the
// first half of a stream, snapshots itself to a file, is "restarted" by
// loading the snapshot into a brand-new engine, and completes a match
// whose first half arrived before the restart.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"streamgraph"
)

func main() {
	q, err := streamgraph.ParseQuery(`
		e attacker hop rdp
		e hop store ftp
		e store out http
	`)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	mixed := func(ts int64) streamgraph.Edge {
		return streamgraph.Edge{
			Src: fmt.Sprintf("h%d", rng.Intn(80)), SrcLabel: "ip",
			Dst: fmt.Sprintf("h%d", rng.Intn(80)), DstLabel: "ip",
			Type: []string{"http", "http", "http", "ftp", "rdp"}[rng.Intn(5)],
			TS:   ts,
		}
	}
	// Live noise is pure web chatter so the only rdp-ftp-http chain in
	// the live stream is the planted attack.
	noise := func(ts int64) streamgraph.Edge {
		e := mixed(ts)
		e.Type = "http"
		return e
	}
	var training []streamgraph.Edge
	for i := 0; i < 2000; i++ {
		training = append(training, mixed(int64(i)))
	}
	stats := streamgraph.NewStatistics()
	stats.ObserveAll(training)

	eng, err := streamgraph.NewEngine(q, streamgraph.Options{
		Strategy:   streamgraph.PathLazy,
		Window:     1000,
		Statistics: stats,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: the first two steps of the attack arrive, then the
	// process "goes down for maintenance".
	ts := int64(10_000)
	phase1 := []streamgraph.Edge{
		{Src: "evil", SrcLabel: "ip", Dst: "srv3", DstLabel: "ip", Type: "rdp", TS: ts + 1},
		{Src: "srv3", SrcLabel: "ip", Dst: "nas1", DstLabel: "ip", Type: "ftp", TS: ts + 2},
	}
	for i := 0; i < 300; i++ {
		phase1 = append(phase1, noise(ts+3+int64(i)))
	}
	for _, e := range phase1 {
		if ms := eng.Process(e); len(ms) > 0 {
			log.Fatalf("no complete match expected yet, got %v", ms)
		}
	}
	st := eng.Stats()
	fmt.Printf("before restart: %d edges processed, %d partial matches tracked\n",
		st.EdgesProcessed, st.PartialMatches)

	path := filepath.Join(os.TempDir(), "streamgraph-checkpoint.snap")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := streamgraph.SaveSnapshot(f, eng); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("snapshot written: %s (%d bytes)\n", path, info.Size())

	// Phase 2: a new process loads the snapshot and the final attack
	// step arrives.
	f2, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := streamgraph.LoadSnapshot(f2)
	f2.Close()
	os.Remove(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored: %d partial matches carried across the restart\n",
		restored.Stats().PartialMatches)

	final := streamgraph.Edge{
		Src: "nas1", SrcLabel: "ip", Dst: "dropbox", DstLabel: "ip", Type: "http", TS: ts + 400,
	}
	ms := restored.Process(final)
	for _, m := range ms {
		fmt.Printf("ALERT (completed across restart): %v\n", m)
	}
	if len(ms) == 0 {
		log.Fatal("the match spanning the restart was lost")
	}
}
