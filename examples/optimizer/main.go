// Command optimizer compares decomposition strategies for one query:
// the paper's greedy Algorithm 4 against the exact dynamic program and
// the genetic search, reporting each plan's predicted cost and the
// runtime actually measured by executing it over the same stream.
package main

import (
	"fmt"
	"log"
	"time"

	"streamgraph/internal/core"
	"streamgraph/internal/datagen"
	"streamgraph/internal/plan"
	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/stream"
)

func main() {
	edges := datagen.Netflow(datagen.NetflowConfig{Edges: 16_000, Hosts: 1_500, Seed: 21})
	c := selectivity.NewCollector()
	c.AddAll(edges[:6_000]) // train on a prefix, run over the rest

	// A 5-hop path mixing a very rare protocol (ESP) with common ones.
	q := query.NewPath("ip", "TCP", "ESP", "UDP", "TCP", "ICMP")

	p := &plan.Planner{Stats: c, AvgDegree: c.AvgDegreeEstimate()}

	type candidate struct {
		name   string
		leaves [][]int
	}
	var cands []candidate

	greedy, _, err := decomposeGreedy(q, c)
	if err != nil {
		log.Fatal(err)
	}
	cands = append(cands, candidate{"greedy (Alg 4, 2-edge)", greedy})

	optLeaves, optScore, err := p.Optimal(q)
	if err != nil {
		log.Fatal(err)
	}
	cands = append(cands, candidate{"exact DP", optLeaves})

	gaLeaves, _, err := p.Genetic(q, plan.GeneticConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	cands = append(cands, candidate{"genetic", gaLeaves})

	fmt.Printf("query: 5-hop path TCP-ESP-UDP-TCP-ICMP; exact-DP predicted work/edge %.4f\n\n", optScore.Work)
	fmt.Printf("%-24s %-28s %12s %12s %10s %10s\n",
		"plan", "leaves", "pred.work", "pred.space", "runtime", "stored")
	for _, cand := range cands {
		sc, err := p.ScoreLeaves(q, cand.leaves)
		if err != nil {
			log.Fatal(err)
		}
		rt, peak := execute(q, cand.leaves, c, edges[6_000:])
		fmt.Printf("%-24s %-28s %12.4f %12.0f %10v %10d\n",
			cand.name, renderLeaves(q, cand.leaves), sc.Work, sc.Space, rt.Round(time.Millisecond), peak)
	}
}

func decomposeGreedy(q *query.Graph, c *selectivity.Collector) ([][]int, bool, error) {
	eng, err := core.New(q, core.Config{Strategy: core.StrategyPathLazy, Stats: c})
	if err != nil {
		return nil, false, err
	}
	return eng.Tree().LeafSets(), false, nil
}

func execute(q *query.Graph, leaves [][]int, c *selectivity.Collector, edges []stream.Edge) (time.Duration, int64) {
	eng, err := core.New(q, core.Config{
		Strategy: core.StrategySingleLazy, // lazy execution; leaves pin the plan
		Leaves:   leaves,
		Stats:    c,
	})
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	for _, e := range edges {
		eng.ProcessEdge(e)
	}
	return time.Since(t0), eng.Stats().Tree.PeakStored
}

func renderLeaves(q *query.Graph, leaves [][]int) string {
	s := ""
	for i, leaf := range leaves {
		if i > 0 {
			s += "|"
		}
		for j, ei := range leaf {
			if j > 0 {
				s += ","
			}
			s += q.Edges[ei].Type
		}
	}
	return s
}
