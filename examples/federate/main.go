// Command federate merges edge streams from several collection points
// into one time-ordered stream feeding a single continuous query — the
// multi-exporter deployment of the paper's introduction, where an ISP
// or CDN watches traffic arriving from many vantage points.
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"

	"streamgraph"
	"streamgraph/internal/stream"
)

// exporter simulates one collection point producing locally ordered
// netflow edges; the attack is split across two exporters, so neither
// sees the whole pattern.
func exporter(name string, seed int64, n int, attack []stream.Edge) stream.Source {
	rng := rand.New(rand.NewSource(seed))
	var edges []stream.Edge
	ts := int64(seed) // interleaved time bases across exporters
	for i := 0; i < n; i++ {
		ts += int64(rng.Intn(5) + 1)
		edges = append(edges, stream.Edge{
			Src: fmt.Sprintf("%s-h%d", name, rng.Intn(40)), SrcLabel: "ip",
			Dst: fmt.Sprintf("%s-h%d", name, rng.Intn(40)), DstLabel: "ip",
			Type: "http", TS: ts,
		})
	}
	for _, a := range attack {
		edges = append(edges, a)
	}
	// Keep each exporter internally time-ordered.
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && edges[j].TS < edges[j-1].TS; j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	return stream.NewSliceSource(edges)
}

func main() {
	// The rdp hop is seen by exporter A, the ftp exfil by exporter B.
	srcA := exporter("a", 1, 400, []stream.Edge{
		{Src: "evil", SrcLabel: "ip", Dst: "srv3", DstLabel: "ip", Type: "rdp", TS: 900},
	})
	srcB := exporter("b", 2, 400, []stream.Edge{
		{Src: "srv3", SrcLabel: "ip", Dst: "dropzone", DstLabel: "ip", Type: "ftp", TS: 905},
	})

	merged := stream.NewMerger(srcA, srcB)

	q, err := streamgraph.ParseQuery("e attacker hop rdp\ne hop out ftp")
	if err != nil {
		log.Fatal(err)
	}
	stats := streamgraph.NewStatistics()
	trainA := exporter("a", 1, 400, nil)
	for {
		e, err := trainA.Next()
		if err == io.EOF {
			break
		}
		stats.Observe(e)
	}
	eng, err := streamgraph.NewEngine(q, streamgraph.Options{
		Strategy: streamgraph.SingleLazy, Window: 50, Statistics: stats,
	})
	if err != nil {
		log.Fatal(err)
	}

	edges, matches, lastTS := 0, 0, int64(-1)
	for {
		e, err := merged.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if e.TS < lastTS {
			log.Fatalf("merge order violated: %d after %d", e.TS, lastTS)
		}
		lastTS = e.TS
		edges++
		for _, m := range eng.Process(e) {
			matches++
			fmt.Printf("ALERT (cross-exporter): %v\n", m)
		}
	}
	fmt.Printf("merged %d edges from 2 exporters, %d cross-exporter matches\n", edges, matches)
	if matches == 0 {
		log.Fatal("the cross-exporter attack was not detected")
	}
}
