// Command sketchstats contrasts the exact statistics collector with the
// bounded-memory sketch estimator on the same stream: footprint, path
// distribution accuracy, and — the part that matters — whether the
// sketch drives query decomposition to the same plan. This is the
// gsketch direction the paper's Sections 2.2 and 7 point at.
package main

import (
	"fmt"
	"log"

	"streamgraph/internal/datagen"
	"streamgraph/internal/decompose"
	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/sketch"
)

func main() {
	// A large-vertex-count stream: per-vertex exact state is what the
	// sketch eliminates.
	edges := datagen.Netflow(datagen.NetflowConfig{Edges: 200_000, Hosts: 40_000, Seed: 5})

	exact := selectivity.NewCollector()
	est := sketch.NewEstimator(1<<16, 4, 1)
	for _, e := range edges {
		exact.Add(e)
		est.Add(e)
	}

	fmt.Printf("stream: %d edges over ~%d hosts\n\n", len(edges), 40_000)
	fmt.Printf("%-28s %15s %15s\n", "", "exact", "sketch")
	fmt.Printf("%-28s %15d %15d\n", "2-edge paths counted", exact.PathTotal(), est.PathTotal())
	fmt.Printf("%-28s %15d %15d\n", "distinct path shapes", exact.UniquePathShapes(), est.UniquePathShapes())
	fmt.Printf("%-28s %15s %15s\n", "statistics memory",
		"O(vertices)", fmt.Sprintf("%d KiB", est.MemoryBytes()/1024))

	fmt.Println("\ntop 5 path shapes (exact vs sketch):")
	eh, sh := exact.PathHistogram(), est.PathHistogram()
	for i := 0; i < 5 && i < len(eh) && i < len(sh); i++ {
		fmt.Printf("  %-34s %12d   |   %-34s %12d\n", eh[i].Key, eh[i].Count, sh[i].Key, sh[i].Count)
	}

	// The decomposition check: same query, two statistics sources.
	q := query.NewPath("ip", "TCP", "ESP", "UDP", "ICMP")
	exactLeaves, exactFB, err := decompose.PathDecompose(q, exact)
	if err != nil {
		log.Fatal(err)
	}
	sketchLeaves, sketchFB, err := decompose.PathDecompose(q, est)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery TCP-ESP-UDP-ICMP\n  exact  decomposition: %v (fallback=%v)\n  sketch decomposition: %v (fallback=%v)\n",
		exactLeaves, exactFB, sketchLeaves, sketchFB)
	if fmt.Sprint(exactLeaves) == fmt.Sprint(sketchLeaves) {
		fmt.Println("  -> identical plans from 1/1000th of the memory")
	} else {
		fmt.Println("  -> plans differ; inspect the shape ranking above")
	}
}
