// Command cyber detects the information-exfiltration attack pattern of
// Figure 1c on a synthetic internet-backbone stream: a victim browses a
// compromised web server over HTTP, the downloaded script opens a TCP
// channel to a botnet command-and-control host, and a large message
// with the exfiltrated data follows on the same channel — all within a
// time window.
//
// The example trains selectivity statistics on the first 20% of the
// stream, lets the engine pick a strategy via Relative Selectivity, and
// scans the remainder, into which a handful of attack instances have
// been planted.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"streamgraph"
	"streamgraph/internal/datagen"
)

func main() {
	const window = 4000

	// Background traffic: CAIDA-like backbone flows. HTTP / LARGE are
	// modeled as additional traffic classes on top of the protocol mix
	// (the paper maps flow attributes to edge types the same way).
	background := datagen.Netflow(datagen.NetflowConfig{Seed: 42, Edges: 60000, Hosts: 6000})
	rng := rand.New(rand.NewSource(43))
	for i := range background {
		// Re-type a third of TCP flows as HTTP and a small slice as
		// LARGE transfers, as an attribute-mapping would.
		if background[i].Type == "TCP" {
			switch r := rng.Float64(); {
			case r < 0.35:
				background[i].Type = "HTTP"
			case r < 0.38:
				background[i].Type = "LARGE"
			}
		}
	}

	// Plant 3 attack instances in the second half of the stream.
	planted := plantAttacks(background, 3, rng)

	// The Figure 1c pattern.
	q, err := streamgraph.ParseQuery(`
		v victim ip
		v webserver ip
		v c2 ip
		e victim webserver HTTP
		e victim c2 TCP
		e victim c2 LARGE
	`)
	if err != nil {
		log.Fatal(err)
	}

	train := len(planted) / 5
	stats := streamgraph.NewStatistics()
	stats.ObserveAll(planted[:train])
	if xi, ok := stats.RelativeSelectivity(q); ok {
		fmt.Printf("relative selectivity ξ = %.3g\n", xi)
	}

	eng, err := streamgraph.NewEngine(q, streamgraph.Options{
		Strategy:            streamgraph.Auto,
		Window:              window,
		Statistics:          stats,
		MaxMatchesPerSearch: 50000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("decomposition:", eng.Decomposition())

	alerts := 0
	for _, e := range planted[train:] {
		for _, m := range eng.Process(e) {
			alerts++
			if alerts <= 10 {
				fmt.Printf("EXFILTRATION ALERT: %v\n", m)
			}
		}
	}
	st := eng.Stats()
	fmt.Printf("\n%d alerts over %d live edges (%d anchored searches, peak %d partial matches)\n",
		alerts, st.EdgesProcessed, st.LeafSearches, st.PeakPartial)
}

// plantAttacks splices n attack instances (HTTP to a compromised
// server, TCP beacon to a C2 host, LARGE exfiltration burst) into the
// second half of the stream, reusing its timestamp axis.
func plantAttacks(edges []streamgraph.Edge, n int, rng *rand.Rand) []streamgraph.Edge {
	out := make([]streamgraph.Edge, 0, len(edges)+3*n)
	half := len(edges) / 2
	positions := map[int]int{} // index in stream -> attack id
	for i := 0; i < n; i++ {
		positions[half+rng.Intn(half-100)] = i
	}
	for i, e := range edges {
		out = append(out, e)
		if id, ok := positions[i]; ok {
			victim := fmt.Sprintf("victim%d", id)
			ws := fmt.Sprintf("compromised%d", id)
			c2 := fmt.Sprintf("c2-%d", id)
			ts := e.TS
			out = append(out,
				streamgraph.Edge{Src: victim, SrcLabel: "ip", Dst: ws, DstLabel: "ip", Type: "HTTP", TS: ts + 1},
				streamgraph.Edge{Src: victim, SrcLabel: "ip", Dst: c2, DstLabel: "ip", Type: "TCP", TS: ts + 2},
				streamgraph.Edge{Src: victim, SrcLabel: "ip", Dst: c2, DstLabel: "ip", Type: "LARGE", TS: ts + 3},
			)
		}
	}
	return out
}
