// Command monitor registers several of the paper's Figure 1 attack
// patterns at once over a single shared traffic stream — the
// multi-query deployment the introduction motivates: "register a
// pattern as a graph query and continuously perform the query on the
// data graph as it evolves over time".
package main

import (
	"fmt"
	"log"

	"streamgraph"
	"streamgraph/internal/datagen"
)

func main() {
	edges := datagen.Netflow(datagen.NetflowConfig{Seed: 99, Edges: 40000, Hosts: 5000})

	mon := streamgraph.NewMonitor(streamgraph.MonitorOptions{Window: 5000})

	// Warm the shared statistics on a prefix so registrations decompose
	// sensibly, then register the patterns.
	warm := len(edges) / 10
	for _, e := range edges[:warm] {
		mon.Process(e)
	}

	// Figure 1a: insider infiltration — lateral movement chain.
	infiltration, err := streamgraph.ParseQuery(`
		e attacker hop1 GRE
		e hop1 hop2 ESP
		e hop2 target AH
	`)
	if err != nil {
		log.Fatal(err)
	}
	if err := mon.Register("infiltration", infiltration, streamgraph.Auto); err != nil {
		log.Fatal(err)
	}

	// Figure 1b: denial of service — parallel paths converging on a
	// victim that also emits rare GRE backscatter (the selective
	// primitive Lazy Search anchors on).
	dos, err := streamgraph.ParseQuery(`
		e bot1 victim ICMP
		e bot2 victim ICMP
		e bot3 victim ICMP
		e victim reflector GRE
	`)
	if err != nil {
		log.Fatal(err)
	}
	if err := mon.Register("dos", dos, streamgraph.Auto); err != nil {
		log.Fatal(err)
	}

	// A rare tunneling handshake, registered with backfill so existing
	// traffic is scanned too.
	tunnel, err := streamgraph.ParseQuery(`
		e a b ESP
		e b a ESP
	`)
	if err != nil {
		log.Fatal(err)
	}
	initial, err := mon.RegisterWithBackfill("tunnel", tunnel, streamgraph.Auto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %v; %d tunnel matches in existing window\n",
		mon.Registered(), len(initial))

	counts := map[string]int{}
	for _, e := range edges[warm:] {
		for _, qm := range mon.Process(e) {
			counts[qm.Query]++
			if counts[qm.Query] == 1 {
				fmt.Printf("first %s match: %v\n", qm.Query, qm.Match)
			}
		}
	}
	fmt.Println("\nalert totals:")
	for _, name := range mon.Registered() {
		fmt.Printf("  %-14s %d\n", name, counts[name])
	}
}
