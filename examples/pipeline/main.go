// Command pipeline wires the full production ingest path together: raw
// CSV netflow records are filtered with an attribute predicate, mapped
// to typed edges through the paper's Map() abstraction (Section 5.1),
// streamed into a continuous query, and measured with per-edge latency
// histograms.
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"strings"
	"time"

	"streamgraph"
	"streamgraph/internal/attr"
	"streamgraph/internal/ingest"
	"streamgraph/internal/metrics"
)

// makeCSV synthesizes a netflow CSV with an exfiltration episode buried
// in web noise: victim downloads from a compromised site (http), the
// dropper phones home (dns), then bulk data leaves over ftp.
func makeCSV(rows int) string {
	rng := rand.New(rand.NewSource(3))
	var b strings.Builder
	b.WriteString("ts,srcIP,dstIP,proto,srcPort,dstPort,bytes\n")
	ts := 1000
	for i := 0; i < rows; i++ {
		ts++
		fmt.Fprintf(&b, "%d,10.0.0.%d,93.184.216.%d,http,%d,80,%d\n",
			ts, rng.Intn(50), rng.Intn(50), 40000+rng.Intn(20000), rng.Intn(4000))
		if i%97 == 0 { // periodic chatter on a protocol we filter out
			ts++
			fmt.Fprintf(&b, "%d,10.0.0.%d,224.0.0.1,igmp,0,0,64\n", ts, rng.Intn(50))
		}
	}
	// The episode.
	ts++
	fmt.Fprintf(&b, "%d,10.0.0.7,203.0.113.66,http,41000,80,900000\n", ts)
	ts++
	fmt.Fprintf(&b, "%d,10.0.0.7,198.51.100.9,dns,53000,53,120\n", ts)
	ts++
	fmt.Fprintf(&b, "%d,10.0.0.7,198.51.100.9,ftp,42000,21,88000000\n", ts)
	return b.String()
}

func main() {
	csvData := makeCSV(4000)

	// The Map() step: endpoints from srcIP/dstIP, edge type = protocol,
	// and a predicate dropping multicast management noise at the door.
	where := attr.MustPredicate("proto != igmp && bytes > 0")
	mapper := ingest.NetflowMapper(where)

	// Train statistics on a first pass over the file.
	src, err := ingest.NewCSVSource(strings.NewReader(csvData), ingest.CSVConfig{Mapper: mapper})
	if err != nil {
		log.Fatal(err)
	}
	stats := streamgraph.NewStatistics()
	trained := 0
	for {
		e, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		stats.Observe(e)
		trained++
	}
	fmt.Printf("trained on %d flows (igmp filtered at ingest)\n", trained)

	// The exfiltration pattern: victim browses, resolves the C2 name,
	// then pushes bulk data to the same host.
	q, err := streamgraph.ParseQuery(`
		e victim website http
		e victim c2 dns
		e victim c2 ftp
	`)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := streamgraph.NewEngine(q, streamgraph.Options{
		Strategy:   streamgraph.Auto,
		Window:     500,
		Statistics: stats,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("decomposition:", eng.Decomposition())

	// Second pass: the live run, with per-edge latency recording. The
	// fresh mapper restarts the record pipeline from the top of the file.
	src2, err := ingest.NewCSVSource(strings.NewReader(csvData), ingest.CSVConfig{
		Mapper: ingest.NetflowMapper(where),
	})
	if err != nil {
		log.Fatal(err)
	}
	var hist metrics.Histogram
	meter := metrics.NewMeter()
	matches := 0
	for {
		e, err := src2.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		ms := eng.Process(e)
		hist.RecordDuration(time.Since(t0))
		meter.Add(1)
		for _, m := range ms {
			matches++
			fmt.Printf("ALERT: %v\n", m)
		}
	}
	fmt.Printf("throughput: %s\n", meter)
	fmt.Printf("per-edge latency: %s\n", hist.Summary())
	if matches == 0 {
		log.Fatal("expected the planted exfiltration to be detected")
	}
}
