// Command quickstart is the smallest end-to-end use of the streamgraph
// engine: register a two-hop pattern, train selectivity statistics on a
// short sample, then feed a live stream and print matches as they
// complete.
package main

import (
	"fmt"
	"log"

	"streamgraph"
)

func main() {
	// A two-hop pattern: somebody logs into a host over RDP, and that
	// host then opens a file transfer to a third machine within the
	// window.
	q, err := streamgraph.ParseQuery(`
		# lateral movement followed by staging
		v attacker *
		v hop *
		v store *
		e attacker hop rdp
		e hop store ftp
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Selectivity statistics from a sample of historic traffic: rdp is
	// rare, http is everywhere.
	training := []streamgraph.Edge{
		{Src: "a", SrcLabel: "ip", Dst: "b", DstLabel: "ip", Type: "http", TS: 1},
		{Src: "b", SrcLabel: "ip", Dst: "c", DstLabel: "ip", Type: "http", TS: 2},
		{Src: "c", SrcLabel: "ip", Dst: "d", DstLabel: "ip", Type: "http", TS: 3},
		{Src: "a", SrcLabel: "ip", Dst: "d", DstLabel: "ip", Type: "ftp", TS: 4},
		{Src: "d", SrcLabel: "ip", Dst: "e", DstLabel: "ip", Type: "ftp", TS: 5},
		{Src: "e", SrcLabel: "ip", Dst: "f", DstLabel: "ip", Type: "rdp", TS: 6},
		{Src: "f", SrcLabel: "ip", Dst: "g", DstLabel: "ip", Type: "ftp", TS: 7},
	}
	stats := streamgraph.NewStatistics()
	stats.ObserveAll(training)

	eng, err := streamgraph.NewEngine(q, streamgraph.Options{
		Strategy:   streamgraph.Auto,
		Window:     100,
		Statistics: stats,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("decomposition:", eng.Decomposition())

	live := []streamgraph.Edge{
		{Src: "ws1", SrcLabel: "ip", Dst: "ws2", DstLabel: "ip", Type: "http", TS: 100},
		{Src: "evil", SrcLabel: "ip", Dst: "srv9", DstLabel: "ip", Type: "rdp", TS: 101},
		{Src: "ws2", SrcLabel: "ip", Dst: "ws3", DstLabel: "ip", Type: "http", TS: 102},
		{Src: "srv9", SrcLabel: "ip", Dst: "nas1", DstLabel: "ip", Type: "ftp", TS: 103},
		// Outside the window relative to the rdp edge: not reported.
		{Src: "srv9", SrcLabel: "ip", Dst: "nas2", DstLabel: "ip", Type: "ftp", TS: 999},
	}
	for _, e := range live {
		for _, m := range eng.Process(e) {
			fmt.Printf("ALERT ts=%d: %v\n", e.TS, m)
		}
	}

	st := eng.Stats()
	fmt.Printf("processed %d edges, %d matches, %d anchored searches, peak %d partial matches\n",
		st.EdgesProcessed, st.CompleteMatches, st.LeafSearches, st.PeakPartial)
}
