// Command dos detects the denial-of-service pattern of the paper's
// Figure 1b: several distinct bot machines all opening TCP connections
// to the same victim within a short window. The pattern is a star query
// — vertex injectivity guarantees the bots are distinct hosts.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"streamgraph"
)

func main() {
	// Four distinct sources hammering one victim over TCP.
	q, err := streamgraph.ParseQuery(`
		v victim *
		e bot1 victim tcp
		e bot2 victim tcp
		e bot3 victim tcp
		e bot4 victim tcp
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Background traffic to train the statistics: mostly web chatter.
	rng := rand.New(rand.NewSource(7))
	var training []streamgraph.Edge
	for i := 0; i < 3000; i++ {
		t := "http"
		if i%3 == 0 {
			t = "tcp"
		}
		training = append(training, streamgraph.Edge{
			Src: fmt.Sprintf("h%d", rng.Intn(200)), SrcLabel: "ip",
			Dst: fmt.Sprintf("h%d", rng.Intn(200)), DstLabel: "ip",
			Type: t, TS: int64(i),
		})
	}
	stats := streamgraph.NewStatistics()
	stats.ObserveAll(training)

	eng, err := streamgraph.NewEngine(q, streamgraph.Options{
		Strategy:   streamgraph.SingleLazy,
		Window:     50, // the fan-in must land within 50 time units
		Statistics: stats,
		// A hub receiving N in-window TCP edges yields C(N,4)·4! vertex
		// assignments; cap the per-event explosion like a real deployment.
		MaxMatchesPerSearch: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("decomposition:", eng.Decomposition())

	// Live traffic: noise plus a burst of 5 bots hitting "victim-7".
	ts := int64(10_000)
	alerts := 0
	emit := func(e streamgraph.Edge) {
		for range eng.Process(e) {
			alerts++
		}
	}
	for i := 0; i < 500; i++ {
		ts++
		emit(streamgraph.Edge{
			Src: fmt.Sprintf("h%d", rng.Intn(200)), SrcLabel: "ip",
			Dst: fmt.Sprintf("h%d", rng.Intn(200)), DstLabel: "ip",
			Type: "http", TS: ts,
		})
	}
	fmt.Printf("after %d noise edges: %d alerts\n", 500, alerts)

	for b := 0; b < 5; b++ {
		ts++
		emit(streamgraph.Edge{
			Src: fmt.Sprintf("bot-%d", b), SrcLabel: "ip",
			Dst: "victim-7", DstLabel: "ip",
			Type: "tcp", TS: ts,
		})
	}
	// The engine counts bijections (the paper's semantics): choosing 4
	// of the 5 bots gives C(5,4)=5 host sets, and the 4 interchangeable
	// bot variables admit 4! assignments each — 5 * 24 = 120 embeddings.
	// A deployment that wants one alert per host set deduplicates on the
	// sorted binding, as an alert pipeline would.
	fmt.Printf("after the bot burst: %d alerts (5 bot sets x 4! automorphic assignments)\n", alerts)

	st := eng.Stats()
	fmt.Printf("processed %d edges, %d complete matches, peak %d partial matches\n",
		st.EdgesProcessed, st.CompleteMatches, st.PeakPartial)
	if alerts == 0 {
		log.Fatal("expected DoS alerts, found none")
	}
}
