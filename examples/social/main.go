// Command social runs the paper's Figure 3 style social-media query on
// the LSBench-like RDF stream: a user knows another user who creates a
// post that a third user likes — reported continuously as the activity
// stream unfolds. It demonstrates heterogeneous vertex labels, the
// schema-driven generator, and automatic strategy selection.
package main

import (
	"fmt"
	"log"

	"streamgraph"
	"streamgraph/internal/datagen"
)

func main() {
	edges := datagen.LSBench(datagen.LSBenchConfig{Seed: 7, Edges: 40000, Users: 3000})

	// "Tell me when a friend of someone creates a post that gets liked":
	//   a -knows-> b, b -createsPost-> p, c -likesPost-> p
	q, err := streamgraph.ParseQuery(`
		v a user
		v b user
		v p post
		v c user
		e a b knows
		e b p createsPost
		e c p likesPost
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Train on a prefix that covers the static phase plus the onset of
	// the activity phase, so both the social and the activity edge
	// types have observed selectivities. The full stream (including the
	// training prefix) is then processed by the engine, exactly as the
	// paper's query-processing step replays the stream from the start.
	train := len(edges) / 2 * 11 / 10
	if train > len(edges) {
		train = len(edges)
	}
	stats := streamgraph.NewStatistics()
	stats.ObserveAll(edges[:train])

	if xi, ok := stats.RelativeSelectivity(q); ok {
		fmt.Printf("relative selectivity ξ = %.3g → ", xi)
		if xi < 1e-3 {
			fmt.Println("PathLazy")
		} else {
			fmt.Println("SingleLazy")
		}
	}

	// The window spans the whole stream: a "knows" edge from the static
	// phase may join with activity arbitrarily later.
	window := edges[len(edges)-1].TS + 1
	eng, err := streamgraph.NewEngine(q, streamgraph.Options{
		Strategy:            streamgraph.Auto,
		Window:              window,
		Statistics:          stats,
		MaxMatchesPerSearch: 5000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("decomposition:", eng.Decomposition())

	matches := 0
	for _, e := range edges {
		for _, m := range eng.Process(e) {
			matches++
			if matches <= 5 {
				fmt.Printf("match: %v\n", m)
			}
		}
	}
	st := eng.Stats()
	fmt.Printf("\n%d matches over %d live edges (%d anchored searches, %d iso steps, peak %d partials)\n",
		matches, st.EdgesProcessed, st.LeafSearches, st.IsoSteps, st.PeakPartial)
}
