package streamgraph

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

func shardedTestEdges() []Edge {
	var out []Edge
	ts := int64(0)
	e := func(src, dst, tp string) {
		ts++
		out = append(out, Edge{Src: src, SrcLabel: "ip", Dst: dst, DstLabel: "ip", Type: tp, TS: ts})
	}
	for i := 0; i < 300; i++ {
		a, b, c := fmt.Sprintf("h%d", i%17), fmt.Sprintf("h%d", (i*7+3)%17), fmt.Sprintf("h%d", (i*11+5)%17)
		switch i % 3 {
		case 0:
			e(a, b, "rdp")
		case 1:
			e(b, c, "ftp")
		default:
			e(a, c, "ssh")
		}
	}
	return out
}

func qmSig(qm QueryMatch) string {
	parts := make([]string, 0, len(qm.Match.Edges))
	for _, me := range qm.Match.Edges {
		parts = append(parts, fmt.Sprintf("%d:%s>%s@%d", me.QueryEdge, me.Src, me.Dst, me.TS))
	}
	return qm.Query + "|" + strings.Join(parts, ";")
}

// TestShardedMonitorMatchesMonitor is the facade-level differential:
// the sharded monitor must report the same per-query match multiset as
// the synchronous Monitor.
func TestShardedMonitorMatchesMonitor(t *testing.T) {
	edges := shardedTestEdges()
	queries := map[string]*Query{
		"lateral": PathQuery(Wildcard, "rdp", "ftp"),
		"hop":     PathQuery(Wildcard, "ftp", "ssh"),
	}
	names := []string{"hop", "lateral"}

	mon := NewMonitor(MonitorOptions{Window: 50})
	for _, name := range names {
		if err := mon.Register(name, queries[name], SingleLazy); err != nil {
			t.Fatal(err)
		}
	}
	var want []string
	for _, se := range edges {
		for _, qm := range mon.Process(se) {
			want = append(want, qmSig(qm))
		}
	}
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("monitor found no matches; differential is vacuous")
	}

	sm := NewShardedMonitor(ShardedMonitorOptions{Window: 50, Shards: 2})
	for _, name := range names {
		if err := sm.Register(name, queries[name], SingleLazy); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	var got []string
	done := make(chan struct{})
	go func() {
		defer close(done)
		for qm := range sm.Matches() {
			mu.Lock()
			got = append(got, qmSig(qm))
			mu.Unlock()
		}
	}()
	sm.ProcessBatch(edges[:100])
	for _, se := range edges[100:] {
		sm.Process(se)
	}
	sm.Close()
	<-done
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("sharded monitor found %d matches, monitor %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match multiset differs at %d:\n got %s\nwant %s", i, got[i], want[i])
		}
	}

	st := sm.Stats()
	if len(st) != 2 {
		t.Fatalf("got %d shard stats, want 2", len(st))
	}
	var emitted, stored int64
	for _, s := range st {
		// Replicas are edge-type partitioned: a shard only receives the
		// edges its queries can match, so it routes at most the stream
		// and stores at most what it routed.
		if s.EdgesRouted > int64(len(edges)) {
			t.Fatalf("shard %d routed %d edges, stream has %d", s.Shard, s.EdgesRouted, len(edges))
		}
		if s.ReplicaStored > s.EdgesRouted {
			t.Fatalf("shard %d stored %d edges but only %d were routed to it", s.Shard, s.ReplicaStored, s.EdgesRouted)
		}
		if s.ReplicaTypes != 2 {
			t.Fatalf("shard %d filters %d types, want 2 (one 2-type query each)", s.Shard, s.ReplicaTypes)
		}
		emitted += s.MatchesEmitted
		stored += s.ReplicaStored
	}
	// Each query touches 2 of the 3 edge types, so the two replicas
	// together hold 4/3 of the stream — strictly less than the 2x of
	// full replication.
	if stored >= 2*int64(len(edges)) {
		t.Fatalf("replicas stored %d edges total; full replication would be %d — filtering saved nothing",
			stored, 2*len(edges))
	}
	if emitted != int64(len(got)) {
		t.Fatalf("stats report %d emitted, collected %d", emitted, len(got))
	}
	if reg := sm.Registered(); len(reg) != 2 || reg[0] != "hop" {
		t.Fatalf("Registered() = %v", reg)
	}
}
