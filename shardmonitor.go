package streamgraph

import (
	"streamgraph/internal/core"
	"streamgraph/internal/shard"
)

// ShardedMonitor mirrors Monitor on the sharded runtime: registered
// queries are partitioned across shard workers, each owning a private
// windowed graph replica filtered to the edge types its queries can
// match, and edges flow through per-shard bounded queues instead of a
// per-edge fork/join. Ingestion is asynchronous — Process and
// ProcessBatch return as soon as the edge is queued on every
// interested shard — and completed matches arrive on the Matches
// channel.
//
// Choose ShardedMonitor over Monitor when many queries share one
// high-rate stream on a multi-core host and per-edge latency coupling
// between queries matters: a slow query stalls only its own shard.
// Replica memory scales with the queries' edge-type footprints, not
// with the shard count — only wildcard-typed queries force a full
// replica on their shard. Choose Monitor when matches must be
// returned synchronously with the edge that produced them.
//
// The Matches channel MUST be consumed concurrently with ingestion;
// every queue in the pipeline is bounded, so an unread match
// eventually backpressures Process.
type ShardedMonitor struct {
	r    *shard.Router
	out  chan QueryMatch
	done chan struct{}
}

// ShardedMonitorOptions configures a ShardedMonitor.
type ShardedMonitorOptions struct {
	// Window is tW, shared by every registered query (0 = unbounded).
	Window int64
	// Shards is the worker count (<= 0 selects GOMAXPROCS).
	Shards int
	// QueueLen bounds each shard's ingest queue (default 256).
	QueueLen int
	// Ordered delivers matches in deterministic (arrival, registration)
	// order — a serial Monitor's order — at the cost of a per-edge
	// collector rendezvous.
	Ordered bool
}

// ShardStats is a point-in-time snapshot of one shard worker.
type ShardStats struct {
	Shard          int
	Queries        int
	QueueDepth     int
	QueueCap       int
	EdgesRouted    int64
	MatchesEmitted int64

	// ReplicaEdges is the number of edges currently live in the
	// shard's filtered graph replica, ReplicaStored the cumulative
	// count ever admitted into it, and ReplicaTypes the number of edge
	// types the replica is filtered to (-1 = replicating every type).
	ReplicaEdges  int64
	ReplicaStored int64
	ReplicaTypes  int64
}

// NewShardedMonitor starts an empty sharded monitor.
func NewShardedMonitor(opts ShardedMonitorOptions) *ShardedMonitor {
	m := &ShardedMonitor{
		r: shard.New(shard.Config{
			Shards:   opts.Shards,
			QueueLen: opts.QueueLen,
			Window:   opts.Window,
			Ordered:  opts.Ordered,
		}),
		out:  make(chan QueryMatch, 1024),
		done: make(chan struct{}),
	}
	go m.pump()
	return m
}

// pump converts the runtime's portable matches into facade matches; it
// needs no graph access because shards resolve names before emitting.
func (m *ShardedMonitor) pump() {
	defer close(m.done)
	defer close(m.out)
	for sm := range m.r.Matches() {
		qm := QueryMatch{Query: sm.Query, Match: Match{FirstTS: sm.FirstTS, LastTS: sm.LastTS}}
		for _, b := range sm.Bindings {
			qm.Match.Bindings = append(qm.Match.Bindings, Binding{
				QueryVertex: b.QueryVertex, DataVertex: b.DataVertex,
			})
		}
		for _, e := range sm.Edges {
			qm.Match.Edges = append(qm.Match.Edges, MatchedEdge{
				QueryEdge: e.QueryEdge, Src: e.Src, Dst: e.Dst, Type: e.Type, TS: e.TS,
			})
		}
		m.out <- qm
	}
}

// Register assigns the query to the least-loaded shard under the given
// strategy. It blocks until that shard has acknowledged the
// registration, so edges processed afterwards are seen by the query.
func (m *ShardedMonitor) Register(name string, q *Query, strategy Strategy) error {
	return m.r.Register(name, q, core.Config{Strategy: strategy})
}

// Unregister removes a query and its partial-match state.
func (m *ShardedMonitor) Unregister(name string) { m.r.Unregister(name) }

// Registered returns the registered query names in registration order.
func (m *ShardedMonitor) Registered() []string { return m.r.Registered() }

// Process queues one edge on every shard and returns its arrival
// sequence number. Matches arrive asynchronously on Matches.
func (m *ShardedMonitor) Process(se Edge) uint64 { return m.r.Ingest(se) }

// ProcessBatch queues a whole batch (each shard runs its amortized
// batch pipeline over it) and returns the first edge's arrival
// sequence number. The slice must not be mutated afterwards.
func (m *ShardedMonitor) ProcessBatch(edges []Edge) uint64 { return m.r.IngestBatch(edges) }

// Matches returns the asynchronous match channel. It is closed by
// Close after all queued edges are fully processed.
func (m *ShardedMonitor) Matches() <-chan QueryMatch { return m.out }

// Stats snapshots every shard's counters.
func (m *ShardedMonitor) Stats() []ShardStats {
	raw := m.r.Stats()
	out := make([]ShardStats, len(raw))
	for i, s := range raw {
		out[i] = ShardStats{
			Shard: s.Shard, Queries: s.Queries,
			QueueDepth: s.QueueDepth, QueueCap: s.QueueCap,
			EdgesRouted: s.EdgesRouted, MatchesEmitted: s.MatchesEmitted,
			ReplicaEdges: s.ReplicaEdges, ReplicaStored: s.ReplicaStored,
			ReplicaTypes: s.ReplicaTypes,
		}
	}
	return out
}

// Close drains the shards and closes the Matches channel; a consumer
// reading until close observes every match. Matches must keep being
// consumed while Close runs.
func (m *ShardedMonitor) Close() {
	m.r.Close()
	<-m.done
}
