package iso

import (
	"streamgraph/internal/graph"
	"streamgraph/internal/query"
)

// maxPoolFree bounds the number of recycled matches a pool retains, so
// a burst of evictions cannot pin peak memory forever.
const maxPoolFree = 4096

// MatchPool recycles the backing arrays of discarded matches for one
// query. Every match of a query has the same shape (full-length binding
// arrays indexed by global query vertex/edge indices), so a discarded
// match's arrays can back any future match of the same query. The
// SJ-Tree feeds its pool from window expiry and from candidates the
// engine discards before insertion; join outputs and retained clones
// draw from it, making the steady-state join path allocation-free.
//
// A pool is not safe for concurrent use: it must be owned by a single
// goroutine (in the engine, the single-writer merge path).
type MatchPool struct {
	nv, ne int
	free   []Match
	gets   int64 // matches handed out by Get (incl. via Clone)
	fresh  int64 // of those, how many had to be newly allocated
}

// NewMatchPool returns an empty pool for matches of query q.
func NewMatchPool(q *query.Graph) *MatchPool {
	return &MatchPool{nv: len(q.Vertices), ne: len(q.Edges)}
}

// Get returns a match with uninitialized bindings (every slot will be
// overwritten by the caller). Prefer Clone when copying an existing
// match.
func (p *MatchPool) Get() Match {
	p.gets++
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free = p.free[:n-1]
		return m
	}
	p.fresh++
	return Match{
		VertexOf: make([]graph.VertexID, p.nv),
		EdgeOf:   make([]graph.EdgeID, p.ne),
	}
}

// Clone returns a deep copy of src backed by recycled arrays when
// available.
func (p *MatchPool) Clone(src Match) Match {
	m := p.Get()
	copy(m.VertexOf, src.VertexOf)
	copy(m.EdgeOf, src.EdgeOf)
	m.MinTS, m.MaxTS = src.MinTS, src.MaxTS
	return m
}

// Put recycles a match's backing arrays. The caller must guarantee the
// match is exclusively owned: nothing else may reference its VertexOf
// or EdgeOf slices, which will be handed to a future Get. Matches of
// the wrong shape are ignored.
func (p *MatchPool) Put(m Match) {
	if len(m.VertexOf) != p.nv || len(m.EdgeOf) != p.ne || len(p.free) >= maxPoolFree {
		return
	}
	p.free = append(p.free, m)
}

// Len reports the number of recycled matches currently held.
func (p *MatchPool) Len() int { return len(p.free) }

// Stats reports cumulative Get calls and how many of them allocated
// fresh backing arrays; the difference is the number of recycled hits
// — the allocation-free-hot-path claim made observable. Like the pool
// itself, it must be read from the owning goroutine.
func (p *MatchPool) Stats() (gets, fresh int64) { return p.gets, p.fresh }
