// Package iso implements subgraph isomorphism over the dynamic data
// graph: a VF2-style filter-and-verify backtracking matcher (the
// baseline of Choudhury et al., EDBT 2015, Section 6) and the localized
// variants the SJ-Tree leaves need — matching a small query subgraph
// around a newly arrived edge, or around a vertex (used by Lazy Search's
// retrospective repair and by Algorithm 4's decomposition step).
//
// A match is a bijection between the vertices/edges of a (sub)query and
// a subgraph of the data graph: vertex-injective, edge-distinct,
// direction-, type- and label-respecting. Matches are represented with
// full-length binding arrays indexed by the *global* query vertex/edge
// indices so that partial matches from different SJ-Tree leaves join
// without translation.
package iso

import (
	"math"

	"streamgraph/internal/graph"
	"streamgraph/internal/query"
)

// NoEdge marks an unbound query-edge slot in a Match.
const NoEdge = graph.EdgeID(math.MaxUint32)

// Match is a (partial) embedding of a query graph in the data graph.
// VertexOf[i] is the data vertex bound to query vertex i (graph.NoVertex
// if unbound); EdgeOf[j] is the data edge bound to query edge j (NoEdge
// if unbound). MinTS/MaxTS track τ(g) over the bound edges.
type Match struct {
	VertexOf []graph.VertexID
	EdgeOf   []graph.EdgeID
	MinTS    int64
	MaxTS    int64
}

// NewMatch returns an empty match sized for query q.
func NewMatch(q *query.Graph) Match {
	m := Match{
		VertexOf: make([]graph.VertexID, len(q.Vertices)),
		EdgeOf:   make([]graph.EdgeID, len(q.Edges)),
		MinTS:    math.MaxInt64,
		MaxTS:    math.MinInt64,
	}
	for i := range m.VertexOf {
		m.VertexOf[i] = graph.NoVertex
	}
	for i := range m.EdgeOf {
		m.EdgeOf[i] = NoEdge
	}
	return m
}

// Clone returns a deep copy of m.
func (m Match) Clone() Match {
	c := m
	c.VertexOf = append([]graph.VertexID(nil), m.VertexOf...)
	c.EdgeOf = append([]graph.EdgeID(nil), m.EdgeOf...)
	return c
}

// Span returns τ(g): the duration between the earliest and latest bound
// edge, or 0 for matches with fewer than two edges.
func (m Match) Span() int64 {
	if m.MaxTS < m.MinTS {
		return 0
	}
	return m.MaxTS - m.MinTS
}

// BoundEdges returns the number of bound query edges.
func (m Match) BoundEdges() int {
	n := 0
	for _, e := range m.EdgeOf {
		if e != NoEdge {
			n++
		}
	}
	return n
}

// HasEdge reports whether data edge id participates in the match.
func (m Match) HasEdge(id graph.EdgeID) bool {
	for _, e := range m.EdgeOf {
		if e == id {
			return true
		}
	}
	return false
}

// Matcher runs subgraph isomorphism queries for one query graph against
// one data graph. It is not safe for concurrent use.
type Matcher struct {
	G *graph.Graph
	Q *query.Graph

	// Window, when positive, prunes any embedding whose edge-timestamp
	// span τ(g) is >= Window (the paper requires τ(g) < tW).
	Window int64

	// MaxMatches, when positive, stops the search after that many
	// matches have been produced (guard against pathological queries).
	MaxMatches int

	// MaxStepsPerSearch, when positive, aborts a single search call
	// after that many recursive extension steps — the backtracking
	// search space at hub vertices can explode without producing any
	// match. Aborted searches may miss matches (load shedding).
	MaxStepsPerSearch int64

	// MaxSeq, when positive, hides every data edge whose arrival
	// sequence number exceeds it. The batch ingestion path admits a
	// whole batch into the graph before searching; setting MaxSeq to the
	// anchor edge's Seq makes each search see exactly the graph a serial
	// edge-at-a-time run would have seen, so batch results are identical
	// to the serial schedule. Zero disables the bound.
	MaxSeq uint64

	// Pool, when non-nil, supplies the backing arrays for the clones
	// FindAroundEdge / FindAroundVertex / FindAll retain. The engine
	// wires the SJ-Tree's pool here so expired partial matches are
	// recycled into new candidates. The pool is single-owner: only the
	// engine's own merge-path matcher gets one, never the throwaway
	// matchers of a parallel search fan-out.
	Pool *MatchPool

	st searchState
}

// NewMatcher returns a matcher for q over g.
func NewMatcher(g *graph.Graph, q *query.Graph) *Matcher {
	return &Matcher{G: g, Q: q}
}

type searchState struct {
	sub       []int // query edge indices being matched
	isSub     []bool
	boundCnt  int
	cur       Match
	vUsed     vertexSet
	emit      func(Match) bool // returns false to stop
	stopped   bool
	calls     int64
	callsThis int64 // steps within the current search call
}

// Calls reports the number of recursive extension steps performed since
// the matcher was created (a cheap work metric used by the benchmarks).
func (m *Matcher) Calls() int64 { return m.st.calls }

func (m *Matcher) initState(sub []int, emit func(Match) bool) {
	st := &m.st
	st.sub = sub
	if cap(st.isSub) < len(m.Q.Edges) {
		st.isSub = make([]bool, len(m.Q.Edges))
	} else {
		st.isSub = st.isSub[:len(m.Q.Edges)]
		for i := range st.isSub {
			st.isSub[i] = false
		}
	}
	for _, ei := range sub {
		st.isSub[ei] = true
	}
	st.boundCnt = 0
	// st.cur's backing arrays are reused across searches: emitted
	// matches are only valid for the duration of the emit call (callers
	// clone to retain), so resetting the slots is safe and avoids two
	// allocations per anchor attempt.
	if st.cur.VertexOf == nil {
		st.cur = NewMatch(m.Q)
	} else {
		for i := range st.cur.VertexOf {
			st.cur.VertexOf[i] = graph.NoVertex
		}
		for i := range st.cur.EdgeOf {
			st.cur.EdgeOf[i] = NoEdge
		}
		st.cur.MinTS, st.cur.MaxTS = math.MaxInt64, math.MinInt64
	}
	// Balanced bind/unbind pairs leave vUsed empty between searches; the
	// reset is a defensive slow path that never fires in normal use.
	if st.vUsed.size != 0 {
		st.vUsed.reset()
	}
	st.emit = emit
	st.stopped = false
	st.callsThis = 0
}

// labelOK reports whether data vertex v satisfies query vertex qv's
// label constraint.
func (m *Matcher) labelOK(qv int, v graph.VertexID) bool {
	want := m.Q.LabelOf(qv)
	if want == query.Wildcard {
		return true
	}
	id, ok := m.G.Labels().Lookup(want)
	if !ok {
		return false
	}
	return m.G.VertexLabel(v) == graph.LabelID(id)
}

// typeID resolves the interned TypeID for query edge qe, reporting false
// if the type has never been seen in the data graph (no match possible).
func (m *Matcher) typeID(qe int) (graph.TypeID, bool) {
	id, ok := m.G.Types().Lookup(m.Q.Edges[qe].Type)
	return graph.TypeID(id), ok
}

// Retain deep-copies an emitted match, drawing backing arrays from the
// pool when one is wired. Callers of the streaming Find*Func forms use
// it to keep a match beyond the emit call without paying a fresh
// allocation.
func (m *Matcher) Retain(mt Match) Match {
	if m.Pool != nil {
		return m.Pool.Clone(mt)
	}
	return mt.Clone()
}

// FindAroundEdge finds all embeddings of the subquery (the query edges
// listed in sub, which must induce a weakly connected subgraph) that use
// data edge e for at least one query edge. Every returned mapping binds
// e; distinct automorphic mappings are returned separately, matching the
// bijection-counting semantics of the paper.
func (m *Matcher) FindAroundEdge(sub []int, e graph.Edge) []Match {
	var out []Match
	m.FindAroundEdgeFunc(sub, e, func(mt Match) bool {
		out = append(out, m.Retain(mt))
		return m.MaxMatches <= 0 || len(out) < m.MaxMatches
	})
	return out
}

// FindAroundEdgeFunc is the streaming form of FindAroundEdge. emit
// receives each match (valid only for the duration of the call — clone
// to retain); returning false stops the search.
func (m *Matcher) FindAroundEdgeFunc(sub []int, e graph.Edge, emit func(Match) bool) {
	if m.MaxSeq > 0 && e.Seq > m.MaxSeq {
		return
	}
	for _, qe := range sub {
		tid, ok := m.typeID(qe)
		if !ok || tid != e.Type {
			continue
		}
		qs, qd := m.Q.Edges[qe].Src, m.Q.Edges[qe].Dst
		if !m.labelOK(qs, e.Src) || !m.labelOK(qd, e.Dst) {
			continue
		}
		m.initState(sub, emit)
		m.bindEdge(qe, e)
		m.extend()
		m.unbindEdge(qe, e)
		if m.st.stopped {
			return
		}
	}
}

// FindAroundVertex finds all embeddings of the subquery that bind data
// vertex v to some query vertex of the subquery. Used by Lazy Search's
// retrospective neighborhood search.
func (m *Matcher) FindAroundVertex(sub []int, v graph.VertexID) []Match {
	var out []Match
	m.FindAroundVertexFunc(sub, v, func(mt Match) bool {
		out = append(out, m.Retain(mt))
		return m.MaxMatches <= 0 || len(out) < m.MaxMatches
	})
	return out
}

// FindAroundVertexFunc is the streaming form of FindAroundVertex.
func (m *Matcher) FindAroundVertexFunc(sub []int, v graph.VertexID, emit func(Match) bool) {
	verts := m.Q.EdgeVertices(sub)
	for _, qv := range verts {
		if !m.labelOK(qv, v) {
			continue
		}
		m.initState(sub, emit)
		m.st.cur.VertexOf[qv] = v
		m.st.vUsed.add(v)
		m.extend()
		m.st.cur.VertexOf[qv] = graph.NoVertex
		m.st.vUsed.remove(v)
		if m.st.stopped {
			return
		}
	}
}

// FindAll enumerates every embedding of the subquery in the entire data
// graph (the non-incremental VF2-style baseline). The first subquery
// edge is used as the anchor: every data edge of its type is tried.
func (m *Matcher) FindAll(sub []int) []Match {
	var out []Match
	m.FindAllFunc(sub, func(mt Match) bool {
		out = append(out, m.Retain(mt))
		return m.MaxMatches <= 0 || len(out) < m.MaxMatches
	})
	return out
}

// FindAllFunc is the streaming form of FindAll.
func (m *Matcher) FindAllFunc(sub []int, emit func(Match) bool) {
	if len(sub) == 0 {
		return
	}
	anchor := sub[0]
	tid, ok := m.typeID(anchor)
	if !ok {
		return
	}
	qs, qd := m.Q.Edges[anchor].Src, m.Q.Edges[anchor].Dst
	stopped := false
	m.G.EachEdge(func(e graph.Edge) bool {
		if e.Type != tid {
			return true
		}
		if m.MaxSeq > 0 && e.Seq > m.MaxSeq {
			return true
		}
		if !m.labelOK(qs, e.Src) || !m.labelOK(qd, e.Dst) {
			return true
		}
		m.initState(sub, emit)
		m.bindEdge(anchor, e)
		m.extend()
		m.unbindEdge(anchor, e)
		if m.st.stopped {
			stopped = true
			return false
		}
		return true
	})
	_ = stopped
}

// bindEdge binds query edge qe to data edge e, binding both endpoints.
// Callers must have verified type, direction and label compatibility.
func (m *Matcher) bindEdge(qe int, e graph.Edge) {
	st := &m.st
	q := m.Q.Edges[qe]
	st.cur.EdgeOf[qe] = e.ID
	st.boundCnt++
	if st.cur.VertexOf[q.Src] == graph.NoVertex {
		st.cur.VertexOf[q.Src] = e.Src
		st.vUsed.add(e.Src)
	}
	if st.cur.VertexOf[q.Dst] == graph.NoVertex {
		st.cur.VertexOf[q.Dst] = e.Dst
		st.vUsed.add(e.Dst)
	}
	if e.TS < st.cur.MinTS {
		st.cur.MinTS = e.TS
	}
	if e.TS > st.cur.MaxTS {
		st.cur.MaxTS = e.TS
	}
}

func (m *Matcher) unbindEdge(qe int, e graph.Edge) {
	// Timestamps are restored by the caller snapshotting MinTS/MaxTS;
	// see extend. Here we only release the edge and vertex bindings.
	st := &m.st
	q := m.Q.Edges[qe]
	st.cur.EdgeOf[qe] = NoEdge
	st.boundCnt--
	if m.vertexFreeable(q.Src, e.Src) {
		st.cur.VertexOf[q.Src] = graph.NoVertex
		st.vUsed.remove(e.Src)
	}
	if m.vertexFreeable(q.Dst, e.Dst) {
		st.cur.VertexOf[q.Dst] = graph.NoVertex
		st.vUsed.remove(e.Dst)
	}
}

// vertexFreeable reports whether query vertex qv's binding is no longer
// justified by any bound edge and may be released.
func (m *Matcher) vertexFreeable(qv int, _ graph.VertexID) bool {
	st := &m.st
	if st.cur.VertexOf[qv] == graph.NoVertex {
		return false
	}
	for _, ei := range st.sub {
		if st.cur.EdgeOf[ei] == NoEdge {
			continue
		}
		qe := m.Q.Edges[ei]
		if qe.Src == qv || qe.Dst == qv {
			return false
		}
	}
	// Anchor-vertex bindings (FindAroundVertex) are released by the
	// caller, not here; those have no supporting edge either, but the
	// anchor loop owns them. We distinguish by checking bound count:
	// during recursion a vertex with no supporting edges must have been
	// bound by the anchor loop exactly when boundCnt == 0 paths occur.
	return true
}

// extend recursively binds the remaining unbound subquery edges.
func (m *Matcher) extend() {
	st := &m.st
	if st.stopped {
		return
	}
	st.calls++
	st.callsThis++
	if m.MaxStepsPerSearch > 0 && st.callsThis > m.MaxStepsPerSearch {
		st.stopped = true
		return
	}
	if st.boundCnt == len(st.sub) {
		if !st.emit(st.cur) {
			st.stopped = true
		}
		return
	}
	qe := m.pickNext()
	if qe < 0 {
		return // disconnected remainder: unreachable for valid subqueries
	}
	q := m.Q.Edges[qe]
	tid, ok := m.typeID(qe)
	if !ok {
		return
	}
	sv := st.cur.VertexOf[q.Src]
	dv := st.cur.VertexOf[q.Dst]
	savedMin, savedMax := st.cur.MinTS, st.cur.MaxTS

	try := func(e graph.Edge) bool {
		if m.MaxSeq > 0 && e.Seq > m.MaxSeq {
			return true // not yet arrived at the bounded point in time
		}
		if st.cur.hasDataEdge(e.ID, st.sub) {
			return true
		}
		if m.Window > 0 {
			lo, hi := st.cur.MinTS, st.cur.MaxTS
			if e.TS < lo {
				lo = e.TS
			}
			if e.TS > hi {
				hi = e.TS
			}
			if lo <= hi && hi-lo >= m.Window {
				return true
			}
		}
		m.bindEdge(qe, e)
		m.extend()
		m.unbindEdge(qe, e)
		st.cur.MinTS, st.cur.MaxTS = savedMin, savedMax
		return !st.stopped
	}

	switch {
	case sv != graph.NoVertex && dv != graph.NoVertex:
		m.G.EachOut(sv, func(h graph.Half) bool {
			if h.Type != tid || h.Peer != dv {
				return true
			}
			e, ok := m.G.Edge(h.ID)
			if !ok {
				return true
			}
			return try(e)
		})
	case sv != graph.NoVertex:
		m.G.EachOut(sv, func(h graph.Half) bool {
			if h.Type != tid {
				return true
			}
			if st.vUsed.has(h.Peer) {
				return true // injectivity: peer already bound to another query vertex
			}
			if !m.labelOK(q.Dst, h.Peer) {
				return true
			}
			e, ok := m.G.Edge(h.ID)
			if !ok {
				return true
			}
			return try(e)
		})
	case dv != graph.NoVertex:
		m.G.EachIn(dv, func(h graph.Half) bool {
			if h.Type != tid {
				return true
			}
			if st.vUsed.has(h.Peer) {
				return true
			}
			if !m.labelOK(q.Src, h.Peer) {
				return true
			}
			e, ok := m.G.Edge(h.ID)
			if !ok {
				return true
			}
			return try(e)
		})
	}
}

// pickNext selects the next unbound subquery edge that touches a bound
// vertex, preferring edges with both endpoints bound (cheapest to
// verify). Returns -1 if no such edge exists.
func (m *Matcher) pickNext() int {
	st := &m.st
	best, bestScore := -1, -1
	for _, ei := range st.sub {
		if st.cur.EdgeOf[ei] != NoEdge {
			continue
		}
		q := m.Q.Edges[ei]
		score := 0
		if st.cur.VertexOf[q.Src] != graph.NoVertex {
			score++
		}
		if st.cur.VertexOf[q.Dst] != graph.NoVertex {
			score++
		}
		if score > bestScore {
			best, bestScore = ei, score
		}
	}
	if bestScore <= 0 {
		return -1
	}
	return best
}

func (m Match) hasDataEdge(id graph.EdgeID, sub []int) bool {
	for _, ei := range sub {
		if m.EdgeOf[ei] == id {
			return true
		}
	}
	return false
}
