package iso

import (
	"math/rand"
	"testing"
	"testing/quick"

	"streamgraph/internal/graph"
	"streamgraph/internal/query"
)

// validMatch checks the isomorphism invariants of a produced match: the
// anchor is present when required, bound vertices are injective, every
// bound query edge maps to a live data edge of the right type and
// direction whose endpoints agree with the vertex binding, data edges
// are distinct, and the recorded timespan is correct.
func validMatch(g *graph.Graph, q *query.Graph, sub []int, m Match, anchor graph.EdgeID) bool {
	if anchor != NoEdge && !m.HasEdge(anchor) {
		return false
	}
	seenV := map[graph.VertexID]bool{}
	for _, dv := range m.VertexOf {
		if dv == graph.NoVertex {
			continue
		}
		if seenV[dv] {
			return false
		}
		seenV[dv] = true
	}
	seenE := map[graph.EdgeID]bool{}
	minTS, maxTS := int64(1<<62), int64(-1<<62)
	for _, qe := range sub {
		eid := m.EdgeOf[qe]
		if eid == NoEdge {
			return false // all subquery edges must be bound
		}
		if seenE[eid] {
			return false
		}
		seenE[eid] = true
		de, ok := g.Edge(eid)
		if !ok {
			return false
		}
		tid, ok := g.Types().Lookup(q.Edges[qe].Type)
		if !ok || de.Type != graph.TypeID(tid) {
			return false
		}
		if m.VertexOf[q.Edges[qe].Src] != de.Src || m.VertexOf[q.Edges[qe].Dst] != de.Dst {
			return false
		}
		if de.TS < minTS {
			minTS = de.TS
		}
		if de.TS > maxTS {
			maxTS = de.TS
		}
	}
	return m.MinTS == minTS && m.MaxTS == maxTS
}

// TestQuickMatchValidity: every match produced by the three search
// entry points satisfies the isomorphism invariants.
func TestQuickMatchValidity(t *testing.T) {
	types := []string{"t1", "t2", "t3"}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraphQ(rng, 6+rng.Intn(4), 12+rng.Intn(12), types)
		l := 1 + rng.Intn(3)
		qt := make([]string, l)
		for i := range qt {
			qt[i] = types[rng.Intn(len(types))]
		}
		q := query.NewPath(query.Wildcard, qt...)
		sub := make([]int, l)
		for i := range sub {
			sub[i] = i
		}
		m := NewMatcher(g, q)
		if rng.Intn(2) == 0 {
			m.Window = int64(5 + rng.Intn(20))
		}

		for _, mt := range m.FindAll(sub) {
			if !validMatch(g, q, sub, mt, NoEdge) {
				return false
			}
			if m.Window > 0 && mt.Span() >= m.Window {
				return false
			}
		}
		// Anchored search around a random live edge.
		var anchor graph.Edge
		found := false
		g.EachEdge(func(e graph.Edge) bool {
			if rng.Intn(4) == 0 {
				anchor, found = e, true
				return false
			}
			anchor, found = e, true
			return true
		})
		if found {
			for _, mt := range m.FindAroundEdge(sub, anchor) {
				if !validMatch(g, q, sub, mt, anchor.ID) {
					return false
				}
			}
		}
		// Vertex-anchored search around a random vertex.
		v := graph.VertexID(rng.Intn(g.NumVertices()))
		for _, mt := range m.FindAroundVertex(sub, v) {
			if !validMatch(g, q, sub, mt, NoEdge) {
				return false
			}
			touches := false
			for _, dv := range mt.VertexOf {
				if dv == v {
					touches = true
				}
			}
			if !touches {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAnchoredCoversIncremental: replaying a stream and summing
// anchored matches per arriving edge equals the final FindAll count —
// each match is discovered exactly once, on its last-arriving edge.
func TestQuickAnchoredCoversIncremental(t *testing.T) {
	types := []string{"a", "b"}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := 1 + rng.Intn(2)
		qt := make([]string, l)
		for i := range qt {
			qt[i] = types[rng.Intn(len(types))]
		}
		q := query.NewPath(query.Wildcard, qt...)
		sub := make([]int, l)
		for i := range sub {
			sub[i] = i
		}

		g := graph.New()
		const nv = 6
		for i := 0; i < nv; i++ {
			g.EnsureVertex(vname(i), "ip")
		}
		m := NewMatcher(g, q)
		incremental := 0
		for i := 0; i < 25; i++ {
			s, d := rng.Intn(nv), rng.Intn(nv)
			if s == d {
				continue
			}
			eid := g.AddEdgeNamed(vname(s), "ip", vname(d), "ip", types[rng.Intn(len(types))], int64(i+1))
			de, _ := g.Edge(eid)
			incremental += len(m.FindAroundEdge(sub, de))
		}
		return incremental == len(m.FindAll(sub))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func randomGraphQ(rng *rand.Rand, nVerts, nEdges int, types []string) *graph.Graph {
	g := graph.New()
	for i := 0; i < nVerts; i++ {
		g.EnsureVertex(vname(i), "ip")
	}
	for i := 0; i < nEdges; i++ {
		s, d := rng.Intn(nVerts), rng.Intn(nVerts)
		if s == d {
			continue
		}
		g.AddEdgeNamed(vname(s), "ip", vname(d), "ip", types[rng.Intn(len(types))], int64(i+1))
	}
	return g
}
