package iso

import "streamgraph/internal/graph"

// vertexSet is a dense bitset over the graph's vertex ID space, used by
// the matcher for O(1) injectivity checks in the inner adjacency loops.
// Vertex IDs are dense insertion-order indices (they are never
// recycled), so the set grows monotonically with the graph and is
// reused across searches: bind/unbind pairs are balanced, leaving the
// set empty between searches, so no per-search clearing is needed.
type vertexSet struct {
	words []uint64
	size  int
}

func (s *vertexSet) add(v graph.VertexID) {
	w := int(v >> 6)
	if w >= len(s.words) {
		s.words = append(s.words, make([]uint64, w+1-len(s.words))...)
	}
	bit := uint64(1) << (v & 63)
	if s.words[w]&bit == 0 {
		s.words[w] |= bit
		s.size++
	}
}

func (s *vertexSet) remove(v graph.VertexID) {
	w := int(v >> 6)
	if w >= len(s.words) {
		return
	}
	bit := uint64(1) << (v & 63)
	if s.words[w]&bit != 0 {
		s.words[w] &^= bit
		s.size--
	}
}

func (s *vertexSet) has(v graph.VertexID) bool {
	w := int(v >> 6)
	return w < len(s.words) && s.words[w]&(1<<(v&63)) != 0
}

// reset clears every bit, keeping the backing array. Only the defensive
// slow path in initState calls it; balanced searches never need it.
func (s *vertexSet) reset() {
	clear(s.words)
	s.size = 0
}
