package iso

import (
	"math/rand"
	"testing"

	"streamgraph/internal/graph"
	"streamgraph/internal/query"
)

// buildGraph materializes a data graph from (src, dst, type, ts) tuples
// with all vertex labels "ip".
func buildGraph(t *testing.T, edges [][4]string) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i, e := range edges {
		g.AddEdgeNamed(e[0], "ip", e[1], "ip", e[2], int64(i+1))
		_ = e[3]
	}
	return g
}

// oracleCount counts embeddings of q in g by brute force: enumerate all
// injective vertex assignments, then multiply the number of parallel
// data edges available for each query edge. Only valid for queries
// without parallel query edges (none of the test queries have them).
func oracleCount(g *graph.Graph, q *query.Graph) int {
	nq := len(q.Vertices)
	var verts []graph.VertexID
	g.EachVertex(func(v graph.VertexID) bool { verts = append(verts, v); return true })
	assign := make([]graph.VertexID, nq)
	used := make(map[graph.VertexID]bool)
	count := 0
	labelOK := func(qv int, v graph.VertexID) bool {
		want := q.LabelOf(qv)
		if want == query.Wildcard {
			return true
		}
		id, ok := g.Labels().Lookup(want)
		return ok && g.VertexLabel(v) == graph.LabelID(id)
	}
	var rec func(i int)
	rec = func(i int) {
		if i == nq {
			prod := 1
			for _, qe := range q.Edges {
				tid, ok := g.Types().Lookup(qe.Type)
				if !ok {
					return
				}
				n := 0
				g.EachOut(assign[qe.Src], func(h graph.Half) bool {
					if h.Peer == assign[qe.Dst] && h.Type == graph.TypeID(tid) {
						n++
					}
					return true
				})
				if n == 0 {
					return
				}
				prod *= n
			}
			count += prod
			return
		}
		for _, v := range verts {
			if used[v] || !labelOK(i, v) {
				continue
			}
			used[v] = true
			assign[i] = v
			rec(i + 1)
			delete(used, v)
		}
	}
	rec(0)
	return count
}

func TestFindAllSimplePath(t *testing.T) {
	g := buildGraph(t, [][4]string{
		{"a", "b", "tcp", ""},
		{"b", "c", "udp", ""},
		{"b", "d", "udp", ""},
		{"x", "y", "tcp", ""},
	})
	q := query.NewPath(query.Wildcard, "tcp", "udp")
	m := NewMatcher(g, q)
	got := m.FindAll([]int{0, 1})
	if len(got) != 2 {
		t.Fatalf("FindAll = %d matches, want 2", len(got))
	}
	if want := oracleCount(g, q); len(got) != want {
		t.Fatalf("FindAll = %d, oracle = %d", len(got), want)
	}
}

func TestFindAllRespectsDirection(t *testing.T) {
	g := buildGraph(t, [][4]string{
		{"a", "b", "tcp", ""},
		{"c", "b", "udp", ""}, // wrong direction for b->c
	})
	q := query.NewPath(query.Wildcard, "tcp", "udp")
	m := NewMatcher(g, q)
	if got := m.FindAll([]int{0, 1}); len(got) != 0 {
		t.Fatalf("direction violated: got %d matches", len(got))
	}
}

func TestFindAllRespectsLabels(t *testing.T) {
	g := graph.New()
	g.AddEdgeNamed("alice", "person", "post1", "post", "likes", 1)
	g.AddEdgeNamed("srv", "server", "post2", "post", "likes", 2)
	q := &query.Graph{
		Vertices: []query.Vertex{{Name: "u", Label: "person"}, {Name: "p", Label: "post"}},
		Edges:    []query.Edge{{Src: 0, Dst: 1, Type: "likes"}},
	}
	m := NewMatcher(g, q)
	got := m.FindAll([]int{0})
	if len(got) != 1 {
		t.Fatalf("label filter: got %d matches, want 1", len(got))
	}
	if g.VertexName(got[0].VertexOf[0]) != "alice" {
		t.Fatalf("wrong vertex matched: %s", g.VertexName(got[0].VertexOf[0]))
	}
}

func TestVertexInjectivity(t *testing.T) {
	// Triangle-ish data where a non-injective map would close a path.
	g := buildGraph(t, [][4]string{
		{"a", "b", "t", ""},
		{"b", "a", "t", ""},
	})
	// Path of length 2: v0 -t-> v1 -t-> v2 requires three distinct vertices.
	q := query.NewPath(query.Wildcard, "t", "t")
	m := NewMatcher(g, q)
	if got := m.FindAll([]int{0, 1}); len(got) != 0 {
		t.Fatalf("injectivity violated: got %d matches (a->b->a should not count)", len(got))
	}
}

func TestParallelQueryEdgesNeedDistinctDataEdges(t *testing.T) {
	g := graph.New()
	g.AddEdgeNamed("a", "ip", "b", "ip", "t", 1)
	q := &query.Graph{
		Vertices: []query.Vertex{{Name: "x", Label: "*"}, {Name: "y", Label: "*"}},
		Edges: []query.Edge{
			{Src: 0, Dst: 1, Type: "t"},
			{Src: 0, Dst: 1, Type: "t"},
		},
	}
	m := NewMatcher(g, q)
	if got := m.FindAll([]int{0, 1}); len(got) != 0 {
		t.Fatalf("one data edge satisfied two query edges: %d matches", len(got))
	}
	// Add a parallel edge: now 2 bijections (swap which query edge maps
	// to which data edge).
	g.AddEdgeNamed("a", "ip", "b", "ip", "t", 2)
	if got := m.FindAll([]int{0, 1}); len(got) != 2 {
		t.Fatalf("parallel edges: got %d matches, want 2", len(got))
	}
}

func TestFindAroundEdgeAnchorsOnNewEdge(t *testing.T) {
	g := buildGraph(t, [][4]string{
		{"a", "b", "tcp", ""},
		{"b", "c", "udp", ""},
		{"p", "q", "tcp", ""}, // unrelated
	})
	q := query.NewPath(query.Wildcard, "tcp", "udp")
	m := NewMatcher(g, q)
	e, _ := g.Edge(1) // the udp edge b->c
	got := m.FindAroundEdge([]int{0, 1}, e)
	if len(got) != 1 {
		t.Fatalf("FindAroundEdge = %d matches, want 1", len(got))
	}
	if !got[0].HasEdge(e.ID) {
		t.Fatalf("returned match does not contain the anchor edge")
	}
	// Anchoring on the unrelated tcp edge yields nothing: no udp around.
	e2, _ := g.Edge(2)
	if got := m.FindAroundEdge([]int{0, 1}, e2); len(got) != 0 {
		t.Fatalf("unrelated anchor produced %d matches", len(got))
	}
}

func TestFindAroundEdgeAutomorphicAnchors(t *testing.T) {
	// Query tcp-tcp path; data a->b->c all tcp. Anchoring on the middle
	// edge... there is no middle; anchor b->c can serve as either query
	// edge but only one binding is structurally valid.
	g := buildGraph(t, [][4]string{
		{"a", "b", "t", ""},
		{"b", "c", "t", ""},
	})
	q := query.NewPath(query.Wildcard, "t", "t")
	m := NewMatcher(g, q)
	e, _ := g.Edge(1)
	got := m.FindAroundEdge([]int{0, 1}, e)
	if len(got) != 1 {
		t.Fatalf("got %d matches, want 1 (b->c as second hop)", len(got))
	}
}

func TestFindAroundVertex(t *testing.T) {
	g := buildGraph(t, [][4]string{
		{"a", "b", "tcp", ""},
		{"b", "c", "udp", ""},
	})
	q := query.NewPath(query.Wildcard, "tcp", "udp")
	m := NewMatcher(g, q)
	b := g.VertexByName("b")
	got := m.FindAroundVertex([]int{0, 1}, b)
	if len(got) != 1 {
		t.Fatalf("FindAroundVertex(b) = %d, want 1", len(got))
	}
	a := g.VertexByName("a")
	got = m.FindAroundVertex([]int{0, 1}, a)
	if len(got) != 1 {
		t.Fatalf("FindAroundVertex(a) = %d, want 1", len(got))
	}
	// Subquery of just the udp edge around a: a has no udp.
	if got := m.FindAroundVertex([]int{1}, a); len(got) != 0 {
		t.Fatalf("udp around a = %d, want 0", len(got))
	}
}

func TestWindowPruning(t *testing.T) {
	g := graph.New()
	g.AddEdgeNamed("a", "ip", "b", "ip", "tcp", 1)
	g.AddEdgeNamed("b", "ip", "c", "ip", "udp", 100)
	q := query.NewPath(query.Wildcard, "tcp", "udp")
	m := NewMatcher(g, q)
	m.Window = 50
	if got := m.FindAll([]int{0, 1}); len(got) != 0 {
		t.Fatalf("window 50 should prune span-99 match, got %d", len(got))
	}
	m.Window = 100
	if got := m.FindAll([]int{0, 1}); len(got) != 1 {
		t.Fatalf("window 100 should admit span-99 match, got %d", len(got))
	}
	m.Window = 99
	if got := m.FindAll([]int{0, 1}); len(got) != 0 {
		t.Fatalf("τ(g) < tW is strict: span 99 with window 99 must be rejected")
	}
}

func TestMaxMatches(t *testing.T) {
	g := graph.New()
	for i := 0; i < 10; i++ {
		g.AddEdgeNamed("hub", "ip", string(rune('a'+i)), "ip", "t", int64(i))
	}
	q := query.NewPath(query.Wildcard, "t")
	m := NewMatcher(g, q)
	m.MaxMatches = 3
	if got := m.FindAll([]int{0}); len(got) != 3 {
		t.Fatalf("MaxMatches: got %d, want 3", len(got))
	}
}

func TestMatchSpanAndClone(t *testing.T) {
	q := query.NewPath(query.Wildcard, "t")
	m := NewMatch(q)
	if m.Span() != 0 {
		t.Errorf("empty match span = %d, want 0", m.Span())
	}
	if m.BoundEdges() != 0 {
		t.Errorf("empty match bound edges = %d", m.BoundEdges())
	}
	c := m.Clone()
	c.VertexOf[0] = 7
	if m.VertexOf[0] == 7 {
		t.Errorf("Clone shares backing array")
	}
}

func TestTreeQuery(t *testing.T) {
	// Tree query: root with two children of different types.
	q := &query.Graph{
		Vertices: []query.Vertex{{Name: "r", Label: "*"}, {Name: "x", Label: "*"}, {Name: "y", Label: "*"}},
		Edges: []query.Edge{
			{Src: 0, Dst: 1, Type: "t1"},
			{Src: 0, Dst: 2, Type: "t2"},
		},
	}
	g := buildGraph(t, [][4]string{
		{"r", "a", "t1", ""},
		{"r", "b", "t1", ""},
		{"r", "c", "t2", ""},
	})
	m := NewMatcher(g, q)
	got := m.FindAll([]int{0, 1})
	if want := oracleCount(g, q); len(got) != want || want != 2 {
		t.Fatalf("tree query: got %d, oracle %d, want 2", len(got), want)
	}
}

func TestCycleQuery(t *testing.T) {
	// The paper stresses that cyclic queries (infiltration pattern) must
	// work. Triangle query over a data triangle.
	q := &query.Graph{
		Vertices: []query.Vertex{{Name: "a", Label: "*"}, {Name: "b", Label: "*"}, {Name: "c", Label: "*"}},
		Edges: []query.Edge{
			{Src: 0, Dst: 1, Type: "t"},
			{Src: 1, Dst: 2, Type: "t"},
			{Src: 2, Dst: 0, Type: "t"},
		},
	}
	g := buildGraph(t, [][4]string{
		{"x", "y", "t", ""},
		{"y", "z", "t", ""},
		{"z", "x", "t", ""},
		{"x", "w", "t", ""}, // distractor
	})
	m := NewMatcher(g, q)
	got := m.FindAll([]int{0, 1, 2})
	// Rotational automorphisms: the triangle matches in 3 ways.
	if len(got) != 3 {
		t.Fatalf("cycle query: got %d matches, want 3", len(got))
	}
}

// randomGraph builds a random data graph and stream order for the
// property tests.
func randomGraph(rng *rand.Rand, nVerts, nEdges int, types []string) *graph.Graph {
	g := graph.New()
	for i := 0; i < nVerts; i++ {
		g.EnsureVertex(vname(i), "ip")
	}
	for i := 0; i < nEdges; i++ {
		s := rng.Intn(nVerts)
		d := rng.Intn(nVerts)
		if s == d {
			continue
		}
		g.AddEdgeNamed(vname(s), "ip", vname(d), "ip", types[rng.Intn(len(types))], int64(i+1))
	}
	return g
}

func vname(i int) string { return string(rune('A' + i)) }

func TestPropertyFindAllMatchesOracle(t *testing.T) {
	types := []string{"t1", "t2", "t3"}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		g := randomGraph(rng, 5+rng.Intn(4), 8+rng.Intn(10), types)
		// Random path query of length 1..3 without parallel query edges.
		l := 1 + rng.Intn(3)
		qt := make([]string, l)
		for i := range qt {
			qt[i] = types[rng.Intn(len(types))]
		}
		q := query.NewPath(query.Wildcard, qt...)
		sub := make([]int, l)
		for i := range sub {
			sub[i] = i
		}
		m := NewMatcher(g, q)
		got := len(m.FindAll(sub))
		want := oracleCount(g, q)
		if got != want {
			t.Fatalf("trial %d: FindAll=%d oracle=%d\nquery=%v", trial, got, want, qt)
		}
	}
}
