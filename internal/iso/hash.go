package iso

// FNV-1a 64-bit mixing, shared by every verified-collision dedup
// scheme in the engine — the SJ-Tree's hashed join keys and dedup
// signatures, and the retro drain's per-batch seen set. Centralizing
// the constants and the mix step keeps the schemes byte-identical:
// each caller verifies hash hits against the actual bindings, so a
// collision can never corrupt results, but the "same scheme as the
// SJ-Tree" contracts in their docs only hold while the mixing does
// not drift.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashStart returns the FNV-1a offset basis.
func HashStart() uint64 { return fnvOffset64 }

// HashMix32 folds one 32-bit value into h.
func HashMix32(h uint64, v uint32) uint64 { return (h ^ uint64(v)) * fnvPrime64 }

// HashMix64 folds one 64-bit value into h, low word first.
func HashMix64(h uint64, v uint64) uint64 {
	h = (h ^ (v & 0xffffffff)) * fnvPrime64
	return (h ^ (v >> 32)) * fnvPrime64
}
