package iso

import (
	"testing"

	"streamgraph/internal/graph"
	"streamgraph/internal/query"
)

func TestFindAllFuncEarlyStop(t *testing.T) {
	g := graph.New()
	for i := 0; i < 10; i++ {
		g.AddEdgeNamed("hub", "ip", vname(i), "ip", "t", int64(i))
	}
	q := query.NewPath(query.Wildcard, "t")
	m := NewMatcher(g, q)
	n := 0
	m.FindAllFunc([]int{0}, func(Match) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Fatalf("early stop after %d matches, want 4", n)
	}
}

func TestFindAroundEdgeFuncEarlyStop(t *testing.T) {
	g := graph.New()
	g.AddEdgeNamed("a", "ip", "b", "ip", "t", 1)
	for i := 0; i < 8; i++ {
		g.AddEdgeNamed("b", "ip", vname(i), "ip", "u", int64(i+2))
	}
	q := query.NewPath(query.Wildcard, "t", "u")
	m := NewMatcher(g, q)
	anchor, _ := g.Edge(0)
	n := 0
	m.FindAroundEdgeFunc([]int{0, 1}, anchor, func(Match) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early stop delivered %d matches, want exactly 1", n)
	}
}

func TestMaxStepsPerSearchSheds(t *testing.T) {
	// A dense hub makes the search space large; a tiny step budget must
	// abort without hanging and without panicking.
	g := graph.New()
	for i := 0; i < 40; i++ {
		g.AddEdgeNamed("hub", "ip", vname(i), "ip", "t", int64(i))
		g.AddEdgeNamed(vname(i), "ip", "hub2", "ip", "t", int64(100+i))
	}
	q := query.NewPath(query.Wildcard, "t", "t", "t")
	m := NewMatcher(g, q)
	unbounded := len(m.FindAll([]int{0, 1, 2}))
	m.MaxStepsPerSearch = 5
	bounded := len(m.FindAll([]int{0, 1, 2}))
	if bounded > unbounded {
		t.Fatalf("budgeted search found more matches (%d > %d)", bounded, unbounded)
	}
	if unbounded == 0 {
		t.Skip("no matches in fixture")
	}
}

func TestEmptySubquery(t *testing.T) {
	g := graph.New()
	g.AddEdgeNamed("a", "ip", "b", "ip", "t", 1)
	q := query.NewPath(query.Wildcard, "t")
	m := NewMatcher(g, q)
	if got := m.FindAll(nil); got != nil {
		t.Fatalf("empty subquery returned %v", got)
	}
}

func TestCallsMonotone(t *testing.T) {
	g := graph.New()
	g.AddEdgeNamed("a", "ip", "b", "ip", "t", 1)
	q := query.NewPath(query.Wildcard, "t")
	m := NewMatcher(g, q)
	m.FindAll([]int{0})
	c1 := m.Calls()
	m.FindAll([]int{0})
	if m.Calls() <= c1 {
		t.Fatalf("Calls not accumulating: %d then %d", c1, m.Calls())
	}
}
