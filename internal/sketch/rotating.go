package sketch

import "fmt"

// Rotating is a sliding-window frequency sketch built from G generation
// sketches. Adds go to the newest generation; Advance retires the oldest
// generation wholesale. With the window tW split into G slices, an
// estimate covers between (G-1)/G·tW and tW worth of stream — the usual
// granularity slack of generation-based window synopses. It backs the
// windowed statistics a long-running continuous query needs when the
// stream distribution drifts (the paper's Section 7 follow-up).
type Rotating struct {
	gens  []*CountMin
	head  int // index of the newest generation
	width int
	depth int
	seed  int64
}

// NewRotating builds a rotating sketch with the given per-generation
// geometry and generation count (at least 2).
func NewRotating(width, depth, generations int, seed int64) (*Rotating, error) {
	if generations < 2 {
		return nil, fmt.Errorf("sketch: need at least 2 generations, got %d", generations)
	}
	r := &Rotating{width: width, depth: depth, seed: seed}
	for i := 0; i < generations; i++ {
		g := NewCountMin(width, depth, seed)
		g.Conservative = true
		r.gens = append(r.gens, g)
	}
	return r, nil
}

// Add folds delta occurrences of key into the newest generation.
func (r *Rotating) Add(key uint64, delta int64) { r.gens[r.head].Add(key, delta) }

// Advance retires the oldest generation (its counts drop out of every
// future estimate) and starts a fresh newest generation. Call it every
// tW / generations stream-time units.
func (r *Rotating) Advance() {
	r.head = (r.head + 1) % len(r.gens)
	r.gens[r.head].Reset()
}

// Estimate sums the per-generation estimates: an upper bound on the
// key's frequency over the retained window.
func (r *Rotating) Estimate(key uint64) int64 {
	var sum int64
	for _, g := range r.gens {
		sum += g.Estimate(key)
	}
	return sum
}

// Total returns the sum of deltas across retained generations.
func (r *Rotating) Total() int64 {
	var sum int64
	for _, g := range r.gens {
		sum += g.Total()
	}
	return sum
}

// Generations returns the generation count.
func (r *Rotating) Generations() int { return len(r.gens) }

// MemoryBytes reports the approximate footprint of all generations.
func (r *Rotating) MemoryBytes() int {
	return len(r.gens) * r.width * r.depth * 8
}
