package sketch

import (
	"fmt"
	"sort"

	"streamgraph/internal/graph"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/stream"
)

// Estimator approximates the exact selectivity.Collector in memory
// independent of the stream's vertex count. The 1-edge histogram is kept
// exactly (it has one entry per edge type); the per-vertex incident-type
// state that dominates the exact collector's footprint is replaced by a
// Count-Min sketch keyed by (vertex hash, direction-type), and the
// 2-edge-path counter is advanced by sketch estimates instead of exact
// per-vertex counts.
//
// Because Count-Min never undercounts, the estimated path distribution
// is a pointwise upper bound on the true one whose error concentrates on
// the low-frequency tail; the head of the distribution — which decides
// the selectivity *order* used by query decomposition — is preserved on
// skewed streams. Estimator implements selectivity.Source and can drive
// decompose directly.
type Estimator struct {
	types *graph.Interner

	dirTypes []uint32 // observed direction-type keys, insertion order
	seenDT   map[uint32]bool

	vert *CountMin // (vertex hash ⊕ dirType) -> incident-edge count

	edgeCount selectivity.Counter[uint32]
	edgeTotal int64

	pathCount selectivity.Counter[selectivity.PathKey]
	pathTotal int64
}

// NewEstimator builds an estimator whose vertex sketch has the given
// geometry (see NewCountMin). A width of a few hundred thousand suffices
// for million-vertex streams; memory is width·depth·8 bytes regardless
// of the stream.
func NewEstimator(width, depth int, seed int64) *Estimator {
	cm := NewCountMin(width, depth, seed)
	cm.Conservative = true
	return &Estimator{
		types:     graph.NewInterner(),
		seenDT:    make(map[uint32]bool),
		vert:      cm,
		edgeCount: make(selectivity.Counter[uint32]),
		pathCount: make(selectivity.Counter[selectivity.PathKey]),
	}
}

// NewEstimatorWithError sizes the vertex sketch for the (ε, δ)
// guarantee of NewCountMinWithError.
func NewEstimatorWithError(epsilon, delta float64, seed int64) (*Estimator, error) {
	cm, err := NewCountMinWithError(epsilon, delta, seed)
	if err != nil {
		return nil, err
	}
	cm.Conservative = true
	return &Estimator{
		types:     graph.NewInterner(),
		seenDT:    make(map[uint32]bool),
		vert:      cm,
		edgeCount: make(selectivity.Counter[uint32]),
		pathCount: make(selectivity.Counter[selectivity.PathKey]),
	}, nil
}

// Types exposes the estimator's edge-type interner.
func (s *Estimator) Types() *graph.Interner { return s.types }

// Add folds one stream edge into the estimate.
func (s *Estimator) Add(e stream.Edge) {
	t := s.types.Intern(e.Type)
	s.edgeCount.Update(t, 1)
	s.edgeTotal++
	s.addIncident(Hash64(e.Src), selectivity.DirTypeKey(t, selectivity.Out))
	s.addIncident(Hash64(e.Dst), selectivity.DirTypeKey(t, selectivity.In))
}

// AddAll folds a batch of edges into the estimate.
func (s *Estimator) AddAll(edges []stream.Edge) {
	for _, e := range edges {
		s.Add(e)
	}
}

func (s *Estimator) addIncident(vh uint64, dt uint32) {
	if !s.seenDT[dt] {
		s.seenDT[dt] = true
		s.dirTypes = append(s.dirTypes, dt)
	}
	// The new incident edge forms a 2-edge path with every existing
	// incident edge at the vertex; the per-dirType count is estimated
	// from the sketch rather than read from an exact per-vertex counter.
	for _, dt2 := range s.dirTypes {
		n := s.vert.Estimate(Combine(vh, uint64(dt2)))
		if n > 0 {
			s.pathCount.Update(selectivity.NewPathKey(dt, dt2), n)
			s.pathTotal += n
		}
	}
	s.vert.Add(Combine(vh, uint64(dt)), 1)
}

// EdgeTotal returns the (exact) number of edges folded in.
func (s *Estimator) EdgeTotal() int64 { return s.edgeTotal }

// PathTotal returns the estimated total number of 2-edge paths.
func (s *Estimator) PathTotal() int64 { return s.pathTotal }

// EdgeSelectivity returns S(g) for a 1-edge subgraph; this component is
// exact (the histogram has one entry per type).
func (s *Estimator) EdgeSelectivity(etype string) float64 {
	if s.edgeTotal == 0 {
		return 0
	}
	t, ok := s.types.Lookup(etype)
	if !ok {
		return 0
	}
	return float64(s.edgeCount.Count(t)) / float64(s.edgeTotal)
}

// EdgeFrequency returns the exact count for an edge type.
func (s *Estimator) EdgeFrequency(etype string) int64 {
	t, ok := s.types.Lookup(etype)
	if !ok {
		return 0
	}
	return s.edgeCount.Count(t)
}

// PathFrequency returns the estimated count of 2-edge paths with the
// given incident direction-types at the shared center vertex.
func (s *Estimator) PathFrequency(t1 string, d1 selectivity.Dir, t2 string, d2 selectivity.Dir) int64 {
	a, ok1 := s.types.Lookup(t1)
	b, ok2 := s.types.Lookup(t2)
	if !ok1 || !ok2 {
		return 0
	}
	k := selectivity.NewPathKey(selectivity.DirTypeKey(a, d1), selectivity.DirTypeKey(b, d2))
	return s.pathCount.Count(k)
}

// PathSelectivity returns the estimated S(g) for a 2-edge path shape.
// Together with EdgeSelectivity it satisfies selectivity.Source.
func (s *Estimator) PathSelectivity(t1 string, d1 selectivity.Dir, t2 string, d2 selectivity.Dir) float64 {
	if s.pathTotal == 0 {
		return 0
	}
	return float64(s.PathFrequency(t1, d1, t2, d2)) / float64(s.pathTotal)
}

// UniquePathShapes reports how many distinct 2-edge path shapes received
// a non-zero estimate.
func (s *Estimator) UniquePathShapes() int { return len(s.pathCount) }

// PathHistogram returns the estimated 2-edge path distribution sorted by
// descending count, in the same rendering as the exact collector.
func (s *Estimator) PathHistogram() []selectivity.HistogramEntry {
	out := make([]selectivity.HistogramEntry, 0, len(s.pathCount))
	for k, n := range s.pathCount {
		ta, da := selectivity.SplitDirTypeKey(k.A)
		tb, db := selectivity.SplitDirTypeKey(k.B)
		key := fmt.Sprintf("%s(%s)-%s(%s)", s.types.Name(ta), da, s.types.Name(tb), db)
		out = append(out, selectivity.HistogramEntry{Key: key, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// MemoryBytes reports the approximate footprint: the vertex sketch plus
// the (small) exact type and path-shape tables.
func (s *Estimator) MemoryBytes() int {
	return s.vert.MemoryBytes() + 16*len(s.pathCount) + 16*len(s.edgeCount) + 8*len(s.dirTypes)
}
