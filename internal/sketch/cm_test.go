package sketch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCountMinExactOnSparseKeys(t *testing.T) {
	// With few distinct keys relative to width, collisions are unlikely
	// per-row and impossible to affect the min across 4 independent rows
	// for this fixed seed; estimates must equal true counts.
	s := NewCountMin(1024, 4, 1)
	truth := map[uint64]int64{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		k := rng.Uint64()
		d := int64(rng.Intn(50) + 1)
		truth[k] += d
		s.Add(k, d)
	}
	for k, want := range truth {
		if got := s.Estimate(k); got != want {
			t.Fatalf("Estimate(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestCountMinNeverUndercounts(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	err := quick.Check(func(keys []uint8, conservative bool) bool {
		s := NewCountMin(16, 3, 42) // deliberately tiny: force collisions
		s.Conservative = conservative
		truth := map[uint64]int64{}
		for _, k := range keys {
			key := uint64(k)
			truth[key]++
			s.Add(key, 1)
		}
		for k, want := range truth {
			if s.Estimate(k) < want {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCountMinConservativeTighter(t *testing.T) {
	// On a skewed stream with forced collisions, conservative update must
	// not be worse in aggregate than plain update, and is typically much
	// better.
	plain := NewCountMin(64, 4, 9)
	cons := NewCountMin(64, 4, 9)
	cons.Conservative = true
	truth := map[uint64]int64{}
	rng := rand.New(rand.NewSource(3))
	zipf := rand.NewZipf(rng, 1.3, 1, 4096)
	for i := 0; i < 20000; i++ {
		k := zipf.Uint64() // low keys dominate
		truth[k]++
		plain.Add(k, 1)
		cons.Add(k, 1)
	}
	var errPlain, errCons int64
	for k, want := range truth {
		errPlain += plain.Estimate(k) - want
		errCons += cons.Estimate(k) - want
	}
	if errCons > errPlain {
		t.Fatalf("conservative total overcount %d exceeds plain %d", errCons, errPlain)
	}
}

func TestCountMinErrorBound(t *testing.T) {
	// The classic guarantee: per-key overcount <= eps * N with
	// probability >= 1 - delta. Check that at most a delta fraction of
	// keys break the bound on a uniform stream.
	eps, delta := 0.01, 0.05
	s, err := NewCountMinWithError(eps, delta, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	truth := map[uint64]int64{}
	var n int64
	for i := 0; i < 100000; i++ {
		k := uint64(rng.Intn(5000))
		truth[k]++
		n++
		s.Add(k, 1)
	}
	bound := int64(eps * float64(n))
	broken := 0
	for k, want := range truth {
		if s.Estimate(k)-want > bound {
			broken++
		}
	}
	if frac := float64(broken) / float64(len(truth)); frac > delta {
		t.Fatalf("%.3f of keys exceed the eps*N bound, want <= %.3f", frac, delta)
	}
}

func TestCountMinWithErrorRejectsBadParams(t *testing.T) {
	for _, tc := range []struct{ eps, delta float64 }{
		{0, 0.1}, {1, 0.1}, {-0.5, 0.1}, {0.1, 0}, {0.1, 1}, {0.1, -2},
	} {
		if _, err := NewCountMinWithError(tc.eps, tc.delta, 1); err == nil {
			t.Errorf("NewCountMinWithError(%v, %v) accepted invalid params", tc.eps, tc.delta)
		}
	}
}

func TestCountMinTotalAndReset(t *testing.T) {
	s := NewCountMin(32, 2, 1)
	s.Add(1, 5)
	s.Add(2, 7)
	if s.Total() != 12 {
		t.Fatalf("Total = %d, want 12", s.Total())
	}
	s.Reset()
	if s.Total() != 0 || s.Estimate(1) != 0 || s.Estimate(2) != 0 {
		t.Fatal("Reset did not clear the sketch")
	}
}

func TestCountMinNegativeDelta(t *testing.T) {
	s := NewCountMin(64, 3, 1)
	s.Add(10, 8)
	s.Add(10, -3)
	if got := s.Estimate(10); got != 5 {
		t.Fatalf("after +8 -3, Estimate = %d, want 5", got)
	}
}

func TestCountMinMerge(t *testing.T) {
	a := NewCountMin(128, 3, 4)
	b := NewCountMin(128, 3, 4)
	a.Add(1, 10)
	b.Add(1, 5)
	b.Add(2, 7)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Estimate(1); got < 15 {
		t.Fatalf("merged Estimate(1) = %d, want >= 15", got)
	}
	if got := a.Estimate(2); got < 7 {
		t.Fatalf("merged Estimate(2) = %d, want >= 7", got)
	}
	if a.Total() != 22 {
		t.Fatalf("merged Total = %d, want 22", a.Total())
	}
}

func TestCountMinMergeRejectsMismatch(t *testing.T) {
	a := NewCountMin(128, 3, 4)
	if err := a.Merge(NewCountMin(64, 3, 4)); err == nil {
		t.Error("Merge accepted width mismatch")
	}
	if err := a.Merge(NewCountMin(128, 2, 4)); err == nil {
		t.Error("Merge accepted depth mismatch")
	}
	if err := a.Merge(NewCountMin(128, 3, 5)); err == nil {
		t.Error("Merge accepted seed mismatch")
	}
}

func TestCountMinGeometryFloors(t *testing.T) {
	s := NewCountMin(0, 0, 1)
	if s.Width() != 1 || s.Depth() != 1 {
		t.Fatalf("geometry floor: got %dx%d, want 1x1", s.Depth(), s.Width())
	}
	s.Add(3, 2)
	if s.Estimate(3) != 2 {
		t.Fatal("1x1 sketch must still count")
	}
}

func TestHash64Distinct(t *testing.T) {
	seen := map[uint64]string{}
	words := []string{"", "a", "b", "ab", "ba", "host-1", "host-2", "10.0.0.1", "10.0.0.2"}
	for _, w := range words {
		h := Hash64(w)
		if prev, dup := seen[h]; dup {
			t.Fatalf("Hash64 collision: %q and %q", prev, w)
		}
		seen[h] = w
	}
}
