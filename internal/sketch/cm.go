// Package sketch provides bounded-memory synopses of the graph stream:
// a Count-Min frequency sketch, a rotating (sliding-window) variant, and
// an approximate drop-in replacement for the exact statistics collector
// that estimates the 1-edge and 2-edge-path distributions of Choudhury
// et al. (EDBT 2015, Section 5) in memory independent of the number of
// stream vertices.
//
// The paper's exact Collector keeps one incident-type counter per data
// vertex, so its footprint grows with the vertex set (2.5M vertices for
// the CAIDA trace). Graph sketches are the paper's cited escape hatch
// ("gsketch", Zhao et al., PVLDB 2011, discussed in Sections 2.2 and 7):
// replace the per-vertex state with a fixed-size sketch and accept a
// small, one-sided estimation error. Query decomposition only needs the
// *relative order* of primitive selectivities, which survives the
// approximation on realistically skewed streams (see the package tests).
package sketch

import (
	"fmt"
	"math"
)

// CountMin is a Count-Min frequency sketch over uint64 keys with
// optional conservative update. Estimates never undercount as long as
// all deltas are non-negative; with conservative update the expected
// overcount shrinks substantially on skewed streams.
type CountMin struct {
	width int
	depth int
	rows  [][]int64
	salts []uint64
	total int64

	// Conservative enables conservative update: an increment raises each
	// row cell only as far as needed to make the new point estimate
	// correct. Only meaningful while all deltas are positive.
	Conservative bool
}

// NewCountMin builds a sketch with the given geometry. Width is the
// number of counters per row (larger = smaller overcount); depth is the
// number of independent rows (larger = smaller failure probability).
// The seed makes hash salts reproducible.
func NewCountMin(width, depth int, seed int64) *CountMin {
	if width < 1 {
		width = 1
	}
	if depth < 1 {
		depth = 1
	}
	s := &CountMin{width: width, depth: depth}
	s.rows = make([][]int64, depth)
	flat := make([]int64, width*depth)
	for i := range s.rows {
		s.rows[i], flat = flat[:width], flat[width:]
	}
	s.salts = make([]uint64, depth)
	state := uint64(seed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	for i := range s.salts {
		state = splitmix64(state)
		s.salts[i] = state
	}
	return s
}

// NewCountMinWithError builds a sketch sized for the classic (ε, δ)
// guarantee: estimates exceed the true count by more than ε·N with
// probability at most δ, where N is the total of all inserted deltas.
func NewCountMinWithError(epsilon, delta float64, seed int64) (*CountMin, error) {
	if epsilon <= 0 || epsilon >= 1 {
		return nil, fmt.Errorf("sketch: epsilon %v out of (0,1)", epsilon)
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("sketch: delta %v out of (0,1)", delta)
	}
	width := int(math.Ceil(math.E / epsilon))
	depth := int(math.Ceil(math.Log(1 / delta)))
	return NewCountMin(width, depth, seed), nil
}

// splitmix64 is the finalizer of the SplitMix64 generator: a fast,
// well-mixed 64-bit permutation.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Hash64 hashes an arbitrary string to a sketch key (FNV-1a folded
// through splitmix64 for avalanche).
func Hash64(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return splitmix64(h)
}

// Combine mixes two keys into one (used to key composite identities such
// as (vertex, direction-type) without string formatting).
func Combine(a, b uint64) uint64 { return splitmix64(a ^ (b * 0x9E3779B97F4A7C15)) }

func (s *CountMin) cell(row int, key uint64) int {
	return int(splitmix64(key^s.salts[row]) % uint64(s.width))
}

// Add folds delta occurrences of key into the sketch. Negative deltas
// are applied to every row directly (conservative update does not apply
// and subsequent estimates may undercount); they exist for callers that
// maintain complementary sketches.
func (s *CountMin) Add(key uint64, delta int64) {
	s.total += delta
	if delta <= 0 || !s.Conservative {
		for r := 0; r < s.depth; r++ {
			s.rows[r][s.cell(r, key)] += delta
		}
		return
	}
	target := s.Estimate(key) + delta
	for r := 0; r < s.depth; r++ {
		c := &s.rows[r][s.cell(r, key)]
		if *c < target {
			*c = target
		}
	}
}

// Estimate returns the point estimate for key: the minimum over rows.
func (s *CountMin) Estimate(key uint64) int64 {
	min := s.rows[0][s.cell(0, key)]
	for r := 1; r < s.depth; r++ {
		if v := s.rows[r][s.cell(r, key)]; v < min {
			min = v
		}
	}
	return min
}

// Total returns the sum of all deltas folded in.
func (s *CountMin) Total() int64 { return s.total }

// Width returns the number of counters per row.
func (s *CountMin) Width() int { return s.width }

// Depth returns the number of rows.
func (s *CountMin) Depth() int { return s.depth }

// MemoryBytes reports the approximate footprint of the counter arrays.
func (s *CountMin) MemoryBytes() int { return s.width * s.depth * 8 }

// Reset zeroes every counter.
func (s *CountMin) Reset() {
	for _, row := range s.rows {
		for i := range row {
			row[i] = 0
		}
	}
	s.total = 0
}

// Merge adds the counters of other into s. The sketches must share
// geometry and seed (verified); merging conservative-updated sketches
// remains an upper bound but can be looser than re-inserting the stream.
func (s *CountMin) Merge(other *CountMin) error {
	if s.width != other.width || s.depth != other.depth {
		return fmt.Errorf("sketch: geometry mismatch %dx%d vs %dx%d",
			s.depth, s.width, other.depth, other.width)
	}
	for i, salt := range s.salts {
		if salt != other.salts[i] {
			return fmt.Errorf("sketch: seed mismatch (row %d)", i)
		}
	}
	for r := range s.rows {
		for i := range s.rows[r] {
			s.rows[r][i] += other.rows[r][i]
		}
	}
	s.total += other.total
	return nil
}
