package sketch

import (
	"testing"

	"streamgraph/internal/datagen"
	"streamgraph/internal/decompose"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/stream"
)

func netflowStream(t *testing.T, n int) []stream.Edge {
	t.Helper()
	return datagen.Netflow(datagen.NetflowConfig{Edges: n, Hosts: n / 10, Seed: 17})
}

func TestEstimatorEdgeHistogramExact(t *testing.T) {
	edges := netflowStream(t, 20000)
	exact := selectivity.NewCollector()
	est := NewEstimator(1<<14, 4, 1)
	for _, e := range edges {
		exact.Add(e)
		est.Add(e)
	}
	if est.EdgeTotal() != exact.EdgeTotal() {
		t.Fatalf("EdgeTotal %d != exact %d", est.EdgeTotal(), exact.EdgeTotal())
	}
	for _, p := range datagen.NetflowProtocols {
		if got, want := est.EdgeFrequency(p), exact.EdgeFrequency(p); got != want {
			t.Errorf("EdgeFrequency(%s) = %d, want %d", p, got, want)
		}
		if got, want := est.EdgeSelectivity(p), exact.EdgeSelectivity(p); got != want {
			t.Errorf("EdgeSelectivity(%s) = %v, want %v", p, got, want)
		}
	}
}

func TestEstimatorPathCountsUpperBoundAndClose(t *testing.T) {
	edges := netflowStream(t, 20000)
	exact := selectivity.NewCollector()
	est := NewEstimator(1<<16, 4, 1)
	for _, e := range edges {
		exact.Add(e)
		est.Add(e)
	}
	if est.PathTotal() < exact.PathTotal() {
		t.Fatalf("PathTotal %d undercounts exact %d", est.PathTotal(), exact.PathTotal())
	}
	// With a generously sized sketch the estimate should be within a few
	// percent of the truth overall.
	ratio := float64(est.PathTotal()) / float64(exact.PathTotal())
	if ratio > 1.10 {
		t.Fatalf("PathTotal overcount ratio %.4f exceeds 1.10", ratio)
	}
	// Per-shape: never undercount, and the dominant shapes stay accurate.
	for _, d1 := range []selectivity.Dir{selectivity.Out, selectivity.In} {
		for _, d2 := range []selectivity.Dir{selectivity.Out, selectivity.In} {
			for _, p1 := range datagen.NetflowProtocols {
				for _, p2 := range datagen.NetflowProtocols {
					got := est.PathFrequency(p1, d1, p2, d2)
					want := exact.PathFrequency(p1, d1, p2, d2)
					if got < want {
						t.Fatalf("PathFrequency(%s,%v,%s,%v) = %d undercounts %d", p1, d1, p2, d2, got, want)
					}
					if want > 10000 && float64(got) > 1.15*float64(want) {
						t.Errorf("head shape (%s,%v,%s,%v): est %d vs exact %d drifts >15%%", p1, d1, p2, d2, got, want)
					}
				}
			}
		}
	}
}

func TestEstimatorPreservesTopShapeRanking(t *testing.T) {
	edges := netflowStream(t, 30000)
	exact := selectivity.NewCollector()
	est := NewEstimator(1<<16, 4, 1)
	for _, e := range edges {
		exact.Add(e)
		est.Add(e)
	}
	top := func(h []selectivity.HistogramEntry, n int) map[string]bool {
		out := make(map[string]bool)
		for i := 0; i < n && i < len(h); i++ {
			out[h[i].Key] = true
		}
		return out
	}
	const k = 10
	exactTop := top(exact.PathHistogram(), k)
	estTop := top(est.PathHistogram(), k)
	overlap := 0
	for key := range estTop {
		if exactTop[key] {
			overlap++
		}
	}
	if overlap < k-2 {
		t.Fatalf("top-%d path shapes overlap only %d; estimator lost the head of the distribution", k, overlap)
	}
}

func TestEstimatorDrivesDecomposition(t *testing.T) {
	// The whole point of the sketch: decomposition driven by the
	// estimator should agree with one driven by exact statistics.
	edges := netflowStream(t, 30000)
	exact := selectivity.NewCollector()
	est := NewEstimator(1<<16, 4, 1)
	for _, e := range edges {
		exact.Add(e)
		est.Add(e)
	}
	q := datagen.RandomPathQuery(newRand(21), datagen.NetflowProtocols, 4, "ip")

	singleExact, err := decompose.SingleDecompose(q, exact)
	if err != nil {
		t.Fatal(err)
	}
	singleEst, err := decompose.SingleDecompose(q, est)
	if err != nil {
		t.Fatal(err)
	}
	if len(singleExact) != len(singleEst) {
		t.Fatalf("single decompositions differ in size: %v vs %v", singleExact, singleEst)
	}
	// 1-edge stats are exact in the estimator, so the orders must agree.
	for i := range singleExact {
		if singleExact[i][0] != singleEst[i][0] {
			t.Fatalf("single decomposition order differs: %v vs %v", singleExact, singleEst)
		}
	}

	pathExact, fbExact, err := decompose.PathDecompose(q, exact)
	if err != nil {
		t.Fatal(err)
	}
	pathEst, fbEst, err := decompose.PathDecompose(q, est)
	if err != nil {
		t.Fatal(err)
	}
	if fbExact != fbEst {
		t.Fatalf("fallback disagreement: exact=%v est=%v", fbExact, fbEst)
	}
	if len(pathExact) != len(pathEst) {
		t.Fatalf("path decompositions differ in size: %v vs %v", pathExact, pathEst)
	}
}

func TestEstimatorMemoryIndependentOfVertices(t *testing.T) {
	small := NewEstimator(1<<12, 4, 1)
	big := NewEstimator(1<<12, 4, 1)
	small.AddAll(datagen.Netflow(datagen.NetflowConfig{Edges: 2000, Hosts: 50, Seed: 5}))
	big.AddAll(datagen.Netflow(datagen.NetflowConfig{Edges: 2000, Hosts: 2000, Seed: 5}))
	// Identical sketch geometry, same #types: footprint must not grow
	// with the vertex count (modulo the tiny path-shape table).
	if diff := big.MemoryBytes() - small.MemoryBytes(); diff > 4096 {
		t.Fatalf("memory grew by %d bytes with 40x the vertices", diff)
	}
}

func TestEstimatorUnseenIsZero(t *testing.T) {
	est := NewEstimator(64, 2, 1)
	if est.EdgeSelectivity("nope") != 0 {
		t.Error("unseen edge type should have selectivity 0")
	}
	if est.PathSelectivity("a", selectivity.Out, "b", selectivity.In) != 0 {
		t.Error("empty estimator should report 0 path selectivity")
	}
	est.Add(stream.Edge{Src: "x", Dst: "y", Type: "a", TS: 1})
	if est.PathSelectivity("a", selectivity.Out, "nope", selectivity.In) != 0 {
		t.Error("path with unseen type should have selectivity 0")
	}
}

func TestNewEstimatorWithError(t *testing.T) {
	est, err := NewEstimatorWithError(0.001, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	est.Add(stream.Edge{Src: "x", Dst: "y", Type: "t", TS: 1})
	if est.EdgeTotal() != 1 {
		t.Fatal("estimator did not record the edge")
	}
	if _, err := NewEstimatorWithError(0, 0.5, 3); err == nil {
		t.Error("invalid epsilon accepted")
	}
}
