package sketch

import (
	"math/rand"
	"testing"
)

// newRand is shared by the package tests.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestRotatingRequiresTwoGenerations(t *testing.T) {
	if _, err := NewRotating(64, 2, 1, 1); err == nil {
		t.Fatal("NewRotating accepted a single generation")
	}
	if _, err := NewRotating(64, 2, 0, 1); err == nil {
		t.Fatal("NewRotating accepted zero generations")
	}
}

func TestRotatingExpiry(t *testing.T) {
	r, err := NewRotating(256, 3, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	r.Add(1, 10) // generation 0
	r.Advance()
	r.Add(1, 5) // generation 1
	r.Advance()
	r.Add(1, 2) // generation 2
	if got := r.Estimate(1); got < 17 {
		t.Fatalf("all generations live: Estimate = %d, want >= 17", got)
	}
	r.Advance() // retires generation 0 (the +10)
	if got := r.Estimate(1); got < 7 || got >= 17 {
		t.Fatalf("after one rotation: Estimate = %d, want in [7,17)", got)
	}
	r.Advance() // retires generation 1 (the +5)
	if got := r.Estimate(1); got < 2 || got >= 7 {
		t.Fatalf("after two rotations: Estimate = %d, want in [2,7)", got)
	}
	r.Advance() // retires generation 2 (the +2)
	if got := r.Estimate(1); got != 0 {
		t.Fatalf("fully rotated: Estimate = %d, want 0", got)
	}
}

func TestRotatingTotalTracksLiveGenerations(t *testing.T) {
	r, err := NewRotating(64, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.Add(3, 4)
	r.Advance()
	r.Add(3, 6)
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	r.Advance()
	if r.Total() != 6 {
		t.Fatalf("Total after expiry = %d, want 6", r.Total())
	}
}

func TestRotatingNeverUndercountsWindow(t *testing.T) {
	// Keys added within the last (G-1) slices must never be undercounted.
	r, err := NewRotating(512, 4, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	rng := newRand(13)
	recent := map[uint64]int64{}
	for slice := 0; slice < 3; slice++ {
		for i := 0; i < 500; i++ {
			k := uint64(rng.Intn(200))
			recent[k]++
			r.Add(k, 1)
		}
		if slice < 2 {
			r.Advance()
		}
	}
	for k, want := range recent {
		if got := r.Estimate(k); got < want {
			t.Fatalf("Estimate(%d) = %d undercounts window truth %d", k, got, want)
		}
	}
	if r.Generations() != 4 {
		t.Fatalf("Generations = %d, want 4", r.Generations())
	}
	if r.MemoryBytes() != 4*512*4*8 {
		t.Fatalf("MemoryBytes = %d", r.MemoryBytes())
	}
}
