package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"streamgraph/internal/graph"
	"streamgraph/internal/iso"
	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/stream"
)

func edge(src, dst, etype string, ts int64) stream.Edge {
	return stream.Edge{Src: src, SrcLabel: "ip", Dst: dst, DstLabel: "ip", Type: etype, TS: ts}
}

// signature canonicalizes a complete match against the engine's graph:
// for every query edge, the (src, dst, type, ts) of its data edge.
func signature(e *Engine, m iso.Match) string {
	g := e.Graph()
	parts := make([]string, 0, len(m.EdgeOf))
	for qe, eid := range m.EdgeOf {
		de, ok := g.Edge(eid)
		if !ok {
			return fmt.Sprintf("dead-edge-%d", eid)
		}
		parts = append(parts, fmt.Sprintf("%d:%s>%s@%d", qe, g.VertexName(de.Src), g.VertexName(de.Dst), de.TS))
	}
	return strings.Join(parts, "|")
}

// runStrategy processes the stream under one strategy and returns the
// sorted list of match signatures.
func runStrategy(t *testing.T, q *query.Graph, edges []stream.Edge, s Strategy, window int64, stats *selectivity.Collector) []string {
	t.Helper()
	eng, err := New(q, Config{Strategy: s, Window: window, Stats: stats, EvictEvery: 3})
	if err != nil {
		t.Fatalf("%v: New: %v", s, err)
	}
	var sigs []string
	for _, se := range edges {
		for _, m := range eng.ProcessEdge(se) {
			sigs = append(sigs, signature(eng, m))
		}
	}
	sort.Strings(sigs)
	return sigs
}

func allStrategies() []Strategy {
	return []Strategy{StrategySingle, StrategySingleLazy, StrategyPath, StrategyPathLazy, StrategyVF2, StrategyIncIso, StrategyAuto}
}

func collect(edges []stream.Edge) *selectivity.Collector {
	c := selectivity.NewCollector()
	c.AddAll(edges)
	return c
}

func TestSocialQueryAllStrategies(t *testing.T) {
	// The Figure 3 example: friend -> likes -> follows chain.
	q := &query.Graph{
		Vertices: []query.Vertex{
			{Name: "a", Label: "person"}, {Name: "b", Label: "person"},
			{Name: "c", Label: "artist"}, {Name: "d", Label: "person"},
		},
		Edges: []query.Edge{
			{Src: 0, Dst: 1, Type: "friend"},
			{Src: 1, Dst: 2, Type: "likes"},
			{Src: 3, Dst: 2, Type: "follows"},
		},
	}
	p := func(n string) string { return n }
	edges := []stream.Edge{
		{Src: p("george"), SrcLabel: "person", Dst: p("john"), DstLabel: "person", Type: "friend", TS: 1},
		{Src: p("john"), SrcLabel: "person", Dst: p("santana"), DstLabel: "artist", Type: "likes", TS: 2},
		{Src: p("paul"), SrcLabel: "person", Dst: p("santana"), DstLabel: "artist", Type: "follows", TS: 3},
		// Noise.
		{Src: p("ringo"), SrcLabel: "person", Dst: p("john"), DstLabel: "person", Type: "friend", TS: 4},
		{Src: p("mick"), SrcLabel: "person", Dst: p("dylan"), DstLabel: "artist", Type: "likes", TS: 5},
	}
	stats := collect(edges)
	var want []string
	for i, s := range allStrategies() {
		got := runStrategy(t, q, edges, s, 0, stats)
		// george-john-santana-paul and ringo-john-santana-paul.
		if len(got) != 2 {
			t.Fatalf("%v: got %d matches, want 2: %v", s, len(got), got)
		}
		if i == 0 {
			want = got
			continue
		}
		if !equalStrings(got, want) {
			t.Fatalf("%v disagrees:\n got %v\nwant %v", s, got, want)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLazyRobustToArrivalOrder(t *testing.T) {
	// The selective edge (rare) arrives LAST; the lazy strategies must
	// still find the full match via retrospective search.
	q := query.NewPath(query.Wildcard, "common", "rare")
	edges := []stream.Edge{
		edge("a", "b", "common", 1),
		edge("x", "y", "common", 2),
		edge("b", "c", "rare", 3),
	}
	// Train stats so "rare" is the selective leaf (leaf 0).
	training := []stream.Edge{
		edge("t1", "t2", "common", 1), edge("t2", "t3", "common", 2),
		edge("t3", "t4", "common", 3), edge("t4", "t5", "rare", 4),
	}
	stats := collect(training)
	for _, s := range allStrategies() {
		got := runStrategy(t, q, edges, s, 0, stats)
		if len(got) != 1 {
			t.Errorf("%v: got %d matches, want 1 (%v)", s, len(got), got)
		}
	}

	// Reverse arrival: rare first, then common.
	edges2 := []stream.Edge{
		edge("b", "c", "rare", 1),
		edge("a", "b", "common", 2),
	}
	for _, s := range allStrategies() {
		got := runStrategy(t, q, edges2, s, 0, stats)
		if len(got) != 1 {
			t.Errorf("%v reverse: got %d matches, want 1", s, len(got))
		}
	}
}

func TestWindowEnforced(t *testing.T) {
	q := query.NewPath(query.Wildcard, "a", "b")
	edges := []stream.Edge{
		edge("x", "y", "a", 1),
		edge("y", "z", "b", 500), // span 499
		edge("p", "q", "a", 1000),
		edge("q", "r", "b", 1100), // span 100
	}
	stats := collect(edges)
	for _, s := range allStrategies() {
		got := runStrategy(t, q, edges, s, 200, stats)
		if len(got) != 1 {
			t.Errorf("%v: window 200: got %d matches, want 1 (%v)", s, len(got), got)
		}
		got = runStrategy(t, q, edges, s, 0, stats)
		if len(got) != 2 {
			t.Errorf("%v: no window: got %d matches, want 2", s, len(got))
		}
	}
}

func TestEngineEviction(t *testing.T) {
	q := query.NewPath(query.Wildcard, "a", "b")
	stats := collect([]stream.Edge{edge("t", "u", "a", 1), edge("u", "v", "b", 2)})
	eng, err := New(q, Config{Strategy: StrategySingle, Window: 10, Stats: stats, EvictEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for ts := int64(1); ts <= 100; ts++ {
		eng.ProcessEdge(edge(fmt.Sprintf("v%d", ts), fmt.Sprintf("v%d", ts+1), "a", ts))
	}
	if n := eng.Graph().NumEdges(); n > 12 {
		t.Errorf("graph retains %d edges with window 10", n)
	}
	if st := eng.Stats(); st.GraphEvicted == 0 {
		t.Errorf("no eviction recorded")
	}
	if stored := eng.Tree().StoredMatches(); stored > 12 {
		t.Errorf("tree retains %d matches with window 10", stored)
	}
}

func TestAutoStrategySelection(t *testing.T) {
	// Netflow-like skew: GRE and ESP are each individually common, but
	// the GRE->ESP adjacency occurs exactly once, so the path
	// decomposition is far more discriminative than the product of the
	// 1-edge selectivities.
	var training []stream.Edge
	ts := int64(0)
	for i := 0; i < 1000; i++ {
		ts++
		training = append(training, edge(fmt.Sprintf("h%d", i%10), fmt.Sprintf("h%d", (i+3)%10), "TCP", ts))
	}
	for i := 0; i < 200; i++ {
		ts++
		training = append(training, edge(fmt.Sprintf("g%d", i), fmt.Sprintf("g%d", i+1000), "GRE", ts))
		ts++
		training = append(training, edge(fmt.Sprintf("e%d", i), fmt.Sprintf("e%d", i+1000), "ESP", ts))
	}
	ts++
	training = append(training, edge("gx", "shared", "GRE", ts))
	ts++
	training = append(training, edge("shared", "ex", "ESP", ts))
	stats := collect(training)

	q := query.NewPath(query.Wildcard, "GRE", "ESP", "TCP")
	eng, err := New(q, Config{Strategy: StrategyAuto, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	// GRE->ESP path is extremely rare: ξ must be far below threshold and
	// the engine should pick the path decomposition.
	if !selectivity.PreferPathDecomposition(eng.RelativeSelectivity()) {
		t.Fatalf("ξ = %v should prefer path", eng.RelativeSelectivity())
	}
	if eng.ChosenKind().String() != "path" {
		t.Fatalf("chosen kind = %v, want path", eng.ChosenKind())
	}
}

func TestConfigErrors(t *testing.T) {
	q := query.NewPath(query.Wildcard, "a")
	if _, err := New(q, Config{Strategy: StrategySingle}); err == nil {
		t.Errorf("missing stats accepted")
	}
	if _, err := New(&query.Graph{}, Config{Strategy: StrategyVF2}); err == nil {
		t.Errorf("empty query accepted")
	}
	// Oversized decomposition (>64 leaves).
	big := &query.Graph{}
	for i := 0; i <= 65; i++ {
		big.AddVertex(fmt.Sprintf("v%d", i), "*")
	}
	var leaves [][]int
	for i := 0; i < 65; i++ {
		big.AddEdge(i, i+1, "t")
		leaves = append(leaves, []int{i})
	}
	if _, err := New(big, Config{Strategy: StrategySingleLazy, Leaves: leaves}); err == nil {
		t.Errorf("65-leaf decomposition accepted")
	}
}

func TestExplain(t *testing.T) {
	q := query.NewPath(query.Wildcard, "a")
	stats := collect([]stream.Edge{edge("x", "y", "a", 1)})
	eng, _ := New(q, Config{Strategy: StrategySingle, Stats: stats})
	ms := eng.ProcessEdge(edge("x", "y", "a", 1))
	if len(ms) != 1 {
		t.Fatal("no match")
	}
	s := eng.Explain(ms[0])
	if !strings.Contains(s, "v0=x") || !strings.Contains(s, "v1=y") {
		t.Errorf("Explain = %q", s)
	}
}

func TestRunFromReader(t *testing.T) {
	text := "a\tip\tb\tip\tt1\t1\nb\tip\tc\tip\tt2\t2\n"
	q := query.NewPath(query.Wildcard, "t1", "t2")
	stats := collect([]stream.Edge{edge("a", "b", "t1", 1), edge("b", "c", "t2", 2)})
	eng, _ := New(q, Config{Strategy: StrategyPathLazy, Stats: stats})
	n, err := eng.Run(stream.NewReader(strings.NewReader(text)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Run found %d matches, want 1", n)
	}
}

// --- The cross-strategy equivalence property ---------------------------

type genConfig struct {
	nVerts, nEdges int
	types          []string
	queryLen       int
	window         int64
	tree           bool
}

func randomStream(rng *rand.Rand, cfg genConfig) []stream.Edge {
	var out []stream.Edge
	for i := 0; i < cfg.nEdges; i++ {
		s := rng.Intn(cfg.nVerts)
		d := rng.Intn(cfg.nVerts)
		if s == d {
			continue
		}
		out = append(out, edge(
			fmt.Sprintf("n%d", s), fmt.Sprintf("n%d", d),
			cfg.types[rng.Intn(len(cfg.types))], int64(len(out)+1)))
	}
	return out
}

func randomQuery(rng *rand.Rand, cfg genConfig) *query.Graph {
	if !cfg.tree {
		qt := make([]string, cfg.queryLen)
		for i := range qt {
			qt[i] = cfg.types[rng.Intn(len(cfg.types))]
		}
		return query.NewPath(query.Wildcard, qt...)
	}
	// Random tree: attach each new edge to a random existing vertex,
	// random direction.
	q := &query.Graph{}
	q.AddVertex("v0", query.Wildcard)
	for i := 0; i < cfg.queryLen; i++ {
		anchor := rng.Intn(len(q.Vertices))
		nv := q.AddVertex(fmt.Sprintf("v%d", i+1), query.Wildcard)
		tp := cfg.types[rng.Intn(len(cfg.types))]
		if rng.Intn(2) == 0 {
			q.AddEdge(anchor, nv, tp)
		} else {
			q.AddEdge(nv, anchor, tp)
		}
	}
	return q
}

func TestPropertyAllStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	configs := []genConfig{
		{nVerts: 6, nEdges: 60, types: []string{"a", "b"}, queryLen: 2},
		{nVerts: 8, nEdges: 80, types: []string{"a", "b", "c"}, queryLen: 3},
		{nVerts: 8, nEdges: 80, types: []string{"a", "b", "c"}, queryLen: 3, window: 25},
		{nVerts: 10, nEdges: 70, types: []string{"a", "b", "c", "d"}, queryLen: 4, window: 40},
		{nVerts: 8, nEdges: 60, types: []string{"a", "b", "c"}, queryLen: 3, tree: true},
		{nVerts: 10, nEdges: 70, types: []string{"a", "b", "c"}, queryLen: 4, window: 30, tree: true},
	}
	for ci, cfg := range configs {
		for trial := 0; trial < 8; trial++ {
			edges := randomStream(rng, cfg)
			q := randomQuery(rng, cfg)
			stats := collect(edges)
			var want []string
			var wantStrat Strategy
			for i, s := range allStrategies() {
				got := runStrategy(t, q, edges, s, cfg.window, stats)
				if i == 0 {
					want, wantStrat = got, s
					continue
				}
				if !equalStrings(got, want) {
					t.Fatalf("config %d trial %d: %v (%d matches) disagrees with %v (%d matches)\nquery:\n%s\nonly in %v: %v\nonly in %v: %v",
						ci, trial, s, len(got), wantStrat, len(want), q,
						s, diff(got, want), wantStrat, diff(want, got))
				}
			}
		}
	}
}

func diff(a, b []string) []string {
	inB := make(map[string]int)
	for _, x := range b {
		inB[x]++
	}
	var out []string
	for _, x := range a {
		if inB[x] > 0 {
			inB[x]--
			continue
		}
		out = append(out, x)
		if len(out) > 4 {
			break
		}
	}
	return out
}

func TestStatsCounters(t *testing.T) {
	q := query.NewPath(query.Wildcard, "a", "b")
	edges := []stream.Edge{
		edge("x", "y", "a", 1),
		edge("y", "z", "b", 2),
	}
	stats := collect(edges)
	eng, _ := New(q, Config{Strategy: StrategySingleLazy, Stats: stats})
	for _, se := range edges {
		eng.ProcessEdge(se)
	}
	st := eng.Stats()
	if st.EdgesProcessed != 2 {
		t.Errorf("EdgesProcessed = %d", st.EdgesProcessed)
	}
	if st.CompleteMatches != 1 {
		t.Errorf("CompleteMatches = %d", st.CompleteMatches)
	}
	if st.LeafSearches == 0 || st.IsoSteps == 0 {
		t.Errorf("work counters empty: %+v", st)
	}
	if st.Tree.Emitted != 1 {
		t.Errorf("Tree.Emitted = %d", st.Tree.Emitted)
	}
}

func TestStrategyStrings(t *testing.T) {
	for _, s := range allStrategies() {
		if s.String() == "" || strings.HasPrefix(s.String(), "Strategy(") {
			t.Errorf("missing name for %d", int(s))
		}
	}
	if Strategy(99).String() != "Strategy(99)" {
		t.Errorf("unknown strategy string")
	}
	if StrategySingle.Lazy() || !StrategyPathLazy.Lazy() {
		t.Errorf("Lazy() wrong")
	}
}

func TestGraphAccessors(t *testing.T) {
	q := query.NewPath(query.Wildcard, "a")
	stats := collect([]stream.Edge{edge("x", "y", "a", 1)})
	eng, _ := New(q, Config{Strategy: StrategyPathLazy, Stats: stats})
	if eng.Graph() == nil || eng.Query() != q || eng.Tree() == nil {
		t.Errorf("accessors broken")
	}
	vf2, _ := New(q, Config{Strategy: StrategyVF2})
	if vf2.Tree() != nil {
		t.Errorf("VF2 engine should have no tree")
	}
	var _ graph.VertexID // keep import
}
