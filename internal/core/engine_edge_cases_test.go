package core

import (
	"fmt"
	"testing"

	"streamgraph/internal/query"
	"streamgraph/internal/stream"
)

// TestCyclicQueryAllStrategies exercises the infiltration-style cyclic
// query the paper highlights as unsupported by DAG-based decompositions
// (Section 2.2): a directed triangle.
func TestCyclicQueryAllStrategies(t *testing.T) {
	q := &query.Graph{
		Vertices: []query.Vertex{{Name: "a", Label: "*"}, {Name: "b", Label: "*"}, {Name: "c", Label: "*"}},
		Edges: []query.Edge{
			{Src: 0, Dst: 1, Type: "rdp"},
			{Src: 1, Dst: 2, Type: "rdp"},
			{Src: 2, Dst: 0, Type: "ssh"},
		},
	}
	edges := []stream.Edge{
		edge("h1", "h2", "rdp", 1),
		edge("h2", "h3", "rdp", 2),
		edge("h3", "h1", "ssh", 3),
		// Distractors: an open path and a wrong-direction closer.
		edge("h4", "h5", "rdp", 4),
		edge("h5", "h6", "rdp", 5),
		edge("h6", "h7", "ssh", 6),
		edge("h1", "h3", "ssh", 7), // wrong direction for the cycle
	}
	stats := collect(edges)
	var want []string
	for i, s := range allStrategies() {
		got := runStrategy(t, q, edges, s, 0, stats)
		if len(got) != 1 {
			t.Fatalf("%v: cyclic query found %d matches, want 1: %v", s, len(got), got)
		}
		if i == 0 {
			want = got
		} else if !equalStrings(got, want) {
			t.Fatalf("%v disagrees on cyclic query", s)
		}
	}
}

// TestParallelEdgeQueryAllStrategies is the Figure 1c shape: two query
// edges between the same pair of vertices with different types.
func TestParallelEdgeQueryAllStrategies(t *testing.T) {
	q := &query.Graph{
		Vertices: []query.Vertex{{Name: "victim", Label: "*"}, {Name: "c2", Label: "*"}},
		Edges: []query.Edge{
			{Src: 0, Dst: 1, Type: "tcp"},
			{Src: 0, Dst: 1, Type: "large"},
		},
	}
	edges := []stream.Edge{
		edge("v1", "cc", "tcp", 1),
		edge("v1", "cc", "large", 2),
		edge("v2", "cc", "tcp", 3), // no matching large edge
	}
	stats := collect(edges)
	for _, s := range allStrategies() {
		got := runStrategy(t, q, edges, s, 0, stats)
		if len(got) != 1 {
			t.Fatalf("%v: parallel-edge query found %d matches, want 1", s, len(got))
		}
	}
}

// TestDoSPatternAllStrategies is the Figure 1b denial-of-service shape:
// multiple sources converging on one victim.
func TestDoSPatternAllStrategies(t *testing.T) {
	q := &query.Graph{
		Vertices: []query.Vertex{
			{Name: "b1", Label: "*"}, {Name: "b2", Label: "*"},
			{Name: "b3", Label: "*"}, {Name: "victim", Label: "*"},
		},
		Edges: []query.Edge{
			{Src: 0, Dst: 3, Type: "syn"},
			{Src: 1, Dst: 3, Type: "syn"},
			{Src: 2, Dst: 3, Type: "syn"},
		},
	}
	edges := []stream.Edge{
		edge("x1", "target", "syn", 1),
		edge("x2", "target", "syn", 2),
		edge("x3", "target", "syn", 3),
		edge("x4", "other", "syn", 4),
	}
	stats := collect(edges)
	// 3 distinct bots map to 3 query vertices in 3! = 6 ways.
	for _, s := range allStrategies() {
		got := runStrategy(t, q, edges, s, 0, stats)
		if len(got) != 6 {
			t.Fatalf("%v: DoS pattern found %d matches, want 6", s, len(got))
		}
	}
}

// TestDuplicateStreamEdges: identical (src,dst,type) edges at different
// timestamps are parallel data edges; each completes its own match.
func TestDuplicateStreamEdges(t *testing.T) {
	q := query.NewPath(query.Wildcard, "a", "b")
	edges := []stream.Edge{
		edge("x", "y", "a", 1),
		edge("x", "y", "a", 2), // parallel duplicate
		edge("y", "z", "b", 3),
	}
	stats := collect(edges)
	for _, s := range allStrategies() {
		got := runStrategy(t, q, edges, s, 0, stats)
		if len(got) != 2 {
			t.Fatalf("%v: got %d matches, want 2 (one per parallel a-edge)", s, len(got))
		}
	}
}

// TestOutOfOrderTimestamps: arrival order differs from timestamp order;
// all strategies must agree (the window uses timestamps, eviction
// tolerates the disorder).
func TestOutOfOrderTimestamps(t *testing.T) {
	q := query.NewPath(query.Wildcard, "a", "b")
	edges := []stream.Edge{
		edge("x", "y", "a", 100),
		edge("y", "z", "b", 50), // older timestamp arrives later
		edge("p", "q", "a", 200),
		edge("q", "r", "b", 260),
	}
	stats := collect(edges)
	for _, s := range allStrategies() {
		// Window 80: span(x-y-z)=50 fits; span(p-q-r)=60 fits.
		got := runStrategy(t, q, edges, s, 80, stats)
		if len(got) != 2 {
			t.Fatalf("%v: out-of-order got %d matches, want 2 (%v)", s, len(got), got)
		}
		// Window 55: only the 50-span match survives.
		got = runStrategy(t, q, edges, s, 55, stats)
		if len(got) != 1 {
			t.Fatalf("%v: window 55 got %d matches, want 1", s, len(got))
		}
	}
}

// TestSingleEdgeQuery: the degenerate 1-edge pattern works under every
// strategy (the SJ-Tree root is the only leaf).
func TestSingleEdgeQuery(t *testing.T) {
	q := query.NewPath(query.Wildcard, "rare")
	edges := []stream.Edge{
		edge("a", "b", "common", 1),
		edge("b", "c", "rare", 2),
		edge("c", "d", "common", 3),
	}
	stats := collect(edges)
	for _, s := range allStrategies() {
		got := runStrategy(t, q, edges, s, 0, stats)
		if len(got) != 1 {
			t.Fatalf("%v: got %d matches, want 1", s, len(got))
		}
	}
}

// TestLabeledQueryAllStrategies: label constraints restrict matches
// identically under every strategy.
func TestLabeledQueryAllStrategies(t *testing.T) {
	q := &query.Graph{
		Vertices: []query.Vertex{
			{Name: "u", Label: "user"},
			{Name: "p", Label: "post"},
		},
		Edges: []query.Edge{{Src: 0, Dst: 1, Type: "likes"}},
	}
	edges := []stream.Edge{
		{Src: "alice", SrcLabel: "user", Dst: "post1", DstLabel: "post", Type: "likes", TS: 1},
		{Src: "bot7", SrcLabel: "bot", Dst: "post2", DstLabel: "post", Type: "likes", TS: 2},
		{Src: "bob", SrcLabel: "user", Dst: "page9", DstLabel: "page", Type: "likes", TS: 3},
	}
	stats := collect(edges)
	for _, s := range allStrategies() {
		got := runStrategy(t, q, edges, s, 0, stats)
		if len(got) != 1 {
			t.Fatalf("%v: labeled query got %d matches, want 1", s, len(got))
		}
	}
}

// TestRepeatedWindowsReuse: a long stream of repeating patterns with a
// tight window — matches keep being found after many evictions, and
// memory (stored partials) stays bounded.
func TestRepeatedWindowsReuse(t *testing.T) {
	q := query.NewPath(query.Wildcard, "a", "b")
	var edges []stream.Edge
	for i := 0; i < 300; i++ {
		ts := int64(i * 10)
		edges = append(edges,
			edge(fmt.Sprintf("x%d", i), fmt.Sprintf("y%d", i), "a", ts),
			edge(fmt.Sprintf("y%d", i), fmt.Sprintf("z%d", i), "b", ts+1),
		)
	}
	stats := collect(edges[:40])
	for _, s := range []Strategy{StrategySingle, StrategySingleLazy, StrategyPathLazy} {
		eng, err := New(q, Config{Strategy: s, Window: 50, Stats: stats, EvictEvery: 16})
		if err != nil {
			t.Fatal(err)
		}
		matches := 0
		for _, se := range edges {
			matches += len(eng.ProcessEdge(se))
		}
		if matches != 300 {
			t.Fatalf("%v: got %d matches, want 300", s, matches)
		}
		if stored := eng.Stats().Tree.Stored; stored > 100 {
			t.Fatalf("%v: %d partials retained with a 50-tick window", s, stored)
		}
	}
}

// TestEmptyTypeNeverSeen: a query whose type never appears is cheap and
// silent under every strategy.
func TestEmptyTypeNeverSeen(t *testing.T) {
	q := query.NewPath(query.Wildcard, "ghost", "phantom")
	edges := []stream.Edge{edge("a", "b", "real", 1), edge("b", "c", "real", 2)}
	for _, s := range []Strategy{StrategyVF2, StrategyIncIso} {
		got := runStrategy(t, q, edges, s, 0, nil)
		if len(got) != 0 {
			t.Fatalf("%v: ghost query matched", s)
		}
	}
	// Decomposition strategies need stats but work with zero-selectivity
	// types too.
	stats := collect(edges)
	for _, s := range []Strategy{StrategySingle, StrategySingleLazy, StrategyPath, StrategyPathLazy} {
		got := runStrategy(t, q, edges, s, 0, stats)
		if len(got) != 0 {
			t.Fatalf("%v: ghost query matched", s)
		}
	}
}
