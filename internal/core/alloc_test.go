package core

import (
	"fmt"
	"testing"

	"streamgraph/internal/metrics"
	"streamgraph/internal/query"
	"streamgraph/internal/stream"
)

// TestProcessEdgeInstrumentedAllocFree extends the PR 3 allocation
// gates (see internal/sjtree/alloc_test.go) to the observability
// layer: with per-edge latency sampling attached on EVERY edge, the
// steady-state ProcessEdge path must still allocate nothing. The
// workload inserts a leaf partial match per edge (real tree and pool
// traffic) but never completes a match, so any allocation measured
// would come from the engine or the metrics recording itself.
func TestProcessEdgeInstrumentedAllocFree(t *testing.T) {
	m := NewMulti(MultiConfig{Window: 200, EvictEvery: 16})
	// GRE→TCP path over a TCP-only stream: every edge feeds the TCP
	// leaf's match table, window expiry recycles through the pool, and
	// no complete match is ever emitted.
	q := query.NewPath("ip", "GRE", "TCP")
	if err := m.Register("probe", q, Config{Strategy: StrategyPath, BatchWorkers: 1}); err != nil {
		t.Fatal(err)
	}

	const hosts = 16
	names := make([]string, hosts)
	for i := range names {
		names[i] = fmt.Sprintf("h%d", i)
	}
	edge := func(i int, ts int64) stream.Edge {
		return stream.Edge{
			Src: names[i%hosts], SrcLabel: "ip",
			Dst: names[(i+1)%hosts], DstLabel: "ip",
			Type: "TCP", TS: ts,
		}
	}

	hist := &metrics.AtomicHistogram{}
	m.SetEdgeLatency(hist, 1) // time every single edge — worst case

	// Warm to steady state: interners, buckets, pool, eviction heap.
	ts := int64(0)
	for i := 0; i < 4096; i++ {
		ts++
		m.ProcessEdge(edge(i, ts))
	}

	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		ts++
		if got := m.ProcessEdge(edge(i, ts)); got != nil {
			t.Fatalf("unexpected match at edge %d", i)
		}
		i++
	})
	if avg != 0 {
		t.Errorf("instrumented ProcessEdge allocates %v allocs/op, want 0", avg)
	}
	if hist.Count() == 0 {
		t.Fatal("latency histogram recorded no samples")
	}
}

// TestProcessBatchAllocFree extends the allocation gate to the batch
// path: once the batchArena has grown to the workload's steady-state
// demand, ProcessBatch must allocate nothing — the materialized-edge
// buffer, per-edge result rows and match copies all come out of the
// arena. Same no-complete-match workload as the serial gate (real leaf
// and pool traffic, no emitted matches), batch size 64, single search
// worker (the inline path the sharded runtime runs per slot).
func TestProcessBatchAllocFree(t *testing.T) {
	m := NewMulti(MultiConfig{Window: 200, EvictEvery: 16})
	q := query.NewPath("ip", "GRE", "TCP")
	if err := m.Register("probe", q, Config{Strategy: StrategySingleLazy, BatchWorkers: 1}); err != nil {
		t.Fatal(err)
	}

	const hosts = 16
	const batchSize = 64
	names := make([]string, hosts)
	for i := range names {
		names[i] = fmt.Sprintf("h%d", i)
	}
	ts := int64(0)
	i := 0
	batch := make([]stream.Edge, batchSize)
	fill := func() {
		for j := range batch {
			ts++
			batch[j] = stream.Edge{
				Src: names[i%hosts], SrcLabel: "ip",
				Dst: names[(i+1)%hosts], DstLabel: "ip",
				Type: "TCP", TS: ts,
			}
			i++
		}
	}

	// Warm to steady state: interners, buckets, pool, eviction heap,
	// and the arena's per-kind demand.
	for r := 0; r < 64; r++ {
		fill()
		m.ProcessBatchGrouped(batch)
	}

	avg := testing.AllocsPerRun(200, func() {
		fill()
		for _, ms := range m.ProcessBatchGrouped(batch) {
			if len(ms) != 0 {
				t.Fatalf("unexpected match at edge %d", i)
			}
		}
	})
	if avg != 0 {
		t.Errorf("ProcessBatchGrouped allocates %v allocs/op, want 0", avg)
	}
}
