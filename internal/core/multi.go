package core

import (
	"fmt"
	"sort"
	"time"

	"streamgraph/internal/graph"
	"streamgraph/internal/iso"
	"streamgraph/internal/metrics"
	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/stream"
)

// MultiEngine runs many registered continuous queries over one shared
// windowed data graph: the stream is ingested once, every query's
// SJ-Tree searches around each new edge, and eviction maintains the
// shared graph plus each query's partial-match tables. This is the
// deployment mode the paper's introduction describes — "register a
// pattern as a graph query and continuously perform the query on the
// data graph as it evolves".
type MultiEngine struct {
	g      *graph.Graph
	window int64

	queries map[string]*Engine
	order   []string // registration order for deterministic dispatch

	stats      *selectivity.Collector // shared rolling statistics
	evictEvery int
	sinceEvict int
	edgesSeen  int64

	// filter is the replica filter: the set of edge types ingestion
	// admits, over the shared graph's interner. It defaults to
	// universal (admit everything); the sharded runtime narrows it to
	// the union edge-type footprint of the engine's queries, making the
	// shared graph a filtered replica. See SetReplicaFilter.
	filter graph.TypeSet
	stored int64 // cumulative edges admitted into the graph

	// Optional observability hook (SetEdgeLatency): every latEvery-th
	// ProcessEdge call is timed into edgeLat. nil means no timing at
	// all — the default, so unmonitored deployments pay nothing.
	edgeLat  *metrics.AtomicHistogram
	latEvery int64
	latN     int64

	// Batch-path scratch, reused across batches: the arena backs the
	// shared ingest buffer and per-edge result rows, pq the per-query
	// result table (see batchArena for the ownership contract).
	arena batchArena
	pq    [][][]iso.Match
}

// MultiConfig parameterizes a MultiEngine.
type MultiConfig struct {
	// Window is tW, shared by every registered query.
	Window int64
	// EvictEvery controls eviction frequency (default 256 edges).
	EvictEvery int
}

// NamedMatch pairs a complete match with the query that produced it.
type NamedMatch struct {
	Query string
	Match iso.Match
}

// NewMulti returns an empty multi-query engine.
func NewMulti(cfg MultiConfig) *MultiEngine {
	if cfg.EvictEvery <= 0 {
		cfg.EvictEvery = 256
	}
	return &MultiEngine{
		g:          graph.New(),
		window:     cfg.Window,
		queries:    make(map[string]*Engine),
		stats:      selectivity.NewCollector(),
		evictEvery: cfg.EvictEvery,
		filter:     graph.UniversalTypes(),
	}
}

// SetReplicaFilter restricts subsequent ingestion to edges whose type
// is one of types: everything else is dropped before touching the
// graph, the statistics, or any query's search — the engine becomes a
// filtered replica of the stream. universal re-admits every type
// (types is then ignored). The caller is responsible for only
// filtering when every registered query's edge-type footprint is
// covered (see query.Graph.TypeFootprint); the sharded runtime
// maintains exactly that invariant, backfilling via Backfill when a
// registration widens the footprint and trimming via TrimReplica when
// an unregistration narrows it.
//
// Match-set exactness under a covering filter follows from the matcher
// being type-respecting — it can never bind an edge outside a query's
// footprint — plus the eviction-slack argument of Engine.advanceEvict:
// a filtered engine processes fewer edges, so it evicts later, which
// with non-decreasing timestamps only retains extra memory, never
// changes complete matches. Retrospective (lazy) repairs run at the
// next admitted edge instead of the next stream edge, which shifts
// when a match is reported but not whether.
func (m *MultiEngine) SetReplicaFilter(types []string, universal bool) {
	if universal {
		m.filter = graph.UniversalTypes()
		return
	}
	ids := make([]graph.TypeID, len(types))
	for i, tp := range types {
		ids[i] = graph.TypeID(m.g.Types().Intern(tp))
	}
	m.filter = graph.NewTypeSet(ids...)
}

// ReplicaView returns the shared graph seen through the replica
// filter. With a universal filter it is simply the whole graph; with a
// narrowed filter its edge set is what the replica is contracted to
// hold.
func (m *MultiEngine) ReplicaView() graph.View { return m.g.ViewTypes(m.filter) }

// EdgesStored reports the cumulative number of edges admitted into the
// shared graph (filtered ingest plus backfill) — the replication-cost
// metric the shard experiment sums across shards.
func (m *MultiEngine) EdgesStored() int64 { return m.stored }

// admits reports whether the replica filter accepts the edge.
func (m *MultiEngine) admits(se stream.Edge) bool {
	if m.filter.Universal() {
		return true
	}
	id, ok := m.g.Types().Lookup(se.Type)
	return ok && m.filter.Has(graph.TypeID(id))
}

// Backfill admits edges into the shared graph and statistics without
// running any query's search, bypassing the replica filter. The
// sharded runtime replays the shared edge log through it when a
// registration widens a replica's footprint: the edges existed in the
// stream's past, so they must exist in the replica, but — exactly as
// with MultiEngine.Register on a full graph — they are not
// retroactively searched.
func (m *MultiEngine) Backfill(ses []stream.Edge) {
	if len(ses) == 0 {
		return
	}
	for _, se := range ses {
		m.stats.Add(se)
		ingestOne(m.g, se)
		m.stored++
	}
	// The backfilled edges are older than what the graph already holds;
	// put the eviction FIFO back into timestamp order so they expire
	// when a serial ingest of the same edges would have expired them.
	m.g.NormalizeEvictionOrder()
}

// TrimReplica removes every live edge whose type the replica filter no
// longer admits, returning how many were dropped. The sharded runtime
// calls it after an unregistration narrows the footprint; the dropped
// types are disjoint from every remaining query's footprint, so no
// partial-match state can reference the removed edges.
func (m *MultiEngine) TrimReplica() int {
	if m.filter.Universal() {
		return 0
	}
	var drop []graph.EdgeID
	m.g.EachEdge(func(e graph.Edge) bool {
		if !m.filter.Has(e.Type) {
			drop = append(drop, e.ID)
		}
		return true
	})
	for _, id := range drop {
		m.g.RemoveEdge(id)
	}
	if len(drop) > 0 {
		// The removals punched holes in the middle of the eviction
		// FIFO; rebuild it so no stale entry can alias a recycled edge
		// slot and stall the eviction walk (see NormalizeEvictionOrder).
		m.g.NormalizeEvictionOrder()
	}
	return len(drop)
}

// Graph exposes the shared data graph (read-only use).
func (m *MultiEngine) Graph() *graph.Graph { return m.g }

// Statistics exposes the shared rolling statistics collector, fed by
// every processed edge; it drives the decomposition of queries
// registered later in the stream.
func (m *MultiEngine) Statistics() *selectivity.Collector { return m.stats }

// Register adds a continuous query under a unique name. The query is
// decomposed using the statistics observed so far (or Config.Stats /
// Config.Leaves when provided in cfg). The engine's graph and window
// are overridden to the shared ones.
func (m *MultiEngine) Register(name string, q *query.Graph, cfg Config) error {
	if _, dup := m.queries[name]; dup {
		return fmt.Errorf("core: query %q already registered", name)
	}
	cfg.Window = m.window
	if cfg.Stats == nil {
		cfg.Stats = m.stats
	}
	eng, err := New(q, cfg)
	if err != nil {
		return err
	}
	// Rebind the engine to the shared graph. Existing edges are not
	// retroactively searched: a freshly registered query sees matches
	// whose last edge arrives after registration, plus anything its
	// lazy repair reaches in the existing neighborhood.
	eng.g = m.g
	eng.matcher = eng.newMatcher()
	if eng.tree != nil {
		eng.matcher.Pool = eng.tree.Pool()
	}
	eng.external = true
	m.queries[name] = eng
	m.order = append(m.order, name)
	return nil
}

// RegisterWithBackfill registers a query and then replays every live
// edge of the shared graph through it, so patterns that already
// partially (or fully) exist are tracked immediately. It returns the
// complete matches found among the existing edges. The SJ-Tree's
// insert path is arrival-order-robust, so arena replay order is
// sufficient. Cost is O(live edges).
func (m *MultiEngine) RegisterWithBackfill(name string, q *query.Graph, cfg Config) ([]iso.Match, error) {
	if err := m.Register(name, q, cfg); err != nil {
		return nil, err
	}
	eng := m.queries[name]
	var initial []iso.Match
	m.g.EachEdge(func(de graph.Edge) bool {
		initial = append(initial, eng.processShared(de)...)
		return true
	})
	return initial, nil
}

// Unregister removes a query and its partial-match state.
func (m *MultiEngine) Unregister(name string) {
	if _, ok := m.queries[name]; !ok {
		return
	}
	delete(m.queries, name)
	for i, n := range m.order {
		if n == name {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// Registered returns the registered query names in registration order.
func (m *MultiEngine) Registered() []string {
	return append([]string(nil), m.order...)
}

// QueryEngine returns the per-query engine (for stats inspection).
func (m *MultiEngine) QueryEngine(name string) *Engine { return m.queries[name] }

// PortableBinding is one resolved vertex of a portable match: query
// vertex name to data vertex name.
type PortableBinding struct {
	QueryVertex, DataVertex string
}

// PortableMatchEdge is one resolved edge of a portable match.
type PortableMatchEdge struct {
	QueryEdge      int // index into the query's edge list
	Src, Dst, Type string
	TS             int64
}

// ResolveMatch resolves an engine match into portable name-based form
// against the shared graph now, while the bound edges are certainly
// still live. Both the local shard worker and the remote dshard worker
// emit matches through this one definition — sharing it is part of
// what keeps match output byte-identical across topologies.
func (m *MultiEngine) ResolveMatch(nm NamedMatch) (bindings []PortableBinding, edges []PortableMatchEdge) {
	q := m.queries[nm.Query].Query()
	for qv, dv := range nm.Match.VertexOf {
		if dv == graph.NoVertex {
			continue
		}
		bindings = append(bindings, PortableBinding{
			QueryVertex: q.Vertices[qv].Name,
			DataVertex:  m.g.VertexName(dv),
		})
	}
	for qe, eid := range nm.Match.EdgeOf {
		de, ok := m.g.Edge(eid)
		if !ok {
			continue
		}
		edges = append(edges, PortableMatchEdge{
			QueryEdge: qe,
			Src:       m.g.VertexName(de.Src),
			Dst:       m.g.VertexName(de.Dst),
			Type:      m.g.Types().Name(uint32(de.Type)),
			TS:        de.TS,
		})
	}
	return bindings, edges
}

// ingest adds one stream edge to the shared graph, updates the rolling
// statistics and runs eviction, returning the materialized edge.
func (m *MultiEngine) ingest(se stream.Edge) graph.Edge {
	m.edgesSeen++
	m.stats.Add(se)
	de := ingestOne(m.g, se)
	m.stored++
	m.maybeEvict()
	return de
}

// SetEdgeLatency attaches a histogram that samples the wall-clock cost
// of ProcessEdge: every sampleEvery-th call is timed (1 times every
// call; <= 0 detaches). Sampling keeps the two time.Now reads off most
// edges when the caller wants tail visibility at minimal overhead; the
// recording itself is lock- and allocation-free.
func (m *MultiEngine) SetEdgeLatency(h *metrics.AtomicHistogram, sampleEvery int) {
	if h == nil || sampleEvery <= 0 {
		m.edgeLat, m.latEvery, m.latN = nil, 0, 0
		return
	}
	m.edgeLat, m.latEvery, m.latN = h, int64(sampleEvery), 0
}

// ProcessEdge ingests one stream edge into the shared graph and runs
// every registered query's incremental search around it. An edge the
// replica filter rejects is dropped whole: no graph mutation, no
// statistics, no search.
func (m *MultiEngine) ProcessEdge(se stream.Edge) []NamedMatch {
	if m.edgeLat != nil {
		m.latN++
		if m.latN >= m.latEvery {
			m.latN = 0
			start := time.Now()
			out := m.processEdge(se)
			m.edgeLat.RecordDuration(time.Since(start))
			return out
		}
	}
	return m.processEdge(se)
}

// processEdge is ProcessEdge without the latency sampling wrapper.
func (m *MultiEngine) processEdge(se stream.Edge) []NamedMatch {
	if !m.admits(se) {
		return nil
	}
	de := m.ingest(se)
	var out []NamedMatch
	for _, name := range m.order {
		eng := m.queries[name]
		for _, mt := range eng.processShared(de) {
			out = append(out, NamedMatch{Query: name, Match: mt})
		}
	}
	return out
}

func (m *MultiEngine) maybeEvict() { m.advanceEvict(1) }

// advanceEvict advances the shared eviction clock by n processed edges
// and sweeps when the cadence fires. The batch path calls it before
// ingesting so the cutoff stays behind every serial mid-batch cutoff
// (see Engine.advanceEvict for why that preserves match sets).
func (m *MultiEngine) advanceEvict(n int) {
	if m.window <= 0 {
		return
	}
	m.sinceEvict += n
	if m.sinceEvict < m.evictEvery {
		return
	}
	m.sinceEvict = 0
	cutoff := m.g.LastTS() - m.window + 1
	m.g.ExpireBefore(cutoff)
	for _, eng := range m.queries {
		if eng.tree != nil {
			eng.tree.ExpireBefore(cutoff)
		}
		if eng.lazy {
			for v := range eng.bits {
				if m.g.Degree(v) == 0 {
					delete(eng.bits, v)
				}
			}
		}
	}
}

// FlushPending runs every registered query's queued retrospective
// (lazy) work now instead of on the next edge arrival, returning the
// complete matches it produces in registration order. A filtered
// replica uses it as the drain barrier at register/unregister/close
// points: the serial schedule drains pending repairs at the next
// stream edge, which a gated replica may never receive.
func (m *MultiEngine) FlushPending() []NamedMatch {
	var out []NamedMatch
	for _, name := range m.order {
		for _, mt := range m.queries[name].FlushPending() {
			out = append(out, NamedMatch{Query: name, Match: mt})
		}
	}
	return out
}

// MultiStats summarizes the shared engine state.
type MultiStats struct {
	EdgesProcessed int64
	Queries        int
	PartialMatches int64 // across all queries
}

// Stats returns a snapshot of shared counters.
func (m *MultiEngine) Stats() MultiStats {
	st := MultiStats{EdgesProcessed: m.edgesSeen, Queries: len(m.queries)}
	for _, eng := range m.queries {
		if eng.tree != nil {
			st.PartialMatches += eng.tree.Stats().Stored
		}
	}
	return st
}

// EngineCounters aggregates the per-query engine internals the
// observability layer exports as gauges: SJ-tree activity totals and
// the match-pool recycling balance. Like Stats, it must be read from
// the goroutine that owns the engine (in the sharded runtime, the
// worker publishes these into atomic gauges itself).
type EngineCounters struct {
	// SJ-tree totals summed across registered tree-strategy queries.
	TreeInserted, TreeDeduped, TreeEmitted, TreeEvicted, TreeStored int64
	// Match-pool balance: PoolGets matches handed out, of which
	// PoolFresh allocated new arrays (the rest were recycled).
	PoolGets, PoolFresh int64
}

// Counters sums SJ-tree statistics and match-pool counters across all
// registered queries.
func (m *MultiEngine) Counters() EngineCounters {
	var c EngineCounters
	for _, eng := range m.queries {
		if eng.tree == nil {
			continue
		}
		st := eng.tree.Stats()
		c.TreeInserted += st.Inserted
		c.TreeDeduped += st.Deduped
		c.TreeEmitted += st.Emitted
		c.TreeEvicted += st.Evicted
		c.TreeStored += st.Stored
		gets, fresh := eng.tree.Pool().Stats()
		c.PoolGets += gets
		c.PoolFresh += fresh
	}
	return c
}

// TopQueriesByStored returns query names ordered by live partial-match
// count, heaviest first — an operator view of memory pressure.
func (m *MultiEngine) TopQueriesByStored() []string {
	names := append([]string(nil), m.order...)
	sort.Slice(names, func(i, j int) bool {
		si, sj := int64(0), int64(0)
		if t := m.queries[names[i]].tree; t != nil {
			si = t.Stats().Stored
		}
		if t := m.queries[names[j]].tree; t != nil {
			sj = t.Stats().Stored
		}
		if si != sj {
			return si > sj
		}
		return names[i] < names[j]
	})
	return names
}
