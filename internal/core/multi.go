package core

import (
	"fmt"
	"sort"

	"streamgraph/internal/graph"
	"streamgraph/internal/iso"
	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/stream"
)

// MultiEngine runs many registered continuous queries over one shared
// windowed data graph: the stream is ingested once, every query's
// SJ-Tree searches around each new edge, and eviction maintains the
// shared graph plus each query's partial-match tables. This is the
// deployment mode the paper's introduction describes — "register a
// pattern as a graph query and continuously perform the query on the
// data graph as it evolves".
type MultiEngine struct {
	g      *graph.Graph
	window int64

	queries map[string]*Engine
	order   []string // registration order for deterministic dispatch

	stats      *selectivity.Collector // shared rolling statistics
	evictEvery int
	sinceEvict int
	edgesSeen  int64
}

// MultiConfig parameterizes a MultiEngine.
type MultiConfig struct {
	// Window is tW, shared by every registered query.
	Window int64
	// EvictEvery controls eviction frequency (default 256 edges).
	EvictEvery int
}

// NamedMatch pairs a complete match with the query that produced it.
type NamedMatch struct {
	Query string
	Match iso.Match
}

// NewMulti returns an empty multi-query engine.
func NewMulti(cfg MultiConfig) *MultiEngine {
	if cfg.EvictEvery <= 0 {
		cfg.EvictEvery = 256
	}
	return &MultiEngine{
		g:          graph.New(),
		window:     cfg.Window,
		queries:    make(map[string]*Engine),
		stats:      selectivity.NewCollector(),
		evictEvery: cfg.EvictEvery,
	}
}

// Graph exposes the shared data graph (read-only use).
func (m *MultiEngine) Graph() *graph.Graph { return m.g }

// Statistics exposes the shared rolling statistics collector, fed by
// every processed edge; it drives the decomposition of queries
// registered later in the stream.
func (m *MultiEngine) Statistics() *selectivity.Collector { return m.stats }

// Register adds a continuous query under a unique name. The query is
// decomposed using the statistics observed so far (or Config.Stats /
// Config.Leaves when provided in cfg). The engine's graph and window
// are overridden to the shared ones.
func (m *MultiEngine) Register(name string, q *query.Graph, cfg Config) error {
	if _, dup := m.queries[name]; dup {
		return fmt.Errorf("core: query %q already registered", name)
	}
	cfg.Window = m.window
	if cfg.Stats == nil {
		cfg.Stats = m.stats
	}
	eng, err := New(q, cfg)
	if err != nil {
		return err
	}
	// Rebind the engine to the shared graph. Existing edges are not
	// retroactively searched: a freshly registered query sees matches
	// whose last edge arrives after registration, plus anything its
	// lazy repair reaches in the existing neighborhood.
	eng.g = m.g
	eng.matcher = eng.newMatcher()
	if eng.tree != nil {
		eng.matcher.Pool = eng.tree.Pool()
	}
	eng.external = true
	m.queries[name] = eng
	m.order = append(m.order, name)
	return nil
}

// RegisterWithBackfill registers a query and then replays every live
// edge of the shared graph through it, so patterns that already
// partially (or fully) exist are tracked immediately. It returns the
// complete matches found among the existing edges. The SJ-Tree's
// insert path is arrival-order-robust, so arena replay order is
// sufficient. Cost is O(live edges).
func (m *MultiEngine) RegisterWithBackfill(name string, q *query.Graph, cfg Config) ([]iso.Match, error) {
	if err := m.Register(name, q, cfg); err != nil {
		return nil, err
	}
	eng := m.queries[name]
	var initial []iso.Match
	m.g.EachEdge(func(de graph.Edge) bool {
		initial = append(initial, eng.processShared(de)...)
		return true
	})
	return initial, nil
}

// Unregister removes a query and its partial-match state.
func (m *MultiEngine) Unregister(name string) {
	if _, ok := m.queries[name]; !ok {
		return
	}
	delete(m.queries, name)
	for i, n := range m.order {
		if n == name {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// Registered returns the registered query names in registration order.
func (m *MultiEngine) Registered() []string {
	return append([]string(nil), m.order...)
}

// QueryEngine returns the per-query engine (for stats inspection).
func (m *MultiEngine) QueryEngine(name string) *Engine { return m.queries[name] }

// ingest adds one stream edge to the shared graph, updates the rolling
// statistics and runs eviction, returning the materialized edge.
func (m *MultiEngine) ingest(se stream.Edge) graph.Edge {
	m.edgesSeen++
	m.stats.Add(se)
	de := ingestOne(m.g, se)
	m.maybeEvict()
	return de
}

// ProcessEdge ingests one stream edge into the shared graph and runs
// every registered query's incremental search around it.
func (m *MultiEngine) ProcessEdge(se stream.Edge) []NamedMatch {
	de := m.ingest(se)
	var out []NamedMatch
	for _, name := range m.order {
		eng := m.queries[name]
		for _, mt := range eng.processShared(de) {
			out = append(out, NamedMatch{Query: name, Match: mt})
		}
	}
	return out
}

func (m *MultiEngine) maybeEvict() { m.advanceEvict(1) }

// advanceEvict advances the shared eviction clock by n processed edges
// and sweeps when the cadence fires. The batch path calls it before
// ingesting so the cutoff stays behind every serial mid-batch cutoff
// (see Engine.advanceEvict for why that preserves match sets).
func (m *MultiEngine) advanceEvict(n int) {
	if m.window <= 0 {
		return
	}
	m.sinceEvict += n
	if m.sinceEvict < m.evictEvery {
		return
	}
	m.sinceEvict = 0
	cutoff := m.g.LastTS() - m.window + 1
	m.g.ExpireBefore(cutoff)
	for _, eng := range m.queries {
		if eng.tree != nil {
			eng.tree.ExpireBefore(cutoff)
		}
		if eng.lazy {
			for v := range eng.bits {
				if m.g.Degree(v) == 0 {
					delete(eng.bits, v)
				}
			}
		}
	}
}

// MultiStats summarizes the shared engine state.
type MultiStats struct {
	EdgesProcessed int64
	Queries        int
	PartialMatches int64 // across all queries
}

// Stats returns a snapshot of shared counters.
func (m *MultiEngine) Stats() MultiStats {
	st := MultiStats{EdgesProcessed: m.edgesSeen, Queries: len(m.queries)}
	for _, eng := range m.queries {
		if eng.tree != nil {
			st.PartialMatches += eng.tree.Stats().Stored
		}
	}
	return st
}

// TopQueriesByStored returns query names ordered by live partial-match
// count, heaviest first — an operator view of memory pressure.
func (m *MultiEngine) TopQueriesByStored() []string {
	names := append([]string(nil), m.order...)
	sort.Slice(names, func(i, j int) bool {
		si, sj := int64(0), int64(0)
		if t := m.queries[names[i]].tree; t != nil {
			si = t.Stats().Stored
		}
		if t := m.queries[names[j]].tree; t != nil {
			sj = t.Stats().Stored
		}
		if si != sj {
			return si > sj
		}
		return names[i] < names[j]
	})
	return names
}
