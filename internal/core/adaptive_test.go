package core

import (
	"fmt"
	"testing"

	"streamgraph/internal/iso"
	"streamgraph/internal/query"
	"streamgraph/internal/sjtree"
	"streamgraph/internal/stream"
)

// driftStream produces a stream whose selectivity order flips halfway:
// first phase "x" is rare and "y" common; second phase the reverse.
func driftStream(n int) []stream.Edge {
	var out []stream.Edge
	ts := int64(0)
	emit := func(tp string, i int) {
		ts++
		out = append(out, edge(fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i), tp, ts))
	}
	for i := 0; i < n/2; i++ {
		if i%10 == 0 {
			emit("x", i)
		} else {
			emit("y", i)
		}
	}
	for i := n / 2; i < n; i++ {
		if i%10 == 0 {
			emit("y", i)
		} else {
			emit("x", i)
		}
	}
	return out
}

func TestAdaptiveRedecomposes(t *testing.T) {
	edges := driftStream(4000)
	// Chain the stream so the query can match: overwrite endpoints to
	// form x->y chains occasionally.
	for i := 0; i+1 < len(edges); i += 50 {
		edges[i].Src = fmt.Sprintf("c%d", i)
		edges[i].Dst = fmt.Sprintf("s%d", i)
		edges[i+1].Src = fmt.Sprintf("s%d", i)
		edges[i+1].Dst = fmt.Sprintf("d%d", i)
		edges[i].Type = "x"
		edges[i+1].Type = "y"
	}
	q := query.NewPath(query.Wildcard, "x", "y")

	// Train on the first phase only: "x" looks rare.
	training := collect(edges[:500])
	eng, err := New(q, Config{
		Strategy: StrategySingleLazy,
		Stats:    training,
		Adaptive: &AdaptiveConfig{RecomputeEvery: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	initialLeaves := eng.Tree().LeafSets()

	matches := 0
	for _, se := range edges {
		matches += len(eng.ProcessEdge(se))
	}
	st := eng.AdaptiveStats()
	if st.Recomputes == 0 {
		t.Fatalf("no recomputes recorded: %+v", st)
	}
	if st.Migrations == 0 {
		t.Fatalf("selectivity flip should force at least one migration: %+v", st)
	}
	finalLeaves := eng.Tree().LeafSets()
	if sameLeaves(initialLeaves, finalLeaves) {
		t.Fatalf("leaf order unchanged after drift: %v", finalLeaves)
	}
	if matches == 0 {
		t.Fatalf("no matches found during adaptive run")
	}
}

func TestAdaptiveMatchesNonAdaptive(t *testing.T) {
	// Adaptivity must not lose matches that complete after a migration:
	// compare against a non-adaptive engine on the same stream. Matches
	// whose parts straddle a migration AND were only partially stored
	// may be rediscovered lazily, so we compare against the full
	// non-lazy reference.
	edges := driftStream(3000)
	for i := 0; i+1 < len(edges); i += 40 {
		edges[i].Src = fmt.Sprintf("c%d", i)
		edges[i].Dst = fmt.Sprintf("s%d", i)
		edges[i+1].Src = fmt.Sprintf("s%d", i)
		edges[i+1].Dst = fmt.Sprintf("d%d", i)
		edges[i].Type = "x"
		edges[i+1].Type = "y"
	}
	q := query.NewPath(query.Wildcard, "x", "y")
	stats := collect(edges[:500])

	ref, err := New(q, Config{Strategy: StrategySingle, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	ad, err := New(q, Config{
		Strategy: StrategySingle, Stats: stats,
		Adaptive: &AdaptiveConfig{RecomputeEvery: 400},
	})
	if err != nil {
		t.Fatal(err)
	}
	refMatches, adMatches := 0, 0
	for _, se := range edges {
		refMatches += len(ref.ProcessEdge(se))
		adMatches += len(ad.ProcessEdge(se))
	}
	if refMatches != adMatches {
		t.Fatalf("adaptive %d matches vs reference %d", adMatches, refMatches)
	}
	if ad.AdaptiveStats().Migrations == 0 {
		t.Skipf("no migration triggered; nothing exercised")
	}
}

// TestAdaptiveBatchMatchesSerial pins the batch wiring for adaptive
// engines: ProcessBatch must reproduce the serial ProcessEdge schedule
// — per-edge match sets AND the adaptive recompute/migration counters —
// for batch sizes that straddle, hit exactly, and subdivide the
// recompute period.
func TestAdaptiveBatchMatchesSerial(t *testing.T) {
	edges := driftStream(3000)
	for i := 0; i+1 < len(edges); i += 40 {
		edges[i].Src = fmt.Sprintf("c%d", i)
		edges[i].Dst = fmt.Sprintf("s%d", i)
		edges[i+1].Src = fmt.Sprintf("s%d", i)
		edges[i+1].Dst = fmt.Sprintf("d%d", i)
		edges[i].Type = "x"
		edges[i+1].Type = "y"
	}
	q := query.NewPath(query.Wildcard, "x", "y")
	stats := collect(edges[:500])

	newAdaptive := func() *Engine {
		eng, err := New(q, Config{
			Strategy: StrategySingleLazy, Stats: stats, Window: 600, EvictEvery: 5,
			Adaptive: &AdaptiveConfig{RecomputeEvery: 400},
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}

	serial := newAdaptive()
	var want [][]string
	for _, se := range edges {
		want = appendEdgeSigs(serial, want, serial.ProcessEdge(se))
	}
	wantStats := serial.AdaptiveStats()
	if wantStats.Recomputes == 0 || wantStats.Migrations == 0 {
		t.Fatalf("serial run exercised no re-decomposition: %+v", wantStats)
	}
	total := 0
	for _, sigs := range want {
		total += len(sigs)
	}
	if total == 0 {
		t.Fatal("no matches; differential is vacuous")
	}

	// 400 lands recomputes exactly on batch boundaries; 256 and 77
	// straddle them; 512 spans more than one period per batch.
	for _, bs := range []int{77, 256, 400, 512} {
		batched := newAdaptive()
		var got [][]string
		for lo := 0; lo < len(edges); lo += bs {
			hi := lo + bs
			if hi > len(edges) {
				hi = len(edges)
			}
			for _, ms := range batched.ProcessBatch(edges[lo:hi]) {
				got = appendEdgeSigs(batched, got, ms)
			}
		}
		comparePerEdge(t, fmt.Sprintf("adaptive batch=%d vs serial", bs), got, want)
		// The decision points must line up exactly. Migrated may exceed
		// the serial count: the batch path's amortized eviction (cutoff
		// taken before the batch) legitimately keeps a few more partials
		// alive at migration time — same slack the non-adaptive batch
		// path documents for out-of-order eviction.
		gs := batched.AdaptiveStats()
		if gs.Recomputes != wantStats.Recomputes || gs.Migrations != wantStats.Migrations {
			t.Fatalf("batch=%d adaptive decisions diverge: %+v vs serial %+v", bs, gs, wantStats)
		}
		if gs.Migrated < wantStats.Migrated {
			t.Fatalf("batch=%d migrated %d partials, serial migrated %d — batch must keep a superset",
				bs, gs.Migrated, wantStats.Migrated)
		}
	}
}

func TestAdaptiveStatsZeroWhenDisabled(t *testing.T) {
	q := query.NewPath(query.Wildcard, "x")
	eng, err := New(q, Config{Strategy: StrategyVF2})
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.AdaptiveStats(); st.Recomputes != 0 {
		t.Fatalf("adaptive stats nonzero when disabled: %+v", st)
	}
}

func TestProjectSkipsEvictedEdges(t *testing.T) {
	q := query.NewPath(query.Wildcard, "x", "y")
	stats := collect([]stream.Edge{edge("a", "b", "x", 1), edge("b", "c", "y", 2)})
	eng, err := New(q, Config{Strategy: StrategySingle, Stats: stats, Window: 10, EvictEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng.ProcessEdge(edge("a", "b", "x", 1))
	// Record a stored match, then advance time far enough to evict the
	// edge, and verify projection fails cleanly.
	var stored bool
	eng.tree.EachStored(func(_ *sjtree.Node, m iso.Match) bool {
		if _, ok := eng.project(m, []int{0}); !ok {
			t.Errorf("projection should succeed while edge is live")
		}
		stored = true
		return true
	})
	if !stored {
		t.Fatalf("no stored match to project")
	}
	eng.ProcessEdge(edge("zz", "ww", "x", 1000)) // evicts ts=1
	eng.tree.EachStored(func(_ *sjtree.Node, m iso.Match) bool {
		// The old match was evicted from the table too; any remaining
		// entries must still project.
		_, _ = eng.project(m, []int{0})
		return true
	})
}
