// Batch-path result arena. Every ProcessBatch call used to allocate a
// fresh set of scratch slices — the materialized-edge buffer, the
// per-edge result headers, the speculative candidate matrix and its
// masks, and one []iso.Match copy per edge that completed matches.
// Under the steady-state batch workloads the sharded runtime drives
// (thousands of small batches per second per engine) those short-lived
// slices dominated the allocation profile of an otherwise
// allocation-free engine (see the PR 3/PR 4 gates in
// internal/sjtree/alloc_test.go and alloc_test.go).
//
// batchArena replaces them with generation-scoped reuse: begin() opens
// a generation (one top-level batch), the take methods hand out
// sub-slices of per-kind backing buffers, and the NEXT begin() recycles
// everything at once. Within a generation nothing is ever handed out
// twice and the backing buffers never reallocate (overflow is served by
// a plain make, and the recorded demand grows the buffer for the next
// generation instead), so a slice taken earlier in the generation is
// never invalidated by a later take.
//
// Ownership contract: slices returned by ProcessBatch /
// ProcessBatchGrouped remain valid until the NEXT batch call on the
// same engine, and no longer. Every caller in the tree (the facade
// Monitor, the shard worker loop, the dshard host) consumes or copies
// each batch's matches before feeding the next batch, which is exactly
// the lifetime a generation gives them. Callers that retain matches
// across batches must copy the per-edge slices (the iso.Match values
// themselves own their bindings and are safe to copy).
package core

import (
	"streamgraph/internal/graph"
	"streamgraph/internal/iso"
)

// batchArena is the per-engine scratch allocator for the batch path.
// It is owned by exactly one batch generation at a time (the engine's
// single writer), never shared across goroutines: the parallel search
// phase only writes into rows the sequential phase took beforehand.
type batchArena struct {
	edges []graph.Edge  // materialized-edge buffers (ingestBatch)
	rows  [][]iso.Match // result/candidate row headers
	flags []bool        // speculation masks
	ints  []int         // speculation task lists
	named [][]NamedMatch
	slab  []iso.Match // per-edge completed-match copies

	edgesU, rowsU, flagsU, intsU, namedU, slabU int // used this generation
	edgesD, rowsD, flagsD, intsD, namedD, slabD int // demand this generation
}

// begin opens a new generation: everything handed out by the previous
// one is recycled, and any buffer whose demand outgrew it is resized
// so this generation's takes stay in the arena.
func (a *batchArena) begin() {
	if a.edgesD > cap(a.edges) {
		a.edges = make([]graph.Edge, a.edgesD)
	}
	if a.rowsD > cap(a.rows) {
		a.rows = make([][]iso.Match, a.rowsD)
	}
	if a.flagsD > cap(a.flags) {
		a.flags = make([]bool, a.flagsD)
	}
	if a.intsD > cap(a.ints) {
		a.ints = make([]int, a.intsD)
	}
	if a.namedD > cap(a.named) {
		a.named = make([][]NamedMatch, a.namedD)
	}
	if a.slabD > cap(a.slab) {
		a.slab = make([]iso.Match, a.slabD)
	}
	a.edges, a.rows, a.flags = a.edges[:cap(a.edges)], a.rows[:cap(a.rows)], a.flags[:cap(a.flags)]
	a.ints, a.named, a.slab = a.ints[:cap(a.ints)], a.named[:cap(a.named)], a.slab[:cap(a.slab)]
	a.edgesU, a.rowsU, a.flagsU, a.intsU, a.namedU, a.slabU = 0, 0, 0, 0, 0, 0
	a.edgesD, a.rowsD, a.flagsD, a.intsD, a.namedD, a.slabD = 0, 0, 0, 0, 0, 0
}

// edgeBuf returns an uninitialized length-n edge buffer (the caller
// assigns every element).
func (a *batchArena) edgeBuf(n int) []graph.Edge {
	a.edgesD += n
	if a.edgesU+n <= len(a.edges) {
		s := a.edges[a.edgesU : a.edgesU+n : a.edgesU+n]
		a.edgesU += n
		return s
	}
	return make([]graph.Edge, n)
}

// rowBuf returns a zeroed length-n row buffer (semantically identical
// to make([][]iso.Match, n) — callers rely on untouched rows being
// nil).
func (a *batchArena) rowBuf(n int) [][]iso.Match {
	a.rowsD += n
	if a.rowsU+n <= len(a.rows) {
		s := a.rows[a.rowsU : a.rowsU+n : a.rowsU+n]
		a.rowsU += n
		clear(s)
		return s
	}
	return make([][]iso.Match, n)
}

// flagBuf returns a zeroed length-n mask.
func (a *batchArena) flagBuf(n int) []bool {
	a.flagsD += n
	if a.flagsU+n <= len(a.flags) {
		s := a.flags[a.flagsU : a.flagsU+n : a.flagsU+n]
		a.flagsU += n
		clear(s)
		return s
	}
	return make([]bool, n)
}

// intBuf returns a length-0, capacity-n buffer for append-style use.
func (a *batchArena) intBuf(n int) []int {
	a.intsD += n
	if a.intsU+n <= len(a.ints) {
		s := a.ints[a.intsU : a.intsU : a.intsU+n]
		a.intsU += n
		return s
	}
	return make([]int, 0, n)
}

// namedBuf returns a zeroed length-n named-match row buffer.
func (a *batchArena) namedBuf(n int) [][]NamedMatch {
	a.namedD += n
	if a.namedU+n <= len(a.named) {
		s := a.named[a.namedU : a.namedU+n : a.namedU+n]
		a.namedU += n
		clear(s)
		return s
	}
	return make([][]NamedMatch, n)
}

// matches copies src into the match slab and returns the copy — the
// arena form of append([]iso.Match(nil), src...), preserving its
// nil-for-empty result.
func (a *batchArena) matches(src []iso.Match) []iso.Match {
	n := len(src)
	if n == 0 {
		return nil
	}
	a.slabD += n
	if a.slabU+n <= len(a.slab) {
		dst := a.slab[a.slabU : a.slabU+n : a.slabU+n]
		a.slabU += n
		copy(dst, src)
		return dst
	}
	return append([]iso.Match(nil), src...)
}
