package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"streamgraph/internal/iso"
	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/stream"
)

// retroRun drives a single lazy engine over edges and returns the
// per-edge match signatures (in report order) plus the engine stats.
// collide forces every retro dedup signature onto one hash bucket, so
// duplicate suppression survives only through the probe-time equality
// verification.
func retroRun(t *testing.T, q *query.Graph, strategy Strategy, edges []stream.Edge, window int64, collide bool) ([]string, Stats) {
	t.Helper()
	eng, err := New(q, Config{Strategy: strategy, Window: window, Stats: selectivity.NewCollector()})
	if err != nil {
		t.Fatal(err)
	}
	eng.retroCollide = collide
	var sigs []string
	for i, se := range edges {
		for _, m := range eng.ProcessEdge(se) {
			sigs = append(sigs, fmt.Sprintf("%d|%s", i, retroMatchSig(m)))
		}
	}
	return sigs, eng.Stats()
}

// retroMatchSig canonicalizes a match by its bound data-edge IDs (the
// identity the retro dedup is defined over).
func retroMatchSig(m iso.Match) string {
	s := ""
	for qe, eid := range m.EdgeOf {
		s += fmt.Sprintf("%d:%d;", qe, eid)
	}
	return s
}

// TestDrainRetroForcedCollision is the fixed-scenario differential for
// the hashed retro seen map: a parallel-edge query whose second leaf is
// enabled for both endpoints at once, so the retrospective drain
// reaches the same embedding from two anchor vertices and must
// suppress exactly one copy — with the real hash and with every
// signature forced onto a single colliding bucket.
func TestDrainRetroForcedCollision(t *testing.T) {
	q := &query.Graph{
		Vertices: []query.Vertex{{Name: "u", Label: query.Wildcard}, {Name: "v", Label: query.Wildcard}},
		Edges:    []query.Edge{{Src: 0, Dst: 1, Type: "A"}, {Src: 0, Dst: 1, Type: "B"}},
	}
	edges := []stream.Edge{
		{Src: "x", SrcLabel: "n", Dst: "y", DstLabel: "n", Type: "B", TS: 1},
		{Src: "x", SrcLabel: "n", Dst: "y", DstLabel: "n", Type: "A", TS: 2},
		{Src: "p", SrcLabel: "n", Dst: "q", DstLabel: "n", Type: "C", TS: 3}, // triggers the drain
	}
	want, wantStats := retroRun(t, q, StrategySingleLazy, edges, 0, false)
	if len(want) != 1 {
		t.Fatalf("scenario produced %d complete matches, want 1", len(want))
	}
	if wantStats.RetroMatches != 1 {
		t.Fatalf("RetroMatches = %d, want exactly 1 (one embedding, two anchors, one suppressed duplicate)",
			wantStats.RetroMatches)
	}
	got, gotStats := retroRun(t, q, StrategySingleLazy, edges, 0, true)
	if len(got) != len(want) || got[0] != want[0] {
		t.Fatalf("forced collision changed matches: got %v want %v", got, want)
	}
	if gotStats.RetroMatches != wantStats.RetroMatches || gotStats.RetroSearches != wantStats.RetroSearches {
		t.Fatalf("forced collision changed retro counters: got %+v want %+v", gotStats, wantStats)
	}
}

// TestDrainRetroCollisionRandomized drives randomized hub-heavy streams
// through both lazy strategies with and without forced collisions: the
// per-edge match sequences and the retro counters must be identical,
// and the global match multiset must equal the eager (StrategySingle)
// engine's — the strategy-exactness oracle that needs no reference
// implementation of the dedup itself.
func TestDrainRetroCollisionRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	types := []string{"A", "B", "C"}
	for trial := 0; trial < 6; trial++ {
		var edges []stream.Edge
		n := 150 + rng.Intn(150)
		for i := 0; i < n; i++ {
			// A small vertex universe concentrates edges on hubs, so
			// retro drains see the same embedding from several anchors.
			// No self-loops: the generators never emit them (the
			// matcher's contract, like the query language's, assumes
			// distinct endpoints).
			s, d := rng.Intn(8), rng.Intn(8)
			if s == d {
				continue
			}
			edges = append(edges, stream.Edge{
				Src: fmt.Sprintf("h%d", s), SrcLabel: "n",
				Dst: fmt.Sprintf("h%d", d), DstLabel: "n",
				Type: types[rng.Intn(len(types))], TS: int64(i + 1),
			})
		}
		q := query.NewPath(query.Wildcard, "A", "B", "C")
		for _, strategy := range []Strategy{StrategySingleLazy, StrategyPathLazy} {
			want, wantStats := retroRun(t, q, strategy, edges, 0, false)
			got, gotStats := retroRun(t, q, strategy, edges, 0, true)
			if len(got) != len(want) {
				t.Fatalf("trial %d %v: %d matches with collisions, want %d", trial, strategy, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d %v: per-edge sequence diverges at %d:\n got %s\nwant %s",
						trial, strategy, i, got[i], want[i])
				}
			}
			if gotStats.RetroMatches != wantStats.RetroMatches || gotStats.RetroSearches != wantStats.RetroSearches {
				t.Fatalf("trial %d %v: retro counters diverge: got %+v want %+v", trial, strategy, gotStats, wantStats)
			}
			if trial == 0 && wantStats.RetroMatches == 0 {
				t.Fatalf("%v: no retrospective matches at all; differential is vacuous", strategy)
			}
			// Strategy-exactness oracle: complete matches are strategy
			// independent (unwindowed), only their attribution shifts.
			eager, _ := retroRun(t, q, StrategySingle, edges, 0, false)
			lazySet := stripEdgeIndex(want)
			eagerSet := stripEdgeIndex(eager)
			if len(lazySet) != len(eagerSet) {
				t.Fatalf("trial %d %v: lazy found %d matches, eager %d", trial, strategy, len(lazySet), len(eagerSet))
			}
			for i := range eagerSet {
				if lazySet[i] != eagerSet[i] {
					t.Fatalf("trial %d %v: multiset differs at %d: %s vs %s", trial, strategy, i, lazySet[i], eagerSet[i])
				}
			}
		}
	}
}

func stripEdgeIndex(sigs []string) []string {
	out := make([]string, len(sigs))
	for i, s := range sigs {
		for j := 0; j < len(s); j++ {
			if s[j] == '|' {
				out[i] = s[j+1:]
				break
			}
		}
	}
	sort.Strings(out)
	return out
}
