package core

import (
	"fmt"
	"sort"
	"testing"

	"streamgraph/internal/iso"
	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/stream"
)

// specStream builds a deterministic stream where every rareEvery-th
// edge is RARE (the selective first leaf) and the rest are COMMON.
// rareEvery <= 0 yields a pure-COMMON stream, so the lazy gate never
// enables the COMMON leaf at all.
func specStream(n, hosts, rareEvery int) []stream.Edge {
	out := make([]stream.Edge, n)
	for i := range out {
		typ := "COMMON"
		if rareEvery > 0 && i%rareEvery == 0 {
			typ = "RARE"
		}
		out[i] = stream.Edge{
			Src: fmt.Sprintf("h%d", (i*5)%hosts), SrcLabel: "ip",
			Dst: fmt.Sprintf("h%d", (i*11+3)%hosts), DstLabel: "ip",
			Type: typ, TS: int64(i),
		}
	}
	return out
}

func specEngine(t *testing.T, train []stream.Edge, workers int) *Engine {
	t.Helper()
	c := selectivity.NewCollector()
	c.AddAll(train)
	q := query.NewPath("ip", "RARE", "COMMON")
	e, err := New(q, Config{
		Strategy: StrategySingleLazy, Window: 300, EvictEvery: 8,
		Stats: c, BatchWorkers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func specRun(t *testing.T, edges, train []stream.Edge, workers, batch int) ([]string, int64) {
	t.Helper()
	e := specEngine(t, train, workers)
	var sigs []string
	// Resolve bindings to names and timestamps: raw vertex/edge IDs are
	// recycled on eviction, whose exact position differs between the
	// serial and amortized-batch schedules.
	add := func(ms []iso.Match) {
		for _, m := range ms {
			s := ""
			for qv, dv := range m.VertexOf {
				s += fmt.Sprintf("%d=%s;", qv, e.g.VertexName(dv))
			}
			for qe, de := range m.EdgeOf {
				if de == iso.NoEdge {
					continue
				}
				ge, ok := e.g.Edge(de)
				if !ok {
					t.Fatalf("match references dead edge %d", de)
				}
				s += fmt.Sprintf("%d:%s>%s@%d;", qe, e.g.VertexName(ge.Src), e.g.VertexName(ge.Dst), ge.TS)
			}
			sigs = append(sigs, s)
		}
	}
	if batch <= 1 {
		for _, se := range edges {
			add(e.ProcessEdge(se))
		}
	} else {
		for lo := 0; lo < len(edges); lo += batch {
			hi := lo + batch
			if hi > len(edges) {
				hi = len(edges)
			}
			for _, ms := range e.ProcessBatch(edges[lo:hi]) {
				add(ms)
			}
		}
	}
	sort.Strings(sigs)
	return sigs, e.Stats().IsoSteps
}

// TestBatchSpeculationGate pins the two-pass gate estimate on the
// speculative batch path.
//
// Work bound: on a stream whose selective first leaf never matches, the
// serial lazy gate skips the second leaf's search on every edge — so a
// batch run at BatchWorkers > 1 must not perform more matcher work than
// the serial loop. Before the estimate, the batch path speculatively
// searched the gated leaf around every edge, and this assertion fails
// by an order of magnitude.
//
// Exactness: on a mixed stream the first leaf's matches enable the
// second leaf mid-batch, forcing the merge's live fallback for pairs
// the batch-start estimate skipped; the match multiset must still equal
// the serial run's at every batch size.
func TestBatchSpeculationGate(t *testing.T) {
	train := specStream(400, 60, 10)

	// Pure-COMMON stream: gate never opens.
	cold := specStream(1200, 60, 0)
	_, serialSteps := specRun(t, cold, train, 1, 1)
	_, batchSteps := specRun(t, cold, train, 4, 128)
	if batchSteps > serialSteps {
		t.Fatalf("gated batch run performed %d matcher steps, serial %d: speculation searched gated leaves",
			batchSteps, serialSteps)
	}

	// Mixed stream: mid-batch enablement exercises the have-mask live
	// fallback.
	hot := specStream(1200, 60, 7)
	want, _ := specRun(t, hot, train, 1, 1)
	if len(want) == 0 {
		t.Fatal("mixed workload produced no matches; comparison is vacuous")
	}
	for _, batch := range []int{2, 64, 512} {
		got, _ := specRun(t, hot, train, 4, batch)
		if !equalStrings(got, want) {
			t.Fatalf("workers=4 batch=%d multiset differs: %d matches vs %d", batch, len(got), len(want))
		}
	}
}
