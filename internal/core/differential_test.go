package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"streamgraph/internal/datagen"
	"streamgraph/internal/iso"
	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/stream"
)

// The differential net: every strategy — the four selectivity-driven
// decompositions plus the non-incremental VF2 baseline — must report
// the same matches on the same generated workload, edge for edge; and
// the batch ingestion path must reproduce the serial edge-at-a-time
// schedule exactly, for every strategy and several batch sizes.

// diffWorkload is one generated stream plus the queries run against it.
type diffWorkload struct {
	name    string
	edges   []stream.Edge
	queries map[string]*query.Graph
	window  int64
}

func diffWorkloads() []diffWorkload {
	netflow := datagen.Netflow(datagen.NetflowConfig{Seed: 7, Edges: 1200, Hosts: 220})

	treeQ := &query.Graph{
		Vertices: []query.Vertex{
			{Name: "a", Label: "ip"}, {Name: "b", Label: "ip"},
			{Name: "c", Label: "ip"}, {Name: "d", Label: "ip"},
		},
		Edges: []query.Edge{
			{Src: 0, Dst: 1, Type: "TCP"},
			{Src: 1, Dst: 2, Type: "ICMP"},
			{Src: 1, Dst: 3, Type: "UDP"},
		},
	}

	lsbench := datagen.LSBench(datagen.LSBenchConfig{Seed: 11, Edges: 1200, Users: 150})
	socialQ, err := query.Parse(`
		v u user
		v f forum
		v p post
		e u f memberOf
		e u p createsPost
		e p f postedIn
	`)
	if err != nil {
		panic(err)
	}

	return []diffWorkload{
		{
			name:  "netflow",
			edges: netflow,
			queries: map[string]*query.Graph{
				"path2": query.NewPath(query.Wildcard, "GRE", "TCP"),
				"path3": query.NewPath("ip", "UDP", "ICMP", "GRE"),
				"tree3": treeQ,
			},
			window: 150,
		},
		{
			name:  "lsbench",
			edges: lsbench,
			queries: map[string]*query.Graph{
				"social": socialQ,
				"knows2": query.NewPath("user", "knows", "knows"),
			},
			window: 200,
		},
	}
}

// perEdgeSigs canonicalizes per-edge match sets: out[i] is the sorted
// signature list of the matches completed by stream edge i.
func appendEdgeSigs(eng *Engine, out [][]string, ms []iso.Match) [][]string {
	var sigs []string
	for _, m := range ms {
		sigs = append(sigs, signature(eng, m))
	}
	sort.Strings(sigs)
	return append(out, sigs)
}

// runSerialPerEdge streams the workload edge-at-a-time.
func runSerialPerEdge(t *testing.T, q *query.Graph, edges []stream.Edge, s Strategy, window int64, stats *selectivity.Collector) [][]string {
	t.Helper()
	eng, err := New(q, Config{Strategy: s, Window: window, Stats: stats, EvictEvery: 5})
	if err != nil {
		t.Fatalf("%v: New: %v", s, err)
	}
	var out [][]string
	for _, se := range edges {
		out = appendEdgeSigs(eng, out, eng.ProcessEdge(se))
	}
	return out
}

// runBatchPerEdge streams the workload through ProcessBatch in chunks.
func runBatchPerEdge(t *testing.T, q *query.Graph, edges []stream.Edge, s Strategy, window int64, stats *selectivity.Collector, batch, workers int) [][]string {
	t.Helper()
	eng, err := New(q, Config{Strategy: s, Window: window, Stats: stats, EvictEvery: 5, BatchWorkers: workers})
	if err != nil {
		t.Fatalf("%v: New: %v", s, err)
	}
	var out [][]string
	for lo := 0; lo < len(edges); lo += batch {
		hi := lo + batch
		if hi > len(edges) {
			hi = len(edges)
		}
		for _, ms := range eng.ProcessBatch(edges[lo:hi]) {
			out = appendEdgeSigs(eng, out, ms)
		}
	}
	return out
}

func comparePerEdge(t *testing.T, label string, got, want [][]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d edges processed, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !equalStrings(got[i], want[i]) {
			t.Fatalf("%s: edge %d match set differs:\n got %v\nwant %v", label, i, got[i], want[i])
		}
	}
}

// TestDifferentialStrategies streams generated netflow and social
// workloads through Single, SingleLazy, Path, PathLazy and the VF2
// baseline and requires identical per-edge match sets.
func TestDifferentialStrategies(t *testing.T) {
	strategies := []Strategy{StrategySingle, StrategySingleLazy, StrategyPath, StrategyPathLazy, StrategyVF2}
	for _, wl := range diffWorkloads() {
		stats := collect(wl.edges)
		for qname, q := range wl.queries {
			want := runSerialPerEdge(t, q, wl.edges, strategies[0], wl.window, stats)
			total := 0
			for _, sigs := range want {
				total += len(sigs)
			}
			if total == 0 {
				t.Errorf("%s/%s: workload produced no matches; differential is vacuous", wl.name, qname)
			}
			for _, s := range strategies[1:] {
				got := runSerialPerEdge(t, q, wl.edges, s, wl.window, stats)
				comparePerEdge(t, fmt.Sprintf("%s/%s: %v vs %v", wl.name, qname, s, strategies[0]), got, want)
			}
		}
	}
}

// TestBatchMatchesSerial reuses the same harness to require
// ProcessBatch ≡ edge-at-a-time Process for every strategy and several
// batch sizes, with both single- and multi-worker candidate search.
func TestBatchMatchesSerial(t *testing.T) {
	batchSizes := []int{1, 3, 16, 128}
	for _, wl := range diffWorkloads() {
		stats := collect(wl.edges)
		for qname, q := range wl.queries {
			for _, s := range allStrategies() {
				want := runSerialPerEdge(t, q, wl.edges, s, wl.window, stats)
				for _, bs := range batchSizes {
					workers := 4
					if bs == 1 {
						workers = 1
					}
					got := runBatchPerEdge(t, q, wl.edges, s, wl.window, stats, bs, workers)
					comparePerEdge(t, fmt.Sprintf("%s/%s/%v: batch=%d vs serial", wl.name, qname, s, bs), got, want)
				}
			}
		}
	}
}

// TestBatchMatchesSerialRandomized drives the batch path with randomly
// sized batches over a randomly generated stream — the quick-check
// companion to the fixed-size table above.
func TestBatchMatchesSerialRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		gcfg := genConfig{nVerts: 40, nEdges: 400, types: []string{"a", "b", "c"}, queryLen: 3, tree: trial%2 == 1}
		edges := randomStream(rng, gcfg)
		q := randomQuery(rng, gcfg)
		stats := collect(edges)
		for _, s := range []Strategy{StrategySingle, StrategySingleLazy, StrategyPath, StrategyPathLazy} {
			want := runSerialPerEdge(t, q, edges, s, 80, stats)
			eng, err := New(q, Config{Strategy: s, Window: 80, Stats: stats, EvictEvery: 5, BatchWorkers: 3})
			if err != nil {
				t.Fatalf("trial %d: %v: %v", trial, s, err)
			}
			var got [][]string
			for lo := 0; lo < len(edges); {
				hi := lo + 1 + rng.Intn(50)
				if hi > len(edges) {
					hi = len(edges)
				}
				for _, ms := range eng.ProcessBatch(edges[lo:hi]) {
					got = appendEdgeSigs(eng, got, ms)
				}
				lo = hi
			}
			comparePerEdge(t, fmt.Sprintf("trial %d %v random batches", trial, s), got, want)
		}
	}
}
