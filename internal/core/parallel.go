package core

import (
	"io"
	"runtime"

	"streamgraph/internal/graph"
	"streamgraph/internal/iso"
	"streamgraph/internal/query"
	"streamgraph/internal/stream"
)

// ParallelMulti executes many registered continuous queries over one
// shared windowed graph with the per-query searches fanned out across a
// fixed worker pool. Ingestion stays single-writer (one edge enters the
// graph, statistics and eviction run on the caller's goroutine); the
// search phase is read-only on the graph, and every query engine is
// owned by exactly one worker, so its SJ-Tree and lazy bitmap are
// mutated single-threaded. The result is a per-edge (or, with
// ProcessBatch, per-batch) fork/join with deterministic output order
// and match sets identical to the serial MultiEngine (verified by the
// package tests). For parallelism at the candidate level inside a
// single query, see Engine.ProcessBatch.
//
// The paper defers scale-out to the distributed systems it cites; this
// is the shared-memory analogue: queries — not graph partitions — are
// the unit of parallelism, which keeps exact-match semantics trivially
// intact.
type ParallelMulti struct {
	inner   *MultiEngine
	workers []*pworker
	closed  bool
}

type pworker struct {
	names   []string
	engines []*Engine
	in      chan []graph.Edge
	out     chan []pmatch
	done    chan struct{}
}

// pmatch tags a match with the batch-edge index that completed it so
// the fork/join merge can restore deterministic input order.
type pmatch struct {
	query string
	edge  int
	m     iso.Match
}

// NewParallelMulti returns a parallel multi-query engine with the given
// worker count (<= 0 selects GOMAXPROCS). Register queries before
// processing edges; Register and ProcessEdge must not be called
// concurrently.
func NewParallelMulti(cfg MultiConfig, workers int) *ParallelMulti {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &ParallelMulti{inner: NewMulti(cfg)}
	for i := 0; i < workers; i++ {
		w := &pworker{
			in:   make(chan []graph.Edge),
			out:  make(chan []pmatch),
			done: make(chan struct{}),
		}
		go w.run()
		p.workers = append(p.workers, w)
	}
	return p
}

func (w *pworker) run() {
	for des := range w.in {
		var out []pmatch
		for i, eng := range w.engines {
			if len(des) == 1 {
				// Per-edge dispatch: the serial incremental search,
				// with the lazy gate skipping searches outright.
				for _, mt := range eng.processShared(des[0]) {
					out = append(out, pmatch{query: w.names[i], edge: 0, m: mt})
				}
				continue
			}
			// Batch dispatch: candidate searches stay inline (one
			// worker) — across-query fan-out is this pool's axis of
			// parallelism; nesting an intra-query pool per engine
			// would oversubscribe the machine. The engine's arena is
			// safe to recycle here: this worker is the only goroutine
			// touching the engine, and the previous batch's rows were
			// drained into pmatch values before the batch completed.
			eng.arena.begin()
			for ei, ms := range eng.searchBatch(des, 1) {
				for _, mt := range ms {
					out = append(out, pmatch{query: w.names[i], edge: ei, m: mt})
				}
			}
		}
		w.out <- out
	}
	close(w.done)
}

// Register adds a continuous query under a unique name and assigns it
// to the least-loaded worker.
func (p *ParallelMulti) Register(name string, q *query.Graph, cfg Config) error {
	if err := p.inner.Register(name, q, cfg); err != nil {
		return err
	}
	w := p.workers[0]
	for _, cand := range p.workers[1:] {
		if len(cand.engines) < len(w.engines) {
			w = cand
		}
	}
	w.names = append(w.names, name)
	w.engines = append(w.engines, p.inner.QueryEngine(name))
	return nil
}

// Unregister removes a query and its partial-match state.
func (p *ParallelMulti) Unregister(name string) {
	p.inner.Unregister(name)
	for _, w := range p.workers {
		for i, n := range w.names {
			if n == name {
				w.names = append(w.names[:i], w.names[i+1:]...)
				w.engines = append(w.engines[:i], w.engines[i+1:]...)
				break
			}
		}
	}
}

// Registered returns the registered query names in registration order.
func (p *ParallelMulti) Registered() []string { return p.inner.Registered() }

// Graph exposes the shared data graph (read-only use).
func (p *ParallelMulti) Graph() *graph.Graph { return p.inner.Graph() }

// QueryEngine returns the per-query engine (for stats inspection).
func (p *ParallelMulti) QueryEngine(name string) *Engine { return p.inner.QueryEngine(name) }

// Stats returns a snapshot of shared counters.
func (p *ParallelMulti) Stats() MultiStats { return p.inner.Stats() }

// ProcessEdge ingests one edge and fans the per-query searches across
// the worker pool, blocking until every query has processed it. Matches
// are returned in query registration order.
func (p *ParallelMulti) ProcessEdge(se stream.Edge) []NamedMatch {
	return p.dispatch([]graph.Edge{p.inner.ingest(se)})
}

// ProcessBatch ingests a whole batch into the shared graph (one
// statistics pass, one amortized eviction) and fans the per-query batch
// searches across the worker pool. Matches are returned edge-major in
// query registration order — byte-identical to a serial ProcessEdge
// loop over the same batch (see Engine.ProcessBatch).
func (p *ParallelMulti) ProcessBatch(ses []stream.Edge) []NamedMatch {
	if len(ses) == 0 {
		return nil
	}
	p.inner.arena.begin()
	return p.dispatch(p.inner.ingestBatch(ses))
}

// dispatch broadcasts the ingested edges to every loaded worker and
// merges the results back in (edge, registration) order.
func (p *ParallelMulti) dispatch(des []graph.Edge) []NamedMatch {
	active := 0
	for _, w := range p.workers {
		if len(w.engines) == 0 {
			continue
		}
		active++
		w.in <- des
	}
	if active == 0 {
		return nil
	}
	type key struct {
		edge  int
		query string
	}
	byKey := make(map[key][]iso.Match)
	for _, w := range p.workers {
		if len(w.engines) == 0 {
			continue
		}
		for _, pm := range <-w.out {
			k := key{edge: pm.edge, query: pm.query}
			byKey[k] = append(byKey[k], pm.m)
		}
	}
	names := p.inner.Registered()
	var out []NamedMatch
	for i := range des {
		for _, name := range names {
			for _, mt := range byKey[key{edge: i, query: name}] {
				out = append(out, NamedMatch{Query: name, Match: mt})
			}
		}
	}
	return out
}

// Run drains a stream source, invoking onMatch (may be nil) for every
// complete match, and returns the total number of matches.
func (p *ParallelMulti) Run(src stream.Source, onMatch func(stream.Edge, NamedMatch)) (int64, error) {
	var total int64
	for {
		se, err := src.Next()
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
		for _, nm := range p.ProcessEdge(se) {
			total++
			if onMatch != nil {
				onMatch(se, nm)
			}
		}
	}
}

// Close shuts the worker pool down. The engine must not be used after
// Close.
func (p *ParallelMulti) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for _, w := range p.workers {
		close(w.in)
		<-w.done
	}
}

// FlushAll flushes every query's deferred lazy work (see
// Engine.FlushPending), returning any produced complete matches. Useful
// before Close when the stream ends.
func (p *ParallelMulti) FlushAll() []NamedMatch {
	var out []NamedMatch
	for _, name := range p.inner.Registered() {
		eng := p.inner.QueryEngine(name)
		for _, m := range eng.FlushPending() {
			out = append(out, NamedMatch{Query: name, Match: m})
		}
	}
	return out
}
