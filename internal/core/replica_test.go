package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"streamgraph/internal/query"
	"streamgraph/internal/stream"
)

// replicaStream is a 4-type stream with consistent vertex labels and
// non-decreasing timestamps (the regime the replica-filter exactness
// argument assumes).
func replicaStream(seed int64, n int) []stream.Edge {
	rng := rand.New(rand.NewSource(seed))
	types := []string{"GRE", "TCP", "UDP", "ICMP"}
	edges := make([]stream.Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, stream.Edge{
			Src: fmt.Sprintf("n%d", rng.Intn(40)), SrcLabel: "ip",
			Dst: fmt.Sprintf("n%d", rng.Intn(40)), DstLabel: "ip",
			Type: types[rng.Intn(len(types))], TS: int64(i + 1),
		})
	}
	return edges
}

func namedSigs(m *MultiEngine, nms []NamedMatch) []string {
	g := m.Graph()
	var sigs []string
	for _, nm := range nms {
		s := nm.Query
		for qe, eid := range nm.Match.EdgeOf {
			de, ok := g.Edge(eid)
			if !ok {
				continue
			}
			s += fmt.Sprintf("|%d:%s>%s@%d", qe, g.VertexName(de.Src), g.VertexName(de.Dst), de.TS)
		}
		sigs = append(sigs, s)
	}
	return sigs
}

// TestReplicaFilterMatchesUnfiltered pins the tentpole's core claim at
// the engine level: a MultiEngine whose replica filter covers its
// queries' edge-type footprints produces exactly the matches of an
// unfiltered engine, edge for edge, on both the serial and the batch
// ingest path — while storing strictly fewer edges.
func TestReplicaFilterMatchesUnfiltered(t *testing.T) {
	edges := replicaStream(7, 1200)
	queries := map[string]*query.Graph{
		"gre-tcp": query.NewPath(query.Wildcard, "GRE", "TCP"),
		"tcp-tcp": query.NewPath("ip", "TCP", "TCP"),
	}
	strategies := map[string]Strategy{"gre-tcp": StrategySingleLazy, "tcp-tcp": StrategyPath}
	footprint := []string{"GRE", "TCP"} // union over both queries; UDP/ICMP excluded

	run := func(filter bool, batch int) ([]string, int64, int) {
		m := NewMulti(MultiConfig{Window: 300, EvictEvery: 7})
		if filter {
			m.SetReplicaFilter(footprint, false)
		}
		for _, name := range []string{"gre-tcp", "tcp-tcp"} {
			if err := m.Register(name, queries[name], Config{Strategy: strategies[name], BatchWorkers: 1}); err != nil {
				t.Fatal(err)
			}
		}
		var sigs []string
		if batch <= 1 {
			for _, se := range edges {
				sigs = append(sigs, namedSigs(m, m.ProcessEdge(se))...)
			}
		} else {
			for lo := 0; lo < len(edges); lo += batch {
				hi := lo + batch
				if hi > len(edges) {
					hi = len(edges)
				}
				for _, group := range m.ProcessBatchGrouped(edges[lo:hi]) {
					sigs = append(sigs, namedSigs(m, group)...)
				}
			}
		}
		return sigs, m.EdgesStored(), m.ReplicaView().NumEdges()
	}

	want, fullStored, _ := run(false, 1)
	if len(want) == 0 {
		t.Fatal("workload produced no matches; differential is vacuous")
	}
	sort.Strings(want)
	for _, batch := range []int{1, 64, 257} {
		got, stored, live := run(true, batch)
		sort.Strings(got)
		if len(got) != len(want) {
			t.Fatalf("batch=%d: filtered produced %d matches, unfiltered %d", batch, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch=%d: match multiset differs at %d:\n got %s\nwant %s", batch, i, got[i], want[i])
			}
		}
		if stored >= fullStored {
			t.Fatalf("batch=%d: filtered replica stored %d edges, full stores %d — no memory win", batch, stored, fullStored)
		}
		if live < 0 {
			t.Fatalf("batch=%d: bad replica view count %d", batch, live)
		}
	}
}

// TestReplicaBackfillAndTrim exercises the register/unregister replica
// maintenance primitives directly: Backfill admits past edges without
// searching them, and TrimReplica drops exactly the edges outside a
// narrowed filter.
func TestReplicaBackfillAndTrim(t *testing.T) {
	m := NewMulti(MultiConfig{Window: 0})
	m.SetReplicaFilter([]string{"TCP"}, false)
	edges := []stream.Edge{
		{Src: "a", SrcLabel: "ip", Dst: "b", DstLabel: "ip", Type: "TCP", TS: 1},
		{Src: "b", SrcLabel: "ip", Dst: "c", DstLabel: "ip", Type: "UDP", TS: 2},
		{Src: "c", SrcLabel: "ip", Dst: "d", DstLabel: "ip", Type: "TCP", TS: 3},
	}
	for _, se := range edges {
		m.ProcessEdge(se)
	}
	if got := m.Graph().NumEdges(); got != 2 {
		t.Fatalf("filtered ingest stored %d edges, want 2 (TCP only)", got)
	}
	// Widen to {TCP, UDP} and backfill the UDP edge the filter dropped.
	m.SetReplicaFilter([]string{"TCP", "UDP"}, false)
	m.Backfill([]stream.Edge{edges[1]})
	if got := m.Graph().NumEdges(); got != 3 {
		t.Fatalf("after backfill %d edges, want 3", got)
	}
	if got := m.EdgesStored(); got != 3 {
		t.Fatalf("EdgesStored = %d, want 3", got)
	}
	// Narrow back to {TCP}: the trim must drop exactly the UDP edge.
	m.SetReplicaFilter([]string{"TCP"}, false)
	if dropped := m.TrimReplica(); dropped != 1 {
		t.Fatalf("TrimReplica dropped %d edges, want 1", dropped)
	}
	if got, want := m.ReplicaView().NumEdges(), m.Graph().NumEdges(); got != want {
		t.Fatalf("post-trim view count %d != live count %d", got, want)
	}
}

// TestBackfillReachableByLazyRepair pins why backfill is a correctness
// requirement, not an optimization: a lazily-registered query's
// retrospective repair can reach edges that arrived before its
// registration, so a replica that widened its footprint without
// backfilling those edges would silently lose matches an unfiltered
// engine reports.
func TestBackfillReachableByLazyRepair(t *testing.T) {
	old := stream.Edge{Src: "c", SrcLabel: "ip", Dst: "d", DstLabel: "ip", Type: "TCP", TS: 1}
	after := []stream.Edge{
		{Src: "b", SrcLabel: "ip", Dst: "c", DstLabel: "ip", Type: "UDP", TS: 2},
		{Src: "x", SrcLabel: "ip", Dst: "y", DstLabel: "ip", Type: "UDP", TS: 3}, // triggers the retro drain
	}
	q := query.NewPath(query.Wildcard, "UDP", "TCP")

	run := func(backfill bool) int {
		m := NewMulti(MultiConfig{})
		m.SetReplicaFilter([]string{"UDP"}, false)
		m.ProcessEdge(old) // dropped: TCP is outside the current footprint
		m.SetReplicaFilter([]string{"UDP", "TCP"}, false)
		if backfill {
			m.Backfill([]stream.Edge{old})
		}
		if err := m.Register("q", q, Config{Strategy: StrategySingleLazy}); err != nil {
			t.Fatal(err)
		}
		found := 0
		for _, se := range after {
			found += len(m.ProcessEdge(se))
		}
		return found
	}

	// Unfiltered reference: same registration point, full graph.
	ref := NewMulti(MultiConfig{})
	ref.ProcessEdge(old)
	if err := ref.Register("q", q, Config{Strategy: StrategySingleLazy}); err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, se := range after {
		want += len(ref.ProcessEdge(se))
	}
	if want == 0 {
		t.Fatal("reference found no match; scenario is vacuous")
	}
	if got := run(true); got != want {
		t.Fatalf("backfilled replica found %d matches, unfiltered reference %d", got, want)
	}
	if got := run(false); got == want {
		t.Fatal("replica without backfill matched the reference — scenario does not exercise backfill")
	}
}
