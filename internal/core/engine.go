// Package core implements the continuous pattern detection engine of
// Choudhury et al. (EDBT 2015): the dynamic graph search loop
// (Algorithm 1), the Lazy Search extension (Algorithm 3) with its
// per-vertex leaf bitmap and retrospective neighborhood repair, the four
// selectivity-driven strategies of Section 6.4 (Single, SingleLazy,
// Path, PathLazy), the non-incremental VF2 baseline, and an anchored
// incremental baseline (IncIso, after Fan et al. as used in the
// authors' prior work).
//
// The engine owns the windowed data graph: feed it stream edges with
// ProcessEdge and it returns the incremental set of complete matches
// f(Gd, Gq, E_{k+1}) = M(G^{k+1}_d) − M(G^k_d). ProcessBatch (batch.go)
// ingests many edges at once — one amortized eviction pass, candidate
// searches fanned out over a worker pool — with per-edge results
// identical to the serial loop.
package core

import (
	"encoding/json"
	"fmt"
	"io"

	"streamgraph/internal/decompose"
	"streamgraph/internal/graph"
	"streamgraph/internal/iso"
	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/sjtree"
	"streamgraph/internal/stream"
)

// Strategy selects how the engine decomposes and executes the query.
type Strategy int

const (
	// StrategySingle is the 1-edge decomposition tracking all matching
	// subgraphs ("Single" in the paper's plots).
	StrategySingle Strategy = iota
	// StrategySingleLazy is the 1-edge decomposition with Lazy Search.
	StrategySingleLazy
	// StrategyPath is the 2-edge path decomposition tracking everything.
	StrategyPath
	// StrategyPathLazy is the 2-edge path decomposition with Lazy Search.
	StrategyPathLazy
	// StrategyVF2 is the non-incremental baseline: a full VF2-style
	// subgraph isomorphism search over the current graph on every edge.
	StrategyVF2
	// StrategyIncIso is the incremental baseline without an SJ-Tree:
	// a full-query search anchored at every new edge.
	StrategyIncIso
	// StrategyAuto picks SingleLazy or PathLazy by the Relative
	// Selectivity rule of Section 6.5.
	StrategyAuto
)

var strategyNames = map[Strategy]string{
	StrategySingle:     "Single",
	StrategySingleLazy: "SingleLazy",
	StrategyPath:       "Path",
	StrategyPathLazy:   "PathLazy",
	StrategyVF2:        "VF2",
	StrategyIncIso:     "IncIso",
	StrategyAuto:       "Auto",
}

// String renders the strategy's canonical name (as used in the
// paper's plots and the CLI flags).
func (s Strategy) String() string {
	if n, ok := strategyNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// MarshalJSON renders the strategy by name (the String form), so
// machine-readable benchmark output stays stable if the enum is ever
// reordered.
func (s Strategy) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Lazy reports whether the strategy uses the Lazy Search bitmap.
func (s Strategy) Lazy() bool {
	return s == StrategySingleLazy || s == StrategyPathLazy || s == StrategyAuto
}

// Config parameterizes an Engine.
type Config struct {
	// Strategy to execute. StrategyAuto requires Stats.
	Strategy Strategy

	// Window is tW: only matches with τ(g) < Window are reported, and
	// edges/partial matches older than the window are evicted. Zero
	// disables windowing.
	Window int64

	// Stats supplies the subgraph distributional statistics used to
	// order the decomposition. Required for all decomposition-based
	// strategies; ignored by VF2 and IncIso.
	Stats *selectivity.Collector

	// Leaves overrides the computed decomposition (each entry lists
	// query edge indices). Used by ablation experiments and by engines
	// restored from an ASCII SJ-Tree file.
	Leaves [][]int

	// MaxMatchesPerSearch caps the matches produced by one leaf/anchor
	// search (a safety valve for pathological queries; 0 = unlimited).
	MaxMatchesPerSearch int

	// MaxWorkPerEdge bounds the SJ-Tree work (join attempts + stored
	// inserts) a single edge arrival may trigger; excess cascades are
	// load-shed and counted in Stats.Tree.Shed. Unlabeled queries over
	// hub vertices can produce combinatorial intermediate products that
	// no strategy tracks at stream rate; real deployments shed. 0
	// disables the bound (exact semantics).
	MaxWorkPerEdge int64

	// MaxStepsPerSearch bounds the backtracking steps of one anchored
	// subgraph-isomorphism attempt (0 = unlimited; load shedding when
	// exceeded).
	MaxStepsPerSearch int64

	// EvictEvery controls how often (in processed edges) window
	// eviction sweeps the graph and the match tables. Default 256.
	EvictEvery int

	// BatchWorkers is the worker-pool size ProcessBatch fans the
	// read-only candidate searches out over (<= 0 selects GOMAXPROCS).
	// Ingestion and the SJ-Tree merge always stay single-threaded.
	BatchWorkers int

	// Adaptive, when non-nil, enables adaptive query processing: the
	// engine keeps collecting statistics from the live stream and
	// periodically re-decomposes the query, migrating partial matches
	// into the new SJ-Tree (the paper's Section 7 follow-up problem).
	// Ignored by the VF2 and IncIso baselines.
	Adaptive *AdaptiveConfig
}

// Stats aggregates the engine's work counters.
type Stats struct {
	EdgesProcessed  int64
	LeafSearches    int64 // anchored subgraph-iso invocations
	LeafMatches     int64 // matches produced by anchored searches
	RetroSearches   int64 // retrospective (enable-time) searches
	RetroMatches    int64
	CompleteMatches int64
	IsoSteps        int64 // recursive extension steps inside the matcher
	GraphEvicted    int64
	Tree            sjtree.Stats
}

// Engine runs one continuous query over one data stream.
type Engine struct {
	q   *query.Graph
	cfg Config

	g       *graph.Graph
	matcher *iso.Matcher
	tree    *sjtree.Tree // nil for VF2 / IncIso

	lazy     bool
	bits     map[graph.VertexID]uint64
	allEdges []int

	pending    [][]retroItem // per-leaf retrospective work for the current edge
	curEdge    graph.EdgeID
	curResults []iso.Match

	// Retro-drain dedup state, reused across drains so the hot path
	// stays allocation-free: retroSeen maps a 64-bit signature hash to
	// offsets into retroBuf, where the actual edge bindings of already
	// produced matches are recorded for probe-time verification (a
	// collision can never suppress a distinct match — the same verified
	// scheme as the SJ-Tree's dedup tables). retroCollide is the test
	// hook that forces every signature to hash equal.
	retroSeen    map[uint64][]int32
	retroBuf     []graph.EdgeID
	retroCollide bool

	// Streaming-merge state for the live leaf search: mergeEmit is the
	// persistent candidate callback (allocated once, not per search),
	// parameterized through the cur* fields below.
	mergeEmit  func(iso.Match) bool
	curLeaf    int
	curRequire bool // gate candidates on touching an enabled vertex
	curFound   int  // candidates emitted by the current leaf search

	chosenKind decompose.Kind
	relSel     float64

	adaptive *adaptiveState
	budget   sjtree.WorkBudget

	// arena backs the batch path's scratch and result slices, recycled
	// per batch generation (see batchArena).
	arena batchArena

	// external marks an engine whose graph ingestion and eviction are
	// managed by a MultiEngine.
	external bool

	sinceEvict int
	stats      Stats

	// batchSteps accumulates the extension steps performed by the
	// throwaway per-worker matchers of ProcessBatch, which Stats folds
	// into IsoSteps alongside the owned matcher's counter.
	batchSteps int64
}

type retroItem struct {
	v graph.VertexID
}

// New builds an engine for query q.
func New(q *query.Graph, cfg Config) (*Engine, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if cfg.EvictEvery <= 0 {
		cfg.EvictEvery = 256
	}
	e := &Engine{
		q:   q,
		cfg: cfg,
		g:   graph.New(),
	}
	e.matcher = e.newMatcher()
	e.mergeEmit = func(m iso.Match) bool {
		e.curFound++
		e.stats.LeafMatches++
		if !e.curRequire || e.touchesEnabled(m, e.curLeaf) {
			e.insert(e.curLeaf, e.matcher.Retain(m))
		}
		return e.cfg.MaxMatchesPerSearch <= 0 || e.curFound < e.cfg.MaxMatchesPerSearch
	}
	for i := range q.Edges {
		e.allEdges = append(e.allEdges, i)
	}

	switch cfg.Strategy {
	case StrategyVF2, StrategyIncIso:
		return e, nil
	}

	leaves := cfg.Leaves
	var err error
	if leaves == nil {
		if cfg.Stats == nil {
			return nil, fmt.Errorf("core: strategy %v requires Config.Stats for decomposition", cfg.Strategy)
		}
		switch cfg.Strategy {
		case StrategySingle, StrategySingleLazy:
			leaves, err = decompose.SingleDecompose(q, cfg.Stats)
			e.chosenKind = decompose.Single
		case StrategyPath, StrategyPathLazy:
			leaves, _, err = decompose.PathDecompose(q, cfg.Stats)
			e.chosenKind = decompose.Path
		case StrategyAuto:
			leaves, e.chosenKind, e.relSel, err = decompose.Auto(q, cfg.Stats)
		default:
			return nil, fmt.Errorf("core: unknown strategy %v", cfg.Strategy)
		}
		if err != nil {
			return nil, err
		}
	}
	if len(leaves) > 64 {
		return nil, fmt.Errorf("core: decomposition has %d leaves; the lazy bitmap supports at most 64", len(leaves))
	}
	e.tree, err = sjtree.Build(q, leaves, cfg.Window)
	if err != nil {
		return nil, err
	}
	// The merge-path matcher shares the tree's match pool so candidate
	// clones reuse the arrays of evicted partial matches. Only this
	// single-threaded matcher gets the pool; the throwaway matchers of
	// the batch worker fan-out must not share it (see newMatcher).
	e.matcher.Pool = e.tree.Pool()
	e.lazy = cfg.Strategy.Lazy()
	e.tree.Dedup = e.lazy
	if e.lazy {
		e.bits = make(map[graph.VertexID]uint64)
		e.pending = make([][]retroItem, len(leaves))
	}
	if cfg.Adaptive != nil {
		ac := *cfg.Adaptive
		if ac.RecomputeEvery <= 0 {
			ac.RecomputeEvery = 10000
		}
		e.adaptive = &adaptiveState{cfg: ac, collector: selectivity.NewCollector()}
	}
	return e, nil
}

// newMatcher builds a matcher over the engine's current graph with the
// engine's search limits. ProcessBatch creates one per search worker so
// the read-only candidate searches can run concurrently; because those
// run on concurrent goroutines, newMatcher never wires the tree's
// single-owner match pool — the engine's own matcher gets it
// explicitly where it is (re)bound.
func (e *Engine) newMatcher() *iso.Matcher {
	m := iso.NewMatcher(e.g, e.q)
	m.Window = e.cfg.Window
	m.MaxMatches = e.cfg.MaxMatchesPerSearch
	m.MaxStepsPerSearch = e.cfg.MaxStepsPerSearch
	return m
}

// Graph exposes the engine's windowed data graph (read-only use).
func (e *Engine) Graph() *graph.Graph { return e.g }

// Query returns the engine's query graph.
func (e *Engine) Query() *query.Graph { return e.q }

// Tree exposes the SJ-Tree (nil for the VF2/IncIso baselines).
func (e *Engine) Tree() *sjtree.Tree { return e.tree }

// ChosenKind reports the decomposition kind in effect (meaningful for
// decomposition-based strategies).
func (e *Engine) ChosenKind() decompose.Kind { return e.chosenKind }

// RelativeSelectivity reports ξ computed by StrategyAuto (zero
// otherwise).
func (e *Engine) RelativeSelectivity() float64 { return e.relSel }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.IsoSteps = e.matcher.Calls() + e.batchSteps
	if e.tree != nil {
		s.Tree = e.tree.Stats()
	}
	return s
}

// ProcessEdge folds one stream edge into the graph and returns the new
// complete matches it produces. The returned matches reference the
// engine's query via binding arrays; see Explain for a readable form.
func (e *Engine) ProcessEdge(se stream.Edge) []iso.Match {
	de := ingestOne(e.g, se)
	e.maybeEvict()
	if e.adaptive != nil {
		e.observeAdaptive(se)
	}
	return e.processShared(de)
}

// processShared runs the per-edge incremental search assuming the edge
// is already present in the graph (the MultiEngine ingestion path).
func (e *Engine) processShared(de graph.Edge) []iso.Match {
	e.stats.EdgesProcessed++
	e.curResults = e.curResults[:0]
	e.curEdge = de.ID
	if e.tree != nil && e.cfg.MaxWorkPerEdge > 0 {
		e.budget.Remaining = e.cfg.MaxWorkPerEdge
		e.tree.Budget = &e.budget
	}

	switch e.cfg.Strategy {
	case StrategyVF2:
		e.processVF2(de)
	case StrategyIncIso:
		e.processIncIso(de)
	default:
		e.processTree(de)
	}
	out := make([]iso.Match, len(e.curResults))
	copy(out, e.curResults)
	e.stats.CompleteMatches += int64(len(out))
	return out
}

// Run drains a stream source through the engine, invoking onMatch for
// every complete match (may be nil). It returns the total number of
// matches.
func (e *Engine) Run(src stream.Source, onMatch func(stream.Edge, iso.Match)) (int64, error) {
	var total int64
	for {
		se, err := src.Next()
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
		for _, m := range e.ProcessEdge(se) {
			total++
			if onMatch != nil {
				onMatch(se, m)
			}
		}
	}
}

// processVF2 is the non-incremental baseline: re-run full subgraph
// isomorphism over the current windowed graph and report the matches
// that include the newest edge (exactly the incremental delta).
func (e *Engine) processVF2(de graph.Edge) {
	for _, m := range e.matcher.FindAll(e.allEdges) {
		if m.HasEdge(de.ID) {
			e.curResults = append(e.curResults, m)
		}
	}
}

// processIncIso anchors a full-query search at the new edge.
func (e *Engine) processIncIso(de graph.Edge) {
	e.curResults = append(e.curResults, e.matcher.FindAroundEdge(e.allEdges, de)...)
}

// processTree is Algorithms 1 and 3: search the SJ-Tree leaves around
// the new edge, lazily when enabled, and cascade joins.
//
// One refinement over the paper's Algorithm 3: for a multi-edge leaf,
// a match containing the new edge can touch an enabled vertex that is
// not an endpoint of the new edge itself (the 2-edge leaf's third
// vertex). Algorithm 3's DISABLED(u) AND DISABLED(v) skip would miss
// such matches forever — the retrospective repair cannot find them
// because the edge had not arrived when the vertex was enabled. When
// both endpoints are disabled we therefore still run the (cheap,
// type-gated) anchored search but keep only matches that touch an
// enabled vertex; everything else remains lazy.
func (e *Engine) processTree(de graph.Edge) {
	e.mergeTree(de, nil, nil)
}

// mergeTree folds one edge's leaf matches into the SJ-Tree, applying
// the lazy gating and cascading joins. cands, when non-nil, supplies
// the anchored matches per leaf — precomputed by the batch pipeline's
// worker pool; when nil, each non-skipped leaf is searched live on the
// engine's own matcher (the serial path, and the batch path's
// single-worker mode where the lazy gate runs before searching).
//
// have, when non-nil, marks which leaves of cands were actually
// precomputed: the batch pipeline's two-pass gate estimate skips
// speculative searches for leaves it can prove the serial gate would
// skip, and a leaf enabled mid-batch (after the estimate ran) falls
// back to a live MaxSeq-bounded search here — exactness never depends
// on the estimate being right, only the amount of speculative work
// does.
//
// The live path streams candidates straight out of the matcher: each
// emitted match is gated first and only the survivors are cloned (from
// the tree's pool) for insertion, so a gated-off candidate costs no
// allocation at all. Insert order, the MaxMatchesPerSearch cap and all
// counters match the collect-then-insert form exactly — the search is
// read-only on the graph, so interleaving tree mutation with the
// enumeration cannot change which candidates are found.
func (e *Engine) mergeTree(de graph.Edge, cands [][]iso.Match, have []bool) {
	for l := 0; l < e.tree.NumLeaves(); l++ {
		requireTouch := false
		if e.lazy {
			e.drainRetro(l, de.ID)
			if l > 0 && !e.enabled(de.Src, l) && !e.enabled(de.Dst, l) {
				if len(e.tree.LeafEdges(l)) == 1 {
					// A 1-edge leaf match has no vertices beyond u, v.
					continue
				}
				requireTouch = true
			}
		}
		e.stats.LeafSearches++
		if cands != nil && (have == nil || have[l]) {
			matches := cands[l]
			e.stats.LeafMatches += int64(len(matches))
			for _, m := range matches {
				if requireTouch && !e.touchesEnabled(m, l) {
					// The candidate is ours alone (a fresh clone);
					// recycle its arrays instead of leaving them to the
					// GC.
					e.tree.Release(m)
					continue
				}
				e.insert(l, m)
			}
			continue
		}
		e.curLeaf, e.curRequire, e.curFound = l, requireTouch, 0
		e.matcher.FindAroundEdgeFunc(e.tree.LeafEdges(l), de, e.mergeEmit)
	}
}

// touchesEnabled reports whether any bound vertex of m has leaf l's
// search enabled.
func (e *Engine) touchesEnabled(m iso.Match, l int) bool {
	for _, dv := range m.VertexOf {
		if dv != graph.NoVertex && e.enabled(dv, l) {
			return true
		}
	}
	return false
}

func (e *Engine) insert(leaf int, m iso.Match) {
	e.tree.Insert(leaf, m,
		func(cm iso.Match) { e.curResults = append(e.curResults, cm) },
		e.onStored)
}

// onStored implements ENABLE-SEARCH-SIBLING: a match stored at a node
// with a NextLeaf enables that leaf's search for all of the match's
// vertices, queueing a retrospective search per newly enabled vertex.
func (e *Engine) onStored(n *sjtree.Node, m iso.Match) {
	if !e.lazy || n.NextLeaf < 0 {
		return
	}
	bit := uint64(1) << uint(n.NextLeaf)
	for _, dv := range m.VertexOf {
		if dv == graph.NoVertex {
			continue
		}
		if e.bits[dv]&bit != 0 {
			continue
		}
		e.bits[dv] |= bit
		e.pending[n.NextLeaf] = append(e.pending[n.NextLeaf], retroItem{v: dv})
	}
}

// drainRetro performs the queued retrospective searches for leaf l:
// matches formed purely from edges that arrived before the current one
// (the current edge's matches are found by the anchored pass). Batch
// deduplication suppresses the same embedding reached from two anchor
// vertices; the tree's Dedup flag suppresses cross-event repeats.
func (e *Engine) drainRetro(l int, exclude graph.EdgeID) {
	items := e.pending[l]
	if len(items) == 0 {
		return
	}
	e.pending[l] = nil
	sub := e.tree.LeafEdges(l)
	if e.retroSeen == nil {
		e.retroSeen = make(map[uint64][]int32)
	} else {
		clear(e.retroSeen)
	}
	e.retroBuf = e.retroBuf[:0]
	for _, it := range items {
		e.stats.RetroSearches++
		for _, m := range e.matcher.FindAroundVertex(sub, it.v) {
			if m.HasEdge(exclude) {
				e.tree.Release(m)
				continue
			}
			if e.retroSeenBefore(m, sub) {
				e.tree.Release(m)
				continue
			}
			e.stats.RetroMatches++
			e.insert(l, m)
		}
	}
}

// retroSeenBefore reports whether a match with the same edge bindings
// was already produced in the current drain, recording the bindings
// otherwise. The signature is a 64-bit hash of the bound edge IDs
// (iso's shared FNV-1a scheme, the same one behind the SJ-Tree's
// hashed match tables); a hash hit is only a duplicate after the
// recorded bindings compare equal, so a collision costs one
// comparison, never a lost match.
func (e *Engine) retroSeenBefore(m iso.Match, sub []int) bool {
	h := iso.HashStart()
	if !e.retroCollide {
		for _, qe := range sub {
			h = iso.HashMix32(h, uint32(m.EdgeOf[qe]))
		}
	}
	for _, off := range e.retroSeen[h] {
		rec := e.retroBuf[off : int(off)+len(sub)]
		equal := true
		for k, qe := range sub {
			if rec[k] != m.EdgeOf[qe] {
				equal = false
				break
			}
		}
		if equal {
			return true
		}
	}
	off := int32(len(e.retroBuf))
	for _, qe := range sub {
		e.retroBuf = append(e.retroBuf, m.EdgeOf[qe])
	}
	e.retroSeen[h] = append(e.retroSeen[h], off)
	return false
}

func (e *Engine) enabled(v graph.VertexID, leaf int) bool {
	return e.bits[v]&(uint64(1)<<uint(leaf)) != 0
}

// maybeEvict performs periodic window maintenance: graph edges, stored
// partial matches and bitmap entries for isolated vertices.
func (e *Engine) maybeEvict() { e.advanceEvict(1) }

// advanceEvict advances the eviction clock by n processed edges and
// sweeps when the cadence fires. ProcessBatch calls it once per batch
// BEFORE ingesting, so its cutoff (computed from the pre-batch LastTS)
// is never ahead of any cutoff the serial per-edge schedule would have
// used mid-batch: with non-decreasing timestamps evicting late only
// costs memory — the window checks in the matcher and the SJ-Tree
// joins keep the match sets identical — while evicting early could
// drop edges a serial run would still match. When a timestamp
// regresses by more than the window across an eviction boundary, the
// serial schedule has already lost the old edge to eviction slack (an
// EvictEvery artifact; see graph.ExpireBefore) and the batch path may
// report strictly more window-valid matches — a superset, never fewer
// (pinned by TestBatchOutOfOrderSuperset).
func (e *Engine) advanceEvict(n int) {
	if e.cfg.Window <= 0 {
		return
	}
	e.sinceEvict += n
	if e.sinceEvict < e.cfg.EvictEvery {
		return
	}
	e.sinceEvict = 0
	cutoff := e.g.LastTS() - e.cfg.Window + 1
	e.stats.GraphEvicted += int64(e.g.ExpireBefore(cutoff))
	if e.tree != nil {
		e.tree.ExpireBefore(cutoff)
	}
	if e.lazy {
		for v := range e.bits {
			if e.g.Degree(v) == 0 {
				delete(e.bits, v)
			}
		}
	}
}

// Explain renders a match as human-readable bindings.
func (e *Engine) Explain(m iso.Match) string {
	s := ""
	for qv, dv := range m.VertexOf {
		if dv == graph.NoVertex {
			continue
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%s", e.q.Vertices[qv].Name, e.g.VertexName(dv))
	}
	return s
}
