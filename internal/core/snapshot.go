package core

import (
	"streamgraph/internal/graph"
	"streamgraph/internal/iso"
)

// This file exposes the engine-state surface the persist package needs
// to checkpoint a continuous query and resume it in a new process:
// configuration, the lazy bitmap, deferred retrospective work, and
// counter restoration. The windowed graph itself is reachable through
// Graph(), and the SJ-Tree's stored matches through Tree().EachStored.

// ConfigSnapshot returns the engine's effective configuration with the
// decomposition pinned (Leaves filled in), so that an engine rebuilt
// from it decomposes identically without needing the original
// statistics.
func (e *Engine) ConfigSnapshot() Config {
	cfg := e.cfg
	cfg.Stats = nil
	cfg.Adaptive = nil
	if e.tree != nil {
		cfg.Leaves = e.tree.LeafSets()
	}
	return cfg
}

// FlushPending runs every queued retrospective search now instead of on
// the next edge arrival, returning any complete matches the deferred
// work produces. Snapshots call it so that pending work does not need
// to be serialized; running it early is semantically equivalent because
// the searches only see edges that have already arrived.
func (e *Engine) FlushPending() []iso.Match {
	if !e.lazy || e.tree == nil {
		return nil
	}
	e.curResults = e.curResults[:0]
	for l := 0; l < e.tree.NumLeaves(); l++ {
		e.drainRetro(l, iso.NoEdge)
	}
	out := make([]iso.Match, len(e.curResults))
	copy(out, e.curResults)
	e.stats.CompleteMatches += int64(len(out))
	return out
}

// ForceEvict runs window eviction immediately (graph edges, stored
// matches, dead bitmap entries), regardless of the EvictEvery cadence.
// It returns the eviction cutoff applied (0 when windowing is off).
func (e *Engine) ForceEvict() int64 {
	if e.cfg.Window <= 0 {
		return 0
	}
	cutoff := e.g.LastTS() - e.cfg.Window + 1
	e.stats.GraphEvicted += int64(e.g.ExpireBefore(cutoff))
	if e.tree != nil {
		e.tree.ExpireBefore(cutoff)
	}
	if e.lazy {
		for v := range e.bits {
			if e.g.Degree(v) == 0 {
				delete(e.bits, v)
			}
		}
	}
	e.sinceEvict = 0
	return cutoff
}

// LazyBits returns a copy of the per-vertex leaf-enablement bitmap
// (empty for non-lazy strategies).
func (e *Engine) LazyBits() map[graph.VertexID]uint64 {
	out := make(map[graph.VertexID]uint64, len(e.bits))
	for v, b := range e.bits {
		out[v] = b
	}
	return out
}

// RestoreLazyBits replaces the lazy bitmap (no-op for non-lazy
// strategies). Restored bits do not queue retrospective searches: the
// snapshot was taken after FlushPending, so that work is already done.
func (e *Engine) RestoreLazyBits(bits map[graph.VertexID]uint64) {
	if !e.lazy {
		return
	}
	e.bits = make(map[graph.VertexID]uint64, len(bits))
	for v, b := range bits {
		e.bits[v] = b
	}
}

// RestoreStats overwrites the engine's counters (tree counters restore
// through the tree itself and are ignored here).
func (e *Engine) RestoreStats(s Stats) {
	tree := e.stats.Tree
	e.stats = s
	e.stats.Tree = tree
}
