package core

import (
	"streamgraph/internal/decompose"
	"streamgraph/internal/graph"
	"streamgraph/internal/iso"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/sjtree"
	"streamgraph/internal/stream"
)

// AdaptiveConfig enables adaptive query processing (the paper's
// Section 7 follow-up problem): the engine keeps collecting subgraph
// statistics from the live stream and periodically re-runs the
// selectivity-driven decomposition; when the chosen decomposition
// changes, existing partial matches are migrated into the new SJ-Tree.
type AdaptiveConfig struct {
	// RecomputeEvery re-evaluates the decomposition after this many
	// processed edges (default 10000).
	RecomputeEvery int
}

// AdaptiveStats counts adaptive re-decomposition activity.
type AdaptiveStats struct {
	Recomputes int64 // decomposition re-evaluations
	Migrations int64 // tree rebuilds
	Migrated   int64 // partial matches carried into the new tree
	Dropped    int64 // partials with no representable projection
}

type adaptiveState struct {
	cfg        AdaptiveConfig
	collector  *selectivity.Collector
	sinceCheck int
	stats      AdaptiveStats
}

// AdaptiveStats returns the adaptive-processing counters (zero when
// adaptivity is disabled).
func (e *Engine) AdaptiveStats() AdaptiveStats {
	if e.adaptive == nil {
		return AdaptiveStats{}
	}
	return e.adaptive.stats
}

// observeAdaptive feeds the per-period statistics and periodically
// re-decomposes. The collector covers only the most recent period so a
// selectivity-order drift in the live stream is visible immediately
// instead of being washed out by the cumulative history; it is reset
// after every re-evaluation. Called once per processed edge.
func (e *Engine) observeAdaptive(se stream.Edge) {
	a := e.adaptive
	a.collector.Add(se)
	a.sinceCheck++
	if a.sinceCheck >= a.cfg.RecomputeEvery {
		e.recomputeAdaptive()
	}
}

// recomputeAdaptive re-evaluates the decomposition against the current
// period's statistics and migrates the SJ-Tree when it changed. Called
// by observeAdaptive on the serial path and by processBatchAdaptive at
// the equivalent position inside a batch.
func (e *Engine) recomputeAdaptive() {
	a := e.adaptive
	a.sinceCheck = 0
	a.stats.Recomputes++

	leaves, kind, xi, err := decompose.Auto(e.q, a.collector)
	a.collector = selectivity.NewCollector()
	if err != nil || len(leaves) > 64 {
		return
	}
	if sameLeaves(leaves, e.tree.LeafSets()) {
		return
	}
	if err := e.migrate(leaves); err != nil {
		return
	}
	e.chosenKind = kind
	e.relSel = xi
	a.stats.Migrations++
}

// migrate rebuilds the SJ-Tree with the new decomposition and carries
// over every stored partial match that projects onto a new leaf (the
// larger stored matches are projected, so information joined in the old
// tree survives structural regrouping). Matches whose binding cannot be
// expressed as new-leaf projections are dropped and rediscovered by the
// normal lazy repair; complete-match emission is suppressed during
// migration because any match assemblable from the old tables was
// already reported.
func (e *Engine) migrate(newLeaves [][]int) error {
	old := e.tree
	nt, err := sjtree.Build(e.q, newLeaves, e.cfg.Window)
	if err != nil {
		return err
	}
	// Dedup is required during migration: the same projection can be
	// derived from several old nodes.
	nt.Dedup = true

	e.tree = nt
	e.matcher.Pool = nt.Pool()
	if e.lazy {
		e.bits = make(map[graph.VertexID]uint64)
		e.pending = make([][]retroItem, len(newLeaves))
	}

	suppressEmit := func(iso.Match) {}
	a := e.adaptive
	old.EachStored(func(n *sjtree.Node, m iso.Match) bool {
		projectedAny := false
		for leafPos, leaf := range newLeaves {
			pm, ok := e.project(m, leaf)
			if !ok {
				continue
			}
			projectedAny = true
			nt.Insert(leafPos, pm, suppressEmit, e.onStored)
		}
		if projectedAny {
			a.stats.Migrated++
		} else {
			a.stats.Dropped++
		}
		return true
	})
	// Outside migration, dedup is only needed for lazy strategies; a
	// non-lazy engine would never read or clean the migration's
	// suppression counts, so drop them.
	nt.Dedup = e.lazy
	if !nt.Dedup {
		nt.DropDedupState()
	}
	return nil
}

// project restricts a stored match to the given leaf's query edges,
// recomputing the timespan from the live data edges. It fails when any
// required binding is missing or its edge has been evicted.
func (e *Engine) project(m iso.Match, leaf []int) (iso.Match, bool) {
	pm := iso.NewMatch(e.q)
	for _, qe := range leaf {
		eid := m.EdgeOf[qe]
		if eid == iso.NoEdge {
			return iso.Match{}, false
		}
		de, ok := e.g.Edge(eid)
		if !ok {
			return iso.Match{}, false
		}
		pm.EdgeOf[qe] = eid
		pm.VertexOf[e.q.Edges[qe].Src] = de.Src
		pm.VertexOf[e.q.Edges[qe].Dst] = de.Dst
		if de.TS < pm.MinTS {
			pm.MinTS = de.TS
		}
		if de.TS > pm.MaxTS {
			pm.MaxTS = de.TS
		}
	}
	return pm, true
}

func sameLeaves(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
