// Batch ingestion: admit a whole slice of stream edges into the
// windowed graph with one amortized eviction/statistics pass, fan the
// read-only candidate searches out over a worker pool, then merge the
// per-edge results back single-threaded in input order.
//
// The paper's engine (Algorithm 1) is strictly edge-at-a-time; batching
// is the standard lever once exact incremental semantics are in place
// (StreamWorks, Choudhury et al. 2013; Zervakis et al. 2019). Two
// mechanisms keep the batch path's match sets identical to the serial
// loop:
//
//   - Visibility. Every graph edge carries an arrival sequence number,
//     and each candidate search is bounded by its anchor edge's Seq
//     (iso.Matcher.MaxSeq), so a search anchored at batch edge i sees
//     exactly the graph a serial run would have seen when i arrived,
//     even though later batch edges are already present.
//   - Ordering. All SJ-Tree mutation — lazy gating, retrospective
//     repair, joins — happens in a sequential merge phase that consumes
//     the precomputed candidates in input order. The parallel phase is
//     read-only on the graph and engine.
//
// Equivalence is exact when timestamps are non-decreasing and no
// load-shedding cap (MaxMatchesPerSearch, MaxWorkPerEdge,
// MaxStepsPerSearch) is active. With a cap, both paths are best-effort
// and may shed different work because candidate enumeration order
// differs. With out-of-order timestamps, serial results are already
// eviction-cadence-dependent (the EvictEvery slack of
// graph.ExpireBefore); there the batch path's lazier eviction reports
// a window-valid superset of the serial matches, never fewer — see
// Engine.advanceEvict.
package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"streamgraph/internal/graph"
	"streamgraph/internal/iso"
	"streamgraph/internal/stream"
)

// ProcessBatch folds a whole batch of stream edges into the graph and
// returns the new complete matches per input edge: out[i] holds exactly
// the matches a serial ProcessEdge(batch[i]) call would have returned
// at that point in the stream. Eviction and adaptive statistics are
// amortized to one pass per batch; the candidate searches fan out over
// Config.BatchWorkers workers.
//
// The returned slices are arena-backed: they stay valid until the next
// ProcessBatch call on this engine and no longer (see batchArena).
func (e *Engine) ProcessBatch(batch []stream.Edge) [][]iso.Match {
	if len(batch) == 0 {
		return nil
	}
	e.arena.begin()
	if e.adaptive != nil {
		return e.processBatchAdaptive(batch)
	}
	return e.processSubBatch(batch)
}

// processSubBatch is the core batch step: amortized eviction, ingest,
// fanned-out search.
func (e *Engine) processSubBatch(batch []stream.Edge) [][]iso.Match {
	e.advanceEvict(len(batch))
	des := e.ingestBatch(batch)
	return e.searchBatch(des, e.batchWorkers())
}

// processBatchAdaptive runs the batch pipeline for adaptive engines by
// splitting the batch at re-decomposition boundaries: within a run no
// recompute can fire, so candidates precomputed against the current
// leaves stay valid. The serial schedule observes each edge into the
// period collector and fires the recompute on the edge that fills the
// period, after that edge is ingested but before it is searched — the
// split reproduces exactly that: edges before the trigger are searched
// under the old tree, the trigger edge and everything after it under
// the new one, with the trigger edge itself already observed.
func (e *Engine) processBatchAdaptive(batch []stream.Edge) [][]iso.Match {
	a := e.adaptive
	out := make([][]iso.Match, 0, len(batch))
	for len(batch) > 0 {
		until := a.cfg.RecomputeEvery - a.sinceCheck // edges until a recompute fires
		if until > len(batch) {
			a.collector.AddAll(batch)
			a.sinceCheck += len(batch)
			return append(out, e.processSubBatch(batch)...)
		}
		head := batch[:until]
		batch = batch[until:]
		a.collector.AddAll(head)
		if len(head) > 1 {
			out = append(out, e.processSubBatch(head[:len(head)-1])...)
		}
		e.recomputeAdaptive()
		out = append(out, e.processSubBatch(head[len(head)-1:])...)
	}
	return out
}

// ingestOne admits one stream edge into g, interning names, labels and
// the type, and returns the materialized edge. Every ingestion path —
// serial and batch, single- and multi-query — funnels through here so
// admission semantics cannot diverge.
func ingestOne(g *graph.Graph, se stream.Edge) graph.Edge {
	src := g.EnsureVertex(se.Src, se.SrcLabel)
	dst := g.EnsureVertex(se.Dst, se.DstLabel)
	eid := g.AddEdge(src, dst, graph.TypeID(g.Types().Intern(se.Type)), se.TS)
	de, _ := g.Edge(eid)
	return de
}

// ingestBatch admits the batch into the engine's own graph (single
// writer, no locking) and returns the materialized edges in input
// order.
func (e *Engine) ingestBatch(batch []stream.Edge) []graph.Edge {
	des := e.arena.edgeBuf(len(batch))
	for i, se := range batch {
		des[i] = ingestOne(e.g, se)
	}
	return des
}

func (e *Engine) batchWorkers() int {
	if e.cfg.BatchWorkers > 0 {
		return e.cfg.BatchWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// runSearchTasks executes n independent read-only searches across the
// worker pool and returns their results indexed by task, so the output
// is deterministic regardless of scheduling. Each worker owns a private
// matcher; with one worker (or one task) everything runs inline on the
// engine's own matcher.
func (e *Engine) runSearchTasks(n, workers int, fn func(m *iso.Matcher, task int) []iso.Match) [][]iso.Match {
	res := e.arena.rowBuf(n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		saved := e.matcher.MaxSeq
		for t := 0; t < n; t++ {
			res[t] = fn(e.matcher, t)
		}
		e.matcher.MaxSeq = saved
		return res
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			m := e.newMatcher()
			defer func() { atomic.AddInt64(&e.batchSteps, m.Calls()) }()
			for {
				t := int(next.Add(1)) - 1
				if t >= n {
					return
				}
				res[t] = fn(m, t)
			}
		}()
	}
	wg.Wait()
	return res
}

// searchBatch runs the incremental search for a batch of edges already
// present in the graph and returns the per-edge complete matches. The
// candidate searches (read-only) run on the worker pool; tree mutation
// runs single-threaded afterwards, in input order. MultiEngine and
// ParallelMulti call this directly after their shared-graph ingest.
func (e *Engine) searchBatch(des []graph.Edge, workers int) [][]iso.Match {
	out := e.arena.rowBuf(len(des))
	switch e.cfg.Strategy {
	case StrategyVF2:
		cands := e.runSearchTasks(len(des), workers, func(m *iso.Matcher, t int) []iso.Match {
			m.MaxSeq = des[t].Seq
			var res []iso.Match
			for _, mt := range m.FindAll(e.allEdges) {
				if mt.HasEdge(des[t].ID) {
					res = append(res, mt)
				}
			}
			return res
		})
		e.finishBaseline(out, cands)
	case StrategyIncIso:
		cands := e.runSearchTasks(len(des), workers, func(m *iso.Matcher, t int) []iso.Match {
			m.MaxSeq = des[t].Seq
			return m.FindAroundEdge(e.allEdges, des[t])
		})
		e.finishBaseline(out, cands)
	default:
		e.searchBatchTree(des, workers, out)
	}
	return out
}

// finishBaseline adopts per-edge baseline results, updating counters.
func (e *Engine) finishBaseline(out, cands [][]iso.Match) {
	for i, ms := range cands {
		e.stats.EdgesProcessed++
		e.stats.CompleteMatches += int64(len(ms))
		out[i] = ms
	}
}

// searchBatchTree is the decomposition-strategy batch path: precompute
// the anchored leaf matches for every (edge, leaf) pair in parallel,
// then replay the serial per-edge merge (lazy gating, retrospective
// repair, SJ-Tree joins) against the cached candidates. Lazy strategies
// compute candidates speculatively — the merge discards the ones the
// serial gate would never have searched — trading extra parallel search
// work for a mutation phase that never blocks on a search. Speculation
// only pays when it actually runs concurrently, so with a single worker
// the merge searches live instead (MaxSeq-bounded, lazy gate applied
// before searching): on one core a batch is then never slower than the
// serial loop, just amortized.
//
// Speculation is itself gated: a (edge, leaf) pair whose single-edge
// leaf is disabled at BOTH endpoints when the batch starts would be
// skipped outright by the serial gate, so searching it speculatively is
// pure waste — and before this estimate the batch path searched every
// such pair, doing strictly more work than the serial loop it
// parallelizes. Lazy enablement bits only accrete during a batch
// (eviction clears them strictly before ingest), so a pair skipped by
// the batch-start estimate is either still disabled at merge time
// (serial gate skips it too) or was enabled mid-batch, in which case
// the merge detects the missing precompute via the have mask and runs
// the search live at the exact MaxSeq the candidate would have had.
// Multi-edge leaves are always searched: their matches can touch an
// enabled vertex beyond the new edge's endpoints (see processTree).
func (e *Engine) searchBatchTree(des []graph.Edge, workers int, out [][]iso.Match) {
	nl := e.tree.NumLeaves()
	speculate := workers > 1 && len(des) > 1
	var cands [][]iso.Match
	var have []bool
	if speculate && e.lazy {
		have = e.arena.flagBuf(len(des) * nl)
		tasks := e.arena.intBuf(len(have))
		for i, de := range des {
			for l := 0; l < nl; l++ {
				if l > 0 && len(e.tree.LeafEdges(l)) == 1 &&
					!e.enabled(de.Src, l) && !e.enabled(de.Dst, l) {
					continue
				}
				have[i*nl+l] = true
				tasks = append(tasks, i*nl+l)
			}
		}
		cands = e.arena.rowBuf(len(des) * nl)
		res := e.runSearchTasks(len(tasks), workers, func(m *iso.Matcher, t int) []iso.Match {
			i, l := tasks[t]/nl, tasks[t]%nl
			m.MaxSeq = des[i].Seq
			return m.FindAroundEdge(e.tree.LeafEdges(l), des[i])
		})
		for t, slot := range tasks {
			cands[slot] = res[t]
		}
	} else if speculate {
		cands = e.runSearchTasks(len(des)*nl, workers, func(m *iso.Matcher, t int) []iso.Match {
			i, l := t/nl, t%nl
			m.MaxSeq = des[i].Seq
			return m.FindAroundEdge(e.tree.LeafEdges(l), des[i])
		})
	}
	for i, de := range des {
		e.stats.EdgesProcessed++
		e.curResults = e.curResults[:0]
		e.curEdge = de.ID
		// Bound every search the merge issues on the engine's own
		// matcher — live leaf searches and retrospective repair alike —
		// to this edge's point in time.
		e.matcher.MaxSeq = de.Seq
		if e.cfg.MaxWorkPerEdge > 0 {
			e.budget.Remaining = e.cfg.MaxWorkPerEdge
			e.tree.Budget = &e.budget
		}
		if speculate {
			var hv []bool
			if have != nil {
				hv = have[i*nl : (i+1)*nl]
			}
			e.mergeTree(de, cands[i*nl:(i+1)*nl], hv)
		} else {
			e.mergeTree(de, nil, nil)
		}
		out[i] = e.arena.matches(e.curResults)
		e.stats.CompleteMatches += int64(len(out[i]))
	}
	e.matcher.MaxSeq = 0
}

// ProcessBatch ingests a batch into the shared graph — one statistics
// pass, one amortized eviction — and runs every registered query's
// batch search over it. Matches are returned edge-major: all matches
// completed by batch edge i (in query registration order) precede those
// of edge i+1, exactly the order a serial ProcessEdge loop reports.
func (m *MultiEngine) ProcessBatch(ses []stream.Edge) []NamedMatch {
	var out []NamedMatch
	for _, named := range m.ProcessBatchGrouped(ses) {
		out = append(out, named...)
	}
	return out
}

// ProcessBatchGrouped is ProcessBatch with the results grouped by input
// edge: out[i] holds the matches batch edge i completed, in query
// registration order. The sharded runtime uses the grouping to tag each
// match with the arrival sequence of its completing edge — which is why
// the result stays aligned with the input slice even under a replica
// filter: filtered-out edges keep their slot and simply complete
// nothing.
//
// The returned slices are arena-backed: they stay valid until the next
// batch call on this engine and no longer (see batchArena).
func (m *MultiEngine) ProcessBatchGrouped(ses []stream.Edge) [][]NamedMatch {
	if len(ses) == 0 {
		return nil
	}
	m.arena.begin()
	kept := ses
	var keptIdx []int // nil when the filter admits the whole batch
	if !m.filter.Universal() {
		// Scan before copying: a batch the filter fully admits — the
		// common case for a shard whose footprint covers the stream's
		// hot types — must not allocate on the ingest path.
		rejects := false
		for _, se := range ses {
			if !m.admits(se) {
				rejects = true
				break
			}
		}
		if rejects {
			kept = nil
			for i, se := range ses {
				if m.admits(se) {
					kept = append(kept, se)
					keptIdx = append(keptIdx, i)
				}
			}
		}
	}
	out := m.arena.namedBuf(len(ses))
	if len(kept) == 0 {
		return out
	}
	des := m.ingestBatch(kept)
	if cap(m.pq) < len(m.order) {
		m.pq = make([][][]iso.Match, len(m.order))
	}
	perQuery := m.pq[:len(m.order)]
	for qi, name := range m.order {
		eng := m.queries[name]
		eng.arena.begin()
		perQuery[qi] = eng.searchBatch(des, eng.batchWorkers())
	}
	for i := range des {
		pos := i
		if keptIdx != nil {
			pos = keptIdx[i]
		}
		for qi, name := range m.order {
			for _, mt := range perQuery[qi][i] {
				out[pos] = append(out[pos], NamedMatch{Query: name, Match: mt})
			}
		}
	}
	return out
}

// ingestBatch admits a batch into the shared graph with one statistics
// pass and one amortized eviction (run up front so the cutoff never
// gets ahead of the serial schedule's), returning the materialized
// edges in input order.
func (m *MultiEngine) ingestBatch(ses []stream.Edge) []graph.Edge {
	m.advanceEvict(len(ses))
	m.stats.AddAll(ses)
	m.edgesSeen += int64(len(ses))
	m.stored += int64(len(ses))
	des := m.arena.edgeBuf(len(ses))
	for i, se := range ses {
		des[i] = ingestOne(m.g, se)
	}
	return des
}
