package core

import (
	"fmt"
	"testing"

	"streamgraph/internal/query"
	"streamgraph/internal/stream"
)

func TestMultiEngineTwoQueries(t *testing.T) {
	m := NewMulti(MultiConfig{Window: 1000})
	qa := query.NewPath(query.Wildcard, "rdp", "ftp")
	qb := query.NewPath(query.Wildcard, "syn")

	// Warm the shared statistics so decomposition has data.
	for i, tp := range []string{"rdp", "ftp", "syn", "http", "http"} {
		m.Statistics().Add(edge(fmt.Sprintf("w%d", i), fmt.Sprintf("w%d", i+100), tp, int64(i+1)))
	}
	if err := m.Register("lateral", qa, Config{Strategy: StrategySingleLazy}); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("flood", qb, Config{Strategy: StrategySingle}); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("lateral", qa, Config{Strategy: StrategySingle}); err == nil {
		t.Fatalf("duplicate registration accepted")
	}
	if got := m.Registered(); len(got) != 2 || got[0] != "lateral" {
		t.Fatalf("Registered = %v", got)
	}

	edges := []stream.Edge{
		edge("a", "b", "rdp", 10),
		edge("b", "c", "ftp", 11),
		edge("x", "y", "syn", 12),
	}
	byQuery := map[string]int{}
	for _, se := range edges {
		for _, nm := range m.ProcessEdge(se) {
			byQuery[nm.Query]++
		}
	}
	if byQuery["lateral"] != 1 {
		t.Errorf("lateral matches = %d, want 1", byQuery["lateral"])
	}
	if byQuery["flood"] != 1 {
		t.Errorf("flood matches = %d, want 1", byQuery["flood"])
	}
	st := m.Stats()
	if st.EdgesProcessed != 3 || st.Queries != 2 {
		t.Errorf("stats = %+v", st)
	}
	if m.Graph().NumEdges() != 3 {
		t.Errorf("shared graph edges = %d", m.Graph().NumEdges())
	}
}

func TestMultiEngineMatchesSingleEngines(t *testing.T) {
	// Each query through the MultiEngine reports exactly the matches a
	// standalone engine reports on the same stream.
	edges := []stream.Edge{
		edge("a", "b", "x", 1),
		edge("b", "c", "y", 2),
		edge("c", "d", "x", 3),
		edge("d", "e", "y", 4),
		edge("a", "e", "z", 5),
	}
	stats := collect(edges)
	q1 := query.NewPath(query.Wildcard, "x", "y")
	q2 := query.NewPath(query.Wildcard, "z")

	solo1 := runStrategy(t, q1, edges, StrategyPathLazy, 0, stats)
	solo2 := runStrategy(t, q2, edges, StrategySingle, 0, stats)

	m := NewMulti(MultiConfig{})
	if err := m.Register("p", q1, Config{Strategy: StrategyPathLazy, Stats: stats}); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("z", q2, Config{Strategy: StrategySingle, Stats: stats}); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, se := range edges {
		for _, nm := range m.ProcessEdge(se) {
			counts[nm.Query]++
		}
	}
	if counts["p"] != len(solo1) {
		t.Errorf("multi p = %d, solo = %d", counts["p"], len(solo1))
	}
	if counts["z"] != len(solo2) {
		t.Errorf("multi z = %d, solo = %d", counts["z"], len(solo2))
	}
}

func TestMultiEngineUnregister(t *testing.T) {
	m := NewMulti(MultiConfig{})
	q := query.NewPath(query.Wildcard, "t")
	stats := collect([]stream.Edge{edge("a", "b", "t", 1)})
	if err := m.Register("q", q, Config{Strategy: StrategySingle, Stats: stats}); err != nil {
		t.Fatal(err)
	}
	m.Unregister("q")
	m.Unregister("missing") // no-op
	if got := m.ProcessEdge(edge("a", "b", "t", 2)); len(got) != 0 {
		t.Fatalf("unregistered query still matching: %v", got)
	}
	if len(m.Registered()) != 0 {
		t.Fatalf("Registered = %v", m.Registered())
	}
}

func TestMultiEngineLateRegistration(t *testing.T) {
	// Plain registration starts from the registration point: a pattern
	// whose prefix predates it is missed by tree strategies.
	m := NewMulti(MultiConfig{Window: 1000})
	m.ProcessEdge(edge("a", "b", "x", 1)) // before registration
	q := query.NewPath(query.Wildcard, "x", "y")
	if err := m.Register("late", q, Config{Strategy: StrategySingle}); err != nil {
		t.Fatal(err)
	}
	if got := m.ProcessEdge(edge("b", "c", "y", 2)); len(got) != 0 {
		t.Fatalf("plain Register should not see pre-registration prefixes, got %d", len(got))
	}

	// Backfill replays the live graph: the same scenario now matches.
	m2 := NewMulti(MultiConfig{Window: 1000})
	m2.ProcessEdge(edge("a", "b", "x", 1))
	initial, err := m2.RegisterWithBackfill("late", q, Config{Strategy: StrategySingle})
	if err != nil {
		t.Fatal(err)
	}
	if len(initial) != 0 {
		t.Fatalf("no complete match exists yet, initial = %d", len(initial))
	}
	if got := m2.ProcessEdge(edge("b", "c", "y", 2)); len(got) != 1 {
		t.Fatalf("backfilled query found %d matches, want 1", len(got))
	}

	// Backfill also reports matches already complete in the graph.
	m3 := NewMulti(MultiConfig{Window: 1000})
	m3.ProcessEdge(edge("a", "b", "x", 1))
	m3.ProcessEdge(edge("b", "c", "y", 2))
	initial, err = m3.RegisterWithBackfill("late", q, Config{Strategy: StrategySingle})
	if err != nil {
		t.Fatal(err)
	}
	if len(initial) != 1 {
		t.Fatalf("backfill found %d complete matches, want 1", len(initial))
	}
}

func TestMultiEngineEviction(t *testing.T) {
	m := NewMulti(MultiConfig{Window: 10, EvictEvery: 1})
	q := query.NewPath(query.Wildcard, "t", "t")
	stats := collect([]stream.Edge{edge("a", "b", "t", 1), edge("b", "c", "t", 2)})
	if err := m.Register("q", q, Config{Strategy: StrategySingleLazy, Stats: stats}); err != nil {
		t.Fatal(err)
	}
	for ts := int64(1); ts <= 200; ts++ {
		m.ProcessEdge(edge(fmt.Sprintf("v%d", ts), fmt.Sprintf("v%d", ts+1), "t", ts))
	}
	if n := m.Graph().NumEdges(); n > 15 {
		t.Errorf("shared graph holds %d edges with window 10", n)
	}
	if st := m.Stats(); st.PartialMatches > 30 {
		t.Errorf("partials = %d with window 10", st.PartialMatches)
	}
	if tops := m.TopQueriesByStored(); len(tops) != 1 || tops[0] != "q" {
		t.Errorf("TopQueriesByStored = %v", tops)
	}
}
