package core

import "streamgraph/internal/graph"

// Live-checkpoint accessors. persist.SaveMulti serializes a running
// MultiEngine WITHOUT flushing deferred lazy work or forcing eviction
// (both would change when matches are attributed relative to the
// stream, breaking the restored engine's byte-for-byte equivalence
// with an uninterrupted run). That requires exposing exactly the
// state a flush would have consumed: the queued retrospective work
// per leaf, and the shared eviction clock.

// PendingRetro returns the queued retrospective (lazy) search work:
// for each leaf, the vertices whose enable-time neighborhood repair
// has not run yet. Nil for non-lazy strategies.
func (e *Engine) PendingRetro() [][]graph.VertexID {
	if !e.lazy {
		return nil
	}
	out := make([][]graph.VertexID, len(e.pending))
	for i, items := range e.pending {
		if len(items) == 0 {
			continue
		}
		vs := make([]graph.VertexID, len(items))
		for j, it := range items {
			vs[j] = it.v
		}
		out[i] = vs
	}
	return out
}

// RestorePendingRetro replaces the queued retrospective work (the
// counterpart of PendingRetro on a freshly restored engine). The
// restored queue drains at the next processed edge, exactly where the
// checkpointed engine would have drained it.
func (e *Engine) RestorePendingRetro(perLeaf [][]graph.VertexID) {
	if !e.lazy {
		return
	}
	for i, vs := range perLeaf {
		if i >= len(e.pending) || len(vs) == 0 {
			continue
		}
		items := make([]retroItem, len(vs))
		for j, v := range vs {
			items[j] = retroItem{v: v}
		}
		e.pending[i] = items
	}
}

// WindowSize reports the shared window tW.
func (m *MultiEngine) WindowSize() int64 { return m.window }

// EvictCadence reports the eviction cadence in processed edges.
func (m *MultiEngine) EvictCadence() int { return m.evictEvery }

// EvictClock reports the shared eviction/ingest clock: edges since
// the last eviction sweep, edges processed, and edges admitted into
// the graph (the EdgesStored gauge).
func (m *MultiEngine) EvictClock() (sinceEvict int, edgesSeen, stored int64) {
	return m.sinceEvict, m.edgesSeen, m.stored
}

// RestoreEvictClock replaces the shared eviction/ingest clock so a
// restored engine's eviction sweeps fire at exactly the stream
// positions the checkpointed engine's would have.
func (m *MultiEngine) RestoreEvictClock(sinceEvict int, edgesSeen, stored int64) {
	m.sinceEvict = sinceEvict
	m.edgesSeen = edgesSeen
	m.stored = stored
}
