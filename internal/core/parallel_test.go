package core

import (
	"fmt"
	"testing"

	"streamgraph/internal/datagen"
	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/stream"
)

func parallelTestQueries(t *testing.T) map[string]*query.Graph {
	t.Helper()
	out := map[string]*query.Graph{}
	for name, text := range map[string]string{
		"exfil":  "e a b TCP\ne b c UDP",
		"tunnel": "e a b GRE\ne b c TCP",
		"probe":  "e a b ICMP\ne b c ICMP\ne c d TCP",
		"chain":  "e a b ESP\ne b c TCP",
	} {
		q, err := query.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = q
	}
	return out
}

func nmSig(m *MultiEngine, nm NamedMatch) string {
	g := m.Graph()
	s := nm.Query + "|"
	for qe, de := range nm.Match.EdgeOf {
		e, ok := g.Edge(de)
		if !ok {
			continue
		}
		s += fmt.Sprintf("%d:%s>%s@%d;", qe, g.VertexName(e.Src), g.VertexName(e.Dst), e.TS)
	}
	return s
}

func pmSig(p *ParallelMulti, nm NamedMatch) string {
	g := p.Graph()
	s := nm.Query + "|"
	for qe, de := range nm.Match.EdgeOf {
		e, ok := g.Edge(de)
		if !ok {
			continue
		}
		s += fmt.Sprintf("%d:%s>%s@%d;", qe, g.VertexName(e.Src), g.VertexName(e.Dst), e.TS)
	}
	return s
}

func TestParallelMatchesSerialMulti(t *testing.T) {
	edges := datagen.Netflow(datagen.NetflowConfig{Edges: 3000, Hosts: 80, Seed: 13})
	c := selectivity.NewCollector()
	c.AddAll(edges)
	queries := parallelTestQueries(t)

	for _, strat := range []Strategy{StrategySingleLazy, StrategyPathLazy} {
		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%v/w%d", strat, workers), func(t *testing.T) {
				serial := NewMulti(MultiConfig{Window: 600, EvictEvery: 16})
				par := NewParallelMulti(MultiConfig{Window: 600, EvictEvery: 16}, workers)
				defer par.Close()
				for name, q := range queries {
					if err := serial.Register(name, q, Config{Strategy: strat, Stats: c}); err != nil {
						t.Fatal(err)
					}
					if err := par.Register(name, q, Config{Strategy: strat, Stats: c}); err != nil {
						t.Fatal(err)
					}
				}
				want := map[string]bool{}
				got := map[string]bool{}
				for _, e := range edges {
					for _, nm := range serial.ProcessEdge(e) {
						want[nmSig(serial, nm)] = true
					}
					for _, nm := range par.ProcessEdge(e) {
						got[pmSig(par, nm)] = true
					}
				}
				if len(want) == 0 {
					t.Fatal("test stream produced no matches; weak test")
				}
				if len(got) != len(want) {
					t.Fatalf("parallel found %d matches, serial %d", len(got), len(want))
				}
				for s := range want {
					if !got[s] {
						t.Fatalf("parallel missing match %q", s)
					}
				}
			})
		}
	}
}

func TestParallelDeterministicOrder(t *testing.T) {
	edges := datagen.Netflow(datagen.NetflowConfig{Edges: 500, Hosts: 30, Seed: 7})
	c := selectivity.NewCollector()
	c.AddAll(edges)
	q, _ := query.Parse("e a b TCP\ne b c UDP")
	run := func() []string {
		par := NewParallelMulti(MultiConfig{}, 4)
		defer par.Close()
		for _, name := range []string{"q1", "q2", "q3"} {
			if err := par.Register(name, q, Config{Strategy: StrategySingleLazy, Stats: c}); err != nil {
				t.Fatal(err)
			}
		}
		var order []string
		for _, e := range edges {
			for _, nm := range par.ProcessEdge(e) {
				order = append(order, pmSig(par, nm))
			}
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output order differs at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestParallelRegisterUnregister(t *testing.T) {
	par := NewParallelMulti(MultiConfig{}, 2)
	defer par.Close()
	c := selectivity.NewCollector()
	c.AddAll(datagen.Netflow(datagen.NetflowConfig{Edges: 200, Hosts: 20, Seed: 2}))
	q, _ := query.Parse("e a b TCP")
	if err := par.Register("one", q, Config{Strategy: StrategySingle, Stats: c}); err != nil {
		t.Fatal(err)
	}
	if err := par.Register("one", q, Config{Strategy: StrategySingle, Stats: c}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := par.Register("two", q, Config{Strategy: StrategySingle, Stats: c}); err != nil {
		t.Fatal(err)
	}
	par.Unregister("one")
	if got := par.Registered(); len(got) != 1 || got[0] != "two" {
		t.Fatalf("Registered = %v", got)
	}
	// Processing after unregister only reports the remaining query.
	out := par.ProcessEdge(stream.Edge{Src: "x", Dst: "y", Type: "TCP", TS: 1})
	for _, nm := range out {
		if nm.Query != "two" {
			t.Fatalf("match from unregistered query %q", nm.Query)
		}
	}
	if st := par.Stats(); st.Queries != 1 {
		t.Fatalf("Stats.Queries = %d, want 1", st.Queries)
	}
}

func TestParallelNoQueries(t *testing.T) {
	par := NewParallelMulti(MultiConfig{}, 3)
	defer par.Close()
	if out := par.ProcessEdge(stream.Edge{Src: "a", Dst: "b", Type: "TCP", TS: 1}); out != nil {
		t.Fatalf("no queries registered but got %d matches", len(out))
	}
}

func TestParallelRunAndFlush(t *testing.T) {
	edges := datagen.Netflow(datagen.NetflowConfig{Edges: 800, Hosts: 40, Seed: 3})
	c := selectivity.NewCollector()
	c.AddAll(edges)
	q, _ := query.Parse("e a b TCP\ne b c UDP")

	serial := NewMulti(MultiConfig{})
	if err := serial.Register("q", q, Config{Strategy: StrategyPathLazy, Stats: c}); err != nil {
		t.Fatal(err)
	}
	wantTotal := int64(0)
	for _, e := range edges {
		wantTotal += int64(len(serial.ProcessEdge(e)))
	}

	par := NewParallelMulti(MultiConfig{}, 2)
	defer par.Close()
	if err := par.Register("q", q, Config{Strategy: StrategyPathLazy, Stats: c}); err != nil {
		t.Fatal(err)
	}
	total, err := par.Run(stream.NewSliceSource(edges), nil)
	if err != nil {
		t.Fatal(err)
	}
	total += int64(len(par.FlushAll()))
	if total != wantTotal {
		t.Fatalf("parallel Run found %d matches, serial %d", total, wantTotal)
	}
	par.Close() // double Close must be safe
}

func TestParallelCloseIdempotent(t *testing.T) {
	par := NewParallelMulti(MultiConfig{}, 1)
	par.Close()
	par.Close()
}
