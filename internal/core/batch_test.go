package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"streamgraph/internal/datagen"
	"streamgraph/internal/graph"
	"streamgraph/internal/query"
	"streamgraph/internal/stream"
)

func batchTestQueries() map[string]*query.Graph {
	return map[string]*query.Graph{
		"gre-tcp":  query.NewPath(query.Wildcard, "GRE", "TCP"),
		"udp-icmp": query.NewPath("ip", "UDP", "ICMP"),
		"tcp-fan": {
			Vertices: []query.Vertex{
				{Name: "a", Label: "ip"}, {Name: "b", Label: "ip"}, {Name: "c", Label: "ip"},
			},
			Edges: []query.Edge{
				{Src: 0, Dst: 1, Type: "TCP"},
				{Src: 0, Dst: 2, Type: "UDP"},
			},
		},
	}
}

func batchTestStream() []stream.Edge {
	return datagen.Netflow(datagen.NetflowConfig{Seed: 21, Edges: 1500, Hosts: 180})
}

// registerAll registers the test queries under deterministic names.
type registrar interface {
	Register(name string, q *query.Graph, cfg Config) error
}

func registerBatchQueries(t *testing.T, r registrar, strategies map[string]Strategy) {
	t.Helper()
	queries := batchTestQueries()
	names := make([]string, 0, len(queries))
	for name := range queries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := r.Register(name, queries[name], Config{Strategy: strategies[name]}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
}

func batchStrategyMix() map[string]Strategy {
	return map[string]Strategy{
		"gre-tcp":  StrategySingleLazy,
		"udp-icmp": StrategyPath,
		"tcp-fan":  StrategySingle,
	}
}

// TestMultiBatchMatchesSerial compares a MultiEngine driven edge-at-a-
// time against one driven with ProcessBatch: the complete (query,
// match) multisets must be identical.
func TestMultiBatchMatchesSerial(t *testing.T) {
	edges := batchTestStream()
	train := edges[:300]

	run := func(batch int) []string {
		m := NewMulti(MultiConfig{Window: 400, EvictEvery: 7})
		m.Statistics().AddAll(train)
		registerBatchQueries(t, m, batchStrategyMix())
		var sigs []string
		if batch <= 1 {
			for _, se := range edges {
				for _, nm := range m.ProcessEdge(se) {
					sigs = append(sigs, nm.Query+"|"+nmSig(m, nm))
				}
			}
		} else {
			for lo := 0; lo < len(edges); lo += batch {
				hi := lo + batch
				if hi > len(edges) {
					hi = len(edges)
				}
				for _, nm := range m.ProcessBatch(edges[lo:hi]) {
					sigs = append(sigs, nm.Query+"|"+nmSig(m, nm))
				}
			}
		}
		sort.Strings(sigs)
		return sigs
	}

	want := run(1)
	if len(want) == 0 {
		t.Fatal("workload produced no matches; comparison is vacuous")
	}
	for _, batch := range []int{2, 64, 512} {
		got := run(batch)
		if !equalStrings(got, want) {
			t.Fatalf("batch=%d multiset differs: %d matches vs %d", batch, len(got), len(want))
		}
	}
}

// TestParallelBatchDeterministic runs ParallelMulti.ProcessBatch (the
// across-query pool) and the intra-query candidate search (BatchWorkers
// > 1) repeatedly under concurrent load and requires byte-identical
// ordered output on every run. go test -race exercises both pools.
func TestParallelBatchDeterministic(t *testing.T) {
	edges := batchTestStream()[:900]
	train := edges[:200]

	runParallel := func(workers, batch int) []string {
		p := NewParallelMulti(MultiConfig{Window: 400, EvictEvery: 7}, workers)
		defer p.Close()
		p.inner.Statistics().AddAll(train)
		registerBatchQueries(t, p, batchStrategyMix())
		var ordered []string
		for lo := 0; lo < len(edges); lo += batch {
			hi := lo + batch
			if hi > len(edges) {
				hi = len(edges)
			}
			for _, nm := range p.ProcessBatch(edges[lo:hi]) {
				ordered = append(ordered, nm.Query+"|"+pmSig(p, nm))
			}
		}
		return ordered
	}

	want := runParallel(3, 128)
	if len(want) == 0 {
		t.Fatal("no matches; determinism check is vacuous")
	}
	for run := 0; run < 3; run++ {
		got := runParallel(3, 128)
		if !equalStrings(got, want) {
			t.Fatalf("run %d: ParallelMulti batch output order differs", run)
		}
	}
	// Worker count must not change the ordered output either.
	if got := runParallel(7, 128); !equalStrings(got, want) {
		t.Fatal("worker count changed ParallelMulti batch output")
	}

	// Intra-query pool: a single engine's ProcessBatch output order is
	// independent of the worker count and stable across runs.
	stats := collect(train)
	q := query.NewPath(query.Wildcard, "UDP", "ICMP", "GRE")
	runEngine := func(workers int) []string {
		eng, err := New(q, Config{Strategy: StrategySingleLazy, Window: 400, Stats: stats, BatchWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var ordered []string
		for lo := 0; lo < len(edges); lo += 256 {
			hi := lo + 256
			if hi > len(edges) {
				hi = len(edges)
			}
			for i, ms := range eng.ProcessBatch(edges[lo:hi]) {
				for _, m := range ms {
					ordered = append(ordered, fmt.Sprintf("%d|%s", lo+i, signature(eng, m)))
				}
			}
		}
		return ordered
	}
	wantE := runEngine(1)
	for _, workers := range []int{2, 8} {
		if got := runEngine(workers); !equalStrings(got, wantE) {
			t.Fatalf("BatchWorkers=%d changed engine batch output order", workers)
		}
	}
}

// TestParallelBatchMatchesSerialMulti cross-checks the parallel batch
// path against the serial MultiEngine edge loop.
func TestParallelBatchMatchesSerialMulti(t *testing.T) {
	edges := batchTestStream()[:900]
	train := edges[:200]

	m := NewMulti(MultiConfig{Window: 400, EvictEvery: 7})
	m.Statistics().AddAll(train)
	registerBatchQueries(t, m, batchStrategyMix())
	var want []string
	for _, se := range edges {
		for _, nm := range m.ProcessEdge(se) {
			want = append(want, nm.Query+"|"+nmSig(m, nm))
		}
	}
	sort.Strings(want)

	p := NewParallelMulti(MultiConfig{Window: 400, EvictEvery: 7}, 4)
	defer p.Close()
	p.inner.Statistics().AddAll(train)
	registerBatchQueries(t, p, batchStrategyMix())
	var got []string
	for lo := 0; lo < len(edges); lo += 100 {
		hi := lo + 100
		if hi > len(edges) {
			hi = len(edges)
		}
		for _, nm := range p.ProcessBatch(edges[lo:hi]) {
			got = append(got, nm.Query+"|"+pmSig(p, nm))
		}
	}
	sort.Strings(got)
	if !equalStrings(got, want) {
		t.Fatalf("parallel batch multiset differs from serial multi: %d vs %d matches", len(got), len(want))
	}
}

// TestBatchOutOfOrderSuperset pins the documented contract for
// out-of-order timestamps: when a timestamp regresses by more than the
// window across a serial eviction boundary, the serial schedule has
// already lost the old edge to eviction slack (an EvictEvery artifact),
// while the batch path's lazier eviction keeps it — so per edge, batch
// matches are a window-valid SUPERSET of serial matches, never fewer.
// With non-decreasing timestamps the differential tests above require
// exact equality instead.
func TestBatchOutOfOrderSuperset(t *testing.T) {
	const window = 10
	q := query.NewPath(query.Wildcard, "a", "b")
	edges := []stream.Edge{
		edge("x", "y", "a", 0),
		edge("p", "q", "c", 100), // unrelated type; advances the eviction clock past the window
		edge("y", "z", "b", 1),   // late arrival: spans [0,1] with the first edge, inside the window
	}
	stats := collect(edges)
	for _, s := range []Strategy{StrategySingle, StrategySingleLazy, StrategyPath, StrategyVF2} {
		serial := runSerialPerEdge(t, q, edges, s, window, stats)
		eng, err := New(q, Config{Strategy: s, Window: window, Stats: stats, EvictEvery: 5})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		var batch [][]string
		for _, ms := range eng.ProcessBatch(edges) {
			batch = appendEdgeSigs(eng, batch, ms)
		}
		var nSerial, nBatch int
		for i := range edges {
			nSerial += len(serial[i])
			nBatch += len(batch[i])
			for _, sig := range serial[i] {
				found := false
				for _, bsig := range batch[i] {
					if sig == bsig {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%v: edge %d: serial match %q missing from batch set %v", s, i, sig, batch[i])
				}
			}
		}
		// The serial run loses the out-of-order pair to eviction slack
		// (runSerialPerEdge uses EvictEvery=5, so the sweep fires only at
		// stream end here and the pair survives — force the slack by
		// rerunning with EvictEvery=1), while the batch run keeps it.
		if nBatch < nSerial {
			t.Fatalf("%v: batch found %d matches, serial %d — batch must be a superset", s, nBatch, nSerial)
		}
	}

	// The sharp version of the scenario: EvictEvery small enough that
	// the serial sweep between the ts=100 and ts=1 arrivals evicts the
	// ts=0 edge. Serial finds nothing; batch finds the window-valid pair.
	serialEng, err := New(q, Config{Strategy: StrategySingle, Window: window, Stats: stats, EvictEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	var nSerial int
	for _, se := range edges {
		nSerial += len(serialEng.ProcessEdge(se))
	}
	batchEng, err := New(q, Config{Strategy: StrategySingle, Window: window, Stats: stats, EvictEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	var nBatch int
	var maxSpan int64
	for _, ms := range batchEng.ProcessBatch(edges) {
		nBatch += len(ms)
		for _, m := range ms {
			if sp := m.Span(); sp > maxSpan {
				maxSpan = sp
			}
		}
	}
	if nSerial != 0 {
		t.Fatalf("serial run found %d matches; eviction slack should have dropped the pair", nSerial)
	}
	if nBatch != 1 {
		t.Fatalf("batch run found %d matches, want the 1 window-valid pair", nBatch)
	}
	if maxSpan >= window {
		t.Fatalf("batch reported an out-of-window match (span %d >= %d)", maxSpan, window)
	}
}

// TestBatchEvictionProperty is the quick-check property for window
// maintenance: after streaming the same random workload, a batch run
// followed by one eviction sweep must leave exactly the live edges a
// serial edge-at-a-time run (plus its own sweep) keeps.
func TestBatchEvictionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	liveSet := func(g *graph.Graph) []string {
		var out []string
		g.EachEdgeArrival(func(de graph.Edge) bool {
			out = append(out, fmt.Sprintf("%s>%s:%d@%d#%d",
				g.VertexName(de.Src), g.VertexName(de.Dst), de.Type, de.TS, de.Seq))
			return true
		})
		sort.Strings(out)
		return out
	}
	for trial := 0; trial < 25; trial++ {
		gcfg := genConfig{
			nVerts: 10 + rng.Intn(30),
			nEdges: 100 + rng.Intn(300),
			types:  []string{"a", "b", "c"},
		}
		edges := randomStream(rng, gcfg)
		window := int64(20 + rng.Intn(100))
		evictEvery := 1 + rng.Intn(10)
		q := query.NewPath(query.Wildcard, "a", "b")
		stats := collect(edges)

		serial, err := New(q, Config{Strategy: StrategySingle, Window: window, Stats: stats, EvictEvery: evictEvery})
		if err != nil {
			t.Fatal(err)
		}
		for _, se := range edges {
			serial.ProcessEdge(se)
		}
		serial.ForceEvict()

		batched, err := New(q, Config{Strategy: StrategySingle, Window: window, Stats: stats, EvictEvery: evictEvery, BatchWorkers: 2})
		if err != nil {
			t.Fatal(err)
		}
		bs := 1 + rng.Intn(64)
		for lo := 0; lo < len(edges); lo += bs {
			hi := lo + bs
			if hi > len(edges) {
				hi = len(edges)
			}
			batched.ProcessBatch(edges[lo:hi])
		}
		batched.ForceEvict()

		got, want := liveSet(batched.Graph()), liveSet(serial.Graph())
		if !equalStrings(got, want) {
			t.Fatalf("trial %d (window=%d evictEvery=%d batch=%d): batch leaves %d edges, serial %d\n got %v\nwant %v",
				trial, window, evictEvery, bs, len(got), len(want), got, want)
		}
	}
}
