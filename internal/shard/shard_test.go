package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"streamgraph/internal/core"
	"streamgraph/internal/datagen"
	"streamgraph/internal/query"
	"streamgraph/internal/stream"
)

func testQueries() map[string]*query.Graph {
	return map[string]*query.Graph{
		"gre-tcp":  query.NewPath(query.Wildcard, "GRE", "TCP"),
		"udp-icmp": query.NewPath("ip", "UDP", "ICMP"),
		"tcp-fan": {
			Vertices: []query.Vertex{
				{Name: "a", Label: "ip"}, {Name: "b", Label: "ip"}, {Name: "c", Label: "ip"},
			},
			Edges: []query.Edge{
				{Src: 0, Dst: 1, Type: "TCP"},
				{Src: 0, Dst: 2, Type: "UDP"},
			},
		},
	}
}

func testStrategies() map[string]core.Strategy {
	return map[string]core.Strategy{
		"gre-tcp":  core.StrategySingleLazy,
		"udp-icmp": core.StrategyPath,
		"tcp-fan":  core.StrategySingle,
	}
}

func testStream(n int) []stream.Edge {
	return datagen.Netflow(datagen.NetflowConfig{Seed: 21, Edges: n, Hosts: 180})
}

func sortedNames(qs map[string]*query.Graph) []string {
	names := make([]string, 0, len(qs))
	for name := range qs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// matchSig canonicalizes a portable match: the query plus the
// (queryEdge, src, dst, ts) of every bound data edge.
func matchSig(m Match) string {
	parts := make([]string, 0, len(m.Edges))
	for _, e := range m.Edges {
		parts = append(parts, fmt.Sprintf("%d:%s>%s@%d", e.QueryEdge, e.Src, e.Dst, e.TS))
	}
	return m.Query + "|" + strings.Join(parts, ";")
}

// serialSig canonicalizes a serial MultiEngine match identically, so
// the two runtimes are comparable string-for-string.
func serialSig(m *core.MultiEngine, nm core.NamedMatch) string {
	g := m.Graph()
	parts := make([]string, 0, len(nm.Match.EdgeOf))
	for qe, eid := range nm.Match.EdgeOf {
		de, ok := g.Edge(eid)
		if !ok {
			continue
		}
		parts = append(parts, fmt.Sprintf("%d:%s>%s@%d", qe, g.VertexName(de.Src), g.VertexName(de.Dst), de.TS))
	}
	return nm.Query + "|" + strings.Join(parts, ";")
}

// runSerial streams the workload through a serial MultiEngine and
// returns the ordered signature list (edge-major, registration order).
func runSerial(t *testing.T, edges []stream.Edge, window int64) []string {
	t.Helper()
	m := core.NewMulti(core.MultiConfig{Window: window, EvictEvery: 7})
	queries, strategies := testQueries(), testStrategies()
	for _, name := range sortedNames(queries) {
		if err := m.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	var sigs []string
	for _, se := range edges {
		for _, nm := range m.ProcessEdge(se) {
			sigs = append(sigs, serialSig(m, nm))
		}
	}
	return sigs
}

// runSharded streams the workload through a Router and returns the
// collected signature list in delivery order.
func runSharded(t *testing.T, edges []stream.Edge, cfg Config, batch int) []string {
	t.Helper()
	r := New(cfg)
	queries, strategies := testQueries(), testStrategies()
	for _, name := range sortedNames(queries) {
		if err := r.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	var mu sync.Mutex
	var sigs []string
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Drain(func(m Match) {
			mu.Lock()
			sigs = append(sigs, matchSig(m))
			mu.Unlock()
		})
	}()
	if batch <= 1 {
		for _, se := range edges {
			r.Ingest(se)
		}
	} else {
		for lo := 0; lo < len(edges); lo += batch {
			hi := lo + batch
			if hi > len(edges) {
				hi = len(edges)
			}
			r.IngestBatch(edges[lo:hi])
		}
	}
	r.Close()
	<-done
	return sigs
}

// TestShardedMatchesSerial is the differential: per-query match
// multisets from the sharded runtime must equal the serial MultiEngine
// on the same stream, for several shard counts and batch sizes.
func TestShardedMatchesSerial(t *testing.T) {
	edges := testStream(1500)
	const window = 400
	want := append([]string(nil), runSerial(t, edges, window)...)
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("workload produced no matches; differential is vacuous")
	}
	for _, shards := range []int{1, 2, 3, 5} {
		for _, batch := range []int{1, 64, 257} {
			got := runSharded(t, edges, Config{Shards: shards, Window: window, EvictEvery: 7}, batch)
			sort.Strings(got)
			if len(got) != len(want) {
				t.Fatalf("shards=%d batch=%d: %d matches, want %d", shards, batch, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shards=%d batch=%d: match multiset differs at %d:\n got %s\nwant %s",
						shards, batch, i, got[i], want[i])
				}
			}
		}
	}
}

// runGroupedReference drives one MultiEngine through
// ProcessBatchGrouped with the given chunking — the exact schedule a
// shard worker runs — and returns the ordered signature list
// (edge-major, registration order).
func runGroupedReference(t *testing.T, edges []stream.Edge, window int64, batch int) []string {
	t.Helper()
	m := core.NewMulti(core.MultiConfig{Window: window, EvictEvery: 7})
	queries, strategies := testQueries(), testStrategies()
	for _, name := range sortedNames(queries) {
		if err := m.Register(name, queries[name], core.Config{Strategy: strategies[name], BatchWorkers: 1}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	var sigs []string
	for lo := 0; lo < len(edges); lo += batch {
		hi := lo + batch
		if hi > len(edges) {
			hi = len(edges)
		}
		for _, named := range m.ProcessBatchGrouped(edges[lo:hi]) {
			for _, nm := range named {
				sigs = append(sigs, serialSig(m, nm))
			}
		}
	}
	return sigs
}

// TestOrderedModeDeterministic requires the in-seq merge to reproduce
// the single-engine batch schedule's output ORDER exactly — the same
// (arrival seq, registration) sequence regardless of shard count — and
// to equal the serial MultiEngine as a multiset (the per-edge order
// within one query is eviction-cadence dependent, so byte order is
// pinned against the batch reference, the schedule shards actually
// run).
func TestOrderedModeDeterministic(t *testing.T) {
	edges := testStream(1200)
	const window = 400
	serial := append([]string(nil), runSerial(t, edges, window)...)
	sort.Strings(serial)
	if len(serial) == 0 {
		t.Fatal("no matches; order check is vacuous")
	}
	for _, batch := range []int{1, 100} {
		want := runGroupedReference(t, edges, window, batch)
		if len(want) == 0 {
			t.Fatal("reference produced no matches")
		}
		asMultiset := append([]string(nil), want...)
		sort.Strings(asMultiset)
		if !equalStrings(asMultiset, serial) {
			t.Fatalf("batch=%d: grouped reference multiset differs from serial", batch)
		}
		for _, shards := range []int{1, 2, 4} {
			got := runSharded(t, edges, Config{Shards: shards, Window: window, EvictEvery: 7, Ordered: true}, batch)
			if len(got) != len(want) {
				t.Fatalf("shards=%d batch=%d: %d matches, want %d", shards, batch, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shards=%d batch=%d: delivery order diverges at %d:\n got %s\nwant %s",
						shards, batch, i, got[i], want[i])
				}
			}
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardedMatchesSerialRandomized drives randomized streams,
// shard counts and batch splits against the serial reference.
func TestShardedMatchesSerialRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 5; trial++ {
		nEdges := 300 + rng.Intn(500)
		var edges []stream.Edge
		types := []string{"GRE", "TCP", "UDP", "ICMP"}
		for i := 0; i < nEdges; i++ {
			edges = append(edges, stream.Edge{
				Src: fmt.Sprintf("n%d", rng.Intn(60)), SrcLabel: "ip",
				Dst: fmt.Sprintf("n%d", rng.Intn(60)), DstLabel: "ip",
				Type: types[rng.Intn(len(types))], TS: int64(i + 1),
			})
		}
		window := int64(50 + rng.Intn(200))
		want := runSerial(t, edges, window)
		sort.Strings(want)
		shards := 1 + rng.Intn(4)
		// Random batch splits exercise uneven bundle boundaries.
		r := New(Config{Shards: shards, Window: window, EvictEvery: 7})
		queries, strategies := testQueries(), testStrategies()
		for _, name := range sortedNames(queries) {
			if err := r.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
				t.Fatalf("trial %d: register %s: %v", trial, name, err)
			}
		}
		var mu sync.Mutex
		var got []string
		done := make(chan struct{})
		go func() {
			defer close(done)
			r.Drain(func(m Match) {
				mu.Lock()
				got = append(got, matchSig(m))
				mu.Unlock()
			})
		}()
		for lo := 0; lo < len(edges); {
			hi := lo + 1 + rng.Intn(80)
			if hi > len(edges) {
				hi = len(edges)
			}
			r.IngestBatch(edges[lo:hi])
			lo = hi
		}
		r.Close()
		<-done
		sort.Strings(got)
		if len(got) != len(want) {
			t.Fatalf("trial %d (shards=%d window=%d): %d matches, want %d", trial, shards, window, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: multiset differs at %d:\n got %s\nwant %s", trial, i, got[i], want[i])
			}
		}
	}
}

// TestCloseDrainsNoMatchLost floods the shards with a queue-saturating
// burst and calls Close immediately: every match the serial reference
// produces must still come out of the collection channel before it
// closes. Run under -race this also exercises the full pipeline's
// synchronization.
func TestCloseDrainsNoMatchLost(t *testing.T) {
	edges := testStream(2000)
	const window = 400
	want := len(runSerial(t, edges, window))
	if want == 0 {
		t.Fatal("no matches; drain check is vacuous")
	}
	// Tiny queues force backpressure mid-burst; the consumer counts
	// concurrently with ingestion AND with Close.
	r := New(Config{Shards: 4, Window: window, EvictEvery: 7, QueueLen: 2, OutLen: 4})
	queries, strategies := testQueries(), testStrategies()
	for _, name := range sortedNames(queries) {
		if err := r.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	counted := make(chan int64, 1)
	go func() { counted <- r.Drain(nil) }()
	for lo := 0; lo < len(edges); lo += 37 {
		hi := lo + 37
		if hi > len(edges) {
			hi = len(edges)
		}
		r.IngestBatch(edges[lo:hi])
	}
	r.Close()
	if got := <-counted; got != int64(want) {
		t.Fatalf("drained %d matches after Close, serial reference has %d — matches lost", got, want)
	}
	// Close is idempotent, and post-close ingests are refused silently.
	r.Close()
	seqBefore := r.EdgesRouted()
	r.Ingest(edges[0])
	if r.EdgesRouted() != seqBefore {
		t.Fatal("ingest after Close advanced the sequence")
	}
}

// TestRegisterUnregisterMidStream registers a second query mid-stream
// and unregisters another; the late query must see matches whose last
// edge arrives after registration, and the removed query must emit
// nothing afterwards.
func TestRegisterUnregisterMidStream(t *testing.T) {
	edges := testStream(1200)
	const window = 400
	r := New(Config{Shards: 3, Window: window, EvictEvery: 7})
	if err := r.Register("early", query.NewPath(query.Wildcard, "GRE", "TCP"), core.Config{Strategy: core.StrategySingleLazy}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("early", query.NewPath(query.Wildcard, "GRE"), core.Config{Strategy: core.StrategySingle}); err == nil {
		t.Fatal("duplicate register succeeded")
	}
	var mu sync.Mutex
	perQuery := map[string]int{}
	lastSeq := map[string]uint64{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Drain(func(m Match) {
			mu.Lock()
			perQuery[m.Query]++
			lastSeq[m.Query] = m.Seq
			mu.Unlock()
		})
	}()
	half := len(edges) / 2
	for _, se := range edges[:half] {
		r.Ingest(se)
	}
	if err := r.Register("late", query.NewPath(query.Wildcard, "UDP", "ICMP"), core.Config{Strategy: core.StrategyPath}); err != nil {
		t.Fatal(err)
	}
	unregisterAt := r.EdgesRouted()
	r.Unregister("early")
	for _, se := range edges[half:] {
		r.Ingest(se)
	}
	if got := r.Registered(); len(got) != 1 || got[0] != "late" {
		t.Fatalf("Registered() = %v, want [late]", got)
	}
	r.Close()
	<-done
	if perQuery["late"] == 0 {
		t.Fatal("late-registered query produced no matches")
	}
	if perQuery["early"] == 0 {
		t.Fatal("early query produced no matches before unregister; test is vacuous")
	}
	if lastSeq["early"] >= unregisterAt {
		t.Fatalf("early query emitted a match at seq %d, at/after its unregister at %d", lastSeq["early"], unregisterAt)
	}
}

// TestStatsCounters checks per-shard accounting under full
// replication: every shard routes every edge, queue capacity is
// reported, query ownership sums to the registered count, and emitted
// matches sum to the collected total. (Gated-routing accounting is
// covered by the replica tests.)
func TestStatsCounters(t *testing.T) {
	edges := testStream(600)
	r := New(Config{Shards: 3, Window: 400, QueueLen: 8, FullReplicas: true})
	queries, strategies := testQueries(), testStrategies()
	for _, name := range sortedNames(queries) {
		if err := r.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
			t.Fatal(err)
		}
	}
	counted := make(chan int64, 1)
	go func() { counted <- r.Drain(nil) }()
	for lo := 0; lo < len(edges); lo += 50 {
		r.IngestBatch(edges[lo : lo+50])
	}
	r.Close()
	total := <-counted

	st := r.Stats()
	if len(st) != 3 {
		t.Fatalf("got %d shard stats, want 3", len(st))
	}
	var queries3, emitted int64
	for i, s := range st {
		if s.Shard != i {
			t.Fatalf("stats[%d].Shard = %d", i, s.Shard)
		}
		if s.EdgesRouted != int64(len(edges)) {
			t.Fatalf("shard %d routed %d edges, want %d (broadcast)", i, s.EdgesRouted, len(edges))
		}
		if s.QueueCap != 8 {
			t.Fatalf("shard %d queue cap %d, want 8", i, s.QueueCap)
		}
		queries3 += int64(s.Queries)
		emitted += s.MatchesEmitted
	}
	if queries3 != 3 {
		t.Fatalf("shard query ownership sums to %d, want 3", queries3)
	}
	if emitted != total {
		t.Fatalf("shards report %d emitted matches, collector saw %d", emitted, total)
	}
	if r.EdgesRouted() != uint64(len(edges)) {
		t.Fatalf("EdgesRouted() = %d, want %d", r.EdgesRouted(), len(edges))
	}
}
