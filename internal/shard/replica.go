// Filtered replicas. Each shard worker's engine stores only the edges
// routable to its queries: the union edge-type footprint of the
// queries it owns (core.MultiEngine's replica filter). Two structures
// maintain that invariant as queries come and go at runtime:
//
//   - EdgeLog, a shared append-only log of every admitted batch. The
//     router appends under its ingest lock; shard workers read
//     immutable snapshots concurrently, so a worker backfilling a
//     widened replica never blocks ingestion or the other shards.
//   - replicaSet, the per-shard refcount of footprint types, kept in
//     two synchronized copies: router-side (driving the ingest gate)
//     and worker-side (driving the engine filter, backfill and trim).
//
// The replica invariant: a shard's graph holds exactly the in-window
// logged edges whose type is in its current footprint (modulo the
// usual eviction slack, which is always lazier than — never ahead of —
// a serial engine's, and therefore harmless; see core.Engine's
// advanceEvict argument). Register widens the footprint and backfills
// the missing past from the log; Unregister narrows it and trims the
// now-unreachable edges.
package shard

import (
	"sort"
	"sync/atomic"

	"streamgraph/internal/stream"
)

// logSegment is one admitted batch: the shared read-only edge slice,
// the arrival sequence of its first edge, and the segment's maximum
// timestamp (for window trimming).
type logSegment struct {
	edges   []stream.Edge
	baseSeq uint64
	maxTS   int64
}

// logView is one immutable snapshot of the log: a segment slice that
// is never mutated after publication, plus the maximum timestamp seen.
type logView struct {
	segs  []logSegment
	maxTS int64
}

// EdgeLog is the shared immutable edge log behind replica backfill: an
// append-only sequence of admitted batches with copy-on-write snapshot
// publication. There is a single appender (the router, under its
// ingest lock); any number of readers take Snapshot-consistent views
// lock-free, so a backfilling shard never contends with the ingest hot
// path. Memory is bounded by the window — TrimBefore drops leading
// segments wholesale once every timestamp in them has expired — except
// for what remote slots pin: a live remote registration holds the log
// from its registration-time floor onward (the reconnect replay
// entitlement, see remote.go's pinFloor and docs/DISTRIBUTED.md's
// failure table), so long-lived remote registrations trade log growth
// for exact crash recovery.
type EdgeLog struct {
	view    atomic.Pointer[logView]
	segs    []logSegment // appender-owned backing; views alias prefixes of it
	dropped int          // trimmed headers still pinned in the backing array
	max     int64
}

// NewEdgeLog returns an empty log.
func NewEdgeLog() *EdgeLog {
	l := &EdgeLog{}
	l.view.Store(&logView{})
	return l
}

// Append records one admitted batch. The slice is retained and must
// not be mutated afterwards (the same contract as Router.IngestBatch).
// Only one goroutine may append.
func (l *EdgeLog) Append(ses []stream.Edge, baseSeq uint64) {
	if len(ses) == 0 {
		return
	}
	maxTS := ses[0].TS
	for _, se := range ses[1:] {
		if se.TS > maxTS {
			maxTS = se.TS
		}
	}
	if maxTS > l.max {
		l.max = maxTS
	}
	// Appending may grow the backing array; published views keep their
	// own slice headers over the old (or shared) backing, and the new
	// element lies beyond every published length, so readers never
	// observe it until the new view is stored.
	l.segs = append(l.segs, logSegment{edges: ses, baseSeq: baseSeq, maxTS: maxTS})
	l.view.Store(&logView{segs: l.segs, maxTS: l.max})
}

// TrimBefore drops leading segments whose every edge has timestamp <
// cutoff AND whose every arrival seq is below keepSeq. Like graph
// eviction it stops at the first segment that must be kept, so an
// out-of-order old segment behind a newer one is dropped on a later
// call. Only the appender may trim. It returns the number of segments
// dropped.
//
// keepSeq is the seq-based pin the snapshot protocol introduces: a
// remote slot holding an engine snapshot at stream position S replays
// only the log tail past S after a reconnect, so every segment at or
// beyond the oldest such S must survive even when its timestamps have
// left the window (the tail replay must be gap-free — a skipped batch
// would shift the restored engine's eviction clock off the serial
// schedule). Pass ^uint64(0) to pin nothing by seq.
func (l *EdgeLog) TrimBefore(cutoff int64, keepSeq uint64) int {
	k := 0
	for k < len(l.segs) && l.segs[k].maxTS < cutoff &&
		l.segs[k].baseSeq+uint64(len(l.segs[k].edges)) <= keepSeq {
		k++
	}
	if k == 0 {
		return 0
	}
	l.segs = l.segs[k:]
	l.dropped += k
	// The dropped headers stay live in the shared backing array — they
	// cannot be zeroed in place while published views may alias it —
	// so once the dead prefix dominates, copy the live suffix into a
	// fresh array and let the old one (and the edge slices it pins) go
	// to the collector when the last old view does.
	if l.dropped > len(l.segs) && l.dropped > 64 {
		l.segs = append([]logSegment(nil), l.segs...)
		l.dropped = 0
	}
	l.view.Store(&logView{segs: l.segs, maxTS: l.max})
	return k
}

// Segments reports the current segment count (diagnostics).
func (l *EdgeLog) Segments() int { return len(l.view.Load().segs) }

// FirstSeq reports the arrival seq of the oldest retained edge, and
// false when the log is empty. The pin-advance test watches it move
// past a long-lived registration's window floor once checkpoints
// retire the reconnect entitlement.
func (l *EdgeLog) FirstSeq() (uint64, bool) {
	segs := l.view.Load().segs
	if len(segs) == 0 {
		return 0, false
	}
	return segs[0].baseSeq, true
}

// NumEdges reports the number of retained edges (diagnostics: the live
// in-memory log size, a proxy for the bytes the log pins).
func (l *EdgeLog) NumEdges() int {
	n := 0
	for _, seg := range l.view.Load().segs {
		n += len(seg.edges)
	}
	return n
}

// MaxTS reports the largest timestamp appended so far.
func (l *EdgeLog) MaxTS() int64 { return l.view.Load().maxTS }

// Replay invokes fn for every logged edge with arrival sequence <
// beforeSeq and timestamp >= minTS, in arrival order, against one
// consistent snapshot of the log. Returning false stops the replay.
// It is safe to call concurrently with Append and TrimBefore.
func (l *EdgeLog) Replay(beforeSeq uint64, minTS int64, fn func(se stream.Edge, seq uint64) bool) {
	v := l.view.Load()
	for _, seg := range v.segs {
		if seg.baseSeq >= beforeSeq {
			return
		}
		for i, se := range seg.edges {
			seq := seg.baseSeq + uint64(i)
			if seq >= beforeSeq {
				return
			}
			if se.TS < minTS {
				continue
			}
			if !fn(se, seq) {
				return
			}
		}
	}
}

// EachSegment invokes fn for every retained batch — the shared
// read-only edge slice and the arrival seq of its first edge, in
// arrival order — against one consistent snapshot of the log.
// Returning false stops the walk. The remote-slot reconnect replay
// iterates the log at batch granularity through it (batch boundaries
// are frame boundaries on the wire). Safe to call concurrently with
// Append and TrimBefore.
func (l *EdgeLog) EachSegment(fn func(edges []stream.Edge, baseSeq uint64) bool) {
	for _, seg := range l.view.Load().segs {
		if !fn(seg.edges, seg.baseSeq) {
			return
		}
	}
}

// replicaSet refcounts the edge-type footprint of the queries assigned
// to one shard. Types are tracked by name (both the router's gate
// interner and the engine's graph interner derive their own IDs from
// the names); wild counts queries whose footprint is inexact
// (wildcard-typed edges) and therefore force full replication while
// registered.
type replicaSet struct {
	refs map[string]int
	wild int
}

func newReplicaSet() *replicaSet { return &replicaSet{refs: make(map[string]int)} }

// universal reports whether the shard must replicate every edge type.
func (s *replicaSet) universal() bool { return s.wild > 0 }

// has reports whether tp is currently in the footprint.
func (s *replicaSet) has(tp string) bool { return s.wild > 0 || s.refs[tp] > 0 }

// add folds one query's footprint in. Callers that need the backfill
// set (the types newly reachable) compute it from the pre-add state,
// since "newly needed" is relative to what the replica already held.
func (s *replicaSet) add(types []string, exact bool) {
	if !exact {
		s.wild++
	}
	for _, tp := range types {
		s.refs[tp]++
	}
}

// remove reverses add for one query's footprint.
func (s *replicaSet) remove(types []string, exact bool) {
	if !exact {
		s.wild--
	}
	for _, tp := range types {
		if s.refs[tp]--; s.refs[tp] <= 0 {
			delete(s.refs, tp)
		}
	}
}

// newlyNeeded reports the backfill entitlement a registration with the
// given footprint adds relative to the current refcounts, BEFORE add
// folds it in: needAll (an inexact footprint going universal) with the
// types already held, or the exact list of added types. Nothing is
// needed when the set is already universal. Both the local worker's
// widenReplica and the router's remote register path derive their
// backfill sets from this one definition.
func (s *replicaSet) newlyNeeded(types []string, exact bool) (needAll bool, held, added []string) {
	switch {
	case s.universal():
		return false, nil, nil
	case !exact:
		return true, s.typeNames(), nil
	default:
		for _, tp := range types {
			if !s.has(tp) {
				added = append(added, tp)
			}
		}
		return false, nil, added
	}
}

// typeNames returns the sorted type names currently referenced.
func (s *replicaSet) typeNames() []string {
	out := make([]string, 0, len(s.refs))
	for tp := range s.refs {
		out = append(out, tp)
	}
	sort.Strings(out)
	return out
}
