// Durable checkpoint file formats. A durable router (shard.Open)
// persists two kinds of files next to its edge-log directory:
//
//	slot-<i>.ckpt  one local slot's engine at a checkpoint round: a
//	               small header (round seq, flush barrier, ranks)
//	               followed by a persist.SaveMulti image
//	router.meta    the router's own registry at a round: collector
//	               statistics and one record per registration
//
// Both are written to a temp file, fsynced and renamed, so a crash
// mid-write leaves the previous checkpoint intact; recovery (Open)
// tolerates slot files one round newer than the meta — exactly the
// state a crash between the slot writes and the meta commit leaves.
package shard

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"streamgraph/internal/core"
	"streamgraph/internal/persist"
	"streamgraph/internal/selectivity"
)

const (
	slotMagic = "SGSLOT1\n"
	metaMagic = "SGMETA1\n"
)

// metaReg is one registration record in router.meta: everything Open
// needs to rebuild the router-side bookkeeping (owner, gate, rank) and
// to synthesize a remote slot's register event.
type metaReg struct {
	name    string
	slot    int
	rank    int
	fpTypes []string
	fpExact bool
	query   string // textual form, reparsed on recovery
	cfg     core.Config
}

// routerMeta is the decoded router.meta.
type routerMeta struct {
	ckptSeq   uint64
	collector *selectivity.CollectorState // nil when the router keeps no stats
	regs      []metaReg
}

// atomicFile writes through a temp file and renames into place on
// Close(nil); the data is fsynced before the rename so the rename
// never points at a half-written file.
func writeFileAtomic(path string, write func(w *bufio.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	err = write(bw)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// enc/dec helpers: uvarint-based, mirroring internal/persist's style.

func putUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	_, err := w.Write(buf[:binary.PutUvarint(buf[:], v)])
	return err
}

func putVarint(w *bufio.Writer, v int64) error {
	var buf [binary.MaxVarintLen64]byte
	_, err := w.Write(buf[:binary.PutVarint(buf[:], v)])
	return err
}

func putString(w *bufio.Writer, s string) error {
	if err := putUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func putBool(w *bufio.Writer, v bool) error {
	var b uint64
	if v {
		b = 1
	}
	return putUvarint(w, b)
}

func putStrings(w *bufio.Writer, ss []string) error {
	if err := putUvarint(w, uint64(len(ss))); err != nil {
		return err
	}
	for _, s := range ss {
		if err := putString(w, s); err != nil {
			return err
		}
	}
	return nil
}

type metaDec struct {
	r   *bufio.Reader
	err error
}

func (d *metaDec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("shard: corrupt checkpoint file: %s", what)
	}
}

func (d *metaDec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *metaDec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *metaDec) bool_() bool { return d.uvarint() != 0 }

// count guards list lengths against corrupt headers so a flipped byte
// cannot drive a multi-gigabyte allocation.
func (d *metaDec) count(what string, limit uint64) int {
	n := d.uvarint()
	if d.err == nil && n > limit {
		d.fail(what + " count")
	}
	if d.err != nil {
		return 0
	}
	return int(n)
}

func (d *metaDec) string_() string {
	n := d.count("string", 1<<24)
	if d.err != nil {
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.err = err
		return ""
	}
	return string(b)
}

func (d *metaDec) strings() []string {
	n := d.count("strings", 1<<20)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, d.string_())
	}
	return out
}

func (d *metaDec) magic(want string) {
	if d.err != nil {
		return
	}
	b := make([]byte, len(want))
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.err = err
		return
	}
	if string(b) != want {
		d.fail("magic")
	}
}

// writeMetaFile persists router.meta for one round.
func writeMetaFile(path string, m routerMeta) error {
	return writeFileAtomic(path, func(w *bufio.Writer) error {
		if _, err := w.WriteString(metaMagic); err != nil {
			return err
		}
		if err := putUvarint(w, m.ckptSeq); err != nil {
			return err
		}
		if err := putBool(w, m.collector != nil); err != nil {
			return err
		}
		if m.collector != nil {
			if err := writeCollectorState(w, m.collector); err != nil {
				return err
			}
		}
		if err := putUvarint(w, uint64(len(m.regs))); err != nil {
			return err
		}
		for _, reg := range m.regs {
			if err := writeMetaReg(w, reg); err != nil {
				return err
			}
		}
		return nil
	})
}

func writeMetaReg(w *bufio.Writer, reg metaReg) error {
	if err := putString(w, reg.name); err != nil {
		return err
	}
	if err := putUvarint(w, uint64(reg.slot)); err != nil {
		return err
	}
	if err := putUvarint(w, uint64(reg.rank)); err != nil {
		return err
	}
	if err := putBool(w, reg.fpExact); err != nil {
		return err
	}
	if err := putStrings(w, reg.fpTypes); err != nil {
		return err
	}
	if err := putString(w, reg.query); err != nil {
		return err
	}
	cfg := reg.cfg
	if err := putUvarint(w, uint64(cfg.Strategy)); err != nil {
		return err
	}
	if err := putUvarint(w, uint64(cfg.MaxMatchesPerSearch)); err != nil {
		return err
	}
	if err := putVarint(w, cfg.MaxWorkPerEdge); err != nil {
		return err
	}
	if err := putVarint(w, cfg.MaxStepsPerSearch); err != nil {
		return err
	}
	if err := putUvarint(w, uint64(cfg.BatchWorkers)); err != nil {
		return err
	}
	if err := putBool(w, cfg.Leaves != nil); err != nil {
		return err
	}
	if cfg.Leaves == nil {
		return nil
	}
	if err := putUvarint(w, uint64(len(cfg.Leaves))); err != nil {
		return err
	}
	for _, leaf := range cfg.Leaves {
		if err := putUvarint(w, uint64(len(leaf))); err != nil {
			return err
		}
		for _, e := range leaf {
			if err := putUvarint(w, uint64(e)); err != nil {
				return err
			}
		}
	}
	return nil
}

// readMetaFile loads router.meta; (nil, nil) when the file does not
// exist (a data dir that never completed a round).
func readMetaFile(path string) (*routerMeta, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d := &metaDec{r: bufio.NewReader(f)}
	d.magic(metaMagic)
	m := &routerMeta{ckptSeq: d.uvarint()}
	if d.bool_() {
		m.collector = readCollectorState(d)
	}
	n := d.count("registrations", 1<<20)
	for i := 0; i < n && d.err == nil; i++ {
		m.regs = append(m.regs, readMetaReg(d))
	}
	if d.err != nil {
		return nil, fmt.Errorf("shard: %s: %w", filepath.Base(path), d.err)
	}
	return m, nil
}

func readMetaReg(d *metaDec) metaReg {
	reg := metaReg{
		name: d.string_(),
		slot: int(d.uvarint()),
		rank: int(d.uvarint()),
	}
	reg.fpExact = d.bool_()
	reg.fpTypes = d.strings()
	reg.query = d.string_()
	reg.cfg.Strategy = core.Strategy(d.uvarint())
	reg.cfg.MaxMatchesPerSearch = int(d.uvarint())
	reg.cfg.MaxWorkPerEdge = d.varint()
	reg.cfg.MaxStepsPerSearch = d.varint()
	reg.cfg.BatchWorkers = int(d.uvarint())
	if d.bool_() {
		n := d.count("leaves", 1<<16)
		reg.cfg.Leaves = make([][]int, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			m := d.count("leaf edges", 1<<16)
			leaf := make([]int, 0, m)
			for j := 0; j < m && d.err == nil; j++ {
				leaf = append(leaf, int(d.uvarint()))
			}
			reg.cfg.Leaves = append(reg.cfg.Leaves, leaf)
		}
	}
	return reg
}

func writeCollectorState(w *bufio.Writer, s *selectivity.CollectorState) error {
	if err := putVarint(w, s.EdgeTotal); err != nil {
		return err
	}
	if err := putVarint(w, s.PathTotal); err != nil {
		return err
	}
	if err := putUvarint(w, uint64(len(s.Edges))); err != nil {
		return err
	}
	for _, e := range s.Edges {
		if err := putString(w, e.Type); err != nil {
			return err
		}
		if err := putVarint(w, e.N); err != nil {
			return err
		}
	}
	if err := putUvarint(w, uint64(len(s.Paths))); err != nil {
		return err
	}
	end := func(e selectivity.PathEnd) error {
		if err := putString(w, e.Type); err != nil {
			return err
		}
		return putUvarint(w, uint64(e.Dir))
	}
	for _, p := range s.Paths {
		if err := end(p.A); err != nil {
			return err
		}
		if err := end(p.B); err != nil {
			return err
		}
		if err := putVarint(w, p.N); err != nil {
			return err
		}
	}
	if err := putUvarint(w, uint64(len(s.Vertices))); err != nil {
		return err
	}
	for _, vc := range s.Vertices {
		if err := putString(w, vc.Name); err != nil {
			return err
		}
		if err := putUvarint(w, uint64(len(vc.Incident))); err != nil {
			return err
		}
		for _, inc := range vc.Incident {
			if err := putString(w, inc.Type); err != nil {
				return err
			}
			if err := putUvarint(w, uint64(inc.Dir)); err != nil {
				return err
			}
			if err := putVarint(w, inc.N); err != nil {
				return err
			}
		}
	}
	return nil
}

func readCollectorState(d *metaDec) *selectivity.CollectorState {
	s := &selectivity.CollectorState{EdgeTotal: d.varint(), PathTotal: d.varint()}
	n := d.count("edge histogram", 1<<24)
	for i := 0; i < n && d.err == nil; i++ {
		s.Edges = append(s.Edges, selectivity.TypeCount{Type: d.string_(), N: d.varint()})
	}
	end := func() selectivity.PathEnd {
		return selectivity.PathEnd{Type: d.string_(), Dir: selectivity.Dir(d.uvarint())}
	}
	n = d.count("path histogram", 1<<24)
	for i := 0; i < n && d.err == nil; i++ {
		p := selectivity.PathCountState{A: end(), B: end()}
		p.N = d.varint()
		s.Paths = append(s.Paths, p)
	}
	n = d.count("vertex counters", 1<<24)
	for i := 0; i < n && d.err == nil; i++ {
		vc := selectivity.VertexCounts{Name: d.string_()}
		m := d.count("incident counters", 1<<24)
		for j := 0; j < m && d.err == nil; j++ {
			vc.Incident = append(vc.Incident, selectivity.DirTypeCount{
				Type: d.string_(), Dir: selectivity.Dir(d.uvarint()), N: d.varint(),
			})
		}
		s.Vertices = append(s.Vertices, vc)
	}
	return s
}

// slotCkpt is the decoded header of one slot-<i>.ckpt; the engine
// image follows it in the file.
type slotCkpt struct {
	ckptSeq uint64
	lastEnd uint64
	ranks   map[string]int
	eng     *core.MultiEngine
}

func slotPath(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("slot-%d.ckpt", id))
}

// writeSlotFile persists one local slot's checkpoint: header then the
// engine image, through the same atomic temp-rename discipline.
func writeSlotFile(path string, seq, lastEnd uint64, ranks map[string]int, save func(io.Writer) error) error {
	return writeFileAtomic(path, func(w *bufio.Writer) error {
		if _, err := w.WriteString(slotMagic); err != nil {
			return err
		}
		if err := putUvarint(w, seq); err != nil {
			return err
		}
		if err := putUvarint(w, lastEnd); err != nil {
			return err
		}
		names := make([]string, 0, len(ranks))
		for name := range ranks {
			names = append(names, name)
		}
		sort.Strings(names)
		if err := putUvarint(w, uint64(len(names))); err != nil {
			return err
		}
		for _, name := range names {
			if err := putString(w, name); err != nil {
				return err
			}
			if err := putUvarint(w, uint64(ranks[name])); err != nil {
				return err
			}
		}
		return save(w)
	})
}

// readSlotFile loads one slot checkpoint; (nil, nil) when absent.
func readSlotFile(path string) (*slotCkpt, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	d := &metaDec{r: br}
	d.magic(slotMagic)
	s := &slotCkpt{ckptSeq: d.uvarint(), lastEnd: d.uvarint()}
	n := d.count("slot ranks", 1<<20)
	s.ranks = make(map[string]int, n)
	for i := 0; i < n && d.err == nil; i++ {
		name := d.string_()
		s.ranks[name] = int(d.uvarint())
	}
	if d.err != nil {
		return nil, fmt.Errorf("shard: %s: %w", filepath.Base(path), d.err)
	}
	eng, err := persist.LoadMulti(br)
	if err != nil {
		return nil, fmt.Errorf("shard: %s: %w", filepath.Base(path), err)
	}
	s.eng = eng
	return s, nil
}
