package shard

import (
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"streamgraph/internal/core"
	"streamgraph/internal/edlog"
	"streamgraph/internal/metrics"
)

// metricValue returns the value of the sample with the given name and
// exact label list, failing the test when the series is absent.
func metricValue(t *testing.T, samples []metrics.Sample, name string, labels ...string) int64 {
	t.Helper()
	for _, s := range samples {
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for i := range labels {
			if s.Labels[i] != labels[i] {
				match = false
				break
			}
		}
		if match {
			return s.Value
		}
	}
	t.Fatalf("series %s%v not found in snapshot", name, labels)
	return 0
}

// sumMetric sums every sample of a series family across its labels.
func sumMetric(samples []metrics.Sample, name string) int64 {
	var n int64
	for _, s := range samples {
		if s.Name == name {
			n += s.Value
		}
	}
	return n
}

// TestMetricsTruthfulness is the observability differential: the
// registry's counters must agree exactly with ground truth the test
// can compute independently — admitted edges, collected matches, and
// (durable mode) the edge log's on-disk footprint — across in-process,
// remote-loopback and durable topologies.
func TestMetricsTruthfulness(t *testing.T) {
	edges := testStream(3000)
	const window = 400
	addr, _ := startRemoteWorker(t)
	topologies := []struct {
		name    string
		cfg     Config
		durable bool
	}{
		{"inproc", Config{Shards: 3, Window: window, EvictEvery: 7}, false},
		{"remote", Config{Shards: 1, Remotes: []string{addr}, Window: window, EvictEvery: 7}, false},
		{"durable", Config{Shards: 2, Window: window, EvictEvery: 7, CheckpointEvery: 512, SegmentBytes: 16 << 10}, true},
	}
	for _, tp := range topologies {
		t.Run(tp.name, func(t *testing.T) {
			cfg := tp.cfg
			var r *Router
			if tp.durable {
				cfg.DataDir = t.TempDir()
				var err error
				var recovered []Match
				r, recovered, err = Open(cfg)
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				if len(recovered) != 0 {
					t.Fatalf("cold start recovered %d matches", len(recovered))
				}
			} else {
				r = New(cfg)
			}
			queries, strategies := testQueries(), testStrategies()
			for _, name := range sortedNames(queries) {
				if err := r.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
					t.Fatalf("register %s: %v", name, err)
				}
			}
			var mu sync.Mutex
			byQuery := make(map[string]int64)
			var collected int64
			done := make(chan struct{})
			go func() {
				defer close(done)
				r.Drain(func(m Match) {
					mu.Lock()
					byQuery[m.Query]++
					collected++
					mu.Unlock()
				})
			}()
			for lo := 0; lo < len(edges); lo += 64 {
				hi := lo + 64
				if hi > len(edges) {
					hi = len(edges)
				}
				r.IngestBatch(edges[lo:hi])
			}
			reg := r.Metrics()
			r.Close()
			<-done
			if collected == 0 {
				t.Fatal("workload produced no matches; differential is vacuous")
			}

			samples := reg.Snapshot()
			admitted := metricValue(t, samples, "sg_router_edges_admitted_total")
			if admitted != int64(len(edges)) {
				t.Errorf("admitted = %d, want %d", admitted, len(edges))
			}
			// Per shard, every admitted edge was either routed or gated:
			// gating is a whole-batch decision, so the two counters tile
			// the stream exactly.
			for i := 0; i < r.NumShards(); i++ {
				sh := []string{"shard", string(rune('0' + i))}
				routed := metricValue(t, samples, "sg_shard_edges_routed_total", sh...)
				gated := metricValue(t, samples, "sg_shard_edges_gated_total", sh...)
				if routed+gated != admitted {
					t.Errorf("shard %d: routed %d + gated %d != admitted %d", i, routed, gated, admitted)
				}
			}
			// Every collected match is counted once per query and once on
			// its emitting shard, and once by the consumption counter.
			if got := sumMetric(samples, "sg_matches_total"); got != collected {
				t.Errorf("sum sg_matches_total = %d, want %d collected", got, collected)
			}
			for q, want := range byQuery {
				if got := metricValue(t, samples, "sg_matches_total", "query", q); got != want {
					t.Errorf("sg_matches_total{query=%q} = %d, want %d", q, got, want)
				}
			}
			if got := sumMetric(samples, "sg_shard_matches_emitted_total"); got != collected {
				t.Errorf("sum sg_shard_matches_emitted_total = %d, want %d collected", got, collected)
			}
			if got := metricValue(t, samples, "sg_router_matches_consumed_total"); got != collected {
				t.Errorf("sg_router_matches_consumed_total = %d, want %d", got, collected)
			}
			if lag := r.MatchLag(); lag.Count() == 0 {
				t.Error("match-lag histogram recorded no samples")
			}

			if tp.durable {
				// The disk-bytes gauge must agree with what is actually on
				// disk. Scraped after Close: no trim can race the walk.
				samples = reg.Snapshot()
				gauge := metricValue(t, samples, "sg_edlog_disk_bytes")
				var onDisk int64
				ents, err := os.ReadDir(filepath.Join(cfg.DataDir, "edgelog"))
				if err != nil {
					t.Fatalf("read edgelog dir: %v", err)
				}
				for _, e := range ents {
					if !edlog.IsSegmentFile(e.Name()) {
						continue
					}
					fi, err := e.Info()
					if err != nil {
						t.Fatal(err)
					}
					onDisk += fi.Size()
				}
				if gauge != onDisk {
					t.Errorf("sg_edlog_disk_bytes = %d, on-disk segment bytes = %d", gauge, onDisk)
				}
				if rounds := metricValue(t, samples, "sg_checkpoint_rounds_total"); rounds == 0 {
					t.Error("no checkpoint rounds counted despite CheckpointEvery cadence")
				}
				for _, s := range samples {
					if s.Name == "sg_edlog_fsync_ns" && (s.Hist == nil || s.Hist.Count() == 0) {
						t.Error("fsync histogram recorded no samples")
					}
				}
			}
		})
	}
}

// TestStatsAndScrapeUnderIngest pins the read-side race surface: Stats,
// registry snapshots, Prometheus rendering and match-lag merges all
// poll concurrently with a saturating ingest (the package tests run
// under -race in CI).
func TestStatsAndScrapeUnderIngest(t *testing.T) {
	edges := testStream(4000)
	r := New(Config{Shards: 2, Window: 400, EvictEvery: 7})
	queries, strategies := testQueries(), testStrategies()
	for _, name := range sortedNames(queries) {
		if err := r.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Drain(nil)
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, st := range r.Stats() {
					_ = st.EdgesRouted + st.MatchesEmitted
				}
				if err := r.Metrics().WritePrometheus(io.Discard); err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				lag := r.MatchLag()
				_ = lag.Count()
				time.Sleep(50 * time.Microsecond)
			}
		}()
	}
	for lo := 0; lo < len(edges); lo += 32 {
		hi := lo + 32
		if hi > len(edges) {
			hi = len(edges)
		}
		r.IngestBatch(edges[lo:hi])
	}
	close(stop)
	wg.Wait()
	r.Close()
	<-done
	if got := sumMetric(r.Metrics().Snapshot(), "sg_shard_edges_routed_total"); got == 0 {
		t.Fatal("no routed edges counted")
	}
}
