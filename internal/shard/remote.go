// Remote shard slots. A Router slot normally runs as a local worker
// goroutine; with Config.Remotes it can instead be a TCP connection to
// a remote shard worker process (cmd/sgshard) speaking the
// internal/dshard protocol. This file is the router side of that
// split: a proxy that feeds the slot's bounded queue over the wire,
// buffers each frame's matches until its acknowledgment (so delivery
// is atomic per frame), and rebuilds the remote engine after a
// disconnect by replaying the slot's control events interleaved with
// the shared EdgeLog.
//
// Exactly-once across reconnects. The remote worker keeps no state
// between connections. On every new connection the proxy replays, in
// arrival-seq order, every retained log batch and every non-retired
// control event; frames whose matches were already delivered are
// marked suppress — the worker processes them fully (rebuilding graph,
// filter and partial-match state) but emits no matches. A frame's
// matches are only delivered to the collection channel when its done
// frame arrives, so a connection dying mid-frame loses nothing (the
// frame replays unsuppressed) and duplicates nothing (delivered frames
// replay suppressed). The EdgeLog is pinned against trimming below
// each live remote registration's window floor and below the oldest
// unacknowledged batch, which is exactly the replay entitlement.
//
// Snapshots bound the entitlement. Left alone, the replay pin is
// unbounded: a live registration's floor is frozen at registration
// time, so a long-lived remote registration holds the log forever (the
// PR 5 failure mode). The router therefore periodically sends a
// checkpoint frame down the same ordered pipeline; the worker answers
// with a serialized image of its whole engine. Because the pipeline is
// FIFO over a single connection, when the checkpoint's done frame
// arrives every previously acknowledged frame is inside the snapshot
// and everything after it is tail — so the proxy retires every
// acknowledged control event, records the snapshot's stream position
// (deliveredEnd at that instant), and the pin floor recomputes from
// only the uncovered remainder. A reconnect then sends the snapshot
// back in a restore frame and replays just the log tail past the
// snapshot position, instead of the whole history.
package shard

import (
	"fmt"
	"math"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"streamgraph/internal/dshard"
	"streamgraph/internal/metrics"
	"streamgraph/internal/stream"
)

const (
	remoteDialTimeout = 5 * time.Second
	remoteRedialMin   = 50 * time.Millisecond
	remoteRedialMax   = time.Second
	remoteRecvBuffer  = 256
)

// WireMode selects the dshard wire encoding a remote slot negotiates
// (Config.Wire).
type WireMode int

const (
	// WireAuto negotiates the full v2 encoding — per-connection string
	// dictionary, within-frame delta timestamps, per-frame compression
	// — and falls back per slot to the v1 encoding when the peer does
	// not complete the v2 handshake (an old sgshard binary).
	WireAuto WireMode = iota
	// WireLegacy forces the plain v1 encoding: no handshake beyond
	// the v1 hello, no dictionary, no compression. Interops with every
	// server version; the both-encodings benchmarks and differential
	// tests run under it.
	WireLegacy
	// WireDictOnly negotiates the dictionary and delta timestamps but
	// not compression, isolating what interning alone saves.
	WireDictOnly
)

// remoteChunkBytes bounds the estimated payload of one edge-carrying
// frame (edge batches and register backfills split into continuation
// frames beyond it), keeping every frame far from the protocol's
// MaxFrame limit no matter how large an ingest batch or a
// re-registration backfill grows. A single edge cannot be split, so
// edges whose strings approach MaxFrame (64 MiB) are unsendable — no
// ingestion surface can produce one (stream.Reader caps lines at
// 4 MiB, the TCP server at 1 MiB); library callers ingesting
// synthetic edges of that size would stall the slot. Variable so
// tests can force heavy chunking on small workloads.
var remoteChunkBytes = 16 << 20

// splitEdgesForWire cuts edges into chunks whose estimated encoded
// size stays under remoteChunkBytes. The 40-byte per-edge allowance
// covers the worst-case framing overhead (five uvarint length
// prefixes up to 5 bytes each plus a 10-byte zigzag timestamp);
// exactness never depends on chunk boundaries — the batch pipeline's
// per-edge results are split-invariant.
func splitEdgesForWire(edges []stream.Edge) [][]stream.Edge {
	var chunks [][]stream.Edge
	start, size := 0, 0
	for i, e := range edges {
		size += len(e.Src) + len(e.SrcLabel) + len(e.Dst) + len(e.DstLabel) + len(e.Type) + 40
		if size >= remoteChunkBytes {
			chunks = append(chunks, edges[start:i+1])
			start, size = i+1, 0
		}
	}
	if start < len(edges) {
		chunks = append(chunks, edges[start:])
	}
	return chunks
}

// remoteEvent is one admitted control message (register/unregister)
// destined for a remote slot, retained until it can never be needed by
// a reconnect replay again.
type remoteEvent struct {
	seq  uint64
	kind msgKind
	msg  message
	reg  *remoteEvent // unregister: the registration it retires

	acked   bool // done received; its matches were delivered
	sent    bool // sent on the current connection
	replied bool // reply channel satisfied
}

// remoteSpan tracks one edge batch enqueued to the slot and not yet
// acknowledged; its minTS pins the EdgeLog for replay.
type remoteSpan struct {
	base  uint64
	end   uint64
	minTS int64
}

// inflightFrame is one frame sent on the current connection whose done
// has not arrived; matches buffer here until it does.
type inflightFrame struct {
	id        uint64
	kind      msgKind
	ev        *remoteEvent
	base, end uint64 // msgEdges
	suppress  bool
	closing   bool
	matches   []Match
	snapData  []byte // msgCheckpoint: the snapshot frame's payload
	sentAt    int64  // telemetry.now at push; ack round-trip = done pop - sentAt
}

// remoteSlot is the router-side proxy for one remote shard slot.
type remoteSlot struct {
	w          *worker
	addr       string
	pendingCap int

	// pin caches pinFloorLocked so the router's ingest path reads it
	// with one atomic load instead of taking mu and scanning events on
	// every windowed batch; recomputed whenever events or the span head
	// change (control admissions, retirements, acknowledgments).
	pin atomic.Int64

	// cover caches the snapshot's stream position (MaxUint64 while no
	// snapshot exists) so the router's ingest-path trim reads the
	// seq-based pin with one atomic load, like pin.
	cover atomic.Uint64

	mu           sync.Mutex
	frameID      uint64
	events       []*remoteEvent          // admitted, non-retired, seq order
	regs         map[string]*remoteEvent // live registration by name
	liveRegs     int
	spans        []remoteSpan
	deliveredEnd uint64
	inflight     []inflightFrame

	// The latest engine snapshot the worker produced: the opaque image,
	// the stream position it covers (deliveredEnd when its checkpoint
	// was acknowledged), and the replica filter it embeds. A reconnect
	// restores it and replays only the log tail past snapSeq.
	snap          []byte
	snapSeq       uint64
	snapUniversal bool
	snapTypes     []string
	// snapGen counts snapshot adoptions. A migration's drain barrier
	// keys off it: requesting a checkpoint and waiting for the
	// generation to advance (with everything acknowledged) proves the
	// current snapshot serialized the engine at the barrier's stream
	// position — the image the migration extracts the query from.
	snapGen uint64
	// ackUniversal/ackTypes track the replica filter as of the last
	// acknowledged control event — exactly what a snapshot taken at the
	// current pipeline position embeds. Recorded at checkpoint
	// acknowledgment so the rebuild's admits-union always includes the
	// snapshot engine's own filter.
	ackUniversal bool
	ackTypes     []string

	// hospice, when non-nil, replaces the TCP dial with an in-process
	// dshard.Server over a net.Pipe: the failover engine a dead slot's
	// state is rebuilt into (see Config.RedialBudget). Touched only by
	// the slot goroutine.
	hospice *dshard.Server

	// peerV1 flips (sticky) when a v2 hello handshake fails after the
	// dial succeeded — the signature of an old sgshard closing the
	// connection on an unknown protocol version. Every later dial on
	// this slot speaks v1. Correctness is identical either way; only
	// wire compactness is lost, so a rare mis-diagnosed transient
	// failure during the handshake window costs nothing but bytes.
	peerV1 atomic.Bool

	// Wire telemetry (registerMetrics). liveConn tracks the current
	// connection so scrape-time wire totals can add its live counters
	// to the closed-connection accumulators below.
	connects *metrics.Counter
	replayed *metrics.Counter
	ackRTT   *metrics.AtomicHistogram
	liveConn atomic.Pointer[dshard.Conn]
	closedBytesIn, closedBytesOut,
	closedRawBytesIn, closedRawBytesOut,
	closedFramesIn, closedFramesOut atomic.Int64
}

// registerMetrics wires the slot's dshard series into the router
// registry: connect/replay counters, ack round-trip, and scrape-time
// wire byte/frame totals folding the live connection into the closed
// accumulators.
func (rs *remoteSlot) registerMetrics(t *telemetry) {
	sh := strconv.Itoa(rs.w.id)
	rs.connects = t.reg.Counter("sg_dshard_connects_total", "shard", sh)
	rs.replayed = t.reg.Counter("sg_dshard_replayed_edges_total", "shard", sh)
	rs.ackRTT = t.reg.Histogram("sg_dshard_ack_rtt_ns", "shard", sh)
	wire := func(acc *atomic.Int64, live func(dshard.ConnStats) int64) func() int64 {
		return func() int64 {
			v := acc.Load()
			if c := rs.liveConn.Load(); c != nil {
				v += live(c.Stats())
			}
			return v
		}
	}
	t.reg.CounterFunc("sg_dshard_bytes_in_total", wire(&rs.closedBytesIn, func(s dshard.ConnStats) int64 { return s.BytesIn }), "shard", sh)
	t.reg.CounterFunc("sg_dshard_bytes_out_total", wire(&rs.closedBytesOut, func(s dshard.ConnStats) int64 { return s.BytesOut }), "shard", sh)
	t.reg.CounterFunc("sg_dshard_raw_bytes_in_total", wire(&rs.closedRawBytesIn, func(s dshard.ConnStats) int64 { return s.RawBytesIn }), "shard", sh)
	t.reg.CounterFunc("sg_dshard_raw_bytes_out_total", wire(&rs.closedRawBytesOut, func(s dshard.ConnStats) int64 { return s.RawBytesOut }), "shard", sh)
	t.reg.CounterFunc("sg_dshard_frames_in_total", wire(&rs.closedFramesIn, func(s dshard.ConnStats) int64 { return s.FramesIn }), "shard", sh)
	t.reg.CounterFunc("sg_dshard_frames_out_total", wire(&rs.closedFramesOut, func(s dshard.ConnStats) int64 { return s.FramesOut }), "shard", sh)
	// Dictionary gauges describe the CURRENT connection (dictionaries
	// are per connection by design — a reconnect starts empty), so
	// they read the live conn only and report 0 while disconnected.
	dict := func(live func(dshard.ConnStats) int64) func() int64 {
		return func() int64 {
			if c := rs.liveConn.Load(); c != nil {
				return live(c.Stats())
			}
			return 0
		}
	}
	t.reg.GaugeFunc("sg_dshard_dict_entries_out", dict(func(s dshard.ConnStats) int64 { return s.DictEntriesOut }), "shard", sh)
	t.reg.GaugeFunc("sg_dshard_dict_bytes_out", dict(func(s dshard.ConnStats) int64 { return s.DictBytesOut }), "shard", sh)
	t.reg.GaugeFunc("sg_dshard_dict_entries_in", dict(func(s dshard.ConnStats) int64 { return s.DictEntriesIn }), "shard", sh)
	t.reg.GaugeFunc("sg_dshard_dict_bytes_in", dict(func(s dshard.ConnStats) int64 { return s.DictBytesIn }), "shard", sh)
}

// noteConnClosed folds a finished connection's wire counters into the
// closed accumulators (exactly once per connection) and clears the
// live pointer.
func (rs *remoteSlot) noteConnClosed(c *dshard.Conn) {
	if c == nil || !rs.liveConn.CompareAndSwap(c, nil) {
		return
	}
	st := c.Stats()
	rs.closedBytesIn.Add(st.BytesIn)
	rs.closedBytesOut.Add(st.BytesOut)
	rs.closedRawBytesIn.Add(st.RawBytesIn)
	rs.closedRawBytesOut.Add(st.RawBytesOut)
	rs.closedFramesIn.Add(st.FramesIn)
	rs.closedFramesOut.Add(st.FramesOut)
}

func newRemoteSlot(w *worker, addr string, pendingCap int) *remoteSlot {
	rs := &remoteSlot{w: w, addr: addr, pendingCap: pendingCap, regs: make(map[string]*remoteEvent)}
	rs.pin.Store(math.MaxInt64)
	rs.cover.Store(math.MaxUint64)
	rs.ackUniversal = !w.r.filtering
	return rs
}

// noteRegister records an admitted registration event. Called under
// the router's ingestMu, before the message is enqueued, so a
// concurrent rebuild can never miss an admitted event.
func (rs *remoteSlot) noteRegister(msg *message) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	ev := &remoteEvent{seq: msg.seq, kind: msgRegister, msg: *msg}
	msg.revent = ev
	ev.msg.revent = ev
	rs.events = append(rs.events, ev)
	rs.regs[msg.name] = ev
	rs.liveRegs++
	rs.recomputePinLocked()
}

// noteUnregister records an admitted removal event (same contract as
// noteRegister).
func (rs *remoteSlot) noteUnregister(msg *message) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	ev := &remoteEvent{seq: msg.seq, kind: msgUnregister, msg: *msg}
	msg.revent = ev
	ev.msg.revent = ev
	rs.events = append(rs.events, ev)
	// The registration may already be gone: its register frame can have
	// errored (and been retired) while this Unregister raced the
	// Register's reply. Only a live entry pairs and decrements.
	if reg, ok := rs.regs[msg.name]; ok {
		ev.reg = reg
		delete(rs.regs, msg.name)
		rs.liveRegs--
	}
}

// noteEnqueuedEdges records an admitted edge batch (under ingestMu,
// before the enqueue).
func (rs *remoteSlot) noteEnqueuedEdges(base, end uint64, minTS int64) {
	rs.mu.Lock()
	rs.spans = append(rs.spans, remoteSpan{base: base, end: end, minTS: minTS})
	if len(rs.spans) == 1 {
		// Appending behind an existing head leaves the floor unchanged;
		// only a new head can lower it. Keeps the per-batch ingest cost
		// O(1) instead of O(live registrations).
		rs.recomputePinLocked()
	}
	rs.mu.Unlock()
}

// pinFloor reports the oldest timestamp the EdgeLog must retain for
// this slot: the window floor of every uncovered registration (a
// reconnect re-backfills from the registration floor until a snapshot
// covers it) and the oldest unacknowledged batch. MaxInt64 when
// nothing is pinned. Lock-free — the router calls it on every windowed
// ingest.
func (rs *remoteSlot) pinFloor() int64 { return rs.pin.Load() }

// coveredSeq reports the stream position the slot's engine snapshot
// covers — the EdgeLog must retain every segment past it for the
// reconnect tail replay, which must be gap-free (a skipped batch would
// shift the restored engine's eviction clock off the serial schedule).
// MaxUint64 while no snapshot exists: then nothing is pinned by seq
// and the slot's entitlement is purely the timestamp floor above.
// Lock-free, read on every windowed ingest.
func (rs *remoteSlot) coveredSeq() uint64 { return rs.cover.Load() }

// recomputePinLocked refreshes the cached pin floor. Caller holds
// rs.mu.
func (rs *remoteSlot) recomputePinLocked() {
	floor := int64(math.MaxInt64)
	for _, ev := range rs.events {
		if ev.kind == msgRegister && ev.msg.minTS < floor {
			floor = ev.msg.minTS
		}
	}
	if len(rs.spans) > 0 && rs.spans[0].minTS < floor {
		floor = rs.spans[0].minTS
	}
	rs.pin.Store(floor)
}

// oldestUnackedBase reports the base seq of the oldest unacknowledged
// edge batch (MaxUint64 when none): the durable log must retain from
// it onward so a reconnect replay can resend those batches. Not a hot
// path — only the checkpoint round reads it.
func (rs *remoteSlot) oldestUnackedBase() uint64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if len(rs.spans) == 0 {
		return math.MaxUint64
	}
	return rs.spans[0].base
}

func (rs *remoteSlot) pendingSpans() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.spans)
}

// retire removes an event (and, for an acknowledged unregister, its
// paired registration) from the replay set. Caller holds rs.mu.
func (rs *remoteSlot) retireLocked(ev *remoteEvent) {
	drop := func(target *remoteEvent) {
		for i, e := range rs.events {
			if e == target {
				rs.events = append(rs.events[:i], rs.events[i+1:]...)
				return
			}
		}
	}
	drop(ev)
	if ev.kind == msgUnregister && ev.reg != nil {
		drop(ev.reg)
	}
	if ev.kind == msgRegister {
		// A failed registration: it never took effect remotely.
		if rs.regs[ev.msg.name] == ev {
			delete(rs.regs, ev.msg.name)
			rs.liveRegs--
		}
	}
	rs.recomputePinLocked()
}

// recvMsg carries one server frame from the reader goroutine.
type recvMsg struct {
	match *dshard.Match
	done  *dshard.Done
	snap  *dshard.Snapshot
}

// rebuildResult reports a finished rebuild: the log position replay
// covered (resuming live sends skip anything at or below it).
type rebuildResult struct {
	sentEnd uint64
	err     error
}

// run is the proxy's slot goroutine: the remote counterpart of
// worker.run.
func (rs *remoteSlot) run() {
	w := rs.w
	defer w.r.wg.Done()
	var (
		conn        *dshard.Conn
		recv        chan recvMsg
		redial      <-chan time.Time = time.After(0)
		backoff                      = remoteRedialMin
		rebuilding  bool
		rebuildDone chan rebuildResult
		sentEnd     uint64
		inClosed    bool
		closeSent   bool
		dialFails   int // consecutive dial failures, vs Config.RedialBudget
	)
	drop := func() {
		if conn != nil {
			rs.noteConnClosed(conn)
			conn.Close()
			conn = nil
		}
		if rebuilding {
			// The rebuild goroutine aborts promptly now that the
			// connection is closed; wait for it so no stale frame can
			// land in the inflight FIFO after connLost clears it.
			<-rebuildDone
			rebuilding = false
		}
		if recv != nil {
			// The reader exits on the closed connection; drain whatever
			// it has buffered (or is blocked sending) so it can.
			go func(ch chan recvMsg) {
				for range ch {
				}
			}(recv)
			recv = nil
		}
		closeSent = false
		rs.connLost()
		redial = time.After(backoff)
		if backoff *= 2; backoff > remoteRedialMax {
			backoff = remoteRedialMax
		}
	}
	for {
		// Admit new input only when connected-and-settled and under the
		// pending cap; a full slot queue then backpressures the router,
		// exactly like a slow local shard.
		var inCh chan message
		if !inClosed && !rebuilding && rs.pendingSpans() < rs.pendingCap {
			inCh = w.in
		}
		if inClosed && conn != nil && !rebuilding && !closeSent && rs.drained() {
			id := rs.pushInflight(inflightFrame{kind: msgEdges, closing: true})
			if err := conn.WriteCloseStream(dshard.CloseStream{Frame: id, FinalSeq: w.r.seq.Load()}); err != nil {
				drop()
				continue
			}
			closeSent = true
		}
		if inClosed && conn == nil && rs.drained() && rs.idle() {
			// Nothing was ever entrusted to the remote that still
			// matters; no need to reconnect just to say goodbye.
			rs.finish(nil)
			return
		}

		select {
		case msg, ok := <-inCh:
			if !ok {
				inClosed = true
				continue
			}
			if msg.kind == msgEdges && msg.enq != 0 {
				w.queueWait.Record(w.r.tel.now() - msg.enq)
			}
			if !rs.sendLive(conn, msg, &sentEnd) {
				drop()
			}
		case rm, ok := <-recv:
			if !ok {
				drop()
				continue
			}
			fin, ok := rs.handleRecv(rm)
			if !ok {
				drop()
				continue
			}
			if fin {
				rs.finish(conn)
				return
			}
		case res := <-rebuildDone:
			rebuilding = false
			if res.err != nil {
				drop()
				continue
			}
			sentEnd = res.sentEnd
		case <-redial:
			redial = nil
			c, err := rs.connect()
			if err != nil {
				if budget := w.r.cfg.RedialBudget; budget > 0 && rs.hospice == nil {
					if dialFails++; dialFails >= budget {
						// The peer is declared dead: adopt an in-process
						// hospice engine so the slot's snapshot and
						// replay entitlement can be rebuilt (no match
						// lost), and ask the router to evacuate its
						// registrations to the surviving slots.
						rs.hospice = dshard.NewServer()
						w.r.tel.failovers.Inc()
						go w.r.failoverEvacuate(w)
						redial = time.After(0)
						continue
					}
				}
				redial = time.After(backoff)
				if backoff *= 2; backoff > remoteRedialMax {
					backoff = remoteRedialMax
				}
				continue
			}
			dialFails = 0
			backoff = remoteRedialMin
			conn = c
			rs.connects.Inc()
			rs.liveConn.Store(c)
			recv = make(chan recvMsg, remoteRecvBuffer)
			go rs.reader(conn, recv)
			rebuilding = true
			rebuildDone = make(chan rebuildResult, 1)
			go rs.rebuild(conn, rebuildDone)
		}
	}
}

// dial opens the slot's transport: TCP to the configured peer, or a
// net.Pipe into the in-process hospice server after a failover. Each
// connect gets a fresh pipe — a connection is an engine lifetime on
// the server side, exactly as over TCP.
func (rs *remoteSlot) dial() (net.Conn, error) {
	if rs.hospice != nil {
		client, server := net.Pipe()
		if err := rs.hospice.ServeConn(server); err != nil {
			client.Close()
			return nil, err
		}
		return client, nil
	}
	return net.DialTimeout("tcp", rs.addr, remoteDialTimeout)
}

// finish closes the slot down after the close barrier (or when no
// remote state exists): bundles close so an ordered merge completes.
func (rs *remoteSlot) finish(conn *dshard.Conn) {
	if rs.w.bundles != nil {
		close(rs.w.bundles)
	}
	if conn != nil {
		rs.noteConnClosed(conn)
		conn.Close()
	}
	if rs.hospice != nil {
		rs.hospice.Close()
	}
}

// drained reports whether every admitted message has been acknowledged.
func (rs *remoteSlot) drained() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if len(rs.spans) > 0 || len(rs.inflight) > 0 {
		return false
	}
	for _, ev := range rs.events {
		if !ev.acked {
			return false
		}
	}
	return true
}

// idle reports whether the remote holds no state worth a final close
// barrier: no live registrations means no queries, hence no pending
// repairs and no matches to flush.
func (rs *remoteSlot) idle() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.liveRegs == 0
}

// connLost resets per-connection state: unacknowledged frames are
// forgotten (their buffered matches with them — they will be
// regenerated by the replay) and every event becomes resendable.
func (rs *remoteSlot) connLost() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.inflight = rs.inflight[:0]
	for _, ev := range rs.events {
		ev.sent = false
	}
}

// connect dials and runs the hello handshake. A v2 hello offers the
// configured capability set and waits for the server's hello-ack; an
// ack failure after a successful dial marks the peer as v1 (sticky,
// see remoteSlot.peerV1) so the redial loop's next attempt speaks the
// legacy protocol. A v1 hello expects no ack.
func (rs *remoteSlot) connect() (*dshard.Conn, error) {
	c, err := rs.dial()
	if err != nil {
		return nil, err
	}
	cn := dshard.NewConn(c)
	w := rs.w
	legacy := rs.peerV1.Load() || w.r.cfg.Wire == WireLegacy
	version := uint64(dshard.ProtocolVersion)
	var want uint64
	if legacy {
		version = dshard.ProtocolVersionLegacy
	} else {
		want = dshard.CapDict | dshard.CapCompress
		if w.r.cfg.Wire == WireDictOnly {
			want = dshard.CapDict
		}
	}
	err = cn.WriteHello(dshard.Hello{
		Version:         version,
		Slot:            w.id,
		Window:          w.r.cfg.Window,
		EvictEvery:      w.r.cfg.EvictEvery,
		UniversalFilter: !w.r.filtering,
		Caps:            want,
	})
	if err != nil {
		cn.Close()
		return nil, err
	}
	if legacy {
		return cn, nil
	}
	// The ack must arrive before any stream traffic; bound the wait so
	// a peer that silently ignores v2 hellos cannot wedge the slot.
	c.SetReadDeadline(time.Now().Add(remoteDialTimeout))
	typ, body, err := cn.ReadFrame()
	if err != nil || typ != dshard.FrameHelloAck {
		// The dial worked but the handshake did not: an old server
		// either closed on the unknown version or answered with
		// something else. Fall back to v1 permanently — worst case a
		// mis-diagnosed transient costs wire compactness, never
		// correctness.
		rs.peerV1.Store(true)
		cn.Close()
		if err == nil {
			err = fmt.Errorf("dshard handshake: unexpected frame 0x%02x", typ)
		}
		return nil, err
	}
	ack, err := dshard.DecodeHelloAck(body)
	if err != nil {
		rs.peerV1.Store(true)
		cn.Close()
		return nil, err
	}
	c.SetReadDeadline(time.Time{})
	cn.Negotiate(ack.Caps & want)
	return cn, nil
}

// reader pumps server frames into recv until the connection dies.
func (rs *remoteSlot) reader(conn *dshard.Conn, recv chan recvMsg) {
	defer close(recv)
	for {
		typ, body, err := conn.ReadFrame()
		if err != nil {
			return
		}
		switch typ {
		case dshard.FrameMatch:
			m, err := conn.DecodeMatch(body)
			if err != nil {
				return
			}
			recv <- recvMsg{match: &m}
		case dshard.FrameDone:
			d, err := dshard.DecodeDone(body)
			if err != nil {
				return
			}
			recv <- recvMsg{done: &d}
		case dshard.FrameSnapshot:
			m, err := dshard.DecodeSnapshot(body)
			if err != nil {
				return
			}
			// Data aliases the connection read buffer; the slot retains
			// the snapshot across frames (and connections), so copy.
			m.Data = append([]byte(nil), m.Data...)
			recv <- recvMsg{snap: &m}
		default:
			return
		}
	}
}

func (rs *remoteSlot) pushInflight(f inflightFrame) uint64 {
	f.sentAt = rs.w.r.tel.now()
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.frameID++
	f.id = rs.frameID
	rs.inflight = append(rs.inflight, f)
	return f.id
}

// sendLive translates one queue message into a frame on the current
// connection. Messages already covered by the rebuild replay (or
// consumed while disconnected — the log retains them for the next
// rebuild) are skipped. Returns false when the connection broke.
func (rs *remoteSlot) sendLive(conn *dshard.Conn, msg message, sentEnd *uint64) bool {
	switch msg.kind {
	case msgEdges:
		end := msg.baseSeq + uint64(len(msg.edges))
		if conn == nil || end <= *sentEnd {
			return true
		}
		*sentEnd = end
		return rs.sendEdges(conn, msg.baseSeq, msg.edges, 0)
	case msgRegister, msgUnregister:
		ev := msg.revent
		rs.mu.Lock()
		skip := conn == nil || ev.sent || ev.acked
		if !skip {
			ev.sent = true
		}
		rs.mu.Unlock()
		if skip {
			return true
		}
		return rs.sendEvent(conn, ev, false)
	case msgCheckpoint:
		if conn == nil {
			// Nothing to snapshot against; the next cadence round (or
			// the round after the reconnect) re-requests.
			return true
		}
		id := rs.pushInflight(inflightFrame{kind: msgCheckpoint})
		return conn.WriteCheckpoint(dshard.Checkpoint{Frame: id}) == nil
	}
	return true
}

// sendEdges writes one admitted (or replayed) batch as one or more
// edge frames, each under the chunk-size bound, with per-chunk
// delivery state: chunks ending at or below delivered are suppressed
// (their matches were already delivered on an earlier connection).
func (rs *remoteSlot) sendEdges(conn *dshard.Conn, base uint64, edges []stream.Edge, delivered uint64) bool {
	for _, chunk := range splitEdgesForWire(edges) {
		end := base + uint64(len(chunk))
		suppress := end <= delivered
		id := rs.pushInflight(inflightFrame{kind: msgEdges, base: base, end: end, suppress: suppress})
		if conn.WriteEdges(dshard.Edges{Frame: id, Suppress: suppress, BaseSeq: base, Edges: chunk}) != nil {
			return false
		}
		base = end
	}
	return true
}

// sendEvent writes one control frame; suppress marks a replayed event
// whose matches were already delivered. A register whose backfill
// exceeds the chunk bound is split: the register frame carries the
// first chunk, continuation frames the rest, back-to-back before any
// other traffic.
func (rs *remoteSlot) sendEvent(conn *dshard.Conn, ev *remoteEvent, suppress bool) bool {
	if ev.kind == msgRegister {
		wr := rs.wireRegister(ev, suppress)
		var rest [][]stream.Edge
		if chunks := splitEdgesForWire(wr.Backfill); len(chunks) > 1 {
			wr.Backfill, rest = chunks[0], chunks[1:]
		}
		wr.Frame = rs.pushInflight(inflightFrame{kind: msgRegister, ev: ev, suppress: suppress})
		if conn.WriteRegister(wr) != nil {
			return false
		}
		for _, chunk := range rest {
			id := rs.pushInflight(inflightFrame{kind: msgBackfill})
			if conn.WriteBackfill(dshard.BackfillChunk{Frame: id, Name: ev.msg.name, Edges: chunk}) != nil {
				return false
			}
		}
		return true
	}
	id := rs.pushInflight(inflightFrame{kind: msgUnregister, ev: ev, suppress: suppress})
	m := ev.msg
	return conn.WriteUnregister(dshard.Unregister{
		Frame: id, Suppress: suppress, Name: m.name, Seq: m.seq,
		FilterUniversal: m.postUniversal, FilterTypes: m.postTypes,
		Migrate: m.migrate,
	}) == nil
}

// wireRegister builds the register frame (frame id assigned by the
// caller), recomputing the backfill payload from the current log
// snapshot: every logged edge before the registration, at or above its
// window floor, whose type the registration newly needs. The log is
// pinned at the registration floor for as long as the registration
// lives, so a reconnect replay finds the same edges.
func (rs *remoteSlot) wireRegister(ev *remoteEvent, suppress bool) dshard.Register {
	m := ev.msg
	out := dshard.Register{
		Suppress: suppress, Name: m.name, Seq: m.seq, Rank: m.rank,
		Query: m.q.String(), Strategy: int(m.cfg.Strategy),
		HasLeaves: m.cfg.Leaves != nil, Leaves: m.cfg.Leaves,
		MaxMatches: m.cfg.MaxMatchesPerSearch, MaxWork: m.cfg.MaxWorkPerEdge,
		MaxSteps: m.cfg.MaxStepsPerSearch, Workers: m.cfg.BatchWorkers,
		FilterUniversal: m.postUniversal, FilterTypes: m.postTypes,
		// A migration's state image rides every (re)send of the frame:
		// a reconnect replay re-registers onto a fresh engine, which
		// needs the transplant again.
		State: m.state,
	}
	var need func(string) bool
	switch {
	case m.needAll:
		held := make(map[string]bool, len(m.heldTypes))
		for _, tp := range m.heldTypes {
			held[tp] = true
		}
		need = func(tp string) bool { return !held[tp] }
	case len(m.needTypes) > 0:
		added := make(map[string]bool, len(m.needTypes))
		for _, tp := range m.needTypes {
			added[tp] = true
		}
		need = func(tp string) bool { return added[tp] }
	}
	if need != nil {
		rs.w.r.log.Replay(m.seq, m.minTS, func(se stream.Edge, _ uint64) bool {
			if need(se.Type) {
				out.Backfill = append(out.Backfill, se)
			}
			return true
		})
	}
	if m.migrate {
		// Backfill edges shipped for a migration target, counted per
		// send (a reconnect replay ships them again).
		rs.w.r.tel.migBackfill.Add(int64(len(out.Backfill)))
	}
	return out
}

// rebuild replays the slot's whole retained entitlement — control
// events interleaved with EdgeLog batches in arrival-seq order — onto
// a fresh connection, reconstructing the remote engine's state
// exactly. Runs on its own goroutine so acknowledgments and matches
// stream back concurrently; the main loop does not send live traffic
// until it finishes.
func (rs *remoteSlot) rebuild(conn *dshard.Conn, done chan rebuildResult) {
	// replayAdmit over-approximates every replica-filter state the
	// replay passes through: each retained control event carries a full
	// post-change filter snapshot, every live registration is retained,
	// and retained register events precede their unregisters — so the
	// union of the events' post-filters (plus the current gate, for the
	// universal modes) admits every edge any replayed filter state
	// would. Segments admitting nothing under it are skipped, keeping
	// reconnect traffic footprint-proportional, exactly like the
	// router-side gate on the live path: the worker's evolving filter
	// would drop every edge of such a segment anyway, and a skipped
	// segment advances no flush barrier (no admitted edges).
	//
	// The events clone and the log view must form one consistent cut:
	// both are read inside one rs.mu section, and every admission
	// publishes its log append (an atomic view store, under the
	// router's ingest lock) before its note* call takes rs.mu — so if
	// the clone contains an event at seq p, the view contains every
	// segment below p, and any segment or event this cut misses is
	// delivered afterwards, in admission order, by the live queue
	// (sendLive skips exactly what the cut covered).
	rs.mu.Lock()
	events := append([]*remoteEvent(nil), rs.events...)
	spans := append([]remoteSpan(nil), rs.spans...)
	delivered := rs.deliveredEnd
	snap := rs.snap
	snapSeq := rs.snapSeq
	snapUniversal := rs.snapUniversal
	snapTypes := append([]string(nil), rs.snapTypes...)
	var segs []logBatch
	var logEnd uint64
	rs.w.r.log.EachSegment(func(edges []stream.Edge, base uint64) bool {
		segs = append(segs, logBatch{edges: edges, base: base})
		logEnd = base + uint64(len(edges))
		return true
	})
	rs.mu.Unlock()

	fail := func(err error) { done <- rebuildResult{err: err} }
	if snap != nil {
		// Restore the snapshot before any replayed traffic, then replay
		// only the tail past its position. The covered log prefix is
		// dropped here (a straddling segment is sliced — snapSeq is a
		// wire-chunk boundary, which may fall mid-batch); every retained
		// control event is uncovered and therefore at seq >= snapSeq, so
		// the seq-interleaved walk below is unchanged.
		id := rs.pushInflight(inflightFrame{kind: msgRestore})
		if conn.WriteRestore(dshard.Restore{Frame: id, Data: snap}) != nil {
			fail(net.ErrClosed)
			return
		}
		for len(segs) > 0 {
			end := segs[0].base + uint64(len(segs[0].edges))
			if end <= snapSeq {
				segs = segs[1:]
				continue
			}
			if segs[0].base < snapSeq {
				segs[0] = logBatch{edges: segs[0].edges[snapSeq-segs[0].base:], base: snapSeq}
			}
			break
		}
	}

	replayUniversal := !rs.w.r.filtering || snapUniversal
	replayTypes := make(map[string]bool)
	for _, tp := range snapTypes {
		// The snapshot engine's own filter: a tail segment it admits
		// must replay even when no retained control event covers it.
		replayTypes[tp] = true
	}
	for _, ev := range events {
		if ev.msg.postUniversal {
			replayUniversal = true
			break
		}
		for _, tp := range ev.msg.postTypes {
			replayTypes[tp] = true
		}
	}
	// Everything from the oldest unacknowledged span onward replays
	// unconditionally: a span MUST eventually be acknowledged (it holds
	// the close barrier open and pins the log), and its admitting gate
	// state can have vanished from the retained events — a registration
	// that widened the gate, admitted a batch in its reply gap, and
	// then errored remotely leaves a span no retained filter covers.
	// The tail is bounded by Config.RemotePending, so the unfiltered
	// replay cost is bounded too.
	unackedBase := uint64(math.MaxUint64)
	if len(spans) > 0 {
		unackedBase = spans[0].base
	}
	admits := func(seg logBatch) bool {
		if replayUniversal || seg.base+uint64(len(seg.edges)) > unackedBase {
			return true
		}
		for _, se := range seg.edges {
			if replayTypes[se.Type] {
				return true
			}
		}
		return false
	}

	si := 0
	for _, ev := range events {
		for si < len(segs) && segs[si].base < ev.seq {
			if admits(segs[si]) && !rs.sendSegment(conn, segs[si], delivered) {
				fail(net.ErrClosed)
				return
			}
			si++
		}
		rs.mu.Lock()
		suppress := ev.acked
		ev.sent = true
		rs.mu.Unlock()
		if !rs.sendEvent(conn, ev, suppress) {
			fail(net.ErrClosed)
			return
		}
	}
	for ; si < len(segs); si++ {
		if admits(segs[si]) && !rs.sendSegment(conn, segs[si], delivered) {
			fail(net.ErrClosed)
			return
		}
	}
	done <- rebuildResult{sentEnd: logEnd}
}

// logBatch is one EdgeLog segment snapshotted for replay.
type logBatch struct {
	edges []stream.Edge
	base  uint64
}

func (rs *remoteSlot) sendSegment(conn *dshard.Conn, seg logBatch, delivered uint64) bool {
	rs.replayed.Add(int64(len(seg.edges)))
	return rs.sendEdges(conn, seg.base, seg.edges, delivered)
}

// handleRecv dispatches one server frame. It returns (finished,
// ok): finished when the close barrier was acknowledged, !ok on a
// protocol violation (the connection is dropped and rebuilt).
func (rs *remoteSlot) handleRecv(rm recvMsg) (finished, ok bool) {
	w := rs.w
	if rm.match != nil {
		rs.mu.Lock()
		if len(rs.inflight) == 0 || rs.inflight[0].id != rm.match.Frame {
			rs.mu.Unlock()
			return false, false
		}
		rs.inflight[0].matches = append(rs.inflight[0].matches, fromWire(w.id, *rm.match))
		rs.mu.Unlock()
		return false, true
	}
	if rm.snap != nil {
		rs.mu.Lock()
		if len(rs.inflight) == 0 || rs.inflight[0].id != rm.snap.Frame || rs.inflight[0].kind != msgCheckpoint {
			rs.mu.Unlock()
			return false, false
		}
		rs.inflight[0].snapData = rm.snap.Data
		rs.mu.Unlock()
		return false, true
	}
	d := rm.done
	rs.mu.Lock()
	if len(rs.inflight) == 0 || rs.inflight[0].id != d.Frame {
		rs.mu.Unlock()
		return false, false
	}
	f := rs.inflight[0]
	rs.inflight = rs.inflight[1:]
	rs.ackRTT.Record(w.r.tel.now() - f.sentAt)
	var reply chan error
	var replyErr error
	switch {
	case f.closing, f.kind == msgBackfill, f.kind == msgRestore:
		// No stream position and no retained event to settle. (A failed
		// restore never reaches here: the worker kills the connection
		// instead of acknowledging a state it did not adopt, and
		// connLost clears the inflight FIFO.)
	case f.kind == msgCheckpoint:
		rs.adoptSnapshotLocked(f.snapData)
	case f.kind == msgEdges:
		if f.end > rs.deliveredEnd {
			rs.deliveredEnd = f.end
		}
		for len(rs.spans) > 0 && rs.spans[0].end <= f.end {
			rs.spans = rs.spans[1:]
		}
		rs.recomputePinLocked()
	default: // control frame
		ev := f.ev
		first := !ev.acked
		ev.acked = true
		if first {
			if ev.kind == msgUnregister || d.Err != "" {
				rs.retireLocked(ev)
			}
			if d.Err == "" {
				// The worker applied this event's post-filter; a
				// snapshot taken at the current pipeline position will
				// embed it.
				rs.ackUniversal = ev.msg.postUniversal
				rs.ackTypes = ev.msg.postTypes
			}
		}
		if !ev.replied {
			ev.replied = true
			reply = ev.msg.reply
			if d.Err != "" {
				replyErr = remoteRegisterError(d.Err)
			}
		}
		if !first {
			f.matches = nil // matches of an already-delivered event were suppressed
		}
	}
	if !f.suppress && w.bundles == nil {
		// Account the delivery before the span pop becomes visible
		// outside the lock: the durable checkpoint barrier (shard.go's
		// checkpointRound) reads the emitted counter after observing the
		// spans, and must never see an edge unpinned while its matches
		// are still uncounted.
		w.r.emitted.Add(int64(len(f.matches)))
	}
	rs.mu.Unlock()
	if reply != nil {
		reply <- replyErr
	}
	w.replicaLive.Set(d.Live)
	w.replicaStored.Set(d.Stored)
	w.replicaTypes.Set(d.Types)

	// Deliver outside the lock: a full collection channel must
	// backpressure ingest, not deadlock Stats readers.
	if !f.suppress {
		rs.deliver(f)
	}
	return f.closing, true
}

// adoptSnapshotLocked installs a checkpoint's snapshot at the moment
// its done frame pops, when deliveredEnd is exactly the stream
// position the worker's engine had processed when it serialized
// itself (the request pipeline is FIFO over one connection, so every
// edge frame acknowledged before the checkpoint is inside the image
// and everything after it is tail). nil data means the worker skipped
// the snapshot (image over the frame limit): keep the previous one —
// checkpointing is best-effort and the old entitlement stays pinned.
// Caller holds rs.mu.
func (rs *remoteSlot) adoptSnapshotLocked(data []byte) {
	if data == nil {
		return
	}
	rs.snap = data
	rs.snapSeq = rs.deliveredEnd
	rs.snapUniversal = rs.ackUniversal
	rs.snapTypes = append([]string(nil), rs.ackTypes...)
	rs.snapGen++
	rs.cover.Store(rs.snapSeq)
	// Retire every acknowledged control event: acknowledged before the
	// checkpoint means processed before the snapshot was taken, so the
	// image embeds its effect and a reconnect replay no longer needs
	// it. regs and liveRegs are untouched — the registrations are still
	// live, their replay entitlement is just the snapshot now. This is
	// what un-freezes the pin floor: the retired register events'
	// registration-time window floors stop holding the EdgeLog.
	kept := rs.events[:0]
	for _, ev := range rs.events {
		if !ev.acked {
			kept = append(kept, ev)
		}
	}
	for i := len(kept); i < len(rs.events); i++ {
		rs.events[i] = nil
	}
	rs.events = kept
	rs.recomputePinLocked()
}

// deliver forwards one acknowledged frame's matches: per-seq bundles
// in ordered mode, the collection channel otherwise.
func (rs *remoteSlot) deliver(f inflightFrame) {
	w := rs.w
	if w.bundles != nil && f.kind == msgEdges && !f.closing {
		idx := 0
		for seq := f.base; seq < f.end; seq++ {
			b := bundle{seq: seq}
			for idx < len(f.matches) && f.matches[idx].Seq == seq {
				b.matches = append(b.matches, f.matches[idx])
				idx++
			}
			w.matchesEmitted.Add(int64(len(b.matches)))
			w.bundles <- b
		}
		return
	}
	for _, m := range f.matches {
		w.matchesEmitted.Inc()
		w.r.out <- m
		w.r.tel.recordMatch(m.Query, m.Seq)
	}
}

// fromWire converts a protocol match into the runtime's portable form.
func fromWire(shardID int, m dshard.Match) Match {
	out := Match{
		Seq: m.Seq, Shard: shardID, Query: m.Query, rank: m.Rank,
		FirstTS: m.FirstTS, LastTS: m.LastTS,
	}
	if len(m.Bindings) > 0 {
		out.Bindings = make([]Binding, len(m.Bindings))
		for i, b := range m.Bindings {
			out.Bindings[i] = Binding{QueryVertex: b.QueryVertex, DataVertex: b.DataVertex}
		}
	}
	if len(m.Edges) > 0 {
		out.Edges = make([]MatchEdge, len(m.Edges))
		for i, e := range m.Edges {
			out.Edges[i] = MatchEdge{QueryEdge: e.QueryEdge, Src: e.Src, Dst: e.Dst, Type: e.Type, TS: e.TS}
		}
	}
	return out
}

// snapshotGen reports the snapshot adoption count (see snapGen).
func (rs *remoteSlot) snapshotGen() uint64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.snapGen
}

// snapshotCut returns the current snapshot image (nil when none).
// The slice is the adopted copy and must not be mutated.
func (rs *remoteSlot) snapshotCut() []byte {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.snap
}

// replaceSnapshot swaps the retained snapshot image in place (same
// stream position, new contents and embedded filter). The migration
// path uses it to strip an extracted query from the slot's restore
// state BEFORE the migrate-unregister is sent: if the connection dies
// mid-unregister, the reconnect restores the stripped image and
// replays the unregister as a harmless no-op — the query can never be
// resurrected on the source after its state left for the target.
func (rs *remoteSlot) replaceSnapshot(data []byte, universal bool, types []string) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.snap == nil {
		return
	}
	rs.snap = data
	rs.snapUniversal = universal
	rs.snapTypes = append([]string(nil), types...)
}

// retire clears every log pin the slot holds, permanently: a retired
// slot owns no registrations (the caller migrated them away) and will
// never be re-backfilled, so nothing entitles it to retained log
// segments. Without this a retired slot's last snapshot position
// would pin the EdgeLog by seq forever. Called under the router's
// ingestMu, after the slot's queue is closed.
func (rs *remoteSlot) retire() {
	rs.mu.Lock()
	rs.snap = nil
	rs.pin.Store(math.MaxInt64)
	rs.cover.Store(math.MaxUint64)
	rs.mu.Unlock()
}

// remoteRegisterError wraps an engine error string reported by the
// remote worker.
type remoteRegisterError string

func (e remoteRegisterError) Error() string { return string(e) }
