// Package shard implements the query-partitioned sharded runtime: a
// Router spreads registered continuous queries across N shard workers,
// each owning a private windowed graph replica and a single-writer
// core.MultiEngine, fed by per-shard bounded channels and emitting
// completed matches asynchronously on a collection channel.
//
// This is the pipelined successor to core.ParallelMulti's per-edge
// fork/join: the router never waits for a shard to finish an edge
// before accepting the next one, there is no global barrier per edge
// and no serial merge on the hot path — a slow query only ever stalls
// its own shard (and, once that shard's bounded queue fills, the
// producer: backpressure instead of unbounded buffering). Queries —
// not graph partitions — remain the unit of parallelism, which keeps
// exact-match semantics intact: every shard ingests, in arrival
// order, the slice of the stream its queries can match, so each query
// sees exactly the stream a serial core.MultiEngine would have shown
// it (the package tests enforce per-query match-set equality
// differentially).
//
// Replicas are edge-type partitioned. A query's matcher can only ever
// bind data edges whose type appears in the query (its edge-type
// footprint, query.Graph.TypeFootprint), so each shard stores just the
// edges routable to the queries it owns: the router keeps a per-shard
// type gate and never even enqueues an edge on a shard with no
// interest, and the shard's engine filters the remainder
// (core.MultiEngine's replica filter). Queries that cannot be
// statically filtered — wildcard edge types — fall back to full
// replication on their shard. With footprints that partition the type
// alphabet, total replicated storage is ~1x the input instead of
// shards-x; replicas still eliminate cross-shard reads, locks and
// coordination entirely (cf. "Large-scale continuous subgraph queries
// on streams", which partitions work by query structure the same way).
//
// Runtime Register/Unregister keep the replicas exact: the router
// appends every admitted batch to a shared immutable EdgeLog
// (replica.go), and a registration that widens a shard's footprint
// backfills the in-window past of the newly needed types from a
// lock-free log snapshot — ingestion and the other shards never wait.
// An unregistration narrows the footprint and trims the replica.
// Exactness against a serial engine holds for label-consistent
// streams with non-decreasing timestamps (the generators' contract);
// the package's differential tests pin it across shard counts, batch
// splits, and mid-stream register/unregister.
//
// Ordering. By default matches arrive on the collection channel in
// completion order — shards drift apart freely, which is what makes
// the pipeline fast. Config.Ordered enables the deterministic in-seq
// merge: a collector k-way-merges per-shard bundles and delivers
// matches in (arrival seq, query registration) order, byte-identical
// to a serial MultiEngine run. Ordered mode re-introduces a per-edge
// collector-side rendezvous; use it for tests and audits, not for
// throughput.
//
// The collection channel MUST be drained concurrently with ingestion
// (Matches, or the Drain helper): every channel in the pipeline is
// bounded, so an unread match eventually stalls the shards and then
// the router.
package shard

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"streamgraph/internal/core"
	"streamgraph/internal/decompose"
	"streamgraph/internal/edlog"
	"streamgraph/internal/graph"
	"streamgraph/internal/metrics"
	"streamgraph/internal/persist"
	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/stream"
)

// Config parameterizes a Router.
type Config struct {
	// Shards is the worker count (<= 0 selects GOMAXPROCS).
	Shards int
	// QueueLen bounds each shard's ingest queue, in messages (an edge
	// or a batch each); a full queue blocks the producer (default 256).
	QueueLen int
	// OutLen buffers the collection channel (default 1024).
	OutLen int
	// Window is tW, shared by every registered query (0 = unwindowed).
	// Unwindowed filtering mode retains the whole stream in the shared
	// edge log — late registrations are entitled to replay all of it,
	// just as an unwindowed serial engine's graph retains every edge —
	// so total memory is one full copy plus the filtered replicas. Set
	// FullReplicas to drop the log if that trade is wrong for the
	// deployment.
	Window int64
	// EvictEvery forwards to each shard's engine (default 256).
	EvictEvery int
	// Ordered enables the deterministic in-seq merge mode: matches are
	// delivered in (arrival seq, query registration) order, exactly as
	// a serial core.MultiEngine reports them. Ordered mode implies
	// FullReplicas: the merge relies on every shard emitting one bundle
	// per admitted edge, and full processing keeps even the lazy
	// strategies' retrospective repairs on the reference schedule.
	Ordered bool
	// FullReplicas disables edge-type-partitioned replication: every
	// shard receives and stores the whole stream, as in the original
	// runtime. Useful for audits and for measuring what the filtered
	// replicas save.
	FullReplicas bool
	// Remotes lists remote shard worker addresses (host:port, each a
	// cmd/sgshard process speaking the internal/dshard protocol). Every
	// address becomes one shard slot in addition to the Shards local
	// workers; with Remotes set, Shards <= 0 selects zero local workers
	// (an all-remote topology) instead of GOMAXPROCS. Remote slots hold
	// exactly the semantics of local ones — the differential tests pin
	// match sets byte-identical across local, remote and mixed
	// topologies — at the cost of the wire: ingest latency, and a
	// reconnect replay after a connection drop (see internal/dshard and
	// docs/DISTRIBUTED.md).
	Remotes []string
	// RemotePending bounds each remote slot's admitted-but-
	// unacknowledged edge-batch backlog (default 1024). While a remote
	// is disconnected the router keeps admitting up to this many
	// batches (the shared EdgeLog retains them for the reconnect
	// replay); beyond it the slot's queue backpressures ingestion,
	// exactly like a slow local shard.
	RemotePending int
	// Wire selects the dshard wire encoding remote slots negotiate
	// (default WireAuto: dictionary + delta timestamps + compression,
	// with automatic per-slot fallback to the v1 encoding when the
	// peer is an old sgshard). Match results are byte-identical under
	// every mode; only wire compactness differs.
	Wire WireMode

	// DataDir, when set (via Open — New ignores it), makes the runtime
	// durable: every admitted batch is appended to a segment-backed
	// edge log on disk (internal/edlog) and every CheckpointEvery edges
	// the router checkpoints each slot's engine plus its own registry,
	// so a crashed process restarts from snapshot + log tail instead of
	// losing the stream. See docs/PERSISTENCE.md. Durable mode requires
	// Ordered to be false (a restart replays matches at least once, in
	// completion order).
	DataDir string
	// CheckpointEvery is the checkpoint cadence in admitted edges
	// (default 4096). It also paces the remote snapshot requests that
	// bound the reconnect-replay pin — those run whenever the topology
	// has remote slots, durable or not.
	CheckpointEvery int
	// SegmentBytes caps one durable log segment file (default
	// edlog.DefaultSegmentBytes). Tests use small segments to force
	// rotation and trimming on small workloads.
	SegmentBytes int64

	// RedialBudget bounds a remote slot's consecutive failed dial
	// attempts. 0 (the default) keeps the legacy behavior: redial
	// forever, pinning the EdgeLog and eventually backpressuring ingest
	// on the dead slot's pending budget. A positive budget makes the
	// slot fail over instead: after that many consecutive dial
	// failures it adopts an in-process hospice engine (restoring the
	// slot's last snapshot and replaying its entitlement, so no match
	// is lost) and the router live-migrates its registrations to the
	// surviving slots, then retires the slot — unpinning the log with
	// no operator action. See Router.Migrate and docs/DISTRIBUTED.md.
	RedialBudget int
}

// Binding is one resolved vertex of a match: query vertex name to data
// vertex name.
type Binding struct {
	QueryVertex string
	DataVertex  string
}

// MatchEdge is one resolved edge of a match.
type MatchEdge struct {
	QueryEdge int // index into the query's edge list
	Src, Dst  string
	Type      string
	TS        int64
}

// Match is one completed match, resolved into portable name-based form
// inside the owning shard (so it stays valid after the shard's private
// graph evicts the underlying edges) and delivered on the collection
// channel.
type Match struct {
	// Seq is the router-assigned arrival index (0-based) of the stream
	// edge that completed the match.
	Seq uint64
	// Shard is the worker that produced the match.
	Shard int
	// Query is the registered query name.
	Query string

	Bindings []Binding
	Edges    []MatchEdge
	// FirstTS and LastTS delimit τ(g), the match's timespan.
	FirstTS int64
	LastTS  int64

	rank int // global registration rank; orders the in-seq merge
}

// String renders the match compactly.
func (m Match) String() string {
	s := m.Query
	for _, b := range m.Bindings {
		s += " " + b.QueryVertex + "=" + b.DataVertex
	}
	return s
}

// BindingString renders only the bindings ("a=x b=y"), the form the
// TCP server's match lines use.
func (m Match) BindingString() string {
	s := ""
	for _, b := range m.Bindings {
		if s != "" {
			s += " "
		}
		s += b.QueryVertex + "=" + b.DataVertex
	}
	return s
}

// Stats is a point-in-time snapshot of one shard worker.
type Stats struct {
	Shard          int
	Queries        int   // queries owned by this shard
	QueueDepth     int   // ingest messages waiting
	QueueCap       int   // ingest queue capacity
	EdgesRouted    int64 // edges delivered to this shard's queue (post-gate)
	MatchesEmitted int64 // matches this shard pushed to collection

	// ReplicaEdges is the number of edges currently live in this
	// shard's filtered graph replica.
	ReplicaEdges int64
	// ReplicaStored is the cumulative number of edges ever admitted
	// into the replica (gated ingest plus backfill); summed across
	// shards it is the total replication cost of the runtime.
	ReplicaStored int64
	// ReplicaTypes is the number of edge types in the shard's
	// footprint, or -1 when the shard replicates every type (a
	// wildcard query, FullReplicas, or ordered mode).
	ReplicaTypes int64
}

type msgKind int

const (
	msgEdges msgKind = iota
	msgRegister
	msgUnregister
	// msgBackfill never rides the queues; it tags a remote slot's
	// in-flight backfill-continuation frames (remote.go).
	msgBackfill
	// msgCheckpoint asks a slot to capture a durable snapshot of its
	// engine: a local worker writes its slot checkpoint file and
	// replies, a remote slot requests a state snapshot over the wire
	// (remote.go) — which is what retires its replay entitlement and
	// lets the EdgeLog pin advance.
	msgCheckpoint
	// msgRestore never rides the queues; it tags a remote slot's
	// in-flight state-restore frame on a reconnect.
	msgRestore
	// msgMigrateOut asks a local worker to hand over one query: flush
	// the retro barrier, clone the query's live state into a detached
	// engine (persist.CloneQuery), unregister it and narrow the
	// replica, then reply the clone on msg.xout. The clone is the
	// migration package Router.Migrate transplants into the target.
	msgMigrateOut
)

// message is one entry of a shard's ingest queue: a broadcast edge
// batch or a control message (register/unregister) targeted at the
// shard that owns the query. Control messages ride the same queue as
// edges so a registration takes effect at a definite stream position
// on its shard.
type message struct {
	kind    msgKind
	edges   []stream.Edge // msgEdges: shared read-only slice
	baseSeq uint64        // msgEdges: arrival seq of edges[0]
	name    string        // control: query name
	q       *query.Graph  // msgRegister
	cfg     core.Config   // msgRegister
	rank    int           // msgRegister: global registration rank
	fpTypes []string      // control: the query's edge-type footprint
	fpExact bool          // control: false forces full replication
	seq     uint64        // control: stream position (bounds the backfill)
	minTS   int64         // msgRegister: window floor at registration time
	reply   chan error    // control ack (buffered, may be nil for unregister)
	enq     int64         // msgEdges: enqueue instant (telemetry.now), for queue-wait tails

	// Remote-slot fields, computed router-side under ingestMu at the
	// message's admission so a reconnect replay can reproduce the
	// control point exactly (the remote worker cannot read the
	// router's refcounts or log).
	needAll       bool         // msgRegister: backfill everything not in heldTypes
	needTypes     []string     // msgRegister: backfill exactly these types
	heldTypes     []string     // msgRegister: types already replicated (needAll)
	postUniversal bool         // control: replica filter after this point
	postTypes     []string     // control: replica filter after this point
	revent        *remoteEvent // the proxy's retained event record

	// Migration fields (migrate.go). A register carrying xfer (local
	// target) or state (remote target) is the second half of a
	// Router.Migrate handoff; an unregister with migrate set is the
	// first half on a remote source, whose pending retro work was
	// already captured in the snapshot — the worker must not flush it.
	xfer    *core.MultiEngine // msgRegister: clone to transplant (local target)
	state   []byte            // msgRegister: SaveMulti image (remote target)
	migrate bool              // register/unregister: part of a migration
	xout    chan migrateOut   // msgMigrateOut: handoff reply
}

// migrateOut is a local worker's reply to msgMigrateOut: the detached
// single-query clone and the query's registration rank.
type migrateOut struct {
	eng  *core.MultiEngine
	rank int
	err  error
}

// bundle is one edge's worth of matches from one shard (ordered mode
// only); every shard emits exactly one bundle per ingested edge, in
// seq order, which is what makes the k-way merge trivial.
type bundle struct {
	seq     uint64
	matches []Match
}

// Router is the front of the sharded runtime: it assigns queries to
// shards, broadcasts ingested edges to every shard's bounded queue and
// owns the collection channel.
//
// Ingest, IngestBatch, Register and Unregister are safe for concurrent
// use; edges are sequenced in the order the router admits them.
type Router struct {
	cfg       Config
	filtering bool // edge-type-partitioned replicas in effect
	hasRemote bool // at least one remote slot in the topology
	workers   []*worker
	out       chan Match
	log       *EdgeLog // shared immutable edge log (filtering mode or remotes)

	// ingestMu orders everything that enters the shard queues — edge
	// broadcasts, control messages, and the queue close — and is the
	// only lock held across a (potentially blocking, backpressured)
	// queue send. The per-shard gates and the gate interner are also
	// guarded by it: gate changes are serialized against edge admission
	// so a registration's backfill bound is gap-free. Lock order:
	// ingestMu before mu.
	ingestMu  sync.Mutex
	closed    bool                   // guarded by ingestMu
	seq       atomic.Uint64          // written under ingestMu, read lock-free
	gateTypes *graph.Interner        // router-side type ids (ingestMu)
	gateIDs   []graph.TypeID         // per-batch scratch (ingestMu)
	fps       map[string]fprint      // query name -> footprint (ingestMu)
	stats     *selectivity.Collector // full-stream statistics (ingestMu)

	// floors holds the window floor of every in-flight registration
	// (ingestMu): the log must not trim past the oldest one, or a
	// concurrent ingest could drop segments the registration's backfill
	// is entitled to replay. Keyed by a per-registration token.
	floors     map[uint64]int64
	floorToken uint64

	// Durable state (all guarded by ingestMu except the counters).
	dlog       *edlog.Log         // nil unless opened with a DataDir
	dregs      map[string]metaReg // durable registry: what router.meta records
	sinceCkpt  int                // edges admitted since the last checkpoint round
	ckptSeq    uint64             // stream position of the last completed round
	persistErr error              // first durable-write failure; checkpoints stop

	// emitted counts matches handed to the collection channel (or
	// accounted for delivery under a remote slot's lock); consumed
	// counts matches a Drain callback has fully processed. The durable
	// checkpoint barrier waits for consumed to catch emitted before
	// committing a round's metadata, so a checkpoint never covers a
	// match the consumer has not durably seen (shard.go:checkpointRound).
	emitted  atomic.Int64
	consumed atomic.Int64

	// mu guards the registry metadata only and is never held across a
	// queue send, so Stats/Registered stay responsive while a
	// backpressured ingest is blocked.
	mu    sync.Mutex
	order []string // registration order (rank order)
	owner map[string]*worker
	owned map[*worker]int
	rank  int

	wg        sync.WaitGroup // worker goroutines
	mergeDone chan struct{}  // non-nil in ordered mode

	// tel is the router's observability state (telemetry.go): the
	// metrics registry every per-shard/per-query series lives in and
	// the seq→arrival ring behind the match-lag histograms. Always
	// non-nil.
	tel *telemetry
}

// fprint is a registered query's edge-type footprint, retained so
// Unregister can release its gate refcounts.
type fprint struct {
	types []string
	exact bool
}

// worker is one shard slot. A local slot is a goroutine draining its
// bounded queue into a privately owned MultiEngine over a filtered
// graph replica; a remote slot drains the same queue over a TCP
// connection to a remote shard worker (remote.go), leaving eng nil.
// Either way, the router-side state — the ingest gate, the footprint
// refcounts, the queue, the counters — lives here.
type worker struct {
	id      int
	r       *Router
	in      chan message
	bundles chan bundle // ordered mode only
	eng     *core.MultiEngine
	ranks   map[string]int // query name -> global registration rank

	// remote, when non-nil, makes this slot a proxy to a remote shard
	// worker; the engine-side fields (eng, rset, lastEnd) are unused.
	remote *remoteSlot

	// retired marks a slot removed from the topology (RemoveSlot, or a
	// failover evacuation): its queue is closed, it receives no further
	// edges or control messages, and its remote pins are cleared so it
	// can never hold back the EdgeLog. Guarded by ingestMu; slot ids
	// are stable, so a retired slot stays in r.workers as a tombstone.
	retired bool

	// gate is the router-side ingest filter: the edge types this shard
	// has any interest in. Read and written under r.ingestMu only; the
	// TypeSet value itself is immutable (copy-on-write), so swapping it
	// never disturbs a concurrent reader of the old set.
	gate     graph.TypeSet
	gateRefs *replicaSet // router-side footprint refcounts (ingestMu)

	// rset is the worker-goroutine-side copy of the footprint, applied
	// to the engine's replica filter at the queue position where each
	// control message lands.
	rset *replicaSet
	// lastEnd is the arrival seq just past the last edge this shard's
	// engine admitted — the retro flush barrier: pending lazy repairs
	// were created at edge lastEnd-1, and the serial schedule drains
	// them at edge lastEnd, so a control point (register, unregister,
	// close) at stream position p must flush them iff lastEnd < p.
	lastEnd uint64

	// Registry-backed slot series (handles created by
	// telemetry.registerWorker; recording is atomic and lock-free).
	edgesRouted     *metrics.Counter
	edgesGated      *metrics.Counter
	edgesBackfilled *metrics.Counter
	matchesEmitted  *metrics.Counter
	replicaLive     *metrics.Gauge
	replicaStored   *metrics.Gauge
	replicaTypes    *metrics.Gauge
	queueWait       *metrics.AtomicHistogram
	batchTime       *metrics.AtomicHistogram

	// Engine-internals gauges (local slots only), published by the
	// worker goroutine itself after each batch/control message — the
	// engine is single-writer state no scrape may touch directly.
	engEdges, engPartial                                *metrics.Gauge
	treeInserted, treeDeduped, treeEmitted, treeEvicted *metrics.Gauge
	poolGets, poolFresh                                 *metrics.Gauge
}

// New starts a router and its shard workers (local goroutines for the
// first Config.Shards slots, remote proxies for Config.Remotes). The
// runtime is volatile: Config.DataDir is ignored — use Open for the
// durable, crash-recoverable runtime.
func New(cfg Config) *Router {
	r := newRouter(cfg)
	r.start()
	return r
}

// newRouter builds the router and its slots without starting any
// goroutine, so Open can restore durable state into the workers'
// engines first.
func newRouter(cfg Config) *Router {
	if cfg.Shards <= 0 {
		if len(cfg.Remotes) > 0 {
			cfg.Shards = 0 // all-remote topology
		} else {
			cfg.Shards = runtime.GOMAXPROCS(0)
		}
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 256
	}
	if cfg.OutLen <= 0 {
		cfg.OutLen = 1024
	}
	if cfg.RemotePending <= 0 {
		cfg.RemotePending = 1024
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 4096
	}
	r := &Router{
		cfg:       cfg,
		filtering: !cfg.Ordered && !cfg.FullReplicas,
		hasRemote: len(cfg.Remotes) > 0,
		out:       make(chan Match, cfg.OutLen),
		owner:     make(map[string]*worker),
		owned:     make(map[*worker]int),
		tel:       newTelemetry(),
	}
	r.tel.registerRouter(r)
	if r.filtering || r.hasRemote {
		// The log is what a late registration backfills from and what a
		// remote slot replays after a reconnect; the full-stream
		// statistics pin decompositions router-side (a shard's own
		// slice of the stream must never drive one). Both are needed
		// whenever replicas are filtered or any slot is remote.
		r.log = NewEdgeLog()
		r.stats = selectivity.NewCollector()
		r.floors = make(map[uint64]int64)
	}
	if r.filtering {
		r.gateTypes = graph.NewInterner()
		r.fps = make(map[string]fprint)
	}
	for i := 0; i < cfg.Shards+len(cfg.Remotes); i++ {
		w := &worker{
			id:    i,
			r:     r,
			in:    make(chan message, cfg.QueueLen),
			ranks: make(map[string]int),
		}
		if i < cfg.Shards {
			w.eng = core.NewMulti(core.MultiConfig{Window: cfg.Window, EvictEvery: cfg.EvictEvery})
		} else {
			w.remote = newRemoteSlot(w, cfg.Remotes[i-cfg.Shards], cfg.RemotePending)
		}
		r.tel.registerWorker(w)
		if w.remote != nil {
			w.remote.registerMetrics(r.tel)
		}
		if r.filtering {
			// A shard starts with no queries, hence an empty footprint:
			// it receives and stores nothing until one is registered.
			w.gate = graph.NewTypeSet()
			w.gateRefs = newReplicaSet()
			if w.eng != nil {
				w.rset = newReplicaSet()
				w.eng.SetReplicaFilter(nil, false)
			}
		} else {
			w.gate = graph.UniversalTypes()
			w.replicaTypes.Set(-1)
		}
		if cfg.Ordered {
			w.bundles = make(chan bundle, cfg.QueueLen)
		}
		r.workers = append(r.workers, w)
	}
	return r
}

// start launches the worker goroutines (and the ordered merge).
func (r *Router) start() {
	for _, w := range r.workers {
		r.wg.Add(1)
		if w.remote != nil {
			go w.remote.run()
		} else {
			go w.run()
		}
	}
	if r.cfg.Ordered {
		r.mergeDone = make(chan struct{})
		go r.mergeOrdered()
	}
}

// isRemote reports whether the slot proxies a remote shard worker.
func (w *worker) isRemote() bool { return w.remote != nil }

// NumShards returns the worker count, including retired tombstone
// slots (slot ids are stable for the life of the router).
func (r *Router) NumShards() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.workers)
}

// Matches returns the collection channel. It is closed by Close after
// every queued edge has been fully processed — read until closed and
// no match is lost.
func (r *Router) Matches() <-chan Match { return r.out }

// Register assigns the query to the least-loaded shard and registers
// it there, at the current stream position. It blocks until the owning
// shard has drained its queue up to the registration (so a subsequent
// Ingest is guaranteed to be seen by the query) and returns the
// engine's registration error, if any.
//
// In filtering mode the query's edge-type footprint widens the owning
// shard's ingest gate at the same stream position, and the shard
// backfills the in-window past of any newly needed types from the
// shared edge log before acknowledging — so the query observes exactly
// the graph it would have on a full replica. The engine's BatchWorkers
// is forced to 1 unless set: the shards themselves are the axis of
// parallelism, and nesting a candidate-search pool per shard would
// oversubscribe the machine.
func (r *Router) Register(name string, q *query.Graph, cfg core.Config) error {
	if cfg.BatchWorkers == 0 {
		cfg.BatchWorkers = 1
	}
	fpTypes, fpExact := q.TypeFootprint()
	r.ingestMu.Lock()
	if r.closed {
		r.ingestMu.Unlock()
		return fmt.Errorf("shard: router is closed")
	}
	// Checked under ingestMu: AddSlot can flip hasRemote at runtime.
	if cfg.Adaptive != nil && (r.filtering || r.hasRemote) {
		// An adaptive engine re-decomposes from statistics it collects
		// itself, at a cadence of edges it processes — on a filtered
		// replica both would reflect only the shard's slice of the
		// stream, silently diverging from the serial schedule this
		// runtime is pinned to; a remote slot additionally resets those
		// counters on every reconnect replay. Require full replication
		// on a local-only topology for it.
		r.ingestMu.Unlock()
		return fmt.Errorf("shard: adaptive queries require Config.FullReplicas on a local-only topology (a filtered or remote replica would re-decompose from divergent statistics)")
	}
	if r.hasRemote {
		// A remote-destined query crosses the wire as its textual form
		// and is reparsed by the worker; names, labels and types
		// containing whitespace would tokenize differently there than a
		// local engine binds them. Reject them up front — the slot is
		// chosen by load, so any registration in a remote topology must
		// be wire-safe — using the parser's own print/parse fixed point
		// as the test.
		if err := wireSafe(q); err != nil {
			r.ingestMu.Unlock()
			return fmt.Errorf("shard: query %q %w", name, err)
		}
	}
	if (r.filtering || r.hasRemote) && cfg.Leaves == nil {
		// Pin the decomposition here, against full-stream statistics,
		// before the query ever reaches its shard: a filtered shard's
		// own collector only sees the shard's slice of the stream, a
		// remote shard cannot be shipped a live collector at all, and a
		// lazy query's reachable-match set depends on its decomposition
		// — decomposing from divergent statistics would diverge from a
		// serial engine's schedule. Caller-provided statistics are used
		// when given (the same collector a serial engine would have
		// decomposed from); the router's collector otherwise.
		stats := cfg.Stats
		if stats == nil {
			stats = r.stats
		}
		leaves, err := r.decompose(q, cfg.Strategy, stats)
		if err != nil {
			r.ingestMu.Unlock()
			return err
		}
		cfg.Leaves = leaves
		if leaves != nil {
			// The SJ-Tree the shard joins on is this decomposition; its
			// footprint (validated to cover the query) is what the gate
			// and replica filter must admit. It equals the query's own
			// footprint — Footprint checks the coverage that makes that
			// identity hold.
			if fpTypes, fpExact, err = decompose.Footprint(q, leaves); err != nil {
				r.ingestMu.Unlock()
				return err
			}
		}
	}
	r.mu.Lock()
	if _, dup := r.owner[name]; dup {
		r.mu.Unlock()
		r.ingestMu.Unlock()
		return fmt.Errorf("shard: query %q already registered", name)
	}
	var w *worker
	for _, cand := range r.workers {
		if cand.retired {
			continue
		}
		if w == nil || r.owned[cand] < r.owned[w] {
			w = cand
		}
	}
	if w == nil {
		r.mu.Unlock()
		r.ingestMu.Unlock()
		return fmt.Errorf("shard: no live shard slot (all retired)")
	}
	rank := r.rank
	r.rank++
	// Optimistic: recorded before the shard acks, rolled back on error.
	r.owner[name] = w
	r.owned[w]++
	r.order = append(r.order, name)
	r.mu.Unlock()
	var floorToken uint64
	minTS := int64(math.MinInt64)
	trackFloor := r.filtering || w.isRemote()
	msg := message{
		kind: msgRegister, name: name, q: q, cfg: cfg, rank: rank,
		fpTypes: fpTypes, fpExact: fpExact, postUniversal: true,
	}
	if r.filtering {
		// Widen the gate before releasing ingestMu: every edge admitted
		// after the registration message is already gated by the new
		// footprint, and everything before it is in the log — no gap.
		r.fps[name] = fprint{types: fpTypes, exact: fpExact}
		if w.isRemote() {
			// The remote worker cannot read the router's refcounts, so
			// the backfill set ("newly needed" relative to the pre-add
			// footprint) and the post-add filter ride the message.
			msg.needAll, msg.heldTypes, msg.needTypes = w.gateRefs.newlyNeeded(fpTypes, fpExact)
		}
		w.gateRefs.add(fpTypes, fpExact)
		r.rebuildGate(w)
		if w.isRemote() && !w.gateRefs.universal() {
			msg.postUniversal = false
			msg.postTypes = w.gateRefs.typeNames()
		}
	}
	if trackFloor {
		// Capture the window floor NOW, at the registration's stream
		// position — the backfill is entitled to every logged edge at
		// or above it, however far the stream advances before the
		// owning shard executes the backfill — and pin the log against
		// trimming past it until the shard has acknowledged. (A remote
		// slot then keeps its own pin at this floor for the life of the
		// registration: a reconnect replay re-backfills from it.)
		if r.cfg.Window > 0 {
			minTS = r.log.MaxTS() - r.cfg.Window + 1
		}
		r.floorToken++
		floorToken = r.floorToken
		r.floors[floorToken] = minTS
	}
	reply := make(chan error, 1)
	msg.seq = r.seq.Load()
	msg.minTS = minTS
	msg.reply = reply
	if w.isRemote() {
		w.remote.noteRegister(&msg)
	}
	w.in <- msg
	r.ingestMu.Unlock()

	err := <-reply
	if trackFloor {
		r.ingestMu.Lock()
		delete(r.floors, floorToken)
		if err != nil && r.filtering {
			// Harmless over-delivery may have happened in the gap; the
			// worker's engine filter never widened, so those edges were
			// dropped there.
			if fp, ok := r.fps[name]; ok {
				delete(r.fps, name)
				w.gateRefs.remove(fp.types, fp.exact)
				r.rebuildGate(w)
			}
		}
		r.ingestMu.Unlock()
	}
	if err != nil {
		r.mu.Lock()
		// A concurrent Unregister may have already removed the
		// provisional entry; only roll back what is still ours.
		if r.owner[name] == w {
			delete(r.owner, name)
			r.owned[w]--
			for i, n := range r.order {
				if n == name {
					r.order = append(r.order[:i], r.order[i+1:]...)
					break
				}
			}
		}
		r.mu.Unlock()
	}
	if err == nil && r.dlog != nil {
		// A registration is durable once Register returns: record it in
		// the durable registry and commit a checkpoint round now, so a
		// crash after this point can never resurrect the router without
		// the query (the recovery path relies on it — see Open).
		r.ingestMu.Lock()
		r.dregs[name] = metaReg{
			name: name, slot: w.id, rank: rank,
			fpTypes: fpTypes, fpExact: fpExact,
			query: q.String(), cfg: cfg,
		}
		if !r.closed {
			r.checkpointRound()
		}
		r.ingestMu.Unlock()
	}
	return err
}

// decompose computes the strategy's SJ-Tree leaves from the given
// statistics (the router's full-stream collector, or the caller's) —
// the same decomposition a serial MultiEngine registering at this
// stream position would pick. Baseline strategies need none. Caller
// holds ingestMu.
func (r *Router) decompose(q *query.Graph, strategy core.Strategy, stats *selectivity.Collector) ([][]int, error) {
	switch strategy {
	case core.StrategyVF2, core.StrategyIncIso:
		return nil, nil
	case core.StrategySingle, core.StrategySingleLazy:
		return decompose.SingleDecompose(q, stats)
	case core.StrategyPath, core.StrategyPathLazy:
		leaves, _, err := decompose.PathDecompose(q, stats)
		return leaves, err
	case core.StrategyAuto:
		leaves, _, _, err := decompose.Auto(q, stats)
		return leaves, err
	default:
		return nil, fmt.Errorf("shard: unknown strategy %v", strategy)
	}
}

// rebuildGate recomputes a shard's ingest gate from its footprint
// refcounts. Caller holds ingestMu.
func (r *Router) rebuildGate(w *worker) {
	if w.gateRefs.universal() {
		w.gate = graph.UniversalTypes()
		return
	}
	names := w.gateRefs.typeNames()
	ids := make([]graph.TypeID, len(names))
	for i, tp := range names {
		ids[i] = graph.TypeID(r.gateTypes.Intern(tp))
	}
	w.gate = graph.NewTypeSet(ids...)
}

// Unregister removes a query and its partial-match state, blocking
// until the owning shard has processed the removal. In filtering mode
// the owning shard's gate narrows at the same stream position and the
// shard trims replica edges no remaining query can reach.
func (r *Router) Unregister(name string) {
	r.ingestMu.Lock()
	if r.closed {
		r.ingestMu.Unlock()
		return
	}
	r.mu.Lock()
	w, ok := r.owner[name]
	if !ok {
		r.mu.Unlock()
		r.ingestMu.Unlock()
		return
	}
	delete(r.owner, name)
	r.owned[w]--
	for i, n := range r.order {
		if n == name {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.mu.Unlock()
	msg := message{kind: msgUnregister, name: name, seq: r.seq.Load(), postUniversal: true, reply: make(chan error, 1)}
	if fp, tracked := r.fps[name]; tracked {
		delete(r.fps, name)
		w.gateRefs.remove(fp.types, fp.exact)
		r.rebuildGate(w)
		msg.fpTypes, msg.fpExact = fp.types, fp.exact
		if w.isRemote() && !w.gateRefs.universal() {
			msg.postUniversal = false
			msg.postTypes = w.gateRefs.typeNames()
		}
	}
	if w.isRemote() {
		w.remote.noteUnregister(&msg)
	}
	w.in <- msg
	r.ingestMu.Unlock()
	<-msg.reply
	if r.dlog != nil {
		// Mirror Register: the removal is durable once Unregister
		// returns, or a restart would resurrect the query.
		r.ingestMu.Lock()
		delete(r.dregs, name)
		if !r.closed {
			r.checkpointRound()
		}
		r.ingestMu.Unlock()
	}
}

// Registered returns the registered query names in registration order.
func (r *Router) Registered() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// Ingest broadcasts one edge to every shard and returns its arrival
// sequence number. It blocks only when a shard's bounded queue is full
// (backpressure), never on the searches themselves.
func (r *Router) Ingest(se stream.Edge) uint64 {
	return r.IngestBatch([]stream.Edge{se})
}

// IngestBatch routes a batch to every interested shard as one queue
// message (each shard runs its engine's amortized batch pipeline over
// it) and returns the arrival sequence number of the first edge. In
// filtering mode a shard whose gate intersects none of the batch's
// edge types never receives the message at all; the batch is also
// appended to the shared edge log so later registrations can backfill
// it. The slice must not be mutated afterwards — every interested
// shard and the log read it.
func (r *Router) IngestBatch(ses []stream.Edge) uint64 {
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	if r.closed || len(ses) == 0 {
		return r.seq.Load()
	}
	base := r.seq.Load()
	r.seq.Store(base + uint64(len(ses)))
	r.tel.noteArrivals(base, len(ses))
	if r.dlog != nil && r.persistErr == nil {
		// Append to the durable log before any worker can observe the
		// batch, so a checkpoint acknowledging it always finds it on
		// disk. A write failure (disk full, permission flip) stops all
		// further durable progress — appends and checkpoint rounds both
		// — rather than let a later checkpoint cover unlogged edges;
		// the stream keeps flowing in-memory and PersistErr reports it.
		if err := r.dlog.Append(ses, base); err != nil {
			r.persistErr = err
		}
	}
	if r.log != nil {
		r.log.Append(ses, base)
		if r.cfg.Window > 0 {
			// Trim to the window, but never past the floor of an
			// in-flight registration whose backfill has yet to read its
			// log snapshot on the owning shard, nor past what a remote
			// slot is entitled to replay after a reconnect (its
			// uncovered registrations' floors and its unacknowledged
			// batches), nor — by seq — past the oldest remote engine
			// snapshot, whose reconnect tail replay must be gap-free.
			cutoff := r.log.MaxTS() - r.cfg.Window + 1
			keep := ^uint64(0)
			for _, floor := range r.floors {
				if floor < cutoff {
					cutoff = floor
				}
			}
			for _, w := range r.workers {
				if w.remote == nil || w.retired {
					continue
				}
				if floor := w.remote.pinFloor(); floor < cutoff {
					cutoff = floor
				}
				if s := w.remote.coveredSeq(); s < keep {
					keep = s
				}
			}
			r.log.TrimBefore(cutoff, keep)
		}
		r.stats.AddAll(ses)
	}
	if r.filtering {
		// Intern each edge type once per batch; the per-shard gate scan
		// below is then pure bitset probes.
		r.gateIDs = r.gateIDs[:0]
		for _, se := range ses {
			r.gateIDs = append(r.gateIDs, graph.TypeID(r.gateTypes.Intern(se.Type)))
		}
	}
	batchMinTS := int64(math.MaxInt64)
	if r.hasRemote {
		for _, se := range ses {
			if se.TS < batchMinTS {
				batchMinTS = se.TS
			}
		}
	}
	msg := message{kind: msgEdges, edges: ses, baseSeq: base, enq: r.tel.now()}
	for _, w := range r.workers {
		if w.retired {
			continue
		}
		if r.filtering && !r.gateAdmits(w) {
			w.edgesGated.Add(int64(len(ses)))
			continue
		}
		w.edgesRouted.Add(int64(len(ses)))
		if w.remote != nil {
			w.remote.noteEnqueuedEdges(base, base+uint64(len(ses)), batchMinTS)
		}
		w.in <- msg
	}
	if r.dlog != nil || (r.hasRemote && !r.cfg.Ordered) {
		// Checkpoint cadence: durable rounds when a data dir is open,
		// and remote snapshot requests (the pin-advance mechanism)
		// whenever the topology has remote slots — those are worthwhile
		// even in a volatile runtime, since the reconnect entitlement
		// would otherwise pin the in-memory log forever.
		if r.sinceCkpt += len(ses); r.sinceCkpt >= r.cfg.CheckpointEvery {
			r.sinceCkpt = 0
			r.checkpointRound()
		}
	}
	return base
}

// gateAdmits reports whether any edge of the current batch (interned
// in gateIDs) passes the shard's gate. Caller holds ingestMu.
func (r *Router) gateAdmits(w *worker) bool {
	if w.gate.Universal() {
		return true
	}
	for _, id := range r.gateIDs {
		if w.gate.Has(id) {
			return true
		}
	}
	return false
}

// EdgesRouted returns the number of edges admitted so far. Lock-free,
// so it stays readable while a backpressured ingest is blocked.
func (r *Router) EdgesRouted() uint64 { return r.seq.Load() }

// Stats snapshots every shard's counters.
func (r *Router) Stats() []Stats {
	r.mu.Lock()
	owned := make(map[*worker]int, len(r.owned))
	for w, n := range r.owned {
		owned[w] = n
	}
	// Snapshot the slice header too: AddSlot may append concurrently
	// (it holds both locks; slot ids are stable).
	workers := r.workers
	r.mu.Unlock()
	out := make([]Stats, len(workers))
	for i, w := range workers {
		out[i] = Stats{
			Shard:          i,
			Queries:        owned[w],
			QueueDepth:     len(w.in),
			QueueCap:       cap(w.in),
			EdgesRouted:    w.edgesRouted.Load(),
			MatchesEmitted: w.matchesEmitted.Load(),
			ReplicaEdges:   w.replicaLive.Load(),
			ReplicaStored:  w.replicaStored.Load(),
			ReplicaTypes:   w.replicaTypes.Load(),
		}
	}
	return out
}

// Close drains and shuts the runtime down: no further ingests are
// admitted, every shard finishes its queued work and emits its
// remaining matches, then the collection channel is closed. A consumer
// reading Matches until it closes therefore observes every match —
// none are lost to shutdown (pinned by the package's -race drain
// test). Matches must keep being consumed while Close runs.
func (r *Router) Close() {
	r.ingestMu.Lock()
	if r.closed {
		r.ingestMu.Unlock()
		return
	}
	if r.dlog != nil {
		// Final durable point before the queues close. The close-time
		// retro flush below happens after it — harmless: the checkpoint
		// carries the pending repairs, and a restarted router's own
		// Close re-flushes them (at-least-once, like every delivery
		// across a restart).
		r.checkpointRound()
	}
	r.closed = true
	for _, w := range r.workers {
		if w.retired {
			continue // its queue was closed when it was retired
		}
		close(w.in)
	}
	r.ingestMu.Unlock()
	r.wg.Wait()
	if r.mergeDone != nil {
		<-r.mergeDone
	}
	close(r.out)
	if r.dlog != nil {
		r.dlog.Close()
	}
}

// Drain consumes the collection channel until it closes, invoking fn
// (may be nil) per match, and returns the match count. Run it on its
// own goroutine alongside ingestion:
//
//	done := make(chan int64, 1)
//	go func() { done <- r.Drain(fn) }()
//	... Ingest / IngestBatch ...
//	r.Close()
//	total := <-done
func (r *Router) Drain(fn func(Match)) int64 {
	var n int64
	for m := range r.out {
		n++
		if fn != nil {
			fn(m)
		}
		// Consumed only after fn returned: the durable checkpoint
		// barrier keys off this counter, so "covered by a checkpoint"
		// implies "the consumer's callback completed" — e.g. its write
		// reached the OS — before the round's metadata committed.
		r.consumed.Add(1)
	}
	return n
}

// mergeOrdered is the deterministic collector: every shard emits
// exactly one bundle per ingested edge in seq order, so reading one
// bundle from each shard per round yields all matches of one edge;
// sorting those by registration rank reproduces the serial
// MultiEngine's output order exactly.
func (r *Router) mergeOrdered() {
	defer close(r.mergeDone)
	var batch []Match
	for {
		batch = batch[:0]
		open := false
		for _, w := range r.workers {
			b, ok := <-w.bundles
			if !ok {
				continue
			}
			open = true
			batch = append(batch, b.matches...)
		}
		if !open {
			return
		}
		sort.SliceStable(batch, func(i, j int) bool { return batch[i].rank < batch[j].rank })
		for _, m := range batch {
			r.emitted.Add(1)
			r.out <- m
			r.tel.recordMatch(m.Query, m.Seq)
		}
	}
}

func (w *worker) run() {
	defer w.r.wg.Done()
	for msg := range w.in {
		switch msg.kind {
		case msgEdges:
			if msg.enq != 0 {
				w.queueWait.Record(w.r.tel.now() - msg.enq)
			}
			w.processEdges(msg)
		case msgRegister:
			w.flushRetro(msg.seq)
			err := w.eng.Register(msg.name, msg.q, msg.cfg)
			if err == nil {
				w.ranks[msg.name] = msg.rank
				if w.r.filtering {
					w.widenReplica(msg)
				}
				if msg.xfer != nil {
					// Migration target: graft the source's live state
					// onto the freshly registered (and backfilled)
					// engine. On failure roll the registration back so
					// the query never half-exists here.
					if _, terr := persist.TransplantState(w.eng, msg.xfer, msg.name); terr != nil {
						w.eng.Unregister(msg.name)
						delete(w.ranks, msg.name)
						if w.r.filtering {
							w.narrowReplica(msg.fpTypes, msg.fpExact)
						}
						err = terr
					}
				}
			}
			w.publishReplicaStats()
			msg.reply <- err
		case msgUnregister:
			if _, ok := w.ranks[msg.name]; ok {
				w.flushRetro(msg.seq)
				w.eng.Unregister(msg.name)
				delete(w.ranks, msg.name)
				if w.r.filtering {
					w.narrowReplica(msg.fpTypes, msg.fpExact)
				}
			}
			w.publishReplicaStats()
			if msg.reply != nil {
				msg.reply <- nil
			}
		case msgMigrateOut:
			// First half of a local-source migration: flush the retro
			// barrier (standard unregister discipline — the clone must
			// not carry repairs the serial schedule already drained),
			// detach the query's state, and remove it here. The handoff
			// happens at this exact queue position: every edge enqueued
			// before it is in the clone, every one after it belongs to
			// the target.
			var out migrateOut
			if _, ok := w.ranks[msg.name]; !ok {
				out.err = fmt.Errorf("shard: slot %d does not hold query %q", w.id, msg.name)
			} else {
				w.flushRetro(msg.seq)
				out.rank = w.ranks[msg.name]
				out.eng, out.err = persist.CloneQuery(w.eng, msg.name)
				if out.err == nil {
					w.eng.Unregister(msg.name)
					delete(w.ranks, msg.name)
					if w.r.filtering {
						w.narrowReplica(msg.fpTypes, msg.fpExact)
					}
				}
			}
			w.publishReplicaStats()
			msg.xout <- out
		case msgCheckpoint:
			// Serialize the engine at this queue position — a message
			// boundary, so no batch is mid-flight — and persist it as
			// the slot's checkpoint. Deliberately NOT a flushRetro
			// point: snapshotting must not mutate engine state, or the
			// restored run would diverge from the serial schedule.
			msg.reply <- w.writeCheckpoint(msg.seq)
		}
	}
	// The stream is over; drain any repairs the serial schedule would
	// have drained at an edge this shard never received.
	w.flushRetro(w.r.seq.Load())
	if w.bundles != nil {
		close(w.bundles)
	}
}

// flushRetro runs the engine's queued retrospective repairs when the
// stream has moved past this shard's last admitted edge — the point
// where a serial engine would already have drained them (it drains at
// the next stream edge; a gated shard may never receive one). Pending
// work only ever stems from the most recent admitted edge (lastEnd-1):
// anything older was drained when a later edge was admitted. When
// lastEnd == p the serial schedule has not drained either, and the
// repairs stay queued (or die with the stream), exactly as they would
// serially.
func (w *worker) flushRetro(p uint64) {
	if !w.r.filtering || w.lastEnd == 0 || w.lastEnd >= p {
		return
	}
	for _, nm := range w.eng.FlushPending() {
		w.out(w.resolve(w.lastEnd, nm))
	}
}

// widenReplica applies a successful registration's footprint: widen
// the engine's replica filter and backfill the in-window past of the
// newly needed types from the shared edge log. The backfill runs on
// this worker's goroutine against a lock-free log snapshot, so the
// router and the other shards proceed unimpeded; this shard's own
// queue waits, which is exactly the Register barrier semantics.
func (w *worker) widenReplica(msg message) {
	needAll, held, added := w.rset.newlyNeeded(msg.fpTypes, msg.fpExact)
	var need func(string) bool
	switch {
	case needAll:
		// Going universal: everything not already held is needed.
		heldSet := make(map[string]bool, len(held))
		for _, tp := range held {
			heldSet[tp] = true
		}
		need = func(tp string) bool { return !heldSet[tp] }
	case len(added) > 0:
		addedSet := make(map[string]bool, len(added))
		for _, tp := range added {
			addedSet[tp] = true
		}
		need = func(tp string) bool { return addedSet[tp] }
	}
	w.rset.add(msg.fpTypes, msg.fpExact)
	w.syncEngineFilter()
	if need == nil {
		return
	}
	// The window floor was captured at the registration's stream
	// position (msg.minTS) — computing it here from the log's current
	// MaxTS would race with concurrent ingest and skip edges that were
	// in-window when the registration was admitted. The router pins
	// the log against trimming past this floor until we acknowledge.
	var missed []stream.Edge
	w.r.log.Replay(msg.seq, msg.minTS, func(se stream.Edge, _ uint64) bool {
		if need(se.Type) {
			missed = append(missed, se)
		}
		return true
	})
	w.eng.Backfill(missed)
	w.edgesBackfilled.Add(int64(len(missed)))
	if msg.migrate {
		w.r.tel.migBackfill.Add(int64(len(missed)))
	}
}

// narrowReplica applies an unregistration's footprint release: narrow
// the engine's replica filter and trim the edges no remaining query
// can reach.
func (w *worker) narrowReplica(types []string, exact bool) {
	w.rset.remove(types, exact)
	w.syncEngineFilter()
	w.eng.TrimReplica()
}

// syncEngineFilter pushes the worker's current footprint into the
// engine's replica filter.
func (w *worker) syncEngineFilter() {
	w.eng.SetReplicaFilter(w.rset.typeNames(), w.rset.universal())
}

// publishReplicaStats exposes the worker-owned replica and engine
// gauges to the lock-free Stats/scrape readers. Only the worker
// goroutine may call it: the engine is single-writer state, so the
// scrape path reads these published atomics, never the engine itself.
func (w *worker) publishReplicaStats() {
	w.replicaLive.Set(int64(w.eng.Graph().NumEdges()))
	w.replicaStored.Set(w.eng.EdgesStored())
	if w.r.filtering && !w.rset.universal() {
		w.replicaTypes.Set(int64(len(w.rset.refs)))
	} else {
		w.replicaTypes.Set(-1)
	}
	st := w.eng.Stats()
	w.engEdges.Set(st.EdgesProcessed)
	w.engPartial.Set(st.PartialMatches)
	c := w.eng.Counters()
	w.treeInserted.Set(c.TreeInserted)
	w.treeDeduped.Set(c.TreeDeduped)
	w.treeEmitted.Set(c.TreeEmitted)
	w.treeEvicted.Set(c.TreeEvicted)
	w.poolGets.Set(c.PoolGets)
	w.poolFresh.Set(c.PoolFresh)
}

// processEdges folds a routed batch into this shard's private engine
// and emits the completed matches — resolved against the private graph
// while their edges are certainly still live. The engine's replica
// filter skips the batch edges outside this shard's footprint; the
// grouped result stays aligned with the batch, so arrival seqs are
// global regardless of what was admitted.
func (w *worker) processEdges(msg message) {
	start := w.r.tel.now()
	defer func() { w.batchTime.Record(w.r.tel.now() - start) }()
	if w.r.filtering {
		// Advance the retro flush barrier to just past the last edge
		// the engine will admit from this batch.
		for i := len(msg.edges) - 1; i >= 0; i-- {
			if w.rset.has(msg.edges[i].Type) {
				w.lastEnd = msg.baseSeq + uint64(i) + 1
				break
			}
		}
	}
	for i, named := range w.eng.ProcessBatchGrouped(msg.edges) {
		seq := msg.baseSeq + uint64(i)
		if w.bundles != nil {
			b := bundle{seq: seq}
			for _, nm := range named {
				b.matches = append(b.matches, w.resolve(seq, nm))
			}
			w.matchesEmitted.Add(int64(len(b.matches)))
			w.bundles <- b
			continue
		}
		for _, nm := range named {
			w.out(w.resolve(seq, nm))
		}
	}
	w.publishReplicaStats()
}

func (w *worker) out(m Match) {
	w.matchesEmitted.Inc()
	w.r.emitted.Add(1)
	w.r.out <- m
	w.r.tel.recordMatch(m.Query, m.Seq)
}

// resolve converts an engine match into the portable form: all IDs are
// looked up against the shard's private graph now (the shared
// core.MultiEngine.ResolveMatch walk), so the emitted match survives
// later eviction.
func (w *worker) resolve(seq uint64, nm core.NamedMatch) Match {
	out := Match{
		Seq: seq, Shard: w.id, Query: nm.Query, rank: w.ranks[nm.Query],
		FirstTS: nm.Match.MinTS, LastTS: nm.Match.MaxTS,
	}
	bindings, edges := w.eng.ResolveMatch(nm)
	for _, b := range bindings {
		out.Bindings = append(out.Bindings, Binding(b))
	}
	for _, e := range edges {
		out.Edges = append(out.Edges, MatchEdge(e))
	}
	return out
}
