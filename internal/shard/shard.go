// Package shard implements the query-partitioned sharded runtime: a
// Router spreads registered continuous queries across N shard workers,
// each owning a private windowed graph replica and a single-writer
// core.MultiEngine, fed by per-shard bounded channels and emitting
// completed matches asynchronously on a collection channel.
//
// This is the pipelined successor to core.ParallelMulti's per-edge
// fork/join: the router never waits for a shard to finish an edge
// before accepting the next one, there is no global barrier per edge
// and no serial merge on the hot path — a slow query only ever stalls
// its own shard (and, once that shard's bounded queue fills, the
// producer: backpressure instead of unbounded buffering). Queries —
// not graph partitions — remain the unit of parallelism, which keeps
// exact-match semantics trivially intact: every shard ingests the full
// edge stream in arrival order, so each query sees exactly the stream
// a serial core.MultiEngine would have shown it (the package tests
// enforce per-query match-set equality differentially).
//
// The cost of the replica-per-shard design is memory: the windowed
// graph is stored once per shard. That is the standard trade in
// partitioned multi-query stream engines (cf. "Large-scale continuous
// subgraph queries on streams"): replicas eliminate cross-shard reads,
// locks and coordination entirely.
//
// Ordering. By default matches arrive on the collection channel in
// completion order — shards drift apart freely, which is what makes
// the pipeline fast. Config.Ordered enables the deterministic in-seq
// merge: a collector k-way-merges per-shard bundles and delivers
// matches in (arrival seq, query registration) order, byte-identical
// to a serial MultiEngine run. Ordered mode re-introduces a per-edge
// collector-side rendezvous; use it for tests and audits, not for
// throughput.
//
// The collection channel MUST be drained concurrently with ingestion
// (Matches, or the Drain helper): every channel in the pipeline is
// bounded, so an unread match eventually stalls the shards and then
// the router.
package shard

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"streamgraph/internal/core"
	"streamgraph/internal/graph"
	"streamgraph/internal/metrics"
	"streamgraph/internal/query"
	"streamgraph/internal/stream"
)

// Config parameterizes a Router.
type Config struct {
	// Shards is the worker count (<= 0 selects GOMAXPROCS).
	Shards int
	// QueueLen bounds each shard's ingest queue, in messages (an edge
	// or a batch each); a full queue blocks the producer (default 256).
	QueueLen int
	// OutLen buffers the collection channel (default 1024).
	OutLen int
	// Window is tW, shared by every registered query (0 = unwindowed).
	Window int64
	// EvictEvery forwards to each shard's engine (default 256).
	EvictEvery int
	// Ordered enables the deterministic in-seq merge mode: matches are
	// delivered in (arrival seq, query registration) order, exactly as
	// a serial core.MultiEngine reports them.
	Ordered bool
}

// Binding is one resolved vertex of a match: query vertex name to data
// vertex name.
type Binding struct {
	QueryVertex string
	DataVertex  string
}

// MatchEdge is one resolved edge of a match.
type MatchEdge struct {
	QueryEdge int // index into the query's edge list
	Src, Dst  string
	Type      string
	TS        int64
}

// Match is one completed match, resolved into portable name-based form
// inside the owning shard (so it stays valid after the shard's private
// graph evicts the underlying edges) and delivered on the collection
// channel.
type Match struct {
	// Seq is the router-assigned arrival index (0-based) of the stream
	// edge that completed the match.
	Seq uint64
	// Shard is the worker that produced the match.
	Shard int
	// Query is the registered query name.
	Query string

	Bindings []Binding
	Edges    []MatchEdge
	// FirstTS and LastTS delimit τ(g), the match's timespan.
	FirstTS int64
	LastTS  int64

	rank int // global registration rank; orders the in-seq merge
}

// String renders the match compactly.
func (m Match) String() string {
	s := m.Query
	for _, b := range m.Bindings {
		s += " " + b.QueryVertex + "=" + b.DataVertex
	}
	return s
}

// BindingString renders only the bindings ("a=x b=y"), the form the
// TCP server's match lines use.
func (m Match) BindingString() string {
	s := ""
	for _, b := range m.Bindings {
		if s != "" {
			s += " "
		}
		s += b.QueryVertex + "=" + b.DataVertex
	}
	return s
}

// Stats is a point-in-time snapshot of one shard worker.
type Stats struct {
	Shard          int
	Queries        int   // queries owned by this shard
	QueueDepth     int   // ingest messages waiting
	QueueCap       int   // ingest queue capacity
	EdgesRouted    int64 // edges handed to this shard's queue
	MatchesEmitted int64 // matches this shard pushed to collection
}

type msgKind int

const (
	msgEdges msgKind = iota
	msgRegister
	msgUnregister
)

// message is one entry of a shard's ingest queue: a broadcast edge
// batch or a control message (register/unregister) targeted at the
// shard that owns the query. Control messages ride the same queue as
// edges so a registration takes effect at a definite stream position
// on its shard.
type message struct {
	kind    msgKind
	edges   []stream.Edge // msgEdges: shared read-only slice
	baseSeq uint64        // msgEdges: arrival seq of edges[0]
	name    string        // control: query name
	q       *query.Graph  // msgRegister
	cfg     core.Config   // msgRegister
	rank    int           // msgRegister: global registration rank
	reply   chan error    // control ack (buffered, may be nil for unregister)
}

// bundle is one edge's worth of matches from one shard (ordered mode
// only); every shard emits exactly one bundle per ingested edge, in
// seq order, which is what makes the k-way merge trivial.
type bundle struct {
	seq     uint64
	matches []Match
}

// Router is the front of the sharded runtime: it assigns queries to
// shards, broadcasts ingested edges to every shard's bounded queue and
// owns the collection channel.
//
// Ingest, IngestBatch, Register and Unregister are safe for concurrent
// use; edges are sequenced in the order the router admits them.
type Router struct {
	cfg     Config
	workers []*worker
	out     chan Match

	// ingestMu orders everything that enters the shard queues — edge
	// broadcasts, control messages, and the queue close — and is the
	// only lock held across a (potentially blocking, backpressured)
	// queue send. Lock order: ingestMu before mu.
	ingestMu sync.Mutex
	closed   bool          // guarded by ingestMu
	seq      atomic.Uint64 // written under ingestMu, read lock-free

	// mu guards the registry metadata only and is never held across a
	// queue send, so Stats/Registered stay responsive while a
	// backpressured ingest is blocked.
	mu    sync.Mutex
	order []string // registration order (rank order)
	owner map[string]*worker
	owned map[*worker]int
	rank  int

	wg        sync.WaitGroup // worker goroutines
	mergeDone chan struct{}  // non-nil in ordered mode
}

// worker is one shard: a goroutine draining its bounded queue into a
// privately owned MultiEngine.
type worker struct {
	id      int
	r       *Router
	in      chan message
	bundles chan bundle // ordered mode only
	eng     *core.MultiEngine
	ranks   map[string]int // query name -> global registration rank

	edgesRouted    metrics.Counter
	matchesEmitted metrics.Counter
}

// New starts a router and its shard workers.
func New(cfg Config) *Router {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 256
	}
	if cfg.OutLen <= 0 {
		cfg.OutLen = 1024
	}
	r := &Router{
		cfg:   cfg,
		out:   make(chan Match, cfg.OutLen),
		owner: make(map[string]*worker),
		owned: make(map[*worker]int),
	}
	for i := 0; i < cfg.Shards; i++ {
		w := &worker{
			id:    i,
			r:     r,
			in:    make(chan message, cfg.QueueLen),
			eng:   core.NewMulti(core.MultiConfig{Window: cfg.Window, EvictEvery: cfg.EvictEvery}),
			ranks: make(map[string]int),
		}
		if cfg.Ordered {
			w.bundles = make(chan bundle, cfg.QueueLen)
		}
		r.workers = append(r.workers, w)
		r.wg.Add(1)
		go w.run()
	}
	if cfg.Ordered {
		r.mergeDone = make(chan struct{})
		go r.mergeOrdered()
	}
	return r
}

// NumShards returns the worker count.
func (r *Router) NumShards() int { return len(r.workers) }

// Matches returns the collection channel. It is closed by Close after
// every queued edge has been fully processed — read until closed and
// no match is lost.
func (r *Router) Matches() <-chan Match { return r.out }

// Register assigns the query to the least-loaded shard and registers
// it there, at the current stream position. It blocks until the owning
// shard has drained its queue up to the registration (so a subsequent
// Ingest is guaranteed to be seen by the query) and returns the
// engine's registration error, if any. The engine's BatchWorkers is
// forced to 1 unless set: the shards themselves are the axis of
// parallelism, and nesting a candidate-search pool per shard would
// oversubscribe the machine.
func (r *Router) Register(name string, q *query.Graph, cfg core.Config) error {
	if cfg.BatchWorkers == 0 {
		cfg.BatchWorkers = 1
	}
	r.ingestMu.Lock()
	if r.closed {
		r.ingestMu.Unlock()
		return fmt.Errorf("shard: router is closed")
	}
	r.mu.Lock()
	if _, dup := r.owner[name]; dup {
		r.mu.Unlock()
		r.ingestMu.Unlock()
		return fmt.Errorf("shard: query %q already registered", name)
	}
	w := r.workers[0]
	for _, cand := range r.workers[1:] {
		if r.owned[cand] < r.owned[w] {
			w = cand
		}
	}
	rank := r.rank
	r.rank++
	// Optimistic: recorded before the shard acks, rolled back on error.
	r.owner[name] = w
	r.owned[w]++
	r.order = append(r.order, name)
	r.mu.Unlock()
	reply := make(chan error, 1)
	w.in <- message{kind: msgRegister, name: name, q: q, cfg: cfg, rank: rank, reply: reply}
	r.ingestMu.Unlock()

	err := <-reply
	if err != nil {
		r.mu.Lock()
		// A concurrent Unregister may have already removed the
		// provisional entry; only roll back what is still ours.
		if r.owner[name] == w {
			delete(r.owner, name)
			r.owned[w]--
			for i, n := range r.order {
				if n == name {
					r.order = append(r.order[:i], r.order[i+1:]...)
					break
				}
			}
		}
		r.mu.Unlock()
	}
	return err
}

// Unregister removes a query and its partial-match state, blocking
// until the owning shard has processed the removal.
func (r *Router) Unregister(name string) {
	r.ingestMu.Lock()
	if r.closed {
		r.ingestMu.Unlock()
		return
	}
	r.mu.Lock()
	w, ok := r.owner[name]
	if !ok {
		r.mu.Unlock()
		r.ingestMu.Unlock()
		return
	}
	delete(r.owner, name)
	r.owned[w]--
	for i, n := range r.order {
		if n == name {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.mu.Unlock()
	reply := make(chan error, 1)
	w.in <- message{kind: msgUnregister, name: name, reply: reply}
	r.ingestMu.Unlock()
	<-reply
}

// Registered returns the registered query names in registration order.
func (r *Router) Registered() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// Ingest broadcasts one edge to every shard and returns its arrival
// sequence number. It blocks only when a shard's bounded queue is full
// (backpressure), never on the searches themselves.
func (r *Router) Ingest(se stream.Edge) uint64 {
	return r.IngestBatch([]stream.Edge{se})
}

// IngestBatch broadcasts a batch to every shard as one queue message
// (each shard runs its engine's amortized batch pipeline over it) and
// returns the arrival sequence number of the first edge. The slice
// must not be mutated afterwards — every shard reads it.
func (r *Router) IngestBatch(ses []stream.Edge) uint64 {
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	if r.closed || len(ses) == 0 {
		return r.seq.Load()
	}
	base := r.seq.Load()
	r.seq.Store(base + uint64(len(ses)))
	msg := message{kind: msgEdges, edges: ses, baseSeq: base}
	for _, w := range r.workers {
		w.edgesRouted.Add(int64(len(ses)))
		w.in <- msg
	}
	return base
}

// EdgesRouted returns the number of edges admitted so far. Lock-free,
// so it stays readable while a backpressured ingest is blocked.
func (r *Router) EdgesRouted() uint64 { return r.seq.Load() }

// Stats snapshots every shard's counters.
func (r *Router) Stats() []Stats {
	r.mu.Lock()
	owned := make(map[*worker]int, len(r.owned))
	for w, n := range r.owned {
		owned[w] = n
	}
	r.mu.Unlock()
	out := make([]Stats, len(r.workers))
	for i, w := range r.workers {
		out[i] = Stats{
			Shard:          i,
			Queries:        owned[w],
			QueueDepth:     len(w.in),
			QueueCap:       cap(w.in),
			EdgesRouted:    w.edgesRouted.Load(),
			MatchesEmitted: w.matchesEmitted.Load(),
		}
	}
	return out
}

// Close drains and shuts the runtime down: no further ingests are
// admitted, every shard finishes its queued work and emits its
// remaining matches, then the collection channel is closed. A consumer
// reading Matches until it closes therefore observes every match —
// none are lost to shutdown (pinned by the package's -race drain
// test). Matches must keep being consumed while Close runs.
func (r *Router) Close() {
	r.ingestMu.Lock()
	if r.closed {
		r.ingestMu.Unlock()
		return
	}
	r.closed = true
	for _, w := range r.workers {
		close(w.in)
	}
	r.ingestMu.Unlock()
	r.wg.Wait()
	if r.mergeDone != nil {
		<-r.mergeDone
	}
	close(r.out)
}

// Drain consumes the collection channel until it closes, invoking fn
// (may be nil) per match, and returns the match count. Run it on its
// own goroutine alongside ingestion:
//
//	done := make(chan int64, 1)
//	go func() { done <- r.Drain(fn) }()
//	... Ingest / IngestBatch ...
//	r.Close()
//	total := <-done
func (r *Router) Drain(fn func(Match)) int64 {
	var n int64
	for m := range r.out {
		n++
		if fn != nil {
			fn(m)
		}
	}
	return n
}

// mergeOrdered is the deterministic collector: every shard emits
// exactly one bundle per ingested edge in seq order, so reading one
// bundle from each shard per round yields all matches of one edge;
// sorting those by registration rank reproduces the serial
// MultiEngine's output order exactly.
func (r *Router) mergeOrdered() {
	defer close(r.mergeDone)
	var batch []Match
	for {
		batch = batch[:0]
		open := false
		for _, w := range r.workers {
			b, ok := <-w.bundles
			if !ok {
				continue
			}
			open = true
			batch = append(batch, b.matches...)
		}
		if !open {
			return
		}
		sort.SliceStable(batch, func(i, j int) bool { return batch[i].rank < batch[j].rank })
		for _, m := range batch {
			r.out <- m
		}
	}
}

func (w *worker) run() {
	defer w.r.wg.Done()
	for msg := range w.in {
		switch msg.kind {
		case msgEdges:
			w.processEdges(msg)
		case msgRegister:
			err := w.eng.Register(msg.name, msg.q, msg.cfg)
			if err == nil {
				w.ranks[msg.name] = msg.rank
			}
			msg.reply <- err
		case msgUnregister:
			if _, ok := w.ranks[msg.name]; ok {
				w.eng.Unregister(msg.name)
				delete(w.ranks, msg.name)
			}
			if msg.reply != nil {
				msg.reply <- nil
			}
		}
	}
	if w.bundles != nil {
		close(w.bundles)
	}
}

// processEdges folds a broadcast batch into this shard's private
// engine and emits the completed matches — resolved against the
// private graph while their edges are certainly still live.
func (w *worker) processEdges(msg message) {
	for i, named := range w.eng.ProcessBatchGrouped(msg.edges) {
		seq := msg.baseSeq + uint64(i)
		if w.bundles != nil {
			b := bundle{seq: seq}
			for _, nm := range named {
				b.matches = append(b.matches, w.resolve(seq, nm))
			}
			w.matchesEmitted.Add(int64(len(b.matches)))
			w.bundles <- b
			continue
		}
		for _, nm := range named {
			w.out(w.resolve(seq, nm))
		}
	}
}

func (w *worker) out(m Match) {
	w.matchesEmitted.Inc()
	w.r.out <- m
}

// resolve converts an engine match into the portable form: all IDs are
// looked up against the shard's private graph now, so the emitted
// match survives later eviction.
func (w *worker) resolve(seq uint64, nm core.NamedMatch) Match {
	eng := w.eng.QueryEngine(nm.Query)
	g := w.eng.Graph()
	q := eng.Query()
	out := Match{
		Seq: seq, Shard: w.id, Query: nm.Query, rank: w.ranks[nm.Query],
		FirstTS: nm.Match.MinTS, LastTS: nm.Match.MaxTS,
	}
	for qv, dv := range nm.Match.VertexOf {
		if dv == graph.NoVertex {
			continue
		}
		out.Bindings = append(out.Bindings, Binding{
			QueryVertex: q.Vertices[qv].Name,
			DataVertex:  g.VertexName(dv),
		})
	}
	for qe, eid := range nm.Match.EdgeOf {
		de, ok := g.Edge(eid)
		if !ok {
			continue
		}
		out.Edges = append(out.Edges, MatchEdge{
			QueryEdge: qe,
			Src:       g.VertexName(de.Src),
			Dst:       g.VertexName(de.Dst),
			Type:      g.Types().Name(uint32(de.Type)),
			TS:        de.TS,
		})
	}
	return out
}
