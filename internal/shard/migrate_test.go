package shard

// Live-migration and failover differentials. The bar everywhere is the
// serial oracle: whatever schedule of Migrate / AddSlot / RemoveSlot /
// Rebalance / connection kicks / process kills runs against the
// router, the delivered match multiset must stay byte-identical to a
// serial MultiEngine on the same stream (registration schedules
// mirrored). Migration is supposed to be semantically invisible; these
// tests make "invisible" a checkable property.

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"testing"
	"time"

	"streamgraph/internal/core"
	"streamgraph/internal/dshard"
	"streamgraph/internal/stream"
)

// ownerSlot reports which slot currently owns a query (-1 if none).
func ownerSlot(r *Router, name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w := r.owner[name]; w != nil {
		return w.id
	}
	return -1
}

// slotRetired reads a slot's tombstone under the admission lock.
func slotRetired(r *Router, id int) bool {
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	return r.workers[id].retired
}

// TestMigrateMatchesSerial is the basic tentpole differential: queries
// hop between slots mid-stream — local→local, local→remote,
// remote→local, remote→remote — and the match multiset must equal the
// serial engine's exactly. Ownership must actually move each time.
func TestMigrateMatchesSerial(t *testing.T) {
	edges := testStream(1500)
	const window = 400
	want := append([]string(nil), runSerial(t, edges, window)...)
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("workload produced no matches; differential is vacuous")
	}
	addr1, _ := startRemoteWorker(t)
	addr2, _ := startRemoteWorker(t)
	topologies := []struct {
		name string
		cfg  Config
	}{
		{"local-3", Config{Shards: 3}},
		{"mixed-1-2", Config{Shards: 1, Remotes: []string{addr1, addr2}}},
		{"all-remote-2", Config{Shards: 0, Remotes: []string{addr1, addr2}}},
	}
	for _, tp := range topologies {
		t.Run(tp.name, func(t *testing.T) {
			cfg := tp.cfg
			cfg.Window = window
			cfg.EvictEvery = 7
			r := New(cfg)
			queries, strategies := testQueries(), testStrategies()
			names := sortedNames(queries)
			for _, name := range names {
				if err := r.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
					t.Fatalf("register %s: %v", name, err)
				}
			}
			var mu sync.Mutex
			var got []string
			done := make(chan struct{})
			go func() {
				defer close(done)
				r.Drain(func(m Match) {
					mu.Lock()
					got = append(got, matchSig(m))
					mu.Unlock()
				})
			}()
			const batch = 50
			slots := r.NumShards()
			migrations := 0
			for lo := 0; lo < len(edges); lo += batch {
				hi := lo + batch
				if hi > len(edges) {
					hi = len(edges)
				}
				r.IngestBatch(edges[lo:hi])
				// Every few batches, rotate one query to the next slot —
				// over the stream every query crosses every slot boundary
				// the topology has.
				if slots > 1 && (lo/batch)%3 == 1 {
					name := names[(lo/batch)%len(names)]
					from := ownerSlot(r, name)
					to := (from + 1) % slots
					if err := r.Migrate(name, from, to); err != nil {
						t.Fatalf("migrate %s %d->%d at edge %d: %v", name, from, to, lo, err)
					}
					if now := ownerSlot(r, name); now != to {
						t.Fatalf("after migrate, %s owned by slot %d, want %d", name, now, to)
					}
					migrations++
				}
			}
			if slots > 1 && migrations < 5 {
				t.Fatalf("only %d migrations; schedule is vacuous", migrations)
			}
			r.Close()
			<-done
			sort.Strings(got)
			if !equalStrings(got, want) {
				t.Fatalf("after %d migrations: %d matches, want %d (multiset differs)", migrations, len(got), len(want))
			}
			// The counters agree with what the schedule actually did.
			samples := r.Metrics().Snapshot()
			if n := metricValue(t, samples, "sg_migrations_completed_total"); n != int64(migrations) {
				t.Fatalf("sg_migrations_completed_total = %d, want %d", n, migrations)
			}
			if n := metricValue(t, samples, "sg_migrations_failed_total"); n != 0 {
				t.Fatalf("sg_migrations_failed_total = %d, want 0", n)
			}
		})
	}
}

// TestMigrateRandomizedSchedules is the property test: randomized
// streams, topologies, batch splits, migration points, a mid-stream
// register/unregister pair and connection kicks, all interleaved — the
// survivor multiset must equal a serial oracle running the mirrored
// registration schedule. Run under -race in CI.
func TestMigrateRandomizedSchedules(t *testing.T) {
	addr, srv := startRemoteWorker(t)
	types := []string{"GRE", "TCP", "UDP", "ICMP"}
	for _, seed := range []int64{1, 99, 4242} {
		rng := rand.New(rand.NewSource(seed))
		nEdges := 400 + rng.Intn(400)
		var edges []stream.Edge
		for i := 0; i < nEdges; i++ {
			edges = append(edges, stream.Edge{
				Src: fmt.Sprintf("n%d", rng.Intn(50)), SrcLabel: "ip",
				Dst: fmt.Sprintf("n%d", rng.Intn(50)), DstLabel: "ip",
				Type: types[rng.Intn(len(types))], TS: int64(i + 1),
			})
		}
		window := int64(100 + rng.Intn(300))
		regAt := nEdges/4 + rng.Intn(nEdges/4)
		unregAt := regAt + 1 + rng.Intn(nEdges/4)

		queries, strategies := testQueries(), testStrategies()
		names := sortedNames(queries)
		extra := queries["gre-tcp"].Clone()

		// Serial oracle with the same registration schedule; "extra" is
		// excluded from both sides (mid-stream lifecycle).
		want := func() []string {
			m := core.NewMulti(core.MultiConfig{Window: window, EvictEvery: 7})
			for _, name := range names {
				if err := m.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
					t.Fatalf("seed %d: serial register %s: %v", seed, name, err)
				}
			}
			var sigs []string
			for i, se := range edges {
				if i == regAt {
					if err := m.Register("extra", extra, core.Config{Strategy: core.StrategySingleLazy}); err != nil {
						t.Fatalf("seed %d: serial register extra: %v", seed, err)
					}
				}
				if i == unregAt {
					m.Unregister("extra")
				}
				for _, nm := range m.ProcessEdge(se) {
					if nm.Query != "extra" {
						sigs = append(sigs, serialSig(m, nm))
					}
				}
			}
			return sigs
		}()
		sort.Strings(want)

		cfg := Config{Window: window, EvictEvery: 1 + rng.Intn(10)}
		remote := rng.Intn(2) == 0
		if remote {
			cfg.Shards, cfg.Remotes = 1+rng.Intn(2), []string{addr}
		} else {
			cfg.Shards = 2 + rng.Intn(3)
		}
		r := New(cfg)
		for _, name := range names {
			if err := r.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
				t.Fatalf("seed %d: register %s: %v", seed, name, err)
			}
		}
		var mu sync.Mutex
		var got []string
		done := make(chan struct{})
		go func() {
			defer close(done)
			r.Drain(func(m Match) {
				if m.Query == "extra" {
					return
				}
				mu.Lock()
				got = append(got, matchSig(m))
				mu.Unlock()
			})
		}()
		slots := r.NumShards()
		migrations := 0
		ingestTo := func(pos, hi int) int {
			for pos < hi {
				end := pos + 1 + rng.Intn(100)
				if end > hi {
					end = hi
				}
				r.IngestBatch(edges[pos:end])
				pos = end
				// Random control ops between batches.
				if slots > 1 && rng.Intn(3) == 0 {
					regd := r.Registered()
					name := regd[rng.Intn(len(regd))]
					from, to := ownerSlot(r, name), rng.Intn(slots)
					if from != to {
						if err := r.Migrate(name, from, to); err != nil {
							t.Fatalf("seed %d: migrate %s %d->%d: %v", seed, name, from, to, err)
						}
						migrations++
					}
				}
				if remote && rng.Intn(6) == 0 {
					srv.Kick()
				}
			}
			return pos
		}
		pos := ingestTo(0, regAt)
		if err := r.Register("extra", extra, core.Config{Strategy: core.StrategySingleLazy}); err != nil {
			t.Fatalf("seed %d: register extra: %v", seed, err)
		}
		pos = ingestTo(pos, unregAt)
		r.Unregister("extra")
		ingestTo(pos, len(edges))
		r.Close()
		<-done
		sort.Strings(got)
		if !equalStrings(got, want) {
			t.Fatalf("seed %d (%+v, %d migrations): %d matches, want %d (multiset differs)",
				seed, cfg, migrations, len(got), len(want))
		}
	}
}

// TestElasticScaleOutIn grows the topology mid-stream with AddSlot,
// spreads load onto the new slot with Rebalance, kicks its connection,
// then drains it back out with RemoveSlot — all while streaming — and
// the multiset must still equal the serial engine.
func TestElasticScaleOutIn(t *testing.T) {
	edges := testStream(1500)
	const window = 400
	want := append([]string(nil), runSerial(t, edges, window)...)
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("workload produced no matches; differential is vacuous")
	}
	addr, srv := startRemoteWorker(t)
	r := New(Config{Shards: 1, Window: window, EvictEvery: 7})
	queries, strategies := testQueries(), testStrategies()
	for _, name := range sortedNames(queries) {
		if err := r.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	var mu sync.Mutex
	var got []string
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Drain(func(m Match) {
			mu.Lock()
			got = append(got, matchSig(m))
			mu.Unlock()
		})
	}()
	const batch = 50
	third := len(edges) / 3
	for lo := 0; lo < third; lo += batch {
		r.IngestBatch(edges[lo:min(lo+batch, third)])
	}
	// Scale out: a new remote slot, then rebalance onto it.
	id, err := r.AddSlot(addr)
	if err != nil {
		t.Fatalf("AddSlot: %v", err)
	}
	if id != 1 || r.NumShards() != 2 {
		t.Fatalf("AddSlot returned id %d, NumShards %d", id, r.NumShards())
	}
	moved, err := r.Rebalance()
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if moved == 0 {
		t.Fatal("Rebalance moved nothing onto the empty slot")
	}
	for lo := third; lo < 2*third; lo += batch {
		r.IngestBatch(edges[lo:min(lo+batch, 2*third)])
		if (lo-third)/batch == 2 {
			srv.Kick() // the migrated registration must survive a reconnect
		}
	}
	// Scale back in: everything the slot owns is migrated off, then the
	// slot is retired and pins nothing.
	if err := r.RemoveSlot(id); err != nil {
		t.Fatalf("RemoveSlot: %v", err)
	}
	if !slotRetired(r, id) {
		t.Fatal("removed slot is not retired")
	}
	for _, name := range r.Registered() {
		if s := ownerSlot(r, name); s == id {
			t.Fatalf("query %s still owned by removed slot", name)
		}
	}
	if err := r.RemoveSlot(id); err == nil {
		t.Fatal("double RemoveSlot succeeded")
	}
	for lo := 2 * third; lo < len(edges); lo += batch {
		r.IngestBatch(edges[lo:min(lo+batch, len(edges))])
	}
	r.Close()
	<-done
	sort.Strings(got)
	if !equalStrings(got, want) {
		t.Fatalf("elastic run: %d matches, want %d (multiset differs)", len(got), len(want))
	}
}

// TestRebalanceHotSpot piles every query onto one slot and lets the
// policy spread them: the final ownership spread must be ≤ 1, with the
// exact number of moves the imbalance implies — and the stream stays
// exact throughout.
func TestRebalanceHotSpot(t *testing.T) {
	edges := testStream(1200)
	const window = 400
	want := append([]string(nil), runSerial(t, edges, window)...)
	sort.Strings(want)
	r := New(Config{Shards: 3, Window: window, EvictEvery: 7})
	queries, strategies := testQueries(), testStrategies()
	for _, name := range sortedNames(queries) {
		if err := r.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	var mu sync.Mutex
	var got []string
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Drain(func(m Match) {
			mu.Lock()
			got = append(got, matchSig(m))
			mu.Unlock()
		})
	}()
	half := len(edges) / 2
	for lo := 0; lo < half; lo += 50 {
		r.IngestBatch(edges[lo:min(lo+50, half)])
	}
	// Force the hot spot: all three queries on slot 0.
	for _, name := range r.Registered() {
		if from := ownerSlot(r, name); from != 0 {
			if err := r.Migrate(name, from, 0); err != nil {
				t.Fatalf("pile %s onto slot 0: %v", name, err)
			}
		}
	}
	moved, err := r.Rebalance()
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if moved != 2 { // 3/0/0 → 2/0/1 → 1/1/1
		t.Fatalf("Rebalance moved %d queries, want 2", moved)
	}
	counts := make(map[int]int)
	for _, name := range r.Registered() {
		counts[ownerSlot(r, name)]++
	}
	for slot, n := range counts {
		if n != 1 {
			t.Fatalf("slot %d owns %d queries after rebalance, want 1 (%v)", slot, n, counts)
		}
	}
	if moved2, err := r.Rebalance(); err != nil || moved2 != 0 {
		t.Fatalf("second Rebalance = (%d, %v), want (0, nil)", moved2, err)
	}
	for lo := half; lo < len(edges); lo += 50 {
		r.IngestBatch(edges[lo:min(lo+50, len(edges))])
	}
	r.Close()
	<-done
	sort.Strings(got)
	if !equalStrings(got, want) {
		t.Fatalf("rebalanced run: %d matches, want %d (multiset differs)", len(got), len(want))
	}
}

// TestMigrateValidation pins the error surface: bad slots, wrong
// owners, Ordered mode, durable AddSlot, closed routers. None of these
// may count as a started migration.
func TestMigrateValidation(t *testing.T) {
	r := New(Config{Shards: 2, Window: 100})
	done := make(chan int64, 1)
	go func() { done <- r.Drain(nil) }()
	if err := r.Register("q", testQueries()["gre-tcp"], core.Config{Strategy: core.StrategySingleLazy}); err != nil {
		t.Fatal(err)
	}
	from := ownerSlot(r, "q")
	if err := r.Migrate("q", from, from); err == nil {
		t.Fatal("migrate to the same slot succeeded")
	}
	if err := r.Migrate("q", 1-from, from); err == nil {
		t.Fatal("migrate from a slot that does not own the query succeeded")
	}
	if err := r.Migrate("ghost", 0, 1); err == nil {
		t.Fatal("migrate of an unregistered query succeeded")
	}
	if err := r.Migrate("q", from, 5); err == nil {
		t.Fatal("migrate to an out-of-range slot succeeded")
	}
	if err := r.RemoveSlot(5); err == nil {
		t.Fatal("RemoveSlot out of range succeeded")
	}
	if n := metricValue(t, r.Metrics().Snapshot(), "sg_migrations_started_total"); n != 0 {
		t.Fatalf("validation errors counted as started migrations: %d", n)
	}
	r.Close()
	<-done
	if err := r.Migrate("q", from, 1-from); err == nil {
		t.Fatal("migrate on a closed router succeeded")
	}

	// A one-slot topology has nowhere to evacuate to.
	r1 := New(Config{Shards: 1, Window: 100})
	done1 := make(chan int64, 1)
	go func() { done1 <- r1.Drain(nil) }()
	if err := r1.Register("q", testQueries()["gre-tcp"], core.Config{Strategy: core.StrategySingleLazy}); err != nil {
		t.Fatal(err)
	}
	if err := r1.RemoveSlot(0); err == nil {
		t.Fatal("RemoveSlot of the only slot owning queries succeeded")
	}
	r1.Close()
	<-done1

	// Ordered mode: the deterministic merge needs static placement.
	ro := New(Config{Shards: 2, Ordered: true, FullReplicas: true})
	doneO := make(chan int64, 1)
	go func() { doneO <- ro.Drain(nil) }()
	if err := ro.Migrate("q", 0, 1); err == nil {
		t.Fatal("Migrate succeeded in Ordered mode")
	}
	if _, err := ro.Rebalance(); err == nil {
		t.Fatal("Rebalance succeeded in Ordered mode")
	}
	if _, err := ro.AddSlot("127.0.0.1:1"); err == nil {
		t.Fatal("AddSlot succeeded in Ordered mode")
	}
	if err := ro.RemoveSlot(0); err == nil {
		t.Fatal("RemoveSlot succeeded in Ordered mode")
	}
	ro.Close()
	<-doneO

	// Durable routers get their topology from Config at Open time.
	rd, _, err := Open(Config{Shards: 1, Window: 100, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	doneD := make(chan int64, 1)
	go func() { doneD <- rd.Drain(nil) }()
	if _, err := rd.AddSlot("127.0.0.1:1"); err == nil {
		t.Fatal("AddSlot succeeded on a durable router")
	}
	rd.Close()
	<-doneD
}

// TestMigrationMetricsTruthful is the counter differential: the
// migration series must agree exactly with the operations the test
// performed — including a failed migration (non-wire-safe query vs a
// remote target) that must leave the query where it was.
func TestMigrationMetricsTruthful(t *testing.T) {
	edges := testStream(1000)
	const window = 400
	want := append([]string(nil), runSerial(t, edges, window)...)
	sort.Strings(want)
	r := New(Config{Shards: 2, Window: window, EvictEvery: 7})
	queries, strategies := testQueries(), testStrategies()
	for _, name := range sortedNames(queries) {
		if err := r.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	// A local-only topology accepts a non-wire-safe query; its type
	// never occurs in the stream, so the serial differential is
	// unaffected.
	bad := testQueries()["tcp-fan"].Clone()
	bad.Vertices[0].Name = "host a"
	bad.Edges = bad.Edges[:1]
	bad.Edges[0].Type = "NOPE"
	if err := r.Register("bad", bad, core.Config{Strategy: core.StrategyVF2}); err != nil {
		t.Fatalf("register bad: %v", err)
	}
	var mu sync.Mutex
	var got []string
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Drain(func(m Match) {
			mu.Lock()
			got = append(got, matchSig(m))
			mu.Unlock()
		})
	}()
	half := len(edges) / 2
	for lo := 0; lo < half; lo += 50 {
		r.IngestBatch(edges[lo:min(lo+50, half)])
	}

	// One local→local migration.
	from := ownerSlot(r, "gre-tcp")
	if err := r.Migrate("gre-tcp", from, 1-from); err != nil {
		t.Fatalf("local migrate: %v", err)
	}
	// One local→remote migration, onto a slot added at runtime.
	addr, _ := startRemoteWorker(t)
	id, err := r.AddSlot(addr)
	if err != nil {
		t.Fatalf("AddSlot: %v", err)
	}
	if err := r.Migrate("udp-icmp", ownerSlot(r, "udp-icmp"), id); err != nil {
		t.Fatalf("remote migrate: %v", err)
	}
	// One failed migration: the non-wire-safe query cannot cross the
	// wire; it must be re-placed on its source, intact.
	badFrom := ownerSlot(r, "bad")
	if err := r.Migrate("bad", badFrom, id); err == nil {
		t.Fatal("non-wire-safe query migrated to a remote slot")
	}
	if now := ownerSlot(r, "bad"); now != badFrom {
		t.Fatalf("failed migration moved the query: slot %d, want %d", now, badFrom)
	}
	for lo := half; lo < len(edges); lo += 50 {
		r.IngestBatch(edges[lo:min(lo+50, len(edges))])
	}
	reg := r.Metrics()
	r.Close()
	<-done

	samples := reg.Snapshot()
	started := metricValue(t, samples, "sg_migrations_started_total")
	completed := metricValue(t, samples, "sg_migrations_completed_total")
	failed := metricValue(t, samples, "sg_migrations_failed_total")
	if started != 3 || completed != 2 || failed != 1 {
		t.Fatalf("started/completed/failed = %d/%d/%d, want 3/2/1", started, completed, failed)
	}
	if started != completed+failed {
		t.Fatalf("started %d != completed %d + failed %d", started, completed, failed)
	}
	if n := metricValue(t, samples, "sg_migration_backfill_edges_total"); n == 0 {
		t.Fatal("remote migration shipped no backfill edges")
	}
	if n := metricValue(t, samples, "sg_failovers_total"); n != 0 {
		t.Fatalf("sg_failovers_total = %d, want 0", n)
	}
	var drainSamples int64 = -1
	for _, s := range samples {
		if s.Name == "sg_migration_drain_ns" && s.Hist != nil {
			drainSamples = int64(s.Hist.Count())
		}
	}
	if drainSamples < completed {
		t.Fatalf("sg_migration_drain_ns recorded %d samples, want ≥ %d", drainSamples, completed)
	}
	sort.Strings(got)
	if !equalStrings(got, want) {
		t.Fatalf("metrics run: %d matches, want %d (multiset differs)", len(got), len(want))
	}

	// Eager registration: a router that never migrates still scrapes
	// every migration series, at zero.
	r0 := New(Config{Shards: 1})
	d0 := make(chan int64, 1)
	go func() { d0 <- r0.Drain(nil) }()
	s0 := r0.Metrics().Snapshot()
	for _, series := range []string{
		"sg_migrations_started_total", "sg_migrations_completed_total",
		"sg_migrations_failed_total", "sg_migration_backfill_edges_total",
		"sg_failovers_total",
	} {
		if v := metricValue(t, s0, series); v != 0 {
			t.Fatalf("%s = %d on a fresh router", series, v)
		}
	}
	r0.Close()
	<-d0
}

// TestFailoverShardChild is the re-exec helper for the kill -9
// failover differential: a real worker process serving the dshard
// protocol, killed without warning by the parent. Skipped unless the
// parent set its environment.
func TestFailoverShardChild(t *testing.T) {
	addrFile := os.Getenv("SG_FAILOVER_ADDRFILE")
	if addrFile == "" {
		t.Skip("re-exec helper; driven by TestFailoverKillsWorkerProcess")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := dshard.NewServer()
	if err := os.WriteFile(addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatalf("write addr file: %v", err)
	}
	srv.Serve(ln) // until SIGKILL
}

// TestFailoverKillsWorkerProcess is the chaos differential: a real
// worker process is killed with SIGKILL mid-stream. With a redial
// budget, the router must stand up the hospice, evacuate the dead
// slot's queries onto the survivor, retire the slot, and let the
// EdgeLog pin advance past the kill point — with the final multiset
// byte-identical to the serial oracle (zero loss, zero duplication).
func TestFailoverKillsWorkerProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec chaos test; skipped in -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("executable: %v", err)
	}
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(exe, "-test.run", "^TestFailoverShardChild$")
	cmd.Env = append(os.Environ(), "SG_FAILOVER_ADDRFILE="+addrFile)
	if err := cmd.Start(); err != nil {
		t.Fatalf("start worker process: %v", err)
	}
	wait := make(chan error, 1)
	go func() { wait <- cmd.Wait() }()
	var addr string
	for deadline := time.Now().Add(10 * time.Second); ; {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = string(b)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker process never published its address")
		}
		time.Sleep(5 * time.Millisecond)
	}

	edges := testStream(1500)
	const window = 400
	r := New(Config{Shards: 1, Remotes: []string{addr}, Window: window, EvictEvery: 7, RedialBudget: 3})
	queries, strategies := testQueries(), testStrategies()
	for _, name := range sortedNames(queries) {
		if err := r.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	var mu sync.Mutex
	var got []string
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Drain(func(m Match) {
			mu.Lock()
			got = append(got, matchSig(m))
			mu.Unlock()
		})
	}()
	var ingested []stream.Edge
	feed := func(batch []stream.Edge) {
		r.IngestBatch(batch)
		ingested = append(ingested, batch...)
	}
	const batch = 50
	twoThirds := 2 * len(edges) / 3
	for lo := 0; lo < twoThirds; lo += batch {
		feed(edges[lo:min(lo+batch, twoThirds)])
	}
	// Make sure the doomed slot actually owns something.
	onRemote := 0
	for _, name := range r.Registered() {
		if ownerSlot(r, name) == 1 {
			onRemote++
		}
	}
	if onRemote == 0 {
		if err := r.Migrate("gre-tcp", ownerSlot(r, "gre-tcp"), 1); err != nil {
			t.Fatalf("seed the remote slot: %v", err)
		}
		onRemote = 1
	}
	seqAtKill := r.EdgesRouted()

	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no handlers, no goodbyes
		t.Fatalf("kill worker: %v", err)
	}
	<-wait

	for lo := twoThirds; lo < len(edges); lo += batch {
		feed(edges[lo:min(lo+batch, len(edges))])
	}
	// Failover + evacuation run asynchronously; keep the stream moving
	// (trims only run at ingest) until the slot is retired, every query
	// lives on the survivor, and the log pin has advanced past the kill
	// point.
	nextTS := edges[len(edges)-1].TS
	deadline := time.Now().Add(30 * time.Second)
	for {
		evacuated := true
		for _, name := range r.Registered() {
			if ownerSlot(r, name) != 0 {
				evacuated = false
			}
		}
		first, ok := r.log.FirstSeq()
		if evacuated && slotRetired(r, 1) && ok && first > seqAtKill {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failover never completed: evacuated=%v retired=%v logFirst=%d/%v (kill at %d)",
				evacuated, slotRetired(r, 1), first, ok, seqAtKill)
		}
		nextTS++
		feed([]stream.Edge{{Src: "fx", SrcLabel: "ip", Dst: "fy", DstLabel: "ip", Type: "TCP", TS: nextTS}})
		time.Sleep(2 * time.Millisecond)
	}
	r.Close()
	<-done

	want := append([]string(nil), runSerial(t, ingested, window)...)
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("workload produced no matches; differential is vacuous")
	}
	sort.Strings(got)
	if !equalStrings(got, want) {
		t.Fatalf("failover run: %d matches, want %d (multiset differs)", len(got), len(want))
	}
	samples := r.Metrics().Snapshot()
	if n := metricValue(t, samples, "sg_failovers_total"); n != 1 {
		t.Fatalf("sg_failovers_total = %d, want 1", n)
	}
	if n := metricValue(t, samples, "sg_migrations_completed_total"); n < int64(onRemote) {
		t.Fatalf("sg_migrations_completed_total = %d, want ≥ %d evacuations", n, onRemote)
	}
}

// TestFailoverNegativeControlBudgetZero pins the legacy behavior the
// budget replaces: with RedialBudget 0 a dead remote is redialed
// forever, no failover fires, the slot keeps its queries, and the
// EdgeLog cannot trim past the first unacknowledged batch.
func TestFailoverNegativeControlBudgetZero(t *testing.T) {
	addr, srv := startRemoteWorker(t)
	edges := testStream(900)
	const window = 400
	r := New(Config{Shards: 1, Remotes: []string{addr}, Window: window, EvictEvery: 7}) // budget 0
	queries, strategies := testQueries(), testStrategies()
	for _, name := range sortedNames(queries) {
		if err := r.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	done := make(chan int64, 1)
	go func() { done <- r.Drain(nil) }()
	half := len(edges) / 2
	for lo := 0; lo < half; lo += 50 {
		r.IngestBatch(edges[lo:min(lo+50, half)])
	}
	if ownerSlot(r, "gre-tcp") != 1 {
		if err := r.Migrate("gre-tcp", ownerSlot(r, "gre-tcp"), 1); err != nil {
			t.Fatalf("seed the remote slot: %v", err)
		}
	}
	seqDown := r.EdgesRouted()
	srv.Close() // listener and every connection die; redials fail from here on
	for lo := half; lo < len(edges); lo += 50 {
		r.IngestBatch(edges[lo:min(lo+50, len(edges))])
	}
	// Give the proxy ample time to burn through dial attempts: the
	// budgetless slot must never fail over.
	time.Sleep(1 * time.Second)
	if n := metricValue(t, r.Metrics().Snapshot(), "sg_failovers_total"); n != 0 {
		t.Fatalf("sg_failovers_total = %d with RedialBudget 0, want 0", n)
	}
	if slotRetired(r, 1) {
		t.Fatal("budgetless slot was retired")
	}
	if ownerSlot(r, "gre-tcp") != 1 {
		t.Fatal("budgetless dead slot lost its query")
	}
	if first, ok := r.log.FirstSeq(); ok && first > seqDown+1 {
		t.Fatalf("log trimmed to seq %d past the dead slot's unacked floor %d", first, seqDown+1)
	}
	// The router cannot drain a dead remote that owns queries; abandon
	// it (Close would block on the drain barrier — the documented
	// failure mode this control pins).
	_ = done
}

// --- migration × durability: staged kill -9 inside Migrate ----------

const migCrashStreamLen = 2000

func migCrashConfig(dir string) Config {
	return Config{Shards: 2, Window: 400, EvictEvery: 7, DataDir: dir, CheckpointEvery: 96}
}

// TestMigrateCrashChild is the re-exec helper for
// TestMigrateCrashDifferential. With SG_MIG_STAGE set it ingests half
// the stream, then SIGKILLs itself at the named stage inside a
// Migrate. Without it, it recovers, verifies the query landed on
// exactly one slot, and finishes the stream.
func TestMigrateCrashChild(t *testing.T) {
	dir := os.Getenv("SG_MIG_DIR")
	outPath := os.Getenv("SG_MIG_OUT")
	stage := os.Getenv("SG_MIG_STAGE")
	if dir == "" || outPath == "" {
		t.Skip("re-exec helper; driven by TestMigrateCrashDifferential")
	}
	out, err := os.OpenFile(outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open match log: %v", err)
	}
	defer out.Close()
	var wmu sync.Mutex
	emit := func(m Match) {
		wmu.Lock()
		fmt.Fprintf(out, "%s\n", matchSig(m))
		wmu.Unlock()
	}

	r, recovered, err := Open(migCrashConfig(dir))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, m := range recovered {
		emit(m)
	}
	done := make(chan struct{})
	go func() { defer close(done); r.Drain(emit) }()
	registerAll(t, r)

	edges := testStream(migCrashStreamLen)
	half := migCrashStreamLen / 2
	const batch = 23
	pos := int(r.EdgesRouted())
	for ; pos < half; pos += batch {
		r.IngestBatch(edges[pos:min(pos+batch, half)])
	}

	if stage != "" {
		die := func(s string) {
			if s == stage {
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
		migrateCrash, ckptCrash = die, die
		from := ownerSlot(r, "gre-tcp")
		err := r.Migrate("gre-tcp", from, 1-from)
		t.Fatalf("migrate survived stage %q (err=%v)", stage, err)
	}

	// Recovery run: the mid-migration crash must have left the query on
	// exactly one slot — never zero, never two.
	if regd := r.Registered(); len(regd) != 3 {
		t.Fatalf("recovered %d registrations, want 3: %v", len(regd), regd)
	}
	r.mu.Lock()
	totalOwned := 0
	for _, n := range r.owned {
		totalOwned += n
	}
	r.mu.Unlock()
	if totalOwned != 3 {
		t.Fatalf("slots own %d registrations in total, want 3", totalOwned)
	}
	if s := ownerSlot(r, "gre-tcp"); s < 0 {
		t.Fatal("migrated query has no owning slot after recovery")
	}
	for ; pos < len(edges); pos += batch {
		r.IngestBatch(edges[pos:min(pos+batch, len(edges))])
	}
	r.Close()
	<-done
	if err := r.PersistErr(); err != nil {
		t.Fatalf("persist error: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "DONE"), []byte("ok\n"), 0o644); err != nil {
		t.Fatalf("write sentinel: %v", err)
	}
}

// TestMigrateCrashDifferential kills -9 the router at each staged
// point inside a live migration on a durable topology — after the
// source extraction, after the target registration, and between the
// registry meta commit and the slot checkpoint publishes (the
// reconciliation window) — then recovers and finishes the stream. The
// union of delivered matches must equal the serial oracle (crash
// delivery is at-least-once: duplicates allowed, losses are the bug).
func TestMigrateCrashDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec crash schedule; skipped in -short")
	}
	edges := testStream(migCrashStreamLen)
	want := make(map[string]bool)
	for _, sig := range runSerial(t, edges, 400) {
		want[sig] = true
	}
	if len(want) == 0 {
		t.Fatal("workload produced no matches; differential is vacuous")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("executable: %v", err)
	}
	for _, stage := range []string{"extracted", "target-registered", "meta-committed"} {
		t.Run(stage, func(t *testing.T) {
			root := t.TempDir()
			dataDir := filepath.Join(root, "data")
			outPath := filepath.Join(root, "matches.log")
			sentinel := filepath.Join(dataDir, "DONE")

			run := func(stageEnv string) (error, string) {
				cmd := exec.Command(exe, "-test.run", "^TestMigrateCrashChild$")
				cmd.Env = append(os.Environ(),
					"SG_MIG_DIR="+dataDir, "SG_MIG_OUT="+outPath, "SG_MIG_STAGE="+stageEnv)
				out, err := cmd.CombinedOutput()
				return err, string(out)
			}
			err, out := run(stage)
			if err == nil {
				t.Fatalf("crashing child exited cleanly at stage %s:\n%s", stage, out)
			}
			if _, serr := os.Stat(sentinel); serr == nil {
				t.Fatalf("crashing child wrote the completion sentinel at stage %s", stage)
			}
			err, out = run("")
			if err != nil {
				t.Fatalf("recovery child failed after stage %s: %v\n%s", stage, err, out)
			}
			if _, serr := os.Stat(sentinel); serr != nil {
				t.Fatalf("recovery child finished without the sentinel:\n%s", out)
			}

			data, err := os.ReadFile(outPath)
			if err != nil {
				t.Fatalf("read match log: %v", err)
			}
			lines := splitDropTorn(string(data))
			got := make(map[string]bool)
			for _, ln := range lines {
				if ln != "" {
					got[ln] = true
				}
			}
			for sig := range want {
				if !got[sig] {
					t.Errorf("stage %s: match lost across the crash: %s", stage, sig)
				}
			}
			for sig := range got {
				if !want[sig] {
					t.Errorf("stage %s: spurious match after the crash: %s", stage, sig)
				}
			}
		})
	}
}

// splitDropTorn splits a line log, dropping a torn (unterminated)
// final line from a killed writer — its match was uncovered by any
// checkpoint and is re-emitted by the recovery run.
func splitDropTorn(data string) []string {
	lines := []string{}
	for {
		i := -1
		for j := 0; j < len(data); j++ {
			if data[j] == '\n' {
				i = j
				break
			}
		}
		if i < 0 {
			break // remainder (possibly torn) dropped
		}
		lines = append(lines, data[:i])
		data = data[i+1:]
	}
	return lines
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
