package shard

// Durable-runtime differentials: a router restarted from its data
// directory — cleanly or by kill -9 — must reproduce the serial
// engine's matches on the full stream, and the checkpoint cadence
// must bound what a long-lived remote registration pins in the log.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"streamgraph/internal/core"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/stream"
)

// registerAll registers the standard test queries on r, skipping any
// that a recovery already restored.
func registerAll(t *testing.T, r *Router) {
	t.Helper()
	have := make(map[string]bool)
	for _, name := range r.Registered() {
		have[name] = true
	}
	queries, strategies := testQueries(), testStrategies()
	for _, name := range sortedNames(queries) {
		if have[name] {
			continue
		}
		if err := r.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
}

// TestDurableCleanRestartMatchesSerial closes a durable router
// mid-stream and reopens it: the recovered engines (snapshot + log
// tail) must continue the stream exactly — the combined match multiset
// equals the serial oracle, with no duplicates, because a clean Close
// commits everything it emitted.
func TestDurableCleanRestartMatchesSerial(t *testing.T) {
	edges := testStream(1500)
	const window = 400
	want := append([]string(nil), runSerial(t, edges, window)...)
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("workload produced no matches; differential is vacuous")
	}
	for _, cut := range []int{731, 1024} { // mid-batch and batch-aligned restart points
		dir := t.TempDir()
		cfg := Config{Shards: 2, Window: window, EvictEvery: 7, DataDir: dir, CheckpointEvery: 128}
		var mu sync.Mutex
		var got []string
		collect := func(m Match) {
			mu.Lock()
			got = append(got, matchSig(m))
			mu.Unlock()
		}

		r, recovered, err := Open(cfg)
		if err != nil {
			t.Fatalf("cold open: %v", err)
		}
		if len(recovered) != 0 {
			t.Fatalf("cold open recovered %d matches from an empty dir", len(recovered))
		}
		registerAll(t, r)
		done := make(chan struct{})
		go func() { defer close(done); r.Drain(collect) }()
		for lo := 0; lo < cut; lo += 37 {
			hi := lo + 37
			if hi > cut {
				hi = cut
			}
			r.IngestBatch(edges[lo:hi])
		}
		r.Close()
		<-done
		if err := r.PersistErr(); err != nil {
			t.Fatalf("persist error before restart: %v", err)
		}

		r2, recovered, err := Open(cfg)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if got := r2.Registered(); len(got) != 3 {
			t.Fatalf("reopen restored %d registrations, want 3: %v", len(got), got)
		}
		if r2.EdgesRouted() != uint64(cut) {
			t.Fatalf("reopen resumes at seq %d, want %d", r2.EdgesRouted(), cut)
		}
		for _, m := range recovered {
			collect(m) // clean close: replay tail is empty, but tolerate re-emits symmetrically
		}
		done = make(chan struct{})
		go func() { defer close(done); r2.Drain(collect) }()
		for lo := cut; lo < len(edges); lo += 37 {
			hi := lo + 37
			if hi > len(edges) {
				hi = len(edges)
			}
			r2.IngestBatch(edges[lo:hi])
		}
		r2.Close()
		<-done

		sort.Strings(got)
		if !equalStrings(got, want) {
			t.Fatalf("cut=%d: restarted run differs from serial: %d matches, want %d", cut, len(got), len(want))
		}
	}
}

// TestDurableCheckpointAdvancesPin is the acceptance test for the
// tentpole bugfix: with checkpointing enabled, a long-lived lazy
// remote registration must NOT pin the edge log at its
// registration-time window floor forever. The pin floor, the
// in-memory log's first retained seq, and the durable log's first
// retained seq must all advance past the registration's floor as
// snapshot checkpoints retire the replay entitlement.
func TestDurableCheckpointAdvancesPin(t *testing.T) {
	addr, _ := startRemoteWorker(t)
	const window = 100
	edges := testStream(4000)

	cfg := Config{
		Shards: 0, Remotes: []string{addr}, Window: window, EvictEvery: 7,
		DataDir: t.TempDir(), CheckpointEvery: 64, SegmentBytes: 4 << 10,
	}
	r, _, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	registerAll(t, r) // lazy gre-tcp lives on the remote slot for the whole stream
	done := make(chan int64, 1)
	go func() { done <- r.Drain(nil) }()

	// The registration-time window floor the PR 5 runtime would have
	// frozen the pin at: the log is empty, so it is at most 1-window.
	// (Sampling pinFloor here races with the Register-triggered
	// checkpoint round, which can retire the pin immediately.)
	rs := r.workers[0].remote
	regFloor := int64(1 - window)

	deadline := time.Now().Add(15 * time.Second)
	lo, batch := 0, 64
	advanced := false
	for time.Now().Before(deadline) {
		if lo < len(edges) {
			hi := lo + batch
			if hi > len(edges) {
				hi = len(edges)
			}
			r.IngestBatch(edges[lo:hi])
			lo = hi
		} else {
			// Keep the stream moving so trims keep running while the last
			// snapshot round's acknowledgment lands.
			r.IngestBatch([]stream.Edge{{Src: "x", SrcLabel: "ip", Dst: "y", DstLabel: "ip", Type: "TCP", TS: edges[len(edges)-1].TS + 1}})
		}
		memFirst, _ := r.log.FirstSeq()
		if rs.pinFloor() > regFloor && memFirst > 0 && r.dlog.FirstSeq() > 0 {
			advanced = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	memFirst, _ := r.log.FirstSeq()
	if !advanced {
		t.Fatalf("pin never advanced: pinFloor=%d (registration floor %d), log firstSeq=%d, durable firstSeq=%d",
			rs.pinFloor(), regFloor, memFirst, r.dlog.FirstSeq())
	}
	if n, total := r.log.NumEdges(), r.EdgesRouted(); uint64(n) >= total {
		t.Fatalf("in-memory log still retains all %d of %d edges", n, total)
	}
	r.Close()
	<-done
	if err := r.PersistErr(); err != nil {
		t.Fatalf("persist error: %v", err)
	}

	// Negative control — the PR 5 failure mode: with checkpoints
	// effectively disabled, the registration floor pins the in-memory
	// log forever and the first retained seq never moves.
	r2 := New(Config{Shards: 0, Remotes: []string{addr}, Window: window, EvictEvery: 7, CheckpointEvery: 1 << 30})
	registerAll(t, r2)
	done2 := make(chan int64, 1)
	go func() { done2 <- r2.Drain(nil) }()
	for lo := 0; lo < len(edges); lo += 64 {
		hi := lo + 64
		if hi > len(edges) {
			hi = len(edges)
		}
		r2.IngestBatch(edges[lo:hi])
	}
	first, ok := r2.log.FirstSeq()
	if ok && first != 0 {
		t.Fatalf("control run trimmed the log to seq %d despite the registration pin", first)
	}
	if n := r2.log.NumEdges(); n != len(edges) {
		t.Fatalf("control run retains %d edges, want all %d (unbounded pin)", n, len(edges))
	}
	r2.Close()
	<-done2
}

// crashStreamLen and the child's config are shared by the kill -9
// differential's parent and re-exec'd child.
const crashStreamLen = 3000

func crashChildConfig(dir string) Config {
	return Config{Shards: 2, Window: 400, EvictEvery: 7, DataDir: dir, CheckpointEvery: 96}
}

// TestCrashRecoveryChild is the re-exec helper for
// TestCrashRecoveryDifferential: it opens (or recovers) the durable
// router, appends every delivered match signature to the shared log
// file, and streams from wherever the durable log says the previous
// process died. Skipped unless the parent set its environment.
func TestCrashRecoveryChild(t *testing.T) {
	dir := os.Getenv("SG_CRASH_DIR")
	outPath := os.Getenv("SG_CRASH_OUT")
	if dir == "" || outPath == "" {
		t.Skip("re-exec helper; driven by TestCrashRecoveryDifferential")
	}
	out, err := os.OpenFile(outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open match log: %v", err)
	}
	defer out.Close()
	var wmu sync.Mutex
	emit := func(m Match) {
		// One write(2) per line: the durable delivery barrier guarantees
		// any match covered by a committed checkpoint had this callback
		// complete first, so a kill -9 can only ever lose lines the next
		// run re-emits.
		wmu.Lock()
		fmt.Fprintf(out, "%s\n", matchSig(m))
		wmu.Unlock()
	}

	r, recovered, err := Open(crashChildConfig(dir))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, m := range recovered {
		emit(m)
	}
	done := make(chan struct{})
	go func() { defer close(done); r.Drain(emit) }()
	registerAll(t, r)

	edges := testStream(crashStreamLen)
	const batch = 23
	for lo := int(r.EdgesRouted()); lo < len(edges); lo += batch {
		hi := lo + batch
		if hi > len(edges) {
			hi = len(edges)
		}
		r.IngestBatch(edges[lo:hi])
	}
	r.Close()
	<-done
	if err := r.PersistErr(); err != nil {
		t.Fatalf("persist error: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "DONE"), []byte("ok\n"), 0o644); err != nil {
		t.Fatalf("write sentinel: %v", err)
	}
}

// TestCrashRecoveryDifferential kills -9 a child process mid-stream,
// over and over, until one run survives to the end; the union of every
// run's delivered matches must equal the serial oracle's as a
// content-unique set (delivery across a crash is at-least-once, so
// duplicates are expected and losses are the bug).
func TestCrashRecoveryDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec crash schedule; skipped in -short")
	}
	edges := testStream(crashStreamLen)
	want := make(map[string]bool)
	for _, sig := range runSerial(t, edges, 400) {
		want[sig] = true
	}
	if len(want) == 0 {
		t.Fatal("workload produced no matches; differential is vacuous")
	}

	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("executable: %v", err)
	}
	root := t.TempDir()
	dataDir := filepath.Join(root, "data")
	outPath := filepath.Join(root, "matches.log")
	sentinel := filepath.Join(dataDir, "DONE")

	kills := 0
	completed := false
	for attempt := 0; attempt < 60 && !completed; attempt++ {
		cmd := exec.Command(exe, "-test.run", "^TestCrashRecoveryChild$")
		cmd.Env = append(os.Environ(), "SG_CRASH_DIR="+dataDir, "SG_CRASH_OUT="+outPath)
		var output strings.Builder
		cmd.Stdout, cmd.Stderr = &output, &output
		if err := cmd.Start(); err != nil {
			t.Fatalf("start child: %v", err)
		}
		wait := make(chan error, 1)
		go func() { wait <- cmd.Wait() }()
		// Grow the grace period exponentially so every schedule eventually
		// finishes even on a slow (race-instrumented) machine; early
		// attempts die young, often mid-recovery.
		delay := time.Duration(12*(1<<uint(attempt/4))) * time.Millisecond
		if delay > 10*time.Second {
			delay = 10 * time.Second
		}
		select {
		case err := <-wait:
			if _, serr := os.Stat(sentinel); serr == nil {
				completed = true
			} else {
				t.Fatalf("child exited without finishing (err=%v):\n%s", err, output.String())
			}
		case <-time.After(delay):
			cmd.Process.Kill() // SIGKILL: no handlers, no flushes, no goodbyes
			<-wait
			kills++
		}
	}
	if !completed {
		t.Fatal("no child run completed within the kill schedule")
	}
	if kills == 0 {
		t.Fatal("first child outran the kill timer; crash schedule is vacuous")
	}

	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("read match log: %v", err)
	}
	lines := strings.Split(string(data), "\n")
	if last := lines[len(lines)-1]; last != "" {
		lines = lines[:len(lines)-1] // torn final write of a killed run; its match was uncovered and re-emitted
	}
	got := make(map[string]bool)
	for _, ln := range lines {
		if ln != "" {
			got[ln] = true
		}
	}
	for sig := range want {
		if !got[sig] {
			t.Errorf("match lost across %d kills: %s", kills, sig)
		}
	}
	for sig := range got {
		if !want[sig] {
			t.Errorf("spurious match after %d kills: %s", kills, sig)
		}
	}
	t.Logf("crash differential: %d kills, %d unique matches", kills, len(got))
}

// TestOpenValidation pins the durable-mode entry checks.
func TestOpenValidation(t *testing.T) {
	if _, _, err := Open(Config{Shards: 1}); err == nil {
		t.Fatal("Open without DataDir succeeded")
	}
	if _, _, err := Open(Config{Shards: 1, DataDir: t.TempDir(), Ordered: true}); err == nil {
		t.Fatal("Open with Ordered succeeded")
	}
}

// TestMetaFileRoundTrip pins the router.meta codec, collector state
// and registration records included.
func TestMetaFileRoundTrip(t *testing.T) {
	stats := selectivity.NewCollector()
	stats.AddAll(testStream(200))
	in := routerMeta{
		ckptSeq:   4242,
		collector: stats.Snapshot(),
		regs: []metaReg{
			{
				name: "q1", slot: 1, rank: 0, fpTypes: []string{"GRE", "TCP"}, fpExact: true,
				query: "path(a:ip)-[GRE]->(b:ip)-[TCP]->(c:ip)",
				cfg: core.Config{
					Strategy: core.StrategySingleLazy, MaxMatchesPerSearch: 7,
					MaxWorkPerEdge: -1, MaxStepsPerSearch: 99, BatchWorkers: 2,
					Leaves: [][]int{{0}, {1}},
				},
			},
			{name: "q2", slot: 0, rank: 3, fpExact: false, query: "x", cfg: core.Config{Strategy: core.StrategyVF2}},
		},
	}
	path := filepath.Join(t.TempDir(), "router.meta")
	if err := writeMetaFile(path, in); err != nil {
		t.Fatalf("write: %v", err)
	}
	out, err := readMetaFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if out.ckptSeq != in.ckptSeq {
		t.Fatalf("ckptSeq %d, want %d", out.ckptSeq, in.ckptSeq)
	}
	if out.collector == nil || out.collector.EdgeTotal != in.collector.EdgeTotal ||
		len(out.collector.Paths) != len(in.collector.Paths) || len(out.collector.Vertices) != len(in.collector.Vertices) {
		t.Fatalf("collector state did not round-trip")
	}
	if len(out.regs) != 2 {
		t.Fatalf("%d regs, want 2", len(out.regs))
	}
	r1 := out.regs[0]
	if r1.name != "q1" || r1.slot != 1 || r1.rank != 0 || !r1.fpExact ||
		strings.Join(r1.fpTypes, ",") != "GRE,TCP" || r1.query != in.regs[0].query {
		t.Fatalf("reg q1 did not round-trip: %+v", r1)
	}
	c := r1.cfg
	if c.Strategy != core.StrategySingleLazy || c.MaxMatchesPerSearch != 7 || c.MaxWorkPerEdge != -1 ||
		c.MaxStepsPerSearch != 99 || c.BatchWorkers != 2 || len(c.Leaves) != 2 || c.Leaves[1][0] != 1 {
		t.Fatalf("reg cfg did not round-trip: %+v", c)
	}
	if out.regs[1].cfg.Leaves != nil {
		t.Fatal("nil leaves decoded non-nil")
	}
	// Missing file is a cold start, not an error.
	if m, err := readMetaFile(filepath.Join(t.TempDir(), "absent")); err != nil || m != nil {
		t.Fatalf("absent meta: %v, %v", m, err)
	}
}
