package shard

// Distributed-runtime differentials: remote and mixed topologies over
// loopback TCP must be byte-identical (as match multisets, and in
// ordered mode as exact sequences) to the serial MultiEngine and the
// in-process runtime — including across mid-stream disconnects, where
// the reconnect replay must lose and duplicate nothing.

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"

	"streamgraph/internal/core"
	"streamgraph/internal/dshard"
	"streamgraph/internal/query"
	"streamgraph/internal/stream"
)

// startRemoteWorker serves the dshard protocol on loopback and returns
// the address plus the server (for Kick-based failure injection).
func startRemoteWorker(t *testing.T) (string, *dshard.Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := dshard.NewServer()
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return ln.Addr().String(), srv
}

// TestRemoteMatchesSerial is the cross-topology differential: per-query
// match multisets from all-remote and mixed local/remote topologies
// must equal the serial MultiEngine on the same stream.
func TestRemoteMatchesSerial(t *testing.T) {
	edges := testStream(1500)
	const window = 400
	want := append([]string(nil), runSerial(t, edges, window)...)
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("workload produced no matches; differential is vacuous")
	}
	addr1, _ := startRemoteWorker(t)
	addr2, _ := startRemoteWorker(t)
	topologies := []struct {
		name string
		cfg  Config
	}{
		{"all-remote-1", Config{Shards: 0, Remotes: []string{addr1}}},
		{"all-remote-2", Config{Shards: 0, Remotes: []string{addr1, addr2}}},
		{"mixed-1-1", Config{Shards: 1, Remotes: []string{addr1}}},
		{"mixed-2-2", Config{Shards: 2, Remotes: []string{addr1, addr2}}},
	}
	for _, tp := range topologies {
		for _, batch := range []int{1, 64, 257} {
			cfg := tp.cfg
			cfg.Window = window
			cfg.EvictEvery = 7
			got := runSharded(t, edges, cfg, batch)
			sort.Strings(got)
			if !equalStrings(got, want) {
				t.Fatalf("%s batch=%d: %d matches, want %d (multiset differs)",
					tp.name, batch, len(got), len(want))
			}
		}
	}
}

// TestRemoteOrderedDeterministic requires ordered mode to reproduce the
// batch reference's exact output sequence over remote and mixed
// topologies, just as it does in-process.
func TestRemoteOrderedDeterministic(t *testing.T) {
	edges := testStream(1200)
	const window = 400
	addr1, _ := startRemoteWorker(t)
	addr2, _ := startRemoteWorker(t)
	for _, batch := range []int{1, 100} {
		want := runGroupedReference(t, edges, window, batch)
		if len(want) == 0 {
			t.Fatal("reference produced no matches")
		}
		for _, tp := range []struct {
			name string
			cfg  Config
		}{
			{"all-remote", Config{Shards: 0, Remotes: []string{addr1, addr2}}},
			{"mixed", Config{Shards: 2, Remotes: []string{addr1}}},
		} {
			cfg := tp.cfg
			cfg.Window = window
			cfg.EvictEvery = 7
			cfg.Ordered = true
			got := runSharded(t, edges, cfg, batch)
			if len(got) != len(want) {
				t.Fatalf("%s batch=%d: %d matches, want %d", tp.name, batch, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s batch=%d: delivery order diverges at %d:\n got %s\nwant %s",
						tp.name, batch, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRemoteDisconnectReconnect is the failure-path differential: the
// remote worker's connections are severed repeatedly mid-stream, the
// proxy reconnects and replays, and the delivered match multiset must
// still equal the serial engine exactly — no duplicates, no losses.
func TestRemoteDisconnectReconnect(t *testing.T) {
	edges := testStream(1500)
	const window = 400
	want := append([]string(nil), runSerial(t, edges, window)...)
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("workload produced no matches; differential is vacuous")
	}
	addr, srv := startRemoteWorker(t)
	for _, batch := range []int{33, 128} {
		r := New(Config{Shards: 1, Remotes: []string{addr}, Window: window, EvictEvery: 7})
		queries, strategies := testQueries(), testStrategies()
		for _, name := range sortedNames(queries) {
			if err := r.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
				t.Fatalf("register %s: %v", name, err)
			}
		}
		var mu sync.Mutex
		var got []string
		done := make(chan struct{})
		go func() {
			defer close(done)
			r.Drain(func(m Match) {
				mu.Lock()
				got = append(got, matchSig(m))
				mu.Unlock()
			})
		}()
		kicks := 0
		for lo := 0; lo < len(edges); lo += batch {
			hi := lo + batch
			if hi > len(edges) {
				hi = len(edges)
			}
			r.IngestBatch(edges[lo:hi])
			// Sever every connection at several points mid-stream: the
			// proxy must reconnect and rebuild the remote engine by
			// replaying its entitlement from the shared edge log.
			if lo > 0 && lo/batch%4 == 0 {
				srv.Kick()
				kicks++
			}
		}
		if kicks == 0 {
			t.Fatal("stream too short to exercise any disconnect")
		}
		r.Close()
		<-done
		sort.Strings(got)
		if !equalStrings(got, want) {
			t.Fatalf("batch=%d after %d kicks: %d matches, want %d (multiset differs)",
				batch, kicks, len(got), len(want))
		}
	}
}

// TestRemoteRegisterUnregisterMidStream exercises runtime registration
// changes on a mixed topology, interleaved with disconnects: a query
// registered mid-stream backfills its window over the wire, an
// unregistered one narrows the remote replica, and the survivors'
// match sets stay exact.
func TestRemoteRegisterUnregisterMidStream(t *testing.T) {
	edges := testStream(1400)
	const window = 300
	const batch = 50
	// Serial oracle with the same schedule: q extra registered after
	// the first third, unregistered after the second third.
	third := len(edges) / 3

	queries, strategies := testQueries(), testStrategies()
	names := sortedNames(queries)
	extra := queries["gre-tcp"].Clone()

	serial := func() []string {
		m := core.NewMulti(core.MultiConfig{Window: window, EvictEvery: 7})
		for _, name := range names {
			if err := m.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
				t.Fatalf("register %s: %v", name, err)
			}
		}
		var sigs []string
		record := func(nms []core.NamedMatch) {
			for _, nm := range nms {
				if nm.Query == "extra" {
					continue // mid-stream lifecycle; only survivors compared
				}
				sigs = append(sigs, serialSig(m, nm))
			}
		}
		for i, se := range edges {
			if i == third {
				if err := m.Register("extra", extra, core.Config{Strategy: core.StrategySingleLazy}); err != nil {
					t.Fatalf("register extra: %v", err)
				}
			}
			if i == 2*third {
				m.Unregister("extra")
			}
			record(m.ProcessEdge(se))
		}
		return sigs
	}()
	sort.Strings(serial)
	if len(serial) == 0 {
		t.Fatal("no matches; differential is vacuous")
	}

	addr, srv := startRemoteWorker(t)
	r := New(Config{Shards: 1, Remotes: []string{addr}, Window: window, EvictEvery: 7})
	for _, name := range names {
		if err := r.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	var mu sync.Mutex
	var got []string
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Drain(func(m Match) {
			if m.Query == "extra" {
				return
			}
			mu.Lock()
			got = append(got, matchSig(m))
			mu.Unlock()
		})
	}()
	for lo := 0; lo < len(edges); lo += batch {
		hi := lo + batch
		if hi > len(edges) {
			hi = len(edges)
		}
		if lo <= third && third < hi {
			r.IngestBatch(edges[lo:third])
			if err := r.Register("extra", extra, core.Config{Strategy: core.StrategySingleLazy}); err != nil {
				t.Fatalf("register extra: %v", err)
			}
			srv.Kick() // the freshly backfilled registration must survive a reconnect
			r.IngestBatch(edges[third:hi])
			continue
		}
		if lo <= 2*third && 2*third < hi {
			r.IngestBatch(edges[lo : 2*third])
			r.Unregister("extra")
			r.IngestBatch(edges[2*third : hi])
			srv.Kick()
			continue
		}
		r.IngestBatch(edges[lo:hi])
	}
	r.Close()
	<-done
	sort.Strings(got)
	if !equalStrings(got, serial) {
		t.Fatalf("survivor multiset differs: %d matches, want %d", len(got), len(serial))
	}
}

// TestRemoteDisconnectReconnectRandomized drives randomized streams,
// batch splits, kick points and registration churn against the serial
// oracle.
func TestRemoteDisconnectReconnectRandomized(t *testing.T) {
	addr, srv := startRemoteWorker(t)
	rng := rand.New(rand.NewSource(777))
	types := []string{"GRE", "TCP", "UDP", "ICMP"}
	for trial := 0; trial < 4; trial++ {
		nEdges := 400 + rng.Intn(400)
		var edges []stream.Edge
		for i := 0; i < nEdges; i++ {
			edges = append(edges, stream.Edge{
				Src: fmt.Sprintf("n%d", rng.Intn(50)), SrcLabel: "ip",
				Dst: fmt.Sprintf("n%d", rng.Intn(50)), DstLabel: "ip",
				Type: types[rng.Intn(len(types))], TS: int64(i + 1),
			})
		}
		window := int64(100 + rng.Intn(300))
		want := append([]string(nil), runSerial(t, edges, window)...)
		sort.Strings(want)

		cfg := Config{Window: window, EvictEvery: 1 + rng.Intn(10)}
		if rng.Intn(2) == 0 {
			cfg.Shards, cfg.Remotes = 1+rng.Intn(2), []string{addr}
		} else {
			cfg.Shards, cfg.Remotes = 0, []string{addr, addr} // two slots, one process
		}
		r := New(cfg)
		queries, strategies := testQueries(), testStrategies()
		for _, name := range sortedNames(queries) {
			if err := r.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
				t.Fatalf("register %s: %v", name, err)
			}
		}
		var mu sync.Mutex
		var got []string
		done := make(chan struct{})
		go func() {
			defer close(done)
			r.Drain(func(m Match) {
				mu.Lock()
				got = append(got, matchSig(m))
				mu.Unlock()
			})
		}()
		for lo := 0; lo < len(edges); {
			hi := lo + 1 + rng.Intn(120)
			if hi > len(edges) {
				hi = len(edges)
			}
			r.IngestBatch(edges[lo:hi])
			if rng.Intn(5) == 0 {
				srv.Kick()
			}
			lo = hi
		}
		r.Close()
		<-done
		sort.Strings(got)
		if !equalStrings(got, want) {
			t.Fatalf("trial %d (%+v): %d matches, want %d (multiset differs)",
				trial, cfg, len(got), len(want))
		}
	}
}

// TestRemoteChunkedFrames forces the wire-chunking path (tiny chunk
// bound, so every batch and every registration backfill splits into
// many frames) through the full differential, disconnects included:
// chunk boundaries must never affect match sets. It runs under both
// wire encodings — the v2 dictionary connection (where a reconnect
// also resets the dictionaries mid-differential) and the forced v1
// fallback.
func TestRemoteChunkedFrames(t *testing.T) {
	for _, wire := range []struct {
		name string
		mode WireMode
	}{{"v2-dict", WireAuto}, {"v1-legacy", WireLegacy}} {
		t.Run(wire.name, func(t *testing.T) {
			testRemoteChunkedFrames(t, wire.mode)
		})
	}
}

func testRemoteChunkedFrames(t *testing.T, wire WireMode) {
	old := remoteChunkBytes
	remoteChunkBytes = 512 // a few edges per frame
	defer func() { remoteChunkBytes = old }()

	edges := testStream(1200)
	const window = 400
	const batch = 97
	want := append([]string(nil), runSerial(t, edges, window)...)
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("workload produced no matches; differential is vacuous")
	}
	addr, srv := startRemoteWorker(t)
	r := New(Config{Shards: 1, Remotes: []string{addr}, Window: window, EvictEvery: 7, Wire: wire})
	queries, strategies := testQueries(), testStrategies()
	names := sortedNames(queries)
	// Register all but one up front; the last one mid-stream, so its
	// (chunked) backfill payload is exercised too.
	last := names[len(names)-1]
	for _, name := range names[:len(names)-1] {
		if err := r.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	var mu sync.Mutex
	var got []string
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Drain(func(m Match) {
			if m.Query == last {
				return // registered later than the serial oracle's schedule
			}
			mu.Lock()
			got = append(got, matchSig(m))
			mu.Unlock()
		})
	}()
	for lo := 0; lo < len(edges); lo += batch {
		hi := lo + batch
		if hi > len(edges) {
			hi = len(edges)
		}
		r.IngestBatch(edges[lo:hi])
		if lo/batch == 4 {
			if err := r.Register(last, queries[last].Clone(), core.Config{Strategy: strategies[last]}); err != nil {
				t.Fatalf("register %s: %v", last, err)
			}
			r.Unregister(last)
		}
		if lo/batch%3 == 2 {
			srv.Kick()
		}
	}
	r.Close()
	<-done
	// The serial oracle registered every query from the start, so drop
	// `last` there too.
	want = want[:0]
	for _, s := range runSerial(t, edges, window) {
		if !strings.HasPrefix(s, last+"|") {
			want = append(want, s)
		}
	}
	sort.Strings(want)
	sort.Strings(got)
	if !equalStrings(got, want) {
		t.Fatalf("chunked frames: %d matches, want %d (multiset differs)", len(got), len(want))
	}
}

// TestRemoteWireSafeQueryValidation pins the register-time guard: a
// programmatically built query whose names would tokenize differently
// after the wire's print/parse round trip must be rejected in a remote
// topology instead of silently diverging from a local slot.
func TestRemoteWireSafeQueryValidation(t *testing.T) {
	addr, _ := startRemoteWorker(t)
	r := New(Config{Shards: 0, Remotes: []string{addr}})
	done := make(chan int64, 1)
	go func() { done <- r.Drain(nil) }()
	bad := &query.Graph{
		Vertices: []query.Vertex{{Name: "host a", Label: "ip"}, {Name: "b", Label: "ip"}},
		Edges:    []query.Edge{{Src: 0, Dst: 1, Type: "TCP"}},
	}
	if err := r.Register("bad", bad, core.Config{Strategy: core.StrategyVF2}); err == nil {
		t.Fatal("whitespace vertex name registered on a remote topology")
	}
	good := query.NewPath("ip", "TCP")
	if err := r.Register("good", good, core.Config{Strategy: core.StrategyVF2}); err != nil {
		t.Fatalf("wire-safe query rejected: %v", err)
	}
	r.Close()
	<-done
}

// TestRemoteStatsGauges checks the replica gauges round-trip from the
// remote worker (piggybacked on acknowledgments).
func TestRemoteStatsGauges(t *testing.T) {
	addr, _ := startRemoteWorker(t)
	edges := testStream(600)
	r := New(Config{Shards: 0, Remotes: []string{addr}, Window: 400})
	queries, strategies := testQueries(), testStrategies()
	for _, name := range sortedNames(queries) {
		if err := r.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	done := make(chan int64, 1)
	go func() { done <- r.Drain(nil) }()
	r.IngestBatch(edges)
	r.Close()
	if n := <-done; n == 0 {
		t.Fatal("no matches drained")
	}
	st := r.Stats()[0]
	if st.ReplicaStored == 0 || st.ReplicaEdges == 0 {
		t.Fatalf("replica gauges not populated: %+v", st)
	}
	if st.ReplicaTypes < 0 {
		t.Fatalf("filtered remote replica reports universal types: %+v", st)
	}
	if st.MatchesEmitted == 0 || st.EdgesRouted == 0 {
		t.Fatalf("counters not populated: %+v", st)
	}
}

// TestRemoteLegacyServerFallback is the version-mismatch differential
// in the new-router/old-worker direction: against a server that speaks
// only v1 (Server.LegacyV1), a WireAuto router's first v2 handshake
// fails, the sticky peerV1 flag flips, the redial speaks v1, and the
// stream must still complete with the exact serial match multiset —
// kicks included, so the fallback also holds across reconnects.
func TestRemoteLegacyServerFallback(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := dshard.NewServer()
	srv.LegacyV1 = true
	go srv.Serve(ln)
	defer srv.Close()

	edges := testStream(1200)
	const window = 400
	want := append([]string(nil), runSerial(t, edges, window)...)
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("workload produced no matches; differential is vacuous")
	}
	r := New(Config{Shards: 1, Remotes: []string{ln.Addr().String()}, Window: window, EvictEvery: 7})
	queries, strategies := testQueries(), testStrategies()
	for _, name := range sortedNames(queries) {
		if err := r.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	var mu sync.Mutex
	var got []string
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Drain(func(m Match) {
			mu.Lock()
			got = append(got, matchSig(m))
			mu.Unlock()
		})
	}()
	const batch = 97
	for lo := 0; lo < len(edges); lo += batch {
		hi := lo + batch
		if hi > len(edges) {
			hi = len(edges)
		}
		r.IngestBatch(edges[lo:hi])
		if lo/batch%4 == 3 {
			srv.Kick()
		}
	}
	r.Close()
	<-done
	sort.Strings(got)
	if !equalStrings(got, want) {
		t.Fatalf("legacy fallback: %d matches, want %d (multiset differs)", len(got), len(want))
	}
	// The fallback actually engaged: the slot is marked v1.
	for _, w := range r.workers {
		if w.remote != nil && !w.remote.peerV1.Load() {
			t.Fatal("peerV1 never set against a legacy server")
		}
	}
}

// TestRemoteWireModes runs the cross-topology differential under every
// client wire mode against a current server: match multisets must be
// identical whichever encoding is negotiated.
func TestRemoteWireModes(t *testing.T) {
	edges := testStream(1000)
	const window = 300
	want := append([]string(nil), runSerial(t, edges, window)...)
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("workload produced no matches; differential is vacuous")
	}
	addr, _ := startRemoteWorker(t)
	for _, wire := range []struct {
		name string
		mode WireMode
	}{{"auto", WireAuto}, {"dict-only", WireDictOnly}, {"legacy", WireLegacy}} {
		cfg := Config{Shards: 1, Remotes: []string{addr}, Window: window, EvictEvery: 7, Wire: wire.mode}
		got := runSharded(t, edges, cfg, 64)
		sort.Strings(got)
		if !equalStrings(got, want) {
			t.Fatalf("%s: %d matches, want %d (multiset differs)", wire.name, len(got), len(want))
		}
	}
}
