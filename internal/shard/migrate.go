// Live query migration and elastic topology: Router.Migrate moves one
// standing query between shard slots without losing or duplicating a
// match; AddSlot/RemoveSlot grow and shrink the topology around it;
// Rebalance is the hot-spot policy loop; and a remote slot whose
// redial budget runs out fails over automatically (failoverEvacuate),
// re-homing its registrations onto the survivors instead of pinning
// the EdgeLog forever.
//
// A migration is a three-phase handoff, executed under ingestMu so it
// happens at one definite stream position with no edges in flight:
//
//  1. Drain + extract on the source. A local source handles
//     msgMigrateOut at its queue position: flush the retro barrier
//     (standard unregister discipline), clone the query's state
//     (persist.CloneQuery) and unregister it. A remote source runs a
//     drain barrier instead — request a checkpoint and wait for the
//     snapshot adoption (every admitted frame acknowledged, the image
//     serialized at the barrier position), then extract the query
//     from the snapshot image; its pending retrospective work rides
//     the clone un-flushed, exactly like a crash restore's, and the
//     migrate-unregister tells the worker to skip its flush barrier.
//     The slot's retained restore image is stripped of the query
//     BEFORE the unregister is sent, so a connection death anywhere
//     in the handoff can only replay the unregister as a no-op —
//     never resurrect state that already left.
//  2. Re-home. The target registers the query at the same stream
//     position — the normal register path: gate widening, in-window
//     backfill from the shared EdgeLog — and then grafts the clone on
//     (persist.TransplantState locally, the register frame's State
//     image remotely). Per-query state crosses exactly once, so the
//     match multiset is exactly the serial engine's through arbitrary
//     migration schedules (pinned by the package's differential
//     tests).
//  3. Commit. Ownership moves, and on a durable router the registry
//     slot assignment commits through a checkpoint round. A crash
//     between any two steps recovers to the query living on exactly
//     one slot (see Open's reconciliation and the staged-crash test).
package shard

import (
	"bytes"
	"fmt"
	"math"
	"time"

	"streamgraph/internal/core"
	"streamgraph/internal/dshard"
	"streamgraph/internal/graph"
	"streamgraph/internal/persist"
	"streamgraph/internal/query"
)

// migrateDrainTimeout bounds a remote source's drain barrier: how long
// Migrate waits for the slot to acknowledge everything outstanding and
// adopt a fresh snapshot. A variable so the failure-path tests can
// shorten it.
var migrateDrainTimeout = 30 * time.Second

// migrateCrash, when non-nil, is invoked at named stages of a
// migration ("extracted", "target-registered") — the staged kill
// points of the crash-recovery differential tests. Test-only.
var migrateCrash func(stage string)

func migrateStage(stage string) {
	if migrateCrash != nil {
		migrateCrash(stage)
	}
}

// wireSafe reports whether the query survives the textual round trip a
// remote registration takes (the parser's own print/parse fixed point).
func wireSafe(q *query.Graph) error {
	if rt, err := query.Parse(q.String()); err != nil || rt.String() != q.String() {
		return fmt.Errorf("is not wire-safe: vertex names, labels and edge types must be whitespace-free tokens in a remote topology")
	}
	return nil
}

// Owner reports the shard slot that currently owns the named query,
// false if the name is not registered. The answer is advisory in the
// presence of concurrent Migrate/Rebalance calls — pass it to Migrate
// and a stale read surfaces as the "does not own" error, never as a
// misroute.
func (r *Router) Owner(name string) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.owner[name]
	if !ok {
		return 0, false
	}
	return w.id, true
}

// Migrate moves query name from slot from to slot to, live: no match
// is lost or duplicated across the handoff, and ingestion admitted
// after Migrate returns is seen only by the target. It blocks until
// the target has acknowledged the registration (matches must keep
// being consumed meanwhile, as with Register and Close). On error the
// query is left registered — on the source when the extraction
// failed, re-placed on the source when the target refused it.
//
// Not available in Ordered mode: the deterministic merge relies on a
// static query→slot assignment.
func (r *Router) Migrate(name string, from, to int) error {
	if r.cfg.Ordered {
		return fmt.Errorf("shard: migration is not available in Ordered mode")
	}
	if from == to {
		return fmt.Errorf("shard: migration source and target are the same slot %d", from)
	}
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	return r.migrateLocked(name, from, to)
}

// migrateLocked is Migrate under ingestMu (RemoveSlot batches several).
func (r *Router) migrateLocked(name string, from, to int) error {
	if r.closed {
		return fmt.Errorf("shard: router is closed")
	}
	if from < 0 || from >= len(r.workers) || to < 0 || to >= len(r.workers) {
		return fmt.Errorf("shard: migration slot out of range (have %d slots)", len(r.workers))
	}
	src, dst := r.workers[from], r.workers[to]
	if dst.retired {
		return fmt.Errorf("shard: migration target slot %d is retired", to)
	}
	r.mu.Lock()
	ownedBy := r.owner[name]
	r.mu.Unlock()
	if ownedBy != src {
		return fmt.Errorf("shard: query %q is not registered on slot %d", name, from)
	}
	r.tel.migStarted.Inc()
	fail := func(err error) error {
		r.tel.migFailed.Inc()
		return err
	}

	var fp fprint
	if r.filtering {
		fp = r.fps[name]
	}
	seq := r.seq.Load()

	// Phase 1: drain the source and extract the query's state.
	drainStart := r.tel.now()
	var clone *core.MultiEngine
	var rank int
	if src.remote == nil {
		if src.retired {
			return fail(fmt.Errorf("shard: migration source slot %d is retired", from))
		}
		xout := make(chan migrateOut, 1)
		src.in <- message{kind: msgMigrateOut, name: name, seq: seq, fpTypes: fp.types, fpExact: fp.exact, xout: xout}
		out := <-xout
		if out.err != nil {
			return fail(fmt.Errorf("shard: migrate %q out of slot %d: %w", name, from, out.err))
		}
		clone, rank = out.eng, out.rank
		if r.filtering {
			// The worker narrowed its replica at the handoff position;
			// narrow the router-side gate to match. (After, not before,
			// the reply: an early narrow with a failed extraction would
			// under-deliver to a still-registered query.)
			src.gateRefs.remove(fp.types, fp.exact)
			r.rebuildGate(src)
		}
	} else {
		var err error
		if clone, rank, err = r.extractRemote(src, name, fp, seq); err != nil {
			return fail(err)
		}
	}
	r.tel.migDrain.Record(r.tel.now() - drainStart)
	migrateStage("extracted")

	// Phase 2: register on the target at the same stream position and
	// graft the state on.
	err := r.placeMigrated(dst, name, clone, rank, fp, seq)
	if err != nil {
		// The target refused the query (engine error, corrupt-state
		// transplant, wire loss timing). Put it back where it was — the
		// state is still in hand — rather than lose a standing query.
		if rerr := r.placeMigrated(src, name, clone, rank, fp, seq); rerr != nil {
			// Both slots refused. The query is gone from the runtime;
			// make the registry agree so Registered()/recovery do not
			// resurrect a phantom.
			r.dropRegistration(name, src)
			return fail(fmt.Errorf("shard: migrate %q: target slot %d refused (%v) and source slot %d refused re-placement: %w", name, to, err, from, rerr))
		}
		return fail(fmt.Errorf("shard: migrate %q to slot %d: %w", name, to, err))
	}

	// Phase 3: commit ownership (and the durable registry).
	r.mu.Lock()
	if r.owner[name] == src { // a concurrent Unregister may have won
		r.owner[name] = dst
		r.owned[src]--
		r.owned[dst]++
	}
	r.mu.Unlock()
	migrateStage("target-registered")
	if r.dlog != nil {
		if reg, ok := r.dregs[name]; ok {
			reg.slot = to
			r.dregs[name] = reg
		}
		if !r.closed {
			r.checkpointRound()
		}
	}
	r.tel.migCompleted.Inc()
	return nil
}

// extractRemote runs the drain barrier on a remote source slot and
// extracts the query from the resulting snapshot: request a
// checkpoint, wait until the slot has acknowledged everything admitted
// and adopted the fresh image, decode it, clone the query out, and
// strip the query from the slot's retained restore image before
// sending the migrate-unregister. Caller holds ingestMu.
func (r *Router) extractRemote(src *worker, name string, fp fprint, seq uint64) (*core.MultiEngine, int, error) {
	rs := src.remote
	gen := rs.snapshotGen()
	src.in <- message{kind: msgCheckpoint}
	deadline := time.Now().Add(migrateDrainTimeout)
	resent := time.Now()
	for rs.snapshotGen() == gen || !rs.drained() {
		if time.Now().After(deadline) {
			return nil, 0, fmt.Errorf("shard: migrate %q: slot %d drain barrier timed out (disconnected, or snapshot over the frame limit)", name, src.id)
		}
		// A checkpoint request that catches the slot between a dead
		// connection and its redial is dropped on the floor — the
		// cadence rounds tolerate that (the next round re-requests),
		// but the barrier must not. Keep nudging until one lands on a
		// live connection; extra snapshots are harmless refreshes.
		if rs.snapshotGen() == gen && time.Since(resent) > 50*time.Millisecond {
			src.in <- message{kind: msgCheckpoint}
			resent = time.Now()
		}
		time.Sleep(200 * time.Microsecond)
	}
	si, err := dshard.DecodeSnapshotImage(rs.snapshotCut())
	if err != nil {
		return nil, 0, fmt.Errorf("shard: migrate %q: slot %d snapshot: %w", name, src.id, err)
	}
	rank, ok := si.Ranks[name]
	if !ok {
		return nil, 0, fmt.Errorf("shard: migrate %q: slot %d snapshot does not hold it", name, src.id)
	}
	full, err := persist.LoadMulti(bytes.NewReader(si.Engine))
	if err != nil {
		return nil, 0, fmt.Errorf("shard: migrate %q: slot %d snapshot engine: %w", name, src.id, err)
	}
	clone, err := persist.CloneQuery(full, name)
	if err != nil {
		return nil, 0, fmt.Errorf("shard: migrate %q out of slot %d: %w", name, src.id, err)
	}

	// Narrow the router-side gate, then rebuild the slot's retained
	// restore image without the query: remaining ranks, narrowed
	// filter, trimmed replica. Replacing it BEFORE the unregister is
	// sent is what makes the handoff crash-safe on this side — a
	// reconnect anywhere after this point restores the stripped image
	// and replays the pending unregister as a no-op.
	postUniversal, postTypes := true, []string(nil)
	if r.filtering {
		src.gateRefs.remove(fp.types, fp.exact)
		r.rebuildGate(src)
		if !src.gateRefs.universal() {
			postUniversal = false
			postTypes = src.gateRefs.typeNames()
		}
	}
	full.Unregister(name)
	if r.filtering {
		full.SetReplicaFilter(postTypes, postUniversal)
		full.TrimReplica()
	}
	var buf bytes.Buffer
	if err := persist.SaveMulti(&buf, full); err != nil {
		return nil, 0, fmt.Errorf("shard: migrate %q: strip slot %d image: %w", name, src.id, err)
	}
	delete(si.Ranks, name)
	si.Universal, si.Types = postUniversal, postTypes
	si.Engine = buf.Bytes()
	rs.replaceSnapshot(si.Encode(), postUniversal, postTypes)

	msg := message{
		kind: msgUnregister, name: name, seq: seq,
		fpTypes: fp.types, fpExact: fp.exact,
		postUniversal: postUniversal, postTypes: postTypes,
		migrate: true, reply: make(chan error, 1),
	}
	rs.noteUnregister(&msg)
	src.in <- msg
	<-msg.reply
	return clone, rank, nil
}

// placeMigrated registers a migrated query (state clone in hand) on a
// slot at stream position seq: the normal register admission — gate
// widening, backfill entitlement, remote event retention — plus the
// transplant payload. Rolls the gate back on failure. Caller holds
// ingestMu; no floor pin is needed because ingestMu is held across the
// reply, so no concurrent ingest can trim the log meanwhile.
func (r *Router) placeMigrated(dst *worker, name string, clone *core.MultiEngine, rank int, fp fprint, seq uint64) error {
	if dst.retired {
		return fmt.Errorf("slot %d is retired", dst.id)
	}
	eng := clone.QueryEngine(name)
	if eng == nil {
		return fmt.Errorf("clone does not hold %q", name)
	}
	q := eng.Query()
	if dst.isRemote() {
		if err := wireSafe(q); err != nil {
			return fmt.Errorf("query %q %w", name, err)
		}
	}
	cfg := eng.ConfigSnapshot()
	minTS := int64(math.MinInt64)
	if r.cfg.Window > 0 && r.log != nil {
		minTS = r.log.MaxTS() - r.cfg.Window + 1
	}
	msg := message{
		kind: msgRegister, name: name, q: q, cfg: cfg, rank: rank,
		fpTypes: fp.types, fpExact: fp.exact, postUniversal: true,
		seq: seq, minTS: minTS, migrate: true,
		reply: make(chan error, 1),
	}
	if r.filtering {
		if dst.isRemote() {
			msg.needAll, msg.heldTypes, msg.needTypes = dst.gateRefs.newlyNeeded(fp.types, fp.exact)
		}
		dst.gateRefs.add(fp.types, fp.exact)
		r.rebuildGate(dst)
		if dst.isRemote() && !dst.gateRefs.universal() {
			msg.postUniversal = false
			msg.postTypes = dst.gateRefs.typeNames()
		}
	}
	if dst.isRemote() {
		var buf bytes.Buffer
		if err := persist.SaveMulti(&buf, clone); err != nil {
			if r.filtering {
				dst.gateRefs.remove(fp.types, fp.exact)
				r.rebuildGate(dst)
			}
			return fmt.Errorf("encode state: %w", err)
		}
		msg.state = buf.Bytes()
		dst.remote.noteRegister(&msg)
	} else {
		msg.xfer = clone
	}
	dst.in <- msg
	if err := <-msg.reply; err != nil {
		if r.filtering {
			dst.gateRefs.remove(fp.types, fp.exact)
			r.rebuildGate(dst)
		}
		return err
	}
	return nil
}

// dropRegistration erases every router-side trace of a query that no
// slot holds anymore (the double-refusal corner of a failed
// migration). Caller holds ingestMu.
func (r *Router) dropRegistration(name string, last *worker) {
	r.mu.Lock()
	if r.owner[name] == last {
		delete(r.owner, name)
		r.owned[last]--
		for i, n := range r.order {
			if n == name {
				r.order = append(r.order[:i], r.order[i+1:]...)
				break
			}
		}
	}
	r.mu.Unlock()
	if r.filtering {
		delete(r.fps, name)
	}
	if r.dlog != nil {
		delete(r.dregs, name)
		if !r.closed {
			r.checkpointRound()
		}
	}
}

// AddSlot grows the topology with one more remote slot at runtime,
// returning its slot id. The slot starts empty (an empty gate in
// filtering mode) and picks up work through Register placement,
// Migrate, or Rebalance. Not available in Ordered mode (the merge
// iterates a static worker set) or on a durable router (the restart
// topology comes from Config.Remotes; grow it there and restart).
func (r *Router) AddSlot(addr string) (int, error) {
	if r.cfg.Ordered {
		return 0, fmt.Errorf("shard: AddSlot is not available in Ordered mode")
	}
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	if r.closed {
		return 0, fmt.Errorf("shard: router is closed")
	}
	if r.dlog != nil {
		return 0, fmt.Errorf("shard: AddSlot is not available on a durable router: add the address to Config.Remotes and restart")
	}
	if r.log == nil {
		// A local-only FullReplicas topology never built the shared
		// EdgeLog, and a remote slot's reconnect replay cannot exist
		// without it.
		return 0, fmt.Errorf("shard: AddSlot requires a topology built with filtering or remotes (no shared edge log)")
	}
	w := &worker{
		id:    len(r.workers),
		r:     r,
		in:    make(chan message, r.cfg.QueueLen),
		ranks: make(map[string]int),
	}
	w.remote = newRemoteSlot(w, addr, r.cfg.RemotePending)
	r.tel.registerWorker(w)
	w.remote.registerMetrics(r.tel)
	if r.filtering {
		w.gate = graph.NewTypeSet()
		w.gateRefs = newReplicaSet()
	} else {
		w.gate = graph.UniversalTypes()
		w.replicaTypes.Set(-1)
	}
	r.hasRemote = true
	r.mu.Lock()
	r.workers = append(r.workers, w)
	r.mu.Unlock()
	r.wg.Add(1)
	go w.remote.run()
	return w.id, nil
}

// RemoveSlot retires a slot: every query it owns is live-migrated to
// the surviving slots (least-loaded first), then the slot is drained
// and permanently removed from the topology (its id remains as a
// tombstone; it pins nothing). Not available in Ordered mode.
func (r *Router) RemoveSlot(id int) error {
	if r.cfg.Ordered {
		return fmt.Errorf("shard: RemoveSlot is not available in Ordered mode")
	}
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	if r.closed {
		return fmt.Errorf("shard: router is closed")
	}
	if id < 0 || id >= len(r.workers) {
		return fmt.Errorf("shard: slot %d out of range (have %d slots)", id, len(r.workers))
	}
	w := r.workers[id]
	if w.retired {
		return fmt.Errorf("shard: slot %d is already retired", id)
	}
	for {
		name, ok := r.anyOwned(w)
		if !ok {
			break
		}
		to := r.pickTarget(w)
		if to < 0 {
			return fmt.Errorf("shard: cannot remove slot %d: no surviving slot to migrate %q to", id, name)
		}
		if err := r.migrateLocked(name, id, to); err != nil {
			return err
		}
	}
	r.retireLocked(w)
	return nil
}

// anyOwned returns one query owned by the slot, if any.
func (r *Router) anyOwned(w *worker) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Walk registration order for determinism (map order would make
	// failure modes flaky to reproduce).
	for _, name := range r.order {
		if r.owner[name] == w {
			return name, true
		}
	}
	return "", false
}

// pickTarget chooses the least-loaded live slot other than w, or -1.
func (r *Router) pickTarget(w *worker) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	best := -1
	for _, cand := range r.workers {
		if cand == w || cand.retired {
			continue
		}
		if best < 0 || r.owned[cand] < r.owned[r.workers[best]] {
			best = cand.id
		}
	}
	return best
}

// retireLocked tombstones a slot: close its queue (the worker or proxy
// goroutine drains and exits) and clear every pin it holds on the
// shared EdgeLog. Caller holds ingestMu; the slot must own no queries.
func (r *Router) retireLocked(w *worker) {
	if w.retired {
		return
	}
	w.retired = true
	close(w.in)
	if w.remote != nil {
		w.remote.retire()
	}
}

// failoverEvacuate re-homes every registration of a failed-over slot
// onto the surviving slots, then retires it. Runs on its own goroutine
// (spawned by the slot's redial loop when the budget runs out — a slot
// cannot migrate away from itself from inside its own event loop).
// The hospice engine keeps the slot fully correct meanwhile, so an
// evacuation that finds no surviving slot simply leaves the queries
// running in-process.
func (r *Router) failoverEvacuate(w *worker) {
	for {
		r.ingestMu.Lock()
		if r.closed || w.retired {
			r.ingestMu.Unlock()
			return
		}
		name, ok := r.anyOwned(w)
		if !ok {
			r.retireLocked(w)
			r.ingestMu.Unlock()
			return
		}
		to := r.pickTarget(w)
		if to < 0 {
			// Nowhere to go: stay on the hospice engine. Correct, just
			// not distributed; the operator can AddSlot and Rebalance.
			r.ingestMu.Unlock()
			return
		}
		if w.remote != nil && w.remote.liveConn.Load() == nil {
			// The hospice connection is still coming up; a drain
			// barrier now would only burn its timeout while holding
			// ingestMu. Back off without blocking ingestion.
			r.ingestMu.Unlock()
			time.Sleep(5 * time.Millisecond)
			continue
		}
		err := r.migrateLocked(name, w.id, to)
		r.ingestMu.Unlock()
		if err != nil {
			// The hospice may still be rebuilding; give it a beat and
			// retry rather than spin. A closed router ends the loop
			// above.
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// Rebalance evens query placement across the live slots: while the
// spread between the most- and least-loaded slot exceeds one query, it
// live-migrates one query from the hottest slot (ties broken by queue
// depth, then by routed-edge count) to the coldest. Returns the number
// of migrations performed. Not available in Ordered mode.
func (r *Router) Rebalance() (int, error) {
	if r.cfg.Ordered {
		return 0, fmt.Errorf("shard: Rebalance is not available in Ordered mode")
	}
	moved := 0
	for {
		r.ingestMu.Lock()
		if r.closed {
			r.ingestMu.Unlock()
			return moved, fmt.Errorf("shard: router is closed")
		}
		hot, cold := r.hotCold()
		if hot == nil || cold == nil || r.spread(hot, cold) <= 1 {
			r.ingestMu.Unlock()
			return moved, nil
		}
		name, ok := r.anyOwned(hot)
		if !ok {
			r.ingestMu.Unlock()
			return moved, nil
		}
		err := r.migrateLocked(name, hot.id, cold.id)
		r.ingestMu.Unlock()
		if err != nil {
			return moved, err
		}
		moved++
	}
}

// hotCold picks the hottest and coldest live slots: most/fewest owned
// queries, ties broken by ingest queue depth, then by routed edges.
func (r *Router) hotCold() (hot, cold *worker) {
	r.mu.Lock()
	defer r.mu.Unlock()
	hotter := func(a, b *worker) bool { // a strictly hotter than b
		if r.owned[a] != r.owned[b] {
			return r.owned[a] > r.owned[b]
		}
		if la, lb := len(a.in), len(b.in); la != lb {
			return la > lb
		}
		return a.edgesRouted.Load() > b.edgesRouted.Load()
	}
	for _, w := range r.workers {
		if w.retired {
			continue
		}
		if hot == nil || hotter(w, hot) {
			hot = w
		}
		if cold == nil || hotter(cold, w) {
			cold = w
		}
	}
	if hot == cold {
		return nil, nil
	}
	return hot, cold
}

// spread is the owned-query imbalance between two slots.
func (r *Router) spread(hot, cold *worker) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.owned[hot] - r.owned[cold]
}
