// Router observability: every Router owns a metrics.Registry holding
// per-shard, per-query and (in durable or remote topologies) per-slot
// wire series, recorded from the hot paths without locks or
// allocations and scraped by the /metrics endpoint, the extended wire
// `stats full` command, and the experiment harness.
//
// End-to-end match lag is measured edge-arrival → match-emission
// through a fixed-size seq→arrival-time ring: IngestBatch stamps every
// admitted edge's arrival instant at ring slot seq mod lagRingSize
// (time first, then seq+1 as the slot tag), and each emission point
// reads tag/time/tag — a changed tag on either read means the slot was
// lapped by a newer edge and the sample is dropped rather than
// miscounted. With the default queue depths a lap needs >64k edges in
// flight between an edge's admission and a match it completes, so
// drops are rare; the per-query match counters are exact regardless.
package shard

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"streamgraph/internal/metrics"
)

const (
	// lagRingSize is the arrival-ring capacity in edges (must be a
	// power of two). 1<<16 slots cost ~1 MiB per router.
	lagRingSize = 1 << 16
	lagRingMask = lagRingSize - 1
)

// telemetry is the Router's observability state. All methods are safe
// for concurrent use.
type telemetry struct {
	reg  *metrics.Registry
	base time.Time // monotonic zero for all ring/lag arithmetic

	// The seq→arrival ring: ringSeqs[i] holds seq+1 (0 = never
	// written), ringTimes[i] the arrival instant in nanoseconds since
	// base. Written by IngestBatch under ingestMu, read lock-free by
	// every match-emission goroutine.
	ringSeqs  []atomic.Uint64
	ringTimes []atomic.Int64

	// Checkpoint/durability series, registered eagerly so the handles
	// are always non-nil (a volatile router simply never records).
	fsync      *metrics.AtomicHistogram
	ckptRound  *metrics.AtomicHistogram
	ckptRounds *metrics.Counter

	// Migration/failover series (migrate.go), also eager: a topology
	// that never migrates scrapes them at zero, which is what the
	// metric-truthfulness tests pin.
	migStarted   *metrics.Counter
	migCompleted *metrics.Counter
	migFailed    *metrics.Counter
	migBackfill  *metrics.Counter
	migDrain     *metrics.AtomicHistogram
	failovers    *metrics.Counter

	// Per-query series, created on a query's first match.
	lagMu  sync.RWMutex
	lagByQ map[string]*metrics.AtomicHistogram
	cntByQ map[string]*metrics.Counter
}

func newTelemetry() *telemetry {
	t := &telemetry{
		reg:       metrics.NewRegistry(),
		base:      time.Now(),
		ringSeqs:  make([]atomic.Uint64, lagRingSize),
		ringTimes: make([]atomic.Int64, lagRingSize),
		lagByQ:    make(map[string]*metrics.AtomicHistogram),
		cntByQ:    make(map[string]*metrics.Counter),
	}
	t.fsync = t.reg.Histogram("sg_edlog_fsync_ns")
	t.ckptRound = t.reg.Histogram("sg_checkpoint_round_ns")
	t.ckptRounds = t.reg.Counter("sg_checkpoint_rounds_total")
	t.migStarted = t.reg.Counter("sg_migrations_started_total")
	t.migCompleted = t.reg.Counter("sg_migrations_completed_total")
	t.migFailed = t.reg.Counter("sg_migrations_failed_total")
	t.migBackfill = t.reg.Counter("sg_migration_backfill_edges_total")
	t.migDrain = t.reg.Histogram("sg_migration_drain_ns")
	t.failovers = t.reg.Counter("sg_failovers_total")
	return t
}

// now returns nanoseconds since the telemetry base — a monotonic
// instant cheap enough for per-message stamping.
func (t *telemetry) now() int64 { return int64(time.Since(t.base)) }

// noteArrivals stamps the arrival instant of n edges admitted at base
// into the ring. Called under ingestMu (the single writer).
func (t *telemetry) noteArrivals(base uint64, n int) {
	now := t.now()
	for i := 0; i < n; i++ {
		seq := base + uint64(i)
		idx := seq & lagRingMask
		t.ringTimes[idx].Store(now)
		t.ringSeqs[idx].Store(seq + 1)
	}
}

// queryCounters returns (creating on first use) the per-query match
// counter and lag histogram.
func (t *telemetry) queryCounters(query string) (*metrics.Counter, *metrics.AtomicHistogram) {
	t.lagMu.RLock()
	c, h := t.cntByQ[query], t.lagByQ[query]
	t.lagMu.RUnlock()
	if c != nil {
		return c, h
	}
	t.lagMu.Lock()
	if c = t.cntByQ[query]; c == nil {
		c = t.reg.Counter("sg_matches_total", "query", query)
		h = t.reg.Histogram("sg_match_lag_ns", "query", query)
		t.cntByQ[query] = c
		t.lagByQ[query] = h
	} else {
		h = t.lagByQ[query]
	}
	t.lagMu.Unlock()
	return c, h
}

// recordMatch accounts one emitted match: the per-query counter always
// increments; the end-to-end lag sample records only when the
// completing edge's arrival stamp is still in the ring.
func (t *telemetry) recordMatch(query string, seq uint64) {
	c, h := t.queryCounters(query)
	c.Inc()
	idx := seq & lagRingMask
	tag := seq + 1
	if t.ringSeqs[idx].Load() != tag {
		return // lapped: arrival instant lost, drop the sample
	}
	arr := t.ringTimes[idx].Load()
	if t.ringSeqs[idx].Load() != tag {
		return // lapped between the two reads
	}
	h.Record(t.now() - arr)
}

// matchLag merges every query's lag histogram into one snapshot (the
// experiment harness's tail columns).
func (t *telemetry) matchLag() metrics.Histogram {
	t.lagMu.RLock()
	hs := make([]*metrics.AtomicHistogram, 0, len(t.lagByQ))
	for _, h := range t.lagByQ {
		hs = append(hs, h)
	}
	t.lagMu.RUnlock()
	var out metrics.Histogram
	for _, h := range hs {
		s := h.Snapshot()
		out.Merge(&s)
	}
	return out
}

// registerWorker wires one slot's series into the registry: the
// routed/gated/emitted counters and replica gauges Stats() reads, the
// queue gauges, the queue-wait and batch histograms, and — for local
// slots — the engine-internals gauges the worker goroutine publishes
// after each batch.
func (t *telemetry) registerWorker(w *worker) {
	sh := strconv.Itoa(w.id)
	w.edgesRouted = t.reg.Counter("sg_shard_edges_routed_total", "shard", sh)
	w.edgesGated = t.reg.Counter("sg_shard_edges_gated_total", "shard", sh)
	w.edgesBackfilled = t.reg.Counter("sg_shard_edges_backfilled_total", "shard", sh)
	w.matchesEmitted = t.reg.Counter("sg_shard_matches_emitted_total", "shard", sh)
	w.replicaLive = t.reg.Gauge("sg_shard_replica_edges", "shard", sh)
	w.replicaStored = t.reg.Gauge("sg_shard_replica_stored", "shard", sh)
	w.replicaTypes = t.reg.Gauge("sg_shard_replica_types", "shard", sh)
	w.queueWait = t.reg.Histogram("sg_shard_queue_wait_ns", "shard", sh)
	w.batchTime = t.reg.Histogram("sg_shard_process_batch_ns", "shard", sh)
	t.reg.GaugeFunc("sg_shard_queue_depth", func() int64 { return int64(len(w.in)) }, "shard", sh)
	t.reg.GaugeFunc("sg_shard_queue_cap", func() int64 { return int64(cap(w.in)) }, "shard", sh)
	if w.eng == nil {
		return
	}
	w.engEdges = t.reg.Gauge("sg_engine_edges_processed", "shard", sh)
	w.engPartial = t.reg.Gauge("sg_engine_partial_matches", "shard", sh)
	w.treeInserted = t.reg.Gauge("sg_engine_tree_inserted", "shard", sh)
	w.treeDeduped = t.reg.Gauge("sg_engine_tree_deduped", "shard", sh)
	w.treeEmitted = t.reg.Gauge("sg_engine_tree_emitted", "shard", sh)
	w.treeEvicted = t.reg.Gauge("sg_engine_tree_evicted", "shard", sh)
	w.poolGets = t.reg.Gauge("sg_engine_pool_gets", "shard", sh)
	w.poolFresh = t.reg.Gauge("sg_engine_pool_fresh", "shard", sh)
}

// registerRouter wires the router-level series: admitted edges, the
// collection channel, and the emitted/consumed delivery counters.
func (t *telemetry) registerRouter(r *Router) {
	t.reg.CounterFunc("sg_router_edges_admitted_total", func() int64 { return int64(r.seq.Load()) })
	t.reg.CounterFunc("sg_router_matches_emitted_total", r.emitted.Load)
	t.reg.CounterFunc("sg_router_matches_consumed_total", r.consumed.Load)
	t.reg.GaugeFunc("sg_router_out_depth", func() int64 { return int64(len(r.out)) })
	t.reg.GaugeFunc("sg_router_out_cap", func() int64 { return int64(cap(r.out)) })
}

// Metrics returns the router's live metrics registry — the substrate
// behind the /metrics endpoint and the wire `stats full` command.
// Recording continues while it is read; snapshots are point-in-time.
func (r *Router) Metrics() *metrics.Registry { return r.tel.reg }

// MatchLag returns a merged snapshot of every query's end-to-end match
// lag (edge arrival at the router → match emission on the collection
// channel), in nanoseconds.
func (r *Router) MatchLag() metrics.Histogram { return r.tel.matchLag() }
