package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"streamgraph/internal/core"
	"streamgraph/internal/query"
	"streamgraph/internal/stream"
)

func TestEdgeLogAppendTrimReplay(t *testing.T) {
	l := NewEdgeLog()
	mk := func(n int, ts0 int64) []stream.Edge {
		out := make([]stream.Edge, n)
		for i := range out {
			out[i] = stream.Edge{Src: "a", Dst: "b", Type: "T", TS: ts0 + int64(i)}
		}
		return out
	}
	l.Append(mk(3, 1), 0)  // seqs 0..2, ts 1..3
	l.Append(mk(2, 10), 3) // seqs 3..4, ts 10..11
	l.Append(mk(1, 20), 5) // seq 5, ts 20
	if got := l.MaxTS(); got != 20 {
		t.Fatalf("MaxTS = %d, want 20", got)
	}
	var seqs []uint64
	l.Replay(5, 2, func(se stream.Edge, seq uint64) bool {
		seqs = append(seqs, seq)
		return true
	})
	// seq < 5 and ts >= 2: seqs 1,2 (ts 2,3) and 3,4 (ts 10,11).
	if want := []uint64{1, 2, 3, 4}; fmt.Sprint(seqs) != fmt.Sprint(want) {
		t.Fatalf("Replay saw seqs %v, want %v", seqs, want)
	}
	if dropped := l.TrimBefore(4, 1); dropped != 0 {
		t.Fatalf("TrimBefore with keepSeq 1 dropped %d segments, want 0", dropped)
	}
	if dropped := l.TrimBefore(4, ^uint64(0)); dropped != 1 {
		t.Fatalf("TrimBefore dropped %d segments, want 1", dropped)
	}
	if got := l.Segments(); got != 2 {
		t.Fatalf("Segments = %d after trim, want 2", got)
	}
	seqs = seqs[:0]
	l.Replay(100, 0, func(se stream.Edge, seq uint64) bool {
		seqs = append(seqs, seq)
		return true
	})
	if want := []uint64{3, 4, 5}; fmt.Sprint(seqs) != fmt.Sprint(want) {
		t.Fatalf("post-trim Replay saw %v, want %v", seqs, want)
	}
}

// TestEdgeLogConcurrentReplay hammers the log with one appender (who
// also trims) and several replaying readers; under -race this pins the
// copy-on-write snapshot discipline.
func TestEdgeLogConcurrentReplay(t *testing.T) {
	l := NewEdgeLog()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				total := 0
				l.Replay(1<<60, 0, func(se stream.Edge, seq uint64) bool {
					if se.Type == "" {
						t.Error("reader observed a zeroed edge")
						return false
					}
					total++
					return true
				})
				_ = total
			}
		}()
	}
	seq := uint64(0)
	for i := 0; i < 2000; i++ {
		batch := []stream.Edge{{Src: "x", Dst: "y", Type: "T", TS: int64(i)}}
		l.Append(batch, seq)
		seq++
		if i%7 == 0 {
			l.TrimBefore(int64(i)-100, ^uint64(0))
		}
	}
	close(done)
	wg.Wait()
}

// TestTrimRespectsInflightRegistrationFloor pins the log-retention
// contract behind concurrent Register/Ingest: while a registration is
// in flight, the log may not trim past the window floor captured at
// the registration's stream position, however far the stream advances
// before the owning shard executes the backfill — otherwise the
// backfill would silently lose in-window edges a serial engine still
// matches.
func TestTrimRespectsInflightRegistrationFloor(t *testing.T) {
	r := New(Config{Shards: 1, Window: 10})
	old := stream.Edge{Src: "a", SrcLabel: "ip", Dst: "b", DstLabel: "ip", Type: "B", TS: 1}
	r.IngestBatch([]stream.Edge{old}) // no query needs B yet: log only

	// Pin a floor exactly as an in-flight registration does.
	r.ingestMu.Lock()
	r.floorToken++
	tok := r.floorToken
	r.floors[tok] = -1 << 62
	r.ingestMu.Unlock()

	hasOld := func() bool {
		found := false
		r.log.Replay(1<<60, -1<<62, func(se stream.Edge, _ uint64) bool {
			if se.TS == 1 {
				found = true
				return false
			}
			return true
		})
		return found
	}
	r.IngestBatch([]stream.Edge{{Src: "c", SrcLabel: "ip", Dst: "d", DstLabel: "ip", Type: "A", TS: 1000}})
	if !hasOld() {
		t.Fatal("log trimmed past an in-flight registration's floor")
	}
	// Release the floor: the next ingest may trim the expired segment.
	r.ingestMu.Lock()
	delete(r.floors, tok)
	r.ingestMu.Unlock()
	r.IngestBatch([]stream.Edge{{Src: "c", SrcLabel: "ip", Dst: "d", DstLabel: "ip", Type: "A", TS: 1001}})
	if hasOld() {
		t.Fatal("log kept an expired segment after the floor was released")
	}
	r.Close()
}

// partitionQueries returns three queries whose edge-type footprints
// partition {GRE,TCP} / {UDP,ICMP} / {IPv6,ESP} — pairwise disjoint,
// so with three shards every stream edge is stored at most once.
func partitionQueries() (map[string]*query.Graph, map[string]core.Strategy) {
	qs := map[string]*query.Graph{
		"p-gre-tcp":  query.NewPath(query.Wildcard, "GRE", "TCP"),
		"p-udp-icmp": query.NewPath("ip", "UDP", "ICMP"),
		"p-ipv6-esp": query.NewPath(query.Wildcard, "IPv6", "ESP"),
	}
	st := map[string]core.Strategy{
		"p-gre-tcp":  core.StrategySingleLazy,
		"p-udp-icmp": core.StrategyPath,
		"p-ipv6-esp": core.StrategySingle,
	}
	return qs, st
}

// TestPartitionedFootprintsReplicateOnce is the tentpole's acceptance
// gate: with shard-per-query ownership and pairwise-disjoint edge-type
// footprints, the total replicated edge count across shards stays
// within 1.1x of the input edge count (it was shards-x with full
// replicas), while the match multiset remains byte-identical to the
// serial MultiEngine.
func TestPartitionedFootprintsReplicateOnce(t *testing.T) {
	edges := testStream(2000)
	const window = 400
	queries, strategies := partitionQueries()

	// Serial reference.
	m := core.NewMulti(core.MultiConfig{Window: window, EvictEvery: 7})
	for _, name := range sortedNames(queries) {
		if err := m.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
			t.Fatal(err)
		}
	}
	var want []string
	for _, se := range edges {
		for _, nm := range m.ProcessEdge(se) {
			want = append(want, serialSig(m, nm))
		}
	}
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("workload produced no matches; differential is vacuous")
	}

	for _, batch := range []int{1, 64} {
		r := New(Config{Shards: 3, Window: window, EvictEvery: 7})
		for _, name := range sortedNames(queries) {
			if err := r.Register(name, queries[name], core.Config{Strategy: strategies[name]}); err != nil {
				t.Fatal(err)
			}
		}
		var mu sync.Mutex
		var got []string
		done := make(chan struct{})
		go func() {
			defer close(done)
			r.Drain(func(mt Match) {
				mu.Lock()
				got = append(got, matchSig(mt))
				mu.Unlock()
			})
		}()
		for lo := 0; lo < len(edges); lo += batch {
			hi := lo + batch
			if hi > len(edges) {
				hi = len(edges)
			}
			r.IngestBatch(edges[lo:hi])
		}
		st := r.Stats() // pre-close snapshot exercises the lock-free gauges
		r.Close()
		<-done
		sort.Strings(got)
		if len(got) != len(want) {
			t.Fatalf("batch=%d: %d matches, want %d", batch, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch=%d: multiset differs at %d:\n got %s\nwant %s", batch, i, got[i], want[i])
			}
		}

		st = r.Stats()
		var stored, routed int64
		for _, s := range st {
			if s.ReplicaTypes != 2 {
				t.Fatalf("batch=%d: shard %d filters %d types, want 2", batch, s.Shard, s.ReplicaTypes)
			}
			if s.ReplicaEdges > s.ReplicaStored {
				t.Fatalf("batch=%d: shard %d live %d > stored %d", batch, s.Shard, s.ReplicaEdges, s.ReplicaStored)
			}
			stored += s.ReplicaStored
			routed += s.EdgesRouted
		}
		// The acceptance bound: disjoint footprints => each edge stored
		// at most once across all shards (<= 1.1x input, vs 3x before).
		if limit := int64(float64(len(edges)) * 1.1); stored > limit {
			t.Fatalf("batch=%d: replicas stored %d edges total, want <= %d (1.1x of %d input)",
				batch, stored, limit, len(edges))
		}
		if stored == 0 {
			t.Fatalf("batch=%d: replicas stored nothing; gate is broken", batch)
		}
		// Gating must also have kept whole batches away from
		// uninterested shards (per-edge batches make this exact).
		if batch == 1 && routed >= int64(3*len(edges)) {
			t.Fatalf("batch=%d: routed %d edge deliveries, broadcast would be %d — gate never skipped",
				batch, routed, 3*len(edges))
		}
	}
}

// TestWildcardQueryForcesFullReplica pins the static-filter fallback: a
// query with a wildcard edge type cannot be filtered, so its shard
// must replicate every type (and report ReplicaTypes = -1).
func TestWildcardQueryForcesFullReplica(t *testing.T) {
	edges := testStream(400)
	r := New(Config{Shards: 2, Window: 400})
	wild := &query.Graph{
		Vertices: []query.Vertex{{Name: "a", Label: "ip"}, {Name: "b", Label: "ip"}, {Name: "c", Label: "ip"}},
		Edges:    []query.Edge{{Src: 0, Dst: 1, Type: "TCP"}, {Src: 1, Dst: 2, Type: query.Wildcard}},
	}
	if err := r.Register("wild", wild, core.Config{Strategy: core.StrategySingle}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("typed", query.NewPath("ip", "UDP", "ICMP"), core.Config{Strategy: core.StrategySingle}); err != nil {
		t.Fatal(err)
	}
	counted := make(chan int64, 1)
	go func() { counted <- r.Drain(nil) }()
	for _, se := range edges {
		r.Ingest(se)
	}
	r.Close()
	<-counted
	var sawWild bool
	for _, s := range r.Stats() {
		switch s.Queries {
		case 0:
			continue
		default:
		}
		if s.ReplicaTypes == -1 {
			sawWild = true
			if s.EdgesRouted != int64(len(edges)) {
				t.Fatalf("wildcard shard routed %d edges, want every one of %d", s.EdgesRouted, len(edges))
			}
			if s.ReplicaStored != int64(len(edges)) {
				t.Fatalf("wildcard shard stored %d edges, want %d", s.ReplicaStored, len(edges))
			}
		} else {
			if s.ReplicaTypes != 2 {
				t.Fatalf("typed shard filters %d types, want 2", s.ReplicaTypes)
			}
			if s.ReplicaStored >= int64(len(edges)) {
				t.Fatalf("typed shard stored %d of %d edges — filter inert", s.ReplicaStored, len(edges))
			}
		}
	}
	if !sawWild {
		t.Fatal("no shard reported a universal replica")
	}
}

// TestUnregisterTrimsReplica pins the narrow-and-trim path: removing
// the only query that needed a type drops that type's edges from the
// replica, and the remaining query keeps matching exactly.
func TestUnregisterTrimsReplica(t *testing.T) {
	edges := testStream(1200)
	const window = 1 << 40 // unwindowed in practice: trimming must come from unregister alone
	half := len(edges) / 2

	// Serial reference with the same mid-stream unregister schedule.
	m := core.NewMulti(core.MultiConfig{Window: window, EvictEvery: 7})
	for _, spec := range []struct {
		name string
		q    *query.Graph
	}{
		{"keep", query.NewPath(query.Wildcard, "GRE", "TCP")},
		{"drop", query.NewPath("ip", "UDP", "ICMP")},
	} {
		if err := m.Register(spec.name, spec.q, core.Config{Strategy: core.StrategySingleLazy}); err != nil {
			t.Fatal(err)
		}
	}
	var want []string
	for i, se := range edges {
		if i == half {
			m.Unregister("drop")
		}
		for _, nm := range m.ProcessEdge(se) {
			want = append(want, serialSig(m, nm))
		}
	}
	sort.Strings(want)

	r := New(Config{Shards: 1, Window: window, EvictEvery: 7})
	if err := r.Register("keep", query.NewPath(query.Wildcard, "GRE", "TCP"), core.Config{Strategy: core.StrategySingleLazy}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("drop", query.NewPath("ip", "UDP", "ICMP"), core.Config{Strategy: core.StrategySingleLazy}); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []string
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Drain(func(mt Match) {
			mu.Lock()
			got = append(got, matchSig(mt))
			mu.Unlock()
		})
	}()
	for _, se := range edges[:half] {
		r.Ingest(se)
	}
	before := r.Stats()[0]
	if before.ReplicaTypes != 4 {
		t.Fatalf("pre-unregister filter has %d types, want 4", before.ReplicaTypes)
	}
	r.Unregister("drop")
	after := r.Stats()[0]
	if after.ReplicaTypes != 2 {
		t.Fatalf("post-unregister filter has %d types, want 2", after.ReplicaTypes)
	}
	if after.ReplicaEdges >= before.ReplicaEdges {
		t.Fatalf("unregister trimmed nothing: live %d -> %d", before.ReplicaEdges, after.ReplicaEdges)
	}
	for _, se := range edges[half:] {
		r.Ingest(se)
	}
	r.Close()
	<-done
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("%d matches, serial reference has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("multiset differs at %d:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
}

// TestRegisterBackfillMidStreamDifferential registers queries over
// types no existing query needed, mid-stream: the owning shard must
// backfill the in-window past from the shared edge log so the late
// query matches exactly what it would on a serial engine — including
// through the lazy strategies' retrospective repair, which is the path
// that actually reads the backfilled edges.
func TestRegisterBackfillMidStreamDifferential(t *testing.T) {
	edges := testStream(1600)
	const window = 500
	third := len(edges) / 3
	type regOp struct {
		at       int
		name     string
		strategy core.Strategy
	}
	ops := []regOp{
		{0, "p-gre-tcp", core.StrategySingleLazy},
		{third, "p-udp-icmp", core.StrategyPathLazy}, // UDP/ICMP unseen by any gate until here
		{2 * third, "p-ipv6-esp", core.StrategySingle},
	}
	queries, _ := partitionQueries()

	serial := func() []string {
		m := core.NewMulti(core.MultiConfig{Window: window, EvictEvery: 7})
		var sigs []string
		next := 0
		for i, se := range edges {
			for next < len(ops) && ops[next].at == i {
				if err := m.Register(ops[next].name, queries[ops[next].name], core.Config{Strategy: ops[next].strategy}); err != nil {
					t.Fatal(err)
				}
				next++
			}
			for _, nm := range m.ProcessEdge(se) {
				sigs = append(sigs, serialSig(m, nm))
			}
		}
		return sigs
	}
	want := serial()
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("no matches; differential is vacuous")
	}

	for _, shards := range []int{1, 2, 3} {
		r := New(Config{Shards: shards, Window: window, EvictEvery: 7})
		var mu sync.Mutex
		var got []string
		done := make(chan struct{})
		go func() {
			defer close(done)
			r.Drain(func(mt Match) {
				mu.Lock()
				got = append(got, matchSig(mt))
				mu.Unlock()
			})
		}()
		next := 0
		for i, se := range edges {
			for next < len(ops) && ops[next].at == i {
				if err := r.Register(ops[next].name, queries[ops[next].name], core.Config{Strategy: ops[next].strategy}); err != nil {
					t.Fatal(err)
				}
				next++
			}
			r.Ingest(se)
		}
		r.Close()
		<-done
		sort.Strings(got)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d matches, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: multiset differs at %d:\n got %s\nwant %s", shards, i, got[i], want[i])
			}
		}
	}
}

// TestReplicaRegisterUnregisterProperty is the quick-check property
// test: randomized register/unregister operations interleaved with
// randomized ingest batches must never lose or duplicate a match
// relative to a serial MultiEngine applying the identical schedule —
// replica backfill and trim included.
func TestReplicaRegisterUnregisterProperty(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		testReplicaPropertySeed(t, seed)
	}
}

func testReplicaPropertySeed(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	types := []string{"GRE", "TCP", "UDP", "ICMP", "IPv6", "ESP"}
	strategies := []core.Strategy{core.StrategySingle, core.StrategyPath, core.StrategySingleLazy}

	for trial := 0; trial < 6; trial++ {
		nEdges := 400 + rng.Intn(400)
		var edges []stream.Edge
		for i := 0; i < nEdges; i++ {
			s, d := rng.Intn(50), rng.Intn(50)
			if s == d {
				continue
			}
			edges = append(edges, stream.Edge{
				Src: fmt.Sprintf("n%d", s), SrcLabel: "ip",
				Dst: fmt.Sprintf("n%d", d), DstLabel: "ip",
				Type: types[rng.Intn(len(types))], TS: int64(i + 1),
			})
		}
		window := int64(80 + rng.Intn(200))

		// A schedule of operations keyed by stream position.
		type op struct {
			at         int
			register   bool
			name       string
			q          *query.Graph
			strategy   core.Strategy
			unregister string
		}
		var ops []op
		var live []string
		qdefs := make(map[string]*query.Graph)
		sdefs := make(map[string]core.Strategy)
		for i := 0; i < 8; i++ {
			at := rng.Intn(len(edges))
			if len(live) > 0 && rng.Intn(3) == 0 {
				victim := live[rng.Intn(len(live))]
				ops = append(ops, op{at: at, unregister: victim})
				for j, n := range live {
					if n == victim {
						live = append(live[:j], live[j+1:]...)
						break
					}
				}
				continue
			}
			name := fmt.Sprintf("q%d-%d", trial, i)
			t1 := types[rng.Intn(len(types))]
			t2 := types[rng.Intn(len(types))]
			q := query.NewPath(query.Wildcard, t1, t2)
			st := strategies[rng.Intn(len(strategies))]
			qdefs[name], sdefs[name] = q, st
			ops = append(ops, op{at: at, register: true, name: name, q: q, strategy: st})
			live = append(live, name)
		}
		sort.SliceStable(ops, func(i, j int) bool { return ops[i].at < ops[j].at })

		// Serial oracle.
		m := core.NewMulti(core.MultiConfig{Window: window, EvictEvery: 7})
		var want []string
		next := 0
		for i, se := range edges {
			for next < len(ops) && ops[next].at == i {
				o := ops[next]
				if o.register {
					if err := m.Register(o.name, o.q, core.Config{Strategy: o.strategy}); err != nil {
						t.Fatal(err)
					}
				} else {
					m.Unregister(o.unregister)
				}
				next++
			}
			for _, nm := range m.ProcessEdge(se) {
				want = append(want, serialSig(m, nm))
			}
		}
		sort.Strings(want)

		// Sharded runtime, identical schedule, random batch splits that
		// never straddle an op position.
		shards := 1 + rng.Intn(4)
		r := New(Config{Shards: shards, Window: window, EvictEvery: 7})
		var mu sync.Mutex
		var got []string
		done := make(chan struct{})
		go func() {
			defer close(done)
			r.Drain(func(mt Match) {
				mu.Lock()
				got = append(got, matchSig(mt))
				mu.Unlock()
			})
		}()
		next = 0
		for lo := 0; lo < len(edges); {
			for next < len(ops) && ops[next].at == lo {
				o := ops[next]
				if o.register {
					if err := r.Register(o.name, o.q, core.Config{Strategy: o.strategy}); err != nil {
						t.Fatal(err)
					}
				} else {
					r.Unregister(o.unregister)
				}
				next++
			}
			hi := lo + 1 + rng.Intn(60)
			if hi > len(edges) {
				hi = len(edges)
			}
			if next < len(ops) && ops[next].at < hi {
				hi = ops[next].at
			}
			if hi == lo {
				continue
			}
			r.IngestBatch(edges[lo:hi])
			lo = hi
		}
		r.Close()
		<-done
		sort.Strings(got)
		if len(got) != len(want) {
			t.Fatalf("trial %d (shards=%d window=%d): %d matches, want %d", trial, shards, window, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: multiset differs at %d:\n got %s\nwant %s", trial, i, got[i], want[i])
			}
		}
	}
}

// TestAdaptiveRequiresFullReplicas pins the API guard: adaptive
// engines re-decompose from their own statistics, which on a filtered
// replica would reflect only the shard's stream slice — Register must
// refuse rather than silently diverge from the serial schedule.
func TestAdaptiveRequiresFullReplicas(t *testing.T) {
	r := New(Config{Shards: 1, Window: 100})
	err := r.Register("a", query.NewPath(query.Wildcard, "GRE", "TCP"),
		core.Config{Strategy: core.StrategySingleLazy, Adaptive: &core.AdaptiveConfig{}})
	if err == nil {
		t.Fatal("adaptive register on a filtering router succeeded")
	}
	r.Close()

	full := New(Config{Shards: 1, Window: 100, FullReplicas: true})
	if err := full.Register("a", query.NewPath(query.Wildcard, "GRE", "TCP"),
		core.Config{Strategy: core.StrategySingleLazy, Adaptive: &core.AdaptiveConfig{}}); err != nil {
		t.Fatalf("adaptive register with FullReplicas failed: %v", err)
	}
	full.Close()
}
