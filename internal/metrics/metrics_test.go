package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("zero-value histogram should report zeros")
	}
	for _, v := range []int64{1, 2, 3, 4, 100} {
		h.Record(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 110 {
		t.Fatalf("Sum = %d, want 110", h.Sum())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("Min/Max = %d/%d, want 1/100", h.Min(), h.Max())
	}
	if h.Mean() != 22 {
		t.Fatalf("Mean = %v, want 22", h.Mean())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatal("negative sample should clamp to 0")
	}
}

func TestHistogramQuantileWithinBucketError(t *testing.T) {
	// Against a sorted sample the log-bucketed estimate must stay within
	// a factor of two of the exact order statistic.
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	var samples []int64
	for i := 0; i < 10000; i++ {
		v := int64(rng.ExpFloat64() * 1e5)
		samples = append(samples, v)
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
		exact := samples[int(q*float64(len(samples)-1))]
		got := h.Quantile(q)
		if exact == 0 {
			continue
		}
		ratio := float64(got) / float64(exact)
		if ratio < 0.45 || ratio > 2.2 {
			t.Errorf("q=%v: estimate %d vs exact %d (ratio %.2f) outside 2x band", q, got, exact, ratio)
		}
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	err := quick.Check(func(raw []uint32) bool {
		var h Histogram
		for _, v := range raw {
			h.Record(int64(v))
		}
		prev := int64(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		// Quantiles stay within [min, max].
		if h.Count() > 0 && (h.Quantile(0) < h.Min() || h.Quantile(1) > h.Max()) {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileClampsQ(t *testing.T) {
	var h Histogram
	h.Record(7)
	if h.Quantile(-1) != h.Quantile(0) {
		t.Error("q<0 should clamp to 0")
	}
	if h.Quantile(2) != h.Quantile(1) {
		t.Error("q>1 should clamp to 1")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(10)
	a.Record(20)
	b.Record(5)
	b.Record(1000)
	a.Merge(&b)
	if a.Count() != 4 {
		t.Fatalf("merged Count = %d, want 4", a.Count())
	}
	if a.Min() != 5 || a.Max() != 1000 {
		t.Fatalf("merged Min/Max = %d/%d, want 5/1000", a.Min(), a.Max())
	}
	if a.Sum() != 1035 {
		t.Fatalf("merged Sum = %d, want 1035", a.Sum())
	}
	var empty Histogram
	a.Merge(&empty) // must be a no-op
	if a.Count() != 4 {
		t.Fatal("merging an empty histogram changed the count")
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(42)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestHistogramRecordDurationAndSummary(t *testing.T) {
	var h Histogram
	h.RecordDuration(3 * time.Millisecond)
	s := h.Summary()
	if !strings.Contains(s, "n=1") {
		t.Fatalf("Summary missing count: %q", s)
	}
}

func TestMeter(t *testing.T) {
	fake := time.Unix(0, 0)
	m := &Meter{now: func() time.Time { return fake }}
	m.start = fake
	m.Add(500)
	fake = fake.Add(2 * time.Second)
	if got := m.Rate(); got != 250 {
		t.Fatalf("Rate = %v, want 250", got)
	}
	if m.Count() != 500 {
		t.Fatalf("Count = %d, want 500", m.Count())
	}
	if m.Elapsed() != 2*time.Second {
		t.Fatalf("Elapsed = %v, want 2s", m.Elapsed())
	}
	if !strings.Contains(m.String(), "500 events") {
		t.Fatalf("String = %q", m.String())
	}
}

func TestMeterZeroElapsed(t *testing.T) {
	fake := time.Unix(10, 0)
	m := &Meter{now: func() time.Time { return fake }}
	m.start = fake
	m.Add(10)
	if m.Rate() != 0 {
		t.Fatal("zero elapsed must report zero rate, not Inf")
	}
}

func TestTable(t *testing.T) {
	var a, b Histogram
	a.Record(1)
	b.Record(2)
	out := Table(map[string]*Histogram{"beta": &b, "alpha": &a})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("Table produced %d lines, want 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "alpha") {
		t.Fatalf("Table not sorted: %q", out)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("zero value loads %d", c.Load())
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc()
			}
			c.Add(50)
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8*150 {
		t.Fatalf("counter = %d, want %d", got, 8*150)
	}
}
