// Registry: the concurrent metrics substrate the runtime tiers record
// into and the observability endpoints read from. Recording — counter
// increments, gauge stores, histogram samples — is lock-free and
// allocation-free (callers hold the series handle; name resolution
// happens once, at registration). Reading — Snapshot, WritePrometheus
// — copies the series list under a short read-lock and then evaluates
// every value without holding any registry lock, so a func-backed
// gauge may take its own locks without ordering against the registry.
//
// Series are identified by a metric name plus alternating label
// key/value pairs ("shard", "0"). Registering the same identity twice
// returns the same handle; registering it with a different kind
// panics (a programming error the tests would catch immediately).
package metrics

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a registry series for exposition: counters are
// monotonic totals, gauges are point-in-time values, histograms are
// log2-bucketed sample distributions exported with quantiles.
type Kind int

// The series kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind as Prometheus exposition spells it.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "summary"
	}
	return "untyped"
}

// Gauge is a concurrency-safe point-in-time value: stored by the
// owning goroutine (or several), read by anyone. The zero value is
// ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the current value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histStripeCount stripes an AtomicHistogram's state so concurrent
// recorders of different values rarely contend on one cache line. The
// stripe is picked by hashing the sample value, so it needs no
// per-goroutine state and stays deterministic.
const histStripeCount = 4

// histBuckets is the log2 bucket count shared with Histogram: bucket 0
// covers {0}, bucket i covers [2^(i-1), 2^i).
const histBuckets = 65

// histStripe is one stripe of an AtomicHistogram.
type histStripe struct {
	buckets  [histBuckets]atomic.Uint64
	sum      atomic.Int64
	minPlus1 atomic.Int64 // sample min + 1; 0 = no sample in this stripe
	max      atomic.Int64
	_        [40]byte // keep adjacent stripes off one cache line
}

// AtomicHistogram is the concurrent counterpart of Histogram: the same
// log2 buckets and quantile estimation, but Record is lock-free and
// allocation-free and may be called from any number of goroutines
// while others snapshot. The zero value is ready to use.
//
// Snapshot is not an atomic cut — samples recorded while it runs may
// or may not be included — which is the usual (and adequate) contract
// for monitoring reads.
type AtomicHistogram struct {
	stripes [histStripeCount]histStripe
}

// Record adds one sample. Negative samples are clamped to zero.
func (h *AtomicHistogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
	}
	s := &h.stripes[(uint64(v)*0x9E3779B97F4A7C15)>>(64-2)]
	s.buckets[idx].Add(1)
	s.sum.Add(v)
	for {
		cur := s.minPlus1.Load()
		if cur != 0 && cur <= v+1 {
			break
		}
		if s.minPlus1.CompareAndSwap(cur, v+1) {
			break
		}
	}
	for {
		cur := s.max.Load()
		if v <= cur {
			break
		}
		if s.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// RecordDuration adds one duration sample in nanoseconds.
func (h *AtomicHistogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Snapshot merges the stripes into a plain Histogram for quantile
// estimation and rendering. The count is derived from the bucket
// totals, so it is always consistent with the quantile walk even under
// concurrent recording.
func (h *AtomicHistogram) Snapshot() Histogram {
	var out Histogram
	minSet := false
	for si := range h.stripes {
		s := &h.stripes[si]
		var cnt uint64
		for i := range s.buckets {
			c := s.buckets[i].Load()
			out.buckets[i] += c
			cnt += c
		}
		if cnt == 0 {
			continue
		}
		out.count += cnt
		out.sum += s.sum.Load()
		if mp := s.minPlus1.Load(); mp != 0 && (!minSet || mp-1 < out.min) {
			out.min = mp - 1
			minSet = true
		}
		if mx := s.max.Load(); mx > out.max {
			out.max = mx
		}
	}
	return out
}

// Count returns the number of recorded samples.
func (h *AtomicHistogram) Count() uint64 {
	var n uint64
	for si := range h.stripes {
		for i := range h.stripes[si].buckets {
			n += h.stripes[si].buckets[i].Load()
		}
	}
	return n
}

// series is one registered metric: a name, its labels, and exactly one
// backing (counter, gauge, value func, or histogram).
type series struct {
	name   string
	labels []string // alternating key, value
	kind   Kind
	c      *Counter
	g      *Gauge
	fn     func() int64
	h      *AtomicHistogram
}

// Registry holds named metric series. The zero value is not usable;
// construct with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	byKey map[string]*series
	all   []*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*series)}
}

// seriesKey builds the identity key. Labels must come in pairs.
func seriesKey(name string, labels []string) string {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: series %q registered with odd label list %v", name, labels))
	}
	if len(labels) == 0 {
		return name
	}
	return name + "{" + strings.Join(labels, "\x00") + "}"
}

// lookup returns the existing series for the identity, checking the
// kind, or registers a new one built by mk.
func (r *Registry) lookup(name string, labels []string, kind Kind, mk func() *series) *series {
	key := seriesKey(name, labels)
	r.mu.RLock()
	s := r.byKey[key]
	r.mu.RUnlock()
	if s == nil {
		r.mu.Lock()
		if s = r.byKey[key]; s == nil {
			s = mk()
			s.name = name
			s.labels = append([]string(nil), labels...)
			s.kind = kind
			r.byKey[key] = s
			r.all = append(r.all, s)
		}
		r.mu.Unlock()
	}
	if s.kind != kind {
		panic(fmt.Sprintf("metrics: series %q re-registered as %v (was %v)", key, kind, s.kind))
	}
	return s
}

// Counter returns (registering on first use) the counter series with
// the given name and alternating label key/value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	s := r.lookup(name, labels, KindCounter, func() *series { return &series{c: &Counter{}} })
	if s.c == nil {
		panic(fmt.Sprintf("metrics: series %q is func-backed, not a Counter", seriesKey(name, labels)))
	}
	return s.c
}

// CounterFunc registers a counter series whose value is computed by fn
// at read time (for totals another subsystem already tracks
// atomically). Re-registering the same identity replaces the func.
func (r *Registry) CounterFunc(name string, fn func() int64, labels ...string) {
	s := r.lookup(name, labels, KindCounter, func() *series { return &series{} })
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Gauge returns (registering on first use) the gauge series with the
// given name and alternating label key/value pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	s := r.lookup(name, labels, KindGauge, func() *series { return &series{g: &Gauge{}} })
	if s.g == nil {
		panic(fmt.Sprintf("metrics: series %q is func-backed, not a Gauge", seriesKey(name, labels)))
	}
	return s.g
}

// GaugeFunc registers a gauge series whose value is computed by fn at
// read time. fn runs with no registry lock held, so it may take the
// caller's own locks. Re-registering the same identity replaces the
// func.
func (r *Registry) GaugeFunc(name string, fn func() int64, labels ...string) {
	s := r.lookup(name, labels, KindGauge, func() *series { return &series{} })
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram returns (registering on first use) the histogram series
// with the given name and alternating label key/value pairs.
func (r *Registry) Histogram(name string, labels ...string) *AtomicHistogram {
	s := r.lookup(name, labels, KindHistogram, func() *series { return &series{h: &AtomicHistogram{}} })
	return s.h
}

// Sample is one series' state at snapshot time.
type Sample struct {
	// Name and Labels identify the series; Labels alternates key, value.
	Name   string
	Labels []string
	// Kind is the series kind; Value carries counters and gauges, Hist
	// carries histograms (nil otherwise).
	Kind  Kind
	Value int64
	Hist  *Histogram
}

// LabelString renders the label pairs as `k="v",...` (empty for an
// unlabeled series), with Prometheus-style value escaping.
func (s Sample) LabelString() string {
	if len(s.Labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i+1 < len(s.Labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.Labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(s.Labels[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format
// (backslash, double quote, newline).
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// Snapshot evaluates every series and returns the samples sorted by
// name then labels — the grouping the Prometheus writer and the wire
// `stats full` reply both need. Func-backed values are evaluated with
// no registry lock held.
func (r *Registry) Snapshot() []Sample {
	r.mu.RLock()
	all := append([]*series(nil), r.all...)
	r.mu.RUnlock()
	out := make([]Sample, 0, len(all))
	for _, s := range all {
		smp := Sample{Name: s.name, Labels: s.labels, Kind: s.kind}
		switch {
		case s.c != nil:
			smp.Value = s.c.Load()
		case s.g != nil:
			smp.Value = s.g.Load()
		case s.fn != nil:
			smp.Value = s.fn()
		case s.h != nil:
			h := s.h.Snapshot()
			smp.Hist = &h
		}
		out = append(out, smp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return strings.Join(out[i].Labels, "\x00") < strings.Join(out[j].Labels, "\x00")
	})
	return out
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). Counters and gauges emit one line
// per series under a `# TYPE` header; histograms emit summary
// quantiles (0.5, 0.9, 0.99), `_sum` and `_count`, plus a `_max`
// gauge family — the same p50/p99/max surface the wire stats command
// reports.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Snapshot()
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for fi := 0; fi < len(samples); {
		fj := fi
		for fj < len(samples) && samples[fj].Name == samples[fi].Name {
			fj++
		}
		family := samples[fi:fj]
		name := family[0].Name
		pf("# TYPE %s %s\n", name, family[0].Kind)
		for _, smp := range family {
			ls := smp.LabelString()
			if smp.Hist == nil {
				if ls != "" {
					ls = "{" + ls + "}"
				}
				pf("%s%s %d\n", name, ls, smp.Value)
				continue
			}
			sep := ""
			if ls != "" {
				sep = ","
			}
			for _, q := range [...]float64{0.5, 0.9, 0.99} {
				pf("%s{%s%squantile=\"%g\"} %d\n", name, ls, sep, q, smp.Hist.Quantile(q))
			}
			if ls != "" {
				ls = "{" + ls + "}"
			}
			pf("%s_sum%s %d\n", name, ls, smp.Hist.Sum())
			pf("%s_count%s %d\n", name, ls, smp.Hist.Count())
		}
		if family[0].Hist != nil {
			pf("# TYPE %s_max gauge\n", name)
			for _, smp := range family {
				ls := smp.LabelString()
				if ls != "" {
					ls = "{" + ls + "}"
				}
				pf("%s_max%s %d\n", name, ls, smp.Hist.Max())
			}
		}
		fi = fj
	}
	return err
}
