// Package metrics provides the lightweight measurement primitives used
// by the benchmark harness and the command-line tools: a log-bucketed
// latency histogram with quantile estimation, and a throughput meter.
// The paper reports only aggregate runtimes; per-edge latency tails are
// what a production deployment of a continuous query engine watches, so
// the harness records them too.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// Histogram is a log2-bucketed histogram of non-negative int64 samples
// (typically nanoseconds). Bucket i covers [2^(i-1), 2^i); bucket 0
// covers {0}. Recording is allocation-free and O(1); quantiles are
// estimated by linear interpolation within the winning bucket, giving a
// worst-case relative error of 2x — adequate for tail monitoring.
// The zero value is ready to use. Not safe for concurrent use — series
// recorded by concurrent goroutines (shard workers, scrape-time reads)
// use AtomicHistogram, which shares the bucket layout and snapshots
// into a Histogram for quantile estimation.
type Histogram struct {
	buckets [65]uint64
	count   uint64
	sum     int64
	min     int64
	max     int64
}

// Record adds one sample. Negative samples are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
	}
	h.buckets[idx]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// RecordDuration adds one duration sample in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the arithmetic mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest recorded sample (0 with no samples).
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest recorded sample (0 with no samples).
func (h *Histogram) Max() int64 { return h.max }

// Quantile estimates the q-th quantile (q in [0,1]). It returns 0 with
// no samples; q outside [0,1] is clamped.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			lo, hi := bucketBounds(i)
			if hi > h.max {
				hi = h.max
			}
			if lo < h.min {
				lo = h.min
			}
			if hi < lo {
				hi = lo
			}
			// Linear interpolation of the rank within this bucket.
			frac := float64(rank-seen) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
		seen += c
	}
	return h.max
}

func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	lo = int64(1) << uint(i-1)
	hi = lo*2 - 1
	return lo, hi
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Summary renders count/mean/p50/p95/p99/max with a duration unit.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.count,
		time.Duration(int64(h.Mean())),
		time.Duration(h.Quantile(0.50)),
		time.Duration(h.Quantile(0.95)),
		time.Duration(h.Quantile(0.99)),
		time.Duration(h.max))
}

// Counter is a concurrency-safe event counter: written by one or more
// hot-path goroutines (a shard worker counting routed edges or emitted
// matches), read by anyone (the stats endpoint). The zero value is
// ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Meter measures event throughput against wall-clock time.
type Meter struct {
	start time.Time
	now   func() time.Time // test hook; nil means time.Now
	n     int64
}

// NewMeter returns a started meter.
func NewMeter() *Meter {
	m := &Meter{}
	m.start = m.clock()()
	return m
}

func (m *Meter) clock() func() time.Time {
	if m.now != nil {
		return m.now
	}
	return time.Now
}

// Add records n events.
func (m *Meter) Add(n int64) { m.n += n }

// Count returns the number of recorded events.
func (m *Meter) Count() int64 { return m.n }

// Elapsed returns the time since the meter started.
func (m *Meter) Elapsed() time.Duration { return m.clock()().Sub(m.start) }

// Rate returns events per second since the meter started.
func (m *Meter) Rate() float64 {
	el := m.Elapsed().Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.n) / el
}

// String renders the meter compactly.
func (m *Meter) String() string {
	return fmt.Sprintf("%d events in %v (%.0f/s)", m.n, m.Elapsed().Round(time.Millisecond), m.Rate())
}

// Table renders labeled histograms as an aligned text table (a helper
// for the experiment harness output).
func Table(rows map[string]*Histogram) string {
	var names []string
	width := 0
	for name := range rows {
		names = append(names, name)
		if len(name) > width {
			width = len(name)
		}
	}
	sortStrings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%-*s  %s\n", width, name, rows[name].Summary())
	}
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
