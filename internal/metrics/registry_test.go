package metrics

import (
	"bufio"
	"fmt"
	"math/rand"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestAtomicHistogramMatchesHistogram records the same sample set into
// both histogram flavors and asserts identical snapshots — buckets,
// count, sum, min, max, and therefore every quantile.
func TestAtomicHistogramMatchesHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var plain Histogram
	var at AtomicHistogram
	for i := 0; i < 20000; i++ {
		v := rng.Int63n(1 << uint(rng.Intn(40)))
		if rng.Intn(100) == 0 {
			v = -v // clamped to 0 by both
		}
		plain.Record(v)
		at.Record(v)
	}
	snap := at.Snapshot()
	if snap != plain {
		t.Fatalf("snapshot mismatch:\natomic %+v\nplain  %+v", snap, plain)
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if got, want := snap.Quantile(q), plain.Quantile(q); got != want {
			t.Errorf("Quantile(%g) = %d, want %d", q, got, want)
		}
	}
	if at.Count() != plain.Count() {
		t.Errorf("Count() = %d, want %d", at.Count(), plain.Count())
	}
}

// TestAtomicHistogramConcurrent is the -race pin for the satellite
// task: many goroutines hammer Record while others snapshot, and the
// final snapshot must account for every sample exactly once.
func TestAtomicHistogramConcurrent(t *testing.T) {
	const (
		writers   = 8
		perWriter = 5000
	)
	var h AtomicHistogram
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers: snapshots must be internally consistent
	// (count == sum of buckets) at every instant.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := h.Snapshot()
				var n uint64
				for _, q := range []float64{0.5, 0.99} {
					_ = snap.Quantile(q)
				}
				n = snap.Count()
				if n > writers*perWriter {
					t.Errorf("snapshot count %d exceeds total samples", n)
					return
				}
			}
		}()
	}
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.Record(rng.Int63n(1 << 30))
			}
		}(int64(wr))
	}
	// Wait for writers (the first `writers` Adds after the readers).
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Poll until all samples are visible, then stop the readers.
	deadline := time.After(30 * time.Second)
	for h.Count() < writers*perWriter {
		select {
		case <-deadline:
			t.Fatalf("timed out: %d/%d samples visible", h.Count(), writers*perWriter)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	<-done
	snap := h.Snapshot()
	if snap.Count() != writers*perWriter {
		t.Fatalf("final count %d, want %d", snap.Count(), writers*perWriter)
	}
}

// TestRegistryConcurrent hammers registration, recording, and
// snapshotting from many goroutines — the -race pin for the registry
// itself.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			shard := fmt.Sprintf("%d", g%4)
			c := reg.Counter("sg_test_events_total", "shard", shard)
			ga := reg.Gauge("sg_test_depth", "shard", shard)
			h := reg.Histogram("sg_test_latency_ns", "shard", shard)
			for i := 0; i < 2000; i++ {
				c.Inc()
				ga.Set(int64(i))
				h.Record(int64(i))
				if i%500 == 0 {
					_ = reg.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, s := range reg.Snapshot() {
		if s.Name == "sg_test_events_total" {
			total += s.Value
		}
	}
	if total != 8*2000 {
		t.Fatalf("counter total %d, want %d", total, 8*2000)
	}
}

// TestRegistryIdentity checks get-or-create semantics: same identity
// returns the same handle, different labels a different one, and a
// kind mismatch panics.
func TestRegistryIdentity(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "shard", "0")
	b := reg.Counter("x_total", "shard", "0")
	if a != b {
		t.Error("same identity returned distinct counters")
	}
	if c := reg.Counter("x_total", "shard", "1"); c == a {
		t.Error("different labels returned the same counter")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind mismatch did not panic")
			}
		}()
		reg.Gauge("x_total", "shard", "0")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("odd label list did not panic")
			}
		}()
		reg.Counter("y_total", "shard")
	}()
}

// promLine matches every legal sample line the writer may emit; promType
// matches the TYPE headers. Together they validate the exposition
// format line by line.
var (
	promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? -?[0-9]+$`)
	promType = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary|untyped)$`)
)

// TestWritePrometheus validates the text exposition: every line parses,
// TYPE headers are contiguous per family, histograms emit quantiles,
// sum, count and max, and label values are escaped.
func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sg_edges_total", "shard", "0").Add(41)
	reg.Counter("sg_edges_total", "shard", "1").Add(1)
	reg.Gauge("sg_depth").Set(-7)
	reg.GaugeFunc("sg_calc", func() int64 { return 13 })
	reg.CounterFunc("sg_wire_bytes_total", func() int64 { return 99 }, "dir", "in")
	h := reg.Histogram("sg_lat_ns", "query", `we"ird\q`)
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	typesSeen := map[string]bool{}
	lastType := ""
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			if !promType.MatchString(line) {
				t.Errorf("bad TYPE line: %q", line)
				continue
			}
			name := strings.Fields(line)[2]
			if typesSeen[name] {
				t.Errorf("family %s has a second TYPE header (non-contiguous)", name)
			}
			typesSeen[name] = true
			lastType = name
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("bad sample line: %q", line)
		}
		if !strings.HasPrefix(line, lastType) {
			t.Errorf("sample %q not under its TYPE header %q", line, lastType)
		}
	}
	for _, want := range []string{
		`sg_edges_total{shard="0"} 41`,
		"sg_depth -7",
		"sg_calc 13",
		`sg_wire_bytes_total{dir="in"} 99`,
		`quantile="0.5"`,
		`quantile="0.99"`,
		"sg_lat_ns_count",
		"sg_lat_ns_sum",
		"sg_lat_ns_max",
		`we\"ird\\q`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	hs := reg.Histogram("sg_lat_ns", "query", `we"ird\q`).Snapshot()
	if got := hs.Quantile(0.5); got < 32 || got > 64 {
		t.Errorf("p50 of 1..100 = %d, want within [32,64] (log2 interpolation)", got)
	}
}

// TestRegistryAllocFree asserts the hot-path operations (counter add,
// gauge set, histogram record on pre-registered handles) allocate
// nothing.
func TestRegistryAllocFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total")
	g := reg.Gauge("g")
	h := reg.Histogram("h_ns")
	n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(42)
		h.Record(12345)
	})
	if n != 0 {
		t.Errorf("hot path allocates %v allocs/op, want 0", n)
	}
}
