// Package sjtree implements the Subgraph Join Tree of Choudhury et al.
// (EDBT 2015, Section 3): a left-deep binary tree over a decomposition
// of the query graph. Leaves correspond to the small subgraphs searched
// on every edge arrival; each node stores the partial matches for its
// subgraph in a hash table keyed by the projection of the parent's
// cut sub-graph (the vertices shared between the parent's children,
// Property 4), so that sibling matches join by hash lookup
// (Algorithm 2).
package sjtree

import (
	"fmt"
	"sort"

	"streamgraph/internal/graph"
	"streamgraph/internal/iso"
	"streamgraph/internal/query"
)

// None marks an absent parent/child/sibling link.
const None = -1

// Node is one SJ-Tree node. Leaves carry the query subgraph searched on
// the stream; internal nodes carry the join of their children
// (Property 2) and the cut sub-graph used to key the match tables.
type Node struct {
	ID      int
	Parent  int
	Left    int
	Right   int
	Sibling int

	QEdges []int // query edge indices of VSG(n), sorted
	QVerts []int // query vertex indices covered, sorted
	Cut    []int // internal nodes: sorted query vertices shared by children

	IsLeaf  bool
	LeafPos int // position in left-to-right leaf order; -1 for internal nodes

	// NextLeaf is the leaf position whose search a stored match at this
	// node enables under Lazy Search, or -1. For the leftmost leaf it is
	// 1; for the internal node joining leaves 0..i it is i+1.
	NextLeaf int

	// table holds the stored partial matches, keyed by a 64-bit hash of
	// the cut bindings (Property 4's projection Π). Hashing avoids the
	// per-insert string materialization of a byte-exact key; probes
	// re-check cut-binding equality explicitly so a hash collision can
	// only cost a skipped comparison, never a wrong join.
	table map[uint64][]iso.Match
	// seen indexes the live stored matches by binding-signature hash
	// for O(1) duplicate suppression when the tree's Dedup flag is set
	// (Lazy Search re-discovers matches). It holds the first live match
	// per hash; seenOver carries the rare hash-colliding rest. A probe
	// verifies sigEqual against the indexed match itself — never the
	// table bucket, whose length is unbounded at hub vertices — so a
	// signature collision can only cost an overflow scan, never a wrong
	// suppression. Entries are removed as their matches expire.
	seen     map[uint64]iso.Match
	seenOver map[uint64][]iso.Match
	// exp indexes every stored match by MinTS for incremental window
	// expiry (see expiry.go).
	exp []expEntry
}

// Stats counts the work performed by a tree since construction.
type Stats struct {
	Inserted       int64 // matches added to some match table
	Deduped        int64 // duplicate insertions suppressed (lazy mode)
	JoinsAttempted int64
	JoinsSucceeded int64
	Emitted        int64 // complete matches reported
	Stored         int64 // currently live stored matches
	PeakStored     int64
	Evicted        int64
	Shed           int64 // inserts/probes dropped by the work budget
	ExpireScanned  int64 // stored matches examined by ExpireBefore; stays 0 on no-expiry passes
}

// Tree is an SJ-Tree bound to a query graph.
type Tree struct {
	Query  *query.Graph
	Nodes  []*Node
	Root   int
	Leaves []int // node IDs in left-to-right order

	// Window, when positive, is tW: joins producing a match with
	// τ(g) >= Window are rejected, and ExpireBefore evicts stored
	// matches that can no longer participate in an in-window match.
	Window int64

	// Dedup enables duplicate suppression on insert. Lazy Search's
	// retrospective neighborhood searches can rediscover a stored match;
	// non-lazy processing discovers each match exactly once and can skip
	// the check.
	Dedup bool

	// Budget, when non-nil, bounds the work (join attempts + stored
	// inserts) a cascade may perform before load-shedding: once
	// Budget.Remaining reaches zero, Insert stops probing and storing
	// for the current event. Streaming engines shed load under
	// combinatorial pressure (hub vertices of unlabeled queries);
	// Stats.Shed counts the dropped work.
	Budget *WorkBudget

	// pool recycles the backing arrays of evicted and discarded
	// matches into join outputs and (via Pool) the engine's candidate
	// clones, keeping the steady-state insert path allocation-free.
	pool *iso.MatchPool

	// collide (test hook) forces every cut key and dedup signature to
	// hash to the same value, so the differential tests can prove the
	// probe-time equality checks keep results exact under collisions.
	collide bool

	scratchKeys []uint64 // reusable expiry scratch (see expireNode)

	stats Stats
}

// WorkBudget is a per-event work allowance shared across a cascade.
type WorkBudget struct{ Remaining int64 }

// Build constructs a left-deep SJ-Tree for query q from an ordered leaf
// decomposition: leaves[i] lists the query edge indices of the i-th leaf
// subgraph, most selective first. The leaves must be non-empty, disjoint
// and together cover every query edge (Property 1).
func Build(q *query.Graph, leaves [][]int, window int64) (*Tree, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(leaves) == 0 {
		return nil, fmt.Errorf("sjtree: no leaves")
	}
	covered := make([]bool, len(q.Edges))
	for i, leaf := range leaves {
		if len(leaf) == 0 {
			return nil, fmt.Errorf("sjtree: leaf %d is empty", i)
		}
		for _, ei := range leaf {
			if ei < 0 || ei >= len(q.Edges) {
				return nil, fmt.Errorf("sjtree: leaf %d references edge %d out of range", i, ei)
			}
			if covered[ei] {
				return nil, fmt.Errorf("sjtree: query edge %d appears in two leaves", ei)
			}
			covered[ei] = true
		}
	}
	for ei, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("sjtree: query edge %d not covered by any leaf", ei)
		}
	}

	t := &Tree{Query: q, Root: None, Window: window, pool: iso.NewMatchPool(q)}
	newNode := func() *Node {
		n := &Node{
			ID: len(t.Nodes), Parent: None, Left: None, Right: None,
			Sibling: None, LeafPos: -1, NextLeaf: -1,
			table: make(map[uint64][]iso.Match),
		}
		t.Nodes = append(t.Nodes, n)
		return n
	}
	mkLeaf := func(pos int) *Node {
		n := newNode()
		n.IsLeaf = true
		n.LeafPos = pos
		n.QEdges = append([]int(nil), leaves[pos]...)
		sort.Ints(n.QEdges)
		n.QVerts = q.EdgeVertices(n.QEdges)
		t.Leaves = append(t.Leaves, n.ID)
		return n
	}

	cur := mkLeaf(0)
	for i := 1; i < len(leaves); i++ {
		right := mkLeaf(i)
		parent := newNode()
		parent.Left, parent.Right = cur.ID, right.ID
		cur.Parent, right.Parent = parent.ID, parent.ID
		cur.Sibling, right.Sibling = right.ID, cur.ID
		parent.QEdges = mergeSorted(cur.QEdges, right.QEdges)
		parent.QVerts = q.EdgeVertices(parent.QEdges)
		parent.Cut = intersectSorted(cur.QVerts, right.QVerts)
		cur = parent
	}
	t.Root = cur.ID

	// NextLeaf wiring for Lazy Search: the leftmost leaf enables leaf 1;
	// each internal node covering leaves 0..i enables leaf i+1.
	if len(leaves) > 1 {
		t.Nodes[t.Leaves[0]].NextLeaf = 1
	}
	for _, n := range t.Nodes {
		if n.IsLeaf {
			continue
		}
		if covered := countLeavesCovered(t, n); covered < len(leaves) {
			n.NextLeaf = covered
		}
	}
	return t, nil
}

func countLeavesCovered(t *Tree, n *Node) int {
	// A node covers leaf i iff all of leaf i's edges are within n.QEdges.
	in := make(map[int]bool, len(n.QEdges))
	for _, e := range n.QEdges {
		in[e] = true
	}
	covered := 0
	for _, leafID := range t.Leaves {
		leaf := t.Nodes[leafID]
		all := true
		for _, e := range leaf.QEdges {
			if !in[e] {
				all = false
				break
			}
		}
		if all {
			covered++
		}
	}
	return covered
}

func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Ints(out)
	return out
}

func intersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// LeafNode returns the node for the given leaf position.
func (t *Tree) LeafNode(pos int) *Node { return t.Nodes[t.Leaves[pos]] }

// LeafEdges returns the query edge indices of the given leaf position.
func (t *Tree) LeafEdges(pos int) []int { return t.Nodes[t.Leaves[pos]].QEdges }

// NumLeaves returns the number of leaves.
func (t *Tree) NumLeaves() int { return len(t.Leaves) }

// Stats returns a snapshot of the tree's counters.
func (t *Tree) Stats() Stats { return t.stats }

// joinKey hashes a match's projection onto a cut: the data vertices
// bound to the cut's query vertices, folded in cut order (Property 4's
// projection Π followed by GET-JOIN-KEY) with iso's shared FNV-1a
// scheme. Two matches with equal cut bindings always hash equal;
// unequal bindings may collide, which the probe-time cutEqual check
// makes harmless.
func (t *Tree) joinKey(cut []int, m iso.Match) uint64 {
	if t.collide {
		return 0
	}
	h := iso.HashStart()
	for _, qv := range cut {
		h = iso.HashMix32(h, uint32(m.VertexOf[qv]))
	}
	return h
}

// cutEqual reports whether a and b bind every cut vertex identically —
// the explicit equality check behind each hashed-key probe.
func cutEqual(cut []int, a, b iso.Match) bool {
	for _, qv := range cut {
		if a.VertexOf[qv] != b.VertexOf[qv] {
			return false
		}
	}
	return true
}

// Pool exposes the tree's match pool so the engine can wire it into its
// merge-path matcher (candidate clones then reuse evicted arrays).
func (t *Tree) Pool() *iso.MatchPool { return t.pool }

// Release recycles a match the caller discarded without inserting (a
// lazily gated candidate, an excluded retrospective match). The caller
// must exclusively own m.
func (t *Tree) Release(m iso.Match) { t.pool.Put(m) }

// OnStored observes every match newly stored at a node; Lazy Search uses
// it to enable the next leaf's search around the match's vertices.
type OnStored func(n *Node, m iso.Match)

// Insert runs UPDATE-SJ-TREE (Algorithm 2) for a match discovered at the
// given leaf. emit receives every completed (root-level) match; onStored
// (optional) observes every partial match added to a table. It returns
// the number of complete matches produced.
//
// Insert takes ownership of m: its backing arrays may be recycled
// through the tree's match pool (on eviction, or immediately when the
// insert is dedup-suppressed), so callers must not reuse m after the
// call and must not pass a match aliasing an already-stored one — pass
// a clone to retain or replay one.
func (t *Tree) Insert(leafPos int, m iso.Match, emit func(iso.Match), onStored OnStored) int {
	return t.update(t.Nodes[t.Leaves[leafPos]], m, emit, onStored)
}

func (t *Tree) update(node *Node, m iso.Match, emit func(iso.Match), onStored OnStored) int {
	if node.ID == t.Root {
		t.stats.Emitted++
		if emit != nil {
			emit(m)
		}
		return 1
	}
	if t.Budget != nil {
		if t.Budget.Remaining <= 0 {
			t.stats.Shed++
			return 0
		}
		t.Budget.Remaining--
	}
	parent := t.Nodes[node.Parent]
	sibling := t.Nodes[node.Sibling]
	k := t.joinKey(parent.Cut, m)

	// A duplicate insert must be a complete no-op: re-probing the
	// sibling would re-emit every join this match already produced. A
	// signature-hash hit alone is not proof — the indexed match (and
	// any hash-colliding overflow) is compared binding-for-binding, so
	// a collision cannot suppress a genuine match. The probe never
	// touches the table bucket itself: hub-vertex buckets grow with the
	// window, and the previous bucket scan made every duplicate cost
	// O(bucket) right where duplicates are most frequent.
	var sig uint64
	if t.Dedup {
		sig = t.sigHash(node, m)
		if seenHasSig(node, sig, m) {
			t.stats.Deduped++
			// Ownership of m transferred to the tree and it was not
			// stored: recycle its arrays (Insert's contract forbids the
			// caller passing an alias of an already-stored match).
			t.pool.Put(m)
			return 0
		}
	}

	complete := 0
	// Probe the sibling's table and push successful joins up the tree.
	for _, ms := range sibling.table[k] {
		if !cutEqual(parent.Cut, m, ms) {
			continue // hash collision: not actually the same join key
		}
		if t.Budget != nil {
			if t.Budget.Remaining <= 0 {
				t.stats.Shed++
				break
			}
			t.Budget.Remaining--
		}
		t.stats.JoinsAttempted++
		sup, ok := t.join(m, ms)
		if !ok {
			continue
		}
		t.stats.JoinsSucceeded++
		complete += t.update(parent, sup, emit, onStored)
	}
	node.table[k] = append(node.table[k], m)
	heapPush(&node.exp, expEntry{ts: m.MinTS, key: k})
	if t.Dedup {
		addSeen(node, sig, m)
	}
	t.stats.Inserted++
	t.stats.Stored++
	if t.stats.Stored > t.stats.PeakStored {
		t.stats.PeakStored = t.stats.Stored
	}
	if onStored != nil {
		onStored(node, m)
	}
	return complete
}

// sigHash canonicalizes a match's binding at a node into a 64-bit
// hash: the data edge bound to every query edge of the node, plus the
// match's earliest timestamp (edge IDs are recycled after window
// eviction; an identical ID+timestamp combination denotes an
// observably identical edge).
func (t *Tree) sigHash(node *Node, m iso.Match) uint64 {
	if t.collide {
		return 0
	}
	h := iso.HashStart()
	for _, qe := range node.QEdges {
		h = iso.HashMix32(h, uint32(m.EdgeOf[qe]))
	}
	return iso.HashMix64(h, uint64(m.MinTS))
}

func sigEqual(node *Node, a, b iso.Match) bool {
	if a.MinTS != b.MinTS {
		return false
	}
	for _, qe := range node.QEdges {
		if a.EdgeOf[qe] != b.EdgeOf[qe] {
			return false
		}
	}
	return true
}

// seenHasSig reports whether a live stored match with m's exact binding
// signature exists at node: an O(1) index probe plus a scan of the
// hash-colliding overflow (empty except under real 64-bit collisions or
// the collide test hook).
func seenHasSig(node *Node, sig uint64, m iso.Match) bool {
	first, ok := node.seen[sig]
	if !ok {
		return false
	}
	if sigEqual(node, first, m) {
		return true
	}
	for _, ms := range node.seenOver[sig] {
		if sigEqual(node, ms, m) {
			return true
		}
	}
	return false
}

// addSeen indexes a newly stored match. The match shares its backing
// arrays with the table entry; removeSeen must run before the arrays
// are recycled.
func addSeen(node *Node, sig uint64, m iso.Match) {
	if node.seen == nil {
		node.seen = make(map[uint64]iso.Match)
	}
	if _, ok := node.seen[sig]; !ok {
		node.seen[sig] = m
		return
	}
	if node.seenOver == nil {
		node.seenOver = make(map[uint64][]iso.Match)
	}
	node.seenOver[sig] = append(node.seenOver[sig], m)
}

// removeSeen drops the index entry for an expiring stored match,
// promoting an overflow entry into the primary slot when one exists so
// later probes still see every live match.
func removeSeen(node *Node, sig uint64, m iso.Match) {
	first, ok := node.seen[sig]
	if !ok {
		return
	}
	over := node.seenOver[sig]
	if sigEqual(node, first, m) {
		if n := len(over); n > 0 {
			node.seen[sig] = over[n-1]
			if n == 1 {
				delete(node.seenOver, sig)
			} else {
				node.seenOver[sig] = over[:n-1]
			}
		} else {
			delete(node.seen, sig)
		}
		return
	}
	for i, ms := range over {
		if sigEqual(node, ms, m) {
			last := len(over) - 1
			over[i] = over[last]
			if last == 0 {
				delete(node.seenOver, sig)
			} else {
				node.seenOver[sig] = over[:last]
			}
			return
		}
	}
}

// join merges two sibling matches (Definition 3.1.3): the union of their
// bindings, provided shared query vertices agree (probed via the hashed
// cut key and re-checked here), vertex injectivity holds across the
// union, data edges are distinct, and the combined τ(g) respects the
// window. The merged output draws its arrays from the match pool and is
// recycled straight back on rejection, so failed joins — the
// overwhelming majority at hub vertices — cost no heap churn.
func (t *Tree) join(a, b iso.Match) (iso.Match, bool) {
	if t.Window > 0 {
		lo, hi := a.MinTS, a.MaxTS
		if b.MinTS < lo {
			lo = b.MinTS
		}
		if b.MaxTS > hi {
			hi = b.MaxTS
		}
		if hi-lo >= t.Window {
			return iso.Match{}, false
		}
	}
	out := t.pool.Clone(a)
	reject := func() (iso.Match, bool) {
		t.pool.Put(out)
		return iso.Match{}, false
	}
	// Vertices: merge with consistency + injectivity checks.
	for qv, dv := range b.VertexOf {
		if dv == graph.NoVertex {
			continue
		}
		if cur := out.VertexOf[qv]; cur != graph.NoVertex {
			if cur != dv {
				return reject()
			}
			continue
		}
		// dv must not already be bound to a different query vertex.
		for qv2, dv2 := range out.VertexOf {
			if dv2 == dv && qv2 != qv {
				return reject()
			}
		}
		out.VertexOf[qv] = dv
	}
	// Edges: merge, requiring distinct data edges.
	for qe, de := range b.EdgeOf {
		if de == iso.NoEdge {
			continue
		}
		if out.EdgeOf[qe] != iso.NoEdge {
			// Leaves are edge-disjoint, so the same query edge can never
			// be bound on both sides.
			return reject()
		}
		for _, de2 := range out.EdgeOf {
			if de2 == de {
				return reject()
			}
		}
		out.EdgeOf[qe] = de
	}
	if b.MinTS < out.MinTS {
		out.MinTS = b.MinTS
	}
	if b.MaxTS > out.MaxTS {
		out.MaxTS = b.MaxTS
	}
	return out, true
}

// RestoreStored re-inserts a previously stored partial match at the
// given node without probing the sibling or cascading joins — the
// snapshot/restore path, where every join the match could produce was
// already produced before the snapshot was taken. The match must carry
// bindings consistent with the node's subgraph; only structural checks
// are performed.
func (t *Tree) RestoreStored(nodeID int, m iso.Match) error {
	if nodeID < 0 || nodeID >= len(t.Nodes) {
		return fmt.Errorf("sjtree: node %d out of range", nodeID)
	}
	node := t.Nodes[nodeID]
	if node.ID == t.Root {
		return fmt.Errorf("sjtree: the root stores no matches")
	}
	parent := t.Nodes[node.Parent]
	k := t.joinKey(parent.Cut, m)
	node.table[k] = append(node.table[k], m)
	heapPush(&node.exp, expEntry{ts: m.MinTS, key: k})
	if t.Dedup {
		addSeen(node, t.sigHash(node, m), m)
	}
	t.stats.Stored++
	if t.stats.Stored > t.stats.PeakStored {
		t.stats.PeakStored = t.stats.Stored
	}
	return nil
}

// ExpireBefore evicts every stored match whose earliest edge is older
// than cutoff; such matches can no longer complete within the window
// once the stream has advanced past cutoff + tW. Returns the number of
// matches evicted.
//
// Eviction is incremental: each node's time index (a min-heap over
// MinTS, see expiry.go) names exactly the buckets holding expired
// matches, so a pass costs O(expired) plus the touched buckets — and a
// pass that expires nothing performs no table scans at all
// (Stats.ExpireScanned pins this).
func (t *Tree) ExpireBefore(cutoff int64) int {
	evicted := 0
	for _, n := range t.Nodes {
		evicted += t.expireNode(n, cutoff)
	}
	t.stats.Stored -= int64(evicted)
	t.stats.Evicted += int64(evicted)
	return evicted
}

// DropDedupState releases the duplicate-suppression tables. The
// adaptive migration path bulk-loads a new tree with Dedup forced on;
// when the engine then runs non-lazy (Dedup off), the leftover counts
// would never be read or cleaned, so it drops them.
func (t *Tree) DropDedupState() {
	for _, n := range t.Nodes {
		n.seen = nil
		n.seenOver = nil
	}
}

// StoredMatches returns the number of live partial matches across all
// match tables.
func (t *Tree) StoredMatches() int { return int(t.stats.Stored) }

// EachStored invokes fn for every stored partial match. Returning false
// stops the iteration. The tree must not be mutated during iteration.
func (t *Tree) EachStored(fn func(n *Node, m iso.Match) bool) {
	for _, n := range t.Nodes {
		for _, bucket := range n.table {
			for _, m := range bucket {
				if !fn(n, m) {
					return
				}
			}
		}
	}
}

// LeafSets returns the decomposition as leaf edge-index lists in
// left-to-right order (a copy).
func (t *Tree) LeafSets() [][]int {
	out := make([][]int, len(t.Leaves))
	for i, id := range t.Leaves {
		out[i] = append([]int(nil), t.Nodes[id].QEdges...)
	}
	return out
}

// TableSize returns the number of matches stored at the given node.
func (t *Tree) TableSize(nodeID int) int {
	n := 0
	for _, bucket := range t.Nodes[nodeID].table {
		n += len(bucket)
	}
	return n
}

// String renders a compact structural description of the tree.
func (t *Tree) String() string {
	s := fmt.Sprintf("sjtree{leaves=%d", len(t.Leaves))
	for i, id := range t.Leaves {
		s += fmt.Sprintf(" L%d=%v", i, t.Nodes[id].QEdges)
	}
	return s + "}"
}
