// Package sjtree implements the Subgraph Join Tree of Choudhury et al.
// (EDBT 2015, Section 3): a left-deep binary tree over a decomposition
// of the query graph. Leaves correspond to the small subgraphs searched
// on every edge arrival; each node stores the partial matches for its
// subgraph in a hash table keyed by the projection of the parent's
// cut sub-graph (the vertices shared between the parent's children,
// Property 4), so that sibling matches join by hash lookup
// (Algorithm 2).
package sjtree

import (
	"encoding/binary"
	"fmt"
	"sort"

	"streamgraph/internal/graph"
	"streamgraph/internal/iso"
	"streamgraph/internal/query"
)

// None marks an absent parent/child/sibling link.
const None = -1

// Node is one SJ-Tree node. Leaves carry the query subgraph searched on
// the stream; internal nodes carry the join of their children
// (Property 2) and the cut sub-graph used to key the match tables.
type Node struct {
	ID      int
	Parent  int
	Left    int
	Right   int
	Sibling int

	QEdges []int // query edge indices of VSG(n), sorted
	QVerts []int // query vertex indices covered, sorted
	Cut    []int // internal nodes: sorted query vertices shared by children

	IsLeaf  bool
	LeafPos int // position in left-to-right leaf order; -1 for internal nodes

	// NextLeaf is the leaf position whose search a stored match at this
	// node enables under Lazy Search, or -1. For the leftmost leaf it is
	// 1; for the internal node joining leaves 0..i it is i+1.
	NextLeaf int

	table map[string][]iso.Match
	// seen maps binding signatures to the match's MinTS for O(1)
	// duplicate suppression when the tree's Dedup flag is set (Lazy
	// Search re-discovers matches); entries expire with the window.
	seen map[string]int64
}

// Stats counts the work performed by a tree since construction.
type Stats struct {
	Inserted       int64 // matches added to some match table
	Deduped        int64 // duplicate insertions suppressed (lazy mode)
	JoinsAttempted int64
	JoinsSucceeded int64
	Emitted        int64 // complete matches reported
	Stored         int64 // currently live stored matches
	PeakStored     int64
	Evicted        int64
	Shed           int64 // inserts/probes dropped by the work budget
}

// Tree is an SJ-Tree bound to a query graph.
type Tree struct {
	Query  *query.Graph
	Nodes  []*Node
	Root   int
	Leaves []int // node IDs in left-to-right order

	// Window, when positive, is tW: joins producing a match with
	// τ(g) >= Window are rejected, and ExpireBefore evicts stored
	// matches that can no longer participate in an in-window match.
	Window int64

	// Dedup enables duplicate suppression on insert. Lazy Search's
	// retrospective neighborhood searches can rediscover a stored match;
	// non-lazy processing discovers each match exactly once and can skip
	// the check.
	Dedup bool

	// Budget, when non-nil, bounds the work (join attempts + stored
	// inserts) a cascade may perform before load-shedding: once
	// Budget.Remaining reaches zero, Insert stops probing and storing
	// for the current event. Streaming engines shed load under
	// combinatorial pressure (hub vertices of unlabeled queries);
	// Stats.Shed counts the dropped work.
	Budget *WorkBudget

	stats Stats
}

// WorkBudget is a per-event work allowance shared across a cascade.
type WorkBudget struct{ Remaining int64 }

// Build constructs a left-deep SJ-Tree for query q from an ordered leaf
// decomposition: leaves[i] lists the query edge indices of the i-th leaf
// subgraph, most selective first. The leaves must be non-empty, disjoint
// and together cover every query edge (Property 1).
func Build(q *query.Graph, leaves [][]int, window int64) (*Tree, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(leaves) == 0 {
		return nil, fmt.Errorf("sjtree: no leaves")
	}
	covered := make([]bool, len(q.Edges))
	for i, leaf := range leaves {
		if len(leaf) == 0 {
			return nil, fmt.Errorf("sjtree: leaf %d is empty", i)
		}
		for _, ei := range leaf {
			if ei < 0 || ei >= len(q.Edges) {
				return nil, fmt.Errorf("sjtree: leaf %d references edge %d out of range", i, ei)
			}
			if covered[ei] {
				return nil, fmt.Errorf("sjtree: query edge %d appears in two leaves", ei)
			}
			covered[ei] = true
		}
	}
	for ei, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("sjtree: query edge %d not covered by any leaf", ei)
		}
	}

	t := &Tree{Query: q, Root: None, Window: window}
	newNode := func() *Node {
		n := &Node{
			ID: len(t.Nodes), Parent: None, Left: None, Right: None,
			Sibling: None, LeafPos: -1, NextLeaf: -1,
			table: make(map[string][]iso.Match),
		}
		t.Nodes = append(t.Nodes, n)
		return n
	}
	mkLeaf := func(pos int) *Node {
		n := newNode()
		n.IsLeaf = true
		n.LeafPos = pos
		n.QEdges = append([]int(nil), leaves[pos]...)
		sort.Ints(n.QEdges)
		n.QVerts = q.EdgeVertices(n.QEdges)
		t.Leaves = append(t.Leaves, n.ID)
		return n
	}

	cur := mkLeaf(0)
	for i := 1; i < len(leaves); i++ {
		right := mkLeaf(i)
		parent := newNode()
		parent.Left, parent.Right = cur.ID, right.ID
		cur.Parent, right.Parent = parent.ID, parent.ID
		cur.Sibling, right.Sibling = right.ID, cur.ID
		parent.QEdges = mergeSorted(cur.QEdges, right.QEdges)
		parent.QVerts = q.EdgeVertices(parent.QEdges)
		parent.Cut = intersectSorted(cur.QVerts, right.QVerts)
		cur = parent
	}
	t.Root = cur.ID

	// NextLeaf wiring for Lazy Search: the leftmost leaf enables leaf 1;
	// each internal node covering leaves 0..i enables leaf i+1.
	if len(leaves) > 1 {
		t.Nodes[t.Leaves[0]].NextLeaf = 1
	}
	for _, n := range t.Nodes {
		if n.IsLeaf {
			continue
		}
		if covered := countLeavesCovered(t, n); covered < len(leaves) {
			n.NextLeaf = covered
		}
	}
	return t, nil
}

func countLeavesCovered(t *Tree, n *Node) int {
	// A node covers leaf i iff all of leaf i's edges are within n.QEdges.
	in := make(map[int]bool, len(n.QEdges))
	for _, e := range n.QEdges {
		in[e] = true
	}
	covered := 0
	for _, leafID := range t.Leaves {
		leaf := t.Nodes[leafID]
		all := true
		for _, e := range leaf.QEdges {
			if !in[e] {
				all = false
				break
			}
		}
		if all {
			covered++
		}
	}
	return covered
}

func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Ints(out)
	return out
}

func intersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// LeafNode returns the node for the given leaf position.
func (t *Tree) LeafNode(pos int) *Node { return t.Nodes[t.Leaves[pos]] }

// LeafEdges returns the query edge indices of the given leaf position.
func (t *Tree) LeafEdges(pos int) []int { return t.Nodes[t.Leaves[pos]].QEdges }

// NumLeaves returns the number of leaves.
func (t *Tree) NumLeaves() int { return len(t.Leaves) }

// Stats returns a snapshot of the tree's counters.
func (t *Tree) Stats() Stats { return t.stats }

// joinKey builds the hash key for a match with respect to a cut: the
// data vertices bound to the cut's query vertices, in cut order
// (Property 4's projection Π followed by GET-JOIN-KEY).
func joinKey(cut []int, m iso.Match) string {
	if len(cut) == 0 {
		return ""
	}
	buf := make([]byte, 4*len(cut))
	for i, qv := range cut {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(m.VertexOf[qv]))
	}
	return string(buf)
}

// OnStored observes every match newly stored at a node; Lazy Search uses
// it to enable the next leaf's search around the match's vertices.
type OnStored func(n *Node, m iso.Match)

// Insert runs UPDATE-SJ-TREE (Algorithm 2) for a match discovered at the
// given leaf. emit receives every completed (root-level) match; onStored
// (optional) observes every partial match added to a table. It returns
// the number of complete matches produced.
func (t *Tree) Insert(leafPos int, m iso.Match, emit func(iso.Match), onStored OnStored) int {
	return t.update(t.Nodes[t.Leaves[leafPos]], m, emit, onStored)
}

func (t *Tree) update(node *Node, m iso.Match, emit func(iso.Match), onStored OnStored) int {
	if node.ID == t.Root {
		t.stats.Emitted++
		if emit != nil {
			emit(m)
		}
		return 1
	}
	if t.Budget != nil {
		if t.Budget.Remaining <= 0 {
			t.stats.Shed++
			return 0
		}
		t.Budget.Remaining--
	}
	parent := t.Nodes[node.Parent]
	sibling := t.Nodes[node.Sibling]
	k := joinKey(parent.Cut, m)

	// A duplicate insert must be a complete no-op: re-probing the
	// sibling would re-emit every join this match already produced.
	var sig string
	if t.Dedup {
		sig = t.signature(node, m)
		if _, dup := node.seen[sig]; dup {
			t.stats.Deduped++
			return 0
		}
	}

	complete := 0
	// Probe the sibling's table and push successful joins up the tree.
	for _, ms := range sibling.table[k] {
		if t.Budget != nil {
			if t.Budget.Remaining <= 0 {
				t.stats.Shed++
				break
			}
			t.Budget.Remaining--
		}
		t.stats.JoinsAttempted++
		sup, ok := t.join(m, ms)
		if !ok {
			continue
		}
		t.stats.JoinsSucceeded++
		complete += t.update(parent, sup, emit, onStored)
	}
	node.table[k] = append(node.table[k], m)
	if t.Dedup {
		if node.seen == nil {
			node.seen = make(map[string]int64)
		}
		node.seen[sig] = m.MinTS
	}
	t.stats.Inserted++
	t.stats.Stored++
	if t.stats.Stored > t.stats.PeakStored {
		t.stats.PeakStored = t.stats.Stored
	}
	if onStored != nil {
		onStored(node, m)
	}
	return complete
}

// signature canonicalizes a match's binding at a node: the data edge
// bound to every query edge of the node, plus the match's earliest
// timestamp (edge IDs are recycled after window eviction; an identical
// ID+timestamp combination denotes an observably identical edge).
func (t *Tree) signature(node *Node, m iso.Match) string {
	buf := make([]byte, 0, 4*len(node.QEdges)+8)
	for _, qe := range node.QEdges {
		id := uint32(m.EdgeOf[qe])
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	ts := uint64(m.MinTS)
	buf = append(buf, byte(ts), byte(ts>>8), byte(ts>>16), byte(ts>>24),
		byte(ts>>32), byte(ts>>40), byte(ts>>48), byte(ts>>56))
	return string(buf)
}

// join merges two sibling matches (Definition 3.1.3): the union of their
// bindings, provided shared query vertices agree (guaranteed for cut
// vertices by the hash key, checked for the rest), vertex injectivity
// holds across the union, data edges are distinct, and the combined
// τ(g) respects the window.
func (t *Tree) join(a, b iso.Match) (iso.Match, bool) {
	if t.Window > 0 {
		lo, hi := a.MinTS, a.MaxTS
		if b.MinTS < lo {
			lo = b.MinTS
		}
		if b.MaxTS > hi {
			hi = b.MaxTS
		}
		if hi-lo >= t.Window {
			return iso.Match{}, false
		}
	}
	out := a.Clone()
	// Vertices: merge with consistency + injectivity checks.
	for qv, dv := range b.VertexOf {
		if dv == graph.NoVertex {
			continue
		}
		if cur := out.VertexOf[qv]; cur != graph.NoVertex {
			if cur != dv {
				return iso.Match{}, false
			}
			continue
		}
		// dv must not already be bound to a different query vertex.
		for qv2, dv2 := range out.VertexOf {
			if dv2 == dv && qv2 != qv {
				return iso.Match{}, false
			}
		}
		out.VertexOf[qv] = dv
	}
	// Edges: merge, requiring distinct data edges.
	for qe, de := range b.EdgeOf {
		if de == iso.NoEdge {
			continue
		}
		if out.EdgeOf[qe] != iso.NoEdge {
			// Leaves are edge-disjoint, so the same query edge can never
			// be bound on both sides.
			return iso.Match{}, false
		}
		for _, de2 := range out.EdgeOf {
			if de2 == de {
				return iso.Match{}, false
			}
		}
		out.EdgeOf[qe] = de
	}
	if b.MinTS < out.MinTS {
		out.MinTS = b.MinTS
	}
	if b.MaxTS > out.MaxTS {
		out.MaxTS = b.MaxTS
	}
	return out, true
}

// RestoreStored re-inserts a previously stored partial match at the
// given node without probing the sibling or cascading joins — the
// snapshot/restore path, where every join the match could produce was
// already produced before the snapshot was taken. The match must carry
// bindings consistent with the node's subgraph; only structural checks
// are performed.
func (t *Tree) RestoreStored(nodeID int, m iso.Match) error {
	if nodeID < 0 || nodeID >= len(t.Nodes) {
		return fmt.Errorf("sjtree: node %d out of range", nodeID)
	}
	node := t.Nodes[nodeID]
	if node.ID == t.Root {
		return fmt.Errorf("sjtree: the root stores no matches")
	}
	parent := t.Nodes[node.Parent]
	k := joinKey(parent.Cut, m)
	node.table[k] = append(node.table[k], m)
	if t.Dedup {
		if node.seen == nil {
			node.seen = make(map[string]int64)
		}
		node.seen[t.signature(node, m)] = m.MinTS
	}
	t.stats.Stored++
	if t.stats.Stored > t.stats.PeakStored {
		t.stats.PeakStored = t.stats.Stored
	}
	return nil
}

// ExpireBefore evicts every stored match whose earliest edge is older
// than cutoff; such matches can no longer complete within the window
// once the stream has advanced past cutoff + tW. Returns the number of
// matches evicted.
func (t *Tree) ExpireBefore(cutoff int64) int {
	evicted := 0
	for _, n := range t.Nodes {
		for k, bucket := range n.table {
			kept := bucket[:0]
			for _, m := range bucket {
				if m.MinTS < cutoff {
					evicted++
					continue
				}
				kept = append(kept, m)
			}
			if len(kept) == 0 {
				delete(n.table, k)
			} else {
				n.table[k] = kept
			}
		}
		for sig, minTS := range n.seen {
			if minTS < cutoff {
				delete(n.seen, sig)
			}
		}
	}
	t.stats.Stored -= int64(evicted)
	t.stats.Evicted += int64(evicted)
	return evicted
}

// StoredMatches returns the number of live partial matches across all
// match tables.
func (t *Tree) StoredMatches() int { return int(t.stats.Stored) }

// EachStored invokes fn for every stored partial match. Returning false
// stops the iteration. The tree must not be mutated during iteration.
func (t *Tree) EachStored(fn func(n *Node, m iso.Match) bool) {
	for _, n := range t.Nodes {
		for _, bucket := range n.table {
			for _, m := range bucket {
				if !fn(n, m) {
					return
				}
			}
		}
	}
}

// LeafSets returns the decomposition as leaf edge-index lists in
// left-to-right order (a copy).
func (t *Tree) LeafSets() [][]int {
	out := make([][]int, len(t.Leaves))
	for i, id := range t.Leaves {
		out[i] = append([]int(nil), t.Nodes[id].QEdges...)
	}
	return out
}

// TableSize returns the number of matches stored at the given node.
func (t *Tree) TableSize(nodeID int) int {
	n := 0
	for _, bucket := range t.Nodes[nodeID].table {
		n += len(bucket)
	}
	return n
}

// String renders a compact structural description of the tree.
func (t *Tree) String() string {
	s := fmt.Sprintf("sjtree{leaves=%d", len(t.Leaves))
	for i, id := range t.Leaves {
		s += fmt.Sprintf(" L%d=%v", i, t.Nodes[id].QEdges)
	}
	return s + "}"
}
