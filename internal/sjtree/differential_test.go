package sjtree

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"streamgraph/internal/graph"
	"streamgraph/internal/iso"
	"streamgraph/internal/query"
)

// refTree is a reference implementation of UPDATE-SJ-TREE (Algorithm 2)
// with byte-exact string join keys and signatures — the pre-hashing
// layout. The differential tests drive it in lockstep with the hashed
// Tree to prove the 64-bit keys plus probe-time equality checks change
// nothing observable, even when every key is forced to collide.
type refTree struct {
	t      *Tree // structure only (nodes, cuts, leaves)
	window int64
	dedup  bool
	tables []map[string][]iso.Match
	seen   []map[string]bool
	stored int
}

func newRefTree(q *query.Graph, leaves [][]int, window int64, dedup bool) (*refTree, error) {
	t, err := Build(q, leaves, window)
	if err != nil {
		return nil, err
	}
	r := &refTree{t: t, window: window, dedup: dedup}
	r.tables = make([]map[string][]iso.Match, len(t.Nodes))
	r.seen = make([]map[string]bool, len(t.Nodes))
	for i := range r.tables {
		r.tables[i] = make(map[string][]iso.Match)
		r.seen[i] = make(map[string]bool)
	}
	return r, nil
}

func refKey(cut []int, m iso.Match) string {
	buf := make([]byte, 4*len(cut))
	for i, qv := range cut {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(m.VertexOf[qv]))
	}
	return string(buf)
}

func refSig(node *Node, m iso.Match) string {
	buf := make([]byte, 0, 4*len(node.QEdges)+8)
	for _, qe := range node.QEdges {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(m.EdgeOf[qe]))
		buf = append(buf, b[:]...)
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(m.MinTS))
	buf = append(buf, b[:]...)
	return string(buf)
}

func (r *refTree) insert(leafPos int, m iso.Match, emit func(iso.Match)) {
	r.update(r.t.Nodes[r.t.Leaves[leafPos]], m, emit)
}

func (r *refTree) update(node *Node, m iso.Match, emit func(iso.Match)) {
	if node.ID == r.t.Root {
		if emit != nil {
			emit(m)
		}
		return
	}
	parent := r.t.Nodes[node.Parent]
	sibling := r.t.Nodes[node.Sibling]
	k := refKey(parent.Cut, m)
	if r.dedup && r.seen[node.ID][refSig(node, m)] {
		return
	}
	for _, ms := range r.tables[sibling.ID][k] {
		if sup, ok := r.join(m, ms); ok {
			r.update(parent, sup, emit)
		}
	}
	r.tables[node.ID][k] = append(r.tables[node.ID][k], m)
	if r.dedup {
		r.seen[node.ID][refSig(node, m)] = true
	}
	r.stored++
}

// join mirrors Definition 3.1.3 with the original clone-then-check
// shape.
func (r *refTree) join(a, b iso.Match) (iso.Match, bool) {
	if r.window > 0 {
		lo, hi := a.MinTS, a.MaxTS
		if b.MinTS < lo {
			lo = b.MinTS
		}
		if b.MaxTS > hi {
			hi = b.MaxTS
		}
		if hi-lo >= r.window {
			return iso.Match{}, false
		}
	}
	out := a.Clone()
	for qv, dv := range b.VertexOf {
		if dv == graph.NoVertex {
			continue
		}
		if cur := out.VertexOf[qv]; cur != graph.NoVertex {
			if cur != dv {
				return iso.Match{}, false
			}
			continue
		}
		for qv2, dv2 := range out.VertexOf {
			if dv2 == dv && qv2 != qv {
				return iso.Match{}, false
			}
		}
		out.VertexOf[qv] = dv
	}
	for qe, de := range b.EdgeOf {
		if de == iso.NoEdge {
			continue
		}
		if out.EdgeOf[qe] != iso.NoEdge {
			return iso.Match{}, false
		}
		for _, de2 := range out.EdgeOf {
			if de2 == de {
				return iso.Match{}, false
			}
		}
		out.EdgeOf[qe] = de
	}
	if b.MinTS < out.MinTS {
		out.MinTS = b.MinTS
	}
	if b.MaxTS > out.MaxTS {
		out.MaxTS = b.MaxTS
	}
	return out, true
}

func (r *refTree) expireBefore(cutoff int64) int {
	evicted := 0
	for id := range r.tables {
		for k, bucket := range r.tables[id] {
			kept := bucket[:0]
			for _, m := range bucket {
				if m.MinTS < cutoff {
					evicted++
					continue
				}
				kept = append(kept, m)
			}
			if len(kept) == 0 {
				delete(r.tables[id], k)
			} else {
				r.tables[id][k] = kept
			}
		}
		node := r.t.Nodes[id]
		for sig := range r.seen[id] {
			// Reconstruct MinTS from the signature suffix.
			ts := int64(binary.LittleEndian.Uint64([]byte(sig[len(sig)-8:])))
			_ = node
			if ts < cutoff {
				delete(r.seen[id], sig)
			}
		}
	}
	r.stored -= evicted
	return evicted
}

// matchString canonicalizes a match for cross-implementation
// comparison.
func matchString(m iso.Match) string {
	return fmt.Sprintf("v=%v e=%v ts=[%d,%d]", m.VertexOf, m.EdgeOf, m.MinTS, m.MaxTS)
}

// runDifferential drives the hashed tree (optionally with forced hash
// collisions) and the string-key reference through an identical insert
// and expiry schedule, comparing emitted matches (order included) and
// stored counts after every step.
func runDifferential(t *testing.T, seed int64, leaves [][]int, dedup, collide bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	q := query.NewPath(query.Wildcard, "a", "b", "c")
	const window = 200

	tr, err := Build(q, leaves, window)
	if err != nil {
		t.Fatal(err)
	}
	tr.Dedup = dedup
	tr.collide = collide
	ref, err := newRefTree(q, leaves, window, dedup)
	if err != nil {
		t.Fatal(err)
	}

	var got, want []string
	emitGot := func(m iso.Match) { got = append(got, matchString(m)) }
	emitWant := func(m iso.Match) { want = append(want, matchString(m)) }

	type histItem struct {
		leaf int
		m    iso.Match
	}
	var history []histItem
	nextEdge := graph.EdgeID(100)
	for step := 0; step < 400; step++ {
		if rng.Intn(12) == 0 {
			cutoff := int64(rng.Intn(600))
			ev1 := tr.ExpireBefore(cutoff)
			ev2 := ref.expireBefore(cutoff)
			if ev1 != ev2 {
				t.Fatalf("seed %d step %d: ExpireBefore(%d) evicted %d, reference %d", seed, step, cutoff, ev1, ev2)
			}
			continue
		}
		var leaf int
		var m iso.Match
		if dedup && len(history) > 0 && rng.Intn(5) == 0 {
			// Replay an earlier leaf match verbatim: Lazy Search's
			// retrospective repair rediscovers stored matches, and the
			// replay must be a complete no-op on both implementations.
			h := history[rng.Intn(len(history))]
			leaf, m = h.leaf, h.m.Clone()
		} else {
			leaf = rng.Intn(len(leaves))
			m = iso.NewMatch(q)
			for _, qe := range leaves[leaf] {
				m.EdgeOf[qe] = nextEdge
				nextEdge++
				s := graph.VertexID(rng.Intn(6))
				d := graph.VertexID(rng.Intn(6) + 6)
				m.VertexOf[q.Edges[qe].Src] = s
				m.VertexOf[q.Edges[qe].Dst] = d
				ts := int64(rng.Intn(500))
				if ts < m.MinTS {
					m.MinTS = ts
				}
				if ts > m.MaxTS {
					m.MaxTS = ts
				}
			}
			history = append(history, histItem{leaf: leaf, m: m.Clone()})
		}
		got, want = got[:0], want[:0]
		tr.Insert(leaf, m.Clone(), emitGot, nil)
		ref.insert(leaf, m, emitWant)
		if len(got) != len(want) {
			t.Fatalf("seed %d step %d: emitted %d matches, reference %d", seed, step, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d step %d: match %d = %s, reference %s", seed, step, i, got[i], want[i])
			}
		}
		if int(tr.Stats().Stored) != ref.stored {
			t.Fatalf("seed %d step %d: stored %d, reference %d", seed, step, tr.Stats().Stored, ref.stored)
		}
	}
}

// TestDifferentialHashedVsStringKeys drives randomized streams through
// both implementations across decompositions and dedup modes.
func TestDifferentialHashedVsStringKeys(t *testing.T) {
	for _, leaves := range [][][]int{{{0}, {1}, {2}}, {{0, 1}, {2}}} {
		for _, dedup := range []bool{false, true} {
			for seed := int64(1); seed <= 8; seed++ {
				runDifferential(t, seed, leaves, dedup, false)
			}
		}
	}
}

// TestDifferentialForcedCollisions reruns the differential net with the
// hash hook forcing every cut key and dedup signature onto a single
// value: the probe-time cut-equality and signature-equality checks must
// keep results byte-identical to the string-key reference.
func TestDifferentialForcedCollisions(t *testing.T) {
	for _, leaves := range [][][]int{{{0}, {1}, {2}}, {{0, 1}, {2}}} {
		for _, dedup := range []bool{false, true} {
			for seed := int64(1); seed <= 8; seed++ {
				runDifferential(t, seed, leaves, dedup, true)
			}
		}
	}
}

// TestDifferentialFixedScript pins a deterministic scripted sequence —
// join cascade, duplicate suppression, window rejection, expiry — on
// both implementations, with and without forced collisions.
func TestDifferentialFixedScript(t *testing.T) {
	for _, collide := range []bool{false, true} {
		q := query.NewPath(query.Wildcard, "a", "b", "c")
		leaves := [][]int{{0}, {1}, {2}}
		tr, err := Build(q, leaves, 100)
		if err != nil {
			t.Fatal(err)
		}
		tr.Dedup = true
		tr.collide = collide
		ref, err := newRefTree(q, leaves, 100, true)
		if err != nil {
			t.Fatal(err)
		}
		script := []struct {
			leaf int
			e    graph.EdgeID
			s, d graph.VertexID
			ts   int64
		}{
			{0, 100, 1, 2, 10},
			{1, 101, 2, 3, 20},
			{2, 102, 3, 4, 30},  // completes 100-101-102
			{1, 101, 2, 3, 20},  // duplicate: must be a no-op
			{2, 103, 3, 5, 200}, // window-rejected against the 10..20 partial
			{0, 104, 7, 2, 95},  // same cut vertex 2: joins 101
		}
		for i, s := range script {
			m := iso.NewMatch(q)
			qe := leaves[s.leaf][0]
			m.EdgeOf[qe] = s.e
			m.VertexOf[q.Edges[qe].Src] = s.s
			m.VertexOf[q.Edges[qe].Dst] = s.d
			m.MinTS, m.MaxTS = s.ts, s.ts
			var got, want []string
			tr.Insert(s.leaf, m.Clone(), func(cm iso.Match) { got = append(got, matchString(cm)) }, nil)
			ref.insert(s.leaf, m, func(cm iso.Match) { want = append(want, matchString(cm)) })
			if len(got) != len(want) {
				t.Fatalf("collide=%v step %d: emitted %d, reference %d", collide, i, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("collide=%v step %d: %s != %s", collide, i, got[j], want[j])
				}
			}
		}
		if ev1, ev2 := tr.ExpireBefore(96), ref.expireBefore(96); ev1 != ev2 {
			t.Fatalf("collide=%v: evicted %d, reference %d", collide, ev1, ev2)
		}
		if int(tr.Stats().Stored) != ref.stored {
			t.Fatalf("collide=%v: stored %d, reference %d", collide, tr.Stats().Stored, ref.stored)
		}
	}
}
