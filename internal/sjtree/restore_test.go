package sjtree

import (
	"strings"
	"testing"

	"streamgraph/internal/graph"
	"streamgraph/internal/iso"
	"streamgraph/internal/query"
)

func restoreTestTree(t *testing.T, window int64) (*Tree, *query.Graph) {
	t.Helper()
	q, err := query.Parse("e a b x\ne b c y\ne c d z")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(q, [][]int{{0}, {1}, {2}}, window)
	if err != nil {
		t.Fatal(err)
	}
	return tree, q
}

func leafMatch(q *query.Graph, qe int, src, dst graph.VertexID, de graph.EdgeID, ts int64) iso.Match {
	m := iso.NewMatch(q)
	m.VertexOf[q.Edges[qe].Src] = src
	m.VertexOf[q.Edges[qe].Dst] = dst
	m.EdgeOf[qe] = de
	m.MinTS, m.MaxTS = ts, ts
	return m
}

func TestRestoreStoredRejoinsLater(t *testing.T) {
	tree, q := restoreTestTree(t, 0)
	// Restore a leaf-0 match as a snapshot-load would, without probing.
	m0 := leafMatch(q, 0, 1, 2, 10, 100)
	if err := tree.RestoreStored(tree.Leaves[0], m0); err != nil {
		t.Fatal(err)
	}
	if got := tree.Stats().Stored; got != 1 {
		t.Fatalf("Stored = %d, want 1", got)
	}
	if tree.Stats().JoinsAttempted != 0 {
		t.Fatal("RestoreStored must not probe the sibling")
	}
	// A live insert at leaf 1 must join with the restored match, cascade
	// to the internal node, and a final leaf-2 insert completes.
	var complete []iso.Match
	emit := func(m iso.Match) { complete = append(complete, m) }
	m1 := leafMatch(q, 1, 2, 3, 11, 101)
	tree.Insert(1, m1, emit, nil)
	if len(complete) != 0 {
		t.Fatalf("premature completion: %v", complete)
	}
	m2 := leafMatch(q, 2, 3, 4, 12, 102)
	tree.Insert(2, m2, emit, nil)
	if len(complete) != 1 {
		t.Fatalf("got %d complete matches, want 1", len(complete))
	}
	got := complete[0]
	if got.MinTS != 100 || got.MaxTS != 102 {
		t.Fatalf("τ(g) = [%d,%d], want [100,102]", got.MinTS, got.MaxTS)
	}
}

func TestRestoreStoredErrors(t *testing.T) {
	tree, q := restoreTestTree(t, 0)
	m := leafMatch(q, 0, 1, 2, 10, 100)
	if err := tree.RestoreStored(-1, m); err == nil {
		t.Error("negative node accepted")
	}
	if err := tree.RestoreStored(len(tree.Nodes), m); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := tree.RestoreStored(tree.Root, m); err == nil {
		t.Error("root accepted")
	}
}

func TestRestoreStoredDedupBlocksRediscovery(t *testing.T) {
	tree, q := restoreTestTree(t, 0)
	tree.Dedup = true
	m0 := leafMatch(q, 0, 1, 2, 10, 100)
	if err := tree.RestoreStored(tree.Leaves[0], m0); err != nil {
		t.Fatal(err)
	}
	// The same embedding re-inserted through the live path must be a
	// complete no-op. (Cloned: Insert takes ownership and may recycle a
	// suppressed match's arrays, so passing the stored m0 itself would
	// violate its contract.)
	n := tree.Insert(0, m0.Clone(), nil, nil)
	if n != 0 {
		t.Fatalf("duplicate produced %d completions", n)
	}
	if tree.Stats().Deduped != 1 {
		t.Fatalf("Deduped = %d, want 1", tree.Stats().Deduped)
	}
	if tree.Stats().Stored != 1 {
		t.Fatalf("Stored = %d, want 1", tree.Stats().Stored)
	}
}

func TestEachStoredAndLeafSets(t *testing.T) {
	tree, q := restoreTestTree(t, 0)
	tree.Insert(0, leafMatch(q, 0, 1, 2, 10, 100), nil, nil)
	tree.Insert(1, leafMatch(q, 1, 2, 3, 11, 101), nil, nil)

	count := 0
	tree.EachStored(func(n *Node, m iso.Match) bool {
		count++
		return true
	})
	// Leaf 0, leaf 1, and their join at the internal node.
	if count != 3 {
		t.Fatalf("EachStored visited %d matches, want 3", count)
	}
	// Early termination.
	count = 0
	tree.EachStored(func(n *Node, m iso.Match) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d, want 1", count)
	}

	sets := tree.LeafSets()
	if len(sets) != 3 {
		t.Fatalf("LeafSets = %v", sets)
	}
	for i, want := range [][]int{{0}, {1}, {2}} {
		if len(sets[i]) != 1 || sets[i][0] != want[0] {
			t.Fatalf("LeafSets[%d] = %v, want %v", i, sets[i], want)
		}
	}
	if got := tree.LeafEdges(1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("LeafEdges(1) = %v", got)
	}
	if s := tree.String(); !strings.Contains(s, "leaves=3") {
		t.Fatalf("String = %q", s)
	}
}

func TestTableSizeTracksBuckets(t *testing.T) {
	tree, q := restoreTestTree(t, 0)
	leaf0 := tree.Leaves[0]
	if got := tree.TableSize(leaf0); got != 0 {
		t.Fatalf("empty TableSize = %d", got)
	}
	tree.Insert(0, leafMatch(q, 0, 1, 2, 10, 100), nil, nil)
	tree.Insert(0, leafMatch(q, 0, 5, 6, 11, 101), nil, nil)
	if got := tree.TableSize(leaf0); got != 2 {
		t.Fatalf("TableSize = %d, want 2", got)
	}
}

func TestWorkBudgetSheds(t *testing.T) {
	tree, q := restoreTestTree(t, 0)
	tree.Budget = &WorkBudget{Remaining: 1}
	// First insert consumes the budget; second is shed entirely.
	tree.Insert(0, leafMatch(q, 0, 1, 2, 10, 100), nil, nil)
	tree.Insert(0, leafMatch(q, 0, 5, 6, 11, 101), nil, nil)
	if tree.Stats().Shed == 0 {
		t.Fatal("expected shed work under an exhausted budget")
	}
	if tree.Stats().Stored != 1 {
		t.Fatalf("Stored = %d, want 1 (second insert shed)", tree.Stats().Stored)
	}
}
