package sjtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"streamgraph/internal/graph"
	"streamgraph/internal/iso"
	"streamgraph/internal/query"
)

// TestQuickBuildInvariants: for random path queries and random valid
// leaf partitions, the built tree satisfies the SJ-Tree properties:
// the root covers the whole query (Property 1), every internal node is
// the union of its children (Property 2), the cut is the intersection
// of the children's vertex sets (Property 4), and the tree is
// left-deep with the expected node count.
func TestQuickBuildInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		types := make([]string, n)
		for i := range types {
			types[i] = "t"
		}
		q := query.NewPath(query.Wildcard, types...)

		// Random partition of edges into contiguous leaves of size 1-2.
		var leaves [][]int
		i := 0
		for i < n {
			if i+1 < n && rng.Intn(2) == 0 {
				leaves = append(leaves, []int{i, i + 1})
				i += 2
			} else {
				leaves = append(leaves, []int{i})
				i++
			}
		}
		tr, err := Build(q, leaves, 0)
		if err != nil {
			return false
		}
		if len(tr.Nodes) != 2*len(leaves)-1 {
			return false
		}
		root := tr.Nodes[tr.Root]
		if len(root.QEdges) != n {
			return false // Property 1
		}
		for _, nd := range tr.Nodes {
			if nd.IsLeaf {
				continue
			}
			l, r := tr.Nodes[nd.Left], tr.Nodes[nd.Right]
			if len(nd.QEdges) != len(l.QEdges)+len(r.QEdges) {
				return false // Property 2
			}
			cut := intersectSorted(l.QVerts, r.QVerts)
			if len(cut) != len(nd.Cut) {
				return false // Property 4
			}
			for i := range cut {
				if cut[i] != nd.Cut[i] {
					return false
				}
			}
			// Left-deep: the right child is always a leaf.
			if !r.IsLeaf {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInsertEmitsEachCombinationOnce: feeding random leaf matches
// into a 2-leaf tree emits exactly the joinable (left, right) pairs,
// each once, regardless of insertion order.
func TestQuickInsertEmitsEachCombinationOnce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := query.NewPath(query.Wildcard, "a", "b") // v0 -a-> v1 -b-> v2
		tr, err := Build(q, [][]int{{0}, {1}}, 0)
		if err != nil {
			return false
		}
		type lm struct {
			leaf int
			m    iso.Match
		}
		var inserts []lm
		nextEdge := graph.EdgeID(100)
		// Random leaf matches over a small vertex universe.
		for i := 0; i < 14; i++ {
			leaf := rng.Intn(2)
			m := iso.NewMatch(q)
			s := graph.VertexID(rng.Intn(5))
			d := graph.VertexID(rng.Intn(5))
			if s == d {
				continue
			}
			if leaf == 0 {
				m.VertexOf[0], m.VertexOf[1] = s, d
				m.EdgeOf[0] = nextEdge
			} else {
				m.VertexOf[1], m.VertexOf[2] = s, d
				m.EdgeOf[1] = nextEdge
			}
			m.MinTS, m.MaxTS = int64(i), int64(i)
			nextEdge++
			inserts = append(inserts, lm{leaf, m})
		}
		// Expected pairs: left (v0->v1) and right (v1'->v2) join iff
		// v1 == v1' and v0, v2 distinct from each other and the shared
		// vertex.
		expected := 0
		for _, a := range inserts {
			if a.leaf != 0 {
				continue
			}
			for _, b := range inserts {
				if b.leaf != 1 {
					continue
				}
				if a.m.VertexOf[1] != b.m.VertexOf[1] {
					continue
				}
				if a.m.VertexOf[0] == b.m.VertexOf[2] {
					continue // injectivity
				}
				expected++
			}
		}
		emitted := 0
		rng.Shuffle(len(inserts), func(i, j int) { inserts[i], inserts[j] = inserts[j], inserts[i] })
		for _, in := range inserts {
			tr.Insert(in.leaf, in.m, func(iso.Match) { emitted++ }, nil)
		}
		return emitted == expected
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEvictionNeverNegative: random inserts and expirations keep
// the Stored counter consistent with the actual table contents.
func TestQuickEvictionNeverNegative(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := query.NewPath(query.Wildcard, "a", "b", "c")
		tr, err := Build(q, [][]int{{0}, {1}, {2}}, 1000)
		if err != nil {
			return false
		}
		for i := 0; i < 60; i++ {
			leaf := rng.Intn(3)
			m := iso.NewMatch(q)
			qe := leaf
			m.EdgeOf[qe] = graph.EdgeID(1000 + i)
			m.VertexOf[q.Edges[qe].Src] = graph.VertexID(rng.Intn(8))
			m.VertexOf[q.Edges[qe].Dst] = graph.VertexID(rng.Intn(8) + 8)
			ts := int64(rng.Intn(500))
			m.MinTS, m.MaxTS = ts, ts
			tr.Insert(leaf, m, nil, nil)
			if rng.Intn(10) == 0 {
				tr.ExpireBefore(int64(rng.Intn(500)))
			}
		}
		tr.ExpireBefore(10000)
		if tr.StoredMatches() != 0 {
			return false
		}
		actual := 0
		for _, n := range tr.Nodes {
			actual += tr.TableSize(n.ID)
		}
		return actual == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
