package sjtree

import (
	"testing"

	"streamgraph/internal/graph"
	"streamgraph/internal/iso"
	"streamgraph/internal/query"
)

// TestInsertHotPathAllocationFree pins the steady-state allocation
// count of Tree.Insert at zero: once a bucket exists, storing a match
// must not touch the heap (hashed keys replaced the per-insert string
// materialization; the PR 2 baseline was 2 allocs/op here, 4 with
// Dedup). Amortized slice growth rounds to zero over the run.
func TestInsertHotPathAllocationFree(t *testing.T) {
	for _, dedup := range []struct {
		name string
		on   bool
	}{{"dedup=off", false}, {"dedup=on", true}} {
		t.Run(dedup.name, func(t *testing.T) {
			q := query.NewPath(query.Wildcard, "a", "b")
			tr, err := Build(q, [][]int{{0}, {1}}, 1<<40)
			if err != nil {
				t.Fatal(err)
			}
			tr.Dedup = dedup.on
			const runs = 2000
			ms := make([]iso.Match, 0, runs+8)
			for i := 0; i < runs+8; i++ {
				// One shared cut vertex (1): a single hot bucket, every
				// match distinct (fresh edge + timestamp).
				ms = append(ms, benchLeafMatch(q, 0, graph.EdgeID(i), 1, 2, int64(i)))
			}
			i := 0
			avg := testing.AllocsPerRun(runs, func() {
				tr.Insert(0, ms[i], nil, nil)
				i++
			})
			if avg != 0 {
				t.Errorf("Tree.Insert allocates %.2f allocs/op on the hot path, want 0", avg)
			}
		})
	}
}

// TestJoinPathReusesPooledMatches pins that a steady-state
// join-and-store cycle with window expiry running reuses evicted match
// arrays: the only per-iteration allocations are bucket slices for
// buckets that expiry fully drained (at most 3 of the 4 appends per
// iteration). The PR 2 baseline paid 2 allocs per join output alone,
// plus join keys.
func TestJoinPathReusesPooledMatches(t *testing.T) {
	q := query.NewPath(query.Wildcard, "a", "b", "c")
	tr, err := Build(q, [][]int{{0}, {1}, {2}}, 64)
	if err != nil {
		t.Fatal(err)
	}
	const runs = 1000
	const total = runs + 208
	left := make([]iso.Match, total)
	right := make([]iso.Match, total)
	for i := 0; i < total; i++ {
		cut := graph.VertexID(2)
		left[i] = benchLeafMatch(q, 0, graph.EdgeID(4*i), 1, cut, int64(i))
		right[i] = benchLeafMatch(q, 1, graph.EdgeID(4*i+1), cut, 3, int64(i))
	}
	// Leaf 0 stores; leaf 1 joins it at the internal node; expiry keeps
	// a sliding window of stored matches and feeds the pool.
	step := func(i int) {
		tr.Insert(0, left[i], nil, nil)
		tr.Insert(1, right[i], nil, nil)
		tr.ExpireBefore(int64(i) - 64)
	}
	for i := 0; i < 200; i++ {
		step(i)
	}
	i := 200
	avg := testing.AllocsPerRun(runs, func() {
		step(i)
		i++
	})
	if avg != 0 {
		t.Errorf("join+store+expire cycle allocates %.2f allocs/op, want 0", avg)
	}
}

// TestExpireBeforeIsIncremental pins the O(expired) contract: a pass
// that expires nothing must not scan any stored match, and a pass that
// expires k matches held in singleton buckets scans exactly k.
func TestExpireBeforeIsIncremental(t *testing.T) {
	q := query.NewPath(query.Wildcard, "a", "b")
	tr, err := Build(q, [][]int{{0}, {1}}, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		// Distinct cut vertices: one singleton bucket per match.
		tr.Insert(0, benchLeafMatch(q, 0, graph.EdgeID(i), graph.VertexID(2*i), graph.VertexID(2*i+1), 1000+int64(i)), nil, nil)
	}
	if got := tr.Stats().ExpireScanned; got != 0 {
		t.Fatalf("ExpireScanned = %d before any expiry", got)
	}
	// No-expiry pass: nothing may be scanned.
	if ev := tr.ExpireBefore(1000); ev != 0 {
		t.Fatalf("ExpireBefore(1000) evicted %d, want 0", ev)
	}
	if got := tr.Stats().ExpireScanned; got != 0 {
		t.Fatalf("no-expiry pass scanned %d stored matches, want 0", got)
	}
	// Expire the oldest 100: exactly those may be scanned.
	ev := tr.ExpireBefore(1100)
	if ev != 100 {
		t.Fatalf("ExpireBefore(1100) evicted %d, want 100", ev)
	}
	if got := tr.Stats().ExpireScanned; got != 100 {
		t.Fatalf("expiry scanned %d stored matches, want exactly the 100 expired", got)
	}
	if got := tr.StoredMatches(); got != n-100 {
		t.Fatalf("stored = %d, want %d", got, n-100)
	}
}
