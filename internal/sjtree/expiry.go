// Incremental window expiry for the SJ-Tree match tables.
//
// Every stored partial match is indexed by an (MinTS, bucket-key) entry
// in a per-node binary min-heap ordered by MinTS. ExpireBefore pops
// entries older than the cutoff and sweeps only the buckets they name,
// so an eviction pass costs O(expired · log stored) plus the size of
// the touched buckets — and a pass that expires nothing is a single
// heap-top comparison per node, never a table scan. The previous
// implementation rescanned every stored match on every pass
// (O(stored)), which dominated eviction cost at high edge rates.
package sjtree

import "slices"

// expEntry indexes one stored match for incremental expiry: the match's
// MinTS and the hashed cut key of the bucket holding it.
type expEntry struct {
	ts  int64
	key uint64
}

// heapPush adds e to the min-heap in *h.
func heapPush(h *[]expEntry, e expEntry) {
	s := append(*h, e)
	*h = s
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].ts <= s[i].ts {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

// heapPop removes and returns the minimum entry. The heap must be
// non-empty.
func heapPop(h *[]expEntry) expEntry {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s[l].ts < s[min].ts {
			min = l
		}
		if r < n && s[r].ts < s[min].ts {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// expireNode evicts every stored match at n with MinTS < cutoff,
// returning the number removed. It pops all expired index entries,
// then sweeps each distinct named bucket exactly once, preserving the
// relative order of surviving matches (join probes iterate buckets in
// insertion order, so order changes would perturb emit order).
func (t *Tree) expireNode(n *Node, cutoff int64) int {
	if len(n.exp) == 0 || n.exp[0].ts >= cutoff {
		return 0
	}
	keys := t.scratchKeys[:0]
	for len(n.exp) > 0 && n.exp[0].ts < cutoff {
		keys = append(keys, heapPop(&n.exp).key)
	}
	slices.Sort(keys)
	removed := 0
	for i, k := range keys {
		if i > 0 && k == keys[i-1] {
			continue // bucket already swept this pass
		}
		bucket, ok := n.table[k]
		if !ok {
			continue
		}
		kept := bucket[:0]
		for _, m := range bucket {
			t.stats.ExpireScanned++
			if m.MinTS < cutoff {
				removed++
				// Unindex before recycling: the seen entry aliases the
				// match's backing arrays.
				if t.Dedup && n.seen != nil {
					removeSeen(n, t.sigHash(n, m), m)
				}
				// Stored matches are exclusively owned by the table
				// (Insert transfers ownership), so their backing arrays
				// are safe to recycle.
				t.pool.Put(m)
				continue
			}
			kept = append(kept, m)
		}
		if len(kept) == 0 {
			delete(n.table, k)
		} else {
			n.table[k] = kept
		}
	}
	t.scratchKeys = keys[:0]
	return removed
}
