package sjtree

import (
	"testing"

	"streamgraph/internal/graph"
	"streamgraph/internal/iso"
	"streamgraph/internal/query"
)

// benchLeafMatch builds a leaf match for the 2-hop path query binding
// query edge qe to data edge e with the given endpoint vertices.
func benchLeafMatch(q *query.Graph, qe int, e graph.EdgeID, s, d graph.VertexID, ts int64) iso.Match {
	m := iso.NewMatch(q)
	m.EdgeOf[qe] = e
	m.VertexOf[q.Edges[qe].Src] = s
	m.VertexOf[q.Edges[qe].Dst] = d
	m.MinTS, m.MaxTS = ts, ts
	return m
}

// BenchmarkTreeInsertStore measures the pure store path of Algorithm 2:
// every insert keys a match table bucket and stores, with no sibling
// matches to probe (the sibling table is empty). This is the per-edge
// floor every leaf match pays.
func BenchmarkTreeInsertStore(b *testing.B) {
	for _, dedup := range []struct {
		name string
		on   bool
	}{{"dedup=off", false}, {"dedup=on", true}} {
		b.Run(dedup.name, func(b *testing.B) {
			q := query.NewPath(query.Wildcard, "a", "b")
			tr, err := Build(q, [][]int{{0}, {1}}, 1<<40)
			if err != nil {
				b.Fatal(err)
			}
			tr.Dedup = dedup.on
			ms := make([]iso.Match, b.N)
			for i := range ms {
				// Distinct cut bindings (vertex v1) spread inserts over
				// many buckets; distinct edges make every match unique.
				ms[i] = benchLeafMatch(q, 0, graph.EdgeID(i), graph.VertexID(2*i), graph.VertexID(2*i+1), int64(i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Insert(0, ms[i], nil, nil)
			}
		})
	}
}

// BenchmarkTreeInsertHotBucket measures repeated inserts that share one
// cut binding: the bucket and every auxiliary structure already exist,
// so steady state should not allocate at all.
func BenchmarkTreeInsertHotBucket(b *testing.B) {
	q := query.NewPath(query.Wildcard, "a", "b")
	tr, err := Build(q, [][]int{{0}, {1}}, 1<<40)
	if err != nil {
		b.Fatal(err)
	}
	ms := make([]iso.Match, b.N)
	for i := range ms {
		ms[i] = benchLeafMatch(q, 0, graph.EdgeID(i), 1, 2, int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(0, ms[i], nil, nil)
	}
}

// BenchmarkTreeInsertJoin measures the probe-and-join path: each insert
// finds one sibling match on the shared cut vertex, joins, and emits at
// the root.
func BenchmarkTreeInsertJoin(b *testing.B) {
	q := query.NewPath(query.Wildcard, "a", "b")
	tr, err := Build(q, [][]int{{0}, {1}}, 1<<40)
	if err != nil {
		b.Fatal(err)
	}
	ms := make([]iso.Match, b.N)
	for i := range ms {
		cut := graph.VertexID(3 * i)
		// One stored sibling (leaf 1) per cut vertex; every timed insert
		// at leaf 0 joins with exactly one of them.
		tr.Insert(1, benchLeafMatch(q, 1, graph.EdgeID(2*i), cut, graph.VertexID(3*i+1), int64(i)), nil, nil)
		ms[i] = benchLeafMatch(q, 0, graph.EdgeID(2*i+1), graph.VertexID(3*i+2), cut, int64(i))
	}
	emitted := 0
	emit := func(iso.Match) { emitted++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(0, ms[i], emit, nil)
	}
	b.StopTimer()
	if emitted != b.N {
		b.Fatalf("emitted %d of %d expected joins", emitted, b.N)
	}
}

// BenchmarkExpireNoOp measures ExpireBefore when nothing is expired —
// the common steady-state eviction tick, which must not rescan the
// stored matches.
func BenchmarkExpireNoOp(b *testing.B) {
	q := query.NewPath(query.Wildcard, "a", "b")
	tr, err := Build(q, [][]int{{0}, {1}}, 1<<40)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		tr.Insert(0, benchLeafMatch(q, 0, graph.EdgeID(i), graph.VertexID(2*i), graph.VertexID(2*i+1), 100+int64(i)), nil, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr.ExpireBefore(50) != 0 {
			b.Fatal("unexpected eviction")
		}
	}
}
