package sjtree

import (
	"testing"

	"streamgraph/internal/graph"
	"streamgraph/internal/iso"
	"streamgraph/internal/query"
)

// threeHop builds the 3-edge path query t1,t2,t3.
func threeHop() *query.Graph { return query.NewPath(query.Wildcard, "t1", "t2", "t3") }

func TestBuildValidation(t *testing.T) {
	q := threeHop()
	cases := []struct {
		name   string
		leaves [][]int
	}{
		{"empty", nil},
		{"empty leaf", [][]int{{}}},
		{"out of range", [][]int{{0}, {5}}},
		{"duplicate edge", [][]int{{0, 1}, {1, 2}}},
		{"uncovered edge", [][]int{{0}, {1}}},
	}
	for _, tc := range cases {
		if _, err := Build(q, tc.leaves, 0); err == nil {
			t.Errorf("%s: Build accepted invalid leaves %v", tc.name, tc.leaves)
		}
	}
	if _, err := Build(q, [][]int{{0}, {1}, {2}}, 0); err != nil {
		t.Fatalf("valid leaves rejected: %v", err)
	}
}

func TestBuildStructure(t *testing.T) {
	q := threeHop()
	tr, err := Build(q, [][]int{{0}, {1}, {2}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 3 {
		t.Fatalf("NumLeaves = %d", tr.NumLeaves())
	}
	if len(tr.Nodes) != 5 { // 3 leaves + 2 internal
		t.Fatalf("nodes = %d, want 5", len(tr.Nodes))
	}
	root := tr.Nodes[tr.Root]
	if len(root.QEdges) != 3 {
		t.Fatalf("root covers %v", root.QEdges)
	}
	// First internal node joins leaves {0} and {1}; cut is their shared
	// vertex (query vertex 1 on the path).
	leaf0 := tr.LeafNode(0)
	internal := tr.Nodes[leaf0.Parent]
	if len(internal.Cut) != 1 || internal.Cut[0] != 1 {
		t.Fatalf("internal cut = %v, want [1]", internal.Cut)
	}
	// Root joins internal {0,1} with leaf {2}; shared vertex is 2.
	if len(root.Cut) != 1 || root.Cut[0] != 2 {
		t.Fatalf("root cut = %v, want [2]", root.Cut)
	}
	// NextLeaf wiring: leaf0 enables leaf 1; internal (leaves 0-1)
	// enables leaf 2; root enables nothing.
	if leaf0.NextLeaf != 1 {
		t.Errorf("leaf0.NextLeaf = %d, want 1", leaf0.NextLeaf)
	}
	if internal.NextLeaf != 2 {
		t.Errorf("internal.NextLeaf = %d, want 2", internal.NextLeaf)
	}
	if root.NextLeaf != -1 {
		t.Errorf("root.NextLeaf = %d, want -1", root.NextLeaf)
	}
	if tr.LeafNode(1).NextLeaf != -1 {
		t.Errorf("leaf1.NextLeaf = %d, want -1", tr.LeafNode(1).NextLeaf)
	}
}

func TestSingleLeafTree(t *testing.T) {
	q := query.NewPath(query.Wildcard, "t")
	tr, err := Build(q, [][]int{{0}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root != tr.Leaves[0] {
		t.Fatalf("single-leaf tree: root should be the leaf")
	}
	m := iso.NewMatch(q)
	m.VertexOf[0], m.VertexOf[1] = 1, 2
	m.EdgeOf[0] = 10
	m.MinTS, m.MaxTS = 5, 5
	var emitted []iso.Match
	n := tr.Insert(0, m, func(cm iso.Match) { emitted = append(emitted, cm) }, nil)
	if n != 1 || len(emitted) != 1 {
		t.Fatalf("single-leaf insert: complete=%d emitted=%d", n, len(emitted))
	}
	if tr.StoredMatches() != 0 {
		t.Fatalf("complete matches must not be stored, stored=%d", tr.StoredMatches())
	}
}

// mkMatch builds a match binding the given query edges.
func mkMatch(q *query.Graph, bind map[int]struct {
	e    graph.EdgeID
	s, d graph.VertexID
	ts   int64
}) iso.Match {
	m := iso.NewMatch(q)
	for qe, b := range bind {
		m.EdgeOf[qe] = b.e
		m.VertexOf[q.Edges[qe].Src] = b.s
		m.VertexOf[q.Edges[qe].Dst] = b.d
		if b.ts < m.MinTS {
			m.MinTS = b.ts
		}
		if b.ts > m.MaxTS {
			m.MaxTS = b.ts
		}
	}
	return m
}

type binding = struct {
	e    graph.EdgeID
	s, d graph.VertexID
	ts   int64
}

func TestJoinThroughTree(t *testing.T) {
	q := query.NewPath(query.Wildcard, "t1", "t2") // v0 -> v1 -> v2
	tr, err := Build(q, [][]int{{0}, {1}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var emitted []iso.Match
	emit := func(m iso.Match) { emitted = append(emitted, m) }

	// Leaf 0 match: data edge 100 from vertex 10->11 (query v0->v1).
	m0 := mkMatch(q, map[int]binding{0: {e: 100, s: 10, d: 11, ts: 1}})
	tr.Insert(0, m0, emit, nil)
	if len(emitted) != 0 {
		t.Fatalf("premature emit")
	}
	if tr.StoredMatches() != 1 {
		t.Fatalf("stored = %d, want 1", tr.StoredMatches())
	}

	// Leaf 1 match sharing vertex 11: 11->12 → must join and complete.
	m1 := mkMatch(q, map[int]binding{1: {e: 101, s: 11, d: 12, ts: 2}})
	tr.Insert(1, m1, emit, nil)
	if len(emitted) != 1 {
		t.Fatalf("emitted = %d, want 1", len(emitted))
	}
	got := emitted[0]
	if got.EdgeOf[0] != 100 || got.EdgeOf[1] != 101 {
		t.Fatalf("joined match edges = %v", got.EdgeOf)
	}
	if got.VertexOf[0] != 10 || got.VertexOf[1] != 11 || got.VertexOf[2] != 12 {
		t.Fatalf("joined match vertices = %v", got.VertexOf)
	}
	if got.MinTS != 1 || got.MaxTS != 2 {
		t.Fatalf("joined τ(g) = [%d,%d]", got.MinTS, got.MaxTS)
	}

	// A non-sharing leaf-1 match must not join (different cut vertex).
	m2 := mkMatch(q, map[int]binding{1: {e: 102, s: 20, d: 21, ts: 3}})
	tr.Insert(1, m2, emit, nil)
	if len(emitted) != 1 {
		t.Fatalf("non-matching cut joined anyway")
	}
	st := tr.Stats()
	if st.JoinsSucceeded != 1 {
		t.Fatalf("JoinsSucceeded = %d, want 1", st.JoinsSucceeded)
	}
}

func TestJoinInjectivityAcrossSiblings(t *testing.T) {
	// Path v0 -t1-> v1 -t2-> v2: leaf matches 10->11 and 11->10 share
	// the cut vertex 11 but would map v0 and v2 both... no: v0=10,
	// v2=10 — non-injective, must be rejected.
	q := query.NewPath(query.Wildcard, "t1", "t2")
	tr, _ := Build(q, [][]int{{0}, {1}}, 0)
	var emitted []iso.Match
	emit := func(m iso.Match) { emitted = append(emitted, m) }
	tr.Insert(0, mkMatch(q, map[int]binding{0: {e: 100, s: 10, d: 11, ts: 1}}), emit, nil)
	tr.Insert(1, mkMatch(q, map[int]binding{1: {e: 101, s: 11, d: 10, ts: 2}}), emit, nil)
	if len(emitted) != 0 {
		t.Fatalf("non-injective join emitted a match")
	}
}

func TestJoinRejectsSharedDataEdge(t *testing.T) {
	// Two query edges of the same type around a shared vertex; the same
	// data edge may not serve both.
	q := &query.Graph{
		Vertices: []query.Vertex{{Name: "a", Label: "*"}, {Name: "b", Label: "*"}, {Name: "c", Label: "*"}},
		Edges: []query.Edge{
			{Src: 0, Dst: 1, Type: "t"},
			{Src: 1, Dst: 2, Type: "t"},
		},
	}
	tr, _ := Build(q, [][]int{{0}, {1}}, 0)
	var emitted []iso.Match
	emit := func(m iso.Match) { emitted = append(emitted, m) }
	tr.Insert(0, mkMatch(q, map[int]binding{0: {e: 100, s: 10, d: 11, ts: 1}}), emit, nil)
	// Same data edge 100 presented as leaf-1 match, cut vertex must be
	// 11... its src is 11? Edge 100 runs 10->11, as a leaf-1 match it
	// would bind v1=10? Construct the pathological case directly:
	m := mkMatch(q, map[int]binding{1: {e: 100, s: 11, d: 12, ts: 1}})
	tr.Insert(1, m, emit, nil)
	if len(emitted) != 0 {
		t.Fatalf("join reused one data edge for two query edges")
	}
}

func TestWindowRejection(t *testing.T) {
	q := query.NewPath(query.Wildcard, "t1", "t2")
	tr, _ := Build(q, [][]int{{0}, {1}}, 10)
	var emitted []iso.Match
	emit := func(m iso.Match) { emitted = append(emitted, m) }
	tr.Insert(0, mkMatch(q, map[int]binding{0: {e: 100, s: 10, d: 11, ts: 1}}), emit, nil)
	tr.Insert(1, mkMatch(q, map[int]binding{1: {e: 101, s: 11, d: 12, ts: 11}}), emit, nil)
	if len(emitted) != 0 {
		t.Fatalf("span-10 match emitted with window 10 (τ(g) < tW is strict)")
	}
	tr.Insert(1, mkMatch(q, map[int]binding{1: {e: 102, s: 11, d: 13, ts: 10}}), emit, nil)
	if len(emitted) != 1 {
		t.Fatalf("span-9 match not emitted with window 10")
	}
}

func TestExpireBefore(t *testing.T) {
	q := query.NewPath(query.Wildcard, "t1", "t2")
	tr, _ := Build(q, [][]int{{0}, {1}}, 100)
	for i := 0; i < 5; i++ {
		tr.Insert(0, mkMatch(q, map[int]binding{0: {e: graph.EdgeID(100 + i), s: 10, d: 11, ts: int64(i)}}), nil, nil)
	}
	if tr.StoredMatches() != 5 {
		t.Fatalf("stored = %d", tr.StoredMatches())
	}
	if got := tr.ExpireBefore(3); got != 3 {
		t.Fatalf("evicted = %d, want 3", got)
	}
	if tr.StoredMatches() != 2 {
		t.Fatalf("stored after eviction = %d, want 2", tr.StoredMatches())
	}
	st := tr.Stats()
	if st.Evicted != 3 {
		t.Fatalf("Stats.Evicted = %d", st.Evicted)
	}
}

func TestDedup(t *testing.T) {
	q := query.NewPath(query.Wildcard, "t1", "t2")
	tr, _ := Build(q, [][]int{{0}, {1}}, 0)
	tr.Dedup = true
	m := mkMatch(q, map[int]binding{0: {e: 100, s: 10, d: 11, ts: 1}})
	tr.Insert(0, m, nil, nil)
	tr.Insert(0, m.Clone(), nil, nil)
	if tr.StoredMatches() != 1 {
		t.Fatalf("duplicate stored; stored=%d", tr.StoredMatches())
	}
	if tr.Stats().Deduped != 1 {
		t.Fatalf("Deduped = %d, want 1", tr.Stats().Deduped)
	}
	// A different binding is not a duplicate.
	tr.Insert(0, mkMatch(q, map[int]binding{0: {e: 101, s: 10, d: 11, ts: 2}}), nil, nil)
	if tr.StoredMatches() != 2 {
		t.Fatalf("distinct match wrongly deduped")
	}
}

func TestOnStoredHook(t *testing.T) {
	q := threeHop()
	tr, _ := Build(q, [][]int{{0}, {1}, {2}}, 0)
	var storedAt []int
	hook := func(n *Node, m iso.Match) { storedAt = append(storedAt, n.NextLeaf) }
	tr.Insert(0, mkMatch(q, map[int]binding{0: {e: 100, s: 10, d: 11, ts: 1}}), nil, hook)
	if len(storedAt) != 1 || storedAt[0] != 1 {
		t.Fatalf("leaf0 store should enable leaf 1, got %v", storedAt)
	}
	storedAt = nil
	tr.Insert(1, mkMatch(q, map[int]binding{1: {e: 101, s: 11, d: 12, ts: 2}}), nil, hook)
	// Leaf1 stores (NextLeaf -1) and the join stores at the internal
	// node (NextLeaf 2).
	want := map[int]bool{-1: true, 2: true}
	if len(storedAt) != 2 || !want[storedAt[0]] || !want[storedAt[1]] {
		t.Fatalf("storedAt = %v, want one -1 and one 2", storedAt)
	}
}

func TestFourLeafCascade(t *testing.T) {
	// 4-hop path decomposed into four 1-edge leaves; feed matches in
	// order and verify exactly one complete match cascades out.
	q := query.NewPath(query.Wildcard, "a", "b", "c", "d")
	tr, _ := Build(q, [][]int{{0}, {1}, {2}, {3}}, 0)
	var emitted []iso.Match
	emit := func(m iso.Match) { emitted = append(emitted, m) }
	for i := 0; i < 4; i++ {
		tr.Insert(i, mkMatch(q, map[int]binding{
			i: {e: graph.EdgeID(100 + i), s: graph.VertexID(10 + i), d: graph.VertexID(11 + i), ts: int64(i)},
		}), emit, nil)
	}
	if len(emitted) != 1 {
		t.Fatalf("emitted = %d, want 1", len(emitted))
	}
	m := emitted[0]
	for qe := 0; qe < 4; qe++ {
		if m.EdgeOf[qe] != graph.EdgeID(100+qe) {
			t.Fatalf("edge binding %d = %d", qe, m.EdgeOf[qe])
		}
	}
}

func TestArrivalOrderInsensitiveWithRetroactiveInserts(t *testing.T) {
	// Non-lazy processing inserts everything, so leaf matches arriving
	// in reverse order must still produce the complete match.
	q := query.NewPath(query.Wildcard, "a", "b", "c")
	tr, _ := Build(q, [][]int{{0}, {1}, {2}}, 0)
	var emitted []iso.Match
	emit := func(m iso.Match) { emitted = append(emitted, m) }
	tr.Insert(2, mkMatch(q, map[int]binding{2: {e: 102, s: 12, d: 13, ts: 3}}), emit, nil)
	tr.Insert(1, mkMatch(q, map[int]binding{1: {e: 101, s: 11, d: 12, ts: 2}}), emit, nil)
	tr.Insert(0, mkMatch(q, map[int]binding{0: {e: 100, s: 10, d: 11, ts: 1}}), emit, nil)
	if len(emitted) != 1 {
		t.Fatalf("reverse arrival: emitted = %d, want 1", len(emitted))
	}
}
