package selectivity

import (
	"testing"

	"streamgraph/internal/stream"
)

func TestWedgeEstimateExactWhenFullySampled(t *testing.T) {
	// With reservoirs larger than the stream, the wedge estimate is the
	// exact wedge count.
	est := NewTriangleEstimator(1, 1000, 1000)
	// Star: center c with 4 spokes → C(4,2) = 6 wedges.
	for i := 0; i < 4; i++ {
		est.Add(stream.Edge{Src: "c", Dst: vname(i), Type: "t", TS: int64(i)})
	}
	if got := est.WedgeEstimate(); got != 6 {
		t.Fatalf("WedgeEstimate = %v, want 6", got)
	}
	if est.Estimate() != 0 {
		t.Fatalf("no triangles in a star, estimate = %v", est.Estimate())
	}
}

func TestTriangleEstimatorSelfLoopIgnored(t *testing.T) {
	est := NewTriangleEstimator(2, 100, 100)
	est.Add(stream.Edge{Src: "a", Dst: "a", Type: "t", TS: 1})
	if est.WedgeEstimate() != 0 {
		t.Fatalf("self loop contributed wedges")
	}
}

func TestTriangleEstimatorSingleTriangleFullSampling(t *testing.T) {
	est := NewTriangleEstimator(3, 100, 100)
	est.Add(stream.Edge{Src: "a", Dst: "b", Type: "t", TS: 1})
	est.Add(stream.Edge{Src: "b", Dst: "c", Type: "t", TS: 2})
	est.Add(stream.Edge{Src: "c", Dst: "a", Type: "t", TS: 3})
	// Wedges: 3 (one per vertex); exactly one ((a,b),(b,c)) is closed by
	// a later edge. With full sampling the estimate is frac·W = (1/3)·3 = 1.
	got := est.Estimate()
	if got < 0.5 || got > 1.5 {
		t.Fatalf("single-triangle estimate = %v, want ≈1", got)
	}
}
