package selectivity

import (
	"math/rand"
	"testing"

	"streamgraph/internal/graph"
	"streamgraph/internal/query"
	"streamgraph/internal/stream"
)

func skewedCollector() *Collector {
	c := NewCollector()
	ts := int64(0)
	// 50 "common" edges chained, 5 "mid", 1 "rare".
	for i := 0; i < 50; i++ {
		ts++
		c.Add(edge(vname(i%8), vname((i+1)%8), "common", ts))
	}
	for i := 0; i < 5; i++ {
		ts++
		c.Add(edge(vname(i%8), vname((i+3)%8), "mid", ts))
	}
	ts++
	c.Add(edge(vname(0), vname(5), "rare", ts))
	return c
}

func TestLeafFrequency(t *testing.T) {
	c := skewedCollector()
	q := query.NewPath(query.Wildcard, "common", "rare")
	f, err := c.LeafFrequency(q, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if f != 50 {
		t.Fatalf("freq(common) = %v, want 50", f)
	}
	f, err = c.LeafFrequency(q, []int{1})
	if err != nil || f != 1 {
		t.Fatalf("freq(rare) = %v err=%v, want 1", f, err)
	}
}

func TestSpaceEstimateOrdering(t *testing.T) {
	// Theorem 2 analytically: ascending-selectivity leaf order needs
	// less estimated space than descending for the same query.
	c := skewedCollector()
	q := query.NewPath(query.Wildcard, "rare", "mid", "common")
	asc := [][]int{{0}, {1}, {2}}  // rare, mid, common
	desc := [][]int{{2}, {1}, {0}} // common, mid, rare
	sAsc, err := c.SpaceEstimate(q, asc)
	if err != nil {
		t.Fatal(err)
	}
	sDesc, err := c.SpaceEstimate(q, desc)
	if err != nil {
		t.Fatal(err)
	}
	if sAsc >= sDesc {
		t.Fatalf("ascending space %v >= descending %v", sAsc, sDesc)
	}
	if s, _ := c.SpaceEstimate(q, nil); s != 0 {
		t.Errorf("empty decomposition space = %v", s)
	}
}

func TestCostEstimate(t *testing.T) {
	c := skewedCollector()
	q := query.NewPath(query.Wildcard, "rare", "common")
	single, err := c.CostEstimate(q, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if single <= 0 {
		t.Fatalf("cost = %v", single)
	}
	// A 2-edge path leaf costs d̄ per edge instead of 1+1 plus joins;
	// both must be positive and finite.
	path, err := c.CostEstimate(q, [][]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if path <= 0 {
		t.Fatalf("path cost = %v", path)
	}
	// Single-leaf decomposition cost excludes join terms.
	oneLeaf, err := c.CostEstimate(query.NewPath(query.Wildcard, "rare"), [][]int{{0}})
	if err != nil || oneLeaf != 1 {
		t.Fatalf("1-edge leaf cost = %v err=%v, want 1", oneLeaf, err)
	}
}

func TestShouldDecomposeFurther(t *testing.T) {
	c := skewedCollector()
	// A subgraph occurring vastly more often than the whole pattern is
	// worth decomposing; equal frequencies are not.
	if !c.ShouldDecomposeFurther(1e6, 1, 3) {
		t.Errorf("high-frequency sub should trigger decomposition")
	}
	if c.ShouldDecomposeFurther(1, 1, 3) {
		t.Errorf("equal frequency should not trigger decomposition")
	}
}

func TestExactTriangles(t *testing.T) {
	g := graph.New()
	add := func(a, b string) {
		g.AddEdgeNamed(a, "v", b, "v", "t", 1)
	}
	// One triangle a-b-c plus a dangling edge.
	add("a", "b")
	add("b", "c")
	add("c", "a")
	add("c", "d")
	if got := ExactTriangles(g); got != 1 {
		t.Fatalf("triangles = %d, want 1", got)
	}
	// Adding a-d and d-b closes three more: {a,b,d}, {a,c,d}, {b,c,d}.
	add("a", "d")
	add("d", "b")
	if got := ExactTriangles(g); got != 4 {
		t.Fatalf("triangles = %d, want 4", got)
	}
	// Direction and parallel edges do not change the structural count.
	add("b", "a")
	if got := ExactTriangles(g); got != 4 {
		t.Fatalf("parallel edge changed count: %d", got)
	}
}

func TestTriangleEstimatorConverges(t *testing.T) {
	// A random graph with a known (exactly counted) triangle total: the
	// estimator with generous reservoirs should land within 50%.
	// The estimator (like Jha et al.) assumes a simple stream: skip
	// duplicate vertex pairs.
	rng := rand.New(rand.NewSource(5))
	g := graph.New()
	est := NewTriangleEstimator(6, 20000, 20000)
	const nv = 60
	var edges []stream.Edge
	seen := map[[2]int]bool{}
	for i := 0; len(edges) < 1200 && i < 20000; i++ {
		a, b := rng.Intn(nv), rng.Intn(nv)
		if a == b {
			continue
		}
		key := [2]int{min(a, b), max(a, b)}
		if seen[key] {
			continue
		}
		seen[key] = true
		e := edge(vname(a), vname(b), "t", int64(i))
		edges = append(edges, e)
		g.AddEdgeNamed(e.Src, "v", e.Dst, "v", e.Type, e.TS)
	}
	for _, e := range edges {
		est.Add(e)
	}
	exact := float64(dedupTriangles(g))
	got := est.Estimate()
	if exact == 0 {
		t.Skip("no triangles in random graph")
	}
	if got < exact*0.5 || got > exact*1.5 {
		t.Fatalf("estimate %v vs exact %v (outside ±50%%)", got, exact)
	}
}

// dedupTriangles counts structural triangles ignoring parallel edges,
// matching the estimator's undirected simple-graph semantics.
func dedupTriangles(g *graph.Graph) int64 {
	return ExactTriangles(g)
}
