package selectivity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streamgraph/internal/graph"
	"streamgraph/internal/query"
	"streamgraph/internal/stream"
)

func edge(src, dst, etype string, ts int64) stream.Edge {
	return stream.Edge{Src: src, SrcLabel: "ip", Dst: dst, DstLabel: "ip", Type: etype, TS: ts}
}

func TestCounter(t *testing.T) {
	c := make(Counter[string])
	c.Update("a", 2)
	c.Update("a", 3)
	c.Update("b", 1)
	if c.Count("a") != 5 || c.Count("b") != 1 || c.Count("missing") != 0 {
		t.Fatalf("counter reads wrong: %v", c)
	}
	if c.Total() != 6 {
		t.Fatalf("Total = %d, want 6", c.Total())
	}
}

func TestEdgeSelectivity(t *testing.T) {
	c := NewCollector()
	c.Add(edge("a", "b", "tcp", 1))
	c.Add(edge("a", "c", "tcp", 2))
	c.Add(edge("b", "c", "udp", 3))
	c.Add(edge("c", "d", "icmp", 4))
	if got := c.EdgeSelectivity("tcp"); got != 0.5 {
		t.Errorf("S(tcp) = %v, want 0.5", got)
	}
	if got := c.EdgeSelectivity("udp"); got != 0.25 {
		t.Errorf("S(udp) = %v, want 0.25", got)
	}
	if got := c.EdgeSelectivity("never"); got != 0 {
		t.Errorf("S(never) = %v, want 0", got)
	}
	if c.EdgeFrequency("tcp") != 2 {
		t.Errorf("freq(tcp) = %d, want 2", c.EdgeFrequency("tcp"))
	}
}

func TestPathCountsHandExample(t *testing.T) {
	// Star at vertex b: 2 outgoing tcp (b->x, b->y) and 1 incoming udp
	// (a->b). Expected 2-paths centered at b:
	//   tcp(out)-tcp(out): C(2,2) = 1
	//   tcp(out)-udp(in):  2*1    = 2
	// No other center has 2 incident edges.
	c := NewCollector()
	c.Add(edge("b", "x", "tcp", 1))
	c.Add(edge("b", "y", "tcp", 2))
	c.Add(edge("a", "b", "udp", 3))
	if got := c.PathFrequency("tcp", Out, "tcp", Out); got != 1 {
		t.Errorf("tcp(out)-tcp(out) = %d, want 1", got)
	}
	if got := c.PathFrequency("tcp", Out, "udp", In); got != 2 {
		t.Errorf("tcp(out)-udp(in) = %d, want 2", got)
	}
	if got := c.PathFrequency("udp", In, "tcp", Out); got != 2 {
		t.Errorf("key must be symmetric: udp(in)-tcp(out) = %d, want 2", got)
	}
	if c.PathTotal() != 3 {
		t.Errorf("PathTotal = %d, want 3", c.PathTotal())
	}
	if got := c.PathSelectivity("tcp", Out, "tcp", Out); got != 1.0/3 {
		t.Errorf("path selectivity = %v, want 1/3", got)
	}
	if c.UniquePathShapes() != 2 {
		t.Errorf("UniquePathShapes = %d, want 2", c.UniquePathShapes())
	}
}

func TestDirectionDistinguished(t *testing.T) {
	// a->b<-c and a->b->c differ: both tcp, centered at b, but the
	// first is (in,in) and the second (in,out).
	c1 := NewCollector()
	c1.Add(edge("a", "b", "tcp", 1))
	c1.Add(edge("c", "b", "tcp", 2))
	if c1.PathFrequency("tcp", In, "tcp", In) != 1 {
		t.Errorf("converging pair not counted as (in,in)")
	}
	if c1.PathFrequency("tcp", In, "tcp", Out) != 0 {
		t.Errorf("converging pair wrongly counted as (in,out)")
	}

	c2 := NewCollector()
	c2.Add(edge("a", "b", "tcp", 1))
	c2.Add(edge("b", "c", "tcp", 2))
	if c2.PathFrequency("tcp", In, "tcp", Out) != 1 {
		t.Errorf("chain pair not counted as (in,out)")
	}
}

// brute-force 2-edge path count over a stream: for every unordered pair
// of distinct edges sharing a vertex, count once per shared endpoint.
func brutePathTotal(edges []stream.Edge) int64 {
	var total int64
	for i := 0; i < len(edges); i++ {
		for j := i + 1; j < len(edges); j++ {
			a, b := edges[i], edges[j]
			for _, v := range []string{a.Src, a.Dst} {
				// Count each shared endpoint occurrence: parallel edges
				// share both endpoints and center at both.
				n := 0
				if v == b.Src {
					n++
				}
				if v == b.Dst {
					n++
				}
				if a.Src == a.Dst {
					// Self loops not generated in these tests.
					continue
				}
				total += int64(n)
			}
		}
	}
	return total
}

func TestIncrementalMatchesBatchAlgorithm5(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	types := []string{"t1", "t2", "t3", "t4"}
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(6)
		var edges []stream.Edge
		g := graph.New()
		c := NewCollector()
		for i := 0; i < 30; i++ {
			s, d := rng.Intn(n), rng.Intn(n)
			if s == d {
				continue
			}
			e := edge(vname(s), vname(d), types[rng.Intn(len(types))], int64(i))
			edges = append(edges, e)
			c.Add(e)
			g.AddEdgeNamed(e.Src, "ip", e.Dst, "ip", e.Type, e.TS)
		}
		batch, batchTotal := ComputeFromGraph(g)
		if int64(len(batch)) != int64(c.UniquePathShapes()) {
			t.Fatalf("trial %d: unique shapes: batch %d vs incremental %d", trial, len(batch), c.UniquePathShapes())
		}
		if batchTotal != c.PathTotal() {
			t.Fatalf("trial %d: totals: batch %d vs incremental %d", trial, batchTotal, c.PathTotal())
		}
		if want := brutePathTotal(edges); batchTotal != want {
			t.Fatalf("trial %d: batch total %d vs brute force %d", trial, batchTotal, want)
		}
		// Spot-check a few shape counts against the batch counter.
		for k, v := range batch {
			if c.pathCount[k] != v {
				t.Fatalf("trial %d: shape %v: batch %d vs incremental %d", trial, k, v, c.pathCount[k])
			}
		}
	}
}

func vname(i int) string { return string(rune('A' + i)) }

func TestAddRemoveInverse(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		types := []string{"x", "y", "z"}
		c := NewCollector()
		var edges []stream.Edge
		for i := 0; i < 25; i++ {
			s, d := rng.Intn(6), rng.Intn(6)
			if s == d {
				continue
			}
			e := edge(vname(s), vname(d), types[rng.Intn(3)], int64(i))
			edges = append(edges, e)
			c.Add(e)
		}
		// Remove in random order; everything must return to zero.
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		for _, e := range edges {
			c.Remove(e)
		}
		if c.EdgeTotal() != 0 || c.PathTotal() != 0 {
			return false
		}
		for _, v := range c.edgeCount {
			if v != 0 {
				return false
			}
		}
		return len(c.pathCount) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramsSorted(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 5; i++ {
		c.Add(edge("a", vname(i), "tcp", int64(i)))
	}
	c.Add(edge("a", "z", "udp", 99))
	h := c.EdgeHistogram()
	if len(h) != 2 || h[0].Key != "tcp" || h[0].Count != 5 || h[1].Key != "udp" {
		t.Fatalf("EdgeHistogram = %v", h)
	}
	ph := c.PathHistogram()
	if len(ph) == 0 {
		t.Fatalf("PathHistogram empty")
	}
	for i := 1; i < len(ph); i++ {
		if ph[i].Count > ph[i-1].Count {
			t.Fatalf("PathHistogram not sorted desc: %v", ph)
		}
	}
}

func TestLeafSelectivity(t *testing.T) {
	c := NewCollector()
	// b: tcp out x2, udp in x1 → tcp-tcp: 1, tcp-udp: 2, total 3.
	c.Add(edge("b", "x", "tcp", 1))
	c.Add(edge("b", "y", "tcp", 2))
	c.Add(edge("a", "b", "udp", 3))

	// Query: u -udp-> v -tcp-> w   (center v: udp in, tcp out)
	q := query.NewPath(query.Wildcard, "udp", "tcp")

	s1, err := c.LeafSelectivity(q, []int{0})
	if err != nil || s1 != 1.0/3 {
		t.Fatalf("1-edge leaf = %v err=%v, want 1/3", s1, err)
	}
	s2, err := c.LeafSelectivity(q, []int{0, 1})
	if err != nil || s2 != 2.0/3 {
		t.Fatalf("2-edge leaf = %v err=%v, want 2/3", s2, err)
	}
	if _, err := c.LeafSelectivity(q, []int{0, 1, 1}); err == nil {
		t.Fatalf("3-edge leaf should error")
	}
	if !c.LeafSeen(q, []int{0, 1}) {
		t.Errorf("LeafSeen should be true")
	}
}

func TestExpectedAndRelativeSelectivity(t *testing.T) {
	c := NewCollector()
	c.Add(edge("b", "x", "tcp", 1))
	c.Add(edge("b", "y", "tcp", 2))
	c.Add(edge("a", "b", "udp", 3))

	q := query.NewPath(query.Wildcard, "udp", "tcp")
	single := [][]int{{0}, {1}}
	path := [][]int{{0, 1}}

	s1, err := c.ExpectedSelectivity(q, single)
	if err != nil {
		t.Fatal(err)
	}
	// S(udp)=1/3, S(tcp)=2/3 → product 2/9.
	if math.Abs(s1-2.0/9) > 1e-12 {
		t.Fatalf("Ŝ(T1) = %v, want 2/9", s1)
	}
	sp, err := c.ExpectedSelectivity(q, path)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp-2.0/3) > 1e-12 {
		t.Fatalf("Ŝ(Tp) = %v, want 2/3", sp)
	}
	xi, ok, err := c.RelativeSelectivity(q, path, single)
	if err != nil || !ok {
		t.Fatalf("RelativeSelectivity err=%v ok=%v", err, ok)
	}
	if math.Abs(xi-3.0) > 1e-12 {
		t.Fatalf("ξ = %v, want 3", xi)
	}
	if PreferPathDecomposition(xi) {
		t.Errorf("ξ=3 should prefer single")
	}
	if !PreferPathDecomposition(1e-5) {
		t.Errorf("ξ=1e-5 should prefer path")
	}
}

func TestRelativeSelectivityZeroDenominator(t *testing.T) {
	c := NewCollector()
	q := query.NewPath(query.Wildcard, "nope")
	_, ok, err := c.RelativeSelectivity(q, [][]int{{0}}, [][]int{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("zero denominator must report ok=false")
	}
}

func TestRemoveUnknownTypeIsNoop(t *testing.T) {
	c := NewCollector()
	c.Remove(edge("a", "b", "ghost", 1))
	if c.EdgeTotal() != 0 {
		t.Fatalf("Remove of unseen type changed totals")
	}
}
