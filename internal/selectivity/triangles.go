package selectivity

import (
	"math/rand"

	"streamgraph/internal/graph"
	"streamgraph/internal/stream"
)

// TriangleEstimator implements the streaming triangle-count estimator
// referenced in Section 5.1 (after Jha, Seshadhri, Pinar — "A space
// efficient streaming algorithm for triangle counting using the
// birthday paradox", KDD 2013): reservoir-sample edges, sample wedges
// (2-paths) formed among the sampled edges, and track the fraction of
// sampled wedges closed by a later edge. Each triangle has exactly one
// wedge whose closing edge arrives after both wedge edges, so
//
//	triangles ≈ closedFraction · totalWedges,
//
// where totalWedges is the stream's wedge count estimated from the
// reservoir by the birthday-paradox scaling (t / reservoirSize)².
//
// The estimator treats the graph as undirected and simple (a structural
// statistic); the paper foresees such estimators extending the
// selectivity machinery to triangle primitives.
type TriangleEstimator struct {
	rng *rand.Rand

	slots    int
	edges    []undirEdge
	deg      map[int32]int64 // degree within the reservoir
	resWedge float64         // wedges among reservoir edges (Σ C(deg,2))
	seen     int64           // stream edges observed

	wedges []wedge
	closed []bool
	live   int

	verts map[string]int32
}

type undirEdge struct{ a, b int32 }

type wedge struct {
	a, center, b int32
	used         bool
}

// NewTriangleEstimator returns an estimator holding at most edgeSlots
// sampled edges and wedgeSlots sampled wedges.
func NewTriangleEstimator(seed int64, edgeSlots, wedgeSlots int) *TriangleEstimator {
	if edgeSlots <= 0 {
		edgeSlots = 5000
	}
	if wedgeSlots <= 0 {
		wedgeSlots = 5000
	}
	return &TriangleEstimator{
		rng:    rand.New(rand.NewSource(seed)),
		slots:  edgeSlots,
		deg:    make(map[int32]int64),
		wedges: make([]wedge, wedgeSlots),
		closed: make([]bool, wedgeSlots),
		verts:  make(map[string]int32),
	}
}

func (t *TriangleEstimator) vertex(name string) int32 {
	if id, ok := t.verts[name]; ok {
		return id
	}
	id := int32(len(t.verts))
	t.verts[name] = id
	return id
}

// Add folds one stream edge into the estimator.
func (t *TriangleEstimator) Add(e stream.Edge) {
	a, b := t.vertex(e.Src), t.vertex(e.Dst)
	if a == b {
		return
	}
	if a > b {
		a, b = b, a
	}
	ue := undirEdge{a, b}
	t.seen++

	// Mark sampled wedges closed by this edge.
	for i := range t.wedges {
		w := &t.wedges[i]
		if !w.used || t.closed[i] {
			continue
		}
		x, y := w.a, w.b
		if x > y {
			x, y = y, x
		}
		if x == a && y == b {
			t.closed[i] = true
		}
	}

	// Reservoir-sample the edge.
	var replaced *undirEdge
	switch {
	case len(t.edges) < t.slots:
		t.edges = append(t.edges, ue)
	default:
		if j := t.rng.Int63n(t.seen); j < int64(t.slots) {
			old := t.edges[j]
			replaced = &old
			t.edges[j] = ue
		} else {
			return // not sampled: reservoir unchanged
		}
	}
	if replaced != nil {
		t.resWedge -= float64(t.deg[replaced.a]-1) + float64(t.deg[replaced.b]-1)
		t.deg[replaced.a]--
		t.deg[replaced.b]--
	}
	newWedges := float64(t.deg[a] + t.deg[b])
	t.resWedge += newWedges
	t.deg[a]++
	t.deg[b]++

	if newWedges <= 0 || t.resWedge <= 0 {
		return
	}
	// Refresh each wedge slot with probability newWedges/resWedge,
	// drawing a uniform new wedge incident to the inserted edge (the
	// Jha-Seshadhri-Pinar update keeps the wedge reservoir near-uniform
	// over the reservoir's wedges).
	p := newWedges / t.resWedge
	for i := range t.wedges {
		if t.rng.Float64() >= p {
			continue
		}
		if w, ok := t.randomWedgeWith(ue); ok {
			if !t.wedges[i].used {
				t.live++
			}
			t.wedges[i] = w
			t.closed[i] = false
		}
	}
}

// randomWedgeWith draws a uniform wedge formed by ue and another
// reservoir edge sharing an endpoint.
func (t *TriangleEstimator) randomWedgeWith(ue undirEdge) (wedge, bool) {
	// Sample reservoir edges until one sharing exactly one endpoint is
	// found; bounded attempts keep this O(1) amortized.
	for attempt := 0; attempt < 32; attempt++ {
		o := t.edges[t.rng.Intn(len(t.edges))]
		if o == ue {
			continue
		}
		if w, ok := makeWedge(ue, o); ok {
			w.used = true
			return w, true
		}
	}
	// Fallback: linear scan for any partner.
	var cands []wedge
	for _, o := range t.edges {
		if o == ue {
			continue
		}
		if w, ok := makeWedge(ue, o); ok {
			w.used = true
			cands = append(cands, w)
		}
	}
	if len(cands) == 0 {
		return wedge{}, false
	}
	return cands[t.rng.Intn(len(cands))], true
}

func makeWedge(e1, e2 undirEdge) (wedge, bool) {
	switch {
	case e1.a == e2.a && e1.b != e2.b:
		return wedge{a: e1.b, center: e1.a, b: e2.b}, true
	case e1.a == e2.b && e1.b != e2.a:
		return wedge{a: e1.b, center: e1.a, b: e2.a}, true
	case e1.b == e2.a && e1.a != e2.b:
		return wedge{a: e1.a, center: e1.b, b: e2.b}, true
	case e1.b == e2.b && e1.a != e2.a:
		return wedge{a: e1.a, center: e1.b, b: e2.a}, true
	}
	return wedge{}, false
}

// Estimate returns the estimated triangle count of the stream so far.
func (t *TriangleEstimator) Estimate() float64 {
	liveCnt, closedCnt := 0, 0
	for i := range t.wedges {
		if !t.wedges[i].used {
			continue
		}
		liveCnt++
		if t.closed[i] {
			closedCnt++
		}
	}
	if liveCnt == 0 || len(t.edges) == 0 {
		return 0
	}
	frac := float64(closedCnt) / float64(liveCnt)
	scale := float64(t.seen) / float64(len(t.edges))
	wedgesInStream := t.resWedge * scale * scale
	return frac * wedgesInStream
}

// WedgeEstimate returns the estimated number of wedges (2-paths,
// undirected) in the stream so far.
func (t *TriangleEstimator) WedgeEstimate() float64 {
	if len(t.edges) == 0 {
		return 0
	}
	scale := float64(t.seen) / float64(len(t.edges))
	return t.resWedge * scale * scale
}

// ExactTriangles counts triangles in a materialized graph by brute
// force over wedges (undirected, parallel edges collapsed, each
// triangle counted once). It is the oracle the estimator is validated
// against and is also usable directly for small graphs.
func ExactTriangles(g *graph.Graph) int64 {
	adj := make([]map[graph.VertexID]bool, g.NumVertices())
	addPair := func(a, b graph.VertexID) {
		if adj[a] == nil {
			adj[a] = make(map[graph.VertexID]bool)
		}
		adj[a][b] = true
	}
	g.EachEdge(func(e graph.Edge) bool {
		if e.Src != e.Dst {
			addPair(e.Src, e.Dst)
			addPair(e.Dst, e.Src)
		}
		return true
	})
	var count int64
	g.EachVertex(func(v graph.VertexID) bool {
		ns := adj[v]
		if len(ns) < 2 {
			return true
		}
		var list []graph.VertexID
		for u := range ns {
			if u > v {
				list = append(list, u)
			}
		}
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				if adj[list[i]][list[j]] {
					count++
				}
			}
		}
		return true
	})
	return count
}
