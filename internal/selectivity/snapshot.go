package selectivity

import "sort"

// CollectorState is a portable, plain-data snapshot of a Collector:
// every count keyed by type NAME rather than interned ID, so it can
// be serialized, moved across processes, and restored into a fresh
// collector whose interner assigns different IDs. The shard router's
// durable checkpoint carries one — its statistics are cumulative over
// the whole stream history, which no windowed log replay could
// rebuild, so a restart without them would decompose newly registered
// queries from near-empty histograms.
//
// All slices are sorted, so equal collectors snapshot to deeply equal
// states (stable bytes for content-addressed checkpoint metadata).
type CollectorState struct {
	EdgeTotal int64
	PathTotal int64
	// Edges is the 1-edge histogram by type name.
	Edges []TypeCount
	// Paths is the 2-edge path histogram; each key is the two
	// direction-aware incident types at the center vertex.
	Paths []PathCountState
	// Vertices holds the per-vertex incident direction-type counters
	// the incremental path update needs.
	Vertices []VertexCounts
}

// TypeCount is one 1-edge histogram row.
type TypeCount struct {
	Type string
	N    int64
}

// DirTypeCount is one incident direction-type counter row.
type DirTypeCount struct {
	Type string
	Dir  Dir
	N    int64
}

// PathCountState is one 2-edge path histogram row.
type PathCountState struct {
	A, B PathEnd
	N    int64
}

// PathEnd is one side of a 2-edge path key.
type PathEnd struct {
	Type string
	Dir  Dir
}

// VertexCounts is one vertex's incident direction-type counters.
type VertexCounts struct {
	Name     string
	Incident []DirTypeCount
}

// Snapshot captures the collector's full state.
func (c *Collector) Snapshot() *CollectorState {
	s := &CollectorState{EdgeTotal: c.edgeTotal, PathTotal: c.pathTotal}
	for t, n := range c.edgeCount {
		s.Edges = append(s.Edges, TypeCount{Type: c.types.Name(t), N: n})
	}
	sort.Slice(s.Edges, func(i, j int) bool { return s.Edges[i].Type < s.Edges[j].Type })
	end := func(dt uint32) PathEnd {
		t, d := splitDirType(dt)
		return PathEnd{Type: c.types.Name(t), Dir: d}
	}
	for k, n := range c.pathCount {
		s.Paths = append(s.Paths, PathCountState{A: end(k.A), B: end(k.B), N: n})
	}
	endLess := func(a, b PathEnd) bool {
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return a.Dir < b.Dir
	}
	sort.Slice(s.Paths, func(i, j int) bool {
		a, b := s.Paths[i], s.Paths[j]
		if a.A != b.A {
			return endLess(a.A, b.A)
		}
		return endLess(a.B, b.B)
	})
	names := make([]string, 0, len(c.vertIDs))
	for name := range c.vertIDs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cv := c.perVertex[c.vertIDs[name]]
		if len(cv) == 0 {
			continue
		}
		vc := VertexCounts{Name: name}
		for dt, n := range cv {
			t, d := splitDirType(dt)
			vc.Incident = append(vc.Incident, DirTypeCount{Type: c.types.Name(t), Dir: d, N: n})
		}
		sort.Slice(vc.Incident, func(i, j int) bool {
			a, b := vc.Incident[i], vc.Incident[j]
			return a.Type < b.Type || a.Type == b.Type && a.Dir < b.Dir
		})
		s.Vertices = append(s.Vertices, vc)
	}
	return s
}

// Restore builds a collector holding exactly the snapshot's state.
func (s *CollectorState) Restore() *Collector {
	c := NewCollector()
	c.edgeTotal = s.EdgeTotal
	c.pathTotal = s.PathTotal
	for _, e := range s.Edges {
		c.edgeCount[c.types.Intern(e.Type)] = e.N
	}
	for _, p := range s.Paths {
		k := makePathKey(
			dirType(c.types.Intern(p.A.Type), p.A.Dir),
			dirType(c.types.Intern(p.B.Type), p.B.Dir),
		)
		c.pathCount[k] += p.N
	}
	for _, vc := range s.Vertices {
		cv := c.perVertex[c.vertex(vc.Name)]
		for _, inc := range vc.Incident {
			cv[dirType(c.types.Intern(inc.Type), inc.Dir)] = inc.N
		}
	}
	return c
}
