package selectivity

import (
	"fmt"
	"reflect"
	"testing"

	"streamgraph/internal/stream"
)

// snapStream generates a deterministic mixed-type edge stream without
// importing datagen (which itself depends on this package).
func snapStream(n int) []stream.Edge {
	types := []string{"TCP", "UDP", "ICMP"}
	out := make([]stream.Edge, n)
	for i := range out {
		out[i] = stream.Edge{
			Src: fmt.Sprintf("h%d", (i*7)%40), SrcLabel: "host",
			Dst: fmt.Sprintf("h%d", (i*13+5)%40), DstLabel: "host",
			Type: types[(i*3)%len(types)], TS: int64(i),
		}
	}
	return out
}

// TestSnapshotRoundTrip restores a snapshot into a fresh collector and
// verifies every selectivity estimate matches, then checks the restored
// collector keeps accumulating correctly (its interner assigned fresh
// IDs, so any keying bug would surface on the first post-restore Add).
func TestSnapshotRoundTrip(t *testing.T) {
	edges := snapStream(800)
	c := NewCollector()
	for _, e := range edges[:600] {
		c.Add(e)
	}

	s := c.Snapshot()
	r := s.Restore()

	types := []string{"TCP", "UDP", "ICMP"}
	dirs := []Dir{Out, In}
	check := func(stage string, a, b *Collector) {
		t.Helper()
		if a.EdgeTotal() != b.EdgeTotal() || a.PathTotal() != b.PathTotal() {
			t.Fatalf("%s: totals (%d,%d) vs (%d,%d)", stage,
				a.EdgeTotal(), a.PathTotal(), b.EdgeTotal(), b.PathTotal())
		}
		for _, et := range types {
			if a.EdgeFrequency(et) != b.EdgeFrequency(et) {
				t.Fatalf("%s: edge freq %s: %d vs %d", stage, et, a.EdgeFrequency(et), b.EdgeFrequency(et))
			}
			for _, d1 := range dirs {
				for _, et2 := range types {
					for _, d2 := range dirs {
						if a.PathFrequency(et, d1, et2, d2) != b.PathFrequency(et, d1, et2, d2) {
							t.Fatalf("%s: path freq (%s,%v)-(%s,%v): %d vs %d", stage,
								et, d1, et2, d2,
								a.PathFrequency(et, d1, et2, d2), b.PathFrequency(et, d1, et2, d2))
						}
					}
				}
			}
		}
	}
	check("restored", c, r)

	// Snapshot must be deterministic: same state, same bytes.
	if !reflect.DeepEqual(s, r.Snapshot()) {
		t.Fatal("snapshot of restored collector differs from original snapshot")
	}

	// Continue both collectors over the suffix, including removals (the
	// windowed decrement path exercises per-vertex incident counters).
	for i, e := range edges[600:] {
		c.Add(e)
		r.Add(e)
		if i%3 == 0 {
			c.Remove(edges[i])
			r.Remove(edges[i])
		}
	}
	check("continued", c, r)
	if !reflect.DeepEqual(c.Snapshot(), r.Snapshot()) {
		t.Fatal("continued collectors diverged")
	}
}

// TestSnapshotEmpty round-trips a fresh collector.
func TestSnapshotEmpty(t *testing.T) {
	s := NewCollector().Snapshot()
	r := s.Restore()
	if r.EdgeTotal() != 0 || r.PathTotal() != 0 {
		t.Fatalf("empty restore has totals %d/%d", r.EdgeTotal(), r.PathTotal())
	}
	if !reflect.DeepEqual(s, r.Snapshot()) {
		t.Fatal("empty snapshot not stable")
	}
}
