package selectivity

import (
	"streamgraph/internal/query"
)

// This file implements the paper's analytical models: the SJ-Tree space
// complexity estimate of Section 5.2,
//
//	S(T) = Σ_k |E(g_k)| · frequency(g_k),
//
// and the average-work cost model of Appendix A,
//
//	C(T) = C(root(T)) with per-node work
//	  (f_S(g1) + f_S(g2) + O(n1) + O(n2) + min(n1, n2)) / N.
//
// Both take a decomposition (ordered leaves of query edge index lists)
// and score it from the collected stream statistics, enabling
// cost-driven comparison of candidate SJ-Trees without running them.

// LeafFrequency estimates the absolute frequency (expected number of
// stored matches over the observed stream) of a leaf subgraph: its
// selectivity times the total count of same-size subgraphs.
func (c *Collector) LeafFrequency(q *query.Graph, leaf []int) (float64, error) {
	s, err := c.LeafSelectivity(q, leaf)
	if err != nil {
		return 0, err
	}
	switch len(leaf) {
	case 1:
		return s * float64(c.edgeTotal), nil
	default:
		return s * float64(c.pathTotal), nil
	}
}

// SpaceEstimate computes S(T) for a decomposition: the expected number
// of stored partial matches weighted by their edge counts. Internal
// nodes are approximated by the frequency of their most selective
// child, the paper's grouping argument ("the frequency of g_small
// serves as an upper bound for g_big").
func (c *Collector) SpaceEstimate(q *query.Graph, leaves [][]int) (float64, error) {
	if len(leaves) == 0 {
		return 0, nil
	}
	total := 0.0
	// Leaf storage.
	freqs := make([]float64, len(leaves))
	for i, leaf := range leaves {
		f, err := c.LeafFrequency(q, leaf)
		if err != nil {
			return 0, err
		}
		freqs[i] = f
		total += float64(len(leaf)) * f
	}
	// Internal nodes of the left-deep tree: node i joins the prefix
	// (leaves 0..i-1) with leaf i; its frequency is bounded by the
	// minimum frequency among its constituents.
	prefixMin := freqs[0]
	prefixEdges := len(leaves[0])
	for i := 1; i < len(leaves); i++ {
		if freqs[i] < prefixMin {
			prefixMin = freqs[i]
		}
		prefixEdges += len(leaves[i])
		total += float64(prefixEdges) * prefixMin
	}
	return total, nil
}

// CostEstimate computes the Appendix A average-work model C(T): for
// every internal node of the left-deep tree, the expected per-edge work
// is the leaf search costs (for leaf children), the hash probes from
// each side's arrivals, and the expected joins min(n_left, n_right),
// normalized by the stream length N. The returned value is the
// estimated work per incoming edge.
func (c *Collector) CostEstimate(q *query.Graph, leaves [][]int) (float64, error) {
	if len(leaves) == 0 || c.edgeTotal == 0 {
		return 0, nil
	}
	n := float64(c.edgeTotal)
	freqs := make([]float64, len(leaves))
	searchCost := make([]float64, len(leaves))
	for i, leaf := range leaves {
		f, err := c.LeafFrequency(q, leaf)
		if err != nil {
			return 0, err
		}
		freqs[i] = f
		// O(1) for a 1-edge leaf, O(d̄) for a 2-edge leaf (the Appendix's
		// triad analysis); d̄ is approximated by 2·E/V over the sample.
		if len(leaf) == 1 {
			searchCost[i] = 1
		} else {
			searchCost[i] = c.avgDegree()
		}
	}
	// Single leaf: just the search.
	if len(leaves) == 1 {
		return searchCost[0], nil
	}
	work := 0.0
	prefixFreq := freqs[0]
	work += searchCost[0] // leftmost leaf searched on every edge
	for i := 1; i < len(leaves); i++ {
		// Leaf i's search plus the hash-join work at its parent:
		// probes from both sides and the expected joined matches.
		work += searchCost[i]
		work += (prefixFreq + freqs[i] + min2(prefixFreq, freqs[i])) / n
		prefixFreq = min2(prefixFreq, freqs[i])
	}
	return work, nil
}

// AvgDegreeEstimate reports the mean incident-edge count over observed
// vertices — the d̄ used by the planner's search-cost terms.
func (c *Collector) AvgDegreeEstimate() float64 { return c.avgDegree() }

func (c *Collector) avgDegree() float64 {
	if len(c.perVertex) == 0 {
		return 0
	}
	total := 0.0
	for _, cv := range c.perVertex {
		for _, n := range cv {
			total += float64(n)
		}
	}
	return total / float64(len(c.perVertex))
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// ShouldDecomposeFurther implements Observation 3: a subgraph g_k is
// worth decomposing when some sub-subgraph g has
// frequency(g) > frequency(g_k) · d̄ · |V(g_k)| — i.e. the cost of
// growing the larger match around every occurrence of the small one
// exceeds tracking the larger pattern directly.
func (c *Collector) ShouldDecomposeFurther(freqSub, freqWhole float64, numVertices int) bool {
	return freqSub > freqWhole*c.avgDegree()*float64(numVertices)
}
