// Package selectivity implements the distributional-statistics machinery
// of Choudhury et al. (EDBT 2015, Section 5): streaming histograms of
// 1-edge subgraphs (edge types) and 2-edge paths (Algorithm 5), subgraph
// selectivity, Expected Selectivity of an SJ-Tree decomposition, Relative
// Selectivity between decompositions, and the strategy-selection rule of
// Section 6.5.
//
// The 2-edge path statistics are direction-aware: an incident edge at a
// center vertex is keyed by (edge type, orientation relative to the
// center), which is the paper's Map() function specialized to typed
// directed graphs.
package selectivity

import (
	"fmt"
	"sort"

	"streamgraph/internal/graph"
	"streamgraph/internal/query"
	"streamgraph/internal/stream"
)

// Dir is the orientation of an edge relative to a center vertex.
type Dir uint8

const (
	// Out means the edge leaves the center vertex.
	Out Dir = 0
	// In means the edge enters the center vertex.
	In Dir = 1
)

// String renders the edge direction ("in" or "out").
func (d Dir) String() string {
	if d == In {
		return "in"
	}
	return "out"
}

// dirType packs an interned edge type and its orientation relative to a
// center vertex into one key.
func dirType(t uint32, d Dir) uint32 { return t<<1 | uint32(d) }

func splitDirType(dt uint32) (uint32, Dir) { return dt >> 1, Dir(dt & 1) }

// PathKey identifies a 2-edge path shape: the two direction-aware
// incident types at the center vertex, normalized so A <= B.
type PathKey struct{ A, B uint32 }

func makePathKey(a, b uint32) PathKey {
	if a > b {
		a, b = b, a
	}
	return PathKey{A: a, B: b}
}

// DirTypeKey packs an interned edge type and its orientation relative to
// a center vertex into the single-integer convention used by PathKey.
// It is exported for alternative statistics implementations (e.g. the
// bounded-memory sketch estimator) that must agree with the Collector on
// key layout.
func DirTypeKey(t uint32, d Dir) uint32 { return dirType(t, d) }

// SplitDirTypeKey reverses DirTypeKey.
func SplitDirTypeKey(dt uint32) (uint32, Dir) { return splitDirType(dt) }

// NewPathKey builds the normalized PathKey for two direction-type keys.
func NewPathKey(a, b uint32) PathKey { return makePathKey(a, b) }

// Counter is the hash-table counter of Algorithm 5: Update increments a
// key's count, Count reads it back.
type Counter[K comparable] map[K]int64

// Update adds delta to the count for key.
func (c Counter[K]) Update(key K, delta int64) { c[key] += delta }

// Count returns the count for key (0 when absent).
func (c Counter[K]) Count(key K) int64 { return c[key] }

// Total returns the sum of all counts.
func (c Counter[K]) Total() int64 {
	var t int64
	for _, v := range c {
		t += v
	}
	return t
}

// Collector accumulates 1-edge and 2-edge subgraph statistics from an
// edge stream. It maintains per-vertex incident-type counters so updates
// are O(k) in the number of distinct incident direction-types at the
// endpoints. The zero value is not usable; call NewCollector.
type Collector struct {
	types     *graph.Interner
	vertIDs   map[string]int32
	perVertex []Counter[uint32] // incident dirType counts, indexed by vertex

	edgeCount Counter[uint32] // by TypeID
	edgeTotal int64

	pathCount Counter[PathKey]
	pathTotal int64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		types:     graph.NewInterner(),
		vertIDs:   make(map[string]int32),
		edgeCount: make(Counter[uint32]),
		pathCount: make(Counter[PathKey]),
	}
}

// Types exposes the collector's edge-type interner.
func (c *Collector) Types() *graph.Interner { return c.types }

func (c *Collector) vertex(name string) int32 {
	if id, ok := c.vertIDs[name]; ok {
		return id
	}
	id := int32(len(c.perVertex))
	c.vertIDs[name] = id
	c.perVertex = append(c.perVertex, make(Counter[uint32]))
	return id
}

// Add folds one stream edge into the statistics.
func (c *Collector) Add(e stream.Edge) {
	t := c.types.Intern(e.Type)
	c.edgeCount.Update(t, 1)
	c.edgeTotal++
	c.addIncident(c.vertex(e.Src), dirType(t, Out))
	c.addIncident(c.vertex(e.Dst), dirType(t, In))
}

func (c *Collector) addIncident(v int32, dt uint32) {
	cv := c.perVertex[v]
	// The new incident edge forms a 2-edge path with every existing
	// incident edge at v (including earlier edges of its own dirType).
	for existing, n := range cv {
		c.pathCount.Update(makePathKey(dt, existing), n)
		c.pathTotal += n
	}
	cv.Update(dt, 1)
}

// Remove reverses Add for an edge previously folded in. It is the
// decrement used when statistics track a sliding window.
func (c *Collector) Remove(e stream.Edge) {
	t, ok := c.types.Lookup(e.Type)
	if !ok {
		return
	}
	c.edgeCount.Update(t, -1)
	c.edgeTotal--
	c.removeIncident(c.vertex(e.Src), dirType(t, Out))
	c.removeIncident(c.vertex(e.Dst), dirType(t, In))
}

func (c *Collector) removeIncident(v int32, dt uint32) {
	cv := c.perVertex[v]
	cv.Update(dt, -1)
	if cv[dt] == 0 {
		delete(cv, dt)
	}
	for existing, n := range cv {
		c.pathCount.Update(makePathKey(dt, existing), -n)
		if c.pathCount[makePathKey(dt, existing)] == 0 {
			delete(c.pathCount, makePathKey(dt, existing))
		}
		c.pathTotal -= n
	}
}

// AddAll folds a whole slice of edges into the statistics.
func (c *Collector) AddAll(edges []stream.Edge) {
	for _, e := range edges {
		c.Add(e)
	}
}

// EdgeTotal returns the number of edges folded in.
func (c *Collector) EdgeTotal() int64 { return c.edgeTotal }

// PathTotal returns the total number of 2-edge paths counted.
func (c *Collector) PathTotal() int64 { return c.pathTotal }

// EdgeSelectivity returns S(g) for the 1-edge subgraph with the given
// type: its frequency divided by the total edge count. Unseen types have
// selectivity 0.
func (c *Collector) EdgeSelectivity(etype string) float64 {
	if c.edgeTotal == 0 {
		return 0
	}
	t, ok := c.types.Lookup(etype)
	if !ok {
		return 0
	}
	return float64(c.edgeCount.Count(t)) / float64(c.edgeTotal)
}

// EdgeFrequency returns the raw count for an edge type.
func (c *Collector) EdgeFrequency(etype string) int64 {
	t, ok := c.types.Lookup(etype)
	if !ok {
		return 0
	}
	return c.edgeCount.Count(t)
}

// PathFrequency returns the raw count of 2-edge paths whose incident
// direction-types at the shared center vertex are (t1,d1) and (t2,d2).
func (c *Collector) PathFrequency(t1 string, d1 Dir, t2 string, d2 Dir) int64 {
	a, ok1 := c.types.Lookup(t1)
	b, ok2 := c.types.Lookup(t2)
	if !ok1 || !ok2 {
		return 0
	}
	return c.pathCount.Count(makePathKey(dirType(a, d1), dirType(b, d2)))
}

// PathSelectivity returns S(g) for the 2-edge path shape (t1,d1)-(t2,d2)
// around a shared center vertex. Unseen shapes have selectivity 0.
func (c *Collector) PathSelectivity(t1 string, d1 Dir, t2 string, d2 Dir) float64 {
	if c.pathTotal == 0 {
		return 0
	}
	return float64(c.PathFrequency(t1, d1, t2, d2)) / float64(c.pathTotal)
}

// PathSeen reports whether the given 2-edge path shape occurs at all.
func (c *Collector) PathSeen(t1 string, d1 Dir, t2 string, d2 Dir) bool {
	return c.PathFrequency(t1, d1, t2, d2) > 0
}

// HistogramEntry is one row of an exported distribution.
type HistogramEntry struct {
	Key   string
	Count int64
}

// EdgeHistogram returns the 1-edge distribution sorted by descending
// count (ties broken by key) — the data behind Figure 6.
func (c *Collector) EdgeHistogram() []HistogramEntry {
	out := make([]HistogramEntry, 0, len(c.edgeCount))
	for t, n := range c.edgeCount {
		out = append(out, HistogramEntry{Key: c.types.Name(t), Count: n})
	}
	sortHistogram(out)
	return out
}

// PathHistogram returns the 2-edge path distribution sorted by
// descending count — the data behind Figure 7. Keys render as
// "type1(dir)-type2(dir)" around the center vertex.
func (c *Collector) PathHistogram() []HistogramEntry {
	out := make([]HistogramEntry, 0, len(c.pathCount))
	for k, n := range c.pathCount {
		ta, da := splitDirType(k.A)
		tb, db := splitDirType(k.B)
		key := fmt.Sprintf("%s(%s)-%s(%s)", c.types.Name(ta), da, c.types.Name(tb), db)
		out = append(out, HistogramEntry{Key: key, Count: n})
	}
	sortHistogram(out)
	return out
}

func sortHistogram(h []HistogramEntry) {
	sort.Slice(h, func(i, j int) bool {
		if h[i].Count != h[j].Count {
			return h[i].Count > h[j].Count
		}
		return h[i].Key < h[j].Key
	})
}

// UniquePathShapes reports how many distinct 2-edge path shapes were
// observed (the 14 / 62 / 676 figures of Section 6.3).
func (c *Collector) UniquePathShapes() int { return len(c.pathCount) }

// ComputeFromGraph runs the batch form of Algorithm 5 over a fully
// materialized graph and returns the resulting 2-edge path Counter along
// with its total. It exists to cross-validate the incremental collector
// and to reproduce the paper's "50 seconds over 130M edges" experiment.
func ComputeFromGraph(g *graph.Graph) (Counter[PathKey], int64) {
	paths := make(Counter[PathKey])
	var total int64
	g.EachVertex(func(v graph.VertexID) bool {
		cv := make(Counter[uint32])
		g.EachOut(v, func(h graph.Half) bool {
			cv.Update(dirType(uint32(h.Type), Out), 1)
			return true
		})
		g.EachIn(v, func(h graph.Half) bool {
			cv.Update(dirType(uint32(h.Type), In), 1)
			return true
		})
		// Deterministic iteration over the keys, mirroring Algorithm 5's
		// LEXICALLY-GREATER discipline so that each pair counts once.
		keys := make([]uint32, 0, len(cv))
		for k := range cv {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for i, e1 := range keys {
			n1 := cv.Count(e1)
			paths.Update(makePathKey(e1, e1), n1*(n1-1)/2)
			total += n1 * (n1 - 1) / 2
			for _, e2 := range keys[i+1:] {
				n2 := cv.Count(e2)
				paths.Update(makePathKey(e1, e2), n1*n2)
				total += n1 * n2
			}
		}
		return true
	})
	for k, v := range paths {
		if v == 0 {
			delete(paths, k)
		}
	}
	return paths, total
}

// --- Selectivity of query decompositions -------------------------------

// Source is the read side of the distributional statistics: anything
// that can report 1-edge and 2-edge-path selectivities can drive query
// decomposition. *Collector is the exact implementation; the sketch
// package provides a bounded-memory approximate one.
type Source interface {
	// EdgeSelectivity returns S(g) for the 1-edge subgraph with the
	// given type (0 for unseen types).
	EdgeSelectivity(etype string) float64
	// PathSelectivity returns S(g) for the 2-edge path shape whose
	// incident direction-types at the shared center vertex are (t1,d1)
	// and (t2,d2) (0 for unseen shapes).
	PathSelectivity(t1 string, d1 Dir, t2 string, d2 Dir) float64
}

// LeafSelectivityOf returns S(g) for a query subgraph that is a valid
// SJ-Tree leaf under any statistics Source: a single edge, or two edges
// sharing exactly one vertex (a 2-edge path). Two disjoint edges fall
// back to the product of their 1-edge selectivities.
func LeafSelectivityOf(src Source, q *query.Graph, leaf []int) (float64, error) {
	switch len(leaf) {
	case 1:
		return src.EdgeSelectivity(q.Edges[leaf[0]].Type), nil
	case 2:
		e1, e2 := q.Edges[leaf[0]], q.Edges[leaf[1]]
		center, ok := sharedVertex(e1, e2)
		if !ok {
			return src.EdgeSelectivity(e1.Type) * src.EdgeSelectivity(e2.Type), nil
		}
		d1, d2 := orientation(e1, center), orientation(e2, center)
		return src.PathSelectivity(e1.Type, d1, e2.Type, d2), nil
	default:
		return 0, fmt.Errorf("selectivity: leaf with %d edges not supported (want 1 or 2)", len(leaf))
	}
}

// ExpectedSelectivityOf returns Ŝ(T) = Π over leaves of S(leaf)
// (Equation 1) under any statistics Source.
func ExpectedSelectivityOf(src Source, q *query.Graph, leaves [][]int) (float64, error) {
	s := 1.0
	for _, leaf := range leaves {
		ls, err := LeafSelectivityOf(src, q, leaf)
		if err != nil {
			return 0, err
		}
		s *= ls
	}
	return s, nil
}

// RelativeSelectivityOf returns ξ(Tk, T1) = Ŝ(Tk)/Ŝ(T1) (Equation 2)
// under any statistics Source; ok is false when Ŝ(T1) is zero.
func RelativeSelectivityOf(src Source, q *query.Graph, leavesK, leaves1 [][]int) (xi float64, ok bool, err error) {
	sk, err := ExpectedSelectivityOf(src, q, leavesK)
	if err != nil {
		return 0, false, err
	}
	s1, err := ExpectedSelectivityOf(src, q, leaves1)
	if err != nil {
		return 0, false, err
	}
	if s1 == 0 {
		return 0, false, nil
	}
	return sk / s1, true, nil
}

// LeafSelectivity returns S(g) for a query subgraph that is a valid
// SJ-Tree leaf: a single edge, or two edges sharing exactly one vertex
// (a 2-edge path). Two disjoint edges fall back to the product of their
// 1-edge selectivities.
func (c *Collector) LeafSelectivity(q *query.Graph, leaf []int) (float64, error) {
	return LeafSelectivityOf(c, q, leaf)
}

// LeafSeen reports whether the leaf's shape occurs in the observed
// statistics (the query-filtering criterion of Section 6.4).
func (c *Collector) LeafSeen(q *query.Graph, leaf []int) bool {
	s, err := c.LeafSelectivity(q, leaf)
	return err == nil && s > 0
}

// sharedVertex returns the vertex index common to both edges, if exactly
// one exists.
func sharedVertex(e1, e2 query.Edge) (int, bool) {
	var shared []int
	for _, a := range []int{e1.Src, e1.Dst} {
		if a == e2.Src || a == e2.Dst {
			shared = append(shared, a)
		}
	}
	if len(shared) == 1 {
		return shared[0], true
	}
	return 0, false
}

func orientation(e query.Edge, center int) Dir {
	if e.Src == center {
		return Out
	}
	return In
}

// ExpectedSelectivity returns Ŝ(T) = Π over leaves of S(leaf)
// (Equation 1). A decomposition containing an unseen primitive has
// expected selectivity 0.
func (c *Collector) ExpectedSelectivity(q *query.Graph, leaves [][]int) (float64, error) {
	return ExpectedSelectivityOf(c, q, leaves)
}

// RelativeSelectivity returns ξ(Tk, T1) = Ŝ(Tk)/Ŝ(T1) (Equation 2),
// comparing a candidate decomposition against the 1-edge decomposition.
// It returns +Inf semantics avoided: if Ŝ(T1) is zero the result is 0
// with ok=false.
func (c *Collector) RelativeSelectivity(q *query.Graph, leavesK, leaves1 [][]int) (xi float64, ok bool, err error) {
	return RelativeSelectivityOf(c, q, leavesK, leaves1)
}

// DefaultRelSelThreshold is the Section 6.5 heuristic boundary: queries
// with relative selectivity below it should use the PathLazy strategy,
// queries above it SingleLazy.
const DefaultRelSelThreshold = 1e-3

// PreferPathDecomposition applies the Section 6.5 rule.
func PreferPathDecomposition(xi float64) bool { return xi < DefaultRelSelThreshold }
