package stream

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestEdgeString(t *testing.T) {
	e := Edge{Src: "a", SrcLabel: "ip", Dst: "b", DstLabel: "ip", Type: "tcp", TS: 42}
	want := "a\tip\tb\tip\ttcp\t42"
	if e.String() != want {
		t.Fatalf("String = %q, want %q", e.String(), want)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	edges := []Edge{
		{Src: "a", SrcLabel: "ip", Dst: "b", DstLabel: "ip", Type: "tcp", TS: 1},
		{Src: "b", SrcLabel: "ip", Dst: "c", DstLabel: "host", Type: "udp", TS: 2},
	}
	var buf bytes.Buffer
	if err := Write(&buf, edges); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(edges) {
		t.Fatalf("read %d edges, want %d", len(got), len(edges))
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Errorf("edge %d: %v != %v", i, got[i], edges[i])
		}
	}
}

func TestReaderSkipsCommentsAndBlanks(t *testing.T) {
	text := "# header\n\na\tip\tb\tip\ttcp\t1\n   \n# trailing\n"
	got, err := ReadAll(NewReader(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Src != "a" {
		t.Fatalf("got %v", got)
	}
}

func TestReaderErrors(t *testing.T) {
	cases := []string{
		"a\tip\tb\tip\ttcp",          // 5 fields
		"a\tip\tb\tip\ttcp\tnotanum", // bad ts
	}
	for _, text := range cases {
		r := NewReader(strings.NewReader(text))
		if _, err := r.Next(); err == nil || err == io.EOF {
			t.Errorf("Next accepted %q", text)
		}
	}
}

func TestReaderErrorMentionsLine(t *testing.T) {
	text := "a\tip\tb\tip\ttcp\t1\nbroken line here\n"
	r := NewReader(strings.NewReader(text))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Next()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error should name line 2: %v", err)
	}
}

func TestSliceSource(t *testing.T) {
	s := NewSliceSource([]Edge{{Src: "a", Dst: "b", Type: "t", TS: 1}})
	if e, err := s.Next(); err != nil || e.Src != "a" {
		t.Fatalf("first Next: %v %v", e, err)
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	s.Reset()
	if _, err := s.Next(); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
}
