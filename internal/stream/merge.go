package stream

import (
	"container/heap"
	"io"
)

// Merger combines several edge sources into one stream ordered by
// ascending timestamp — the k-way merge a deployment needs when
// several collection points (e.g. multiple netflow exporters) feed one
// continuous query engine. Ties are broken by source index, so the
// merged order is deterministic. Each input is assumed to be
// timestamp-ordered; out-of-order inputs are merged on a best-effort
// basis exactly like the engine treats out-of-order edges. A source
// error fails the merged stream fast: the pending edge is delivered,
// then every subsequent Next reports the error — a broken exporter is
// surfaced rather than silently dropped.
type Merger struct {
	h   mergeHeap
	err error
}

// NewMerger primes one edge from every source and returns the merged
// stream. A source error during priming is reported by the first Next.
func NewMerger(sources ...Source) *Merger {
	m := &Merger{}
	for i, src := range sources {
		e, err := src.Next()
		if err == io.EOF {
			continue
		}
		if err != nil {
			m.err = err
			return m
		}
		m.h = append(m.h, mergeItem{edge: e, src: src, idx: i})
	}
	heap.Init(&m.h)
	return m
}

// Next implements Source.
func (m *Merger) Next() (Edge, error) {
	if m.err != nil {
		return Edge{}, m.err
	}
	if len(m.h) == 0 {
		return Edge{}, io.EOF
	}
	top := m.h[0]
	out := top.edge
	next, err := top.src.Next()
	switch {
	case err == io.EOF:
		heap.Pop(&m.h)
	case err != nil:
		m.err = err
		heap.Pop(&m.h)
	default:
		m.h[0].edge = next
		heap.Fix(&m.h, 0)
	}
	return out, nil
}

type mergeItem struct {
	edge Edge
	src  Source
	idx  int
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].edge.TS != h[j].edge.TS {
		return h[i].edge.TS < h[j].edge.TS
	}
	return h[i].idx < h[j].idx
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
