package stream

import (
	"fmt"
	"io"
	"testing"
	"testing/quick"
)

func edgesAt(ts ...int64) []Edge {
	out := make([]Edge, len(ts))
	for i, t := range ts {
		out[i] = Edge{Src: fmt.Sprintf("s%d", t), Dst: "d", Type: "t", TS: t}
	}
	return out
}

func TestMergerOrdersByTimestamp(t *testing.T) {
	m := NewMerger(
		NewSliceSource(edgesAt(1, 4, 9)),
		NewSliceSource(edgesAt(2, 3, 10)),
		NewSliceSource(edgesAt(5, 6, 7, 8)),
	)
	got, err := ReadAll(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d edges, want 10", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].TS < got[i-1].TS {
			t.Fatalf("order violated at %d: %d < %d", i, got[i].TS, got[i-1].TS)
		}
	}
}

func TestMergerTiesBreakBySourceIndex(t *testing.T) {
	a := []Edge{{Src: "fromA", Dst: "d", Type: "t", TS: 5}}
	b := []Edge{{Src: "fromB", Dst: "d", Type: "t", TS: 5}}
	m := NewMerger(NewSliceSource(a), NewSliceSource(b))
	first, _ := m.Next()
	second, _ := m.Next()
	if first.Src != "fromA" || second.Src != "fromB" {
		t.Fatalf("tie order: %q then %q; want fromA then fromB", first.Src, second.Src)
	}
	if _, err := m.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestMergerEmptyInputs(t *testing.T) {
	m := NewMerger()
	if _, err := m.Next(); err != io.EOF {
		t.Fatalf("empty merger: %v", err)
	}
	m = NewMerger(NewSliceSource(nil), NewSliceSource(edgesAt(1)))
	got, err := ReadAll(m)
	if err != nil || len(got) != 1 {
		t.Fatalf("got %d edges, err %v", len(got), err)
	}
}

type failingSource struct{ n int }

func (f *failingSource) Next() (Edge, error) {
	if f.n <= 0 {
		return Edge{}, fmt.Errorf("disk on fire")
	}
	f.n--
	return Edge{Src: "x", Dst: "y", Type: "t", TS: 1}, nil
}

func TestMergerPropagatesErrors(t *testing.T) {
	// Error during priming.
	m := NewMerger(&failingSource{n: 0})
	if _, err := m.Next(); err == nil || err == io.EOF {
		t.Fatalf("priming error lost: %v", err)
	}
	// Error mid-stream: the already-primed edge is still delivered, then
	// the merger fails fast — a broken source must not be silently
	// dropped from the merged stream.
	m = NewMerger(&failingSource{n: 1}, NewSliceSource(edgesAt(2)))
	var n int
	var lastErr error
	for {
		_, err := m.Next()
		if err != nil {
			lastErr = err
			break
		}
		n++
	}
	if n != 1 {
		t.Fatalf("delivered %d edges before error, want 1 (fail fast)", n)
	}
	if lastErr == io.EOF {
		t.Fatal("mid-stream error was swallowed into EOF")
	}
}

func TestMergerMatchesSortProperty(t *testing.T) {
	err := quick.Check(func(a, b, c []uint16) bool {
		mk := func(ts []uint16) Source {
			es := make([]Edge, len(ts))
			// Each source must be internally ordered.
			var cur int64
			for i, t := range ts {
				cur += int64(t % 16)
				es[i] = Edge{Src: "s", Dst: "d", Type: "t", TS: cur}
			}
			return NewSliceSource(es)
		}
		m := NewMerger(mk(a), mk(b), mk(c))
		got, err := ReadAll(m)
		if err != nil {
			return false
		}
		if len(got) != len(a)+len(b)+len(c) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].TS < got[i-1].TS {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}
