package stream

import "io"

// Batcher groups a Source into fixed-size batches for the engine's
// batch ingestion path. The final batch may be short; after it has been
// delivered, Next returns io.EOF like a plain Source.
type Batcher struct {
	src  Source
	size int
	err  error // deferred error from mid-batch failure
}

// NewBatcher returns a Batcher emitting batches of up to size edges
// (size < 1 is treated as 1, which degenerates to the serial path).
func NewBatcher(src Source, size int) *Batcher {
	if size < 1 {
		size = 1
	}
	return &Batcher{src: src, size: size}
}

// Next returns the next batch. A read error mid-batch is deferred: the
// edges collected so far are returned first and the error on the
// following call, so no edge is lost.
func (b *Batcher) Next() ([]Edge, error) {
	if b.err != nil {
		err := b.err
		b.err = nil
		return nil, err
	}
	batch := make([]Edge, 0, b.size)
	for len(batch) < b.size {
		e, err := b.src.Next()
		if err != nil {
			if len(batch) == 0 {
				return nil, err
			}
			b.err = err
			return batch, nil
		}
		batch = append(batch, e)
	}
	return batch, nil
}

// EachBatch drains a Source in batches of up to size edges, invoking fn
// for each batch. It stops on the first error (io.EOF excluded) or when
// fn returns false.
func EachBatch(src Source, size int, fn func([]Edge) bool) error {
	b := NewBatcher(src, size)
	for {
		batch, err := b.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if !fn(batch) {
			return nil
		}
	}
}
