// Package stream defines the edge-stream representation shared by the
// data generators, the file formats and the continuous query engine. A
// stream is simply an ordered sequence of typed, timestamped edges
// between labeled vertices.
package stream

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Edge is one element of an edge stream. Vertex identity is by name;
// labels and types are free-form strings that the engine interns.
type Edge struct {
	Src      string
	SrcLabel string
	Dst      string
	DstLabel string
	Type     string
	TS       int64
}

// String renders the edge in the on-disk format (see Writer).
func (e Edge) String() string {
	return fmt.Sprintf("%s\t%s\t%s\t%s\t%s\t%d",
		e.Src, e.SrcLabel, e.Dst, e.DstLabel, e.Type, e.TS)
}

// Source yields edges one at a time. Next returns io.EOF after the final
// edge has been delivered.
type Source interface {
	Next() (Edge, error)
}

// SliceSource adapts an in-memory slice to a Source.
type SliceSource struct {
	edges []Edge
	pos   int
}

// NewSliceSource returns a Source over edges.
func NewSliceSource(edges []Edge) *SliceSource { return &SliceSource{edges: edges} }

// Next implements Source.
func (s *SliceSource) Next() (Edge, error) {
	if s.pos >= len(s.edges) {
		return Edge{}, io.EOF
	}
	e := s.edges[s.pos]
	s.pos++
	return e, nil
}

// Reset rewinds the source to the first edge.
func (s *SliceSource) Reset() { s.pos = 0 }

// Reader parses the tab-separated on-disk stream format:
//
//	src <TAB> srcLabel <TAB> dst <TAB> dstLabel <TAB> type <TAB> ts
//
// Blank lines and lines starting with '#' are skipped.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return &Reader{sc: sc}
}

// Next implements Source. It returns io.EOF at end of input and a
// descriptive error (with line number) on malformed records.
func (r *Reader) Next() (Edge, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 6 {
			return Edge{}, fmt.Errorf("stream: line %d: want 6 tab-separated fields, got %d", r.line, len(fields))
		}
		ts, err := strconv.ParseInt(fields[5], 10, 64)
		if err != nil {
			return Edge{}, fmt.Errorf("stream: line %d: bad timestamp %q: %v", r.line, fields[5], err)
		}
		return Edge{
			Src: fields[0], SrcLabel: fields[1],
			Dst: fields[2], DstLabel: fields[3],
			Type: fields[4], TS: ts,
		}, nil
	}
	if err := r.sc.Err(); err != nil {
		return Edge{}, err
	}
	return Edge{}, io.EOF
}

// ReadAll drains a Source into a slice.
func ReadAll(src Source) ([]Edge, error) {
	var out []Edge
	for {
		e, err := src.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// Write serializes edges in the on-disk format.
func Write(w io.Writer, edges []Edge) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		if _, err := fmt.Fprintln(bw, e.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}
