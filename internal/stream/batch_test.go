package stream

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

func testEdges(n int) []Edge {
	out := make([]Edge, n)
	for i := range out {
		out[i] = Edge{
			Src: fmt.Sprintf("s%d", i), SrcLabel: "l",
			Dst: fmt.Sprintf("d%d", i), DstLabel: "l",
			Type: "t", TS: int64(i + 1),
		}
	}
	return out
}

func TestBatcherSizes(t *testing.T) {
	for _, tc := range []struct {
		n, size   int
		wantSizes []int
	}{
		{n: 10, size: 4, wantSizes: []int{4, 4, 2}},
		{n: 8, size: 4, wantSizes: []int{4, 4}},
		{n: 3, size: 5, wantSizes: []int{3}},
		{n: 0, size: 4, wantSizes: nil},
		{n: 5, size: 0, wantSizes: []int{1, 1, 1, 1, 1}}, // size < 1 clamps to 1
	} {
		b := NewBatcher(NewSliceSource(testEdges(tc.n)), tc.size)
		var sizes []int
		var seen int
		for {
			batch, err := b.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("n=%d size=%d: %v", tc.n, tc.size, err)
			}
			for _, e := range batch {
				if want := fmt.Sprintf("s%d", seen); e.Src != want {
					t.Fatalf("n=%d size=%d: edge %d is %q, want %q", tc.n, tc.size, seen, e.Src, want)
				}
				seen++
			}
			sizes = append(sizes, len(batch))
		}
		if fmt.Sprint(sizes) != fmt.Sprint(tc.wantSizes) {
			t.Errorf("n=%d size=%d: batch sizes %v, want %v", tc.n, tc.size, sizes, tc.wantSizes)
		}
		if seen != tc.n {
			t.Errorf("n=%d size=%d: delivered %d edges", tc.n, tc.size, seen)
		}
		if _, err := b.Next(); err != io.EOF {
			t.Errorf("n=%d size=%d: want io.EOF after drain, got %v", tc.n, tc.size, err)
		}
	}
}

func TestBatcherDefersMidBatchError(t *testing.T) {
	// Two good records then a malformed line: the partial batch must
	// arrive before the error.
	input := "a\tl\tb\tl\tt\t1\nc\tl\td\tl\tt\t2\ngarbage line\n"
	b := NewBatcher(NewReader(strings.NewReader(input)), 8)
	batch, err := b.Next()
	if err != nil || len(batch) != 2 {
		t.Fatalf("first Next: %d edges, err %v; want 2 edges, nil", len(batch), err)
	}
	if _, err := b.Next(); err == nil || err == io.EOF {
		t.Fatalf("second Next: err %v; want parse error", err)
	}
}

func TestEachBatch(t *testing.T) {
	var sizes []int
	err := EachBatch(NewSliceSource(testEdges(7)), 3, func(batch []Edge) bool {
		sizes = append(sizes, len(batch))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sizes) != fmt.Sprint([]int{3, 3, 1}) {
		t.Errorf("sizes %v", sizes)
	}
	// Early stop.
	calls := 0
	if err := EachBatch(NewSliceSource(testEdges(9)), 3, func([]Edge) bool {
		calls++
		return false
	}); err != nil || calls != 1 {
		t.Errorf("early stop: calls=%d err=%v", calls, err)
	}
	// Error propagation.
	wantErr := errors.New("boom")
	if err := EachBatch(errSource{wantErr}, 3, func([]Edge) bool { return true }); !errors.Is(err, wantErr) {
		t.Errorf("err %v, want %v", err, wantErr)
	}
}

type errSource struct{ err error }

func (s errSource) Next() (Edge, error) { return Edge{}, s.err }
