// Package persist checkpoints a running continuous query and restores
// it in a fresh process: the windowed data graph, the SJ-Tree's partial
// matches, the Lazy Search bitmap and the engine counters are written
// to a versioned binary snapshot. A restored engine continues exactly
// where the original stopped — the package tests verify that feeding
// the same suffix of a stream to the original and the restored engine
// yields identical match sets.
//
// The paper's engine is a long-standing query over an endless stream
// ("register a pattern ... continuously perform the query"); surviving
// a process restart without dropping the partial matches accumulated
// inside the window is table stakes for deploying one.
package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"streamgraph/internal/core"
	"streamgraph/internal/graph"
	"streamgraph/internal/iso"
	"streamgraph/internal/query"
	"streamgraph/internal/sjtree"
)

const (
	magic   = "SGSNAP1\n"
	version = uint32(1)
	// noIdx marks an unbound binding slot in the serialized form.
	noIdx = uint32(math.MaxUint32)
)

// Save writes a snapshot of the engine to w. The engine must be
// quiescent (between ProcessEdge calls). Save first flushes deferred
// lazy work and forces window eviction; complete matches produced by
// the flush are returned so the caller can report them.
func Save(w io.Writer, eng *core.Engine) (flushed []iso.Match, err error) {
	flushed = eng.FlushPending()
	eng.ForceEvict()

	bw := &writer{w: bufio.NewWriter(w)}
	bw.bytes([]byte(magic))
	bw.u32(version)

	// Query and configuration (decomposition pinned).
	cfg := eng.ConfigSnapshot()
	bw.str(eng.Query().String())
	bw.u32(uint32(cfg.Strategy))
	bw.i64(cfg.Window)
	bw.u32(uint32(cfg.MaxMatchesPerSearch))
	bw.i64(cfg.MaxWorkPerEdge)
	bw.i64(cfg.MaxStepsPerSearch)
	bw.u32(uint32(cfg.EvictEvery))
	bw.u32(uint32(len(cfg.Leaves)))
	for _, leaf := range cfg.Leaves {
		bw.u32(uint32(len(leaf)))
		for _, ei := range leaf {
			bw.u32(uint32(ei))
		}
	}

	// Gather the referenced vertex set: endpoints of live edges, match
	// bindings, bitmap entries.
	g := eng.Graph()
	vertIdx := make(map[graph.VertexID]uint32)
	var verts []graph.VertexID
	need := func(v graph.VertexID) uint32 {
		if i, ok := vertIdx[v]; ok {
			return i
		}
		i := uint32(len(verts))
		vertIdx[v] = i
		verts = append(verts, v)
		return i
	}

	type edgeRef struct {
		src, dst uint32
		typeName string
		ts       int64
	}
	edgeIdx := make(map[graph.EdgeID]uint32)
	var edges []edgeRef
	g.EachEdgeArrival(func(e graph.Edge) bool {
		edgeIdx[e.ID] = uint32(len(edges))
		edges = append(edges, edgeRef{
			src: need(e.Src), dst: need(e.Dst),
			typeName: g.Types().Name(uint32(e.Type)), ts: e.TS,
		})
		return true
	})

	bits := eng.LazyBits()
	for v := range bits {
		need(v)
	}

	type storedRef struct {
		node int
		m    iso.Match
	}
	var stored []storedRef
	var storedErr error
	if t := eng.Tree(); t != nil {
		t.EachStored(func(n *sjtree.Node, m iso.Match) bool {
			for _, dv := range m.VertexOf {
				if dv != graph.NoVertex {
					need(dv)
				}
			}
			for _, de := range m.EdgeOf {
				if de == iso.NoEdge {
					continue
				}
				if _, ok := edgeIdx[de]; !ok {
					storedErr = fmt.Errorf("persist: stored match references edge %d not in the live graph", de)
					return false
				}
			}
			stored = append(stored, storedRef{node: n.ID, m: m})
			return true
		})
	}
	if storedErr != nil {
		return flushed, storedErr
	}

	// Vertex table.
	bw.u32(uint32(len(verts)))
	for _, v := range verts {
		bw.str(g.VertexName(v))
		bw.str(g.Labels().Name(uint32(g.VertexLabel(v))))
	}
	// Edge table in arrival order.
	bw.u32(uint32(len(edges)))
	for _, e := range edges {
		bw.u32(e.src)
		bw.u32(e.dst)
		bw.str(e.typeName)
		bw.i64(e.ts)
	}
	// Stored partial matches.
	bw.u32(uint32(len(stored)))
	for _, s := range stored {
		bw.u32(uint32(s.node))
		bw.u32(uint32(len(s.m.VertexOf)))
		for _, dv := range s.m.VertexOf {
			if dv == graph.NoVertex {
				bw.u32(noIdx)
			} else {
				bw.u32(vertIdx[dv])
			}
		}
		bw.u32(uint32(len(s.m.EdgeOf)))
		for _, de := range s.m.EdgeOf {
			if de == iso.NoEdge {
				bw.u32(noIdx)
			} else {
				bw.u32(edgeIdx[de])
			}
		}
		bw.i64(s.m.MinTS)
		bw.i64(s.m.MaxTS)
	}
	// Lazy bitmap.
	bw.u32(uint32(len(bits)))
	for v, b := range bits {
		bw.u32(vertIdx[v])
		bw.u64(b)
	}
	// Engine counters.
	st := eng.Stats()
	for _, v := range []int64{
		st.EdgesProcessed, st.LeafSearches, st.LeafMatches,
		st.RetroSearches, st.RetroMatches, st.CompleteMatches,
		st.GraphEvicted,
	} {
		bw.i64(v)
	}

	if bw.err != nil {
		return flushed, bw.err
	}
	return flushed, bw.w.Flush()
}

// Load reads a snapshot and returns a restored engine ready to continue
// processing the stream.
func Load(r io.Reader) (*core.Engine, error) {
	br := &reader{r: bufio.NewReader(r)}
	head := make([]byte, len(magic))
	br.bytes(head)
	if br.err == nil && string(head) != magic {
		return nil, fmt.Errorf("persist: bad magic %q", head)
	}
	if v := br.u32(); br.err == nil && v != version {
		return nil, fmt.Errorf("persist: unsupported snapshot version %d", v)
	}

	qText := br.str()
	cfg := core.Config{
		Strategy:            core.Strategy(br.u32()),
		Window:              br.i64(),
		MaxMatchesPerSearch: int(br.u32()),
		MaxWorkPerEdge:      br.i64(),
		MaxStepsPerSearch:   br.i64(),
		EvictEvery:          int(br.u32()),
	}
	nLeaves := br.u32()
	if nLeaves > 0 {
		cfg.Leaves = make([][]int, nLeaves)
		for i := range cfg.Leaves {
			n := br.u32()
			leaf := make([]int, n)
			for j := range leaf {
				leaf[j] = int(br.u32())
			}
			cfg.Leaves[i] = leaf
		}
	}
	if br.err != nil {
		return nil, br.err
	}
	q, err := query.Parse(qText)
	if err != nil {
		return nil, fmt.Errorf("persist: snapshot query: %v", err)
	}
	eng, err := core.New(q, cfg)
	if err != nil {
		return nil, fmt.Errorf("persist: rebuilding engine: %v", err)
	}

	// Vertices.
	g := eng.Graph()
	nVerts := br.u32()
	if br.err != nil {
		return nil, br.err
	}
	vertID := make([]graph.VertexID, nVerts)
	for i := range vertID {
		name := br.str()
		label := br.str()
		if br.err != nil {
			return nil, br.err
		}
		vertID[i] = g.EnsureVertex(name, label)
	}
	// Edges, re-added in the original arrival order.
	nEdges := br.u32()
	if br.err != nil {
		return nil, br.err
	}
	edgeID := make([]graph.EdgeID, nEdges)
	for i := range edgeID {
		src := br.u32()
		dst := br.u32()
		typeName := br.str()
		ts := br.i64()
		if br.err != nil {
			return nil, br.err
		}
		if src >= nVerts || dst >= nVerts {
			return nil, fmt.Errorf("persist: edge %d references vertex out of range", i)
		}
		t := graph.TypeID(g.Types().Intern(typeName))
		edgeID[i] = g.AddEdge(vertID[src], vertID[dst], t, ts)
	}
	// Stored partial matches.
	nStored := br.u32()
	if br.err != nil {
		return nil, br.err
	}
	for i := uint32(0); i < nStored; i++ {
		node := int(br.u32())
		m := iso.NewMatch(q)
		nv := br.u32()
		if br.err == nil && int(nv) != len(m.VertexOf) {
			return nil, fmt.Errorf("persist: match %d has %d vertex slots, query has %d", i, nv, len(m.VertexOf))
		}
		for j := range m.VertexOf {
			if idx := br.u32(); idx != noIdx {
				if idx >= nVerts {
					return nil, fmt.Errorf("persist: match %d binds unknown vertex %d", i, idx)
				}
				m.VertexOf[j] = vertID[idx]
			}
		}
		ne := br.u32()
		if br.err == nil && int(ne) != len(m.EdgeOf) {
			return nil, fmt.Errorf("persist: match %d has %d edge slots, query has %d", i, ne, len(m.EdgeOf))
		}
		for j := range m.EdgeOf {
			if idx := br.u32(); idx != noIdx {
				if idx >= nEdges {
					return nil, fmt.Errorf("persist: match %d binds unknown edge %d", i, idx)
				}
				m.EdgeOf[j] = edgeID[idx]
			}
		}
		m.MinTS = br.i64()
		m.MaxTS = br.i64()
		if br.err != nil {
			return nil, br.err
		}
		if eng.Tree() == nil {
			return nil, fmt.Errorf("persist: snapshot has stored matches but strategy %v builds no tree", cfg.Strategy)
		}
		if err := eng.Tree().RestoreStored(node, m); err != nil {
			return nil, err
		}
	}
	// Lazy bitmap.
	nBits := br.u32()
	if br.err != nil {
		return nil, br.err
	}
	bits := make(map[graph.VertexID]uint64, nBits)
	for i := uint32(0); i < nBits; i++ {
		idx := br.u32()
		b := br.u64()
		if br.err != nil {
			return nil, br.err
		}
		if idx >= nVerts {
			return nil, fmt.Errorf("persist: bitmap references unknown vertex %d", idx)
		}
		bits[vertID[idx]] = b
	}
	eng.RestoreLazyBits(bits)
	// Engine counters. IsoSteps restarts from zero (it is a live matcher
	// counter, not persisted state).
	var st core.Stats
	st.EdgesProcessed = br.i64()
	st.LeafSearches = br.i64()
	st.LeafMatches = br.i64()
	st.RetroSearches = br.i64()
	st.RetroMatches = br.i64()
	st.CompleteMatches = br.i64()
	st.GraphEvicted = br.i64()
	if br.err != nil {
		return nil, br.err
	}
	eng.RestoreStats(st)
	return eng, nil
}

// --- primitive binary IO ---------------------------------------------------

type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) bytes(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

func (w *writer) u32(v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	w.bytes(buf[:])
}

func (w *writer) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.bytes(buf[:])
}

func (w *writer) i64(v int64) { w.u64(uint64(v)) }

func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.bytes([]byte(s))
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) bytes(b []byte) {
	if r.err != nil {
		return
	}
	_, r.err = io.ReadFull(r.r, b)
}

func (r *reader) u32() uint32 {
	var buf [4]byte
	r.bytes(buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

func (r *reader) u64() uint64 {
	var buf [8]byte
	r.bytes(buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

func (r *reader) i64() int64 { return int64(r.u64()) }

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if n > 1<<24 {
		r.err = fmt.Errorf("persist: string length %d exceeds sanity bound", n)
		return ""
	}
	b := make([]byte, n)
	r.bytes(b)
	return string(b)
}
