package persist

import (
	"bufio"
	"fmt"
	"io"

	"streamgraph/internal/core"
	"streamgraph/internal/graph"
	"streamgraph/internal/iso"
	"streamgraph/internal/query"
	"streamgraph/internal/sjtree"
)

// Multi-engine checkpoints. SaveMulti serializes a whole running
// core.MultiEngine — the shared windowed graph, every registered
// query's SJ-Tree tables, lazy bitmap, queued retrospective work and
// counters, plus the shared eviction clock — WITHOUT flushing pending
// lazy work or forcing eviction. That non-flushing property is what
// makes it usable as a live checkpoint: flushing would attribute
// deferred matches to the checkpoint position instead of the stream
// position a serial run reports them at, and forced eviction would
// shift the eviction clock. A LoadMulti'd engine fed the same stream
// suffix emits exactly the matches the original would have.
//
// Two pieces of state are deliberately NOT serialized and must be
// re-applied by the caller, which owns them in every deployment:
//
//   - the replica filter (SetReplicaFilter): the shard worker derives
//     it from its registration footprints, the remote worker from the
//     restore frame's header;
//   - the selectivity collector: decompositions are pinned in each
//     engine's Leaves before registration ever reaches a MultiEngine
//     in the sharded runtime, and the router checkpoint carries the
//     authoritative full-stream collector in its own metadata.

const (
	multiMagic   = "SGSNAPM\n"
	multiVersion = uint32(1)
)

// SaveMulti writes a snapshot of the multi-engine to w. The engine
// must be quiescent (between ProcessEdge/ProcessBatch calls); it is
// not flushed, evicted or otherwise mutated.
func SaveMulti(w io.Writer, m *core.MultiEngine) error {
	bw := &writer{w: bufio.NewWriter(w)}
	bw.bytes([]byte(multiMagic))
	bw.u32(multiVersion)

	bw.i64(m.WindowSize())
	bw.u32(uint32(m.EvictCadence()))
	sinceEvict, edgesSeen, stored := m.EvictClock()
	bw.u32(uint32(sinceEvict))
	bw.i64(edgesSeen)
	bw.i64(stored)

	// Gather the referenced vertex set: endpoints of live edges, every
	// query's match bindings, bitmap entries and queued retro work.
	g := m.Graph()
	vertIdx := make(map[graph.VertexID]uint32)
	var verts []graph.VertexID
	need := func(v graph.VertexID) uint32 {
		if i, ok := vertIdx[v]; ok {
			return i
		}
		i := uint32(len(verts))
		vertIdx[v] = i
		verts = append(verts, v)
		return i
	}

	type edgeRef struct {
		src, dst uint32
		typeName string
		ts       int64
	}
	edgeIdx := make(map[graph.EdgeID]uint32)
	var edges []edgeRef
	g.EachEdgeArrival(func(e graph.Edge) bool {
		edgeIdx[e.ID] = uint32(len(edges))
		edges = append(edges, edgeRef{
			src: need(e.Src), dst: need(e.Dst),
			typeName: g.Types().Name(uint32(e.Type)), ts: e.TS,
		})
		return true
	})

	names := m.Registered()
	type storedRef struct {
		node int
		m    iso.Match
	}
	perStored := make([][]storedRef, len(names))
	perBits := make([]map[graph.VertexID]uint64, len(names))
	perRetro := make([][][]graph.VertexID, len(names))
	for qi, name := range names {
		eng := m.QueryEngine(name)
		perBits[qi] = eng.LazyBits()
		for v := range perBits[qi] {
			need(v)
		}
		perRetro[qi] = eng.PendingRetro()
		for _, vs := range perRetro[qi] {
			for _, v := range vs {
				need(v)
			}
		}
		var storedErr error
		if t := eng.Tree(); t != nil {
			t.EachStored(func(n *sjtree.Node, mt iso.Match) bool {
				for _, dv := range mt.VertexOf {
					if dv != graph.NoVertex {
						need(dv)
					}
				}
				for _, de := range mt.EdgeOf {
					if de == iso.NoEdge {
						continue
					}
					if _, ok := edgeIdx[de]; !ok {
						storedErr = fmt.Errorf("persist: query %q stores a match referencing edge %d not in the live graph", name, de)
						return false
					}
				}
				perStored[qi] = append(perStored[qi], storedRef{node: n.ID, m: mt})
				return true
			})
		}
		if storedErr != nil {
			return storedErr
		}
	}

	// Shared vertex table.
	bw.u32(uint32(len(verts)))
	for _, v := range verts {
		bw.str(g.VertexName(v))
		bw.str(g.Labels().Name(uint32(g.VertexLabel(v))))
	}
	// Shared edge table in arrival order.
	bw.u32(uint32(len(edges)))
	for _, e := range edges {
		bw.u32(e.src)
		bw.u32(e.dst)
		bw.str(e.typeName)
		bw.i64(e.ts)
	}

	// Per-query sections, in registration order.
	bw.u32(uint32(len(names)))
	for qi, name := range names {
		eng := m.QueryEngine(name)
		cfg := eng.ConfigSnapshot()
		bw.str(name)
		bw.str(eng.Query().String())
		bw.u32(uint32(cfg.Strategy))
		bw.u32(uint32(cfg.MaxMatchesPerSearch))
		bw.i64(cfg.MaxWorkPerEdge)
		bw.i64(cfg.MaxStepsPerSearch)
		bw.u32(uint32(cfg.BatchWorkers))
		bw.u32(uint32(len(cfg.Leaves)))
		for _, leaf := range cfg.Leaves {
			bw.u32(uint32(len(leaf)))
			for _, ei := range leaf {
				bw.u32(uint32(ei))
			}
		}
		// Stored partial matches.
		bw.u32(uint32(len(perStored[qi])))
		for _, s := range perStored[qi] {
			bw.u32(uint32(s.node))
			bw.u32(uint32(len(s.m.VertexOf)))
			for _, dv := range s.m.VertexOf {
				if dv == graph.NoVertex {
					bw.u32(noIdx)
				} else {
					bw.u32(vertIdx[dv])
				}
			}
			bw.u32(uint32(len(s.m.EdgeOf)))
			for _, de := range s.m.EdgeOf {
				if de == iso.NoEdge {
					bw.u32(noIdx)
				} else {
					bw.u32(edgeIdx[de])
				}
			}
			bw.i64(s.m.MinTS)
			bw.i64(s.m.MaxTS)
		}
		// Lazy bitmap.
		bw.u32(uint32(len(perBits[qi])))
		for v, b := range perBits[qi] {
			bw.u32(vertIdx[v])
			bw.u64(b)
		}
		// Queued retrospective work, per leaf.
		bw.u32(uint32(len(perRetro[qi])))
		for _, vs := range perRetro[qi] {
			bw.u32(uint32(len(vs)))
			for _, v := range vs {
				bw.u32(vertIdx[v])
			}
		}
		// Engine counters.
		st := eng.Stats()
		for _, v := range []int64{
			st.EdgesProcessed, st.LeafSearches, st.LeafMatches,
			st.RetroSearches, st.RetroMatches, st.CompleteMatches,
			st.GraphEvicted,
		} {
			bw.i64(v)
		}
	}

	if bw.err != nil {
		return bw.err
	}
	return bw.w.Flush()
}

// LoadMulti reads a SaveMulti snapshot and returns a restored
// multi-engine ready to continue the stream. The replica filter is
// universal after load; callers that run filtered replicas must
// re-apply SetReplicaFilter before ingesting.
func LoadMulti(r io.Reader) (*core.MultiEngine, error) {
	br := &reader{r: bufio.NewReader(r)}
	head := make([]byte, len(multiMagic))
	br.bytes(head)
	if br.err == nil && string(head) != multiMagic {
		return nil, fmt.Errorf("persist: bad multi magic %q", head)
	}
	if v := br.u32(); br.err == nil && v != multiVersion {
		return nil, fmt.Errorf("persist: unsupported multi snapshot version %d", v)
	}

	window := br.i64()
	evictEvery := int(br.u32())
	sinceEvict := int(br.u32())
	edgesSeen := br.i64()
	stored := br.i64()
	if br.err != nil {
		return nil, br.err
	}
	m := core.NewMulti(core.MultiConfig{Window: window, EvictEvery: evictEvery})

	// Shared vertices.
	g := m.Graph()
	nVerts := br.u32()
	if br.err != nil {
		return nil, br.err
	}
	vertID := make([]graph.VertexID, nVerts)
	for i := range vertID {
		name := br.str()
		label := br.str()
		if br.err != nil {
			return nil, br.err
		}
		vertID[i] = g.EnsureVertex(name, label)
	}
	// Shared edges, re-added in the original arrival order so the
	// eviction FIFO and relative arrival seqs are preserved.
	nEdges := br.u32()
	if br.err != nil {
		return nil, br.err
	}
	edgeID := make([]graph.EdgeID, nEdges)
	for i := range edgeID {
		src := br.u32()
		dst := br.u32()
		typeName := br.str()
		ts := br.i64()
		if br.err != nil {
			return nil, br.err
		}
		if src >= nVerts || dst >= nVerts {
			return nil, fmt.Errorf("persist: edge %d references vertex out of range", i)
		}
		t := graph.TypeID(g.Types().Intern(typeName))
		edgeID[i] = g.AddEdge(vertID[src], vertID[dst], t, ts)
	}

	nQueries := br.u32()
	if br.err != nil {
		return nil, br.err
	}
	for qi := uint32(0); qi < nQueries; qi++ {
		name := br.str()
		qText := br.str()
		cfg := core.Config{
			Strategy:            core.Strategy(br.u32()),
			MaxMatchesPerSearch: int(br.u32()),
			MaxWorkPerEdge:      br.i64(),
			MaxStepsPerSearch:   br.i64(),
			BatchWorkers:        int(br.u32()),
			EvictEvery:          evictEvery,
		}
		nLeaves := br.u32()
		if br.err != nil {
			return nil, br.err
		}
		if nLeaves > 0 {
			cfg.Leaves = make([][]int, nLeaves)
			for i := range cfg.Leaves {
				n := br.u32()
				leaf := make([]int, n)
				for j := range leaf {
					leaf[j] = int(br.u32())
				}
				cfg.Leaves[i] = leaf
			}
		}
		q, err := query.Parse(qText)
		if err != nil {
			return nil, fmt.Errorf("persist: query %q: %v", name, err)
		}
		if err := m.Register(name, q, cfg); err != nil {
			return nil, fmt.Errorf("persist: re-registering %q: %v", name, err)
		}
		eng := m.QueryEngine(name)

		// Stored partial matches.
		nStored := br.u32()
		if br.err != nil {
			return nil, br.err
		}
		for i := uint32(0); i < nStored; i++ {
			node := int(br.u32())
			mt := iso.NewMatch(q)
			nv := br.u32()
			if br.err == nil && int(nv) != len(mt.VertexOf) {
				return nil, fmt.Errorf("persist: %q match %d has %d vertex slots, query has %d", name, i, nv, len(mt.VertexOf))
			}
			for j := range mt.VertexOf {
				if idx := br.u32(); idx != noIdx {
					if idx >= nVerts {
						return nil, fmt.Errorf("persist: %q match %d binds unknown vertex %d", name, i, idx)
					}
					mt.VertexOf[j] = vertID[idx]
				}
			}
			ne := br.u32()
			if br.err == nil && int(ne) != len(mt.EdgeOf) {
				return nil, fmt.Errorf("persist: %q match %d has %d edge slots, query has %d", name, i, ne, len(mt.EdgeOf))
			}
			for j := range mt.EdgeOf {
				if idx := br.u32(); idx != noIdx {
					if idx >= nEdges {
						return nil, fmt.Errorf("persist: %q match %d binds unknown edge %d", name, i, idx)
					}
					mt.EdgeOf[j] = edgeID[idx]
				}
			}
			mt.MinTS = br.i64()
			mt.MaxTS = br.i64()
			if br.err != nil {
				return nil, br.err
			}
			if eng.Tree() == nil {
				return nil, fmt.Errorf("persist: %q has stored matches but strategy %v builds no tree", name, cfg.Strategy)
			}
			if err := eng.Tree().RestoreStored(node, mt); err != nil {
				return nil, err
			}
		}
		// Lazy bitmap.
		nBits := br.u32()
		if br.err != nil {
			return nil, br.err
		}
		bits := make(map[graph.VertexID]uint64, nBits)
		for i := uint32(0); i < nBits; i++ {
			idx := br.u32()
			b := br.u64()
			if br.err != nil {
				return nil, br.err
			}
			if idx >= nVerts {
				return nil, fmt.Errorf("persist: %q bitmap references unknown vertex %d", name, idx)
			}
			bits[vertID[idx]] = b
		}
		eng.RestoreLazyBits(bits)
		// Queued retrospective work.
		nRetroLeaves := br.u32()
		if br.err != nil {
			return nil, br.err
		}
		if nRetroLeaves > 0 {
			perLeaf := make([][]graph.VertexID, nRetroLeaves)
			for l := range perLeaf {
				n := br.u32()
				if br.err != nil {
					return nil, br.err
				}
				if n == 0 {
					continue
				}
				vs := make([]graph.VertexID, n)
				for j := range vs {
					idx := br.u32()
					if br.err != nil {
						return nil, br.err
					}
					if idx >= nVerts {
						return nil, fmt.Errorf("persist: %q retro queue references unknown vertex %d", name, idx)
					}
					vs[j] = vertID[idx]
				}
				perLeaf[l] = vs
			}
			eng.RestorePendingRetro(perLeaf)
		}
		// Engine counters.
		var st core.Stats
		st.EdgesProcessed = br.i64()
		st.LeafSearches = br.i64()
		st.LeafMatches = br.i64()
		st.RetroSearches = br.i64()
		st.RetroMatches = br.i64()
		st.CompleteMatches = br.i64()
		st.GraphEvicted = br.i64()
		if br.err != nil {
			return nil, br.err
		}
		eng.RestoreStats(st)
	}

	m.RestoreEvictClock(sinceEvict, edgesSeen, stored)
	return m, nil
}
