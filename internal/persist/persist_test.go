package persist

import (
	"bytes"
	"fmt"
	"testing"

	"streamgraph/internal/core"
	"streamgraph/internal/datagen"
	"streamgraph/internal/iso"
	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/stream"
)

func testStream(n int) []stream.Edge {
	return datagen.Netflow(datagen.NetflowConfig{Edges: n, Hosts: 60, Seed: 41})
}

func testQuery(t *testing.T) *query.Graph {
	t.Helper()
	q, err := query.Parse(`
		e a b TCP
		e b c UDP
		e c d ICMP
	`)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func stats(edges []stream.Edge) *selectivity.Collector {
	c := selectivity.NewCollector()
	c.AddAll(edges)
	return c
}

// sig canonicalizes a match by vertex names and edge timestamps so it
// can be compared across engine instances.
func sig(eng *core.Engine, m iso.Match) string {
	g := eng.Graph()
	s := ""
	for qe, de := range m.EdgeOf {
		e, ok := g.Edge(de)
		if !ok {
			continue
		}
		s += fmt.Sprintf("%d:%s>%s@%d;", qe, g.VertexName(e.Src), g.VertexName(e.Dst), e.TS)
	}
	return s
}

func collect(eng *core.Engine, edges []stream.Edge) map[string]bool {
	out := map[string]bool{}
	for _, e := range edges {
		for _, m := range eng.ProcessEdge(e) {
			out[sig(eng, m)] = true
		}
	}
	return out
}

func snapshotRoundTrip(t *testing.T, eng *core.Engine) (*core.Engine, []iso.Match) {
	t.Helper()
	var buf bytes.Buffer
	flushed, err := Save(&buf, eng)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return restored, flushed
}

func TestRestartEquivalenceUnwindowed(t *testing.T) {
	edges := testStream(3000)
	c := stats(edges)
	q := testQuery(t)
	for _, strat := range []core.Strategy{
		core.StrategySingle, core.StrategySingleLazy,
		core.StrategyPath, core.StrategyPathLazy,
	} {
		t.Run(strat.String(), func(t *testing.T) {
			for _, cut := range []int{1, 500, 1500, 2999} {
				cfg := core.Config{Strategy: strat, Stats: c, EvictEvery: 1}

				ref, err := core.New(q, cfg)
				if err != nil {
					t.Fatal(err)
				}
				refPrefix := collect(ref, edges[:cut])
				refSuffix := collect(ref, edges[cut:])

				snap, err := core.New(q, cfg)
				if err != nil {
					t.Fatal(err)
				}
				snapPrefix := collect(snap, edges[:cut])
				if len(snapPrefix) != len(refPrefix) {
					t.Fatalf("cut %d: prefix runs diverged before snapshotting", cut)
				}
				restored, flushed := snapshotRoundTrip(t, snap)
				got := map[string]bool{}
				for _, m := range flushed {
					got[sig(restored, m)] = true // flushed matches share no state; sig uses names+ts
				}
				for s := range collect(restored, edges[cut:]) {
					got[s] = true
				}
				if len(got) != len(refSuffix) {
					t.Fatalf("cut %d: restored found %d suffix matches, reference %d",
						cut, len(got), len(refSuffix))
				}
				for s := range refSuffix {
					if !got[s] {
						t.Fatalf("cut %d: restored engine lost match %q", cut, s)
					}
				}
			}
		})
	}
}

func TestRestartWindowedLosesNothing(t *testing.T) {
	edges := testStream(3000)
	c := stats(edges)
	q := testQuery(t)
	const window = 400
	for _, strat := range []core.Strategy{core.StrategySingleLazy, core.StrategyPathLazy} {
		t.Run(strat.String(), func(t *testing.T) {
			cut := 1500
			cfg := core.Config{Strategy: strat, Stats: c, Window: window, EvictEvery: 1}

			ref, err := core.New(q, cfg)
			if err != nil {
				t.Fatal(err)
			}
			collect(ref, edges[:cut])
			refSuffix := collect(ref, edges[cut:])

			snap, err := core.New(q, cfg)
			if err != nil {
				t.Fatal(err)
			}
			collect(snap, edges[:cut])
			restored, flushed := snapshotRoundTrip(t, snap)
			got := map[string]bool{}
			for _, m := range flushed {
				got[sig(restored, m)] = true
				if m.Span() >= window {
					t.Fatalf("flushed match violates window: span %d", m.Span())
				}
			}
			suffix := edges[cut:]
			for _, e := range suffix {
				for _, m := range restored.ProcessEdge(e) {
					if m.Span() >= window {
						t.Fatalf("restored match violates window: span %d", m.Span())
					}
					got[sig(restored, m)] = true
				}
			}
			// The restored engine must not lose any match the reference
			// run reports. (It may additionally report matches that lie
			// entirely in the past near the snapshot cut — the usual
			// eviction-cadence slack — all window-valid, checked above.)
			for s := range refSuffix {
				if !got[s] {
					t.Fatalf("restored engine lost match %q", s)
				}
			}
		})
	}
}

func TestSnapshotRestoresCountersAndDecomposition(t *testing.T) {
	edges := testStream(1200)
	c := stats(edges)
	q := testQuery(t)
	eng, err := core.New(q, core.Config{Strategy: core.StrategyPathLazy, Stats: c, Window: 300, EvictEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	collect(eng, edges[:800])
	wantLeaves := eng.Tree().LeafSets()

	restored, _ := snapshotRoundTrip(t, eng)
	st, rst := eng.Stats(), restored.Stats()
	if rst.EdgesProcessed != st.EdgesProcessed {
		t.Errorf("EdgesProcessed = %d, want %d", rst.EdgesProcessed, st.EdgesProcessed)
	}
	if rst.CompleteMatches != st.CompleteMatches {
		t.Errorf("CompleteMatches = %d, want %d", rst.CompleteMatches, st.CompleteMatches)
	}
	if rst.Tree.Stored != st.Tree.Stored {
		t.Errorf("Tree.Stored = %d, want %d", rst.Tree.Stored, st.Tree.Stored)
	}
	if eng.Graph().NumEdges() != restored.Graph().NumEdges() {
		t.Errorf("NumEdges = %d, want %d", restored.Graph().NumEdges(), eng.Graph().NumEdges())
	}
	gotLeaves := restored.Tree().LeafSets()
	if len(gotLeaves) != len(wantLeaves) {
		t.Fatalf("leaf count %d, want %d", len(gotLeaves), len(wantLeaves))
	}
	for i := range wantLeaves {
		if len(gotLeaves[i]) != len(wantLeaves[i]) {
			t.Fatalf("leaf %d = %v, want %v", i, gotLeaves[i], wantLeaves[i])
		}
		for j := range wantLeaves[i] {
			if gotLeaves[i][j] != wantLeaves[i][j] {
				t.Fatalf("leaf %d = %v, want %v", i, gotLeaves[i], wantLeaves[i])
			}
		}
	}
}

func TestSnapshotVF2Baseline(t *testing.T) {
	edges := testStream(300)
	q := testQuery(t)
	eng, err := core.New(q, core.Config{Strategy: core.StrategyIncIso})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for s := range collect(eng, edges[:200]) {
		want[s] = true
	}
	restored, flushed := snapshotRoundTrip(t, eng)
	if len(flushed) != 0 {
		t.Fatalf("baseline flush produced %d matches, want 0", len(flushed))
	}
	ref, _ := core.New(q, core.Config{Strategy: core.StrategyIncIso})
	collect(ref, edges[:200])
	refSuffix := collect(ref, edges[200:])
	gotSuffix := collect(restored, edges[200:])
	if len(refSuffix) != len(gotSuffix) {
		t.Fatalf("baseline restored: %d suffix matches, want %d", len(gotSuffix), len(refSuffix))
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	edges := testStream(400)
	c := stats(edges)
	q := testQuery(t)
	eng, err := core.New(q, core.Config{Strategy: core.StrategySingleLazy, Stats: c})
	if err != nil {
		t.Fatal(err)
	}
	collect(eng, edges)
	var buf bytes.Buffer
	if _, err := Save(&buf, eng); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte("NOTSNAP!"), good[8:]...)
		if _, err := Load(bytes.NewReader(bad)); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[8] = 0xFF
		if _, err := Load(bytes.NewReader(bad)); err == nil {
			t.Fatal("bad version accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 4, 8, 20, len(good) / 2, len(good) - 1} {
			if _, err := Load(bytes.NewReader(good[:n])); err == nil {
				t.Fatalf("truncation at %d accepted", n)
			}
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Load(bytes.NewReader(nil)); err == nil {
			t.Fatal("empty input accepted")
		}
	})
}

// TestRestoredTreeExpiresIncrementally pins the snapshot path against
// the hashed, time-indexed match-table layout: RestoreStored must
// rebuild each node's expiry index so that window eviction on the
// restored engine is incremental (a no-expiry pass scans nothing) and
// still evicts exactly the restored matches once they age out.
func TestRestoredTreeExpiresIncrementally(t *testing.T) {
	edges := testStream(2000)
	c := stats(edges)
	q := testQuery(t)
	eng, err := core.New(q, core.Config{
		Strategy: core.StrategySingle, Stats: c, Window: 5000, EvictEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	collect(eng, edges)
	if eng.Tree().StoredMatches() == 0 {
		t.Fatal("test needs live partial matches before the snapshot")
	}

	restored, _ := snapshotRoundTrip(t, eng)
	tree := restored.Tree()
	stored := tree.StoredMatches()
	if stored != eng.Tree().StoredMatches() {
		t.Fatalf("restored %d stored matches, original has %d",
			stored, eng.Tree().StoredMatches())
	}
	// A pass below every restored MinTS must scan no stored match.
	base := tree.Stats().ExpireScanned
	if ev := tree.ExpireBefore(0); ev != 0 {
		t.Fatalf("ExpireBefore(0) evicted %d, want 0", ev)
	}
	if got := tree.Stats().ExpireScanned - base; got != 0 {
		t.Fatalf("no-expiry pass on the restored tree scanned %d matches, want 0", got)
	}
	// A pass beyond every timestamp must drain the restored tables via
	// the rebuilt index.
	last := restored.Graph().LastTS()
	if ev := tree.ExpireBefore(last + 1); ev != stored {
		t.Fatalf("ExpireBefore(max) evicted %d, want all %d restored matches", ev, stored)
	}
	if got := tree.StoredMatches(); got != 0 {
		t.Fatalf("stored = %d after full expiry, want 0", got)
	}
}
