package persist

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"streamgraph/internal/core"
	"streamgraph/internal/query"
)

// portableSig canonicalizes a NamedMatch through ResolveMatch so it
// can be compared across engine instances.
func portableSig(m *core.MultiEngine, nm core.NamedMatch) string {
	bindings, edges := m.ResolveMatch(nm)
	s := nm.Query + "|"
	for _, b := range bindings {
		s += b.QueryVertex + "=" + b.DataVertex + ";"
	}
	for _, e := range edges {
		s += fmt.Sprintf("%d:%s>%s@%d;", e.QueryEdge, e.Src, e.Dst, e.TS)
	}
	return s
}

// TestSaveMultiLiveContinuation checkpoints a live MultiEngine
// mid-stream WITHOUT flushing and verifies the restored engine's
// per-edge match output over the suffix is identical to an
// uninterrupted run — including lazily deferred matches whose
// retrospective repair was queued but not yet drained at the cut, and
// including the engine that was checkpointed (SaveMulti must not
// mutate it).
func TestSaveMultiLiveContinuation(t *testing.T) {
	edges := testStream(2400)
	c := stats(edges)
	q3 := testQuery(t)
	q2, err := query.Parse(`
		e a b TCP
		e b c UDP
	`)
	if err != nil {
		t.Fatal(err)
	}

	for _, cut := range []int{60, 600, 1200, 2399} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			mk := func() *core.MultiEngine {
				m := core.NewMulti(core.MultiConfig{Window: 500, EvictEvery: 16})
				if err := m.Register("q3", q3, core.Config{Strategy: core.StrategySingleLazy, Stats: c}); err != nil {
					t.Fatal(err)
				}
				if err := m.Register("q2", q2, core.Config{Strategy: core.StrategyPathLazy, Stats: c}); err != nil {
					t.Fatal(err)
				}
				return m
			}
			ref, sub := mk(), mk()
			for i, e := range edges[:cut] {
				a, b := ref.ProcessEdge(e), sub.ProcessEdge(e)
				if len(a) != len(b) {
					t.Fatalf("prefix edge %d: runs diverged before snapshotting", i)
				}
			}

			var buf bytes.Buffer
			if err := SaveMulti(&buf, sub); err != nil {
				t.Fatal(err)
			}
			restored, err := LoadMulti(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got := restored.Registered(); len(got) != 2 || got[0] != "q3" || got[1] != "q2" {
				t.Fatalf("restored registrations %v", got)
			}

			// Per-edge multiset comparison: the restored graph's
			// adjacency lists can enumerate neighbors in a different
			// order than the original's eviction-reordered ones, which
			// permutes matches WITHIN one edge's result set without
			// changing the set — the same multiset ≡ serial bar the
			// sharded runtime holds.
			sigs := func(m *core.MultiEngine, nms []core.NamedMatch) []string {
				out := make([]string, len(nms))
				for j, nm := range nms {
					out[j] = portableSig(m, nm)
				}
				sort.Strings(out)
				return out
			}
			for i, e := range edges[cut:] {
				want := sigs(ref, ref.ProcessEdge(e))
				gotSub := sigs(sub, sub.ProcessEdge(e))
				gotRes := sigs(restored, restored.ProcessEdge(e))
				if len(gotSub) != len(want) || len(gotRes) != len(want) {
					t.Fatalf("suffix edge %d: %d matches from reference, %d from checkpointed, %d from restored",
						i, len(want), len(gotSub), len(gotRes))
				}
				for j := range want {
					if gotSub[j] != want[j] {
						t.Fatalf("suffix edge %d match %d: checkpointed engine diverged:\n  want %s\n  got  %s", i, j, want[j], gotSub[j])
					}
					if gotRes[j] != want[j] {
						t.Fatalf("suffix edge %d match %d: restored engine diverged:\n  want %s\n  got  %s", i, j, want[j], gotRes[j])
					}
				}
			}
		})
	}
}

// TestLoadMultiRejectsCorrupt sanity-checks the validation paths.
func TestLoadMultiRejectsCorrupt(t *testing.T) {
	m := core.NewMulti(core.MultiConfig{Window: 100})
	if err := m.Register("q", testQuery(t), core.Config{Strategy: core.StrategySingleLazy, Stats: stats(testStream(100))}); err != nil {
		t.Fatal(err)
	}
	for _, e := range testStream(200) {
		m.ProcessEdge(e)
	}
	var buf bytes.Buffer
	if err := SaveMulti(&buf, m); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := LoadMulti(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated snapshot loaded without error")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := LoadMulti(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic loaded without error")
	}
}
