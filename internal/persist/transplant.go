package persist

import (
	"bytes"
	"fmt"

	"streamgraph/internal/core"
	"streamgraph/internal/graph"
	"streamgraph/internal/iso"
	"streamgraph/internal/sjtree"
)

// Live-migration state transfer. A standing query moving between shard
// slots must carry its partial-match state — the SJ-Tree stored
// matches, the lazy bitmap, the queued retrospective work and the
// counters — or the target would silently drop every match spanning
// the handoff. TransplantState moves exactly that state between two
// engines that both have the query registered; CloneQuery/ExtractQuery
// package one query (state plus the minimal graph slice its stored
// matches reference) into a standalone engine or a SaveMulti image for
// the wire crossing.
//
// Like SaveMulti, none of these flush pending lazy work: the
// transplanted retro queue drains on the target at its next batch or
// control point, exactly as a restored checkpoint's does — the same
// schedule argument the crash-recovery differential tests pin.
//
// Edge identity crosses engines by content (src, dst, type, ts
// resolved to names). Duplicate edges with identical content are
// resolved injectively in arrival order, so two distinct source edges
// never collapse onto one target edge (which would corrupt the
// SJ-Tree's dedup tables). A stored match referencing an edge the
// target graph does not hold is dropped: the target evicted (or never
// replicated) that edge because it is outside the window, and the
// join-time τ(g) < tW check makes such a partial unable to ever
// complete — dropping it is invisible to the match multiset.

// edgeKey is content-based edge identity across engines.
type edgeKey struct {
	src, dst, typ string
	ts            int64
}

// TransplantState moves query name's live state from src into dst.
// The query must be registered in both engines with the same
// decomposition (the migration path registers the target from the
// source's ConfigSnapshot, which pins it). The source engine is not
// mutated. Returns the number of stored partial matches dropped
// because the target graph no longer holds a referenced edge.
func TransplantState(dst, src *core.MultiEngine, name string) (dropped int, err error) {
	seng := src.QueryEngine(name)
	if seng == nil {
		return 0, fmt.Errorf("persist: transplant source does not hold query %q", name)
	}
	deng := dst.QueryEngine(name)
	if deng == nil {
		return 0, fmt.Errorf("persist: transplant target does not hold query %q", name)
	}
	sg, dg := src.Graph(), dst.Graph()

	// Collect the source edge IDs the stored matches reference.
	referenced := make(map[graph.EdgeID]bool)
	if t := seng.Tree(); t != nil {
		t.EachStored(func(_ *sjtree.Node, mt iso.Match) bool {
			for _, de := range mt.EdgeOf {
				if de != iso.NoEdge {
					referenced[de] = true
				}
			}
			return true
		})
	}

	// Resolve them against the target graph: per content key, target
	// candidates in arrival order, consumed injectively by referenced
	// source edges in source arrival order.
	var resolved map[graph.EdgeID]graph.EdgeID
	if len(referenced) > 0 {
		candidates := make(map[edgeKey][]graph.EdgeID)
		dg.EachEdgeArrival(func(e graph.Edge) bool {
			k := edgeKey{
				src: dg.VertexName(e.Src), dst: dg.VertexName(e.Dst),
				typ: dg.Types().Name(uint32(e.Type)), ts: e.TS,
			}
			candidates[k] = append(candidates[k], e.ID)
			return true
		})
		resolved = make(map[graph.EdgeID]graph.EdgeID, len(referenced))
		sg.EachEdgeArrival(func(e graph.Edge) bool {
			if !referenced[e.ID] {
				return true
			}
			k := edgeKey{
				src: sg.VertexName(e.Src), dst: sg.VertexName(e.Dst),
				typ: sg.Types().Name(uint32(e.Type)), ts: e.TS,
			}
			if ids := candidates[k]; len(ids) > 0 {
				resolved[e.ID] = ids[0]
				candidates[k] = ids[1:]
			}
			return true
		})
	}

	// Vertices cross by name; EnsureVertex creates the ones the target
	// graph has not seen (bitmap/retro entries may outlive every edge).
	vcache := make(map[graph.VertexID]graph.VertexID)
	mapVertex := func(v graph.VertexID) graph.VertexID {
		if dv, ok := vcache[v]; ok {
			return dv
		}
		dv := dg.EnsureVertex(sg.VertexName(v), sg.Labels().Name(uint32(sg.VertexLabel(v))))
		vcache[v] = dv
		return dv
	}

	// Stored partial matches.
	var restoreErr error
	if t := seng.Tree(); t != nil {
		dt := deng.Tree()
		if dt == nil {
			return 0, fmt.Errorf("persist: transplant target for %q has no tree (decomposition mismatch)", name)
		}
		t.EachStored(func(n *sjtree.Node, mt iso.Match) bool {
			out := iso.NewMatch(seng.Query())
			for i, dv := range mt.VertexOf {
				if dv != graph.NoVertex {
					out.VertexOf[i] = mapVertex(dv)
				}
			}
			for i, de := range mt.EdgeOf {
				if de == iso.NoEdge {
					continue
				}
				mapped, ok := resolved[de]
				if !ok {
					dropped++
					return true
				}
				out.EdgeOf[i] = mapped
			}
			out.MinTS, out.MaxTS = mt.MinTS, mt.MaxTS
			if err := dt.RestoreStored(n.ID, out); err != nil {
				restoreErr = err
				return false
			}
			return true
		})
	}
	if restoreErr != nil {
		return dropped, restoreErr
	}

	// Lazy bitmap and queued retrospective work.
	if bits := seng.LazyBits(); len(bits) > 0 {
		mapped := make(map[graph.VertexID]uint64, len(bits))
		for v, b := range bits {
			mapped[mapVertex(v)] = b
		}
		deng.RestoreLazyBits(mapped)
	}
	if retro := seng.PendingRetro(); len(retro) > 0 {
		perLeaf := make([][]graph.VertexID, len(retro))
		for l, vs := range retro {
			if len(vs) == 0 {
				continue
			}
			mapped := make([]graph.VertexID, len(vs))
			for j, v := range vs {
				mapped[j] = mapVertex(v)
			}
			perLeaf[l] = mapped
		}
		deng.RestorePendingRetro(perLeaf)
	}
	deng.RestoreStats(seng.Stats())
	return dropped, nil
}

// CloneQuery packages one query as a standalone engine: a fresh
// MultiEngine holding only the edges the query's stored matches
// reference, the query registered from its source ConfigSnapshot
// (decomposition pinned), and the live state transplanted in. The
// clone is what crosses a local migration handoff; ExtractQuery
// serializes it for the remote one.
func CloneQuery(src *core.MultiEngine, name string) (*core.MultiEngine, error) {
	seng := src.QueryEngine(name)
	if seng == nil {
		return nil, fmt.Errorf("persist: clone source does not hold query %q", name)
	}
	tmp := core.NewMulti(core.MultiConfig{Window: src.WindowSize(), EvictEvery: src.EvictCadence()})

	// Seed the clone graph with exactly the referenced edges, in source
	// arrival order, so TransplantState resolves every stored match.
	referenced := make(map[graph.EdgeID]bool)
	if t := seng.Tree(); t != nil {
		t.EachStored(func(_ *sjtree.Node, mt iso.Match) bool {
			for _, de := range mt.EdgeOf {
				if de != iso.NoEdge {
					referenced[de] = true
				}
			}
			return true
		})
	}
	sg, tg := src.Graph(), tmp.Graph()
	sg.EachEdgeArrival(func(e graph.Edge) bool {
		if !referenced[e.ID] {
			return true
		}
		sv := tg.EnsureVertex(sg.VertexName(e.Src), sg.Labels().Name(uint32(sg.VertexLabel(e.Src))))
		dv := tg.EnsureVertex(sg.VertexName(e.Dst), sg.Labels().Name(uint32(sg.VertexLabel(e.Dst))))
		tg.AddEdge(sv, dv, graph.TypeID(tg.Types().Intern(sg.Types().Name(uint32(e.Type)))), e.TS)
		return true
	})

	cfg := seng.ConfigSnapshot()
	cfg.EvictEvery = src.EvictCadence()
	if err := tmp.Register(name, seng.Query(), cfg); err != nil {
		return nil, fmt.Errorf("persist: clone of %q: %w", name, err)
	}
	if _, err := TransplantState(tmp, src, name); err != nil {
		return nil, err
	}
	return tmp, nil
}

// ExtractQuery packages one query's migration state as a SaveMulti
// image of its CloneQuery engine — the wire form a remote register
// frame carries in its State field.
func ExtractQuery(src *core.MultiEngine, name string) ([]byte, error) {
	clone, err := CloneQuery(src, name)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := SaveMulti(&buf, clone); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
