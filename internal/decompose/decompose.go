// Package decompose implements the automatic SJ-Tree generation of
// Choudhury et al. (EDBT 2015, Section 5): the greedy BUILD-SJ-TREE
// procedure (Algorithm 4) that repeatedly removes the most selective
// primitive (1-edge subgraph or 2-edge path) touching the current
// frontier, the two decomposition strategies of Section 5.2, automatic
// strategy selection via Relative Selectivity (Section 6.5), and the
// ASCII on-disk format for decompositions (Section 6.1).
package decompose

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
)

// Kind selects the primitive set used by the decomposition.
type Kind int

const (
	// Single decomposes the query into 1-edge subgraphs.
	Single Kind = iota
	// Path decomposes into 2-edge paths, with 1-edge leaves for any
	// leftover isolated edges (the paper's "2-edge decomposition").
	Path
)

// String renders the decomposition kind ("single" or "path").
func (k Kind) String() string {
	if k == Path {
		return "path"
	}
	return "single"
}

// SingleDecompose orders the query's edges by ascending 1-edge
// selectivity under Algorithm 4's frontier discipline: the most
// selective edge first, then always the most selective remaining edge
// incident to an already-chosen vertex.
func SingleDecompose(q *query.Graph, src selectivity.Source) ([][]int, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	remaining := make(map[int]bool, len(q.Edges))
	for i := range q.Edges {
		remaining[i] = true
	}
	frontier := make(map[int]bool)
	var leaves [][]int
	for len(remaining) > 0 {
		best, bestSel := -1, 0.0
		// Prefer frontier-incident edges; fall back to any edge when the
		// frontier cannot be extended (disconnected query).
		for pass := 0; pass < 2 && best < 0; pass++ {
			for _, ei := range sortedKeys(remaining) {
				e := q.Edges[ei]
				if pass == 0 && len(frontier) > 0 && !frontier[e.Src] && !frontier[e.Dst] {
					continue
				}
				s := src.EdgeSelectivity(e.Type)
				if best < 0 || s < bestSel {
					best, bestSel = ei, s
				}
			}
		}
		delete(remaining, best)
		frontier[q.Edges[best].Src] = true
		frontier[q.Edges[best].Dst] = true
		leaves = append(leaves, []int{best})
	}
	return leaves, nil
}

// PathDecompose decomposes the query into 2-edge paths ordered by
// ascending 2-edge path selectivity under the frontier discipline, with
// 1-edge leaves for leftover isolated edges. Following Section 6.4, if
// the query contains a 2-edge path never observed in the statistics the
// decomposition falls back to the single-edge strategy; fellBack
// reports when that happened.
func PathDecompose(q *query.Graph, src selectivity.Source) (leaves [][]int, fellBack bool, err error) {
	if err := q.Validate(); err != nil {
		return nil, false, err
	}
	remaining := make(map[int]bool, len(q.Edges))
	for i := range q.Edges {
		remaining[i] = true
	}
	frontier := make(map[int]bool)
	for len(remaining) > 0 {
		pair, found, unseenOnly := bestPair(q, src, remaining, frontier)
		if unseenOnly {
			// Every available 2-edge primitive is a path shape never
			// observed in the stream: resort to the single-edge
			// decomposition (Section 6.4).
			single, err := SingleDecompose(q, src)
			return single, true, err
		}
		if !found {
			// No pair left (isolated edges): emit 1-edge leaves by
			// ascending edge selectivity, frontier-first.
			rest, err := singleRest(q, src, remaining, frontier)
			if err != nil {
				return nil, false, err
			}
			leaves = append(leaves, rest...)
			return leaves, false, nil
		}
		leaves = append(leaves, []int{pair[0], pair[1]})
		for _, ei := range pair {
			delete(remaining, ei)
			frontier[q.Edges[ei].Src] = true
			frontier[q.Edges[ei].Dst] = true
		}
	}
	return leaves, false, nil
}

// bestPair finds the minimum-selectivity *observed* 2-edge path among
// the remaining edges, honoring the frontier constraint when possible.
// unseenOnly reports that pairs exist but every one of them is a shape
// never observed in the statistics.
func bestPair(q *query.Graph, src selectivity.Source, remaining, frontier map[int]bool) (pair [2]int, found, unseenOnly bool) {
	keys := sortedKeys(remaining)
	best := [2]int{-1, -1}
	bestSel := 0.0
	anyPair := false
	consider := func(i, j int) {
		anyPair = true
		s, err := selectivity.LeafSelectivityOf(src, q, []int{i, j})
		if err != nil || s == 0 {
			return
		}
		if best[0] < 0 || s < bestSel {
			best = [2]int{i, j}
			bestSel = s
		}
	}
	for pass := 0; pass < 2 && best[0] < 0; pass++ {
		for a := 0; a < len(keys); a++ {
			for b := a + 1; b < len(keys); b++ {
				i, j := keys[a], keys[b]
				if !sharesExactlyOneVertex(q.Edges[i], q.Edges[j]) {
					continue
				}
				if pass == 0 && len(frontier) > 0 && !touchesFrontier(q, frontier, i, j) {
					continue
				}
				consider(i, j)
			}
		}
	}
	if best[0] < 0 {
		return pair, false, anyPair
	}
	return best, true, false
}

func singleRest(q *query.Graph, src selectivity.Source, remaining, frontier map[int]bool) ([][]int, error) {
	var leaves [][]int
	for len(remaining) > 0 {
		best, bestSel := -1, 0.0
		for pass := 0; pass < 2 && best < 0; pass++ {
			for _, ei := range sortedKeys(remaining) {
				e := q.Edges[ei]
				if pass == 0 && len(frontier) > 0 && !frontier[e.Src] && !frontier[e.Dst] {
					continue
				}
				if s := src.EdgeSelectivity(e.Type); best < 0 || s < bestSel {
					best, bestSel = ei, s
				}
			}
		}
		delete(remaining, best)
		frontier[q.Edges[best].Src] = true
		frontier[q.Edges[best].Dst] = true
		leaves = append(leaves, []int{best})
	}
	return leaves, nil
}

func sharesExactlyOneVertex(a, b query.Edge) bool {
	shared := 0
	for _, v := range []int{a.Src, a.Dst} {
		if v == b.Src || v == b.Dst {
			shared++
		}
	}
	return shared == 1
}

func touchesFrontier(q *query.Graph, frontier map[int]bool, edges ...int) bool {
	for _, ei := range edges {
		if frontier[q.Edges[ei].Src] || frontier[q.Edges[ei].Dst] {
			return true
		}
	}
	return false
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Auto computes both decompositions and applies the Section 6.5 rule:
// when ξ(T_path, T_single) < selectivity.DefaultRelSelThreshold the path
// decomposition is chosen, otherwise the single-edge decomposition. It
// returns the chosen leaves, the kind chosen, and ξ (0 when Ŝ(T1)=0).
func Auto(q *query.Graph, src selectivity.Source) (leaves [][]int, kind Kind, xi float64, err error) {
	single, err := SingleDecompose(q, src)
	if err != nil {
		return nil, Single, 0, err
	}
	path, fellBack, err := PathDecompose(q, src)
	if err != nil {
		return nil, Single, 0, err
	}
	if fellBack {
		return single, Single, 1, nil
	}
	xi, ok, err := selectivity.RelativeSelectivityOf(src, q, path, single)
	if err != nil {
		return nil, Single, 0, err
	}
	if ok && selectivity.PreferPathDecomposition(xi) {
		return path, Path, xi, nil
	}
	return single, Single, xi, nil
}

// Footprint returns the edge-type footprint of a decomposition: the
// sorted distinct set of edge types the SJ-Tree built from leaves can
// ever join on, plus whether the footprint is exact (see
// query.Graph.TypeFootprint; wildcard-typed edges make it inexact).
// Because every valid decomposition covers every query edge, the
// footprint of any decomposition of q equals the query's own — the
// property the sharded runtime relies on when it stores, per shard,
// only the edges routable to the shard's queries. An error is returned
// if leaves reference an edge index out of range or fail to cover the
// query, since a partial SJ-Tree's footprint would not be the query's.
func Footprint(q *query.Graph, leaves [][]int) (types []string, exact bool, err error) {
	covered := make([]bool, len(q.Edges))
	for _, leaf := range leaves {
		for _, ei := range leaf {
			if ei < 0 || ei >= len(q.Edges) {
				return nil, false, fmt.Errorf("decompose: leaf edge index %d out of range", ei)
			}
			covered[ei] = true
		}
	}
	for ei, ok := range covered {
		if !ok {
			return nil, false, fmt.Errorf("decompose: query edge %d not covered by any leaf", ei)
		}
	}
	types, exact = q.TypeFootprint()
	return types, exact, nil
}

// Decompose dispatches on kind.
func Decompose(q *query.Graph, src selectivity.Source, kind Kind) ([][]int, error) {
	switch kind {
	case Single:
		return SingleDecompose(q, src)
	case Path:
		leaves, _, err := PathDecompose(q, src)
		return leaves, err
	default:
		return nil, fmt.Errorf("decompose: unknown kind %d", int(kind))
	}
}

// Format renders a decomposition as the ASCII SJ-Tree file written
// between the paper's query-decomposition and query-processing steps:
//
//	query {
//	v v0 ip
//	e v0 v1 TCP
//	}
//	window 1000
//	leaf 0 1
//	leaf 2
func Format(q *query.Graph, leaves [][]int, window int64) string {
	var b strings.Builder
	b.WriteString("query {\n")
	b.WriteString(q.String())
	b.WriteString("}\n")
	fmt.Fprintf(&b, "window %d\n", window)
	for _, leaf := range leaves {
		b.WriteString("leaf")
		for _, ei := range leaf {
			fmt.Fprintf(&b, " %d", ei)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ParseFile parses the Format representation back into its parts.
func ParseFile(text string) (q *query.Graph, leaves [][]int, window int64, err error) {
	lines := strings.Split(text, "\n")
	var queryLines []string
	inQuery := false
	for ln, raw := range lines {
		line := strings.TrimSpace(raw)
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case line == "query {":
			inQuery = true
		case line == "}":
			inQuery = false
		case inQuery:
			queryLines = append(queryLines, line)
		case strings.HasPrefix(line, "window "):
			window, err = strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(line, "window ")), 10, 64)
			if err != nil {
				return nil, nil, 0, fmt.Errorf("decompose: line %d: bad window: %v", ln+1, err)
			}
		case strings.HasPrefix(line, "leaf"):
			var leaf []int
			for _, f := range strings.Fields(line)[1:] {
				ei, err := strconv.Atoi(f)
				if err != nil {
					return nil, nil, 0, fmt.Errorf("decompose: line %d: bad leaf index %q", ln+1, f)
				}
				leaf = append(leaf, ei)
			}
			if len(leaf) == 0 {
				return nil, nil, 0, fmt.Errorf("decompose: line %d: empty leaf", ln+1)
			}
			leaves = append(leaves, leaf)
		default:
			return nil, nil, 0, fmt.Errorf("decompose: line %d: unrecognized record %q", ln+1, line)
		}
	}
	if len(queryLines) == 0 {
		return nil, nil, 0, fmt.Errorf("decompose: missing query block")
	}
	q, err = query.Parse(strings.Join(queryLines, "\n"))
	if err != nil {
		return nil, nil, 0, err
	}
	return q, leaves, window, nil
}
