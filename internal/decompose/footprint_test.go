package decompose

import (
	"reflect"
	"testing"

	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
)

func TestFootprintMatchesQueryTypes(t *testing.T) {
	q := query.NewPath(query.Wildcard, "GRE", "TCP", "GRE")
	stats := selectivity.NewCollector()
	leaves, err := SingleDecompose(q, stats)
	if err != nil {
		t.Fatal(err)
	}
	types, exact, err := Footprint(q, leaves)
	if err != nil {
		t.Fatal(err)
	}
	if !exact {
		t.Fatal("typed query must have an exact footprint")
	}
	if want := []string{"GRE", "TCP"}; !reflect.DeepEqual(types, want) {
		t.Fatalf("footprint = %v, want %v", types, want)
	}
	// The path decomposition of the same query has the same footprint.
	pleaves, _, err := PathDecompose(q, stats)
	if err != nil {
		t.Fatal(err)
	}
	ptypes, pexact, err := Footprint(q, pleaves)
	if err != nil {
		t.Fatal(err)
	}
	if !pexact || !reflect.DeepEqual(ptypes, types) {
		t.Fatalf("path footprint %v (exact=%v) differs from single %v", ptypes, pexact, types)
	}
}

func TestFootprintWildcardTypeInexact(t *testing.T) {
	q := query.NewPath(query.Wildcard, "TCP", query.Wildcard)
	types, exact := q.TypeFootprint()
	if exact {
		t.Fatal("wildcard edge type must make the footprint inexact")
	}
	if want := []string{"TCP"}; !reflect.DeepEqual(types, want) {
		t.Fatalf("footprint = %v, want %v", types, want)
	}
}

func TestFootprintRejectsPartialCover(t *testing.T) {
	q := query.NewPath(query.Wildcard, "TCP", "UDP")
	if _, _, err := Footprint(q, [][]int{{0}}); err == nil {
		t.Fatal("uncovered query edge must be rejected")
	}
	if _, _, err := Footprint(q, [][]int{{0}, {7}}); err == nil {
		t.Fatal("out-of-range leaf index must be rejected")
	}
}
