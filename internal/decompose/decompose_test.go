package decompose

import (
	"reflect"
	"testing"

	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/stream"
)

// trainedCollector returns statistics where rare < mid < common in
// 1-edge frequency, and the (rare,mid) 2-edge path is the rarest pair.
func trainedCollector() *selectivity.Collector {
	c := selectivity.NewCollector()
	add := func(src, dst, t string, ts int64) {
		c.Add(stream.Edge{Src: src, SrcLabel: "ip", Dst: dst, DstLabel: "ip", Type: t, TS: ts})
	}
	// common: 8 edges, mid: 3, rare: 1, chained so 2-paths exist.
	for i := 0; i < 8; i++ {
		add("h", vn(i), "common", int64(i))
	}
	add("a", "h", "mid", 20)
	add("h", "b", "mid", 21)
	add("b", "c", "mid", 22)
	add("c", "d", "rare", 30)
	return c
}

func vn(i int) string { return string(rune('p' + i)) }

func TestSingleDecomposeOrdersBySelectivity(t *testing.T) {
	c := trainedCollector()
	// Path: v0 -common-> v1 -mid-> v2 -rare-> v3
	q := query.NewPath(query.Wildcard, "common", "mid", "rare")
	leaves, err := SingleDecompose(q, c)
	if err != nil {
		t.Fatal(err)
	}
	// rare (edge 2) first; then frontier forces mid (edge 1), then common.
	want := [][]int{{2}, {1}, {0}}
	if !reflect.DeepEqual(leaves, want) {
		t.Fatalf("leaves = %v, want %v", leaves, want)
	}
}

func TestSingleDecomposeFrontierConstraint(t *testing.T) {
	c := trainedCollector()
	// Star: center v0 with three outgoing edges; after picking rare, the
	// frontier includes v0 so any edge qualifies; next by selectivity.
	q := &query.Graph{
		Vertices: []query.Vertex{
			{Name: "c", Label: "*"}, {Name: "x", Label: "*"},
			{Name: "y", Label: "*"}, {Name: "z", Label: "*"},
		},
		Edges: []query.Edge{
			{Src: 0, Dst: 1, Type: "common"},
			{Src: 0, Dst: 2, Type: "rare"},
			{Src: 0, Dst: 3, Type: "mid"},
		},
	}
	leaves, err := SingleDecompose(q, c)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{1}, {2}, {0}}
	if !reflect.DeepEqual(leaves, want) {
		t.Fatalf("leaves = %v, want %v", leaves, want)
	}
}

func TestPathDecomposePairsAndLeftover(t *testing.T) {
	c := trainedCollector()
	// 3-edge path: one 2-edge pair + one single leftover.
	q := query.NewPath(query.Wildcard, "common", "mid", "rare")
	leaves, fellBack, err := PathDecompose(q, c)
	if err != nil {
		t.Fatal(err)
	}
	if fellBack {
		t.Fatalf("unexpected fallback")
	}
	if len(leaves) != 2 {
		t.Fatalf("leaves = %v, want 2 leaves", leaves)
	}
	// The most selective pair is (mid,rare) = edges {1,2}.
	if !reflect.DeepEqual(leaves[0], []int{1, 2}) {
		t.Fatalf("first leaf = %v, want [1 2]", leaves[0])
	}
	if !reflect.DeepEqual(leaves[1], []int{0}) {
		t.Fatalf("second leaf = %v, want [0]", leaves[1])
	}
}

func TestPathDecomposeEvenEdges(t *testing.T) {
	c := trainedCollector()
	// v0 -common-> v1 -mid-> v2 -mid-> v3 -common-> v4. The (mid,mid)
	// pair is the rarest observed pair; picking it strands edges 0 and 3
	// (no shared vertex), which become 1-edge leaves — the paper's
	// "2 isolated edges" case of Section 5.2.
	q := query.NewPath(query.Wildcard, "common", "mid", "mid", "common")
	leaves, fellBack, err := PathDecompose(q, c)
	if err != nil || fellBack {
		t.Fatalf("err=%v fellBack=%v", err, fellBack)
	}
	if len(leaves) != 3 {
		t.Fatalf("leaves = %v, want [[1 2] [0] [3]]", leaves)
	}
	if !reflect.DeepEqual(leaves[0], []int{1, 2}) {
		t.Fatalf("first leaf = %v, want [1 2]", leaves[0])
	}
	// All edges covered exactly once.
	seen := map[int]bool{}
	for _, leaf := range leaves {
		for _, e := range leaf {
			if seen[e] {
				t.Fatalf("edge %d in two leaves: %v", e, leaves)
			}
			seen[e] = true
		}
	}
	if len(seen) != 4 {
		t.Fatalf("not all edges covered: %v", leaves)
	}
}

func TestPathDecomposeFallbackOnUnseenPair(t *testing.T) {
	c := selectivity.NewCollector()
	// Only isolated 'a' edges: the (a,a) 2-path is never observed.
	c.Add(stream.Edge{Src: "x", SrcLabel: "ip", Dst: "y", DstLabel: "ip", Type: "a", TS: 1})
	c.Add(stream.Edge{Src: "p", SrcLabel: "ip", Dst: "q", DstLabel: "ip", Type: "a", TS: 2})
	q := query.NewPath(query.Wildcard, "a", "a")
	leaves, fellBack, err := PathDecompose(q, c)
	if err != nil {
		t.Fatal(err)
	}
	if !fellBack {
		t.Fatalf("expected fallback to single-edge decomposition")
	}
	if len(leaves) != 2 || len(leaves[0]) != 1 {
		t.Fatalf("fallback leaves = %v", leaves)
	}
}

func TestDecomposeSingleEdgeQuery(t *testing.T) {
	c := trainedCollector()
	q := query.NewPath(query.Wildcard, "mid")
	single, err := SingleDecompose(q, c)
	if err != nil || len(single) != 1 {
		t.Fatalf("single: %v err=%v", single, err)
	}
	path, fellBack, err := PathDecompose(q, c)
	if err != nil || fellBack || len(path) != 1 {
		t.Fatalf("path: %v fellBack=%v err=%v", path, fellBack, err)
	}
}

func TestAutoRule(t *testing.T) {
	c := trainedCollector()
	q := query.NewPath(query.Wildcard, "common", "mid", "rare")
	leaves, kind, xi, err := Auto(q, c)
	if err != nil {
		t.Fatal(err)
	}
	if xi <= 0 {
		t.Fatalf("xi = %v", xi)
	}
	wantPath := selectivity.PreferPathDecomposition(xi)
	if wantPath && kind != Path {
		t.Fatalf("rule says path, got %v", kind)
	}
	if !wantPath && kind != Single {
		t.Fatalf("rule says single, got %v", kind)
	}
	if len(leaves) == 0 {
		t.Fatalf("no leaves")
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	q := query.NewPath("ip", "ESP", "TCP", "ICMP", "GRE")
	leaves := [][]int{{1, 0}, {2, 3}}
	text := Format(q, leaves, 5000)
	q2, leaves2, window, err := ParseFile(text)
	if err != nil {
		t.Fatal(err)
	}
	if window != 5000 {
		t.Fatalf("window = %d", window)
	}
	if !reflect.DeepEqual(leaves, leaves2) {
		t.Fatalf("leaves = %v, want %v", leaves2, leaves)
	}
	if len(q2.Edges) != len(q.Edges) || len(q2.Vertices) != len(q.Vertices) {
		t.Fatalf("query round-trip mismatch: %v", q2)
	}
	for i := range q.Edges {
		if q.Edges[i].Type != q2.Edges[i].Type {
			t.Fatalf("edge %d type %q vs %q", i, q.Edges[i].Type, q2.Edges[i].Type)
		}
	}
}

func TestParseFileErrors(t *testing.T) {
	bad := []string{
		"",                                      // no query
		"leaf 0",                                // no query block
		"query {\ne a b t\n}\nwindow x\nleaf 0", // bad window
		"query {\ne a b t\n}\nleaf zero",        // bad leaf index
		"query {\ne a b t\n}\nleaf",             // empty leaf
		"query {\ne a b t\n}\nbogus line",       // unknown record
	}
	for i, text := range bad {
		if _, _, _, err := ParseFile(text); err == nil {
			t.Errorf("case %d: ParseFile accepted %q", i, text)
		}
	}
}

func TestDecomposeDispatch(t *testing.T) {
	c := trainedCollector()
	q := query.NewPath(query.Wildcard, "mid", "rare")
	s, err := Decompose(q, c, Single)
	if err != nil || len(s) != 2 {
		t.Fatalf("single dispatch: %v %v", s, err)
	}
	p, err := Decompose(q, c, Path)
	if err != nil || len(p) != 1 {
		t.Fatalf("path dispatch: %v %v", p, err)
	}
	if _, err := Decompose(q, c, Kind(99)); err == nil {
		t.Fatalf("unknown kind accepted")
	}
	if Single.String() != "single" || Path.String() != "path" {
		t.Errorf("Kind strings: %v %v", Single, Path)
	}
}
