package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickMutationInvariants drives random add/remove/expire sequences
// from a seed and verifies the structural invariants hold throughout:
// NumEdges equals the number of live edges, every live edge appears in
// exactly one out-slot and one in-slot, and degree sums match.
func TestQuickMutationInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		const nv = 8
		for i := 0; i < nv; i++ {
			g.EnsureVertex(string(rune('a'+i)), "ip")
		}
		tp := TypeID(g.Types().Intern("t"))
		var live []EdgeID
		ts := int64(0)
		for step := 0; step < 200; step++ {
			switch op := rng.Intn(10); {
			case op < 6 || len(live) == 0:
				s, d := VertexID(rng.Intn(nv)), VertexID(rng.Intn(nv))
				if s == d {
					continue
				}
				ts++
				live = append(live, g.AddEdge(s, d, tp, ts))
			case op < 9:
				i := rng.Intn(len(live))
				g.RemoveEdge(live[i])
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			default:
				cutoff := ts - int64(rng.Intn(20))
				g.ExpireBefore(cutoff)
				var kept []EdgeID
				for _, id := range live {
					if _, ok := g.Edge(id); ok {
						kept = append(kept, id)
					}
				}
				live = kept
			}
		}
		if g.NumEdges() != len(live) {
			return false
		}
		ok := true
		g.EachEdge(func(e Edge) bool {
			found := 0
			g.EachOut(e.Src, func(h Half) bool {
				if h.ID == e.ID {
					found++
				}
				return true
			})
			if found != 1 {
				ok = false
				return false
			}
			return true
		})
		totalOut := 0
		g.EachVertex(func(v VertexID) bool { totalOut += g.OutDegree(v); return true })
		return ok && totalOut == g.NumEdges()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickExpireMonotone: after ExpireBefore(c), no live edge has a
// timestamp below the oldest edge that was at the FIFO front — i.e.
// repeated full expiry always empties the graph.
func TestQuickExpireMonotone(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		a := g.EnsureVertex("a", "ip")
		b := g.EnsureVertex("b", "ip")
		tp := TypeID(g.Types().Intern("t"))
		maxTS := int64(0)
		for i := 0; i < 100; i++ {
			ts := int64(rng.Intn(1000))
			if ts > maxTS {
				maxTS = ts
			}
			g.AddEdge(a, b, tp, ts)
		}
		g.ExpireBefore(maxTS + 1)
		return g.NumEdges() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
