package graph

import "testing"

func TestTypeSetBasics(t *testing.T) {
	var zero TypeSet
	if !zero.Empty() || zero.Has(0) || zero.Universal() {
		t.Fatal("zero TypeSet must be empty")
	}
	s := NewTypeSet(1, 3, 200)
	for _, id := range []TypeID{1, 3, 200} {
		if !s.Has(id) {
			t.Fatalf("set missing %d", id)
		}
	}
	for _, id := range []TypeID{0, 2, 199, 201, 1000} {
		if s.Has(id) {
			t.Fatalf("set wrongly contains %d", id)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	u := UniversalTypes()
	if !u.Has(0) || !u.Has(99999) || u.Len() != -1 || u.Empty() {
		t.Fatal("universal set must contain everything")
	}
}

func TestTypeSetValuesAreIndependent(t *testing.T) {
	s := NewTypeSet(2)
	wider := NewTypeSet(2, 5, 64)
	if s.Has(5) || s.Has(64) {
		t.Fatal("building a wider set disturbed an existing value")
	}
	if !wider.Has(2) || !wider.Has(5) || !wider.Has(64) {
		t.Fatal("wider set lost members")
	}
	if got := wider.Len(); got != 3 {
		t.Fatalf("wider.Len = %d, want 3", got)
	}
}

func TestViewFiltersEdgesAndCounts(t *testing.T) {
	g := New()
	a := g.EnsureVertex("a", "ip")
	b := g.EnsureVertex("b", "ip")
	c := g.EnsureVertex("c", "ip")
	tcp := TypeID(g.Types().Intern("TCP"))
	udp := TypeID(g.Types().Intern("UDP"))
	e1 := g.AddEdge(a, b, tcp, 1)
	e2 := g.AddEdge(b, c, udp, 2)
	g.AddEdge(a, c, tcp, 3)

	if got := g.EdgesOfType(tcp); got != 2 {
		t.Fatalf("EdgesOfType(TCP) = %d, want 2", got)
	}
	v := g.ViewTypes(NewTypeSet(tcp))
	if got := v.NumEdges(); got != 2 {
		t.Fatalf("view.NumEdges = %d, want 2", got)
	}
	if _, ok := v.Edge(e2); ok {
		t.Fatal("view exposed a filtered-out edge")
	}
	if _, ok := v.Edge(e1); !ok {
		t.Fatal("view hid an in-filter edge")
	}
	seen := 0
	v.EachEdge(func(e Edge) bool {
		if e.Type != tcp {
			t.Fatalf("EachEdge leaked type %d", e.Type)
		}
		seen++
		return true
	})
	if seen != 2 {
		t.Fatalf("EachEdge visited %d edges, want 2", seen)
	}
	outs := 0
	v.EachOut(a, func(h Half) bool { outs++; return true })
	if outs != 2 {
		t.Fatalf("EachOut(a) visited %d, want 2", outs)
	}
	ins := 0
	v.EachIn(c, func(h Half) bool { ins++; return true }) // UDP b->c filtered out
	if ins != 1 {
		t.Fatalf("EachIn(c) visited %d, want 1", ins)
	}

	// Views track live mutation, and per-type counts follow removal.
	g.RemoveEdge(e1)
	if got := g.EdgesOfType(tcp); got != 1 {
		t.Fatalf("EdgesOfType(TCP) after removal = %d, want 1", got)
	}
	if got := v.NumEdges(); got != 1 {
		t.Fatalf("view.NumEdges after removal = %d, want 1", got)
	}
	uni := g.ViewTypes(UniversalTypes())
	if uni.NumEdges() != g.NumEdges() {
		t.Fatal("universal view must count every live edge")
	}
}
