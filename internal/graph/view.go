package graph

// View is a read-only adjacency view of a Graph restricted to a set of
// edge types. Views are cheap values — a pointer and a copy-on-write
// TypeSet — so deriving one per query or per shard costs nothing and
// never copies graph storage.
//
// The sharded runtime uses Views in two roles: a filtered replica's
// engine exposes its content as the View (graph, filter) for stats and
// inspection, and the differential tests build the oracle for a
// filtered replica as the View of the serial engine's full graph under
// the same TypeSet — "the graph restricted to the shard's footprint" is
// exactly what a correct replica must equal.
//
// A View observes live mutations of the underlying graph; it is a
// filter, not a snapshot.
type View struct {
	g   *Graph
	set TypeSet
}

// ViewTypes returns the read-only view of g restricted to the given
// edge types.
func (g *Graph) ViewTypes(set TypeSet) View { return View{g: g, set: set} }

// Graph returns the underlying graph.
func (v View) Graph() *Graph { return v.g }

// Types returns the view's edge-type filter.
func (v View) Types() TypeSet { return v.set }

// NumEdges reports the number of live edges whose type passes the
// filter. It is O(distinct types) via the graph's per-type counters,
// never a scan.
func (v View) NumEdges() int {
	if v.set.Universal() {
		return v.g.NumEdges()
	}
	n := 0
	for t := 0; t < v.g.types.Len(); t++ {
		if v.set.Has(TypeID(t)) {
			n += v.g.EdgesOfType(TypeID(t))
		}
	}
	return n
}

// Edge returns the edge with the given ID if it is live and its type
// passes the filter.
func (v View) Edge(id EdgeID) (Edge, bool) {
	e, ok := v.g.Edge(id)
	if !ok || !v.set.Has(e.Type) {
		return Edge{}, false
	}
	return e, true
}

// EachOut invokes fn for every outgoing edge at u whose type passes the
// filter. Returning false stops the iteration early.
func (v View) EachOut(u VertexID, fn func(Half) bool) {
	v.g.EachOut(u, func(h Half) bool {
		if !v.set.Has(h.Type) {
			return true
		}
		return fn(h)
	})
}

// EachIn invokes fn for every incoming edge at u whose type passes the
// filter. Returning false stops the iteration early.
func (v View) EachIn(u VertexID, fn func(Half) bool) {
	v.g.EachIn(u, func(h Half) bool {
		if !v.set.Has(h.Type) {
			return true
		}
		return fn(h)
	})
}

// EachEdge invokes fn for every live edge whose type passes the filter
// (arena order). Returning false stops the iteration early.
func (v View) EachEdge(fn func(Edge) bool) {
	v.g.EachEdge(func(e Edge) bool {
		if !v.set.Has(e.Type) {
			return true
		}
		return fn(e)
	})
}
