package graph

// Interner maps strings to dense uint32 identifiers and back. The zero
// value is not ready to use; call NewInterner. Identifiers are assigned
// in first-seen order starting at 0, so they can index slices directly.
type Interner struct {
	ids   map[string]uint32
	names []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]uint32)}
}

// Intern returns the identifier for s, assigning a new one if s has not
// been seen before.
func (in *Interner) Intern(s string) uint32 {
	if id, ok := in.ids[s]; ok {
		return id
	}
	id := uint32(len(in.names))
	in.ids[s] = id
	in.names = append(in.names, s)
	return id
}

// Lookup returns the identifier for s and whether s has been interned.
// Unlike Intern it never assigns a new identifier.
func (in *Interner) Lookup(s string) (uint32, bool) {
	id, ok := in.ids[s]
	return id, ok
}

// Name returns the string for identifier id. It panics if id was never
// assigned, mirroring out-of-range slice access.
func (in *Interner) Name(id uint32) string { return in.names[id] }

// Len reports how many distinct strings have been interned.
func (in *Interner) Len() int { return len(in.names) }

// Names returns the interned strings in identifier order. The returned
// slice is shared; callers must not modify it.
func (in *Interner) Names() []string { return in.names }
