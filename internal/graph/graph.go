// Package graph implements the dynamic multi-relational graph substrate
// used by the continuous pattern detection engine. Graphs are directed,
// vertex- and edge-labeled, permit parallel edges, and carry a timestamp
// on every edge so that the graph can be maintained as a sliding window
// in time (Section 2 of Choudhury et al., EDBT 2015).
//
// The implementation interns all labels and edge types to dense integer
// identifiers, stores edges in an arena with a free-list, and keeps
// per-vertex in/out adjacency with back-indices so that removing an edge
// (window eviction) is O(1).
package graph

import (
	"fmt"
	"math"
	"sort"
)

// VertexID identifies a vertex within a Graph. IDs are dense and assigned
// in insertion order; they remain valid for the lifetime of the graph
// (vertices are never recycled, only edges are).
type VertexID uint32

// EdgeID identifies an edge within a Graph. EdgeIDs are arena indices and
// are recycled after the edge is removed; holders of an EdgeID across
// mutations must revalidate with Edge.
type EdgeID uint32

// TypeID is an interned edge type.
type TypeID uint32

// LabelID is an interned vertex label.
type LabelID uint32

// NoVertex is returned by lookups that find no vertex.
const NoVertex = VertexID(math.MaxUint32)

// Edge is the exported view of a single directed edge.
type Edge struct {
	ID   EdgeID
	Src  VertexID
	Dst  VertexID
	Type TypeID
	TS   int64
	// Seq is the edge's arrival sequence number: AddEdge assigns 1, 2,
	// 3, ... in call order and never recycles a value (unlike EdgeID,
	// which reuses arena slots after eviction). Seq totally orders
	// arrivals, so "the graph as it was when edge e arrived" is exactly
	// the set of live edges with Seq <= e.Seq — the visibility bound the
	// batch ingestion path uses to reproduce serial search results.
	Seq uint64
}

// Half is one adjacency entry: the edge as seen from one endpoint.
type Half struct {
	Peer VertexID // the other endpoint
	Type TypeID
	ID   EdgeID
	TS   int64
}

type vertexRec struct {
	name  string
	label LabelID
	out   []adjRec
	in    []adjRec
}

type adjRec struct {
	peer  VertexID
	etype TypeID
	eid   EdgeID
	ts    int64
}

type edgeRec struct {
	src, dst VertexID
	etype    TypeID
	ts       int64
	seq      uint64
	outIdx   int32 // position within verts[src].out
	inIdx    int32 // position within verts[dst].in
	alive    bool
}

// Graph is a dynamic directed labeled multigraph. The zero value is not
// usable; call New.
type Graph struct {
	types  *Interner
	labels *Interner

	verts      []vertexRec
	vertByName map[string]VertexID

	edges     []edgeRec
	freeEdges []EdgeID
	liveEdges int

	// liveByType counts live edges per interned type; it makes
	// View.NumEdges and replica statistics O(types) instead of a scan.
	liveByType []int

	// fifo holds live edge IDs in arrival order for window eviction.
	fifo   []EdgeID
	fifoLo int

	lastTS  int64
	lastSeq uint64
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		types:      NewInterner(),
		labels:     NewInterner(),
		vertByName: make(map[string]VertexID),
	}
}

// Types returns the edge-type interner. Callers may intern new types but
// must not otherwise mutate it.
func (g *Graph) Types() *Interner { return g.types }

// Labels returns the vertex-label interner.
func (g *Graph) Labels() *Interner { return g.labels }

// NumVertices reports the number of vertices ever added (isolated
// vertices left behind by eviction are included).
func (g *Graph) NumVertices() int { return len(g.verts) }

// NumEdges reports the number of live edges.
func (g *Graph) NumEdges() int { return g.liveEdges }

// LastTS reports the largest timestamp seen by AddEdge.
func (g *Graph) LastTS() int64 { return g.lastTS }

// LastSeq reports the arrival sequence number assigned to the most
// recent AddEdge call (0 before the first edge).
func (g *Graph) LastSeq() uint64 { return g.lastSeq }

// EnsureVertex returns the vertex named name, creating it with the given
// label if it does not exist. If the vertex exists with a different
// label the existing label wins (labels are immutable once assigned).
func (g *Graph) EnsureVertex(name, label string) VertexID {
	if v, ok := g.vertByName[name]; ok {
		return v
	}
	v := VertexID(len(g.verts))
	g.verts = append(g.verts, vertexRec{name: name, label: LabelID(g.labels.Intern(label))})
	g.vertByName[name] = v
	return v
}

// VertexByName returns the vertex with the given name, or NoVertex.
func (g *Graph) VertexByName(name string) VertexID {
	if v, ok := g.vertByName[name]; ok {
		return v
	}
	return NoVertex
}

// VertexName returns the external name of v.
func (g *Graph) VertexName(v VertexID) string { return g.verts[v].name }

// VertexLabel returns the interned label of v.
func (g *Graph) VertexLabel(v VertexID) LabelID { return g.verts[v].label }

// OutDegree reports the number of outgoing edges at v.
func (g *Graph) OutDegree(v VertexID) int { return len(g.verts[v].out) }

// InDegree reports the number of incoming edges at v.
func (g *Graph) InDegree(v VertexID) int { return len(g.verts[v].in) }

// Degree reports the total number of incident edges at v.
func (g *Graph) Degree(v VertexID) int { return len(g.verts[v].out) + len(g.verts[v].in) }

// AddEdge inserts a directed edge src -> dst with the given interned type
// and timestamp, returning its EdgeID. Timestamps are expected to be
// non-decreasing; out-of-order edges are accepted but may be evicted late
// (see ExpireBefore).
func (g *Graph) AddEdge(src, dst VertexID, etype TypeID, ts int64) EdgeID {
	var eid EdgeID
	if n := len(g.freeEdges); n > 0 {
		eid = g.freeEdges[n-1]
		g.freeEdges = g.freeEdges[:n-1]
	} else {
		eid = EdgeID(len(g.edges))
		g.edges = append(g.edges, edgeRec{})
	}
	sv := &g.verts[src]
	dv := &g.verts[dst]
	g.lastSeq++
	g.edges[eid] = edgeRec{
		src: src, dst: dst, etype: etype, ts: ts, seq: g.lastSeq,
		outIdx: int32(len(sv.out)), inIdx: int32(len(dv.in)), alive: true,
	}
	sv.out = append(sv.out, adjRec{peer: dst, etype: etype, eid: eid, ts: ts})
	dv.in = append(dv.in, adjRec{peer: src, etype: etype, eid: eid, ts: ts})
	g.fifo = append(g.fifo, eid)
	g.liveEdges++
	for int(etype) >= len(g.liveByType) {
		g.liveByType = append(g.liveByType, 0)
	}
	g.liveByType[etype]++
	if ts > g.lastTS {
		g.lastTS = ts
	}
	return eid
}

// AddEdgeNamed is a convenience wrapper that interns names, labels and
// the edge type before inserting.
func (g *Graph) AddEdgeNamed(src, srcLabel, dst, dstLabel, etype string, ts int64) EdgeID {
	s := g.EnsureVertex(src, srcLabel)
	d := g.EnsureVertex(dst, dstLabel)
	return g.AddEdge(s, d, TypeID(g.types.Intern(etype)), ts)
}

// Edge returns the edge with the given ID and whether it is live.
func (g *Graph) Edge(id EdgeID) (Edge, bool) {
	if int(id) >= len(g.edges) {
		return Edge{}, false
	}
	r := &g.edges[id]
	if !r.alive {
		return Edge{}, false
	}
	return Edge{ID: id, Src: r.src, Dst: r.dst, Type: r.etype, TS: r.ts, Seq: r.seq}, true
}

// RemoveEdge deletes the edge with the given ID. It is a no-op if the
// edge is already gone. Removal is O(1): the adjacency entries are
// swap-deleted and the displaced entries' back-indices patched.
func (g *Graph) RemoveEdge(id EdgeID) {
	if int(id) >= len(g.edges) || !g.edges[id].alive {
		return
	}
	r := &g.edges[id]
	g.removeAdj(&g.verts[r.src].out, r.outIdx, true)
	g.removeAdj(&g.verts[r.dst].in, r.inIdx, false)
	r.alive = false
	g.freeEdges = append(g.freeEdges, id)
	g.liveEdges--
	g.liveByType[r.etype]--
}

// EdgesOfType reports the number of live edges with the given interned
// type.
func (g *Graph) EdgesOfType(t TypeID) int {
	if int(t) >= len(g.liveByType) {
		return 0
	}
	return g.liveByType[t]
}

func (g *Graph) removeAdj(list *[]adjRec, idx int32, isOut bool) {
	l := *list
	last := int32(len(l) - 1)
	if idx != last {
		moved := l[last]
		l[idx] = moved
		if isOut {
			g.edges[moved.eid].outIdx = idx
		} else {
			g.edges[moved.eid].inIdx = idx
		}
	}
	*list = l[:last]
}

// ExpireBefore removes edges with timestamp < cutoff and returns how many
// were removed. Eviction walks the arrival-order FIFO from the front and
// stops at the first live edge with ts >= cutoff, so an out-of-order old
// edge that arrived after a newer one is evicted on a later call — the
// usual slack of stream-window maintenance.
func (g *Graph) ExpireBefore(cutoff int64) int {
	removed := 0
	for g.fifoLo < len(g.fifo) {
		eid := g.fifo[g.fifoLo]
		r := &g.edges[eid]
		if !r.alive {
			g.fifoLo++
			continue
		}
		if r.ts >= cutoff {
			break
		}
		g.RemoveEdge(eid)
		g.fifoLo++
		removed++
	}
	// Compact the FIFO once the dead prefix dominates.
	if g.fifoLo > len(g.fifo)/2 && g.fifoLo > 1024 {
		g.fifo = append(g.fifo[:0], g.fifo[g.fifoLo:]...)
		g.fifoLo = 0
	}
	return removed
}

// NormalizeEvictionOrder rebuilds the eviction FIFO in (timestamp,
// arrival) order from the live arena. The replica-maintenance paths
// disturb the FIFO's invariants in two ways that would corrupt
// ExpireBefore's front-stopping walk: a backfill appends edges from
// the stream's past behind newer ones (shielding them from eviction
// past their serial expiry point), and a trim removes edges mid-FIFO,
// leaving stale entries whose arena slots may be recycled by newer
// edges — an aliased high timestamp early in the walk that blocks
// eviction of everything behind it. Rebuilding from the arena rather
// than the old FIFO discards stale entries wholesale and restores the
// eviction schedule a serial ingest of the same live edges would have
// produced. Either divergence would let old edges outlive their
// partial-match dedup state and resurface as duplicate matches.
func (g *Graph) NormalizeEvictionOrder() {
	live := make([]EdgeID, 0, g.liveEdges)
	for i := range g.edges {
		if g.edges[i].alive {
			live = append(live, EdgeID(i))
		}
	}
	sort.Slice(live, func(i, j int) bool {
		a, b := &g.edges[live[i]], &g.edges[live[j]]
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		return a.seq < b.seq
	})
	g.fifo = live
	g.fifoLo = 0
}

// EachOut invokes fn for every outgoing edge at v. Returning false stops
// the iteration early.
func (g *Graph) EachOut(v VertexID, fn func(Half) bool) {
	for _, a := range g.verts[v].out {
		if !fn(Half{Peer: a.peer, Type: a.etype, ID: a.eid, TS: a.ts}) {
			return
		}
	}
}

// EachIn invokes fn for every incoming edge at v. Returning false stops
// the iteration early.
func (g *Graph) EachIn(v VertexID, fn func(Half) bool) {
	for _, a := range g.verts[v].in {
		if !fn(Half{Peer: a.peer, Type: a.etype, ID: a.eid, TS: a.ts}) {
			return
		}
	}
}

// EachEdge invokes fn for every live edge in the graph (arena order).
// Returning false stops the iteration early.
func (g *Graph) EachEdge(fn func(Edge) bool) {
	for i := range g.edges {
		r := &g.edges[i]
		if !r.alive {
			continue
		}
		if !fn(Edge{ID: EdgeID(i), Src: r.src, Dst: r.dst, Type: r.etype, TS: r.ts, Seq: r.seq}) {
			return
		}
	}
}

// EachEdgeArrival invokes fn for every live edge in arrival order (the
// order AddEdge was called). Returning false stops the iteration early.
// Snapshot/restore uses this so that a rebuilt graph evicts edges in
// the same order as the original.
func (g *Graph) EachEdgeArrival(fn func(Edge) bool) {
	for i := g.fifoLo; i < len(g.fifo); i++ {
		eid := g.fifo[i]
		r := &g.edges[eid]
		if !r.alive {
			continue
		}
		if !fn(Edge{ID: eid, Src: r.src, Dst: r.dst, Type: r.etype, TS: r.ts, Seq: r.seq}) {
			return
		}
	}
}

// EachVertex invokes fn for every vertex. Returning false stops early.
func (g *Graph) EachVertex(fn func(VertexID) bool) {
	for i := range g.verts {
		if !fn(VertexID(i)) {
			return
		}
	}
}

// AvgDegree reports the mean total degree over vertices with at least one
// incident edge; it is the d̄ used by the paper's cost analysis.
func (g *Graph) AvgDegree() float64 {
	active, deg := 0, 0
	for i := range g.verts {
		d := len(g.verts[i].out) + len(g.verts[i].in)
		if d > 0 {
			active++
			deg += d
		}
	}
	if active == 0 {
		return 0
	}
	return float64(deg) / float64(active)
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{V=%d E=%d types=%d labels=%d}",
		len(g.verts), g.liveEdges, g.types.Len(), g.labels.Len())
}
