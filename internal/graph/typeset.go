package graph

import "math/bits"

// TypeSet is an immutable set of interned edge types, used to describe
// which part of a stream a filtered replica stores (the edge-type
// footprint of the queries it serves). The zero value is the empty set.
//
// TypeSets are immutable values: the backing bit words are never
// mutated after construction, so a TypeSet may be copied and handed
// across goroutines freely, and changing a filter means building a new
// set and swapping it wholesale — every holder of the old value keeps
// reading exactly what it held. That is what lets the shard router
// replace a worker's ingest gate while a reader of the old set is
// still mid-iteration.
//
// A universal TypeSet (see UniversalTypes) contains every type, present
// and future; it is the footprint of queries that cannot be statically
// filtered (wildcard edge types) and the gate of an unfiltered replica.
type TypeSet struct {
	universal bool
	words     []uint64 // shared, never mutated after publication
}

// UniversalTypes returns the TypeSet containing every edge type,
// including types interned after the call.
func UniversalTypes() TypeSet { return TypeSet{universal: true} }

// NewTypeSet returns the TypeSet holding exactly the given type IDs.
func NewTypeSet(ids ...TypeID) TypeSet {
	var s TypeSet
	if len(ids) == 0 {
		return s
	}
	max := ids[0]
	for _, id := range ids[1:] {
		if id > max {
			max = id
		}
	}
	s.words = make([]uint64, int(max)/64+1)
	for _, id := range ids {
		s.words[int(id)/64] |= 1 << (uint(id) % 64)
	}
	return s
}

// Universal reports whether the set contains every type.
func (s TypeSet) Universal() bool { return s.universal }

// Has reports whether the set contains t. A universal set contains
// every type.
func (s TypeSet) Has(t TypeID) bool {
	if s.universal {
		return true
	}
	w := int(t) / 64
	if w >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<(uint(t)%64)) != 0
}

// Len reports the number of types in the set; -1 for a universal set.
func (s TypeSet) Len() int {
	if s.universal {
		return -1
	}
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set contains no type at all.
func (s TypeSet) Empty() bool { return !s.universal && s.Len() == 0 }
