package graph

import (
	"math/rand"
	"testing"
)

func TestInterner(t *testing.T) {
	in := NewInterner()
	a := in.Intern("alpha")
	b := in.Intern("beta")
	if a == b {
		t.Fatalf("distinct strings interned to same id %d", a)
	}
	if got := in.Intern("alpha"); got != a {
		t.Errorf("re-intern alpha = %d, want %d", got, a)
	}
	if in.Name(a) != "alpha" || in.Name(b) != "beta" {
		t.Errorf("Name round-trip failed: %q %q", in.Name(a), in.Name(b))
	}
	if _, ok := in.Lookup("gamma"); ok {
		t.Errorf("Lookup(gamma) = ok, want miss")
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d, want 2", in.Len())
	}
	if got := in.Names(); len(got) != 2 || got[0] != "alpha" {
		t.Errorf("Names = %v", got)
	}
}

func TestEnsureVertexIdempotent(t *testing.T) {
	g := New()
	v1 := g.EnsureVertex("a", "host")
	v2 := g.EnsureVertex("a", "host")
	if v1 != v2 {
		t.Fatalf("EnsureVertex not idempotent: %d vs %d", v1, v2)
	}
	if g.NumVertices() != 1 {
		t.Fatalf("NumVertices = %d, want 1", g.NumVertices())
	}
	// Label is immutable once assigned.
	v3 := g.EnsureVertex("a", "server")
	if v3 != v1 {
		t.Fatalf("same name produced new vertex")
	}
	if g.Labels().Name(uint32(g.VertexLabel(v1))) != "host" {
		t.Errorf("label changed on re-ensure")
	}
}

func TestVertexByName(t *testing.T) {
	g := New()
	if g.VertexByName("missing") != NoVertex {
		t.Errorf("missing vertex lookup should return NoVertex")
	}
	v := g.EnsureVertex("x", "ip")
	if g.VertexByName("x") != v {
		t.Errorf("VertexByName mismatch")
	}
	if g.VertexName(v) != "x" {
		t.Errorf("VertexName mismatch")
	}
}

func TestAddEdgeAdjacency(t *testing.T) {
	g := New()
	a := g.EnsureVertex("a", "ip")
	b := g.EnsureVertex("b", "ip")
	c := g.EnsureVertex("c", "ip")
	tcp := TypeID(g.Types().Intern("tcp"))
	udp := TypeID(g.Types().Intern("udp"))

	e1 := g.AddEdge(a, b, tcp, 1)
	e2 := g.AddEdge(a, c, udp, 2)
	e3 := g.AddEdge(b, a, tcp, 3)

	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.OutDegree(a) != 2 || g.InDegree(a) != 1 || g.Degree(a) != 3 {
		t.Errorf("degrees at a: out=%d in=%d total=%d", g.OutDegree(a), g.InDegree(a), g.Degree(a))
	}
	var outIDs []EdgeID
	g.EachOut(a, func(h Half) bool { outIDs = append(outIDs, h.ID); return true })
	if len(outIDs) != 2 || outIDs[0] != e1 || outIDs[1] != e2 {
		t.Errorf("EachOut(a) = %v, want [%d %d]", outIDs, e1, e2)
	}
	ed, ok := g.Edge(e3)
	if !ok || ed.Src != b || ed.Dst != a || ed.Type != tcp || ed.TS != 3 {
		t.Errorf("Edge(e3) = %+v ok=%v", ed, ok)
	}
	if g.LastTS() != 3 {
		t.Errorf("LastTS = %d, want 3", g.LastTS())
	}
}

func TestMultiEdges(t *testing.T) {
	g := New()
	a := g.EnsureVertex("a", "ip")
	b := g.EnsureVertex("b", "ip")
	tcp := TypeID(g.Types().Intern("tcp"))
	e1 := g.AddEdge(a, b, tcp, 1)
	e2 := g.AddEdge(a, b, tcp, 2)
	if e1 == e2 {
		t.Fatalf("parallel edges share an id")
	}
	if g.NumEdges() != 2 || g.OutDegree(a) != 2 {
		t.Errorf("parallel edges not both present")
	}
}

func TestRemoveEdgeSwapFix(t *testing.T) {
	g := New()
	a := g.EnsureVertex("a", "ip")
	b := g.EnsureVertex("b", "ip")
	c := g.EnsureVertex("c", "ip")
	tcp := TypeID(g.Types().Intern("tcp"))
	e1 := g.AddEdge(a, b, tcp, 1)
	e2 := g.AddEdge(a, c, tcp, 2)
	e3 := g.AddEdge(a, b, tcp, 3)

	g.RemoveEdge(e1) // forces swap of e3 into e1's slot in a.out
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if _, ok := g.Edge(e1); ok {
		t.Errorf("removed edge still live")
	}
	// Removing the swapped edge must still work (back-index was patched).
	g.RemoveEdge(e3)
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges after second removal = %d, want 1", g.NumEdges())
	}
	if _, ok := g.Edge(e2); !ok {
		t.Errorf("surviving edge e2 lost")
	}
	// Double removal is a no-op.
	g.RemoveEdge(e3)
	if g.NumEdges() != 1 {
		t.Errorf("double removal changed edge count")
	}
}

func TestEdgeIDRecycling(t *testing.T) {
	g := New()
	a := g.EnsureVertex("a", "ip")
	b := g.EnsureVertex("b", "ip")
	tcp := TypeID(g.Types().Intern("tcp"))
	e1 := g.AddEdge(a, b, tcp, 1)
	g.RemoveEdge(e1)
	e2 := g.AddEdge(b, a, tcp, 2)
	if e2 != e1 {
		t.Fatalf("freed edge id not recycled: got %d, want %d", e2, e1)
	}
	ed, ok := g.Edge(e2)
	if !ok || ed.Src != b {
		t.Fatalf("recycled edge has stale fields: %+v", ed)
	}
}

func TestExpireBefore(t *testing.T) {
	g := New()
	a := g.EnsureVertex("a", "ip")
	b := g.EnsureVertex("b", "ip")
	tcp := TypeID(g.Types().Intern("tcp"))
	for ts := int64(1); ts <= 10; ts++ {
		g.AddEdge(a, b, tcp, ts)
	}
	removed := g.ExpireBefore(6)
	if removed != 5 {
		t.Fatalf("ExpireBefore removed %d, want 5", removed)
	}
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5", g.NumEdges())
	}
	g.EachEdge(func(e Edge) bool {
		if e.TS < 6 {
			t.Errorf("edge with ts %d survived eviction", e.TS)
		}
		return true
	})
	// Nothing more to evict at the same cutoff.
	if again := g.ExpireBefore(6); again != 0 {
		t.Errorf("second ExpireBefore removed %d, want 0", again)
	}
}

func TestExpireBeforeOutOfOrderSlack(t *testing.T) {
	g := New()
	a := g.EnsureVertex("a", "ip")
	b := g.EnsureVertex("b", "ip")
	tcp := TypeID(g.Types().Intern("tcp"))
	g.AddEdge(a, b, tcp, 100) // newer edge arrives first
	old := g.AddEdge(a, b, tcp, 1)
	// The old edge is behind the newer one in arrival order, so a single
	// sweep stops at the newer edge and keeps the old one (documented
	// slack).
	g.ExpireBefore(50)
	if _, ok := g.Edge(old); !ok {
		t.Fatalf("out-of-order old edge unexpectedly evicted by first sweep")
	}
	// Once the newer edge also expires, the old one goes with it.
	g.ExpireBefore(101)
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", g.NumEdges())
	}
}

func TestAvgDegree(t *testing.T) {
	g := New()
	a := g.EnsureVertex("a", "ip")
	b := g.EnsureVertex("b", "ip")
	g.EnsureVertex("isolated", "ip")
	tcp := TypeID(g.Types().Intern("tcp"))
	g.AddEdge(a, b, tcp, 1)
	if got := g.AvgDegree(); got != 1.0 {
		t.Errorf("AvgDegree = %v, want 1.0 (isolated vertices excluded)", got)
	}
	empty := New()
	if empty.AvgDegree() != 0 {
		t.Errorf("empty graph AvgDegree should be 0")
	}
}

// checkConsistency validates the structural invariants: every live edge
// appears exactly once in its source's out list and its destination's
// in list, back-indices agree, and counts match.
func checkConsistency(t *testing.T, g *Graph) {
	t.Helper()
	live := 0
	g.EachEdge(func(e Edge) bool {
		live++
		found := 0
		g.EachOut(e.Src, func(h Half) bool {
			if h.ID == e.ID {
				found++
				if h.Peer != e.Dst || h.Type != e.Type || h.TS != e.TS {
					t.Errorf("out adjacency mismatch for edge %d", e.ID)
				}
			}
			return true
		})
		if found != 1 {
			t.Errorf("edge %d appears %d times in out list, want 1", e.ID, found)
		}
		found = 0
		g.EachIn(e.Dst, func(h Half) bool {
			if h.ID == e.ID {
				found++
				if h.Peer != e.Src {
					t.Errorf("in adjacency peer mismatch for edge %d", e.ID)
				}
			}
			return true
		})
		if found != 1 {
			t.Errorf("edge %d appears %d times in in list, want 1", e.ID, found)
		}
		return true
	})
	if live != g.NumEdges() {
		t.Errorf("EachEdge saw %d live edges, NumEdges reports %d", live, g.NumEdges())
	}
	totalOut, totalIn := 0, 0
	g.EachVertex(func(v VertexID) bool {
		totalOut += g.OutDegree(v)
		totalIn += g.InDegree(v)
		return true
	})
	if totalOut != live || totalIn != live {
		t.Errorf("degree sums out=%d in=%d, want %d", totalOut, totalIn, live)
	}
}

func TestRandomMutationConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := New()
	const nv = 20
	for i := 0; i < nv; i++ {
		g.EnsureVertex(string(rune('a'+i)), "ip")
	}
	types := []TypeID{
		TypeID(g.Types().Intern("tcp")),
		TypeID(g.Types().Intern("udp")),
		TypeID(g.Types().Intern("icmp")),
	}
	var liveIDs []EdgeID
	ts := int64(0)
	for step := 0; step < 3000; step++ {
		if rng.Intn(3) != 0 || len(liveIDs) == 0 {
			s := VertexID(rng.Intn(nv))
			d := VertexID(rng.Intn(nv))
			if s == d {
				continue
			}
			ts++
			liveIDs = append(liveIDs, g.AddEdge(s, d, types[rng.Intn(len(types))], ts))
		} else {
			i := rng.Intn(len(liveIDs))
			g.RemoveEdge(liveIDs[i])
			liveIDs[i] = liveIDs[len(liveIDs)-1]
			liveIDs = liveIDs[:len(liveIDs)-1]
		}
		if step%500 == 0 {
			checkConsistency(t, g)
		}
	}
	checkConsistency(t, g)
	// Drain everything through eviction and re-check.
	g.ExpireBefore(ts + 1)
	if g.NumEdges() != 0 {
		t.Fatalf("full eviction left %d edges", g.NumEdges())
	}
	checkConsistency(t, g)
}
