package graph

import "testing"

func TestEachEdgeArrivalOrder(t *testing.T) {
	g := New()
	a := g.EnsureVertex("a", "x")
	b := g.EnsureVertex("b", "x")
	c := g.EnsureVertex("c", "x")
	tp := TypeID(g.Types().Intern("t"))

	// Arrival order deliberately differs from timestamp order.
	e1 := g.AddEdge(a, b, tp, 30)
	e2 := g.AddEdge(b, c, tp, 10)
	e3 := g.AddEdge(c, a, tp, 20)

	var got []EdgeID
	g.EachEdgeArrival(func(e Edge) bool {
		got = append(got, e.ID)
		return true
	})
	want := []EdgeID{e1, e2, e3}
	if len(got) != len(want) {
		t.Fatalf("visited %d edges, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arrival order %v, want %v", got, want)
		}
	}
}

func TestEachEdgeArrivalSkipsDeadAndStopsEarly(t *testing.T) {
	g := New()
	a := g.EnsureVertex("a", "x")
	b := g.EnsureVertex("b", "x")
	tp := TypeID(g.Types().Intern("t"))
	e1 := g.AddEdge(a, b, tp, 1)
	e2 := g.AddEdge(b, a, tp, 2)
	e3 := g.AddEdge(a, b, tp, 3)
	g.RemoveEdge(e2)

	var got []EdgeID
	g.EachEdgeArrival(func(e Edge) bool {
		got = append(got, e.ID)
		return true
	})
	if len(got) != 2 || got[0] != e1 || got[1] != e3 {
		t.Fatalf("got %v, want [%d %d]", got, e1, e3)
	}

	// Early termination.
	count := 0
	g.EachEdgeArrival(func(e Edge) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d edges", count)
	}

	// After eviction the FIFO prefix is skipped entirely.
	g.ExpireBefore(3)
	got = got[:0]
	g.EachEdgeArrival(func(e Edge) bool {
		got = append(got, e.ID)
		return true
	})
	if len(got) != 1 || got[0] != e3 {
		t.Fatalf("after eviction got %v, want [%d]", got, e3)
	}
}
