package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"streamgraph/internal/shard"
)

type testClient struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
}

func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return srv, ln.Addr().String()
}

func dial(t *testing.T, addr string) *testClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &testClient{t: t, conn: conn, r: bufio.NewReader(conn)}
}

func (c *testClient) send(lines ...string) {
	c.t.Helper()
	for _, l := range lines {
		if _, err := fmt.Fprintln(c.conn, l); err != nil {
			c.t.Fatal(err)
		}
	}
}

func (c *testClient) recv() string {
	c.t.Helper()
	line, err := c.r.ReadString('\n')
	if err != nil {
		c.t.Fatal(err)
	}
	return strings.TrimSpace(line)
}

func (c *testClient) expectPrefix(prefix string) string {
	c.t.Helper()
	line := c.recv()
	if !strings.HasPrefix(line, prefix) {
		c.t.Fatalf("got %q, want prefix %q", line, prefix)
	}
	return line
}

func registerTwoHop(c *testClient, name string) {
	c.send(
		"register "+name,
		"e a b rdp",
		"e b c ftp",
		"end",
	)
	c.expectPrefix("ok registered " + name)
}

func TestServerRegisterAndMatch(t *testing.T) {
	_, addr := startServer(t, Config{Window: 100})
	c := dial(t, addr)
	registerTwoHop(c, "lateral")

	c.send("edge evil ip srv1 ip rdp 10")
	c.expectPrefix("ok 0")
	c.send("edge srv1 ip nas ip ftp 11")
	c.expectPrefix("ok 1")
	match := c.expectPrefix("match lateral ")
	for _, want := range []string{"a=evil", "b=srv1", "c=nas"} {
		if !strings.Contains(match, want) {
			t.Fatalf("match line %q missing %q", match, want)
		}
	}

	c.send("stats")
	st := c.expectPrefix("ok ")
	if !strings.Contains(st, "edges=2") || !strings.Contains(st, "queries=1") {
		t.Fatalf("stats = %q", st)
	}
}

func TestServerWindowRespected(t *testing.T) {
	_, addr := startServer(t, Config{Window: 5})
	c := dial(t, addr)
	registerTwoHop(c, "q")
	c.send("edge evil ip srv1 ip rdp 10")
	c.expectPrefix("ok 0")
	// Outside the window: no match.
	c.send("edge srv1 ip nas ip ftp 100")
	c.expectPrefix("ok 0")
}

func TestServerUnregister(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)
	registerTwoHop(c, "q")
	c.send("unregister q")
	c.expectPrefix("ok")
	c.send("edge evil ip srv1 ip rdp 10")
	c.expectPrefix("ok 0")
	c.send("edge srv1 ip nas ip ftp 11")
	c.expectPrefix("ok 0")
}

func TestServerErrors(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)
	for _, tc := range []struct {
		send []string
		want string
	}{
		{[]string{"bogus"}, "err unknown command"},
		{[]string{"register"}, "err usage"},
		{[]string{"register q wat"}, "err unknown strategy"},
		{[]string{"unregister"}, "err usage"},
		{[]string{"edge a b c"}, "err usage"},
		{[]string{"edge a ip b ip TCP notanumber"}, "err bad timestamp"},
		{[]string{"register q", "not a query line", "end"}, "err query"},
	} {
		c.send(tc.send...)
		line := c.recv()
		if !strings.HasPrefix(line, tc.want) {
			t.Errorf("send %v: got %q, want prefix %q", tc.send, line, tc.want)
		}
	}
	// Duplicate registration.
	registerTwoHop(c, "dup")
	c.send("register dup", "e a b rdp", "end")
	c.expectPrefix("err")
}

func TestServerStrategyOverride(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)
	c.send("register q pathlazy", "e a b rdp", "e b c ftp", "end")
	c.expectPrefix("ok registered q")
	c.send("edge evil ip srv1 ip rdp 10")
	c.expectPrefix("ok 0")
	c.send("edge srv1 ip nas ip ftp 11")
	c.expectPrefix("ok 1")
	c.expectPrefix("match q ")
}

func TestServerQuit(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)
	c.send("quit")
	c.expectPrefix("ok bye")
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Fatal("connection still open after quit")
	}
}

func TestServerConcurrentClients(t *testing.T) {
	_, addr := startServer(t, Config{})
	reg := dial(t, addr)
	registerTwoHop(reg, "q")

	const clients = 8
	const perClient = 50
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for i := 0; i < perClient; i++ {
				// Disjoint host spaces per client: no cross-client matches,
				// but plenty of shared-graph mutation.
				fmt.Fprintf(conn, "edge c%d-a ip c%d-b ip rdp %d\n", ci, ci, i)
				line, err := r.ReadString('\n')
				if err != nil || !strings.HasPrefix(line, "ok") {
					t.Errorf("client %d: %q %v", ci, line, err)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	reg.send("stats")
	st := reg.expectPrefix("ok ")
	if !strings.Contains(st, fmt.Sprintf("edges=%d", clients*perClient)) {
		t.Fatalf("stats after concurrent load: %q", st)
	}
}

func TestServerQueryBodyTooLong(t *testing.T) {
	_, addr := startServer(t, Config{MaxQueryLines: 2})
	c := dial(t, addr)
	c.send("register q", "e a b rdp", "e b c ftp", "e c d ssh", "end")
	c.expectPrefix("err query body exceeds")
}

// pollMatches drains the sharded match buffer until n matches arrived
// or the deadline passed, returning the match lines.
func pollMatches(t *testing.T, c *testClient, n int) []string {
	t.Helper()
	var lines []string
	for i := 0; i < 200; i++ {
		c.send("matches")
		head := c.expectPrefix("ok ")
		var k int
		var dropped string
		if _, err := fmt.Sscanf(head, "ok %d %s", &k, &dropped); err != nil {
			t.Fatalf("bad matches header %q: %v", head, err)
		}
		for j := 0; j < k; j++ {
			lines = append(lines, c.expectPrefix("match "))
		}
		if len(lines) >= n {
			return lines
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("only %d/%d matches arrived", len(lines), n)
	return nil
}

// TestServerSharded exercises the sharded runtime end to end over the
// wire: async edge ingestion, match drain, and per-shard stats.
func TestServerSharded(t *testing.T) {
	_, addr := startServer(t, Config{Window: 100, Shards: 2})
	c := dial(t, addr)
	registerTwoHop(c, "lateral")
	c.send(
		"register exfil",
		"e a b ftp",
		"e b c dns",
		"end",
	)
	c.expectPrefix("ok registered exfil")

	c.send("edge evil ip srv1 ip rdp 10")
	c.expectPrefix("ok queued 0")
	c.send("edge srv1 ip nas ip ftp 11")
	c.expectPrefix("ok queued 1")
	c.send("edge nas ip out ip dns 12")
	c.expectPrefix("ok queued 2")

	lines := pollMatches(t, c, 2)
	var sawLateral, sawExfil bool
	for _, ln := range lines {
		if strings.HasPrefix(ln, "match lateral ") {
			sawLateral = true
			for _, want := range []string{"a=evil", "b=srv1", "c=nas"} {
				if !strings.Contains(ln, want) {
					t.Fatalf("lateral match %q missing %q", ln, want)
				}
			}
		}
		if strings.HasPrefix(ln, "match exfil ") {
			sawExfil = true
		}
	}
	if !sawLateral || !sawExfil {
		t.Fatalf("matches = %v, want one lateral and one exfil", lines)
	}

	c.send("stats")
	head := c.expectPrefix("ok shards=2 ")
	if !strings.Contains(head, "edges=3") || !strings.Contains(head, "queries=2") {
		t.Fatalf("stats header = %q", head)
	}
	var routed, emitted, queries, stored int
	for i := 0; i < 2; i++ {
		ln := c.expectPrefix(fmt.Sprintf("shard %d ", i))
		for _, want := range []string{"queries=", "queue=", "routed=", "emitted=", "replica=", "types="} {
			if !strings.Contains(ln, want) {
				t.Fatalf("shard stats line %q missing %q", ln, want)
			}
		}
		var q, qd, qc, r, e, live, st, ty int
		if _, err := fmt.Sscanf(ln, fmt.Sprintf("shard %d queries=%%d queue=%%d/%%d routed=%%d emitted=%%d replica=%%d/%%d types=%%d", i), &q, &qd, &qc, &r, &e, &live, &st, &ty); err != nil {
			t.Fatalf("unparseable shard line %q: %v", ln, err)
		}
		if ty != 2 {
			t.Fatalf("shard %d filters %d types, want 2 (each query spans two edge types)", i, ty)
		}
		queries += q
		routed += r
		emitted += e
		stored += live
	}
	if queries != 2 {
		t.Fatalf("shard query ownership sums to %d, want 2", queries)
	}
	// Replicas are edge-type partitioned: each shard receives only the
	// 2 of 3 edges its query can match, where a broadcast would be 6.
	if routed != 4 {
		t.Fatalf("routed sums to %d, want 4 (gated delivery)", routed)
	}
	if stored != 4 {
		t.Fatalf("replica edges sum to %d, want 4", stored)
	}
	if emitted != 2 {
		t.Fatalf("emitted sums to %d, want 2", emitted)
	}

	// Unregister still works over the wire in sharded mode.
	c.send("unregister exfil")
	c.expectPrefix("ok")
}

// TestServerMatchesRequiresShards pins the error for the matches
// command without sharding.
func TestServerMatchesRequiresShards(t *testing.T) {
	_, addr := startServer(t, Config{Window: 100})
	c := dial(t, addr)
	c.send("matches")
	c.expectPrefix("err matches requires sharded mode")
}

// TestMatchLogPutBack pins the no-loss bookkeeping for a drain whose
// delivery fails: taken matches are reinserted at the front, the drop
// count is restored, and overflow still drops oldest-first.
func TestMatchLogPutBack(t *testing.T) {
	mk := func(q string) shard.Match { return shard.Match{Query: q} }
	l := &matchLog{limit: 3}
	l.add(mk("a"))
	l.add(mk("b"))
	l.add(mk("c"))
	ms, dropped := l.take(2)
	if len(ms) != 2 || dropped != 0 || ms[0].Query != "a" {
		t.Fatalf("take = %v dropped=%d", ms, dropped)
	}
	l.putBack(ms[1:], 0) // "b" undelivered
	got, _ := l.take(0)
	if len(got) != 2 || got[0].Query != "b" || got[1].Query != "c" {
		t.Fatalf("after putBack take = %v", got)
	}
	// Overflow: re-adding beyond the limit drops oldest and counts it.
	l.add(mk("d"))
	l.add(mk("e"))
	l.add(mk("f"))
	ms, _ = l.take(0)
	l.putBack(ms, 1)
	l.add(mk("g")) // 4 > limit 3: "d" dropped
	got, droppedNow := l.take(0)
	if len(got) != 3 || got[0].Query != "e" || got[2].Query != "g" {
		t.Fatalf("overflowed log = %v", got)
	}
	if droppedNow != 2 { // 1 restored + 1 overflow
		t.Fatalf("dropped = %d, want 2", droppedNow)
	}
}
