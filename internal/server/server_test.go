package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
)

type testClient struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
}

func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return srv, ln.Addr().String()
}

func dial(t *testing.T, addr string) *testClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &testClient{t: t, conn: conn, r: bufio.NewReader(conn)}
}

func (c *testClient) send(lines ...string) {
	c.t.Helper()
	for _, l := range lines {
		if _, err := fmt.Fprintln(c.conn, l); err != nil {
			c.t.Fatal(err)
		}
	}
}

func (c *testClient) recv() string {
	c.t.Helper()
	line, err := c.r.ReadString('\n')
	if err != nil {
		c.t.Fatal(err)
	}
	return strings.TrimSpace(line)
}

func (c *testClient) expectPrefix(prefix string) string {
	c.t.Helper()
	line := c.recv()
	if !strings.HasPrefix(line, prefix) {
		c.t.Fatalf("got %q, want prefix %q", line, prefix)
	}
	return line
}

func registerTwoHop(c *testClient, name string) {
	c.send(
		"register "+name,
		"e a b rdp",
		"e b c ftp",
		"end",
	)
	c.expectPrefix("ok registered " + name)
}

func TestServerRegisterAndMatch(t *testing.T) {
	_, addr := startServer(t, Config{Window: 100})
	c := dial(t, addr)
	registerTwoHop(c, "lateral")

	c.send("edge evil ip srv1 ip rdp 10")
	c.expectPrefix("ok 0")
	c.send("edge srv1 ip nas ip ftp 11")
	c.expectPrefix("ok 1")
	match := c.expectPrefix("match lateral ")
	for _, want := range []string{"a=evil", "b=srv1", "c=nas"} {
		if !strings.Contains(match, want) {
			t.Fatalf("match line %q missing %q", match, want)
		}
	}

	c.send("stats")
	st := c.expectPrefix("ok ")
	if !strings.Contains(st, "edges=2") || !strings.Contains(st, "queries=1") {
		t.Fatalf("stats = %q", st)
	}
}

func TestServerWindowRespected(t *testing.T) {
	_, addr := startServer(t, Config{Window: 5})
	c := dial(t, addr)
	registerTwoHop(c, "q")
	c.send("edge evil ip srv1 ip rdp 10")
	c.expectPrefix("ok 0")
	// Outside the window: no match.
	c.send("edge srv1 ip nas ip ftp 100")
	c.expectPrefix("ok 0")
}

func TestServerUnregister(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)
	registerTwoHop(c, "q")
	c.send("unregister q")
	c.expectPrefix("ok")
	c.send("edge evil ip srv1 ip rdp 10")
	c.expectPrefix("ok 0")
	c.send("edge srv1 ip nas ip ftp 11")
	c.expectPrefix("ok 0")
}

func TestServerErrors(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)
	for _, tc := range []struct {
		send []string
		want string
	}{
		{[]string{"bogus"}, "err unknown command"},
		{[]string{"register"}, "err usage"},
		{[]string{"register q wat"}, "err unknown strategy"},
		{[]string{"unregister"}, "err usage"},
		{[]string{"edge a b c"}, "err usage"},
		{[]string{"edge a ip b ip TCP notanumber"}, "err bad timestamp"},
		{[]string{"register q", "not a query line", "end"}, "err query"},
	} {
		c.send(tc.send...)
		line := c.recv()
		if !strings.HasPrefix(line, tc.want) {
			t.Errorf("send %v: got %q, want prefix %q", tc.send, line, tc.want)
		}
	}
	// Duplicate registration.
	registerTwoHop(c, "dup")
	c.send("register dup", "e a b rdp", "end")
	c.expectPrefix("err")
}

func TestServerStrategyOverride(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)
	c.send("register q pathlazy", "e a b rdp", "e b c ftp", "end")
	c.expectPrefix("ok registered q")
	c.send("edge evil ip srv1 ip rdp 10")
	c.expectPrefix("ok 0")
	c.send("edge srv1 ip nas ip ftp 11")
	c.expectPrefix("ok 1")
	c.expectPrefix("match q ")
}

func TestServerQuit(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)
	c.send("quit")
	c.expectPrefix("ok bye")
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Fatal("connection still open after quit")
	}
}

func TestServerConcurrentClients(t *testing.T) {
	_, addr := startServer(t, Config{})
	reg := dial(t, addr)
	registerTwoHop(reg, "q")

	const clients = 8
	const perClient = 50
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for i := 0; i < perClient; i++ {
				// Disjoint host spaces per client: no cross-client matches,
				// but plenty of shared-graph mutation.
				fmt.Fprintf(conn, "edge c%d-a ip c%d-b ip rdp %d\n", ci, ci, i)
				line, err := r.ReadString('\n')
				if err != nil || !strings.HasPrefix(line, "ok") {
					t.Errorf("client %d: %q %v", ci, line, err)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	reg.send("stats")
	st := reg.expectPrefix("ok ")
	if !strings.Contains(st, fmt.Sprintf("edges=%d", clients*perClient)) {
		t.Fatalf("stats after concurrent load: %q", st)
	}
}

func TestServerQueryBodyTooLong(t *testing.T) {
	_, addr := startServer(t, Config{MaxQueryLines: 2})
	c := dial(t, addr)
	c.send("register q", "e a b rdp", "e b c ftp", "e c d ssh", "end")
	c.expectPrefix("err query body exceeds")
}
