package server

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"streamgraph/internal/dshard"
)

// promLine accepts every non-comment line the exposition format allows
// here: bare or labeled series names followed by an integer value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?\d+$`)

// promType accepts `# TYPE <name> <kind>` headers.
var promType = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]*(_max)? (counter|gauge|summary)$`)

// TestDebugEndpointsMidStream is the end-to-end observability check:
// a durable server with a remote shard slot streams edges while an
// HTTP client scrapes /metrics, and the scrape must be well-formed
// Prometheus text exposing all four tiers — per-shard queue state,
// per-query match-lag quantiles, dshard wire traffic and edge-log
// fsync latency.
func TestDebugEndpointsMidStream(t *testing.T) {
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rsrv := dshard.NewServer()
	go rsrv.Serve(rln)
	t.Cleanup(rsrv.Close)

	srv, err := Open(Config{
		Window: 400, EvictEvery: 7, Shards: 1,
		Remotes: []string{rln.Addr().String()},
		DataDir: t.TempDir(), CheckpointEvery: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	web := httptest.NewServer(srv.DebugHandler())
	t.Cleanup(web.Close)

	// Two queries so both the local and the remote slot own one.
	c := dial(t, ln.Addr().String())
	registerTwoHop(c, "hop1")
	registerTwoHop(c, "hop2")

	// Stream matching two-hop pairs; enough edges to cross several
	// checkpoint boundaries (fsync samples) and emit matches on both
	// slots (match-lag samples).
	for i := 0; i < 200; i++ {
		ts := i * 2
		c.send(fmt.Sprintf("edge evil%d ip srv%d ip rdp %d", i, i, ts))
		c.expectPrefix("ok queued")
		c.send(fmt.Sprintf("edge srv%d ip nas%d ip ftp %d", i, i, ts+1))
		c.expectPrefix("ok queued")
	}

	// The ingest above is asynchronous; poll the scrape until every
	// tier's series has appeared (matches emitted, checkpoints run).
	want := []string{
		`sg_shard_queue_depth{shard="0"}`,
		`sg_match_lag_ns{query="hop1",quantile="0.5"}`,
		`sg_match_lag_ns{query="hop2",quantile="0.5"}`,
		`sg_dshard_bytes_out_total{shard="1"}`,
		`sg_edlog_fsync_ns{quantile="0.99"}`,
		`sg_checkpoint_rounds_total`,
		`sg_server_match_buffer_depth`,
	}
	var body string
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(web.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("content type %q", ct)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		body = string(b)
		missing := 0
		for _, w := range want {
			if !strings.Contains(body, w) {
				missing++
			}
		}
		if missing == 0 {
			break
		}
		if time.Now().After(deadline) {
			for _, w := range want {
				if !strings.Contains(body, w) {
					t.Errorf("scrape missing %q", w)
				}
			}
			t.FailNow()
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Every line must parse as Prometheus text exposition.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !promLine.MatchString(line) && !promType.MatchString(line) {
			t.Fatalf("malformed exposition line %q", line)
		}
	}

	// pprof and expvar ride the same handler.
	resp, err := http.Get(web.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: status %d", resp.StatusCode)
	}
	resp, err = http.Get(web.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vars, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(vars), `"streamgraph"`) {
		t.Error("expvar output lacks the streamgraph registry map")
	}

	// The same registry over the wire: "stats full" lists every series
	// the scrape showed, and the bare "stats" reply is unchanged.
	c.send("stats full")
	head := c.expectPrefix("ok ")
	var n int
	if _, err := fmt.Sscanf(head, "ok %d", &n); err != nil {
		t.Fatalf("stats full header %q: %v", head, err)
	}
	if n == 0 {
		t.Fatal("stats full reported no series")
	}
	seen := make(map[string]bool)
	for i := 0; i < n; i++ {
		line := c.expectPrefix("metric ")
		seen[strings.Fields(line)[1]] = true
	}
	for _, w := range []string{`sg_router_edges_admitted_total`, `sg_match_lag_ns{query="hop1"}`} {
		if !seen[w] {
			t.Errorf("stats full missing %s", w)
		}
	}
	c.send("stats")
	c.expectPrefix("ok shards=2 edges=400 queries=2")
}
