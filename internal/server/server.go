// Package server exposes the multi-query engine over a line-oriented
// TCP protocol, turning the library into the deployable service the
// paper's introduction sketches: organizations "register a pattern as a
// graph query and continuously perform the query on the data graph".
//
// The protocol is plain text, one command per line:
//
//	register <name> [strategy]   begin registering a query; the query
//	                             body follows in the textual query
//	                             format, terminated by a line "end"
//	unregister <name>            drop a query
//	edge <src> <srcLabel> <dst> <dstLabel> <type> <ts>
//	                             ingest one edge (fields tab- or
//	                             space-separated)
//	matches [max]                drain buffered asynchronous matches
//	                             (sharded mode only)
//	stats                        engine counters
//	quit                         close the connection
//
// Replies: "ok [detail]" on success, "err <reason>" on failure. Each
// edge's reply is "ok <n>" followed by n lines "match <query> <bindings>"
// — the complete matches that edge produced across all registered
// queries. Ingestion is serialized server-side (single-writer graph);
// any number of clients may connect.
//
// With Config.Shards > 0 the server runs on the sharded runtime
// (internal/shard) instead of a single MultiEngine: queries are
// partitioned across shard workers with edge-type-filtered graph
// replicas, ingestion is asynchronous, and matches are buffered
// server-side. The protocol shifts accordingly: "edge" replies "ok
// queued <seq>" immediately (no match lines), the "matches" command
// drains the buffered matches, and "stats" reports one extra line per
// shard with its queue depth, edges routed, matches emitted, replica
// size (live/stored edges) and replica type-filter width ("*" = the
// shard replicates every type).
package server

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"streamgraph/internal/core"
	"streamgraph/internal/metrics"
	"streamgraph/internal/query"
	"streamgraph/internal/shard"
	"streamgraph/internal/stream"
)

// Config parameterizes a Server.
type Config struct {
	// Window is tW shared by all queries (0 = unwindowed).
	Window int64
	// EvictEvery forwards to the engine (default 256).
	EvictEvery int
	// DefaultStrategy applies when a register command names none.
	// The zero value selects StrategySingleLazy.
	DefaultStrategy core.Strategy
	// MaxQueryLines bounds the register body (default 256).
	MaxQueryLines int
	// Shards, when > 0, serves from the sharded runtime: queries
	// partitioned across Shards workers, asynchronous match delivery
	// via the "matches" command.
	Shards int
	// Remotes lists remote shard worker addresses (sgshard processes);
	// each becomes one shard slot alongside the Shards local workers.
	// Setting Remotes selects the sharded runtime even with Shards ==
	// 0 (an all-remote topology). See shard.Config.Remotes.
	Remotes []string
	// ShardQueue bounds each shard's ingest queue (default 256).
	ShardQueue int
	// MatchBuffer bounds the server-side buffer of undelivered
	// asynchronous matches; the oldest are dropped (and counted) when
	// it overflows (default 4096). Sharded mode only.
	MatchBuffer int
	// DataDir, when set (Open only), makes the sharded runtime durable:
	// edges are appended to a segment-backed log under this directory
	// and engines checkpoint periodically, so a restart recovers the
	// registered queries and in-window graph state. See shard.Open and
	// docs/PERSISTENCE.md.
	DataDir string
	// CheckpointEvery is the durable checkpoint cadence in edges
	// (default 4096). Ignored without DataDir.
	CheckpointEvery int
}

// Server hosts one shared multi-query engine.
type Server struct {
	cfg   Config
	multi *core.MultiEngine // nil in sharded mode

	router        *shard.Router // nil unless cfg.Shards > 0 or cfg.Remotes set
	buf           *matchLog
	collectorDone chan struct{}

	// reg is the server's metrics registry: the router's own registry
	// in sharded mode (plus server-level buffer series), a private one
	// over the single engine otherwise. Always non-nil; read by the
	// `stats full` command and the /metrics debug endpoint.
	reg *metrics.Registry

	mu sync.Mutex // serializes engine access across connections

	lnMu   sync.Mutex
	ln     net.Listener
	closed bool
	conns  map[net.Conn]bool
	wg     sync.WaitGroup
}

// New returns a server with an empty engine. DataDir is ignored here;
// a durable server starts with Open.
func New(cfg Config) *Server {
	s := newServer(cfg)
	if cfg.Shards > 0 || len(cfg.Remotes) > 0 {
		s.attachRouter(shard.New(s.shardConfig()), nil)
	} else {
		s.multi = core.NewMulti(core.MultiConfig{Window: cfg.Window, EvictEvery: cfg.EvictEvery})
		s.initEngineMetrics()
	}
	return s
}

// Open is New for a durable data directory: the sharded runtime is
// recovered from cfg.DataDir (see shard.Open), matches regenerated by
// the recovery replay land in the asynchronous match buffer (drain
// them with the "matches" command; delivery across a restart is
// at-least-once), and Close commits a final checkpoint. DataDir
// implies the sharded runtime — with Shards == 0 and no Remotes, one
// shard worker is used.
func Open(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("server: Open requires Config.DataDir (use New for a volatile server)")
	}
	if cfg.Shards <= 0 && len(cfg.Remotes) == 0 {
		cfg.Shards = 1
	}
	s := newServer(cfg)
	r, recovered, err := shard.Open(s.shardConfig())
	if err != nil {
		return nil, err
	}
	s.attachRouter(r, recovered)
	return s, nil
}

func newServer(cfg Config) *Server {
	if cfg.DefaultStrategy == core.StrategySingle {
		cfg.DefaultStrategy = core.StrategySingleLazy
	}
	if cfg.MaxQueryLines <= 0 {
		cfg.MaxQueryLines = 256
	}
	if cfg.MatchBuffer <= 0 {
		cfg.MatchBuffer = 4096
	}
	return &Server{
		cfg:   cfg,
		conns: make(map[net.Conn]bool),
	}
}

func (s *Server) shardConfig() shard.Config {
	return shard.Config{
		Shards:          s.cfg.Shards,
		Remotes:         s.cfg.Remotes,
		QueueLen:        s.cfg.ShardQueue,
		Window:          s.cfg.Window,
		EvictEvery:      s.cfg.EvictEvery,
		DataDir:         s.cfg.DataDir,
		CheckpointEvery: s.cfg.CheckpointEvery,
	}
}

// attachRouter installs the sharded runtime and starts the collector
// goroutine the durable checkpoint barrier depends on (shard.Open's
// liveness contract: the match channel must always be drained).
func (s *Server) attachRouter(r *shard.Router, recovered []shard.Match) {
	s.router = r
	s.buf = &matchLog{limit: s.cfg.MatchBuffer}
	for _, m := range recovered {
		s.buf.add(m)
	}
	s.collectorDone = make(chan struct{})
	go func() {
		defer close(s.collectorDone)
		s.router.Drain(s.buf.add)
	}()
	s.reg = s.router.Metrics()
	s.reg.GaugeFunc("sg_server_match_buffer_depth", s.buf.depth)
	s.reg.CounterFunc("sg_server_matches_dropped_total", s.buf.totalDrops)
}

// initEngineMetrics builds the non-sharded registry: engine totals read
// under the ingest mutex at scrape time, plus a per-edge process
// latency histogram the engine records into.
func (s *Server) initEngineMetrics() {
	s.reg = metrics.NewRegistry()
	stat := func(f func(core.MultiStats) int64) func() int64 {
		return func() int64 {
			s.mu.Lock()
			st := s.multi.Stats()
			s.mu.Unlock()
			return f(st)
		}
	}
	s.reg.GaugeFunc("sg_engine_edges_processed", stat(func(st core.MultiStats) int64 { return st.EdgesProcessed }))
	s.reg.GaugeFunc("sg_engine_queries", stat(func(st core.MultiStats) int64 { return int64(st.Queries) }))
	s.reg.GaugeFunc("sg_engine_partial_matches", stat(func(st core.MultiStats) int64 { return st.PartialMatches }))
	s.multi.SetEdgeLatency(s.reg.Histogram("sg_edge_process_ns"), 1)
}

// Metrics returns the server's live metrics registry (the substrate
// behind the /metrics debug endpoint and the wire `stats full`
// command).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// PersistErr reports the first durable-write failure on a server
// started with Open (always nil for New). Once set, the stream keeps
// flowing in-memory but the data directory stays at its last
// committed checkpoint.
func (s *Server) PersistErr() error {
	if s.router == nil {
		return nil
	}
	return s.router.PersistErr()
}

// matchLog buffers asynchronous matches between "matches" commands:
// append-at-tail, drain-from-head, bounded by dropping the oldest.
type matchLog struct {
	mu      sync.Mutex
	items   []shard.Match
	head    int
	dropped int64 // since the last take (reported on the matches reply)
	drops   int64 // cumulative, never reset (metrics)
	limit   int
}

// depth reports the undelivered match count (metrics).
func (l *matchLog) depth() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int64(len(l.items) - l.head)
}

// totalDrops reports the cumulative overflow-drop count (metrics).
func (l *matchLog) totalDrops() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.drops
}

func (l *matchLog) add(m shard.Match) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.items = append(l.items, m)
	if len(l.items)-l.head > l.limit {
		l.head++
		l.dropped++
		l.drops++
	}
	if l.head > l.limit {
		l.items = append(l.items[:0], l.items[l.head:]...)
		l.head = 0
	}
}

// putBack reinserts matches a handler took but could not deliver (the
// connection broke mid-reply) at the FRONT of the buffer, restoring
// the given drop count, so another client can still drain them. A
// partially written match may be delivered twice after a reconnect —
// at-least-once beats silent loss. Overflow drops the re-added
// (oldest) entries first.
func (l *matchLog) putBack(ms []shard.Match, dropped int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dropped += dropped
	if len(ms) == 0 {
		return
	}
	items := make([]shard.Match, 0, len(ms)+len(l.items)-l.head)
	items = append(items, ms...)
	items = append(items, l.items[l.head:]...)
	l.items, l.head = items, 0
	for len(l.items)-l.head > l.limit {
		l.head++
		l.dropped++
		l.drops++
	}
}

// take removes up to max buffered matches (all when max <= 0) and
// returns them with the drop count since the last take.
func (l *matchLog) take(max int) ([]shard.Match, int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	avail := len(l.items) - l.head
	if max <= 0 || max > avail {
		max = avail
	}
	out := append([]shard.Match(nil), l.items[l.head:l.head+max]...)
	l.head += max
	if l.head == len(l.items) {
		l.items = l.items[:0]
		l.head = 0
	}
	dropped := l.dropped
	l.dropped = 0
	return out, dropped
}

// Serve accepts connections on ln until Close. It returns the accept
// error that terminated the loop (net.ErrClosed after Close).
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		return fmt.Errorf("server: already closed")
	}
	s.ln = ln
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.lnMu.Lock()
		if s.closed {
			s.lnMu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.lnMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, closes every live connection and waits for
// handlers to finish.
func (s *Server) Close() {
	s.lnMu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.lnMu.Unlock()
	s.wg.Wait()
	if s.router != nil {
		s.router.Close()
		<-s.collectorDone
	}
}

func (s *Server) dropConn(c net.Conn) {
	s.lnMu.Lock()
	delete(s.conns, c)
	s.lnMu.Unlock()
	c.Close()
}

func (s *Server) handle(conn net.Conn) {
	defer s.dropConn(conn)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	w := bufio.NewWriter(conn)
	reply := func(format string, args ...any) bool {
		fmt.Fprintf(w, format+"\n", args...)
		return w.Flush() == nil
	}
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "register":
			if len(fields) < 2 || len(fields) > 3 {
				if !reply("err usage: register <name> [strategy]") {
					return
				}
				continue
			}
			strat := s.cfg.DefaultStrategy
			if len(fields) == 3 {
				var ok bool
				strat, ok = parseStrategy(fields[2])
				if !ok {
					if !reply("err unknown strategy %q", fields[2]) {
						return
					}
					continue
				}
			}
			body, err := s.readQueryBody(sc)
			if err != nil {
				if !reply("err %v", err) {
					return
				}
				continue
			}
			if err := s.register(fields[1], body, strat); err != nil {
				if !reply("err %v", err) {
					return
				}
				continue
			}
			if !reply("ok registered %s", fields[1]) {
				return
			}
		case "unregister":
			if len(fields) != 2 {
				if !reply("err usage: unregister <name>") {
					return
				}
				continue
			}
			if s.router != nil {
				s.router.Unregister(fields[1])
			} else {
				s.mu.Lock()
				s.multi.Unregister(fields[1])
				s.mu.Unlock()
			}
			if !reply("ok") {
				return
			}
		case "migrate":
			if s.router == nil {
				if !reply("err migrate requires sharded mode (run with -shards)") {
					return
				}
				continue
			}
			if len(fields) != 4 {
				if !reply("err usage: migrate <name> <from> <to>") {
					return
				}
				continue
			}
			from, err1 := strconv.Atoi(fields[2])
			to, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil {
				if !reply("err bad slot number") {
					return
				}
				continue
			}
			if err := s.router.Migrate(fields[1], from, to); err != nil {
				if !reply("err %v", err) {
					return
				}
				continue
			}
			if !reply("ok migrated %s %d %d", fields[1], from, to) {
				return
			}
		case "rebalance":
			if s.router == nil {
				if !reply("err rebalance requires sharded mode (run with -shards)") {
					return
				}
				continue
			}
			if len(fields) != 1 {
				if !reply("err usage: rebalance") {
					return
				}
				continue
			}
			moved, err := s.router.Rebalance()
			if err != nil {
				if !reply("err %v", err) {
					return
				}
				continue
			}
			if !reply("ok moved %d", moved) {
				return
			}
		case "edge":
			e, err := parseEdge(fields[1:])
			if err != nil {
				if !reply("err %v", err) {
					return
				}
				continue
			}
			if s.router != nil {
				seq := s.router.Ingest(e)
				if !reply("ok queued %d", seq) {
					return
				}
				continue
			}
			s.mu.Lock()
			matches := s.multi.ProcessEdge(e)
			lines := make([]string, 0, len(matches))
			for _, nm := range matches {
				eng := s.multi.QueryEngine(nm.Query)
				if eng == nil {
					continue
				}
				lines = append(lines, fmt.Sprintf("match %s %s", nm.Query, eng.Explain(nm.Match)))
			}
			s.mu.Unlock()
			ok := reply("ok %d", len(lines))
			for _, ln := range lines {
				ok = ok && reply("%s", ln)
			}
			if !ok {
				return
			}
		case "matches":
			if s.router == nil {
				if !reply("err matches requires sharded mode (run with -shards)") {
					return
				}
				continue
			}
			max := 0
			if len(fields) == 2 {
				var err error
				max, err = strconv.Atoi(fields[1])
				if err != nil {
					if !reply("err bad max %q", fields[1]) {
						return
					}
					continue
				}
			}
			ms, dropped := s.buf.take(max)
			if !reply("ok %d dropped=%d", len(ms), dropped) {
				s.buf.putBack(ms, dropped)
				return
			}
			for i, m := range ms {
				if !reply("match %s %s", m.Query, m.BindingString()) {
					s.buf.putBack(ms[i:], 0)
					return
				}
			}
		case "stats":
			if len(fields) == 2 && fields[1] == "full" {
				// Full registry dump: one "metric" line per series, with
				// histograms as count/p50/p99/max. The bare "stats" reply
				// below is unchanged for existing tooling.
				samples := s.reg.Snapshot()
				lines := make([]string, 0, len(samples))
				for _, smp := range samples {
					id := smp.Name
					if ls := smp.LabelString(); ls != "" {
						id += "{" + ls + "}"
					}
					if smp.Hist != nil {
						lines = append(lines, fmt.Sprintf("metric %s count=%d p50=%d p99=%d max=%d",
							id, smp.Hist.Count(), smp.Hist.Quantile(0.5), smp.Hist.Quantile(0.99), smp.Hist.Max()))
					} else {
						lines = append(lines, fmt.Sprintf("metric %s %d", id, smp.Value))
					}
				}
				ok := reply("ok %d", len(lines))
				for _, ln := range lines {
					ok = ok && reply("%s", ln)
				}
				if !ok {
					return
				}
				continue
			}
			if len(fields) != 1 {
				if !reply("err usage: stats [full]") {
					return
				}
				continue
			}
			if s.router != nil {
				st := s.router.Stats()
				ok := reply("ok shards=%d edges=%d queries=%d",
					len(st), s.router.EdgesRouted(), len(s.router.Registered()))
				for _, sh := range st {
					types := fmt.Sprintf("%d", sh.ReplicaTypes)
					if sh.ReplicaTypes < 0 {
						types = "*"
					}
					ok = ok && reply("shard %d queries=%d queue=%d/%d routed=%d emitted=%d replica=%d/%d types=%s",
						sh.Shard, sh.Queries, sh.QueueDepth, sh.QueueCap, sh.EdgesRouted, sh.MatchesEmitted,
						sh.ReplicaEdges, sh.ReplicaStored, types)
				}
				if !ok {
					return
				}
				continue
			}
			s.mu.Lock()
			st := s.multi.Stats()
			s.mu.Unlock()
			if !reply("ok edges=%d queries=%d partial=%d",
				st.EdgesProcessed, st.Queries, st.PartialMatches) {
				return
			}
		case "quit":
			reply("ok bye")
			return
		default:
			if !reply("err unknown command %q", fields[0]) {
				return
			}
		}
	}
}

func (s *Server) readQueryBody(sc *bufio.Scanner) (string, error) {
	var lines []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "end" {
			return strings.Join(lines, "\n"), nil
		}
		lines = append(lines, line)
		if len(lines) > s.cfg.MaxQueryLines {
			return "", fmt.Errorf("query body exceeds %d lines", s.cfg.MaxQueryLines)
		}
	}
	return "", fmt.Errorf("connection ended inside query body")
}

func (s *Server) register(name, body string, strat core.Strategy) error {
	q, err := query.Parse(body)
	if err != nil {
		return err
	}
	if s.router != nil {
		return s.router.Register(name, q, core.Config{Strategy: strat})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// The shared rolling statistics collected from the live stream feed
	// the decomposition; a query registered before any traffic uses
	// uniform selectivities.
	return s.multi.Register(name, q, core.Config{Strategy: strat})
}

func parseEdge(fields []string) (stream.Edge, error) {
	if len(fields) != 6 {
		return stream.Edge{}, fmt.Errorf("usage: edge <src> <srcLabel> <dst> <dstLabel> <type> <ts>")
	}
	ts, err := strconv.ParseInt(fields[5], 10, 64)
	if err != nil {
		return stream.Edge{}, fmt.Errorf("bad timestamp %q", fields[5])
	}
	return stream.Edge{
		Src: fields[0], SrcLabel: fields[1],
		Dst: fields[2], DstLabel: fields[3],
		Type: fields[4], TS: ts,
	}, nil
}

func parseStrategy(s string) (core.Strategy, bool) {
	switch strings.ToLower(s) {
	case "single":
		return core.StrategySingle, true
	case "singlelazy":
		return core.StrategySingleLazy, true
	case "path":
		return core.StrategyPath, true
	case "pathlazy":
		return core.StrategyPathLazy, true
	case "vf2":
		return core.StrategyVF2, true
	case "inciso":
		return core.StrategyIncIso, true
	case "auto":
		return core.StrategyAuto, true
	}
	return 0, false
}
