package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestServerMigrateRebalanceWire drives the live-migration wire
// commands end to end and pins that the migration counters they bump
// are truthfully surfaced through both observability paths — the
// "stats full" wire dump and the /metrics scrape.
func TestServerMigrateRebalanceWire(t *testing.T) {
	srv, addr := startServer(t, Config{Window: 100, Shards: 2})
	c := dial(t, addr)
	registerTwoHop(c, "lateral")
	registerTwoHop(c, "exfil")

	// The client does not know which slot the placement policy chose;
	// one of the two directions is correct and must succeed.
	c.send("migrate lateral 0 1")
	reply := c.recv()
	if strings.HasPrefix(reply, "err") {
		c.send("migrate lateral 1 0")
		c.expectPrefix("ok migrated lateral 1 0")
	} else if !strings.HasPrefix(reply, "ok migrated lateral 0 1") {
		t.Fatalf("migrate reply %q", reply)
	}

	c.send("rebalance")
	var moved int
	if _, err := fmt.Sscanf(c.expectPrefix("ok moved "), "ok moved %d", &moved); err != nil {
		t.Fatalf("rebalance reply: %v", err)
	}

	// Bad arguments keep the connection alive.
	c.send("migrate lateral 0 zero")
	c.expectPrefix("err bad slot number")
	c.send("migrate lateral")
	c.expectPrefix("err usage: migrate <name> <from> <to>")
	c.send("migrate ghost 0 1")
	c.expectPrefix("err ")

	// One migration succeeded above; rebalance may have moved more.
	wantCompleted := int64(1 + moved)

	// Path 1: the stats full wire dump.
	c.send("stats full")
	head := c.expectPrefix("ok ")
	var n int
	if _, err := fmt.Sscanf(head, "ok %d", &n); err != nil {
		t.Fatalf("stats full header %q: %v", head, err)
	}
	series := make(map[string]string)
	for i := 0; i < n; i++ {
		f := strings.Fields(c.expectPrefix("metric "))
		series[f[1]] = f[2]
	}
	for name, want := range map[string]string{
		"sg_migrations_started_total":   fmt.Sprint(wantCompleted),
		"sg_migrations_completed_total": fmt.Sprint(wantCompleted),
		"sg_migrations_failed_total":    "0",
		"sg_failovers_total":            "0",
	} {
		if got, ok := series[name]; !ok {
			t.Errorf("stats full missing %s", name)
		} else if got != want {
			t.Errorf("stats full %s = %s, want %s", name, got, want)
		}
	}

	// Path 2: the Prometheus scrape.
	web := httptest.NewServer(srv.DebugHandler())
	defer web.Close()
	resp, err := http.Get(web.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		fmt.Sprintf("sg_migrations_started_total %d", wantCompleted),
		fmt.Sprintf("sg_migrations_completed_total %d", wantCompleted),
		"sg_migrations_failed_total 0",
		"sg_failovers_total 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServerMigrateRequiresShards pins the single-engine error reply.
func TestServerMigrateRequiresShards(t *testing.T) {
	_, addr := startServer(t, Config{Window: 100})
	c := dial(t, addr)
	c.send("migrate q 0 1")
	c.expectPrefix("err migrate requires sharded mode")
	c.send("rebalance")
	c.expectPrefix("err rebalance requires sharded mode")
}
