// HTTP observability sidecar: a debug handler exposing the metrics
// registry in the Prometheus text format, the standard pprof profiles,
// and expvar — served on a separate listener (sgserve -http) so the
// line protocol's port stays protocol-only.
package server

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"

	"streamgraph/internal/metrics"
)

// expvarReg points at the most recently constructed server's registry;
// expvar publication is process-global and permanent, so the published
// Func indirects through it instead of capturing one server (tests
// construct many).
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[metrics.Registry]
)

// publishExpvar exposes reg under the "streamgraph" expvar as a flat
// name -> value map (histograms flattened to .count/.p50/.p99/.max).
func publishExpvar(reg *metrics.Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("streamgraph", expvar.Func(func() any {
			r := expvarReg.Load()
			if r == nil {
				return nil
			}
			out := make(map[string]int64)
			for _, smp := range r.Snapshot() {
				id := smp.Name
				if ls := smp.LabelString(); ls != "" {
					id += "{" + ls + "}"
				}
				if smp.Hist != nil {
					out[id+".count"] = int64(smp.Hist.Count())
					out[id+".p50"] = smp.Hist.Quantile(0.5)
					out[id+".p99"] = smp.Hist.Quantile(0.99)
					out[id+".max"] = smp.Hist.Max()
				} else {
					out[id] = smp.Value
				}
			}
			return out
		}))
	})
}

// DebugHandler returns the server's observability mux:
//
//	GET /metrics        the metrics registry, Prometheus text format
//	GET /debug/pprof/   the standard runtime profiles (net/http/pprof)
//	GET /debug/vars     expvar, including the "streamgraph" registry map
//
// Serve it on a side listener (sgserve -http addr); it is independent
// of the line protocol and safe to scrape at any rate — reads are
// lock-free snapshots that never block ingestion. See
// docs/OBSERVABILITY.md.
func (s *Server) DebugHandler() http.Handler {
	publishExpvar(s.reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
