// Package prof wires the standard runtime/pprof file profiles into the
// CLIs: -cpuprofile and -memprofile flags for sgbench and sgtail, so
// the hot-path work (SJ-Tree inserts, candidate search, eviction) can
// be profiled on real workloads without a test harness.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the registered profile destinations.
type Flags struct {
	cpu *string
	mem *string
}

// RegisterFlags adds -cpuprofile / -memprofile to the default flag set.
// Call before flag.Parse.
func RegisterFlags() *Flags {
	return &Flags{
		cpu: flag.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: flag.String("memprofile", "", "write an allocation profile to this file on exit"),
	}
}

// Start begins CPU profiling when requested and returns a stop function
// to defer: it flushes the CPU profile and, when requested, writes the
// heap profile. Call after flag.Parse.
func (f *Flags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if *f.cpu != "" {
		cpuFile, err = os.Create(*f.cpu)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if *f.mem != "" {
			mf, err := os.Create(*f.mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer mf.Close()
			runtime.GC() // materialize the live-heap picture
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}, nil
}
