package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
)

// RandomPathQuery builds a directed path query of the given length with
// all vertex labels set to label (use query.Wildcard for the unlabeled
// queries of Section 6.2) and edge types drawn uniformly from types.
func RandomPathQuery(rng *rand.Rand, types []string, length int, label string) *query.Graph {
	qt := make([]string, length)
	for i := range qt {
		qt[i] = types[rng.Intn(len(types))]
	}
	return query.NewPath(label, qt...)
}

// RandomBinaryTreeQuery builds a rooted tree query with nVertices
// vertices where every vertex has at most two children (the binary-tree
// test generation of Sun et al. used for the netflow experiments).
// Edges point from parent to child; types are uniform over types.
func RandomBinaryTreeQuery(rng *rand.Rand, types []string, nVertices int, label string) *query.Graph {
	q := &query.Graph{}
	q.AddVertex("v0", label)
	children := make([]int, 1) // children count per vertex
	for i := 1; i < nVertices; i++ {
		// Candidate parents: vertices with < 2 children.
		var cands []int
		for v, c := range children {
			if c < 2 {
				cands = append(cands, v)
			}
		}
		parent := cands[rng.Intn(len(cands))]
		nv := q.AddVertex(fmt.Sprintf("v%d", i), label)
		children = append(children, 0)
		children[parent]++
		q.AddEdge(parent, nv, types[rng.Intn(len(types))])
	}
	return q
}

// RandomSchemaPathQuery builds a path query whose every edge conforms
// to the schema: starting from a random triple, the path is extended at
// its tip with a compatible triple (either direction), so consecutive
// edges always share a legally-labeled vertex. Vertices carry their
// schema labels, as in the paper's LSBench query generation.
func RandomSchemaPathQuery(rng *rand.Rand, schema []Triple, length int) *query.Graph {
	q := &query.Graph{}
	t0 := schema[rng.Intn(len(schema))]
	s := q.AddVertex("v0", t0.SrcLabel)
	d := q.AddVertex("v1", t0.DstLabel)
	q.AddEdge(s, d, t0.Type)
	tip := d
	for len(q.Edges) < length {
		label := q.Vertices[tip].Label
		var out, in []Triple
		for _, tr := range schema {
			if tr.SrcLabel == label {
				out = append(out, tr)
			}
			if tr.DstLabel == label {
				in = append(in, tr)
			}
		}
		if len(out)+len(in) == 0 {
			// Dead-end label: restart from the other end once, else
			// accept the shorter path (caller filters by validity).
			break
		}
		k := rng.Intn(len(out) + len(in))
		nv := q.AddVertex(fmt.Sprintf("v%d", len(q.Vertices)), "")
		if k < len(out) {
			tr := out[k]
			q.Vertices[nv].Label = tr.DstLabel
			q.AddEdge(tip, nv, tr.Type)
		} else {
			tr := in[k-len(out)]
			q.Vertices[nv].Label = tr.SrcLabel
			q.AddEdge(nv, tip, tr.Type)
		}
		tip = nv
	}
	return q
}

// GenerateSchemaPathQueries produces count schema-conforming path
// queries of exactly the given length whose 2-edge paths are all
// observed.
func GenerateSchemaPathQueries(rng *rand.Rand, schema []Triple, length, count int, c *selectivity.Collector) []*query.Graph {
	var out []*query.Graph
	for attempts := 0; len(out) < count && attempts < count*200; attempts++ {
		q := RandomSchemaPathQuery(rng, schema, length)
		if len(q.Edges) != length {
			continue // dead-ended before reaching the requested length
		}
		if c != nil && !AllQueryPathsSeen(q, c) {
			continue
		}
		out = append(out, q)
	}
	return out
}

// RandomSchemaTreeQuery grows an n-ary tree query from schema triples,
// mirroring the paper's LSBench query generation: start from a random
// valid triple, then iteratively attach valid new edges at any existing
// vertex whose label admits a compatible triple. Vertices carry their
// schema labels.
func RandomSchemaTreeQuery(rng *rand.Rand, schema []Triple, nEdges int) *query.Graph {
	q := &query.Graph{}
	t0 := schema[rng.Intn(len(schema))]
	s := q.AddVertex("v0", t0.SrcLabel)
	d := q.AddVertex("v1", t0.DstLabel)
	q.AddEdge(s, d, t0.Type)

	for len(q.Edges) < nEdges {
		// Pick a random existing vertex and a random compatible triple.
		v := rng.Intn(len(q.Vertices))
		label := q.Vertices[v].Label
		var out, in []Triple
		for _, tr := range schema {
			if tr.SrcLabel == label {
				out = append(out, tr)
			}
			if tr.DstLabel == label {
				in = append(in, tr)
			}
		}
		if len(out)+len(in) == 0 {
			continue
		}
		k := rng.Intn(len(out) + len(in))
		nv := q.AddVertex(fmt.Sprintf("v%d", len(q.Vertices)), "")
		if k < len(out) {
			tr := out[k]
			q.Vertices[nv].Label = tr.DstLabel
			q.AddEdge(v, nv, tr.Type)
		} else {
			tr := in[k-len(out)]
			q.Vertices[nv].Label = tr.SrcLabel
			q.AddEdge(nv, v, tr.Type)
		}
	}
	return q
}

// AllQueryPathsSeen reports whether every 2-edge path of the query was
// observed in the collected statistics — the Section 6.4 filter that
// drops queries made artificially discriminative by an unseen path
// combination.
func AllQueryPathsSeen(q *query.Graph, c *selectivity.Collector) bool {
	for i := range q.Edges {
		for j := i + 1; j < len(q.Edges); j++ {
			if !sharesOneVertex(q.Edges[i], q.Edges[j]) {
				continue
			}
			if !c.LeafSeen(q, []int{i, j}) {
				return false
			}
		}
	}
	return true
}

func sharesOneVertex(a, b query.Edge) bool {
	n := 0
	for _, v := range []int{a.Src, a.Dst} {
		if v == b.Src || v == b.Dst {
			n++
		}
	}
	return n == 1
}

// GeneratePathQueries produces count random path queries of the given
// length whose 2-edge paths are all observed, giving up after a bounded
// number of attempts per query.
func GeneratePathQueries(rng *rand.Rand, types []string, length, count int, c *selectivity.Collector) []*query.Graph {
	return generateFiltered(rng, count, c, func() *query.Graph {
		return RandomPathQuery(rng, types, length, query.Wildcard)
	})
}

// GenerateBinaryTreeQueries produces count random binary tree queries
// with nVertices vertices whose 2-edge paths are all observed.
func GenerateBinaryTreeQueries(rng *rand.Rand, types []string, nVertices, count int, c *selectivity.Collector) []*query.Graph {
	return generateFiltered(rng, count, c, func() *query.Graph {
		return RandomBinaryTreeQuery(rng, types, nVertices, query.Wildcard)
	})
}

// GenerateSchemaTreeQueries produces count schema-conforming tree
// queries with nEdges edges whose 2-edge paths are all observed.
func GenerateSchemaTreeQueries(rng *rand.Rand, schema []Triple, nEdges, count int, c *selectivity.Collector) []*query.Graph {
	return generateFiltered(rng, count, c, func() *query.Graph {
		return RandomSchemaTreeQuery(rng, schema, nEdges)
	})
}

func generateFiltered(rng *rand.Rand, count int, c *selectivity.Collector, gen func() *query.Graph) []*query.Graph {
	var out []*query.Graph
	for attempts := 0; len(out) < count && attempts < count*200; attempts++ {
		q := gen()
		if c != nil && !AllQueryPathsSeen(q, c) {
			continue
		}
		out = append(out, q)
	}
	return out
}

// MedianExpectedSelectivity returns the median Ŝ (under the greedy
// pair decomposition) of a query pool, or 1 for an empty/unscorable
// pool.
func MedianExpectedSelectivity(queries []*query.Graph, c *selectivity.Collector) float64 {
	var vals []float64
	for _, q := range queries {
		s, err := c.ExpectedSelectivity(q, pairLeaves(q))
		if err != nil || s <= 0 {
			continue
		}
		vals = append(vals, s)
	}
	if len(vals) == 0 {
		return 1
	}
	sort.Float64s(vals)
	return vals[len(vals)/2]
}

// FilterByMaxExpectedSelectivity drops queries whose Expected
// Selectivity under the greedy pair decomposition exceeds maxS. The
// paper's evaluated query samples are overwhelmingly selective (its
// Figure 10 netflow/LSBench samples span ξ ∈ [1e-10, 1e-4]); queries
// composed only of top-frequency primitives have combinatorially
// exploding match sets that no strategy — including the paper's — can
// track at interactive timescales.
func FilterByMaxExpectedSelectivity(queries []*query.Graph, c *selectivity.Collector, maxS float64) []*query.Graph {
	var out []*query.Graph
	for _, q := range queries {
		s, err := c.ExpectedSelectivity(q, pairLeaves(q))
		if err != nil || s > maxS {
			continue
		}
		out = append(out, q)
	}
	return out
}

// SampleByExpectedSelectivity reduces a query set to k queries that
// cover the observed Expected Selectivity range near-uniformly in log
// space (Section 6.4's final sampling step). Sampling log-uniformly
// over Ŝ matches the paper's effective query mix: their Figure 10
// netflow sample spans ξ ∈ [1e-10, 1e-4], i.e. overwhelmingly
// selective queries, which rank-uniform sampling over a random pool
// would not reproduce (the pool is dominated by frequent-type
// combinations).
func SampleByExpectedSelectivity(queries []*query.Graph, c *selectivity.Collector, k int) []*query.Graph {
	if len(queries) <= k {
		return queries
	}
	type scored struct {
		q *query.Graph
		s float64 // log10 Ŝ
	}
	var sc []scored
	for _, q := range queries {
		leaves := pairLeaves(q)
		s, err := c.ExpectedSelectivity(q, leaves)
		if err != nil || s <= 0 {
			continue
		}
		sc = append(sc, scored{q, math.Log10(s)})
	}
	if len(sc) == 0 {
		return nil
	}
	sort.Slice(sc, func(i, j int) bool { return sc[i].s < sc[j].s })
	if len(sc) <= k {
		out := make([]*query.Graph, len(sc))
		for i, s := range sc {
			out[i] = s.q
		}
		return out
	}
	lo, hi := sc[0].s, sc[len(sc)-1].s
	out := make([]*query.Graph, 0, k)
	used := make(map[int]bool)
	for i := 0; i < k; i++ {
		target := lo
		if k > 1 {
			target = lo + (hi-lo)*float64(i)/float64(k-1)
		}
		// Closest unused query to the target log-selectivity.
		best, bestDist := -1, math.Inf(1)
		for j, s := range sc {
			if used[j] {
				continue
			}
			if d := math.Abs(s.s - target); d < bestDist {
				best, bestDist = j, d
			}
		}
		if best >= 0 {
			used[best] = true
			out = append(out, sc[best].q)
		}
	}
	return out
}

// pairLeaves greedily covers the query with adjacent edge pairs plus
// leftover singles; used only for scoring.
func pairLeaves(q *query.Graph) [][]int {
	used := make([]bool, len(q.Edges))
	var leaves [][]int
	for i := range q.Edges {
		if used[i] {
			continue
		}
		paired := false
		for j := i + 1; j < len(q.Edges); j++ {
			if used[j] || !sharesOneVertex(q.Edges[i], q.Edges[j]) {
				continue
			}
			leaves = append(leaves, []int{i, j})
			used[i], used[j] = true, true
			paired = true
			break
		}
		if !paired {
			leaves = append(leaves, []int{i})
			used[i] = true
		}
	}
	return leaves
}
