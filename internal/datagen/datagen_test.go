package datagen

import (
	"math/rand"
	"testing"

	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
)

func TestNetflowDeterministicAndShaped(t *testing.T) {
	cfg := NetflowConfig{Seed: 1, Edges: 20000, Hosts: 500}
	a := Netflow(cfg)
	b := Netflow(cfg)
	if len(a) != 20000 || len(b) != 20000 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	counts := map[string]int{}
	lastTS := int64(0)
	for _, e := range a {
		counts[e.Type]++
		if e.Src == e.Dst {
			t.Fatalf("self loop generated")
		}
		if e.TS < lastTS {
			t.Fatalf("timestamps not monotone")
		}
		lastTS = e.TS
		if e.SrcLabel != "ip" || e.DstLabel != "ip" {
			t.Fatalf("bad labels %v", e)
		}
	}
	// Shape: TCP dominates, UDP second, the tunneling protocols rare.
	if counts["TCP"] <= counts["UDP"] || counts["UDP"] <= counts["ICMP"] {
		t.Errorf("protocol ordering violated: %v", counts)
	}
	if counts["AH"] >= counts["ICMP"] {
		t.Errorf("rare protocol AH too common: %v", counts)
	}
	for _, p := range NetflowProtocols {
		if counts[p] == 0 {
			t.Errorf("protocol %s never generated", p)
		}
	}
}

func TestNetflowZipfHubs(t *testing.T) {
	edges := Netflow(NetflowConfig{Seed: 2, Edges: 30000, Hosts: 2000})
	deg := map[string]int{}
	for _, e := range edges {
		deg[e.Src]++
		deg[e.Dst]++
	}
	max, total := 0, 0
	for _, d := range deg {
		total += d
		if d > max {
			max = d
		}
	}
	// Zipf endpoints: the hottest host should carry far more than the
	// mean degree.
	mean := total / len(deg)
	if max < 10*mean {
		t.Errorf("no hub structure: max degree %d vs mean %d", max, mean)
	}
}

func TestLSBenchPhasesAndSchema(t *testing.T) {
	schema := LSBenchSchema()
	if len(schema) != 45 {
		t.Fatalf("schema has %d triples, want 45", len(schema))
	}
	valid := map[Triple]bool{}
	staticTypes := map[string]bool{}
	for i, tr := range schema {
		valid[tr] = true
		if i < lsbenchStatic {
			staticTypes[tr.Type] = true
		}
	}
	edges := LSBench(LSBenchConfig{Seed: 3, Users: 500, Edges: 30000})
	if len(edges) != 30000 {
		t.Fatalf("got %d edges", len(edges))
	}
	half := len(edges) / 2
	for i, e := range edges {
		tr := Triple{SrcLabel: e.SrcLabel, Type: e.Type, DstLabel: e.DstLabel}
		if !valid[tr] {
			t.Fatalf("edge %d violates schema: %+v", i, tr)
		}
		if i < half && !staticTypes[e.Type] {
			t.Fatalf("activity edge %s in static phase at %d", e.Type, i)
		}
		if i >= half && staticTypes[e.Type] {
			t.Fatalf("static edge %s in activity phase at %d", e.Type, i)
		}
	}
	// Distribution shift: the type sets of the halves must differ.
	c1, c2 := map[string]bool{}, map[string]bool{}
	for i, e := range edges {
		if i < half {
			c1[e.Type] = true
		} else {
			c2[e.Type] = true
		}
	}
	for tp := range c1 {
		if c2[tp] {
			t.Fatalf("type %s spans both phases", tp)
		}
	}
}

func TestNYTimesShape(t *testing.T) {
	edges := NYTimes(NYTimesConfig{Seed: 4, Articles: 2000})
	counts := map[string]int{}
	for _, e := range edges {
		counts[e.Type]++
		if e.SrcLabel != "article" {
			t.Fatalf("source must be an article: %v", e)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("want 4 edge types, got %v", counts)
	}
	if counts["article_mentions_person"] <= counts["article_mentions_geoloc"] {
		t.Errorf("person mentions should dominate geoloc: %v", counts)
	}
}

func TestRandomPathQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := RandomPathQuery(rng, NetflowProtocols, 4, query.Wildcard)
	if len(q.Edges) != 4 || !q.IsPath() {
		t.Fatalf("not a 4-path: %v", q)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBinaryTreeQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(13)
		q := RandomBinaryTreeQuery(rng, NetflowProtocols, n, query.Wildcard)
		if len(q.Vertices) != n || len(q.Edges) != n-1 {
			t.Fatalf("tree size wrong: %d vertices %d edges, want %d/%d", len(q.Vertices), len(q.Edges), n, n-1)
		}
		if !q.IsTree() {
			t.Fatalf("not a tree: %v", q)
		}
		// Out-degree (children) at most 2.
		kids := map[int]int{}
		for _, e := range q.Edges {
			kids[e.Src]++
			if kids[e.Src] > 2 {
				t.Fatalf("vertex %d has %d children", e.Src, kids[e.Src])
			}
		}
	}
}

func TestRandomSchemaTreeQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	schema := LSBenchSchema()
	valid := map[Triple]bool{}
	for _, tr := range schema {
		valid[tr] = true
	}
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		q := RandomSchemaTreeQuery(rng, schema, n)
		if len(q.Edges) != n {
			t.Fatalf("want %d edges, got %d", n, len(q.Edges))
		}
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
		if !q.IsTree() {
			t.Fatalf("not a tree: %v", q)
		}
		for _, e := range q.Edges {
			tr := Triple{SrcLabel: q.Vertices[e.Src].Label, Type: e.Type, DstLabel: q.Vertices[e.Dst].Label}
			if !valid[tr] {
				t.Fatalf("edge violates schema: %+v", tr)
			}
		}
	}
}

func TestGenerateFilteredQueries(t *testing.T) {
	edges := Netflow(NetflowConfig{Seed: 8, Edges: 20000, Hosts: 300})
	c := selectivity.NewCollector()
	c.AddAll(edges)
	rng := rand.New(rand.NewSource(9))
	qs := GeneratePathQueries(rng, NetflowProtocols, 3, 10, c)
	if len(qs) == 0 {
		t.Fatalf("no queries survived the seen-path filter")
	}
	for _, q := range qs {
		if !AllQueryPathsSeen(q, c) {
			t.Fatalf("unfiltered query slipped through")
		}
	}
}

func TestSampleByExpectedSelectivity(t *testing.T) {
	edges := Netflow(NetflowConfig{Seed: 10, Edges: 20000, Hosts: 300})
	c := selectivity.NewCollector()
	c.AddAll(edges)
	rng := rand.New(rand.NewSource(11))
	qs := GeneratePathQueries(rng, NetflowProtocols, 3, 30, c)
	if len(qs) < 10 {
		t.Skipf("only %d queries generated", len(qs))
	}
	sampled := SampleByExpectedSelectivity(qs, c, 5)
	if len(sampled) != 5 {
		t.Fatalf("sampled %d, want 5", len(sampled))
	}
	// Small inputs pass through unchanged.
	if got := SampleByExpectedSelectivity(qs[:3], c, 5); len(got) != 3 {
		t.Fatalf("small set should pass through, got %d", len(got))
	}
}
