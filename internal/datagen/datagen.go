// Package datagen generates the synthetic substitutes for the paper's
// three evaluation datasets (Section 6.2): a CAIDA-like internet
// backbone netflow stream, an LSBench-like RDF social media stream, and
// a New York Times-like online news stream. The generators are seeded
// and deterministic; they reproduce the properties the evaluation
// depends on — heavy skew in the 1-edge and 2-edge distributions,
// Zipfian vertex popularity, many edge types for the social stream, and
// a mid-stream distribution shift (Figure 6c).
package datagen

import (
	"fmt"
	"math/rand"

	"streamgraph/internal/stream"
)

// weighted picks an index from cumulative weights.
type weighted struct {
	labels []string
	cum    []float64
}

func newWeighted(pairs ...interface{}) weighted {
	var w weighted
	total := 0.0
	for i := 0; i < len(pairs); i += 2 {
		w.labels = append(w.labels, pairs[i].(string))
		total += pairs[i+1].(float64)
		w.cum = append(w.cum, total)
	}
	for i := range w.cum {
		w.cum[i] /= total
	}
	return w
}

func (w weighted) pick(rng *rand.Rand) string {
	x := rng.Float64()
	for i, c := range w.cum {
		if x <= c {
			return w.labels[i]
		}
	}
	return w.labels[len(w.labels)-1]
}

// --- Netflow (CAIDA substitute) ----------------------------------------

// NetflowProtocols are the seven traffic classes used by the paper's
// netflow experiments.
var NetflowProtocols = []string{"TCP", "UDP", "ICMP", "IPv6", "GRE", "ESP", "AH"}

// NetflowConfig parameterizes the netflow generator.
type NetflowConfig struct {
	Seed  int64
	Edges int
	Hosts int
	// ZipfS controls endpoint popularity skew (must be > 1; default 1.3).
	ZipfS float64
}

func (c *NetflowConfig) defaults() {
	if c.Hosts <= 0 {
		c.Hosts = 10000
	}
	if c.Edges <= 0 {
		c.Edges = 100000
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.3
	}
}

// Netflow generates a backbone-traffic-like edge stream: vertices are IP
// addresses (label "ip"), edges are flows typed by protocol with the
// empirically heavy-tailed protocol mix of Figure 6b (TCP ≫ UDP ≫ ICMP ≫
// rare tunneling protocols).
func Netflow(cfg NetflowConfig) []stream.Edge {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	// The shifted Zipf (v = 20) flattens the extreme head while keeping
	// the heavy tail: the busiest host carries ~2% of endpoint slots
	// rather than ~30%. The paper applies the same correction to CAIDA
	// by excluding private-subnet addresses, whose aggregation would
	// otherwise "result in the creation of vertices with giant neighbor
	// lists, which will surely impact the search performance" (§6.2).
	zipf := rand.NewZipf(rng, cfg.ZipfS, 20, uint64(cfg.Hosts-1))
	protocols := newWeighted(
		"TCP", 0.58, "UDP", 0.24, "ICMP", 0.12,
		"IPv6", 0.035, "GRE", 0.015, "ESP", 0.007, "AH", 0.003,
	)
	// Hosts specialize: a server speaks mostly one service. Most flows
	// at a host use its preferred protocol, so cross-protocol 2-edge
	// paths are far rarer than independence would predict — the strong
	// selectivity skew behind the paper's Figure 10 netflow cluster
	// (ξ down to 1e-10) and Figure 7's heavy head.
	preferred := make(map[uint64]string)
	prefer := func(h uint64) string {
		if p, ok := preferred[h]; ok {
			return p
		}
		p := protocols.pick(rng)
		preferred[h] = p
		return p
	}
	edges := make([]stream.Edge, 0, cfg.Edges)
	ts := int64(0)
	for len(edges) < cfg.Edges {
		s := zipf.Uint64()
		d := zipf.Uint64()
		if s == d {
			continue
		}
		proto := prefer(s)
		if rng.Float64() < 0.15 {
			proto = protocols.pick(rng) // off-profile traffic
		}
		ts++
		edges = append(edges, stream.Edge{
			Src: ipName(s), SrcLabel: "ip",
			Dst: ipName(d), DstLabel: "ip",
			Type: proto, TS: ts,
		})
	}
	return edges
}

func ipName(i uint64) string { return fmt.Sprintf("ip%d", i) }

// --- LSBench (RDF social stream substitute) ----------------------------

// Triple is one schema production: an allowed (source label, edge type,
// destination label) combination. The query generators draw from these,
// mirroring the paper's "list of valid triples generated using the
// LSBench schema".
type Triple struct {
	SrcLabel string
	Type     string
	DstLabel string
}

// LSBenchSchema returns the schema of the synthetic social stream:
// a static social-network portion and three activity streams (posts and
// comments, photos, GPS check-ins), totalling 45 edge types.
func LSBenchSchema() []Triple {
	return []Triple{
		// Static social network (first half of the stream).
		{"user", "knows", "user"},
		{"user", "follows", "user"},
		{"user", "friendOf", "user"},
		{"user", "memberOf", "forum"},
		{"user", "moderatorOf", "forum"},
		{"user", "worksAt", "org"},
		{"user", "studyAt", "org"},
		{"user", "basedNear", "place"},
		{"user", "interestedIn", "topic"},
		{"user", "hasAccount", "account"},
		{"forum", "hostedBy", "org"},
		{"forum", "hasTopic", "topic"},
		{"org", "locatedIn", "place"},
		{"place", "partOf", "place"},
		{"user", "email", "account"},
		// Post & comment stream.
		{"user", "createsPost", "post"},
		{"post", "postedIn", "forum"},
		{"post", "hasTag", "topic"},
		{"post", "mentions", "user"},
		{"user", "likesPost", "post"},
		{"user", "createsComment", "comment"},
		{"comment", "replyOfPost", "post"},
		{"comment", "replyOfComment", "comment"},
		{"user", "likesComment", "comment"},
		{"comment", "mentionsUser", "user"},
		{"user", "subscribesTo", "forum"},
		{"post", "linksTo", "post"},
		{"user", "sharesPost", "post"},
		{"comment", "hasTagComment", "topic"},
		{"user", "flagsPost", "post"},
		// Photo stream.
		{"user", "uploadsPhoto", "photo"},
		{"photo", "inAlbum", "album"},
		{"user", "createsAlbum", "album"},
		{"photo", "tagsUser", "user"},
		{"user", "likesPhoto", "photo"},
		{"photo", "takenAt", "place"},
		{"photo", "hasTagPhoto", "topic"},
		{"user", "commentsPhoto", "photo"},
		{"album", "hasTopicAlbum", "topic"},
		{"photo", "linksPhoto", "photo"},
		// GPS stream.
		{"user", "checkinAt", "place"},
		{"user", "travelsTo", "place"},
		{"checkin", "atPlace", "place"},
		{"user", "makesCheckin", "checkin"},
		{"checkin", "withUser", "user"},
	}
}

// lsbenchStatic is the number of leading schema entries that form the
// static social portion emitted in the first phase.
const lsbenchStatic = 15

// LSBenchConfig parameterizes the social stream generator.
type LSBenchConfig struct {
	Seed  int64
	Users int
	Edges int
	// ZipfS controls entity popularity skew (default 1.2).
	ZipfS float64
}

func (c *LSBenchConfig) defaults() {
	if c.Users <= 0 {
		c.Users = 10000
	}
	if c.Edges <= 0 {
		c.Edges = 100000
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
}

// LSBench generates the RDF-like social stream. The first half is the
// static social network; the second half the activity streams, giving
// the Figure 6c mid-stream distribution shift. Edge types are drawn
// with a Zipfian skew over the schema so a few types dominate
// (Figure 7).
func LSBench(cfg LSBenchConfig) []stream.Edge {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	schema := LSBenchSchema()

	// Entity pools per label, sized relative to the user count.
	poolSize := map[string]int{
		"user":    cfg.Users,
		"forum":   cfg.Users/20 + 10,
		"org":     cfg.Users/50 + 10,
		"place":   cfg.Users/25 + 10,
		"topic":   cfg.Users/10 + 10,
		"account": cfg.Users,
		"post":    cfg.Users * 2,
		"comment": cfg.Users * 3,
		"photo":   cfg.Users,
		"album":   cfg.Users/5 + 10,
		"checkin": cfg.Users * 2,
	}
	zipfs := make(map[string]*rand.Zipf)
	for label, n := range poolSize {
		// Shifted head (v = 8): popular entities exist without a single
		// mega-hub aggregating a large share of all activity (the same
		// correction the netflow generator applies).
		zipfs[label] = rand.NewZipf(rng, cfg.ZipfS, 8, uint64(n-1))
	}
	pick := func(label string) string {
		return fmt.Sprintf("%s%d", label, zipfs[label].Uint64())
	}

	// Zipf over schema entries within each phase: entry order is rank.
	staticZipf := rand.NewZipf(rng, 1.4, 1, uint64(lsbenchStatic-1))
	activityZipf := rand.NewZipf(rng, 1.4, 1, uint64(len(schema)-lsbenchStatic-1))

	edges := make([]stream.Edge, 0, cfg.Edges)
	half := cfg.Edges / 2
	ts := int64(0)
	for len(edges) < cfg.Edges {
		var tr Triple
		if len(edges) < half {
			tr = schema[staticZipf.Uint64()]
		} else {
			tr = schema[lsbenchStatic+int(activityZipf.Uint64())]
		}
		src := pick(tr.SrcLabel)
		dst := pick(tr.DstLabel)
		if src == dst {
			continue
		}
		ts++
		edges = append(edges, stream.Edge{
			Src: src, SrcLabel: tr.SrcLabel,
			Dst: dst, DstLabel: tr.DstLabel,
			Type: tr.Type, TS: ts,
		})
	}
	return edges
}

// --- New York Times (online news substitute) ---------------------------

// NYTimesTypes are the four mention edge types of Figure 6a.
var NYTimesTypes = []string{
	"article_mentions_person",
	"article_mentions_org",
	"article_mentions_topic",
	"article_mentions_geoloc",
}

// NYTimesConfig parameterizes the news stream generator.
type NYTimesConfig struct {
	Seed     int64
	Articles int
	// MaxMentions is the maximum number of entity mentions per article
	// (default 6; at least 1 is always emitted).
	MaxMentions int
	ZipfS       float64
}

func (c *NYTimesConfig) defaults() {
	if c.Articles <= 0 {
		c.Articles = 20000
	}
	if c.MaxMentions <= 0 {
		c.MaxMentions = 6
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.15
	}
}

// NYTimes generates the news metadata stream: each article vertex emits
// 1..MaxMentions typed mention edges to Zipf-popular entities.
func NYTimes(cfg NYTimesConfig) []stream.Edge {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	mix := newWeighted(
		"article_mentions_person", 0.42,
		"article_mentions_org", 0.26,
		"article_mentions_topic", 0.20,
		"article_mentions_geoloc", 0.12,
	)
	entityLabel := map[string]string{
		"article_mentions_person": "person",
		"article_mentions_org":    "org",
		"article_mentions_topic":  "topic",
		"article_mentions_geoloc": "geoloc",
	}
	pools := map[string]*rand.Zipf{
		"person": rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Articles/4+100)),
		"org":    rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Articles/8+100)),
		"topic":  rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Articles/20+50)),
		"geoloc": rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Articles/10+50)),
	}
	var edges []stream.Edge
	ts := int64(0)
	for a := 0; a < cfg.Articles; a++ {
		article := fmt.Sprintf("article%d", a)
		mentions := 1 + rng.Intn(cfg.MaxMentions)
		for m := 0; m < mentions; m++ {
			etype := mix.pick(rng)
			label := entityLabel[etype]
			ts++
			edges = append(edges, stream.Edge{
				Src: article, SrcLabel: "article",
				Dst: fmt.Sprintf("%s%d", label, pools[label].Uint64()), DstLabel: label,
				Type: etype, TS: ts,
			})
		}
	}
	return edges
}
