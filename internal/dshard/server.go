package dshard

// The remote shard worker: one listener, one fresh engine per
// connection. A connection IS a shard's lifetime — the router rebuilds
// a reconnecting shard by replaying its control events and the shared
// edge log, so the worker keeps no state across connections and
// crash-recovery needs no persistence layer here.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"

	"streamgraph/internal/core"
	"streamgraph/internal/persist"
	"streamgraph/internal/query"
)

// Server accepts remote-shard connections and hosts one shard engine
// per connection.
type Server struct {
	// Logf, when non-nil, receives one line per connection open/close
	// (log.Printf signature).
	Logf func(format string, args ...any)

	// LegacyV1 makes the server behave exactly like a v1-only binary:
	// it accepts only ProtocolVersionLegacy hellos and never sends a
	// hello-ack, rejecting v2 clients by closing the connection. It
	// exists so the client-side fallback path (a new router dialing an
	// old sgshard) is testable without an old binary.
	LegacyV1 bool

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns an idle server.
func NewServer() *Server {
	return &Server{conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Close, hosting each on its own
// goroutine. It returns the accept error that ended the loop
// (net.ErrClosed after Close).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("dshard: server is closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		// Registered under the same critical section that Close's
		// closed-check observes, so Close's Wait can never pass before a
		// just-accepted handler is counted.
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(c)
		}()
	}
}

// ServeConn hosts one already-established connection on the calling
// goroutine's behalf (it spawns the handler itself and returns
// immediately), with the same lifecycle accounting as accepted
// connections. It exists for in-process transports: the router's
// hospice failover engine speaks the protocol over a net.Pipe end.
func (s *Server) ServeConn(c net.Conn) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		c.Close()
		return fmt.Errorf("dshard: server is closed")
	}
	s.conns[c] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		s.handle(c)
	}()
	return nil
}

// Kick severs every live connection without stopping the listener: the
// routers on the other end observe a broken connection and rebuild
// over a fresh one. It exists for failover drills and tests.
func (s *Server) Kick() {
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

// Close stops accepting, severs live connections and waits for their
// handlers to return.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) handle(c net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	cn := NewConn(c)
	if err := (&host{cn: cn, legacy: s.LegacyV1}).run(); err != nil {
		s.logf("dshard: %s: %v", c.RemoteAddr(), err)
	}
}

// ListenAndServe listens on addr and serves until the process exits;
// the convenience entry point cmd/sgshard wraps.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("dshard: listening on %s", ln.Addr())
	return s.Serve(ln)
}

// host is the engine side of one connection: the exact remote
// counterpart of internal/shard's local worker goroutine.
type host struct {
	cn  *Conn
	eng *core.MultiEngine

	// admit mirrors the engine's replica filter by type name, for the
	// lastEnd (flush-barrier) bookkeeping.
	admit     map[string]bool
	universal bool
	types     int64 // gauge: filter width, -1 when universal

	// ranks maps registered query names to their global registration
	// rank, echoed on match frames.
	ranks map[string]int

	// lastEnd is the arrival seq just past the last edge this engine
	// admitted — the retrospective-repair flush barrier, with exactly
	// the semantics of the local worker's field: a control point at
	// stream position p flushes pending lazy repairs iff lastEnd < p
	// (the serial schedule drained them at an edge this shard's filter
	// skipped).
	lastEnd uint64

	// streamed flips once any state-bearing frame has been handled; a
	// restore frame is only legal before it (right after hello).
	streamed bool

	// legacy mirrors Server.LegacyV1: refuse v2 hellos like an old
	// binary would.
	legacy bool
}

func (h *host) run() error {
	typ, body, err := h.cn.ReadFrame()
	if err != nil {
		return err
	}
	if typ != FrameHello {
		return fmt.Errorf("expected hello, got frame 0x%02x", typ)
	}
	hello, err := DecodeHello(body)
	if err != nil {
		return err
	}
	switch hello.Version {
	case ProtocolVersionLegacy:
		// v1 peer: plain encoding, no ack. A v1 client's reader treats
		// unknown server frames as protocol violations, so the server
		// must stay silent here.
	case ProtocolVersion:
		if h.legacy {
			// Simulating an old binary: reject like v1 code would.
			return fmt.Errorf("protocol version %d, want %d", hello.Version, ProtocolVersionLegacy)
		}
		granted := hello.Caps & (CapDict | CapCompress)
		if err := h.cn.WriteHelloAck(HelloAck{Version: ProtocolVersion, Caps: granted}); err != nil {
			return err
		}
		h.cn.Negotiate(granted)
	default:
		return fmt.Errorf("protocol version %d, want %d or %d",
			hello.Version, ProtocolVersion, ProtocolVersionLegacy)
	}
	h.eng = core.NewMulti(core.MultiConfig{Window: hello.Window, EvictEvery: hello.EvictEvery})
	h.ranks = make(map[string]int)
	h.universal = hello.UniversalFilter
	if h.universal {
		h.types = -1
	} else {
		h.eng.SetReplicaFilter(nil, false)
		h.admit = map[string]bool{}
	}
	for {
		typ, body, err := h.cn.ReadFrame()
		if err != nil {
			return err
		}
		switch typ {
		case FrameEdges:
			m, err := h.cn.DecodeEdges(body)
			if err != nil {
				return err
			}
			if err := h.handleEdges(m); err != nil {
				return err
			}
		case FrameRegister:
			m, err := h.cn.DecodeRegister(body)
			if err != nil {
				return err
			}
			if err := h.handleRegister(m); err != nil {
				return err
			}
		case FrameBackfill:
			m, err := h.cn.DecodeBackfill(body)
			if err != nil {
				return err
			}
			// Continuation of a register frame's backfill; ignored when
			// the register itself errored (the query never took effect,
			// so neither may its backfill).
			if _, ok := h.ranks[m.Name]; ok {
				h.eng.Backfill(m.Edges)
			}
			if err := h.done(m.Frame, nil); err != nil {
				return err
			}
		case FrameUnregister:
			m, err := h.cn.DecodeUnregister(body)
			if err != nil {
				return err
			}
			if err := h.handleUnregister(m); err != nil {
				return err
			}
		case FrameCheckpoint:
			m, err := DecodeCheckpoint(body)
			if err != nil {
				return err
			}
			if err := h.handleCheckpoint(m); err != nil {
				return err
			}
		case FrameRestore:
			m, err := DecodeRestore(body)
			if err != nil {
				return err
			}
			if err := h.handleRestore(m); err != nil {
				return err
			}
		case FrameClose:
			m, err := DecodeCloseStream(body)
			if err != nil {
				return err
			}
			if err := h.flushRetro(m.Frame, m.FinalSeq, false); err != nil {
				return err
			}
			return h.done(m.Frame, nil)
		default:
			return fmt.Errorf("unexpected frame 0x%02x", typ)
		}
		if typ != FrameCheckpoint {
			h.streamed = true
		}
	}
}

func (h *host) handleEdges(m Edges) error {
	if h.universal {
		h.lastEnd = m.BaseSeq + uint64(len(m.Edges))
	} else {
		for i := len(m.Edges) - 1; i >= 0; i-- {
			if h.admit[m.Edges[i].Type] {
				h.lastEnd = m.BaseSeq + uint64(i) + 1
				break
			}
		}
	}
	for i, named := range h.eng.ProcessBatchGrouped(m.Edges) {
		if m.Suppress {
			continue
		}
		seq := m.BaseSeq + uint64(i)
		for _, nm := range named {
			if err := h.match(m.Frame, seq, nm); err != nil {
				return err
			}
		}
	}
	return h.done(m.Frame, nil)
}

func (h *host) handleRegister(m Register) error {
	if err := h.flushRetro(m.Frame, m.Seq, m.Suppress); err != nil {
		return err
	}
	q, err := query.Parse(m.Query)
	if err == nil {
		cfg := core.Config{
			Strategy:            core.Strategy(m.Strategy),
			MaxMatchesPerSearch: m.MaxMatches,
			MaxWorkPerEdge:      m.MaxWork,
			MaxStepsPerSearch:   m.MaxSteps,
			BatchWorkers:        m.Workers,
		}
		if cfg.BatchWorkers <= 0 {
			cfg.BatchWorkers = 1
		}
		if m.HasLeaves {
			cfg.Leaves = m.Leaves
		}
		err = h.eng.Register(m.Name, q, cfg)
	}
	if err == nil {
		h.ranks[m.Name] = m.Rank
		h.setFilter(m.FilterUniversal, m.FilterTypes)
		h.eng.Backfill(m.Backfill)
		if len(m.State) > 0 {
			// Live migration in: the frame carries the source slot's
			// partial-match state for this query; transplant it into the
			// fresh registration on top of the backfilled replica. A
			// corrupt image must not half-apply: kill the connection like
			// handleRestore does, so the router replays the registration
			// (State and all) on a fresh engine instead of running a
			// query that silently lost its spanning matches.
			tmp, terr := persist.LoadMulti(bytes.NewReader(m.State))
			if terr == nil {
				_, terr = persist.TransplantState(h.eng, tmp, m.Name)
			}
			if terr != nil {
				return fmt.Errorf("migrate state for %q: %w", m.Name, terr)
			}
		}
	}
	return h.done(m.Frame, err)
}

func (h *host) handleUnregister(m Unregister) error {
	if _, ok := h.ranks[m.Name]; ok {
		// A migration's source-side removal skips the flush barrier:
		// the pending retrospective work was transplanted to the target
		// slot inside the migration's state image and will drain there —
		// flushing here too would emit those repairs twice.
		if !m.Migrate {
			if err := h.flushRetro(m.Frame, m.Seq, m.Suppress); err != nil {
				return err
			}
		}
		h.eng.Unregister(m.Name)
		delete(h.ranks, m.Name)
		h.setFilter(m.FilterUniversal, m.FilterTypes)
		h.eng.TrimReplica()
	}
	return h.done(m.Frame, nil)
}

// handleCheckpoint serializes the whole engine state and streams it
// back before the done frame, mirroring the match-then-done
// discipline. Snapshotting is best-effort: an image the frame limit
// cannot carry (or one SaveMulti refuses to build) is simply not sent,
// and the router keeps whatever snapshot it already holds — the done
// frame must still arrive so the request pipeline keeps moving.
func (h *host) handleCheckpoint(m Checkpoint) error {
	if data, err := h.snapshotImage(); err == nil && len(data)+32 <= MaxFrame {
		if err := h.cn.WriteSnapshot(Snapshot{Frame: m.Frame, Data: data}); err != nil {
			return err
		}
	}
	return h.done(m.Frame, nil)
}

// handleRestore replaces the engine with a previously captured
// snapshot. Only legal directly after hello: the router sends it as
// the first frame of a reconnect, before replaying the log tail.
func (h *host) handleRestore(m Restore) error {
	if h.streamed {
		return fmt.Errorf("restore frame after stream traffic")
	}
	lastEnd, universal, types, ranks, image, err := decodeSnapshotImage(m.Data)
	if err != nil {
		return err
	}
	eng, err := persist.LoadMulti(bytes.NewReader(image))
	if err != nil {
		// The engine was not replaced; a done-with-error here would
		// leave the router believing the restore took effect while the
		// worker runs an empty engine. Kill the connection instead —
		// the router drops its (evidently bad) snapshot and rebuilds
		// from the log alone.
		return fmt.Errorf("restore snapshot: %w", err)
	}
	h.eng = eng
	h.ranks = ranks
	// LoadMulti leaves the replica filter universal; re-apply the
	// filter the snapshot captured.
	h.setFilter(universal, types)
	h.lastEnd = lastEnd
	return h.done(m.Frame, nil)
}

// snapshotImage encodes the host's connection-scoped state (flush
// barrier, replica filter, ranks) followed by the engine image.
func (h *host) snapshotImage() ([]byte, error) {
	b := binary.AppendUvarint(nil, h.lastEnd)
	b = appendBool(b, h.universal)
	types := make([]string, 0, len(h.admit))
	for tp := range h.admit {
		types = append(types, tp)
	}
	sort.Strings(types)
	b = appendStrings(b, types)
	names := make([]string, 0, len(h.ranks))
	for name := range h.ranks {
		names = append(names, name)
	}
	sort.Strings(names)
	b = binary.AppendUvarint(b, uint64(len(names)))
	for _, name := range names {
		b = appendString(b, name)
		b = binary.AppendUvarint(b, uint64(h.ranks[name]))
	}
	var buf bytes.Buffer
	buf.Write(b)
	if err := persist.SaveMulti(&buf, h.eng); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SnapshotImage is the decoded form of a worker snapshot: the
// connection-scoped header plus the opaque persist.SaveMulti engine
// image. The router's migration path decodes a retained snapshot to
// extract a departing query's state and re-encodes it with the query
// stripped, so a later reconnect restore cannot resurrect it.
type SnapshotImage struct {
	LastEnd   uint64
	Universal bool
	Types     []string
	Ranks     map[string]int
	Engine    []byte
}

// DecodeSnapshotImage parses a snapshot frame's payload.
func DecodeSnapshotImage(data []byte) (SnapshotImage, error) {
	lastEnd, universal, types, ranks, image, err := decodeSnapshotImage(data)
	if err != nil {
		return SnapshotImage{}, err
	}
	return SnapshotImage{LastEnd: lastEnd, Universal: universal, Types: types, Ranks: ranks, Engine: image}, nil
}

// Encode serializes the image back into the snapshot wire form
// (snapshotImage's exact layout).
func (si SnapshotImage) Encode() []byte {
	b := binary.AppendUvarint(nil, si.LastEnd)
	b = appendBool(b, si.Universal)
	types := append([]string(nil), si.Types...)
	sort.Strings(types)
	b = appendStrings(b, types)
	names := make([]string, 0, len(si.Ranks))
	for name := range si.Ranks {
		names = append(names, name)
	}
	sort.Strings(names)
	b = binary.AppendUvarint(b, uint64(len(names)))
	for _, name := range names {
		b = appendString(b, name)
		b = binary.AppendUvarint(b, uint64(si.Ranks[name]))
	}
	return append(b, si.Engine...)
}

// decodeSnapshotImage splits a snapshot image back into the host
// header and the engine image (the undecoded remainder).
func decodeSnapshotImage(data []byte) (lastEnd uint64, universal bool, types []string, ranks map[string]int, image []byte, err error) {
	d := dec{b: data}
	lastEnd = d.uvarint()
	universal = d.bool_()
	types = d.strings()
	n := d.count("ranks", 2)
	ranks = make(map[string]int, n)
	for i := 0; i < n && d.err == nil; i++ {
		name := d.string_()
		ranks[name] = int(d.uvarint())
	}
	if d.err != nil {
		return 0, false, nil, nil, nil, d.err
	}
	return lastEnd, universal, types, ranks, d.b, nil
}

// flushRetro runs the engine's queued retrospective repairs when the
// stream has moved past this shard's last admitted edge; see the local
// worker's flushRetro for the schedule argument. With a universal
// filter the shard receives every edge, lastEnd always equals p, and
// this never fires — matching the local full-replica worker.
func (h *host) flushRetro(frame, p uint64, suppress bool) error {
	if h.lastEnd == 0 || h.lastEnd >= p {
		return nil
	}
	for _, nm := range h.eng.FlushPending() {
		if suppress {
			continue
		}
		if err := h.match(frame, h.lastEnd, nm); err != nil {
			return err
		}
	}
	return nil
}

func (h *host) setFilter(universal bool, types []string) {
	h.universal = universal
	if universal {
		h.admit = nil
		h.types = -1
		h.eng.SetReplicaFilter(nil, true)
		return
	}
	h.admit = make(map[string]bool, len(types))
	for _, tp := range types {
		h.admit[tp] = true
	}
	h.types = int64(len(types))
	h.eng.SetReplicaFilter(types, false)
}

// match resolves one engine match into portable name-based form (the
// shared core.MultiEngine.ResolveMatch walk, identical to the local
// worker's) and streams it; resolution happens here, while the bound
// edges are certainly still live in the replica.
func (h *host) match(frame, seq uint64, nm core.NamedMatch) error {
	out := Match{
		Frame: frame, Query: nm.Query, Rank: h.ranks[nm.Query], Seq: seq,
		FirstTS: nm.Match.MinTS, LastTS: nm.Match.MaxTS,
	}
	bindings, edges := h.eng.ResolveMatch(nm)
	for _, b := range bindings {
		out.Bindings = append(out.Bindings, Binding(b))
	}
	for _, e := range edges {
		out.Edges = append(out.Edges, MatchEdge(e))
	}
	return h.cn.WriteMatch(out)
}

func (h *host) done(frame uint64, engErr error) error {
	d := Done{
		Frame:  frame,
		Live:   int64(h.eng.Graph().NumEdges()),
		Stored: h.eng.EdgesStored(),
		Types:  h.types,
	}
	if engErr != nil {
		d.Err = engErr.Error()
	}
	return h.cn.WriteDone(d)
}
