package dshard

// Checkpoint / snapshot frames. PR 6 extends the protocol with a
// state-transfer triangle that bounds reconnect replay:
//
//	checkpoint  client→server: serialize the whole engine state
//	snapshot    server→client: the serialized state (reply to a
//	            checkpoint frame, before its done frame — the same
//	            stream-then-done discipline as match frames)
//	restore     client→server: replace the worker's engine state with
//	            a previously captured snapshot (sent right after hello
//	            on a reconnect, before any replayed traffic)
//
// A checkpoint frame rides the ordered request pipeline like any other
// client frame, so when its done frame arrives the router knows the
// exact stream position the snapshot covers: everything acknowledged
// before it is inside, everything after is tail. That is what lets the
// router retire covered control events and advance the EdgeLog pin
// floor instead of freezing it at registration time (the PR 5
// unbounded-pin failure mode; see docs/DISTRIBUTED.md).
//
// The snapshot payload is opaque to the router: the worker produces it
// (an engine header plus a persist.SaveMulti image) and only a worker
// consumes it. The router stores and forwards bytes.

import "encoding/binary"

// Frame type bytes (continuing the allocation in dshard.go).
const (
	// FrameCheckpoint asks the worker for a snapshot of its engine
	// state at the current stream position (client→server).
	FrameCheckpoint byte = 0x07
	// FrameRestore replaces the worker's engine state with a snapshot
	// captured earlier (client→server, right after hello).
	FrameRestore byte = 0x08
	// FrameSnapshot carries the serialized engine state back to the
	// router (server→client, before the checkpoint's done frame).
	FrameSnapshot byte = 0x83
)

// Checkpoint asks the worker to serialize its engine state.
type Checkpoint struct {
	// Frame is the per-connection frame id the done frame echoes.
	Frame uint64
}

// Snapshot is the worker's serialized engine state.
type Snapshot struct {
	// Frame echoes the checkpoint frame this snapshot answers.
	Frame uint64
	// Data is the opaque snapshot image. The router never parses it;
	// it round-trips the bytes back in a restore frame.
	Data []byte
}

// Restore replaces the worker's engine state with a snapshot.
type Restore struct {
	// Frame is the per-connection frame id the done frame echoes.
	Frame uint64
	// Data is a snapshot image previously received from a worker of
	// this slot.
	Data []byte
}

// WriteCheckpoint sends one checkpoint request.
func (cn *Conn) WriteCheckpoint(m Checkpoint) error {
	b := append(cn.wbuf[:0], FrameCheckpoint)
	b = binary.AppendUvarint(b, m.Frame)
	cn.wbuf = b
	return cn.writeFrame(b)
}

// WriteSnapshot streams the serialized engine state (server side).
func (cn *Conn) WriteSnapshot(m Snapshot) error {
	b := append(cn.wbuf[:0], FrameSnapshot)
	b = binary.AppendUvarint(b, m.Frame)
	b = binary.AppendUvarint(b, uint64(len(m.Data)))
	b = append(b, m.Data...)
	cn.wbuf = b
	return cn.writeFrame(b)
}

// WriteRestore sends one state-restore frame.
func (cn *Conn) WriteRestore(m Restore) error {
	b := append(cn.wbuf[:0], FrameRestore)
	b = binary.AppendUvarint(b, m.Frame)
	b = binary.AppendUvarint(b, uint64(len(m.Data)))
	b = append(b, m.Data...)
	cn.wbuf = b
	return cn.writeFrame(b)
}

// DecodeCheckpoint parses a FrameCheckpoint body.
func DecodeCheckpoint(body []byte) (Checkpoint, error) {
	d := dec{b: body}
	m := Checkpoint{Frame: d.uvarint()}
	return m, d.err
}

// DecodeSnapshot parses a FrameSnapshot body. Data aliases the
// connection's read buffer; callers that retain it must copy.
func DecodeSnapshot(body []byte) (Snapshot, error) {
	d := dec{b: body}
	m := Snapshot{Frame: d.uvarint()}
	m.Data = d.bytes()
	return m, d.err
}

// DecodeRestore parses a FrameRestore body. Data aliases the
// connection's read buffer; callers that retain it must copy.
func DecodeRestore(body []byte) (Restore, error) {
	d := dec{b: body}
	m := Restore{Frame: d.uvarint()}
	m.Data = d.bytes()
	return m, d.err
}

// bytes decodes a length-prefixed byte string without copying.
func (d *dec) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)) < n {
		d.fail("bytes")
		return nil
	}
	b := d.b[:n]
	d.b = d.b[n:]
	return b
}
