// Package dshard defines the distributed shard runtime's wire
// protocol and hosts the remote shard worker: the process-boundary
// form of one internal/shard slot.
//
// Topology. A shard.Router partitions registered continuous queries
// across shard slots. A slot is either a local worker goroutine (as in
// the single-process runtime) or a TCP connection to a remote shard
// worker process (cmd/sgshard) speaking this protocol. The router side
// of the split keeps everything that needs the global stream view —
// arrival sequencing, the edge-type gates, the shared EdgeLog, the
// full-stream selectivity statistics that pin each registration's
// decomposition — while the remote side owns exactly what a local
// worker's goroutine owns: a single-writer core.MultiEngine over a
// private (optionally edge-type-filtered) graph replica.
//
// Protocol. Frames are length-prefixed: a 4-byte big-endian payload
// length, then the payload, whose first byte is the frame type. All
// integers inside payloads are varints (unsigned for sequence numbers
// and counts, zigzag for timestamps and gauges); strings are
// length-prefixed byte strings. Protocol v2 — negotiated per
// connection by the hello/hello-ack capability exchange — additionally
// interns strings in a per-connection, per-direction dictionary
// (CapDict: first occurrence as id+bytes, later occurrences as a
// varint reference), delta-encodes timestamps within each frame's edge
// list, and flate-compresses large frames (CapCompress: the high bit
// of the length header marks a compressed payload). A v1 peer
// negotiates nothing and speaks the plain encoding; snapshot images
// and the edlog record codec always use the plain encoding because
// they outlive connections. The client (router) sends:
//
//	hello       protocol version, slot id, window, eviction cadence,
//	            and the initial replica-filter mode
//	edges       one admitted batch: base arrival seq + edges
//	register    a query at a stream position: name, rank, query text,
//	            the decomposition pinned router-side, search limits,
//	            the post-registration replica filter, and the backfill
//	            edges replayed from the router's EdgeLog
//	unregister  a query at a stream position + the narrowed filter
//	close       end of stream: final seq for the last flush barrier
//
// The server (remote worker) answers every client frame, in order,
// with zero or more match frames followed by exactly one done frame
// (engine error for registers, replica gauges piggybacked). That
// strict request/stream/done discipline is what makes recovery simple:
// the router treats a frame's matches as delivered only when its done
// arrives, so a connection that dies mid-frame loses nothing and
// duplicates nothing — the frame is simply replayed.
//
// Replay. The remote worker keeps no durable state: on every new
// connection the router rebuilds it by replaying its registration
// control events interleaved with the shared EdgeLog in arrival-seq
// order, marking already-delivered frames with the suppress flag
// (processed for state, matches discarded). See docs/DISTRIBUTED.md
// for the full reconnect state machine and its invariants.
package dshard

import "streamgraph/internal/stream"

// ProtocolVersion is the current wire protocol version carried by the
// hello frame. A v2 client opens with version 2 plus its capability
// bits and expects a hello-ack granting the intersection; the server
// also accepts ProtocolVersionLegacy hellos (plain v1 encoding, no
// ack) so old routers interoperate, and refuses anything else.
const ProtocolVersion = 2

// ProtocolVersionLegacy is the v1 protocol: plain string encoding,
// absolute timestamps, no compression, no hello-ack. A v2 client that
// fails the hello-ack handshake (an old server closes the connection
// on an unknown version) falls back to it.
const ProtocolVersionLegacy = 1

// Capability bits negotiated in the v2 hello/hello-ack exchange. The
// client offers a set, the server answers with the subset it grants,
// and both sides apply exactly the granted set — to both directions of
// the connection.
const (
	// CapDict enables the per-connection string dictionary and
	// within-frame delta timestamps on edge/backfill/match frames.
	CapDict uint64 = 1 << 0
	// CapCompress enables per-frame flate compression of large frames
	// (the high bit of the length header marks a compressed frame).
	CapCompress uint64 = 1 << 1
)

// MaxFrame bounds a single frame's payload size (a corrupt or
// malicious length prefix must not allocate unboundedly).
const MaxFrame = 64 << 20

// Frame type bytes. Client→server types have the high bit clear,
// server→client types have it set.
const (
	// FrameHello opens a connection (client→server).
	FrameHello byte = 0x01
	// FrameEdges carries one admitted edge batch (client→server).
	FrameEdges byte = 0x02
	// FrameRegister registers a query at a stream position (client→server).
	FrameRegister byte = 0x03
	// FrameUnregister removes a query at a stream position (client→server).
	FrameUnregister byte = 0x04
	// FrameClose ends the stream and drains the worker (client→server).
	FrameClose byte = 0x05
	// FrameBackfill carries a continuation chunk of a register frame's
	// backfill payload (client→server). Large backfills are split
	// across frames so no payload approaches MaxFrame; the chunks
	// follow their register frame back-to-back, before any other
	// traffic.
	FrameBackfill byte = 0x06
	// FrameMatch streams one completed match (server→client).
	FrameMatch byte = 0x81
	// FrameDone acknowledges one client frame (server→client).
	FrameDone byte = 0x82
	// FrameHelloAck answers a v2 hello with the granted capability
	// bits (server→client). A v1 hello is never acknowledged — a v1
	// client's reader would treat the unknown frame type as a protocol
	// violation.
	FrameHelloAck byte = 0x84
)

// Hello is the connection-opening frame: the engine configuration the
// remote worker builds its fresh core.MultiEngine from.
type Hello struct {
	// Version is ProtocolVersion (v2: the hello carries Caps and the
	// server answers with a hello-ack) or ProtocolVersionLegacy (v1:
	// plain encoding, no ack).
	Version uint64
	// Slot is the router-side slot index (diagnostics only).
	Slot int
	// Window is tW shared by every registered query (0 = unwindowed).
	Window int64
	// EvictEvery is the engine's eviction cadence in edges.
	EvictEvery int
	// UniversalFilter selects the initial replica filter: true admits
	// every edge type (full-replica topologies: FullReplicas, Ordered);
	// false starts the engine as an empty filtered replica that each
	// register frame widens.
	UniversalFilter bool
	// Caps is the capability set the client offers (Cap* bits); the
	// server grants the intersection with its own in the hello-ack.
	// Trailing field so a v1 hello (which simply omits it) decodes
	// with Caps = 0.
	Caps uint64
}

// HelloAck is the server's answer to a v2 hello: the capability set in
// force, in both directions, for the rest of the connection. It is the
// first and only frame a server sends before its normal
// match/done traffic, and is never sent to a v1 client.
type HelloAck struct {
	// Version echoes the server's protocol version.
	Version uint64
	// Caps is the granted capability set (a subset of the hello's).
	Caps uint64
}

// Edges is one admitted batch of stream edges.
type Edges struct {
	// Frame is the per-connection frame id the done frame echoes.
	Frame uint64
	// Suppress marks a replayed frame whose matches were already
	// delivered on an earlier connection: the worker processes the
	// batch fully (graph, statistics, partial-match state) but emits
	// no match frames for it.
	Suppress bool
	// BaseSeq is the router-assigned arrival sequence of Edges[0];
	// arrival seqs are global across the whole topology.
	BaseSeq uint64
	// Edges holds the batch in arrival order.
	Edges []stream.Edge
}

// Register installs one continuous query on the remote worker at a
// definite stream position.
type Register struct {
	// Frame / Suppress as in Edges; Suppress applies to the matches of
	// the flush barrier this control point triggers.
	Frame    uint64
	Suppress bool
	// Name is the unique registered query name.
	Name string
	// Seq is the stream position of the registration: the arrival seq
	// of the next edge after it.
	Seq uint64
	// Rank is the global registration rank, echoed on match frames;
	// ordered mode sorts simultaneous matches by it.
	Rank int
	// Query is the pattern in the textual query format (query.Parse).
	Query string
	// Strategy is the core.Strategy ordinal.
	Strategy int
	// HasLeaves reports whether Leaves carries a pinned decomposition.
	// The router pins every decomposition-based strategy against its
	// full-stream selectivity statistics — the remote engine's own
	// statistics see only this shard's slice of the stream and must
	// never drive a decomposition.
	HasLeaves bool
	// Leaves is the pinned SJ-tree decomposition (query edge indices
	// per leaf).
	Leaves [][]int
	// MaxMatches, MaxWork and MaxSteps forward the engine's search
	// limits (core.Config.MaxMatchesPerSearch / MaxWorkPerEdge /
	// MaxStepsPerSearch); Workers forwards core.Config.BatchWorkers,
	// so an explicit intra-shard search pool size behaves the same on
	// local and remote slots.
	MaxMatches int
	MaxWork    int64
	MaxSteps   int64
	Workers    int
	// FilterUniversal / FilterTypes is the replica filter AFTER this
	// registration widens it, computed router-side from the slot's
	// footprint refcounts.
	FilterUniversal bool
	FilterTypes     []string
	// Backfill is the in-window past of the newly needed edge types,
	// replayed from the router's EdgeLog; the worker admits them
	// without searching (core.MultiEngine.Backfill semantics).
	Backfill []stream.Edge
	// State, when non-empty, carries a persist.SaveMulti image of a
	// single-query engine being migrated onto this worker: after the
	// normal register + backfill, the worker transplants the image's
	// stored partial matches, lazy bitmap and queued retrospective work
	// into the fresh registration (a live migration's source state).
	// Encoded as a trailing field, absent on pre-migration frames.
	State []byte
}

// BackfillChunk is a continuation of a register frame's backfill: the
// worker admits the edges (no search) into the replica exactly as it
// did the register frame's own Backfill slice. A chunk for a query
// that is not registered (its register frame errored) is ignored.
type BackfillChunk struct {
	// Frame is the per-connection frame id the done frame echoes.
	Frame uint64
	// Name is the registered query whose backfill this continues.
	Name string
	// Edges holds the chunk in arrival order.
	Edges []stream.Edge
}

// Unregister removes one query at a definite stream position.
type Unregister struct {
	// Frame / Suppress as in Register.
	Frame    uint64
	Suppress bool
	// Name is the registered query name.
	Name string
	// Seq is the stream position of the removal.
	Seq uint64
	// FilterUniversal / FilterTypes is the replica filter AFTER the
	// removal narrows it; the worker trims edges outside it.
	FilterUniversal bool
	FilterTypes     []string
	// Migrate marks a migration's source-side removal: the query's
	// pending retrospective work was already transplanted to the target
	// slot, so the worker must NOT run its flush barrier (flushing here
	// would emit the same repairs twice). Encoded as a trailing field,
	// absent on pre-migration frames.
	Migrate bool
}

// CloseStream ends the stream: the worker runs its final flush barrier
// at FinalSeq, acknowledges, and the connection winds down.
type CloseStream struct {
	// Frame is the frame id the done frame echoes.
	Frame uint64
	// FinalSeq is the global stream position at close.
	FinalSeq uint64
}

// Binding is one resolved vertex of a match (query vertex name → data
// vertex name).
type Binding struct {
	// QueryVertex and DataVertex are both resolved to names so the
	// match stays valid after the remote replica evicts the edges.
	QueryVertex, DataVertex string
}

// MatchEdge is one resolved edge of a match.
type MatchEdge struct {
	// QueryEdge indexes the query's edge list.
	QueryEdge int
	// Src, Dst and Type are resolved names; TS is the edge timestamp.
	Src, Dst, Type string
	TS             int64
}

// Match is one completed match streamed back to the router, resolved
// into portable name-based form on the remote worker while the bound
// edges are certainly still live in its replica.
type Match struct {
	// Frame is the client frame this match belongs to; the router
	// buffers matches until the frame's done arrives (atomic,
	// exactly-once delivery across reconnects).
	Frame uint64
	// Query and Rank identify the registration; Seq is the arrival
	// seq of the edge (or flush barrier) that completed the match.
	Query string
	Rank  int
	Seq   uint64
	// FirstTS and LastTS delimit τ(g), the match's timespan.
	FirstTS, LastTS int64
	// Bindings and Edges resolve the match.
	Bindings []Binding
	Edges    []MatchEdge
}

// Done acknowledges one client frame after all of its match frames.
type Done struct {
	// Frame echoes the acknowledged client frame.
	Frame uint64
	// Err is the engine error for register frames ("" = ok).
	Err string
	// Live, Stored and Types are the remote replica's gauges (live
	// edges, cumulative edges admitted, filter width or -1 when
	// universal) — the distributed form of shard.Stats' replica
	// fields.
	Live, Stored, Types int64
}
