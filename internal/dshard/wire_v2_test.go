package dshard

// Protocol v2 coverage: the negotiated dictionary/delta/compression
// encoding must round-trip every message exactly, shrink repeated
// traffic, reject every malformed dictionary or compressed payload
// with an error (never a panic or an unbounded allocation), and
// negotiate cleanly against peers of either version.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"reflect"
	"testing"

	"streamgraph/internal/stream"
)

// bufConn adapts a byte buffer to the Conn interface so tests can
// capture and replay the exact wire bytes.
type bufConn struct{ *bytes.Buffer }

func (bufConn) Close() error { return nil }

// negotiatedPair returns two Conns wired to each other with the given
// capability set applied to both ends.
func negotiatedPair(caps uint64) (*Conn, *Conn) {
	a, b := connPair()
	a.Negotiate(caps)
	b.Negotiate(caps)
	return a, b
}

// TestWireV2RoundTrip replays the full message matrix of
// TestWireRoundTrip over a dictionary connection, every message twice:
// the first pass populates the dictionaries (definitions), the second
// exercises pure references, and both must decode to the originals
// exactly.
func TestWireV2RoundTrip(t *testing.T) {
	client, server := negotiatedPair(CapDict | CapCompress)

	base := []any{
		Edges{Frame: 1, Suppress: true, BaseSeq: 1 << 33, Edges: testEdges()},
		Edges{Frame: 2, BaseSeq: 0, Edges: testEdges()[:1]},
		Register{
			Frame: 3, Suppress: true, Name: "q1", Seq: 99, Rank: 7,
			Query: "e a b TCP\ne b c GRE", Strategy: 1,
			HasLeaves: true, Leaves: [][]int{{0}, {1}},
			MaxMatches: 20000, MaxWork: -1, MaxSteps: 1 << 50, Workers: 4,
			FilterUniversal: false, FilterTypes: []string{"GRE", "TCP"},
			Backfill: testEdges(),
		},
		BackfillChunk{Frame: 12, Name: "q1", Edges: testEdges()},
		Unregister{Frame: 5, Name: "q1", Seq: 120, FilterUniversal: false, FilterTypes: []string{"TCP"}},
		Match{
			Frame: 8, Query: "q1", Rank: 2, Seq: 55, FirstTS: -3, LastTS: 90,
			Bindings: []Binding{{QueryVertex: "a", DataVertex: "n1"}, {QueryVertex: "b", DataVertex: "n2"}},
			Edges:    []MatchEdge{{QueryEdge: 1, Src: "n1", Dst: "n2", Type: "TCP", TS: 88}, {QueryEdge: 0, Src: "n2", Dst: "n1", Type: "GRE", TS: -4}},
		},
	}
	msgs := append(append([]any{}, base...), base...) // second pass: references only

	go func() {
		for _, m := range msgs {
			var err error
			switch m := m.(type) {
			case Edges:
				err = client.WriteEdges(m)
			case Register:
				err = client.WriteRegister(m)
			case BackfillChunk:
				err = client.WriteBackfill(m)
			case Unregister:
				err = client.WriteUnregister(m)
			case Match:
				err = client.WriteMatch(m)
			}
			if err != nil {
				t.Errorf("write %T: %v", m, err)
				return
			}
		}
	}()

	for i, want := range msgs {
		typ, body, err := server.ReadFrame()
		if err != nil {
			t.Fatalf("msg %d: read: %v", i, err)
		}
		var got any
		switch typ {
		case FrameEdges:
			got, err = server.DecodeEdges(body)
		case FrameRegister:
			got, err = server.DecodeRegister(body)
		case FrameBackfill:
			got, err = server.DecodeBackfill(body)
		case FrameUnregister:
			got, err = server.DecodeUnregister(body)
		case FrameMatch:
			got, err = server.DecodeMatch(body)
		default:
			t.Fatalf("msg %d: unknown frame type 0x%02x", i, typ)
		}
		if err != nil {
			t.Fatalf("msg %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("msg %d round-trip mismatch:\n got %#v\nwant %#v", i, got, want)
		}
	}
	if st := server.Stats(); st.DictEntriesIn == 0 || st.DictBytesIn == 0 {
		t.Fatalf("decode dictionary never populated: %+v", server.Stats())
	}
	if st := client.Stats(); st.DictEntriesOut == 0 {
		t.Fatalf("encode dictionary never populated: %+v", st)
	}
}

// TestWireV2DictionaryShrinksRepeats pins the point of the dictionary:
// re-sending the same edge batch must cost materially fewer wire bytes
// than its first transmission, and a v2 frame must already be smaller
// than the v1 encoding of the same batch.
func TestWireV2DictionaryShrinksRepeats(t *testing.T) {
	edges := Edges{Frame: 1, BaseSeq: 100}
	for i := 0; i < 32; i++ {
		edges.Edges = append(edges.Edges, stream.Edge{
			Src: fmt.Sprintf("host-%d", i%8), SrcLabel: "ip",
			Dst: fmt.Sprintf("host-%d", (i+1)%8), DstLabel: "ip",
			Type: "TCP", TS: int64(1000 + i),
		})
	}
	frameBytes := func(cn *Conn) func() int64 {
		last := int64(0)
		return func() int64 {
			st := cn.Stats()
			d := st.BytesOut - last
			last = st.BytesOut
			return d
		}
	}

	v1 := NewConn(bufConn{&bytes.Buffer{}})
	if err := v1.WriteEdges(edges); err != nil {
		t.Fatal(err)
	}
	v1Size := v1.Stats().BytesOut

	cn := NewConn(bufConn{&bytes.Buffer{}})
	cn.Negotiate(CapDict)
	take := frameBytes(cn)
	if err := cn.WriteEdges(edges); err != nil {
		t.Fatal(err)
	}
	first := take()
	if err := cn.WriteEdges(edges); err != nil {
		t.Fatal(err)
	}
	second := take()
	if first >= v1Size {
		t.Fatalf("first v2 frame (%dB) not smaller than v1 (%dB)", first, v1Size)
	}
	if second >= first {
		t.Fatalf("reference-only frame (%dB) not smaller than the defining frame (%dB)", second, first)
	}
	if second*3 > v1Size {
		t.Fatalf("steady-state v2 frame (%dB) not under a third of v1 (%dB)", second, v1Size)
	}
}

// TestWireV2Compression checks that large frames are flate-compressed
// on a CapCompress connection (raw vs wire accounting diverges), that
// the peer reads them back exactly, and that tiny frames skip the
// compressor.
func TestWireV2Compression(t *testing.T) {
	var buf bytes.Buffer
	w := NewConn(bufConn{&buf})
	w.Negotiate(CapCompress)
	big := Edges{Frame: 1, BaseSeq: 7}
	for i := 0; i < 200; i++ {
		big.Edges = append(big.Edges, stream.Edge{
			Src: "host-a", SrcLabel: "ip", Dst: "host-b", DstLabel: "ip",
			Type: "TCP", TS: int64(i),
		})
	}
	if err := w.WriteEdges(big); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.BytesOut >= st.RawBytesOut {
		t.Fatalf("large repetitive frame not compressed: wire %dB raw %dB", st.BytesOut, st.RawBytesOut)
	}

	r := NewConn(bufConn{bytes.NewBuffer(buf.Bytes())})
	r.Negotiate(CapCompress)
	typ, body, err := r.ReadFrame()
	if err != nil || typ != FrameEdges {
		t.Fatalf("read compressed frame: type 0x%02x err %v", typ, err)
	}
	got, err := r.DecodeEdges(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, big) {
		t.Fatal("compressed round-trip mismatch")
	}
	rst := r.Stats()
	if rst.BytesIn != st.BytesOut || rst.RawBytesIn != st.RawBytesOut {
		t.Fatalf("read accounting diverges from write: %+v vs %+v", rst, st)
	}

	// A frame under the threshold goes out as-is.
	w2 := NewConn(bufConn{&bytes.Buffer{}})
	w2.Negotiate(CapCompress)
	if err := w2.WriteDone(Done{Frame: 9}); err != nil {
		t.Fatal(err)
	}
	if st := w2.Stats(); st.BytesOut != st.RawBytesOut {
		t.Fatalf("tiny frame was compressed: %+v", st)
	}
}

// TestDecodeCorruptV2 sweeps truncations and dictionary protocol
// violations through the v2 decoders: every cut and every malformed
// table operation must error, never panic.
func TestDecodeCorruptV2(t *testing.T) {
	// Encode a register and a match on a dictionary connection, loop
	// the bytes back, and truncate the bodies at every position with a
	// fresh decode table each time.
	var buf bytes.Buffer
	cn := NewConn(bufConn{&buf})
	cn.Negotiate(CapDict)
	if err := cn.WriteRegister(Register{
		Frame: 1, Name: "q", Query: "e a b TCP", Strategy: 1,
		HasLeaves: true, Leaves: [][]int{{0}},
		FilterTypes: []string{"TCP"}, Backfill: testEdges(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := cn.WriteMatch(Match{
		Frame: 2, Query: "q", Seq: 9, FirstTS: 1, LastTS: 5,
		Bindings: []Binding{{QueryVertex: "a", DataVertex: "x"}},
		Edges:    []MatchEdge{{QueryEdge: 0, Src: "x", Dst: "y", Type: "TCP", TS: 3}},
	}); err != nil {
		t.Fatal(err)
	}
	rd := NewConn(bufConn{bytes.NewBuffer(buf.Bytes())})
	rd.Negotiate(CapDict)
	_, regBody, err := rd.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	regBody = append([]byte(nil), regBody...)
	_, matchBody, err := rd.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(regBody); cut++ {
		if _, err := decodeRegister(regBody[:cut], &strTable{}); err == nil {
			t.Fatalf("register truncation at %d/%d decoded without error", cut, len(regBody))
		}
	}
	// The match body references strings its own frame never defines
	// (they were defined by the register frame), so decoding it against
	// an empty table must error too — on a fresh connection those
	// references are unknown ids.
	if _, err := decodeMatch(matchBody, &strTable{}); err == nil {
		t.Fatal("cross-frame dictionary references decoded against an empty table")
	}

	// Dictionary protocol violations, byte-crafted: frame bodies are a
	// BackfillChunk header (frame uvarint, then the name string).
	chunk := func(nameEnc ...byte) []byte {
		return append([]byte{1}, nameEnc...)
	}
	cases := []struct {
		name string
		body []byte
	}{
		{"unknown reference", chunk(5)},                                            // ref id 3 on an empty table
		{"gapped definition", chunk(1, 1, 1, 'a')},                                 // first definition claims id 1
		{"overflow definition id", chunk(1, 0xff, 0xff, 0xff, 0xff, 0x0f, 1, 'a')}, // id far past maxDictEntries
		{"truncated definition", chunk(1, 0)},                                      // id 0 but no string
		{"truncated inline", chunk(0, 5, 'a')},                                     // inline length 5, one byte
	}
	for _, tc := range cases {
		if _, err := decodeBackfill(tc.body, &strTable{}); err == nil {
			t.Fatalf("%s decoded without error", tc.name)
		}
	}
	// A duplicate definition: id 0 defined twice (second define arrives
	// in the edge list of the same frame).
	dup := chunk(1, 0, 1, 'n')       // frame=1, name defines id 0
	dup = append(dup, 1)             // one edge
	dup = append(dup, 1, 0, 1, 'm')  // edge.Src re-defines id 0
	dup = append(dup, 2, 2, 2, 2, 0) // rest of the edge
	if _, err := decodeBackfill(dup, &strTable{}); err == nil {
		t.Fatal("duplicate dictionary definition decoded without error")
	}
}

// TestCompressedFrameCorruption covers the compressed-frame failure
// modes: a compressed frame on an un-negotiated connection, every
// stream truncation, and a compressed payload with its tail cut off
// under an intact header.
func TestCompressedFrameCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewConn(bufConn{&buf})
	w.Negotiate(CapCompress)
	big := Edges{Frame: 1}
	for i := 0; i < 300; i++ {
		big.Edges = append(big.Edges, stream.Edge{Src: "aaaa", Dst: "bbbb", Type: "TCP", TS: int64(i)})
	}
	if err := w.WriteEdges(big); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	if binary.BigEndian.Uint32(data)&frameCompressed == 0 {
		t.Fatal("test frame did not compress")
	}

	// Without negotiation the compressed bit is a protocol error.
	plain := NewConn(bufConn{bytes.NewBuffer(data)})
	if _, _, err := plain.ReadFrame(); err == nil {
		t.Fatal("compressed frame accepted without negotiated compression")
	}

	// Any truncation of the stream must surface as a read error.
	for cut := 0; cut < len(data); cut += 7 {
		r := NewConn(bufConn{bytes.NewBuffer(data[:cut])})
		r.Negotiate(CapCompress)
		if _, _, err := r.ReadFrame(); err == nil {
			t.Fatalf("truncation at %d/%d read without error", cut, len(data))
		}
	}

	// An intact header over a flate stream missing its final block:
	// re-frame the compressed payload minus its last byte.
	payload := data[4:]
	short := payload[:len(payload)-1]
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(short))|frameCompressed)
	r := NewConn(bufConn{bytes.NewBuffer(append(hdr[:], short...))})
	r.Negotiate(CapCompress)
	if _, _, err := r.ReadFrame(); err == nil {
		t.Fatal("truncated flate stream read without error")
	}
}

// TestServerVersionNegotiation drives the hello handshake both ways: a
// current server must ack v2, pass v1 through silently, and refuse
// unknown versions; a LegacyV1 server must refuse v2 outright.
func TestServerVersionNegotiation(t *testing.T) {
	start := func(legacy bool) (string, func()) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer()
		srv.LegacyV1 = legacy
		go srv.Serve(ln)
		return ln.Addr().String(), srv.Close
	}

	addr, stop := start(false)
	defer stop()

	// v2 hello → hello-ack with the granted subset.
	cn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := cn.WriteHello(Hello{Version: ProtocolVersion, Caps: CapDict | CapCompress | 1<<60}); err != nil {
		t.Fatal(err)
	}
	typ, body, err := cn.ReadFrame()
	if err != nil || typ != FrameHelloAck {
		t.Fatalf("v2 hello: got type 0x%02x err %v, want hello-ack", typ, err)
	}
	ack, err := DecodeHelloAck(body)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Caps != CapDict|CapCompress {
		t.Fatalf("granted caps %b, want the known subset %b", ack.Caps, CapDict|CapCompress)
	}
	cn.Close()

	// v1 hello → no ack; the first reply is the done for the next frame.
	cn, err = Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := cn.WriteHello(Hello{Version: ProtocolVersionLegacy}); err != nil {
		t.Fatal(err)
	}
	if err := cn.WriteCloseStream(CloseStream{Frame: 1}); err != nil {
		t.Fatal(err)
	}
	typ, _, err = cn.ReadFrame()
	if err != nil || typ != FrameDone {
		t.Fatalf("v1 hello: got type 0x%02x err %v, want done (no ack)", typ, err)
	}
	cn.Close()

	// Unknown version → connection closed without traffic.
	cn, err = Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := cn.WriteHello(Hello{Version: 99}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cn.ReadFrame(); err == nil {
		t.Fatal("unknown protocol version was accepted")
	}
	cn.Close()

	// LegacyV1 server: v2 hello refused, v1 hello serviced.
	addrOld, stopOld := start(true)
	defer stopOld()
	cn, err = Dial(addrOld)
	if err != nil {
		t.Fatal(err)
	}
	if err := cn.WriteHello(Hello{Version: ProtocolVersion, Caps: CapDict}); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := cn.ReadFrame(); err == nil {
		t.Fatalf("legacy server answered a v2 hello with frame 0x%02x", typ)
	}
	cn.Close()
	cn, err = Dial(addrOld)
	if err != nil {
		t.Fatal(err)
	}
	if err := cn.WriteHello(Hello{Version: ProtocolVersionLegacy}); err != nil {
		t.Fatal(err)
	}
	if err := cn.WriteCloseStream(CloseStream{Frame: 1}); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := cn.ReadFrame(); err != nil || typ != FrameDone {
		t.Fatalf("legacy server did not service a v1 stream: type 0x%02x err %v", typ, err)
	}
	cn.Close()
}

// FuzzDecodeFrame throws arbitrary bodies at every v2 decoder with a
// fresh dictionary table: no input may panic, and the table a hostile
// body builds must stay bounded by the body that built it.
func FuzzDecodeFrame(f *testing.F) {
	// Valid bodies (captured from a dictionary connection) seed the
	// corpus alongside hand-crafted dictionary violations.
	var buf bytes.Buffer
	cn := NewConn(bufConn{&buf})
	cn.Negotiate(CapDict)
	cn.WriteEdges(Edges{Frame: 1, BaseSeq: 5, Edges: testEdges()})
	cn.WriteRegister(Register{Frame: 2, Name: "q", Query: "e a b TCP", FilterTypes: []string{"TCP"}, Backfill: testEdges()})
	cn.WriteMatch(Match{Frame: 3, Query: "q", Bindings: []Binding{{QueryVertex: "a", DataVertex: "x"}}, Edges: []MatchEdge{{Src: "x", Dst: "y", Type: "TCP", TS: 9}}})
	rd := NewConn(bufConn{bytes.NewBuffer(buf.Bytes())})
	for i := byte(0); ; i++ {
		_, body, err := rd.ReadFrame()
		if err != nil {
			break
		}
		f.Add(i, append([]byte(nil), body...))
	}
	f.Add(byte(0), []byte{1, 0, 1, 5})                       // unknown reference
	f.Add(byte(2), []byte{1, 1, 1, 1, 'a'})                  // gapped definition
	f.Add(byte(2), []byte{1, 1, 0, 1, 'a', 1, 1, 0, 1, 'b'}) // duplicate definition
	f.Add(byte(4), []byte{1, 0, 1, 0xff, 0xff, 0xff, 0xff, 0x0f})

	f.Fuzz(func(t *testing.T, which byte, body []byte) {
		tbl := &strTable{}
		switch which % 5 {
		case 0:
			decodeEdges(body, tbl)
		case 1:
			decodeRegister(body, tbl)
		case 2:
			decodeBackfill(body, tbl)
		case 3:
			decodeUnregister(body, tbl)
		case 4:
			decodeMatch(body, tbl)
		}
		// Each table entry costs at least three body bytes (tag, id,
		// length); anything bigger means the decoder over-allocated.
		if len(tbl.vals) > len(body) {
			t.Fatalf("table grew to %d entries from a %d-byte body", len(tbl.vals), len(body))
		}
		// The plain decoders must hold on the same input.
		DecodeEdges(body)
		DecodeRegister(body)
		DecodeBackfill(body)
		DecodeUnregister(body)
		DecodeMatch(body)
		DecodeHello(body)
		DecodeHelloAck(body)
		DecodeDone(body)
		DecodeCloseStream(body)
	})
}
